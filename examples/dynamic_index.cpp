// Streaming spatial index with the BDL-tree (paper §5): a moving-object
// scenario where batches of observations arrive and expire, with k-NN
// queries interleaved — the workload batch-dynamic trees exist for.
//
//   $ ./dynamic_index [n_per_batch] [rounds]
#include <cstdio>
#include <cstdlib>

#include "pargeo.h"

using namespace pargeo;

int main(int argc, char** argv) {
  const std::size_t batch = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 8;
  std::printf("BDL-tree streaming demo: %d rounds of +%zu/-%zu points\n",
              rounds, batch, batch / 2);

  bdltree::bdl_tree<3> index;
  std::vector<std::vector<point<3>>> window;  // batches still alive

  double insertTime = 0, eraseTime = 0, queryTime = 0;
  for (int r = 0; r < rounds; ++r) {
    // New observations arrive (clusters drift with the round number).
    auto arriving = datagen::visualvar<3>(batch, 100 + r);
    timer t;
    index.insert(arriving);
    insertTime += t.elapsed();
    window.push_back(std::move(arriving));

    // Old observations expire: drop the oldest half-batch.
    if (window.size() > 2) {
      auto& oldest = window.front();
      std::vector<point<3>> expire(oldest.begin(),
                                   oldest.begin() + oldest.size() / 2);
      oldest.erase(oldest.begin(), oldest.begin() + oldest.size() / 2);
      if (oldest.empty()) window.erase(window.begin());
      t.reset();
      index.erase(expire);
      eraseTime += t.elapsed();
    }

    // Periodic analytics: k-NN of a probe set against the live index.
    auto probes = datagen::uniform<3>(1000, 999 + r);
    t.reset();
    auto res = index.knn(probes, 5);
    queryTime += t.elapsed();
    double meanDist = 0;
    std::size_t cnt = 0;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      if (!res[i].empty()) {
        meanDist += res[i].back().dist(probes[i]);
        ++cnt;
      }
    }
    std::printf("round %d: index size %8zu, trees %zu, mean 5-NN dist %.2f\n",
                r, index.size(), index.num_static_trees(),
                meanDist / static_cast<double>(cnt));
  }
  std::printf("\ntotals: insert %.1f ms, erase %.1f ms, query %.1f ms\n",
              1e3 * insertTime, 1e3 * eraseTime, 1e3 * queryTime);
  return 0;
}
