// Quickstart: the five-minute tour of the library.
//
//   $ ./quickstart [n]
//
// Generates a point set, builds a kd-tree, runs k-NN and range queries,
// computes the convex hull and the smallest enclosing ball, and prints
// what it found.
#include <cstdio>
#include <cstdlib>

#include "pargeo.h"

using namespace pargeo;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::atoll(argv[1]) : 100000;
  std::printf("ParGeo quickstart with %zu uniform 2D points, %d worker(s)\n",
              n, par::num_workers());

  // 1. Data: uniform points in a hypercube of side sqrt(n).
  auto pts = datagen::uniform<2>(n, /*seed=*/42);

  // 2. Spatial index: parallel kd-tree build.
  timer t;
  kdtree::tree<2> tree(pts);
  std::printf("kd-tree built in %.1f ms\n", 1e3 * t.elapsed());

  // 3. k nearest neighbors of the first point (includes itself at d=0).
  auto nn = tree.knn(pts[0], 6);
  std::printf("5 nearest neighbors of point 0:\n");
  for (const auto& e : nn) {
    if (e.id == 0) continue;
    std::printf("  point %zu at distance %.3f\n", e.id,
                std::sqrt(e.dist_sq));
  }

  // 4. Range search: everything within a small radius.
  const double radius = std::sqrt(static_cast<double>(n)) * 0.01;
  auto inRange = tree.range_ball(pts[0], radius);
  std::printf("%zu points within radius %.2f of point 0\n", inRange.size(),
              radius);

  // 5. Convex hull (parallel divide-and-conquer).
  t.reset();
  auto hull = hull2d::divide_conquer(pts);
  std::printf("convex hull: %zu vertices in %.1f ms\n", hull.size(),
              1e3 * t.elapsed());

  // 6. Smallest enclosing ball (sampling algorithm, paper §4).
  t.reset();
  auto ball = seb::sampling<2>(pts);
  std::printf("smallest enclosing ball: center (%.2f, %.2f) radius %.2f "
              "in %.1f ms\n",
              ball.center[0], ball.center[1], ball.radius,
              1e3 * t.elapsed());

  // 7. Closest pair.
  auto cp = closestpair::closest_pair<2>(pts);
  std::printf("closest pair: %zu and %zu at distance %.4f\n", cp.i, cp.j,
              std::sqrt(cp.dist_sq));
  return 0;
}
