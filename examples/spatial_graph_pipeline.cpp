// Spatial-network construction pipeline (the GIS-style workload the
// paper's introduction motivates): from a clustered point set, build the
// Delaunay graph, filter it down to the Gabriel graph and a beta-skeleton,
// extract the EMST, and build a t-spanner; report sizes and total weights.
//
//   $ ./spatial_graph_pipeline [n]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "pargeo.h"

using namespace pargeo;

namespace {

double total_weight(const std::vector<point<2>>& pts,
                    const graphgen::edge_list& edges) {
  double w = 0;
  for (const auto& [u, v] : edges) w += pts[u].dist(pts[v]);
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  auto pts = datagen::seed_spreader<2>(n, 7);
  std::printf("spatial graphs over %zu clustered points\n", pts.size());

  timer t;
  auto del = graphgen::delaunay_graph(pts);
  std::printf("Delaunay graph   %8zu edges  weight %12.1f  (%.1f ms)\n",
              del.size(), total_weight(pts, del), 1e3 * t.elapsed());

  t.reset();
  auto gab = graphgen::gabriel_graph(pts);
  std::printf("Gabriel graph    %8zu edges  weight %12.1f  (%.1f ms)\n",
              gab.size(), total_weight(pts, gab), 1e3 * t.elapsed());

  t.reset();
  auto beta = graphgen::beta_skeleton(pts, 1.8);
  std::printf("1.8-skeleton     %8zu edges  weight %12.1f  (%.1f ms)\n",
              beta.size(), total_weight(pts, beta), 1e3 * t.elapsed());

  t.reset();
  auto knn = graphgen::knn_graph(pts, 4);
  std::size_t knnEdges = 0;
  for (const auto& row : knn) knnEdges += row.size();
  std::printf("4-NN graph       %8zu arcs                        (%.1f ms)\n",
              knnEdges, 1e3 * t.elapsed());

  t.reset();
  auto mst = emst::emst<2>(pts);
  std::printf("EMST             %8zu edges  weight %12.1f  (%.1f ms)\n",
              mst.size(), emst::total_weight(mst), 1e3 * t.elapsed());

  t.reset();
  auto span = graphgen::spanner(pts, 2.0);
  std::printf("2-spanner        %8zu edges  weight %12.1f  (%.1f ms)\n",
              span.size(), total_weight(pts, span), 1e3 * t.elapsed());

  // Sanity of the structural chain the paper relies on.
  std::printf("\nEMST weight <= Gabriel weight <= Delaunay weight: %s\n",
              (emst::total_weight(mst) <= total_weight(pts, gab) &&
               total_weight(pts, gab) <= total_weight(pts, del))
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
