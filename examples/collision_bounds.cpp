// Bounding-volume computation for a scanned object (the graphics/robotics
// workload from the paper's introduction): convex hull + smallest
// enclosing ball of a scanned-surface point cloud, comparing the hull
// algorithms and verifying the ball against the hull.
//
//   $ ./collision_bounds [n]
#include <cstdio>
#include <cstdlib>

#include "pargeo.h"

using namespace pargeo;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::atoll(argv[1]) : 200000;
  // Proxy for a dense 3D scan (see DESIGN.md on the Thai/Dragon datasets).
  auto cloud = datagen::synthetic_statue(n, 3);
  std::printf("collision bounds for a %zu-point scanned surface\n", n);

  timer t;
  auto meshDq = hull3d::divide_conquer(cloud);
  const double tDq = t.elapsed();
  t.reset();
  auto meshPs = hull3d::pseudohull(cloud);
  const double tPs = t.elapsed();
  t.reset();
  auto meshSeq = hull3d::sequential_quickhull(cloud);
  const double tSeq = t.elapsed();

  std::printf("hull facets: d&c %zu (%.1f ms), pseudo %zu (%.1f ms), "
              "seq %zu (%.1f ms)\n",
              meshDq.facets.size(), 1e3 * tDq, meshPs.facets.size(),
              1e3 * tPs, meshSeq.facets.size(), 1e3 * tSeq);
  std::printf("methods agree: %s\n",
              hull3d::hull_vertices(meshDq) == hull3d::hull_vertices(meshPs)
                  ? "yes"
                  : "NO (bug!)");

  t.reset();
  auto ball = seb::sampling<3>(cloud);
  std::printf("bounding sphere: radius %.3f (%.1f ms)\n", ball.radius,
              1e3 * t.elapsed());

  // The ball must cover every hull vertex (hence the whole cloud).
  bool ok = true;
  for (const std::size_t v : hull3d::hull_vertices(meshDq)) {
    ok = ok && ball.contains(cloud[v], 1e-7);
  }
  std::printf("sphere covers hull: %s\n", ok ? "yes" : "NO (bug!)");

  // Volume of the hull via the divergence theorem (signed tetrahedra).
  double vol = 0;
  for (const auto& f : meshDq.facets) {
    const auto& a = cloud[f[0]];
    const auto& b = cloud[f[1]];
    const auto& c = cloud[f[2]];
    vol += a.dot(cross(b, c)) / 6.0;
  }
  const double rb = ball.radius;
  std::printf("hull volume %.1f vs sphere volume %.1f (ratio %.2f)\n",
              std::abs(vol), 4.0 / 3.0 * 3.14159265358979 * rb * rb * rb,
              std::abs(vol) / (4.0 / 3.0 * 3.14159265358979 * rb * rb * rb));
  return 0;
}
