#include "closestpair/closestpair.h"

#include <algorithm>

#include "parallel/parallel.h"

namespace pargeo::closestpair {

namespace {

template <int D>
using node_t = typename kdtree::tree<D>::node;

// Dual-tree branch and bound between nodes of (possibly distinct) trees.
// `self` skips identical slots when both nodes come from the same tree.
template <int D>
void bccp_rec(const kdtree::tree<D>& ta, const kdtree::tree<D>& tb,
              const node_t<D>* a, const node_t<D>* b, bool self,
              pair_result& best) {
  if (a->box.dist_sq(b->box) >= best.dist_sq) return;
  if (a->is_leaf() && b->is_leaf()) {
    for (std::size_t i = a->lo; i < a->hi; ++i) {
      for (std::size_t j = b->lo; j < b->hi; ++j) {
        if (self && i == j) continue;
        const double d = ta.point_at(i).dist_sq(tb.point_at(j));
        if (d < best.dist_sq) best = {i, j, d};
      }
    }
    return;
  }
  // Split the node with the larger diameter; visit the closer child first
  // so pruning kicks in early.
  const bool splitA =
      !a->is_leaf() &&
      (b->is_leaf() || a->box.diameter_sq() >= b->box.diameter_sq());
  if (splitA) {
    const node_t<D>* c1 = a->left;
    const node_t<D>* c2 = a->right;
    if (c2->box.dist_sq(b->box) < c1->box.dist_sq(b->box)) std::swap(c1, c2);
    bccp_rec(ta, tb, c1, b, self, best);
    bccp_rec(ta, tb, c2, b, self, best);
  } else {
    const node_t<D>* c1 = b->left;
    const node_t<D>* c2 = b->right;
    if (a->box.dist_sq(c2->box) < a->box.dist_sq(c1->box)) std::swap(c1, c2);
    bccp_rec(ta, tb, a, c1, self, best);
    bccp_rec(ta, tb, a, c2, self, best);
  }
}

}  // namespace

template <int D>
pair_result closest_pair(const std::vector<point<D>>& pts) {
  const std::size_t n = pts.size();
  kdtree::tree<D> t(pts);
  std::vector<pair_result> local(n);
  // The closest pair is some point's nearest neighbor: take 2-NN of every
  // point (the first hit is the point itself) in data-parallel fashion.
  par::parallel_for(
      0, n,
      [&](std::size_t i) {
        auto nn = t.knn(pts[i], 2);
        for (const auto& e : nn) {
          if (e.id != i) {
            local[i] = {i, e.id, e.dist_sq};
            return;
          }
        }
        // Duplicate of i shadowing both slots: distance 0 to that point.
        local[i] = {i, nn[0].id != i ? nn[0].id : nn[1].id, 0.0};
      },
      64);
  const std::size_t b = par::min_element_index(
      local, [](const pair_result& x, const pair_result& y) {
        return x.dist_sq < y.dist_sq;
      });
  return local[b];
}

template <int D>
pair_result bichromatic_closest_pair(const std::vector<point<D>>& red,
                                     const std::vector<point<D>>& blue) {
  kdtree::tree<D> ta(red), tb(blue);
  // Parallelize by seeding a branch-and-bound per red leaf against the
  // blue root, each with a locally improving bound, then reduce.
  std::vector<const node_t<D>*> leaves;
  std::vector<const node_t<D>*> stack{ta.root()};
  while (!stack.empty()) {
    const node_t<D>* nd = stack.back();
    stack.pop_back();
    if (nd->is_leaf()) {
      leaves.push_back(nd);
    } else {
      stack.push_back(nd->left);
      stack.push_back(nd->right);
    }
  }
  std::vector<pair_result> local(leaves.size());
  par::parallel_for(
      0, leaves.size(),
      [&](std::size_t i) {
        pair_result best;
        bccp_rec(ta, tb, leaves[i], tb.root(), false, best);
        local[i] = best;
      },
      1);
  pair_result best;
  for (const auto& r : local) {
    if (r.dist_sq < best.dist_sq) best = r;
  }
  return {ta.id_of(best.i), tb.id_of(best.j), best.dist_sq};
}

template <int D>
pair_result bccp_nodes(const kdtree::tree<D>& t, const node_t<D>* a,
                       const node_t<D>* b) {
  pair_result best;
  bccp_rec(t, t, a, b, /*self=*/true, best);
  return {t.id_of(best.i), t.id_of(best.j), best.dist_sq};
}

#define PARGEO_CP_INSTANTIATE(D)                                            \
  template pair_result closest_pair<D>(const std::vector<point<D>>&);       \
  template pair_result bichromatic_closest_pair<D>(                         \
      const std::vector<point<D>>&, const std::vector<point<D>>&);          \
  template pair_result bccp_nodes<D>(const kdtree::tree<D>&,                \
                                     const typename kdtree::tree<D>::node*, \
                                     const typename kdtree::tree<D>::node*);

PARGEO_CP_INSTANTIATE(2)
PARGEO_CP_INSTANTIATE(3)
PARGEO_CP_INSTANTIATE(5)
PARGEO_CP_INSTANTIATE(7)

}  // namespace pargeo::closestpair
