// Closest pair and bichromatic closest pair (paper Module 2).
//
// The closest pair is computed via data-parallel 2-nearest-neighbor
// queries over the kd-tree (the closest pair is realized at some point's
// nearest neighbor). The bichromatic closest pair (BCCP) uses a dual-tree
// branch-and-bound traversal; the same primitive computes the BCCP of two
// nodes of one tree, which the EMST module calls for every WSPD pair.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "kdtree/kdtree.h"

namespace pargeo::closestpair {

struct pair_result {
  std::size_t i = 0;  // index into the first point set
  std::size_t j = 0;  // index into the second (same set for closest_pair)
  double dist_sq = std::numeric_limits<double>::infinity();
};

/// Closest pair of distinct indices in `pts` (n >= 2). Distinct points at
/// distance 0 (duplicates) are valid results.
template <int D>
pair_result closest_pair(const std::vector<point<D>>& pts);

/// Closest pair (a, b) with a drawn from `red` and b from `blue`.
template <int D>
pair_result bichromatic_closest_pair(const std::vector<point<D>>& red,
                                     const std::vector<point<D>>& blue);

/// BCCP between the point ranges of two nodes of one tree. Returns
/// original input-point indices. Sequential (callers parallelize across
/// node pairs).
template <int D>
pair_result bccp_nodes(const kdtree::tree<D>& t,
                       const typename kdtree::tree<D>::node* a,
                       const typename kdtree::tree<D>::node* b);

}  // namespace pargeo::closestpair
