// Static parallel kd-tree (paper Module 1).
//
// Construction partitions points in parallel at every level, splitting by
// either the object median (median point along the widest dimension) or
// the spatial median (midpoint of the bounding box). Queries: exact k-NN
// (single and data-parallel batch), orthogonal range search, and ball
// range search. Nodes expose bounding boxes so other modules (WSPD, BCCP,
// EMST) can run dual-tree traversals over the same structure.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/aabb.h"
#include "core/point.h"
#include "kdtree/knn_buffer.h"
#include "parallel/parallel.h"

namespace pargeo::kdtree {

enum class split_policy { object_median, spatial_median };

template <int D>
class tree {
 public:
  struct node {
    aabb<D> box;
    std::size_t lo = 0, hi = 0;  // range of points_ covered by this node
    int split_dim = -1;
    double split_val = 0;
    node* left = nullptr;
    node* right = nullptr;

    bool is_leaf() const { return left == nullptr; }
    std::size_t size() const { return hi - lo; }
  };

  static constexpr std::size_t kDefaultLeafSize = 16;

  /// Builds the tree over a copy of `pts` (points are permuted internally;
  /// original indices are available via `id_of`).
  explicit tree(const std::vector<point<D>>& pts,
                split_policy policy = split_policy::object_median,
                std::size_t leaf_size = kDefaultLeafSize)
      : points_(pts), ids_(pts.size()), policy_(policy),
        leaf_size_(std::max<std::size_t>(1, leaf_size)) {
    const std::size_t n = points_.size();
    par::parallel_for(0, n, [&](std::size_t i) { ids_[i] = i; });
    // Each internal node has two non-empty children, so node count < 2n.
    // n = 0 still gets one (empty leaf) root so queries need no null checks.
    arena_.resize(std::max<std::size_t>(1, 2 * n));
    root_ = build(0, n, compute_box(0, n));
  }

  const node* root() const { return root_; }
  std::size_t size() const { return points_.size(); }

  /// Point stored at internal slot i (post-permutation).
  const point<D>& point_at(std::size_t i) const { return points_[i]; }
  /// Original (input-order) index of internal slot i.
  std::size_t id_of(std::size_t i) const { return ids_[i]; }

  /// Exact k nearest neighbors of `q` among the stored points, sorted by
  /// distance. Returns original input indices. If the query point itself
  /// is stored, it appears in the result (distance 0).
  std::vector<knn_buffer::entry> knn(const point<D>& q, std::size_t k) const {
    if (size() == 0 || k == 0) return {};
    knn_buffer buf(std::min(k, size()));
    knn_node(root_, q, buf);
    auto out = buf.finish();
    for (auto& e : out) e.id = ids_[e.id];
    return out;
  }

  /// Data-parallel batch k-NN: row i of the result is knn(queries[i], k).
  std::vector<std::vector<knn_buffer::entry>> knn_batch(
      const std::vector<point<D>>& queries, std::size_t k) const {
    std::vector<std::vector<knn_buffer::entry>> out(queries.size());
    par::parallel_for(
        0, queries.size(),
        [&](std::size_t i) { out[i] = knn(queries[i], k); }, 64);
    return out;
  }

  /// Original indices of all points inside `query_box`.
  std::vector<std::size_t> range_box(const aabb<D>& query_box) const {
    std::vector<std::size_t> out;
    range_box_node(root_, query_box, out);
    return out;
  }

  /// Original indices of all points within distance `radius` of `center`.
  std::vector<std::size_t> range_ball(const point<D>& center,
                                      double radius) const {
    std::vector<std::size_t> out;
    range_ball_node(root_, center, radius * radius, out);
    return out;
  }

 private:
  aabb<D> compute_box(std::size_t lo, std::size_t hi) const {
    // Blocked parallel reduction over the range.
    const std::size_t n = hi - lo;
    const std::size_t block = 8192;
    const std::size_t nb = (n + block - 1) / block;
    if (nb <= 1) {
      aabb<D> b;
      for (std::size_t i = lo; i < hi; ++i) b.extend(points_[i]);
      return b;
    }
    std::vector<aabb<D>> partial(nb);
    par::parallel_for(
        0, nb,
        [&](std::size_t bidx) {
          aabb<D> b;
          const std::size_t s = lo + bidx * block;
          const std::size_t e = std::min(hi, s + block);
          for (std::size_t i = s; i < e; ++i) b.extend(points_[i]);
          partial[bidx] = b;
        },
        1);
    aabb<D> b;
    for (const auto& pb : partial) b.extend(pb);
    return b;
  }

  node* alloc_node() {
    const std::size_t idx =
        next_node_.fetch_add(1, std::memory_order_relaxed);
    assert(idx < arena_.size());
    return &arena_[idx];
  }

  // Partition [lo,hi) so points with coord < pivot come first (ids_ kept in
  // lock-step); returns the split index. In-place two-pointer partition
  // below a grain, two-pass parallel counting partition above it.
  std::size_t split_range(std::size_t lo, std::size_t hi, int dim,
                          double pivot) {
    struct slot {
      point<D> p;
      std::size_t id;
    };
    const std::size_t n = hi - lo;
    if (n <= (std::size_t{1} << 14) || par::num_workers() == 1) {
      std::size_t i = lo, j = hi;
      while (i < j) {
        while (i < j && points_[i][dim] < pivot) ++i;
        while (i < j && !(points_[j - 1][dim] < pivot)) --j;
        if (i < j) {
          std::swap(points_[i], points_[j - 1]);
          std::swap(ids_[i], ids_[j - 1]);
          ++i;
          --j;
        }
      }
      return i;
    }
    // Parallel out-of-place partition.
    std::vector<uint8_t> flags(n);
    par::parallel_for(0, n, [&](std::size_t i) {
      flags[i] = points_[lo + i][dim] < pivot ? 1 : 0;
    });
    std::vector<std::size_t> offLow(n), offHigh(n);
    par::parallel_for(0, n, [&](std::size_t i) {
      offLow[i] = flags[i];
      offHigh[i] = 1 - flags[i];
    });
    const std::size_t numLow = par::scan_exclusive(offLow);
    par::scan_exclusive(offHigh);
    std::vector<slot> tmp(n);
    par::parallel_for(0, n, [&](std::size_t i) {
      const std::size_t pos =
          flags[i] ? offLow[i] : numLow + offHigh[i];
      tmp[pos] = {points_[lo + i], ids_[lo + i]};
    });
    par::parallel_for(0, n, [&](std::size_t i) {
      points_[lo + i] = tmp[i].p;
      ids_[lo + i] = tmp[i].id;
    });
    return lo + numLow;
  }

  // Object-median split: nth_element on the widest dimension. Parallel
  // variant uses the median of the spatial distribution found by
  // partitioning around the exact median value obtained via nth_element
  // on a copy for large inputs (cheaper than a full parallel selection and
  // deterministic).
  std::size_t object_median_split(std::size_t lo, std::size_t hi, int dim,
                                  double* out_pivot) {
    const std::size_t n = hi - lo;
    std::vector<double> coords(n);
    par::parallel_for(0, n,
                      [&](std::size_t i) { coords[i] = points_[lo + i][dim]; });
    auto midIt = coords.begin() + n / 2;
    std::nth_element(coords.begin(), midIt, coords.end());
    const double pivot = *midIt;
    std::size_t split = split_range(lo, hi, dim, pivot);
    // All coordinates may equal the pivot (duplicates): fall back to an
    // arbitrary balanced cut to guarantee progress.
    if (split == lo || split == hi) split = lo + n / 2;
    *out_pivot = pivot;
    return split;
  }

  node* build(std::size_t lo, std::size_t hi, const aabb<D>& box) {
    node* nd = alloc_node();
    nd->box = box;
    nd->lo = lo;
    nd->hi = hi;
    const std::size_t n = hi - lo;
    if (n <= leaf_size_) return nd;

    const int dim = box.widest_dim();
    std::size_t split = 0;
    double pivot = 0;
    if (policy_ == split_policy::spatial_median) {
      pivot = 0.5 * (box.lo[dim] + box.hi[dim]);
      split = split_range(lo, hi, dim, pivot);
      if (split == lo || split == hi) {
        // Degenerate spatial cut (all points on one side): use the object
        // median instead so the tree height stays bounded.
        split = object_median_split(lo, hi, dim, &pivot);
      }
    } else {
      split = object_median_split(lo, hi, dim, &pivot);
    }
    nd->split_dim = dim;
    nd->split_val = pivot;
    const bool bigEnough = n > (std::size_t{1} << 12);
    aabb<D> lbox, rbox;
    auto buildL = [&] { nd->left = build(lo, split, lbox); };
    auto buildR = [&] { nd->right = build(split, hi, rbox); };
    lbox = compute_box(lo, split);
    rbox = compute_box(split, hi);
    if (bigEnough) {
      par::par_do(buildL, buildR);
    } else {
      buildL();
      buildR();
    }
    return nd;
  }

  void knn_node(const node* nd, const point<D>& q, knn_buffer& buf) const {
    if (nd->is_leaf()) {
      for (std::size_t i = nd->lo; i < nd->hi; ++i) {
        buf.insert(points_[i].dist_sq(q), i);
      }
      return;
    }
    const node* near = nd->left;
    const node* far = nd->right;
    if (q[nd->split_dim] >= nd->split_val) std::swap(near, far);
    if (near->box.dist_sq(q) < buf.bound()) knn_node(near, q, buf);
    if (far->box.dist_sq(q) < buf.bound()) knn_node(far, q, buf);
  }

  void range_box_node(const node* nd, const aabb<D>& qb,
                      std::vector<std::size_t>& out) const {
    if (!nd->box.intersects(qb)) return;
    if (nd->box.inside(qb)) {
      for (std::size_t i = nd->lo; i < nd->hi; ++i) out.push_back(ids_[i]);
      return;
    }
    if (nd->is_leaf()) {
      for (std::size_t i = nd->lo; i < nd->hi; ++i) {
        if (qb.contains(points_[i])) out.push_back(ids_[i]);
      }
      return;
    }
    range_box_node(nd->left, qb, out);
    range_box_node(nd->right, qb, out);
  }

  void range_ball_node(const node* nd, const point<D>& c, double r_sq,
                       std::vector<std::size_t>& out) const {
    if (nd->box.dist_sq(c) > r_sq) return;
    if (nd->box.max_dist_sq(c) <= r_sq) {
      for (std::size_t i = nd->lo; i < nd->hi; ++i) out.push_back(ids_[i]);
      return;
    }
    if (nd->is_leaf()) {
      for (std::size_t i = nd->lo; i < nd->hi; ++i) {
        if (points_[i].dist_sq(c) <= r_sq) out.push_back(ids_[i]);
      }
      return;
    }
    range_ball_node(nd->left, c, r_sq, out);
    range_ball_node(nd->right, c, r_sq, out);
  }

  std::vector<point<D>> points_;
  std::vector<std::size_t> ids_;
  split_policy policy_;
  std::size_t leaf_size_;
  std::vector<node> arena_;
  std::atomic<std::size_t> next_node_{0};
  node* root_ = nullptr;
};

}  // namespace pargeo::kdtree
