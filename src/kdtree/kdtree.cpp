// Anchor translation unit; also pins common instantiations so downstream
// targets don't each pay the template cost.
#include "kdtree/kdtree.h"

namespace pargeo::kdtree {
template class tree<2>;
template class tree<3>;
template class tree<5>;
template class tree<7>;
}  // namespace pargeo::kdtree
