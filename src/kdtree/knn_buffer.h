// Bounded k-nearest-neighbor candidate buffer (paper Appendix C.1.3).
//
// Maintains the k best (smallest squared distance) candidates seen so far
// using an internal buffer of size 2k: inserts are O(1) appends, and when
// the buffer fills up a selection partition keeps the k smallest —
// amortized O(1) per insert.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace pargeo::kdtree {

class knn_buffer {
 public:
  struct entry {
    double dist_sq;
    std::size_t id;
    bool operator<(const entry& o) const {
      return dist_sq < o.dist_sq ||
             (dist_sq == o.dist_sq && id < o.id);
    }
  };

  explicit knn_buffer(std::size_t k)
      : k_(k), bound_(std::numeric_limits<double>::infinity()) {
    buf_.reserve(2 * k);
  }

  std::size_t k() const { return k_; }

  /// Current pruning bound: squared distance of the k-th best candidate,
  /// or +inf while fewer than k candidates have been seen.
  double bound() const { return bound_; }

  bool full() const { return seen_ >= k_; }

  void insert(double dist_sq, std::size_t id) {
    // Accept candidates tied with the bound so distance ties resolve to
    // the smallest ids (compaction orders by (dist, id)).
    if (dist_sq > bound_) return;
    buf_.push_back({dist_sq, id});
    ++seen_;
    if (buf_.size() >= 2 * k_) compact();
    // Once k candidates exist, the bound is only refreshed on compaction;
    // keep it tight when cheap:
    if (seen_ >= k_ && buf_.size() == k_) {
      bound_ = std::max_element(buf_.begin(), buf_.end())->dist_sq;
    }
  }

  /// The k nearest candidates, sorted by distance (ties by id).
  std::vector<entry> finish() {
    if (buf_.size() > k_) compact();
    std::sort(buf_.begin(), buf_.end());
    return buf_;
  }

  void reset() {
    buf_.clear();
    seen_ = 0;
    bound_ = std::numeric_limits<double>::infinity();
  }

 private:
  void compact() {
    if (buf_.size() <= k_) return;
    std::nth_element(buf_.begin(), buf_.begin() + (k_ - 1), buf_.end());
    buf_.resize(k_);
    bound_ = std::max_element(buf_.begin(), buf_.end())->dist_sq;
  }

  std::size_t k_;
  std::size_t seen_ = 0;
  double bound_;
  std::vector<entry> buf_;
};

}  // namespace pargeo::kdtree
