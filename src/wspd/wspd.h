// Well-separated pair decomposition (Callahan–Kosaraju) over the kd-tree
// (paper Module 2). Used by the EMST, spanner, and clustering pipelines.
//
// Two tree nodes are s-well-separated when the distance between their
// bounding boxes is at least s times the larger box radius (half-diameter).
// The decomposition covers every unordered point pair exactly once.
#pragma once

#include <cstddef>
#include <vector>

#include "kdtree/kdtree.h"

namespace pargeo::wspd {

template <int D>
struct node_pair {
  const typename kdtree::tree<D>::node* a;
  const typename kdtree::tree<D>::node* b;
};

template <int D>
bool well_separated(const typename kdtree::tree<D>::node* a,
                    const typename kdtree::tree<D>::node* b, double s) {
  const double ra_sq = a->box.diameter_sq() / 4.0;
  const double rb_sq = b->box.diameter_sq() / 4.0;
  const double r_sq = std::max(ra_sq, rb_sq);
  return a->box.dist_sq(b->box) >= s * s * r_sq;
}

/// Computes the s-WSPD of the tree's point set. Parallel recursion; the
/// result order is deterministic.
///
/// Leaves are not split further, so (a) a leaf holding more than one point
/// yields a *self-pair* (a == b) covering its internal point pairs, and
/// (b) two non-separated leaves (duplicate or near-duplicate points) are
/// emitted as a regular pair even though they violate the separation
/// criterion. Build the tree with leaf_size = 1 for a textbook WSPD.
template <int D>
std::vector<node_pair<D>> decompose(const kdtree::tree<D>& t,
                                    double s = 2.0);

/// A t-spanner edge set from the WSPD: one representative edge per pair
/// (indices are the tree's original input-point ids). Guarantees spanning
/// ratio t for t > 1.
template <int D>
std::vector<std::pair<std::size_t, std::size_t>> spanner(
    const kdtree::tree<D>& t, double stretch);

}  // namespace pargeo::wspd
