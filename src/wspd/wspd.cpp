#include "wspd/wspd.h"

#include <utility>

#include "parallel/parallel.h"

namespace pargeo::wspd {

namespace {

template <int D>
using node_t = typename kdtree::tree<D>::node;

// Appends the smaller vector to the larger to keep merges cheap.
template <class T>
std::vector<T> merge_vecs(std::vector<T> a, std::vector<T> b) {
  if (a.size() < b.size()) std::swap(a, b);
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

template <int D>
std::vector<node_pair<D>> find_pairs(const node_t<D>* a, const node_t<D>* b,
                                     double s) {
  if (well_separated<D>(a, b, s)) return {{a, b}};
  // Split the node with the larger diameter (leaves cannot be split).
  const node_t<D>* split = a;
  const node_t<D>* other = b;
  if (a->is_leaf() ||
      (!b->is_leaf() && b->box.diameter_sq() > a->box.diameter_sq())) {
    split = b;
    other = a;
  }
  if (split->is_leaf()) {
    // Two non-separated leaves (duplicate or near-duplicate points): emit
    // the leaf pair as a unit so the decomposition still covers every
    // point pair exactly once.
    return {{a, b}};
  }
  std::vector<node_pair<D>> left, right;
  const bool spawn = split->size() + other->size() > 8192;
  auto doLeft = [&] { left = find_pairs<D>(split->left, other, s); };
  auto doRight = [&] { right = find_pairs<D>(split->right, other, s); };
  if (spawn) {
    par::par_do(doLeft, doRight);
  } else {
    doLeft();
    doRight();
  }
  return merge_vecs(std::move(left), std::move(right));
}

template <int D>
std::vector<node_pair<D>> wspd_rec(const node_t<D>* nd, double s) {
  if (nd->is_leaf()) {
    // Unsplittable multi-point leaf: emit a self-pair covering its
    // internal point pairs (see header comment).
    if (nd->size() > 1) return {{nd, nd}};
    return {};
  }
  std::vector<node_pair<D>> left, right, cross;
  const bool spawn = nd->size() > 8192;
  auto doLeft = [&] { left = wspd_rec<D>(nd->left, s); };
  auto doRight = [&] { right = wspd_rec<D>(nd->right, s); };
  auto doCross = [&] { cross = find_pairs<D>(nd->left, nd->right, s); };
  if (spawn) {
    par::par_do3(doLeft, doRight, doCross);
  } else {
    doLeft();
    doRight();
    doCross();
  }
  return merge_vecs(merge_vecs(std::move(left), std::move(right)),
                    std::move(cross));
}

}  // namespace

template <int D>
std::vector<node_pair<D>> decompose(const kdtree::tree<D>& t, double s) {
  return wspd_rec<D>(t.root(), s);
}

template <int D>
std::vector<std::pair<std::size_t, std::size_t>> spanner(
    const kdtree::tree<D>& t, double stretch) {
  // Callahan–Kosaraju: an s-WSPD with s = 4(t+1)/(t-1) yields a t-spanner
  // with one edge between arbitrary representatives of each pair. Leaf
  // self-pairs contribute their full (tiny) clique so intra-leaf distances
  // are spanned exactly.
  const double s = 4.0 * (stretch + 1.0) / (stretch - 1.0);
  auto pairs = decompose(t, s);
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> per(
      pairs.size());
  par::parallel_for(
      0, pairs.size(),
      [&](std::size_t i) {
        const auto* a = pairs[i].a;
        const auto* b = pairs[i].b;
        if (a == b) {
          for (std::size_t x = a->lo; x < a->hi; ++x) {
            for (std::size_t y = x + 1; y < a->hi; ++y) {
              per[i].emplace_back(t.id_of(x), t.id_of(y));
            }
          }
        } else {
          per[i].emplace_back(t.id_of(a->lo), t.id_of(b->lo));
        }
      },
      8);
  return par::flatten(per);
}

#define PARGEO_WSPD_INSTANTIATE(D)                          \
  template std::vector<node_pair<D>> decompose<D>(          \
      const kdtree::tree<D>&, double);                      \
  template std::vector<std::pair<std::size_t, std::size_t>> \
  spanner<D>(const kdtree::tree<D>&, double);

PARGEO_WSPD_INSTANTIATE(2)
PARGEO_WSPD_INSTANTIATE(3)
PARGEO_WSPD_INSTANTIATE(5)
PARGEO_WSPD_INSTANTIATE(7)

}  // namespace pargeo::wspd
