#include "graphgen/graphgen.h"

#include <algorithm>
#include <cmath>

#include "delaunay/delaunay.h"
#include "kdtree/kdtree.h"
#include "parallel/parallel.h"
#include "wspd/wspd.h"

namespace pargeo::graphgen {

namespace {

template <int D>
std::vector<std::vector<std::size_t>> knn_graph_impl(
    const std::vector<point<D>>& pts, std::size_t k) {
  kdtree::tree<D> t(pts);
  std::vector<std::vector<std::size_t>> out(pts.size());
  par::parallel_for(
      0, pts.size(),
      [&](std::size_t i) {
        // Ask for k+1 since the query point itself is stored in the tree.
        auto nn = t.knn(pts[i], std::min(k + 1, pts.size()));
        out[i].reserve(k);
        for (const auto& e : nn) {
          if (e.id == i) continue;
          out[i].push_back(e.id);
          if (out[i].size() == k) break;
        }
      },
      32);
  return out;
}

// True iff some point other than u and v lies in the beta-lune of (u, v):
// for beta >= 1, the intersection of the two disks of radius
// beta*|uv|/2 centered at c_u = u*(1-beta/2) + v*(beta/2) and symmetric
// c_v. beta = 1 gives the Gabriel diametral circle.
bool lune_occupied(const kdtree::tree<2>& t,
                   const std::vector<point<2>>& pts, std::size_t u,
                   std::size_t v, double beta) {
  const point<2>& pu = pts[u];
  const point<2>& pv = pts[v];
  const double r = beta * pu.dist(pv) / 2.0;
  const point<2> cu = pu * (1.0 - beta / 2.0) + pv * (beta / 2.0);
  const point<2> cv = pv * (1.0 - beta / 2.0) + pu * (beta / 2.0);
  // Candidates from one disk (range search), then exact lune membership.
  // Shrink by a relative epsilon so boundary points (u, v themselves at
  // beta = 1) are not miscounted through rounding.
  const double tol = 1e-12 * (1.0 + r);
  auto cand = t.range_ball(cu, r);
  for (const std::size_t w : cand) {
    if (w == u || w == v) continue;
    if (pts[w].dist(cu) < r - tol && pts[w].dist(cv) < r - tol) {
      return true;
    }
  }
  return false;
}

edge_list filter_delaunay(const std::vector<point<2>>& pts, double beta) {
  auto tr = delaunay::triangulate(pts);
  auto edges = tr.edges();
  kdtree::tree<2> t(pts);
  std::vector<uint8_t> keep(edges.size());
  par::parallel_for(
      0, edges.size(),
      [&](std::size_t i) {
        keep[i] =
            !lune_occupied(t, pts, edges[i].first, edges[i].second, beta);
      },
      16);
  return par::pack(edges, keep);
}

}  // namespace

std::vector<std::vector<std::size_t>> knn_graph(
    const std::vector<point<2>>& pts, std::size_t k) {
  return knn_graph_impl<2>(pts, k);
}

std::vector<std::vector<std::size_t>> knn_graph3(
    const std::vector<point<3>>& pts, std::size_t k) {
  return knn_graph_impl<3>(pts, k);
}

edge_list delaunay_graph(const std::vector<point<2>>& pts) {
  return delaunay::triangulate(pts).edges();
}

edge_list gabriel_graph(const std::vector<point<2>>& pts) {
  return filter_delaunay(pts, 1.0);
}

edge_list beta_skeleton(const std::vector<point<2>>& pts, double beta) {
  return filter_delaunay(pts, beta);
}

edge_list spanner(const std::vector<point<2>>& pts, double stretch) {
  // leaf_size = 1: the stretch guarantee needs a point-level WSPD.
  kdtree::tree<2> t(pts, kdtree::split_policy::object_median, 1);
  auto edges = wspd::spanner<2>(t, stretch);
  for (auto& e : edges) {
    if (e.first > e.second) std::swap(e.first, e.second);
  }
  par::sort(edges);
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace pargeo::graphgen
