// Spatial graph generators (paper Module 3).
//
//   * knn_graph       — directed k-NN edges from kd-tree batch queries.
//   * delaunay_graph  — edges of the 2D Delaunay triangulation.
//   * gabriel_graph   — Delaunay edges whose diametral circle is empty
//     (beta-skeleton with beta = 1), tested with kd-tree range search.
//   * beta_skeleton   — lune-based beta-skeleton for beta >= 1 (subset of
//     the Delaunay graph), emptiness tested with kd-tree range search.
//   * spanner         — WSPD-based t-spanner (re-exported from wspd).
//
// Edges are undirected pairs (u < v), sorted, except knn_graph which is
// directed (i -> each of its k neighbors).
#pragma once

#include <cstddef>
#include <vector>

#include "core/point.h"

namespace pargeo::graphgen {

using edge_list = std::vector<std::pair<std::size_t, std::size_t>>;

/// Directed k-NN graph: row i lists the k nearest neighbors of point i
/// (excluding i itself).
std::vector<std::vector<std::size_t>> knn_graph(
    const std::vector<point<2>>& pts, std::size_t k);
std::vector<std::vector<std::size_t>> knn_graph3(
    const std::vector<point<3>>& pts, std::size_t k);

/// Undirected Delaunay edges.
edge_list delaunay_graph(const std::vector<point<2>>& pts);

/// Gabriel graph (beta-skeleton, beta = 1).
edge_list gabriel_graph(const std::vector<point<2>>& pts);

/// Lune-based beta-skeleton for beta in [1, 2].
edge_list beta_skeleton(const std::vector<point<2>>& pts, double beta);

/// WSPD t-spanner edges (stretch > 1).
edge_list spanner(const std::vector<point<2>>& pts, double stretch);

}  // namespace pargeo::graphgen
