// 2D Delaunay triangulation (paper Module 3's Delaunay graph generator).
//
// Bowyer–Watson incremental construction: points are inserted in Morton
// order (locality for the walk-based point location), each insertion
// carves the cavity of circumcircle-violating triangles and re-fans it
// around the new vertex. Predicates are the filtered orient2d / incircle
// from core. The paper does not claim a novel parallel Delaunay; ParGeo
// "also generates the Delaunay graph" — graph extraction and all
// downstream filters (Gabriel, beta-skeleton) are parallel.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/point.h"

namespace pargeo::delaunay {

struct triangulation {
  /// Triangles as CCW triples of input-point indices (super-triangle
  /// artifacts removed).
  std::vector<std::array<std::size_t, 3>> triangles;

  /// Unique undirected edges (u < v), sorted lexicographically.
  std::vector<std::pair<std::size_t, std::size_t>> edges() const;
};

/// Triangulates `pts`. Duplicate points are ignored (first copy wins).
/// Inputs whose points are all collinear yield an empty triangulation.
triangulation triangulate(const std::vector<point<2>>& pts);

}  // namespace pargeo::delaunay
