#include "delaunay/delaunay.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/predicates.h"
#include "mortonsort/mortonsort.h"
#include "parallel/parallel.h"

namespace pargeo::delaunay {

namespace {

using pt = point<2>;

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

struct tri {
  std::array<std::size_t, 3> v;    // CCW vertex ids
  std::array<std::size_t, 3> nbr;  // neighbor across edge (v[i], v[i+1])
  bool dead = false;
};

class builder {
 public:
  explicit builder(const std::vector<pt>& pts) : in_(pts) {
    // Working vertex array: input points then the three super vertices.
    verts_ = pts;
    double span = 1;
    pt lo = pts[0], hi = pts[0];
    for (const auto& p : pts) {
      lo[0] = std::min(lo[0], p[0]);
      lo[1] = std::min(lo[1], p[1]);
      hi[0] = std::max(hi[0], p[0]);
      hi[1] = std::max(hi[1], p[1]);
    }
    span = std::max({hi[0] - lo[0], hi[1] - lo[1], 1.0});
    const pt c = (lo + hi) / 2.0;
    const double m = 64 * span;
    super_ = verts_.size();
    verts_.push_back(pt{{c[0] - 2 * m, c[1] - m}});
    verts_.push_back(pt{{c[0] + 2 * m, c[1] - m}});
    verts_.push_back(pt{{c[0], c[1] + 2 * m}});
    tris_.push_back({{super_, super_ + 1, super_ + 2},
                     {kNone, kNone, kNone},
                     false});
    last_ = 0;
  }

  void insert_all() {
    const auto order = mortonsort::morton_order<2>(in_);
    for (const std::size_t i : order) insert(i);
  }

  triangulation finish() {
    triangulation out;
    out.triangles.reserve(tris_.size() / 2);
    for (const auto& t : tris_) {
      if (t.dead) continue;
      if (t.v[0] >= super_ || t.v[1] >= super_ || t.v[2] >= super_) {
        continue;  // touches the super-triangle
      }
      out.triangles.push_back(t.v);
    }
    return out;
  }

 private:
  // Walk from the last-touched triangle toward p; returns a triangle that
  // contains p (or on whose boundary p lies).
  std::size_t locate(const pt& p) const {
    std::size_t cur = last_;
    std::size_t prevEdgeNbr = kNone;
    for (std::size_t steps = 0; steps < 4 * tris_.size() + 16; ++steps) {
      const tri& t = tris_[cur];
      std::size_t next = kNone;
      for (int e = 0; e < 3; ++e) {
        const std::size_t nb = t.nbr[e];
        if (nb == prevEdgeNbr && nb != kNone) continue;
        if (orient2d(verts_[t.v[e]], verts_[t.v[(e + 1) % 3]], p) < 0) {
          next = nb;
          break;
        }
      }
      if (next == kNone) {
        // No strictly-violated crossable edge: p is inside or on boundary.
        bool inside = true;
        for (int e = 0; e < 3; ++e) {
          if (orient2d(verts_[t.v[e]], verts_[t.v[(e + 1) % 3]], p) < 0) {
            inside = false;
          }
        }
        if (inside) return cur;
        // Stuck against the hull (numerically); restart a full scan.
        break;
      }
      prevEdgeNbr = cur;
      cur = next;
    }
    // Fallback: linear scan (rare; guarantees termination).
    for (std::size_t i = 0; i < tris_.size(); ++i) {
      if (tris_[i].dead) continue;
      bool inside = true;
      for (int e = 0; e < 3; ++e) {
        if (orient2d(verts_[tris_[i].v[e]], verts_[tris_[i].v[(e + 1) % 3]],
                     p) < 0) {
          inside = false;
          break;
        }
      }
      if (inside) return i;
    }
    return kNone;
  }

  bool in_circle(const tri& t, const pt& p) const {
    return incircle(verts_[t.v[0]], verts_[t.v[1]], verts_[t.v[2]], p) > 0;
  }

  void insert(std::size_t pid) {
    const pt& p = verts_[pid];
    const std::size_t t0 = locate(p);
    if (t0 == kNone) return;  // numerically unlocatable; skip
    // Duplicate detection: p equal to a vertex of the containing triangle.
    for (const std::size_t v : tris_[t0].v) {
      if (verts_[v] == p) return;
    }
    // Grow the cavity: BFS over circumcircle-violating triangles.
    cavity_.clear();
    boundary_.clear();
    stack_.clear();
    stack_.push_back(t0);
    tris_[t0].dead = true;
    cavity_.push_back(t0);
    while (!stack_.empty()) {
      const std::size_t ti = stack_.back();
      stack_.pop_back();
      for (int e = 0; e < 3; ++e) {
        const std::size_t nb = tris_[ti].nbr[e];
        if (nb == kNone || !tris_[nb].dead) {
          if (nb == kNone || !in_circle(tris_[nb], p)) {
            boundary_.push_back({ti, e});
            continue;
          }
          tris_[nb].dead = true;
          cavity_.push_back(nb);
          stack_.push_back(nb);
        }
      }
    }
    // Re-fan: one triangle per boundary edge (u, w) -> (u, w, pid).
    byStart_.clear();
    byEnd_.clear();
    const std::size_t base = tris_.size();
    for (std::size_t b = 0; b < boundary_.size(); ++b) {
      const auto [ti, e] = boundary_[b];
      const std::size_t u = tris_[ti].v[e];
      const std::size_t w = tris_[ti].v[(e + 1) % 3];
      const std::size_t outside = tris_[ti].nbr[e];
      const std::size_t nt = base + b;
      tris_.push_back({{u, w, pid}, {outside, kNone, kNone}, false});
      if (outside != kNone) {
        tri& o = tris_[outside];
        for (int e2 = 0; e2 < 3; ++e2) {
          if (o.v[e2] == w && o.v[(e2 + 1) % 3] == u) {
            o.nbr[e2] = nt;
            break;
          }
        }
      }
      byStart_[u] = nt;
      byEnd_[w] = nt;
    }
    for (std::size_t b = 0; b < boundary_.size(); ++b) {
      tri& t = tris_[base + b];
      t.nbr[1] = byStart_.at(t.v[1]);  // edge (w, pid)
      t.nbr[2] = byEnd_.at(t.v[0]);    // edge (pid, u)
    }
    last_ = base;
  }

  const std::vector<pt>& in_;
  std::vector<pt> verts_;
  std::vector<tri> tris_;
  std::size_t super_ = 0;
  std::size_t last_ = 0;
  // Scratch buffers reused across insertions.
  std::vector<std::size_t> cavity_, stack_;
  std::vector<std::pair<std::size_t, int>> boundary_;
  std::unordered_map<std::size_t, std::size_t> byStart_, byEnd_;
};

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> triangulation::edges()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> es;
  es.reserve(3 * triangles.size());
  for (const auto& t : triangles) {
    for (int e = 0; e < 3; ++e) {
      const std::size_t u = t[e];
      const std::size_t v = t[(e + 1) % 3];
      es.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  par::sort(es);
  es.erase(std::unique(es.begin(), es.end()), es.end());
  return es;
}

triangulation triangulate(const std::vector<point<2>>& pts) {
  if (pts.size() < 3) return {};
  builder b(pts);
  b.insert_all();
  return b.finish();
}

}  // namespace pargeo::delaunay
