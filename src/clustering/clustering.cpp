#include "clustering/clustering.h"

#include <algorithm>
#include <numeric>

#include "emst/emst.h"
#include "kdtree/kdtree.h"
#include "parallel/parallel.h"

namespace pargeo::clustering {

namespace {

class union_find {
 public:
  explicit union_find(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

template <int D>
std::vector<merge> single_linkage(const std::vector<point<D>>& pts) {
  const std::size_t n = pts.size();
  if (n < 2) return {};
  auto mst = emst::emst<D>(pts);  // already sorted by weight
  // Process edges in weight order; track the current dendrogram node of
  // each union-find root.
  union_find uf(n);
  std::vector<std::size_t> clusterOf(n);
  std::iota(clusterOf.begin(), clusterOf.end(), std::size_t{0});
  std::vector<merge> out;
  out.reserve(n - 1);
  for (const auto& e : mst) {
    const std::size_t ra = uf.find(e.u);
    const std::size_t rb = uf.find(e.v);
    const std::size_t ca = clusterOf[ra];
    const std::size_t cb = clusterOf[rb];
    uf.unite(ra, rb);
    const std::size_t newRoot = uf.find(ra);
    clusterOf[newRoot] = n + out.size();
    out.push_back({std::min(ca, cb), std::max(ca, cb), e.weight});
  }
  return out;
}

std::vector<std::size_t> cut_dendrogram(std::size_t n,
                                        const std::vector<merge>& dendro,
                                        double threshold) {
  // Union all merges with height <= threshold, then densify labels.
  union_find uf(n);
  std::vector<std::pair<std::size_t, std::size_t>> members;  // node -> rep
  // Recover the two representative leaves of every dendrogram node by
  // replaying merges; node id n+i maps to one leaf inside it.
  std::vector<std::size_t> leafOf(n + dendro.size());
  std::iota(leafOf.begin(), leafOf.begin() + n, std::size_t{0});
  for (std::size_t i = 0; i < dendro.size(); ++i) {
    leafOf[n + i] = leafOf[dendro[i].a];
    if (dendro[i].height <= threshold) {
      uf.unite(leafOf[dendro[i].a], leafOf[dendro[i].b]);
    }
  }
  std::vector<std::size_t> labels(n);
  std::vector<std::size_t> remap(n, kNoise);
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = uf.find(i);
    if (remap[r] == kNoise) remap[r] = next++;
    labels[i] = remap[r];
  }
  return labels;
}

template <int D>
std::vector<std::size_t> dbscan(const std::vector<point<D>>& pts,
                                double eps, std::size_t min_pts) {
  const std::size_t n = pts.size();
  if (n == 0) return {};
  kdtree::tree<D> t(pts);
  // Phase 1 (parallel): epsilon-neighborhoods and core flags.
  std::vector<std::vector<std::size_t>> nbrs(n);
  std::vector<uint8_t> core(n);
  par::parallel_for(
      0, n,
      [&](std::size_t i) {
        nbrs[i] = t.range_ball(pts[i], eps);
        core[i] = nbrs[i].size() >= min_pts;  // includes the point itself
      },
      16);
  // Phase 2: union core points within eps (sequential over the adjacency
  // computed in parallel; the union-find scan is cheap).
  union_find uf(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    for (const std::size_t j : nbrs[i]) {
      if (core[j]) uf.unite(i, j);
    }
  }
  // Phase 3: labels — core components first, then border points attach to
  // any core neighbor; everything else is noise.
  std::vector<std::size_t> labels(n, kNoise);
  std::vector<std::size_t> remap(n, kNoise);
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    const std::size_t r = uf.find(i);
    if (remap[r] == kNoise) remap[r] = next++;
    labels[i] = remap[r];
  }
  par::parallel_for(
      0, n,
      [&](std::size_t i) {
        if (core[i] || labels[i] != kNoise) return;
        for (const std::size_t j : nbrs[i]) {
          if (core[j]) {
            labels[i] = labels[j];
            break;
          }
        }
      },
      64);
  return labels;
}

#define PARGEO_CLUSTER_INSTANTIATE(D)                                \
  template std::vector<merge> single_linkage<D>(                     \
      const std::vector<point<D>>&);                                 \
  template std::vector<std::size_t> dbscan<D>(                       \
      const std::vector<point<D>>&, double, std::size_t);

PARGEO_CLUSTER_INSTANTIATE(2)
PARGEO_CLUSTER_INSTANTIATE(3)
PARGEO_CLUSTER_INSTANTIATE(5)
PARGEO_CLUSTER_INSTANTIATE(7)

}  // namespace pargeo::clustering
