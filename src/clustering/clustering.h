// Geometric clustering built on the library's spatial primitives (the
// paper's Module 2 pipeline: kd-tree -> WSPD -> EMST -> hierarchical
// clustering, citing Wang et al. [56]; plus density clustering via
// kd-tree range search).
//
//   * single_linkage — exact single-linkage dendrogram obtained by
//     processing EMST edges in weight order (equivalent to HDBSCAN with
//     min_pts = 1).
//   * cut_dendrogram — flat clusters at a distance threshold.
//   * dbscan         — classic DBSCAN; neighborhoods from parallel
//     kd-tree range queries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/point.h"

namespace pargeo::clustering {

/// One agglomeration step: clusters `a` and `b` merge at `height` into a
/// new cluster with id `n + step_index`.
struct merge {
  std::size_t a;
  std::size_t b;
  double height;
};

/// Single-linkage dendrogram: n-1 merges in nondecreasing height order.
/// Cluster ids: 0..n-1 are singletons, n+i is the result of merges[i].
template <int D>
std::vector<merge> single_linkage(const std::vector<point<D>>& pts);

/// Flat clustering from a dendrogram: labels in [0, k) for the clusters
/// obtained by stopping all merges with height > threshold.
std::vector<std::size_t> cut_dendrogram(std::size_t n,
                                        const std::vector<merge>& dendro,
                                        double threshold);

/// DBSCAN labels: >= 0 cluster id, kNoise for noise points.
inline constexpr std::size_t kNoise = static_cast<std::size_t>(-1);

template <int D>
std::vector<std::size_t> dbscan(const std::vector<point<D>>& pts,
                                double eps, std::size_t min_pts);

}  // namespace pargeo::clustering
