// QSBR-style epoch-based reclamation for index snapshot structure — the
// replacement for the per-shard write gate that used to pin bdltree
// snapshots (see ROADMAP "lock-free ingest + epoch reclamation"; the
// discipline follows the quiescent-state reclaimers in setbench's
// recordmgr family).
//
// Model: a single global epoch counter plus a fixed array of reader slots.
// A reader *enters* by claiming a free slot and stamping it with the
// current epoch (RAII `guard`); while the slot is stamped, no structure
// retired at an epoch >= that stamp will be destroyed. Writers never wait
// for readers: when they supersede a structure version (an old vEB tree, a
// Morton array, a kd-tree base) they `retire()` it onto a limbo list
// stamped with the current epoch and move on. At drain boundaries the
// service calls `advance_and_reclaim()`: the global epoch advances, the
// minimum epoch across occupied reader slots is computed, and every limbo
// entry retired strictly before that minimum is released.
//
// Retired objects are handed over as `shared_ptr<const void>` — the limbo
// list holds the *last* structural reference, so destruction of a retired
// version happens at a reclaim point on the drain thread (bounded, and off
// the reader tail-latency path) instead of wherever the final reader
// happens to drop its reference. A reader that still shares ownership of a
// retired version keeps it alive through the refcount regardless, so epoch
// accounting bugs can only delay reclamation, never cause use-after-free —
// but the stress oracle in tests/test_epoch_reclaim.cpp drops the refcount
// on purpose and leans on the epochs alone.
//
// Counters (surfaced as service_stats / Prometheus families):
//   retired        — versions pushed onto limbo so far
//   reclaimed      — versions destroyed by advance_and_reclaim
//   reclaim_stalls — reclaim passes that freed nothing while limbo was
//                    non-empty (an old reader is holding the epoch back)
//   epoch_lag      — global epoch minus the slowest active reader's epoch
//                    at the last reclaim pass (0 when no reader is active)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace pargeo::query {

struct reclaim_counters {
  std::uint64_t retired = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t reclaim_stalls = 0;
  std::uint64_t epoch_lag = 0;
  std::uint64_t limbo = 0;
  std::uint64_t epoch = 0;
};

class epoch_reclaimer {
 public:
  static constexpr std::size_t kMaxReaders = 64;

  class guard {
   public:
    guard() = default;
    guard(epoch_reclaimer* d, std::size_t slot) : d_(d), slot_(slot) {}
    guard(guard&& o) noexcept : d_(o.d_), slot_(o.slot_) { o.d_ = nullptr; }
    guard& operator=(guard&& o) noexcept {
      if (this != &o) {
        release();
        d_ = o.d_;
        slot_ = o.slot_;
        o.d_ = nullptr;
      }
      return *this;
    }
    guard(const guard&) = delete;
    guard& operator=(const guard&) = delete;
    ~guard() { release(); }

    void release() {
      if (d_) {
        d_->slots_[slot_].e.store(0, std::memory_order_release);
        d_ = nullptr;
      }
    }

   private:
    epoch_reclaimer* d_ = nullptr;
    std::size_t slot_ = 0;
  };

  /// Enter the current epoch. Blocks (yield-spin) only in the pathological
  /// case of > kMaxReaders concurrent guards; the service's reader pools
  /// are far smaller.
  guard enter() {
    const std::uint64_t e = global_.load(std::memory_order_seq_cst);
    for (;;) {
      for (std::size_t i = 0; i < kMaxReaders; ++i) {
        std::uint64_t expect = 0;
        if (slots_[i].e.compare_exchange_strong(expect, e,
                                                std::memory_order_seq_cst)) {
          return guard(this, i);
        }
      }
      std::this_thread::yield();
    }
  }

  /// Hand a superseded structure version to the limbo list. The list takes
  /// (shared) ownership; the version is destroyed by a later
  /// advance_and_reclaim once every reader that could have seen it left.
  void retire(std::shared_ptr<const void> obj) {
    if (!obj) return;
    const std::uint64_t e = global_.load(std::memory_order_seq_cst);
    std::lock_guard<std::mutex> lk(mu_);
    limbo_.push_back({e, std::move(obj)});
    retired_.fetch_add(1, std::memory_order_relaxed);
    limbo_depth_.store(limbo_.size(), std::memory_order_relaxed);
  }

  /// Advance the global epoch and release every limbo entry retired
  /// strictly before the slowest active reader. Returns how many versions
  /// were destroyed (destruction runs outside the limbo lock).
  std::size_t advance_and_reclaim() {
    const std::uint64_t next =
        global_.fetch_add(1, std::memory_order_seq_cst) + 1;
    std::uint64_t min_active = next;
    for (std::size_t i = 0; i < kMaxReaders; ++i) {
      const std::uint64_t v = slots_[i].e.load(std::memory_order_seq_cst);
      if (v != 0 && v < min_active) min_active = v;
    }
    epoch_lag_.store(next - min_active, std::memory_order_relaxed);

    std::vector<entry> freed;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (limbo_.empty()) return 0;
      auto it = limbo_.begin();
      while (it != limbo_.end()) {
        if (it->epoch < min_active) {
          freed.push_back(std::move(*it));
          it = limbo_.erase(it);
        } else {
          ++it;
        }
      }
      if (freed.empty()) {
        reclaim_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
      limbo_depth_.store(limbo_.size(), std::memory_order_relaxed);
    }
    reclaimed_.fetch_add(freed.size(), std::memory_order_relaxed);
    return freed.size();  // `freed` destructs here, releasing the versions
  }

  std::uint64_t epoch() const {
    return global_.load(std::memory_order_acquire);
  }

  reclaim_counters counters() const {
    reclaim_counters c;
    c.retired = retired_.load(std::memory_order_relaxed);
    c.reclaimed = reclaimed_.load(std::memory_order_relaxed);
    c.reclaim_stalls = reclaim_stalls_.load(std::memory_order_relaxed);
    c.epoch_lag = epoch_lag_.load(std::memory_order_relaxed);
    c.limbo = limbo_depth_.load(std::memory_order_relaxed);
    c.epoch = global_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  struct entry {
    std::uint64_t epoch;
    std::shared_ptr<const void> obj;
  };

  struct alignas(64) slot {
    std::atomic<std::uint64_t> e{0};  // 0 = quiescent
  };

  std::atomic<std::uint64_t> global_{1};
  slot slots_[kMaxReaders];

  std::mutex mu_;
  std::vector<entry> limbo_;

  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::atomic<std::uint64_t> reclaim_stalls_{0};
  std::atomic<std::uint64_t> epoch_lag_{0};
  std::atomic<std::uint64_t> limbo_depth_{0};
};

}  // namespace pargeo::query
