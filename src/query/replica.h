// Replicated read tier over the op log (query/oplog.h): N extra
// query_service instances trailing the primary's log by epochs, plus the
// tiny front door that scatters reads across them under a staleness
// bound.
//
//     writes                    reads (staleness-bounded)
//       |                          |
//       v                          v
//   +---------+   append    +--------------+   pick freshest eligible
//   | primary | ----------> |    op log    |        replica_router
//   +---------+             +--------------+       /      |      \
//                             | tail (epoch      v       v       v
//                             |  order)      +-------+ +-------+ +-------+
//                             +------------> | rep 0 | | rep 1 | | rep 2 |
//                                            +-------+ +-------+ +-------+
//                                             applied   applied   applied
//                                             epoch 41  epoch 42  epoch 40
//
// - `replica_set<D>` hosts the replicas: each is a query_service built
//   from the primary's config with the self-mutating subsystems disabled
//   (no TTL expiry, no stripe rebalancing — those arrive through the log
//   as `expire` and `rebalance` groups, replayed verbatim), fed by a tail
//   thread that reads new log groups in epoch order and hands them to
//   `apply_replayed()`. Because replay re-issues the primary's exact
//   backend-call sequence, a replica's answers are byte-identical to the
//   primary's at every epoch boundary.
// - `replica_router<D>` is the front door. Writes go to the primary
//   (completions carry `ticket_result::commit_epoch`). A read-only batch
//   goes to the freshest replica whose `applied_epoch` clears BOTH
//   bounds: the staleness bound `head - max_epoch_lag` (never read data
//   more than `max_epoch_lag` committed groups old) and the caller's
//   read-your-writes floor `min_epoch` (pass the commit_epoch from your
//   last write completion to be guaranteed to see it). When no replica
//   qualifies the read falls back to the primary — always correct, just
//   not offloaded — and is counted.
//
// Deterministic tests build the set with `start_tails = false` and step
// replication explicitly with `pump()` (replay everything currently in
// the log, wait for it to apply).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "query/checkpoint.h"
#include "query/oplog.h"
#include "query/query_service.h"

namespace pargeo::query {

/// Replica health, as tracked by replica_set and consulted by the
/// router. `lagging` is advisory (still serves reads, just behind);
/// `resyncing` is transient (a checkpoint bootstrap is being applied);
/// `quarantined` is sticky — the router stops sending reads and the
/// tail thread has given up (gap with no checkpoint to bridge it, or
/// replay errors that could not be healed).
enum class replica_health : std::uint8_t {
  healthy = 0,
  lagging = 1,
  resyncing = 2,
  quarantined = 3,
};

inline const char* replica_health_name(replica_health h) {
  switch (h) {
    case replica_health::healthy:
      return "healthy";
    case replica_health::lagging:
      return "lagging";
    case replica_health::resyncing:
      return "resyncing";
    case replica_health::quarantined:
      return "quarantined";
  }
  return "unknown";
}

/// Derives a replica's config from the primary's: same backend, shards,
/// routing policy, and drain mode (replay re-issues explicit per-shard
/// calls, so any drain mode converges), but with TTL expiry and stripe
/// rebalancing off — a replica must never originate writes of its own,
/// or it diverges from the log.
inline service_config replica_config(service_config cfg) {
  cfg.point_ttl_ns = 0;
  cfg.ttl_now = nullptr;
  cfg.rebalance_threshold = 0;
  // Durability belongs to the primary: a replica opening the same
  // log_dir would rewrite the primary's durable log with its own (empty)
  // ring. Replicas are rebuildable from log + checkpoint by definition.
  cfg.log_dir.clear();
  cfg.checkpoint_every = 0;
  return cfg;
}

/// N query_service replicas tailing one op log in epoch order.
template <int D>
class replica_set {
 public:
  /// With `start_tails` (the default), one tail thread per replica
  /// streams new log groups into it as they commit; `pump()` is then
  /// unavailable. With tails off, nothing replays until pump() — the
  /// deterministic mode tests and epoch-boundary oracles use.
  /// `checkpoint_dir` names the primary's durable directory (its
  /// cfg.log_dir). When set, a tail that falls off the retained log ring
  /// — or replays a group that errors — self-heals by bootstrapping from
  /// the latest checkpoint and re-tailing from its epoch, instead of
  /// dying. When empty, those conditions quarantine the replica.
  replica_set(std::shared_ptr<op_log<D>> log, const service_config& primary_cfg,
              std::size_t replicas, bool start_tails = true,
              std::string checkpoint_dir = std::string())
      : log_(std::move(log)),
        checkpoint_dir_(std::move(checkpoint_dir)),
        tails_running_(start_tails) {
    if (!log_) {
      throw std::invalid_argument("replica_set: null op_log");
    }
    const service_config cfg = replica_config(primary_cfg);
    services_.reserve(replicas);
    states_.reserve(replicas);
    for (std::size_t i = 0; i < replicas; ++i) {
      services_.push_back(std::make_unique<query_service<D>>(cfg));
      states_.push_back(std::make_unique<rep_state>());
    }
    enqueued_.assign(replicas, 0);
    if (start_tails) {
      tails_.reserve(replicas);
      for (std::size_t i = 0; i < replicas; ++i) {
        tails_.emplace_back([this, i] { tail_loop(i); });
      }
    }
  }

  ~replica_set() { close(); }
  replica_set(const replica_set&) = delete;
  replica_set& operator=(const replica_set&) = delete;

  std::size_t size() const { return services_.size(); }
  query_service<D>& replica(std::size_t i) { return *services_[i]; }
  const query_service<D>& replica(std::size_t i) const {
    return *services_[i];
  }

  /// Last log epoch replica i has dispatched to its lanes (reads
  /// submitted after observing it are guaranteed to see those writes).
  std::uint64_t applied_epoch(std::size_t i) const {
    return services_[i]->applied_epoch();
  }

  /// The stalest replica's position (0 with no replicas).
  std::uint64_t min_applied_epoch() const {
    std::uint64_t m = 0;
    for (std::size_t i = 0; i < services_.size(); ++i) {
      const std::uint64_t a = services_[i]->applied_epoch();
      if (i == 0 || a < m) m = a;
    }
    return m;
  }

  /// A tail thread hit a replay gap it could not heal (no checkpoint
  /// source, or the latest checkpoint is too old to bridge it). The
  /// replica stops advancing; message in tail_error().
  bool tail_failed() const {
    return tail_failed_.load(std::memory_order_acquire);
  }
  std::string tail_error() const {
    std::lock_guard<std::mutex> lk(err_mu_);
    return tail_error_;
  }

  /// Replica i's health. quarantined/resyncing come from the stored
  /// state; `lagging` is derived on read — healthy but trailing the log
  /// head by more than the tail window (it still serves, the router's
  /// staleness bound decides whether to use it).
  replica_health health(std::size_t i) const {
    const auto h = static_cast<replica_health>(
        states_[i]->health.load(std::memory_order_acquire));
    if (h == replica_health::healthy) {
      const std::uint64_t head = log_->head();
      const std::uint64_t a = services_[i]->applied_epoch();
      if (head > a && head - a > kWindow) return replica_health::lagging;
    }
    return h;
  }

  /// Checkpoint bootstraps replica i has performed to heal a gap or a
  /// replay divergence.
  std::uint64_t resyncs(std::size_t i) const {
    return states_[i]->resyncs.load(std::memory_order_acquire);
  }
  std::uint64_t total_resyncs() const {
    std::uint64_t n = 0;
    for (const auto& st : states_)
      n += st->resyncs.load(std::memory_order_acquire);
    return n;
  }

  /// Replicas currently quarantined (the router routes around them).
  std::size_t quarantined() const {
    std::size_t n = 0;
    for (const auto& st : states_) {
      if (static_cast<replica_health>(st->health.load(
              std::memory_order_acquire)) == replica_health::quarantined)
        ++n;
    }
    return n;
  }

  /// Point the set at (or away from) a checkpoint directory after
  /// construction. Quiescent callers only (before traffic / between
  /// pump() steps).
  void set_checkpoint_source(std::string dir) {
    checkpoint_dir_ = std::move(dir);
  }

  /// Quarantine a replica once it trails the log head by more than this
  /// many epochs (0 = never). Off by default: a slow-but-progressing
  /// replica is useful; this is the backstop for one that is effectively
  /// wedged while its thread still lives.
  void set_quarantine_lag(std::uint64_t epochs) { quarantine_lag_ = epochs; }

  /// Deterministic replication step (tails off only): replays every
  /// group currently in the log on every replica and waits until each
  /// replica's applied_epoch reaches the log head as of entry.
  void pump() {
    if (tails_running_) {
      throw std::logic_error(
          "replica_set::pump with tail threads running (they would "
          "double-apply); construct with start_tails = false");
    }
    const std::uint64_t head = log_->head();
    for (std::size_t i = 0; i < services_.size(); ++i) {
      bool healed_this_pump = false;
      for (;;) {
        while (enqueued_[i] < head) {
          std::vector<log_group<D>> groups;
          try {
            groups = log_->read_from(enqueued_[i], 64);
          } catch (const std::exception& e) {
            // Gap: the ring (or compaction) dropped epochs this replica
            // never consumed. Heal from the checkpoint or quarantine.
            const auto resumed = try_resync(i, enqueued_[i], e.what());
            if (!resumed) break;
            enqueued_[i] = *resumed;
            continue;
          }
          if (groups.empty()) break;
          for (auto& g : groups) {
            const std::uint64_t e = g.epoch;
            services_[i]->apply_replayed(std::move(g));
            enqueued_[i] = e;
          }
        }
        // Full-application barrier (pump callers gather()/size() the
        // replica right after) — applied_epoch cannot serve here, since
        // a resync rebuild moves it backwards.
        services_[i]->wait_replay_drained();
        // A group that errored during replay left this replica diverged:
        // heal by rebootstrapping from the checkpoint and re-replaying
        // the tail (build replaces contents, so re-application is
        // idempotent). One heal per pump — persistent errors would
        // otherwise loop forever.
        if (healed_this_pump) break;
        const auto back = heal_replay_errors(i);
        if (!back) break;
        healed_this_pump = true;
        enqueued_[i] = *back;
      }
    }
  }

  /// Blocks until replica i's applied_epoch reaches `epoch`.
  void wait_applied(std::size_t i, std::uint64_t epoch) const {
    while (services_[i]->applied_epoch() < epoch) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  /// Stops the tail threads and closes every replica. Idempotent; also
  /// run by the destructor.
  void close() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : tails_) {
      if (t.joinable()) t.join();
    }
    tails_.clear();
    tails_running_ = false;
    for (auto& s : services_) s->close();
  }

 private:
  // Replay-queue bound AND the "lagging" threshold in health().
  static constexpr std::uint64_t kWindow = 128;

  struct rep_state {
    std::atomic<std::uint8_t> health{
        static_cast<std::uint8_t>(replica_health::healthy)};
    std::atomic<std::uint64_t> resyncs{0};
    // replay_errors already healed by a resync; new errors are
    // count > baseline.
    std::atomic<std::size_t> error_baseline{0};
  };

  void quarantine(std::size_t i, const std::string& why) {
    states_[i]->health.store(
        static_cast<std::uint8_t>(replica_health::quarantined),
        std::memory_order_release);
    std::lock_guard<std::mutex> lk(err_mu_);
    tail_error_ = "replica " + std::to_string(i) + ": " + why;
    tail_failed_.store(true, std::memory_order_release);
  }

  // Bootstraps replica i from the latest checkpoint: one synthetic
  // bounds-carrying group of per-shard build records at the checkpoint
  // epoch (build replaces contents, so this is safe from any prior
  // state). Returns the epoch to resume tailing from, or nullopt after
  // quarantining. `require_newer`: a gap at `at` is only bridged by a
  // checkpoint AHEAD of it; divergence healing accepts any checkpoint.
  std::optional<std::uint64_t> try_resync(std::size_t i, std::uint64_t at,
                                          const std::string& why,
                                          bool require_newer = true) {
    if (checkpoint_dir_.empty()) {
      quarantine(i, why + " (no checkpoint source)");
      return std::nullopt;
    }
    checkpoint_data<D> ck;
    if (!read_latest_checkpoint<D>(checkpoint_dir_, ck)) {
      quarantine(i, why + " (no usable checkpoint in '" + checkpoint_dir_ +
                        "')");
      return std::nullopt;
    }
    if (require_newer && ck.epoch <= at) {
      quarantine(i, why + " (latest checkpoint epoch " +
                        std::to_string(ck.epoch) +
                        " cannot bridge a gap at " + std::to_string(at) +
                        ")");
      return std::nullopt;
    }
    states_[i]->health.store(
        static_cast<std::uint8_t>(replica_health::resyncing),
        std::memory_order_release);
    log_group<D> g;
    g.epoch = ck.epoch;
    g.origin = log_origin::bootstrap;
    if (ck.bounds_set) {
      g.has_bounds = true;
      g.split_dim = ck.split_dim;
      g.cuts = ck.cuts;
    }
    const std::size_t shards = services_[i]->config().shards;
    g.records.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      log_record<D> rec;
      rec.shard = static_cast<std::uint32_t>(s);
      rec.kind = log_op::build;
      if (s < ck.shard_points.size()) rec.pts = ck.shard_points[s];
      g.records.push_back(std::move(rec));
    }
    const std::size_t errs_before = services_[i]->replay_error_count();
    try {
      services_[i]->apply_replayed(std::move(g));
      // Not an epoch wait: the replica may already sit AHEAD of
      // ck.epoch (divergence healing), so only a queue-drain barrier
      // proves the rebuild actually ran.
      services_[i]->wait_replay_drained();
    } catch (const std::exception&) {
      return std::nullopt;  // replica closed under us
    }
    // The bootstrap group itself must have applied cleanly — silently
    // resetting the baseline over a failed rebuild would mask a replica
    // that is still diverged.
    if (services_[i]->replay_error_count() > errs_before) {
      quarantine(i, why + " (checkpoint bootstrap failed to apply)");
      return std::nullopt;
    }
    // Divergence (if any) is healed; only count errors after this point.
    states_[i]->error_baseline.store(services_[i]->replay_error_count(),
                                     std::memory_order_release);
    states_[i]->resyncs.fetch_add(1, std::memory_order_acq_rel);
    states_[i]->health.store(
        static_cast<std::uint8_t>(replica_health::healthy),
        std::memory_order_release);
    return ck.epoch;
  }

  // Replay errors leave a replica diverged from the log (the group was
  // skipped wholesale). With a checkpoint source the replica rebuilds
  // from the checkpoint and re-replays; without one it is quarantined.
  // Returns the epoch to resume from after a heal, nullopt otherwise.
  std::optional<std::uint64_t> heal_replay_errors(std::size_t i) {
    const std::size_t errs = services_[i]->replay_error_count();
    if (errs <= states_[i]->error_baseline.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    if (checkpoint_dir_.empty()) {
      quarantine(i, "replay errors with no checkpoint source (" +
                        std::to_string(errs) + " total)");
      return std::nullopt;
    }
    return try_resync(i, services_[i]->applied_epoch(), "replay divergence",
                      /*require_newer=*/false);
  }

  void tail_loop(std::size_t i) {
    // Keep the replay queue bounded: after handing off a window of
    // groups, wait for the replica to catch up to within the window
    // before tailing further (otherwise a slow replica buffers the whole
    // log in its queue).
    std::uint64_t at = 0;  // last epoch handed to the replica
    while (!stop_.load(std::memory_order_acquire)) {
      if (quarantine_lag_ > 0) {
        const std::uint64_t head = log_->head();
        const std::uint64_t a = services_[i]->applied_epoch();
        if (head > a && head - a > quarantine_lag_) {
          quarantine(i, "lag " + std::to_string(head - a) +
                            " exceeds quarantine bound " +
                            std::to_string(quarantine_lag_));
          return;
        }
      }
      if (!log_->wait_for_head(at, std::chrono::milliseconds(20))) continue;
      std::vector<log_group<D>> groups;
      try {
        groups = log_->read_from(at, 64);
      } catch (const std::exception& e) {
        // Fell off the retained ring (or compaction truncated under us):
        // resync from the checkpoint instead of dying.
        const auto resumed = try_resync(i, at, e.what());
        if (!resumed) return;
        at = *resumed;
        continue;
      }
      for (auto& g : groups) {
        const std::uint64_t e = g.epoch;
        try {
          services_[i]->apply_replayed(std::move(g));
        } catch (const std::exception&) {
          return;  // replica closed under us; tail is done
        }
        at = e;
        while (!stop_.load(std::memory_order_acquire) &&
               services_[i]->applied_epoch() + kWindow < at) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      if (const auto back = heal_replay_errors(i)) at = *back;
      if (static_cast<replica_health>(states_[i]->health.load(
              std::memory_order_acquire)) == replica_health::quarantined) {
        return;
      }
    }
  }

  std::shared_ptr<op_log<D>> log_;
  std::string checkpoint_dir_;
  std::uint64_t quarantine_lag_ = 0;  // 0 = lag never quarantines
  std::vector<std::unique_ptr<query_service<D>>> services_;
  std::vector<std::unique_ptr<rep_state>> states_;
  std::vector<std::uint64_t> enqueued_;  // pump() bookkeeping (tails off)
  std::vector<std::thread> tails_;
  bool tails_running_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> tail_failed_{false};
  mutable std::mutex err_mu_;
  std::string tail_error_;
};

/// Router counters (a snapshot; see replica_router::stats()).
struct router_stats {
  std::size_t writes = 0;             // batches sent to the primary as writes
  std::size_t reads_to_replicas = 0;  // read batches served by a replica
  std::size_t reads_to_primary = 0;   // read batches served by the primary
  std::size_t fallbacks = 0;  // reads wanting a replica, none eligible
};

/// The front door: writes to the primary, reads scattered across the
/// replica set under a staleness bound. Thread-safe (submit from any
/// number of producers); does not own the primary or the set.
template <int D>
class replica_router {
 public:
  /// `max_epoch_lag`: a replica may serve reads while trailing the log
  /// head by at most this many epochs (committed write groups). 0 =
  /// reads only from fully caught-up replicas.
  replica_router(query_service<D>& primary, replica_set<D>& replicas,
                 std::shared_ptr<op_log<D>> log, std::uint64_t max_epoch_lag)
      : primary_(primary),
        replicas_(replicas),
        log_(std::move(log)),
        max_epoch_lag_(max_epoch_lag) {
    if (!log_) {
      throw std::invalid_argument("replica_router: null op_log");
    }
  }

  std::uint64_t max_epoch_lag() const { return max_epoch_lag_; }

  /// Routes one batch. Writing (or mixed) batches go to the primary;
  /// their completions carry commit_epoch. Read-only batches go to the
  /// freshest replica whose applied epoch clears max(head -
  /// max_epoch_lag, min_epoch) — pass the commit_epoch of your last
  /// write as `min_epoch` for read-your-writes — with ties broken round
  /// robin, falling back to the primary when no replica qualifies.
  completion<D> submit(std::vector<request<D>> batch,
                       std::uint64_t min_epoch = 0) {
    bool read_only = true;
    for (const auto& r : batch) {
      if (!is_read(r.kind)) {
        read_only = false;
        break;
      }
    }
    if (!read_only) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.writes;
      }
      return primary_.submit(std::move(batch));
    }
    const std::size_t idx = pick_replica(min_epoch);
    if (idx == kPrimary) {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.reads_to_primary;
      if (replicas_.size() > 0) ++stats_.fallbacks;
    } else {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.reads_to_replicas;
    }
    return idx == kPrimary ? primary_.submit(std::move(batch))
                           : replicas_.replica(idx).submit(std::move(batch));
  }

  /// Synchronous convenience: submit + get.
  ticket_result<D> execute(std::vector<request<D>> batch,
                           std::uint64_t min_epoch = 0) {
    return submit(std::move(batch), min_epoch).get();
  }

  router_stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  static constexpr std::size_t kPrimary = static_cast<std::size_t>(-1);

  std::size_t pick_replica(std::uint64_t min_epoch) {
    const std::size_t n = replicas_.size();
    if (n == 0) return kPrimary;
    const std::uint64_t head = log_->head();
    const std::uint64_t staleness_floor =
        head > max_epoch_lag_ ? head - max_epoch_lag_ : 0;
    const std::uint64_t floor =
        min_epoch > staleness_floor ? min_epoch : staleness_floor;
    std::size_t best = kPrimary;
    std::uint64_t best_applied = 0;
    const std::size_t start =
        rr_.fetch_add(1, std::memory_order_relaxed) % n;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (start + k) % n;
      // Quarantined replicas are routed around entirely: their state may
      // be diverged (replay errors) or frozen (dead tail) — freshness
      // alone cannot clear them.
      if (replicas_.health(i) == replica_health::quarantined) continue;
      const std::uint64_t a = replicas_.applied_epoch(i);
      if (a < floor) continue;
      if (best == kPrimary || a > best_applied) {
        best = i;
        best_applied = a;
      }
    }
    return best;
  }

  query_service<D>& primary_;
  replica_set<D>& replicas_;
  std::shared_ptr<op_log<D>> log_;
  std::uint64_t max_epoch_lag_;
  std::atomic<std::uint64_t> rr_{0};
  mutable std::mutex mu_;
  router_stats stats_;
};

/// Prometheus text exposition of the replication tier: log head, the
/// staleness bound, per-replica applied-epoch and lag gauges, and the
/// router's routing counters. Append to the primary's metrics_text() for
/// one scrape-ready page.
template <int D>
inline std::string replication_metrics_text(
    const replica_set<D>& replicas, const op_log<D>& log,
    const router_stats* router = nullptr) {
  std::string out;
  char line[160];
  const auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  const std::uint64_t head = log.head();
  emit("# HELP pargeo_replica_applied_epoch Last op-log epoch replayed\n"
       "# TYPE pargeo_replica_applied_epoch gauge\n");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    emit("pargeo_replica_applied_epoch{replica=\"%zu\"} %llu\n", i,
         static_cast<unsigned long long>(replicas.applied_epoch(i)));
  }
  emit("# HELP pargeo_replica_lag Epochs behind the op-log head\n"
       "# TYPE pargeo_replica_lag gauge\n");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const std::uint64_t a = replicas.applied_epoch(i);
    emit("pargeo_replica_lag{replica=\"%zu\"} %llu\n", i,
         static_cast<unsigned long long>(head > a ? head - a : 0));
  }
  emit("# HELP pargeo_replica_health 0 healthy, 1 lagging, 2 resyncing, "
       "3 quarantined\n"
       "# TYPE pargeo_replica_health gauge\n");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    emit("pargeo_replica_health{replica=\"%zu\"} %u\n", i,
         static_cast<unsigned>(replicas.health(i)));
  }
  emit("# HELP pargeo_replica_resyncs_total Checkpoint bootstraps that "
       "healed a gap or divergence\n"
       "# TYPE pargeo_replica_resyncs_total counter\n");
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    emit("pargeo_replica_resyncs_total{replica=\"%zu\"} %llu\n", i,
         static_cast<unsigned long long>(replicas.resyncs(i)));
  }
  emit("# HELP pargeo_replicas_quarantined Replicas the router routes "
       "around\n"
       "# TYPE pargeo_replicas_quarantined gauge\n");
  emit("pargeo_replicas_quarantined %llu\n",
       static_cast<unsigned long long>(replicas.quarantined()));
  if (router != nullptr) {
    emit("# HELP pargeo_router_batches_total Batches routed, by destination\n"
         "# TYPE pargeo_router_batches_total counter\n");
    emit("pargeo_router_batches_total{dest=\"primary_write\"} %llu\n",
         static_cast<unsigned long long>(router->writes));
    emit("pargeo_router_batches_total{dest=\"replica_read\"} %llu\n",
         static_cast<unsigned long long>(router->reads_to_replicas));
    emit("pargeo_router_batches_total{dest=\"primary_read\"} %llu\n",
         static_cast<unsigned long long>(router->reads_to_primary));
    emit("# HELP pargeo_router_fallbacks_total Reads that wanted a replica "
         "but none was fresh enough\n"
         "# TYPE pargeo_router_fallbacks_total counter\n");
    emit("pargeo_router_fallbacks_total %llu\n",
         static_cast<unsigned long long>(router->fallbacks));
  }
  return out;
}

}  // namespace pargeo::query
