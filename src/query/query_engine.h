// Batched mixed-workload execution engine (query subsystem, layer 2 of 3).
//
// Accepts a heterogeneous, ordered stream of tagged requests (insert /
// erase / k-NN / box range / ball range) and executes it against any
// spatial_index backend with POP-style batching (Narayanan et al., 2021):
//
//   1. *Partition*: the stream is cut into phase groups — maximal runs of
//      same-class requests (insert | erase | read). Phase boundaries
//      preserve program order between writes and reads; within a phase,
//      requests are independent by construction.
//   2. *Execute*: a write phase becomes one batched update (the paper's
//      batch-dynamic entry points). A read phase is sharded by operation
//      shape (k-NN per distinct k, box ranges, ball ranges); each shard
//      executes data-parallel via pargeo::par inside the backend.
//   3. *Merge*: shard results are scattered back into per-request
//      `response` slots, so callers see answers in submission order.
//
// Per-phase wall-clock timings are recorded; a request's reported latency
// is its phase's duration (requests in a phase complete together).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/timer.h"
#include "query/spatial_index.h"

namespace pargeo::query {

enum class op : uint8_t { insert, erase, knn, range_box, range_ball };

inline const char* op_name(op o) {
  switch (o) {
    case op::insert: return "insert";
    case op::erase: return "erase";
    case op::knn: return "knn";
    case op::range_box: return "range_box";
    case op::range_ball: return "range_ball";
  }
  return "?";
}

/// True for operations that do not modify the index.
inline bool is_read(op o) {
  return o == op::knn || o == op::range_box || o == op::range_ball;
}

/// One tagged operation. Field use by kind: insert/erase -> p; knn -> p, k;
/// range_ball -> p (center), radius; range_box -> box.
template <int D>
struct request {
  op kind = op::knn;
  point<D> p{};
  std::size_t k = 0;
  double radius = 0;
  aabb<D> box{};

  static request make_insert(const point<D>& pt) {
    request r;
    r.kind = op::insert;
    r.p = pt;
    return r;
  }
  static request make_erase(const point<D>& pt) {
    request r;
    r.kind = op::erase;
    r.p = pt;
    return r;
  }
  static request make_knn(const point<D>& q, std::size_t k) {
    request r;
    r.kind = op::knn;
    r.p = q;
    r.k = k;
    return r;
  }
  static request make_range(const aabb<D>& b) {
    request r;
    r.kind = op::range_box;
    r.box = b;
    return r;
  }
  static request make_ball(const point<D>& center, double radius) {
    request r;
    r.kind = op::range_ball;
    r.p = center;
    r.radius = radius;
    return r;
  }
};

/// Answer for one request, in submission order. Write acknowledgements have
/// empty `points`; k-NN rows are sorted by distance, range rows unordered.
template <int D>
struct response {
  op kind = op::knn;
  std::size_t phase = 0;  // phase group this request executed in
  std::vector<point<D>> points;
};

struct phase_stats {
  op kind;                   // representative op class of the phase
  std::size_t num_requests;  // requests executed in the phase
  double seconds;            // wall-clock of the phase
};

struct engine_stats {
  std::size_t num_requests = 0;
  std::size_t num_reads = 0;
  std::size_t num_writes = 0;
  double seconds = 0;
  std::vector<phase_stats> phases;

  std::size_t num_phases() const { return phases.size(); }
  double ops_per_sec() const {
    return seconds > 0 ? static_cast<double>(num_requests) / seconds : 0;
  }
  void accumulate(const engine_stats& o) {
    num_requests += o.num_requests;
    num_reads += o.num_reads;
    num_writes += o.num_writes;
    seconds += o.seconds;
    phases.insert(phases.end(), o.phases.begin(), o.phases.end());
  }
};

template <int D>
struct batch_result {
  std::vector<response<D>> responses;  // responses[i] answers batch[i]
  engine_stats stats;
};

/// Shared phase discipline for batch executors (query_engine per shard,
/// query_service across shards): cuts `batch` into maximal same-class runs
/// (reads mix freely), invokes `on_phase(begin, end, read_phase)` for each,
/// and stamps responses' kind/phase ids plus all timing stats. A request's
/// reported latency is its phase's duration (phases complete together).
template <int D, class PhaseFn>
void execute_phases(const std::vector<request<D>>& batch,
                    std::vector<response<D>>& responses, engine_stats& stats,
                    PhaseFn&& on_phase) {
  responses.resize(batch.size());
  stats.num_requests = batch.size();

  timer total;
  std::size_t begin = 0;
  while (begin < batch.size()) {
    std::size_t end = begin + 1;
    const bool read_phase = is_read(batch[begin].kind);
    while (end < batch.size() &&
           (read_phase ? is_read(batch[end].kind)
                       : batch[end].kind == batch[begin].kind)) {
      ++end;
    }

    timer phase_clock;
    on_phase(begin, end, read_phase);
    const double secs = phase_clock.elapsed();
    if (read_phase) {
      stats.num_reads += end - begin;
    } else {
      stats.num_writes += end - begin;
    }

    const std::size_t phase_id = stats.phases.size();
    for (std::size_t i = begin; i < end; ++i) {
      responses[i].kind = batch[i].kind;
      responses[i].phase = phase_id;
    }
    stats.phases.push_back({batch[begin].kind, end - begin, secs});
    begin = end;
  }
  stats.seconds = total.elapsed();
}

namespace detail {

/// One read phase against any query target — the live `spatial_index<D>`
/// or an epoch `index_snapshot<D>` (both expose the same batch_knn /
/// batch_range / batch_ball shape). Shards the run by operation shape,
/// executes each shard with the target's data-parallel batch call, and
/// scatters rows back into the per-request response slots.
template <int D, class Target>
void execute_read_phase_on(const Target& target,
                           const std::vector<request<D>>& batch,
                           std::size_t begin, std::size_t end,
                           std::vector<response<D>>& responses) {
  std::map<std::size_t, std::vector<std::size_t>> knn_shards;  // k -> reqs
  std::vector<std::size_t> box_shard, ball_shard;
  for (std::size_t i = begin; i < end; ++i) {
    switch (batch[i].kind) {
      case op::knn: knn_shards[batch[i].k].push_back(i); break;
      case op::range_box: box_shard.push_back(i); break;
      default: ball_shard.push_back(i); break;
    }
  }

  for (const auto& [k, idx] : knn_shards) {
    if (k == 0) continue;  // k-NN with k=0: empty rows, skip the backend
    std::vector<point<D>> queries;
    queries.reserve(idx.size());
    for (std::size_t i : idx) queries.push_back(batch[i].p);
    auto rows = target.batch_knn(queries, k);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      responses[idx[j]].points = std::move(rows[j]);
    }
  }
  if (!box_shard.empty()) {
    std::vector<aabb<D>> boxes;
    boxes.reserve(box_shard.size());
    for (std::size_t i : box_shard) boxes.push_back(batch[i].box);
    auto rows = target.batch_range(boxes);
    for (std::size_t j = 0; j < box_shard.size(); ++j) {
      responses[box_shard[j]].points = std::move(rows[j]);
    }
  }
  if (!ball_shard.empty()) {
    std::vector<point<D>> centers;
    std::vector<double> radii;
    centers.reserve(ball_shard.size());
    radii.reserve(ball_shard.size());
    for (std::size_t i : ball_shard) {
      centers.push_back(batch[i].p);
      radii.push_back(batch[i].radius);
    }
    auto rows = target.batch_ball(centers, radii);
    for (std::size_t j = 0; j < ball_shard.size(); ++j) {
      responses[ball_shard[j]].points = std::move(rows[j]);
    }
  }
}

}  // namespace detail

/// Executes request batches against one backend. Not thread-safe: callers
/// submit batches from one thread and the engine parallelizes internally
/// (the paper's model — parallelism lives inside the batch).
template <int D>
class query_engine {
 public:
  explicit query_engine(std::unique_ptr<spatial_index<D>> index)
      : index_(std::move(index)) {}

  spatial_index<D>& index() { return *index_; }
  const spatial_index<D>& index() const { return *index_; }

  /// Loads the initial point set (replacing any current contents).
  void bootstrap(const std::vector<point<D>>& pts) { index_->build(pts); }

  /// Executes `batch` and returns per-request responses plus timing stats.
  batch_result<D> execute(const std::vector<request<D>>& batch) {
    batch_result<D> result;
    execute_phases<D>(batch, result.responses, result.stats,
                      [&](std::size_t begin, std::size_t end, bool read) {
                        if (read) {
                          detail::execute_read_phase_on<D>(*index_, batch,
                                                           begin, end,
                                                           result.responses);
                        } else {
                          execute_write_phase(batch, begin, end);
                        }
                      });
    return result;
  }

  /// Executes a read-only batch against an epoch snapshot instead of the
  /// live index. Touches no engine state (it is static on purpose), so the
  /// query_service's snapshot-read executors can run it concurrently with
  /// a write drain on the live index. Throws if the batch contains writes.
  static batch_result<D> execute_reads(const std::vector<request<D>>& batch,
                                       const index_snapshot<D>& snap) {
    batch_result<D> result;
    execute_phases<D>(batch, result.responses, result.stats,
                      [&](std::size_t begin, std::size_t end, bool read) {
                        if (!read) {
                          throw std::logic_error(
                              "execute_reads() requires a read-only batch");
                        }
                        detail::execute_read_phase_on<D>(snap, batch, begin,
                                                         end,
                                                         result.responses);
                      });
    return result;
  }

  /// Applies one same-kind write run `batch[begin, end)` as a single
  /// batched update against the backend. Public because the
  /// query_service's per-shard drain executors drive phases themselves
  /// (they intercept read phases for the k-NN result cache) and hand
  /// write runs back to the engine; same single-caller contract as
  /// execute().
  void apply_write_phase(const std::vector<request<D>>& batch,
                         std::size_t begin, std::size_t end) {
    std::vector<point<D>> pts;
    pts.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) pts.push_back(batch[i].p);
    if (batch[begin].kind == op::insert) {
      index_->batch_insert(pts);
    } else {
      index_->batch_erase(pts);
    }
  }

 private:
  // A write phase is one batched update: all payload points of the run go
  // through the backend's batch entry point at once.
  void execute_write_phase(const std::vector<request<D>>& batch,
                           std::size_t begin, std::size_t end) {
    apply_write_phase(batch, begin, end);
  }

  std::unique_ptr<spatial_index<D>> index_;
};

// The common dimensions are instantiated once in query.cpp.
extern template class query_engine<2>;
extern template class query_engine<3>;

/// p in [0, 100]; nearest-rank percentile of `v` (0 for empty input).
double percentile(std::vector<double> v, double p);

}  // namespace pargeo::query
