// Request-lifecycle telemetry for the query service (query subsystem).
//
// The serving pipeline in query_service.h moves every request through the
// same stages — submit, ingest-queue wait, routing, lane queue wait,
// execution (write-apply vs snapshot-read), gather-merge, fulfilment —
// and until this layer existed the only numbers that came out were
// closed-loop throughput aggregates. This header is the measurement
// substrate: it decomposes latency by stage and by shard, cheaply enough
// to leave on in production, and captures sampled full-fidelity span
// chains for offline inspection.
//
//   *Stage timers*. All stamps come from one monotonic nanosecond clock
//   (`monotonic_ns()`, steady_clock — never wall time), relative to the
//   telemetry hub's construction. The service stamps group/request
//   boundaries and records stage durations; the same nanosecond delta
//   that feeds a histogram also feeds the legacy seconds counters
//   (`execute_seconds` et al.), so the two can never disagree.
//
//   *Histograms*. `latency_histogram` is HDR-style log-bucketed: 2
//   buckets per octave from 100 ns to ~10 s (56 buckets total, first =
//   underflow, last = overflow), so any recorded duration lands within
//   ~√2 of its bucket's reported value while the whole histogram is a
//   few hundred bytes. Histograms merge exactly (bucket-wise addition —
//   associative and commutative, unit-tested), which is what lets
//   per-lane recorders stay lock-free: each lane owns an
//   `atomic_latency_histogram` per stage (relaxed atomic increments — no
//   locks, no CAS loops on the hot path except the max tracker) and
//   readers merge relaxed snapshots on demand. Percentiles are
//   nearest-rank over buckets, reported as the bucket's upper edge
//   clamped to the exact observed max (a single-sample histogram reports
//   the sample itself).
//
//   *Trace spans*. At `telemetry_level::trace`, a 1-in-N ticket sampler
//   (deterministic on the ticket id) promotes whole drain groups to
//   traced: every stage they pass through appends a span (name, track,
//   start, duration, ticket, shard) to a fixed-capacity ring (oldest
//   overwritten; the ring mutex is only ever touched for sampled groups,
//   never on the common path). `write_trace()` emits Chrome
//   `chrome://tracing` / Perfetto-compatible JSON: one track per shard
//   lane plus tracks for the drain thread, the snapshot readers, the
//   merge/fulfil tail, and the per-ticket end-to-end completion bars.
//
//   *Export*. `telemetry_report` (merged histograms, per stage and per
//   shard) rides along in `service_stats::telemetry`; `latency_summary`
//   condenses a histogram to count/p50/p95/p99/p999/max for tables and
//   JSON; query_service.h builds a Prometheus text exposition from the
//   same report.
//
// Everything here is backend- and dimension-agnostic: no query headers
// are included, so result_cache.h and query_service.h can both build on
// it without cycles.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace pargeo::query {

/// How much the service measures. `stats` keeps the stage/shard
/// histograms (cheap: a handful of clock reads and relaxed atomic adds
/// per drain group — leave it on); `trace` additionally records sampled
/// span chains into the trace ring; `off` skips all of it (the
/// measurable-overhead baseline).
enum class telemetry_level { off, stats, trace };

inline const char* telemetry_level_name(telemetry_level l) {
  switch (l) {
    case telemetry_level::off: return "off";
    case telemetry_level::stats: return "stats";
    case telemetry_level::trace: return "trace";
  }
  return "?";
}

inline telemetry_level telemetry_level_from_string(const std::string& s) {
  if (s == "off") return telemetry_level::off;
  if (s == "stats") return telemetry_level::stats;
  if (s == "trace") return telemetry_level::trace;
  throw std::invalid_argument("unknown telemetry level '" + s +
                              "' (want off|stats|trace)");
}

/// The request-lifecycle stages the service attributes latency to.
/// Per-ticket stages: queue_wait (submit -> ingest dequeue) and
/// completion (submit -> fulfilled, i.e. end-to-end including every
/// queue). Per-group stages: route, merge, fulfil. Per-shard stages:
/// lane_wait (lane enqueue -> dequeue), execute_write (write/mixed
/// sub-batch on a lane, live index), execute_read (read-only slice on a
/// snapshot). Continuous-query stages: watch_eval (one watch group's
/// re-evaluation against the post-drain snapshots, i.e. the fire
/// latency), expire (one TTL sweep on the drain thread, including the
/// batch_erase dispatch). Replication stages: replicate (serializing one
/// committed write group into the op log, on the primary's drain
/// thread), replay (one log group's application on a replica: dispatch
/// until the last lane finished re-executing the recorded backend
/// calls). Reclamation stage: reclaim (one epoch advance + limbo sweep
/// on the drain thread — the cost of destroying retired snapshot
/// structure, see epoch_reclaim.h).
enum class stage : std::uint8_t {
  queue_wait,
  route,
  lane_wait,
  execute_write,
  execute_read,
  merge,
  fulfil,
  completion,
  watch_eval,
  expire,
  replicate,
  replay,
  reclaim,
};

inline constexpr std::size_t kNumStages = 13;

inline constexpr std::size_t stage_index(stage s) {
  return static_cast<std::size_t>(s);
}

inline const char* stage_name(stage s) {
  switch (s) {
    case stage::queue_wait: return "queue_wait";
    case stage::route: return "route";
    case stage::lane_wait: return "lane_wait";
    case stage::execute_write: return "execute_write";
    case stage::execute_read: return "execute_read";
    case stage::merge: return "merge";
    case stage::fulfil: return "fulfil";
    case stage::completion: return "completion";
    case stage::watch_eval: return "watch_eval";
    case stage::expire: return "expire";
    case stage::replicate: return "replicate";
    case stage::replay: return "replay";
    case stage::reclaim: return "reclaim";
  }
  return "?";
}

/// Nanoseconds on the process-wide monotonic clock (steady_clock). THE
/// clock for every latency number in the query subsystem — wall-clock
/// (system_clock) must never enter latency math, it steps under NTP.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Condensed histogram view for tables and JSON rows (all values ns).
struct latency_summary {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;
  double sum_seconds = 0;
};

/// HDR-style log-bucketed latency histogram: 2 buckets per octave from
/// 100 ns up (bucket 0 holds [0, 100ns), the last bucket overflows to
/// +inf, ~10 s falls in the final octaves). Plain integers — this is the
/// merge/report representation; live recording goes through
/// `atomic_latency_histogram`. Merging is exact bucket-wise addition.
class latency_histogram {
 public:
  static constexpr int kBuckets = 56;

  /// Lower edge (inclusive) of bucket `b`, in ns. bucket_lower(0) == 0,
  /// bucket_lower(1) == 100; successive edges grow by ~sqrt(2).
  static std::uint64_t bucket_lower(int b) { return lowers()[b]; }

  /// Upper edge (exclusive) of bucket `b`; +inf for the last bucket.
  static std::uint64_t bucket_upper(int b) {
    return b + 1 < kBuckets ? lowers()[b + 1]
                            : std::numeric_limits<std::uint64_t>::max();
  }

  /// Index of the bucket holding a duration of `ns` nanoseconds.
  static int bucket_index(std::uint64_t ns) {
    if (ns < 100) return 0;
    const std::uint64_t x = ns / 100;  // >= 1
    int log2i = 0;
    for (std::uint64_t v = x; v > 1; v >>= 1) ++log2i;
    int idx = 1 + 2 * log2i;  // lowers()[1 + 2*o] == 100 * 2^o <= ns
    if (idx + 1 < kBuckets && ns >= lowers()[idx + 1]) ++idx;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  void record(std::uint64_t ns) {
    ++counts_[bucket_index(ns)];
    ++count_;
    sum_ns_ += ns;
    max_ns_ = std::max(max_ns_, ns);
  }

  void merge(const latency_histogram& o) {
    for (int b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    count_ += o.count_;
    sum_ns_ += o.sum_ns_;
    max_ns_ = std::max(max_ns_, o.max_ns_);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum_ns() const { return sum_ns_; }
  std::uint64_t max_ns() const { return max_ns_; }
  std::uint64_t bucket_count(int b) const { return counts_[b]; }

  /// Nearest-rank percentile (p in [0, 100]) in ns: the upper edge of
  /// the bucket holding the rank, clamped to the exact observed max —
  /// so a single-sample histogram reports the sample itself, and no
  /// percentile ever exceeds max_ns(). Empty histograms report 0.
  std::uint64_t percentile_ns(double p) const {
    if (count_ == 0) return 0;
    const double clamped = std::min(100.0, std::max(0.0, p));
    std::uint64_t rank = static_cast<std::uint64_t>(
        clamped / 100.0 * static_cast<double>(count_) + 0.9999999);
    if (rank == 0) rank = 1;
    if (rank > count_) rank = count_;
    std::uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      cum += counts_[b];
      if (cum >= rank) {
        const std::uint64_t upper = bucket_upper(b);
        return std::min(upper == 0 ? 0 : upper - 1, max_ns_);
      }
    }
    return max_ns_;
  }

  /// Bulk-loads `n` samples into bucket `b` without touching the
  /// aggregate fields — the reconstruction half of
  /// atomic_latency_histogram::snapshot(), which supplies the exact
  /// aggregates via set_aggregates() afterwards.
  void add_bucket(int b, std::uint64_t n) {
    counts_[b] += n;
    count_ += n;
  }

  /// Overwrites the aggregate fields with exactly-recorded values (see
  /// add_bucket). `count` may trail the bucket total by in-flight
  /// relaxed recordings; keep the larger so count() never understates
  /// the bucket mass percentile walks over.
  void set_aggregates(std::uint64_t count, std::uint64_t sum,
                      std::uint64_t max) {
    count_ = std::max(count_, count);
    sum_ns_ = sum;
    max_ns_ = max;
  }

  latency_summary summary() const {
    latency_summary s;
    s.count = count_;
    s.p50 = percentile_ns(50);
    s.p95 = percentile_ns(95);
    s.p99 = percentile_ns(99);
    s.p999 = percentile_ns(99.9);
    s.max = max_ns_;
    s.sum_seconds = static_cast<double>(sum_ns_) * 1e-9;
    return s;
  }

 private:
  static const std::array<std::uint64_t, kBuckets>& lowers() {
    static const std::array<std::uint64_t, kBuckets> table = [] {
      std::array<std::uint64_t, kBuckets> t{};
      t[0] = 0;
      for (int i = 1; i < kBuckets; ++i) {
        // 100 * 2^((i-1)/2): exact powers of two on even steps, the
        // sqrt(2) midpoints between them.
        const int o = (i - 1) / 2;
        const std::uint64_t base = std::uint64_t{100} << o;
        t[i] = (i - 1) % 2 == 0
                   ? base
                   : static_cast<std::uint64_t>(
                         static_cast<double>(base) * 1.41421356237309515 +
                         0.5);
      }
      return t;
    }();
    return table;
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// Lock-free recording twin of latency_histogram: relaxed atomic bucket
/// counters, one instance per (recorder, stage). Writers never block or
/// spin (the max tracker is the only CAS loop and almost never retries);
/// readers take relaxed snapshots — counts observed mid-record may lag
/// by the in-flight sample, which merged reporting tolerates by design.
class atomic_latency_histogram {
 public:
  void record(std::uint64_t ns) {
    counts_[latency_histogram::bucket_index(ns)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t prev = max_ns_.load(std::memory_order_relaxed);
    while (prev < ns && !max_ns_.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed)) {
    }
  }

  latency_histogram snapshot() const {
    latency_histogram h;
    for (int b = 0; b < latency_histogram::kBuckets; ++b) {
      h.add_bucket(b, counts_[b].load(std::memory_order_relaxed));
    }
    h.set_aggregates(count_.load(std::memory_order_relaxed),
                     sum_ns_.load(std::memory_order_relaxed),
                     max_ns_.load(std::memory_order_relaxed));
    return h;
  }

 private:
  std::array<std::atomic<std::uint64_t>, latency_histogram::kBuckets>
      counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// One recorded span: a named stage occurrence on a track, in ns
/// relative to the telemetry hub's construction.
struct trace_span {
  const char* name = "";
  std::uint32_t track = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t ticket = 0;  // representative ticket id (0 = none)
  std::int32_t shard = -1;   // -1 = not shard-specific
};

/// Merged histogram view of everything a telemetry hub has recorded:
/// `stages[i]` aggregates stage i across every recorder; `shards[s]`
/// holds shard s's lane-local stages (lane_wait / execute_write /
/// execute_read; the other slots stay empty). Mergeable across services
/// and bench runs — bucket-wise, exact.
struct telemetry_report {
  telemetry_level level = telemetry_level::off;
  std::array<latency_histogram, kNumStages> stages;
  std::vector<std::array<latency_histogram, kNumStages>> shards;

  const latency_histogram& stage_hist(stage s) const {
    return stages[stage_index(s)];
  }

  void merge(const telemetry_report& o) {
    if (o.level > level) level = o.level;
    for (std::size_t i = 0; i < kNumStages; ++i) {
      stages[i].merge(o.stages[i]);
    }
    if (o.shards.size() > shards.size()) shards.resize(o.shards.size());
    for (std::size_t s = 0; s < o.shards.size(); ++s) {
      for (std::size_t i = 0; i < kNumStages; ++i) {
        shards[s][i].merge(o.shards[s][i]);
      }
    }
  }
};

/// The per-service telemetry hub. Owns one lock-free stage recorder for
/// service-wide stages plus one per shard lane, the trace sampler, and
/// the span ring. All `record*` calls are safe from any thread; `report`
/// and the trace accessors are safe concurrently with recording.
class telemetry {
 public:
  telemetry(telemetry_level level, std::size_t shards,
            std::size_t trace_sample, std::size_t trace_capacity)
      : level_(level),
        epoch_ns_(monotonic_ns()),
        trace_sample_(trace_sample == 0 ? 1 : trace_sample),
        num_shards_(shards),
        service_(std::make_unique<recorder>()) {
    shard_recorders_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      shard_recorders_.push_back(std::make_unique<recorder>());
    }
    if (level_ == telemetry_level::trace) {
      ring_.resize(trace_capacity == 0 ? 1 : trace_capacity);
    }
  }

  telemetry(const telemetry&) = delete;
  telemetry& operator=(const telemetry&) = delete;

  telemetry_level level() const { return level_; }
  bool enabled() const { return level_ != telemetry_level::off; }
  bool tracing() const { return level_ == telemetry_level::trace; }

  /// Monotonic ns since this hub was constructed (the service's time
  /// base for stamps and trace timestamps).
  std::uint64_t now_ns() const { return monotonic_ns() - epoch_ns_; }

  /// Records a service-wide stage duration (queue_wait, route, merge,
  /// fulfil, completion — and execute_* under the single-drainer mode,
  /// which has no lanes). Relaxed atomics; callable from any thread.
  void record(stage st, std::uint64_t ns) {
    service_->h[stage_index(st)].record(ns);
  }

  /// Records a shard-local stage duration (lane_wait / execute_write /
  /// execute_read) into shard s's recorder.
  void record_shard(std::size_t s, stage st, std::uint64_t ns) {
    shard_recorders_[s]->h[stage_index(st)].record(ns);
  }

  /// Deterministic 1-in-N ticket sampler (ids are dense, so this is an
  /// exact 1/N rate). Only ever true at trace level.
  bool sampled(std::uint64_t ticket_id) const {
    return tracing() && ticket_id % trace_sample_ == 0;
  }

  // Track layout for the trace: one per shard lane plus dedicated
  // tracks for the drain thread, the snapshot-reader pool, the
  // merge/fulfil tail, and per-ticket end-to-end completion bars.
  std::uint32_t drain_track() const { return 0; }
  std::uint32_t lane_track(std::size_t s) const {
    return static_cast<std::uint32_t>(1 + s);
  }
  std::uint32_t reader_track() const {
    return static_cast<std::uint32_t>(1 + num_shards_);
  }
  std::uint32_t fulfil_track() const {
    return static_cast<std::uint32_t>(2 + num_shards_);
  }
  std::uint32_t completion_track() const {
    return static_cast<std::uint32_t>(3 + num_shards_);
  }

  /// Appends a span to the ring (oldest overwritten past capacity).
  /// Callers gate on a sampled ticket, so the ring mutex never appears
  /// on the unsampled path.
  void add_span(const char* name, std::uint32_t track, std::uint64_t ts_ns,
                std::uint64_t dur_ns, std::uint64_t ticket,
                std::int32_t shard = -1) {
    if (!tracing()) return;
    std::lock_guard<std::mutex> lk(trace_mu_);
    ring_[ring_head_] = trace_span{name, track, ts_ns, dur_ns, ticket, shard};
    ring_head_ = (ring_head_ + 1) % ring_.size();
    if (ring_size_ < ring_.size()) ++ring_size_;
    ++spans_total_;
  }

  /// Spans currently resident in the ring, oldest first.
  std::vector<trace_span> spans() const {
    std::lock_guard<std::mutex> lk(trace_mu_);
    std::vector<trace_span> out;
    out.reserve(ring_size_);
    const std::size_t start =
        (ring_head_ + ring_.size() - ring_size_) % ring_.size();
    for (std::size_t i = 0; i < ring_size_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  std::uint64_t spans_recorded() const {
    std::lock_guard<std::mutex> lk(trace_mu_);
    return spans_total_;
  }

  /// Merged histograms: service-wide stages aggregate every recorder
  /// (so stages[execute_write] includes all lanes), shards[] keep the
  /// per-lane split.
  telemetry_report report() const {
    telemetry_report r;
    r.level = level_;
    for (std::size_t i = 0; i < kNumStages; ++i) {
      r.stages[i] = service_->h[i].snapshot();
    }
    r.shards.resize(shard_recorders_.size());
    for (std::size_t s = 0; s < shard_recorders_.size(); ++s) {
      for (std::size_t i = 0; i < kNumStages; ++i) {
        r.shards[s][i] = shard_recorders_[s]->h[i].snapshot();
        r.stages[i].merge(r.shards[s][i]);
      }
    }
    return r;
  }

  /// Writes the ring as Chrome trace-event JSON (load in
  /// chrome://tracing or https://ui.perfetto.dev). Timestamps in µs on
  /// the hub's time base; `M` metadata events name the tracks.
  void write_trace(std::ostream& os) const {
    const auto all = spans();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto emit_meta = [&](std::uint32_t tid, const std::string& name) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << name << "\"}}";
    };
    emit_meta(drain_track(), "drain");
    for (std::size_t s = 0; s < num_shards_; ++s) {
      emit_meta(lane_track(s), "lane_" + std::to_string(s));
    }
    emit_meta(reader_track(), "snapshot_readers");
    emit_meta(fulfil_track(), "merge_fulfil");
    emit_meta(completion_track(), "completion");
    char buf[256];
    for (const auto& sp : all) {
      if (!first) os << ",";
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                    "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"ticket\":%llu,"
                    "\"shard\":%d}}",
                    sp.name, sp.track,
                    static_cast<double>(sp.ts_ns) / 1e3,
                    static_cast<double>(sp.dur_ns) / 1e3,
                    static_cast<unsigned long long>(sp.ticket), sp.shard);
      os << buf;
    }
    os << "]}\n";
  }

  /// write_trace() to a file; false (with no file) when tracing is off,
  /// throws std::runtime_error when the path cannot be opened.
  bool write_trace_file(const std::string& path) const {
    if (!tracing()) return false;
    std::ofstream os(path);
    if (!os) {
      throw std::runtime_error("telemetry: cannot open trace file '" + path +
                               "'");
    }
    write_trace(os);
    return true;
  }

 private:
  struct recorder {
    std::array<atomic_latency_histogram, kNumStages> h;
  };

  const telemetry_level level_;
  const std::uint64_t epoch_ns_;
  const std::uint64_t trace_sample_;
  const std::size_t num_shards_;

  std::unique_ptr<recorder> service_;
  std::vector<std::unique_ptr<recorder>> shard_recorders_;

  mutable std::mutex trace_mu_;
  std::vector<trace_span> ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_size_ = 0;
  std::uint64_t spans_total_ = 0;
};

}  // namespace pargeo::query
