#include "query/query_service.h"

namespace pargeo::query {

// Definitions for the `extern template` declarations in query_service.h:
// the service instantiates here once instead of in every consumer.
template class query_service<2>;
template class query_service<3>;

}  // namespace pargeo::query
