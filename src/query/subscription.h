// Continuous queries for the query service (query subsystem).
//
// A standing query — ride-hailing dispatch watching the k nearest
// drivers, interest management watching a region box — is a read that
// should re-answer itself whenever a committed write could have changed
// it, not a batch the client has to keep re-submitting. This header is
// the client-facing half of that subsystem: `watch_registry<D>` stores
// the standing queries and owns the delivery discipline, `watch_handle<D>`
// is the move-only registration token, `watch_event<D>` the payload a
// callback receives. The service-side half (scheduling re-evaluations at
// drain boundaries, executing them on post-drain snapshots) lives in
// query_service.h, which drives this registry from its drain pipeline.
//
// The delivery contract, in the order the guarantees matter:
//
//   *Exactly once per affecting boundary*. The drain thread assigns each
//   scheduled re-evaluation a dense sequence number at the drain boundary
//   that triggered it (`collect_affected`). Evaluations execute
//   concurrently on the service's reader pool and may complete out of
//   order; `deliver()` reorders them, so callbacks observe boundaries in
//   commit order and each affecting boundary produces exactly one
//   fire-or-suppress decision per watch.
//
//   *Delta suppression*. A watch stores the rows it last fired; a
//   re-evaluation whose canonicalized result is identical is counted as
//   suppressed and does NOT invoke the callback. A watch's first
//   evaluation always fires (there is no fire at registration — the first
//   affecting drain boundary after registration delivers the initial
//   result).
//
//   *Dropped handles never fire*. cancel() (or the handle destructor)
//   marks the watch dead under the registry lock; the fire path re-checks
//   liveness immediately before invoking the callback. If the callback is
//   executing on another thread, cancel() blocks until it returns, so
//   after cancel() no callback is running or will run. Cancelling from
//   inside the watch's own callback is allowed (no self-deadlock).
//
// Callbacks run on service threads (snapshot readers, or a lane / the
// drain thread when the service has no reader pool): keep them light and
// never block on another completion or watch inside one — the same
// contract as completion::on_complete.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <atomic>
#include <condition_variable>

#include "query/query_engine.h"

namespace pargeo::query {

/// Counters for one registry (folded into service_stats by the service).
struct watch_stats {
  std::size_t active = 0;      // registered, not cancelled
  std::size_t fires = 0;       // callbacks invoked
  std::size_t suppressed = 0;  // re-fires skipped (stripe-pruned or delta)
  std::size_t evals = 0;       // watch groups delivered (boundaries seen)
};

/// What a watch callback receives: the fresh result rows and the drain
/// boundary sequence that produced them (monotone per registry — a
/// callback observing sequence t has observed every affecting boundary
/// < t of its watch already).
template <int D>
struct watch_event {
  std::uint64_t watch_id = 0;
  std::uint64_t sequence = 0;
  std::vector<point<D>> points;
};

/// The standing-query store and delivery engine. Thread-safe throughout;
/// shared (via shared_ptr) between the service, its handles, and its
/// evaluation tasks, so handles stay valid after the service is gone.
template <int D>
class watch_registry {
 public:
  using callback_t = std::function<void(const watch_event<D>&)>;

  /// Registers a standing query (op::knn / op::range_box / op::range_ball
  /// request) and returns its id. Callable from any thread.
  std::uint64_t add(request<D> query, callback_t cb) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t id = next_id_++;
    watch& w = watches_[id];
    w.query = std::move(query);
    w.callback = std::move(cb);
    active_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  /// Unregisters a watch. After return the callback is not running and
  /// will never run again (blocks out an in-flight invocation on another
  /// thread; returns immediately when called from inside the watch's own
  /// callback). Unknown ids are no-ops, so handles tolerate double
  /// cancellation.
  void remove(std::uint64_t id) {
    std::unique_lock<std::mutex> lk(mu_);
    auto it = watches_.find(id);
    if (it == watches_.end()) return;
    it->second.alive = false;
    active_.fetch_sub(1, std::memory_order_relaxed);
    if (it->second.in_callback &&
        it->second.firing_thread == std::this_thread::get_id()) {
      // Self-cancel from inside the callback: erase now; the deliverer
      // re-finds by id after the callback returns and tolerates the miss.
      watches_.erase(it);
      return;
    }
    cv_.wait(lk, [&] {
      auto jt = watches_.find(id);
      return jt == watches_.end() || !jt->second.in_callback;
    });
    watches_.erase(id);
  }

  /// Registered-and-alive count; lock-free (the drain thread checks it on
  /// every write boundary before doing any watch work).
  std::size_t active() const {
    return active_.load(std::memory_order_relaxed);
  }

  watch_stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    watch_stats s;
    s.active = active_.load(std::memory_order_relaxed);
    s.fires = fires_;
    s.suppressed = suppressed_;
    s.evals = evals_;
    return s;
  }

  /// Drain-thread side of a write boundary: snapshots every alive watch
  /// whose query `affected(query)` returns true into `out` and assigns the
  /// boundary its delivery sequence (returned; deliver() MUST eventually
  /// be called with it, even on failure, or delivery stalls). Watches the
  /// predicate rules out — the stripe/box-overlap filter — are counted
  /// suppressed: the boundary provably could not change their result, so
  /// their re-fire is skipped without evaluating anything. Returns 0 (no
  /// sequence allocated, nothing to deliver) when no watch is affected.
  template <class Pred>
  std::uint64_t collect_affected(
      Pred&& affected, std::vector<std::pair<std::uint64_t, request<D>>>& out) {
    out.clear();
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, w] : watches_) {
      if (!w.alive) continue;
      if (affected(w.query)) {
        out.emplace_back(id, w.query);
      } else {
        ++suppressed_;
      }
    }
    return out.empty() ? 0 : ++last_seq_;
  }

  /// Evaluation side: hands boundary `seq`'s fresh rows (canonicalized by
  /// the evaluator; one entry per watch collect_affected() returned) to
  /// the delivery engine. Results arriving out of order are buffered and
  /// released in sequence; the thread completing the next-in-order
  /// boundary drains every ready boundary, firing callbacks outside the
  /// lock (one deliverer at a time, so callbacks for one watch never
  /// overlap). An evaluation that failed delivers an empty result set to
  /// keep the sequence moving (its watches neither fire nor suppress).
  void deliver(
      std::uint64_t seq,
      std::vector<std::pair<std::uint64_t, std::vector<point<D>>>> results) {
    std::unique_lock<std::mutex> lk(mu_);
    pending_.emplace(seq, std::move(results));
    if (delivering_) return;  // the active deliverer will pick it up
    delivering_ = true;
    for (;;) {
      auto it = pending_.find(next_seq_);
      if (it == pending_.end()) break;
      const std::uint64_t cur = it->first;
      auto batch = std::move(it->second);
      pending_.erase(it);
      ++next_seq_;
      ++evals_;
      for (auto& [id, rows] : batch) {
        auto wit = watches_.find(id);
        if (wit == watches_.end() || !wit->second.alive) continue;
        watch& w = wit->second;
        if (w.fired_once && w.last == rows) {
          ++suppressed_;
          continue;
        }
        w.last = rows;
        w.fired_once = true;
        ++fires_;
        w.in_callback = true;
        w.firing_thread = std::this_thread::get_id();
        callback_t cb = w.callback;  // the entry may be erased mid-call
        watch_event<D> ev;
        ev.watch_id = id;
        ev.sequence = cur;
        ev.points = std::move(rows);
        lk.unlock();
        try {
          cb(ev);
        } catch (...) {
          // A throwing callback must not unwind a service thread.
        }
        lk.lock();
        auto back = watches_.find(id);  // may be gone: self-cancel
        if (back != watches_.end()) {
          back->second.in_callback = false;
          back->second.firing_thread = std::thread::id{};
        }
        cv_.notify_all();
      }
    }
    delivering_ = false;
  }

 private:
  struct watch {
    request<D> query;
    callback_t callback;
    std::vector<point<D>> last;  // rows of the last fire (delta compare)
    bool fired_once = false;
    bool alive = true;
    bool in_callback = false;
    std::thread::id firing_thread{};
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;  // signals callback completion (for remove)
  std::map<std::uint64_t, watch> watches_;
  std::uint64_t next_id_ = 1;
  std::atomic<std::size_t> active_{0};

  // Delivery reorder buffer: boundary seq -> per-watch rows, released in
  // sequence by a single deliverer at a time.
  std::map<std::uint64_t,
           std::vector<std::pair<std::uint64_t, std::vector<point<D>>>>>
      pending_;
  std::uint64_t last_seq_ = 0;   // allocated by collect_affected
  std::uint64_t next_seq_ = 1;   // next boundary to release
  bool delivering_ = false;

  std::size_t fires_ = 0;
  std::size_t suppressed_ = 0;
  std::size_t evals_ = 0;
};

/// Move-only registration token for one standing query. Dropping or
/// cancelling it guarantees the callback never runs again (see
/// watch_registry::remove). Outlives the service safely — the registry is
/// held shared.
template <int D>
class watch_handle {
 public:
  watch_handle() = default;
  watch_handle(std::shared_ptr<watch_registry<D>> reg, std::uint64_t id)
      : reg_(std::move(reg)), id_(id) {}
  watch_handle(watch_handle&& o) noexcept
      : reg_(std::move(o.reg_)), id_(o.id_) {
    o.id_ = 0;
  }
  watch_handle& operator=(watch_handle&& o) noexcept {
    if (this != &o) {
      cancel();
      reg_ = std::move(o.reg_);
      id_ = o.id_;
      o.id_ = 0;
    }
    return *this;
  }
  watch_handle(const watch_handle&) = delete;
  watch_handle& operator=(const watch_handle&) = delete;
  ~watch_handle() { cancel(); }

  bool valid() const { return reg_ != nullptr; }
  std::uint64_t id() const { return id_; }

  /// Unregisters the watch; after return the callback is not running and
  /// never will again. Idempotent; safe from inside the watch's own
  /// callback.
  void cancel() {
    if (!reg_) return;
    reg_->remove(id_);
    reg_.reset();
    id_ = 0;
  }

 private:
  std::shared_ptr<watch_registry<D>> reg_;
  std::uint64_t id_ = 0;
};

}  // namespace pargeo::query
