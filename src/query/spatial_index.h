// Uniform adapter layer over the library's spatial trees (query subsystem,
// layer 1 of 3 — see query_engine.h and workload.h).
//
// The paper's structures expose three unrelated APIs: the static kd-tree
// (Module 1) has no updates, the Zd-tree stand-in has batch updates but no
// ids, and the BDL-tree has batch updates plus multi-tree k-NN. This header
// wraps all three behind one `spatial_index<D>` interface — `build`,
// `batch_insert`, `batch_erase`, `batch_knn`, `batch_range`, `batch_ball` —
// so a mixed read/write workload can run against any backend unchanged.
//
// Semantics shared by every backend: points form a multiset (duplicates
// allowed); erase removes at most one stored copy per batch entry for
// distinct batch points (backends differ only on erasing a point stored
// multiple times — see bdl_tree's class comment); k-NN rows are sorted by
// distance and have min(k, size()) entries; range results are unordered.
//
// *Epochs and snapshots.* Every adapter carries a monotonically increasing
// write epoch (bumped by build and by each content-changing write batch)
// and can publish an `index_snapshot<D>` — a read-only view of the contents
// as of the snapshot's epoch. Every snapshot is *isolated*: it owns (or
// shares immutably) everything it needs, so queries against it remain
// exact while the live index absorbs further writes concurrently.
//
//   - kdtree: shares the immutable tree + base array and copies the
//     bounded buffered-writes multisets.
//   - zdtree: the adapter is copy-on-write over the Morton array, so a
//     snapshot is one shared_ptr.
//   - bdltree: chunk-level COW over the forest — the snapshot copies the
//     bounded staging buffer and shares the static vEB trees; inserts
//     replace whole trees and erases copy any shared tree before mutating
//     (see bdl_tree.h). Historically this backend published *pinned*
//     snapshots that gated writes behind a per-shard barrier; that
//     contract is gone.
//
// *Reclamation.* Each adapter accepts an optional `epoch_reclaimer`
// (`set_reclaimer`, see epoch_reclaim.h): superseded structure versions —
// a swapped-out kd-tree/base array, an old Morton array, a replaced vEB
// tree — are retired onto the reclaimer's limbo list instead of freed at
// the swap site, and destroyed at drain-boundary reclaim points once every
// reader epoch has advanced past them. Without a reclaimer the shared_ptr
// refcount frees them as before.
//
// The kd-tree backend is the static baseline the paper compares
// batch-dynamic structures against: updates are served by rebuilding. A
// rebuild-threshold policy softens the pathology — writes are buffered in a
// side multiset and the tree is only rebuilt once the pending volume
// exceeds a configurable fraction of the indexed set; queries merge the
// tree's answer with the buffer so results stay exact between rebuilds.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bdltree/bdl_tree.h"
#include "core/aabb.h"
#include "core/point.h"
#include "kdtree/kdtree.h"
#include "parallel/parallel.h"
#include "query/epoch_reclaim.h"
#include "zdtree/zdtree.h"

namespace pargeo::query {

enum class backend { kdtree, zdtree, bdltree };

inline const char* backend_name(backend b) {
  switch (b) {
    case backend::kdtree: return "kdtree";
    case backend::zdtree: return "zdtree";
    case backend::bdltree: return "bdltree";
  }
  return "?";
}

inline backend backend_from_string(const std::string& s) {
  if (s == "kdtree") return backend::kdtree;
  if (s == "zdtree") return backend::zdtree;
  if (s == "bdltree") return backend::bdltree;
  throw std::invalid_argument("unknown backend '" + s +
                              "' (want kdtree|zdtree|bdltree)");
}

/// Read-only, epoch-stamped view of an index's contents. Query semantics
/// match the owning spatial_index exactly (as of `epoch()`).
template <int D>
class index_snapshot {
 public:
  virtual ~index_snapshot() = default;

  /// The owning index's write epoch when this snapshot was taken.
  virtual std::uint64_t epoch() const = 0;
  virtual std::size_t size() const = 0;

  /// True if queries stay exact while the owning index absorbs further
  /// writes. Every backend answers true since the bdltree forest went
  /// copy-on-write; the accessor remains so callers (and tests) can
  /// assert the contract.
  virtual bool isolated() const = 0;

  virtual std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const = 0;
  virtual std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const = 0;
  virtual std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const = 0;
};

/// Abstract batched spatial index. All batch entry points are internally
/// data-parallel; callers hand over whole batches and get per-query rows
/// back in input order.
template <int D>
class spatial_index {
 public:
  virtual ~spatial_index() = default;

  virtual backend kind() const = 0;
  virtual std::size_t size() const = 0;

  /// Monotonic write-epoch counter: bumped by build() and by every
  /// content-changing batch_insert/batch_erase. Safe to read concurrently
  /// with writes (it is an atomic counter, not a structure guard).
  ///
  /// The epoch doubles as a content-version token: within one epoch the
  /// stored multiset — and therefore every query answer — is fixed, so
  /// (query, epoch) keys memoized results (the query_service's k-NN
  /// result cache relies on this, see query/result_cache.h). Backends
  /// uphold the contract by *not* bumping on no-op batches (an erase that
  /// matched nothing) and by bumping before any same-content restructure
  /// (the kd-tree's threshold rebuild happens inside the write batch that
  /// already bumped, so tie-order among equidistant neighbors can only
  /// change across epochs, never within one).
  virtual std::uint64_t epoch() const = 0;

  /// Publishes a read snapshot of the current contents at the current
  /// epoch. Cost: O(buffered writes) for kdtree, O(1) for zdtree,
  /// O(staging buffer + live trees) for bdltree.
  virtual std::shared_ptr<const index_snapshot<D>> snapshot() const = 0;

  /// Attach an epoch reclaimer: superseded structure versions are retired
  /// onto its limbo list instead of freed at the swap site. nullptr
  /// detaches. Not thread-safe against concurrent writes — call before
  /// serving traffic (the query_service attaches at construction).
  virtual void set_reclaimer(epoch_reclaimer* r) { (void)r; }

  /// Replaces the stored set with `pts`.
  virtual void build(const std::vector<point<D>>& pts) = 0;
  virtual void batch_insert(const std::vector<point<D>>& pts) = 0;
  virtual void batch_erase(const std::vector<point<D>>& pts) = 0;

  /// Row i: the min(k, size()) nearest stored points to queries[i], sorted
  /// by distance (query point included at distance 0 if stored).
  virtual std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const = 0;

  /// Row i: all stored points inside boxes[i] (unordered).
  virtual std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const = 0;

  /// Row i: all stored points within radii[i] of centers[i] (unordered).
  virtual std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const = 0;

  /// All stored points (unordered; duplicates preserved).
  virtual std::vector<point<D>> gather() const = 0;
};

namespace detail {

/// The kd-tree backend's queryable state: an immutable tree over an
/// immutable base array (both shared, so views are cheap to copy and
/// survive rebuild swaps) plus the buffered-writes multisets. All merged
/// query logic lives here; kdtree_index mutates a view in place and
/// kdtree snapshots copy one.
template <int D>
struct kdtree_view {
  std::shared_ptr<const kdtree::tree<D>> tree;
  std::shared_ptr<const std::vector<point<D>>> base;
  std::map<point<D>, std::size_t> add;  // buffered inserts (with counts)
  std::map<point<D>, std::size_t> del;  // buffered erases against base
  std::size_t num_add = 0;
  std::size_t num_del = 0;

  std::size_t size() const { return base->size() + num_add - num_del; }

  // Base copies surviving the erase buffer, plus all buffered inserts —
  // the view's logical contents.
  std::vector<point<D>> materialize() const {
    std::vector<point<D>> out;
    out.reserve(size());
    auto pending_del = del;
    for (const auto& p : *base) {
      auto it = pending_del.find(p);
      if (it != pending_del.end() && it->second > 0) {
        --it->second;
        continue;
      }
      out.push_back(p);
    }
    for (const auto& [p, c] : add) out.insert(out.end(), c, p);
    return out;
  }

  // Drops erased copies from a tree result (ids into *base). Which of the
  // identical copies of a value gets dropped is immaterial.
  std::vector<point<D>> filter_base(const std::vector<std::size_t>& ids) const {
    std::vector<point<D>> out;
    out.reserve(ids.size());
    if (del.empty()) {
      for (std::size_t id : ids) out.push_back((*base)[id]);
      return out;
    }
    std::map<point<D>, std::size_t> skipped;
    for (std::size_t id : ids) {
      const auto& p = (*base)[id];
      auto dit = del.find(p);
      if (dit != del.end()) {
        auto& s = skipped[p];
        if (s < dit->second) {
          ++s;
          continue;
        }
      }
      out.push_back(p);
    }
    return out;
  }

  std::vector<point<D>> knn_one(const point<D>& q, std::size_t k) const {
    if (k == 0 || size() == 0) return {};
    // Over-fetch by the erase-buffer size: of the k + num_del nearest base
    // points at most num_del are erased, so >= min(k, live) survive.
    auto entries = tree->knn(q, k + num_del);
    std::vector<std::pair<double, point<D>>> cand;
    cand.reserve(entries.size() + num_add);
    std::map<point<D>, std::size_t> skipped;
    for (const auto& e : entries) {
      const auto& p = (*base)[e.id];
      auto dit = del.find(p);
      if (dit != del.end()) {
        auto& s = skipped[p];
        if (s < dit->second) {
          ++s;
          continue;
        }
      }
      cand.emplace_back(e.dist_sq, p);
    }
    for (const auto& [p, c] : add) {
      cand.insert(cand.end(), c, std::make_pair(p.dist_sq(q), p));
    }
    std::stable_sort(cand.begin(), cand.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<point<D>> out;
    out.reserve(std::min(k, cand.size()));
    for (std::size_t i = 0; i < cand.size() && i < k; ++i) {
      out.push_back(cand[i].second);
    }
    return out;
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const {
    std::vector<std::vector<point<D>>> out(queries.size());
    par::parallel_for(
        0, queries.size(),
        [&](std::size_t i) { out[i] = knn_one(queries[i], k); }, 16);
    return out;
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const {
    std::vector<std::vector<point<D>>> out(boxes.size());
    par::parallel_for(
        0, boxes.size(),
        [&](std::size_t i) {
          out[i] = filter_base(tree->range_box(boxes[i]));
          for (const auto& [p, c] : add) {
            if (boxes[i].contains(p)) out[i].insert(out[i].end(), c, p);
          }
        },
        16);
    return out;
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const {
    std::vector<std::vector<point<D>>> out(centers.size());
    par::parallel_for(
        0, centers.size(),
        [&](std::size_t i) {
          out[i] = filter_base(tree->range_ball(centers[i], radii[i]));
          for (const auto& [p, c] : add) {
            if (p.dist_sq(centers[i]) <= radii[i] * radii[i]) {
              out[i].insert(out[i].end(), c, p);
            }
          }
        },
        16);
    return out;
  }
};

}  // namespace detail

/// Isolated kd-tree snapshot: shares the immutable tree + base array with
/// the live index and owns a copy of the (bounded) buffered-writes
/// multisets, so it answers exactly as of its epoch regardless of what the
/// live index does afterwards.
template <int D>
class kdtree_snapshot final : public index_snapshot<D> {
 public:
  kdtree_snapshot(detail::kdtree_view<D> view, std::uint64_t epoch)
      : view_(std::move(view)), epoch_(epoch) {}

  std::uint64_t epoch() const override { return epoch_; }
  std::size_t size() const override { return view_.size(); }
  bool isolated() const override { return true; }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return view_.batch_knn(queries, k);
  }
  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    return view_.batch_range(boxes);
  }
  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    return view_.batch_ball(centers, radii);
  }

 private:
  detail::kdtree_view<D> view_;
  std::uint64_t epoch_;
};

/// Static kd-tree backend with a rebuild-threshold policy: writes accumulate
/// in a pending buffer (insert counts plus erase counts against the indexed
/// base) and the tree is only rebuilt when the pending volume exceeds
/// `rebuild_threshold` times the base size (threshold <= 0: rebuild on every
/// write batch, the paper's pure static baseline). Queries merge the tree's
/// answer over the base set with the buffer, so results are exact at every
/// point in time.
template <int D>
class kdtree_index final : public spatial_index<D> {
 public:
  static constexpr double kDefaultRebuildThreshold = 0.25;
  /// Absolute cap on buffered writes (queries merge the buffer, so their
  /// cost grows with it); rebuilds trigger past this regardless of the
  /// fractional threshold.
  static constexpr std::size_t kMaxPending = 8192;

  explicit kdtree_index(
      kdtree::split_policy policy = kdtree::split_policy::object_median,
      std::size_t leaf_size = kdtree::tree<D>::kDefaultLeafSize,
      double rebuild_threshold = kDefaultRebuildThreshold)
      : policy_(policy), leaf_size_(leaf_size),
        rebuild_threshold_(rebuild_threshold) {
    view_.base = std::make_shared<const std::vector<point<D>>>();
    rebuild();
  }

  backend kind() const override { return backend::kdtree; }
  std::size_t size() const override { return view_.size(); }
  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Observability for the rebuild policy: trees built so far and writes
  /// currently buffered.
  std::size_t rebuild_count() const { return rebuilds_; }
  std::size_t pending_writes() const { return view_.num_add + view_.num_del; }

  std::shared_ptr<const index_snapshot<D>> snapshot() const override {
    return std::make_shared<kdtree_snapshot<D>>(view_, epoch());
  }

  void set_reclaimer(epoch_reclaimer* r) override { reclaim_ = r; }

  void build(const std::vector<point<D>>& pts) override {
    retire_ptr(view_.base);
    view_.base = std::make_shared<const std::vector<point<D>>>(pts);
    clear_pending();
    rebuild();
    bump_epoch();
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    if (pts.empty()) return;
    for (const auto& p : pts) {
      ++view_.add[p];
      ++view_.num_add;
    }
    bump_epoch();
    maybe_rebuild();
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    if (pts.empty() || size() == 0) return;
    // Multiset removal: each batch entry consumes at most one stored copy —
    // a buffered insert if one exists, else a live base copy.
    bool changed = false;
    for (const auto& p : pts) {
      auto ait = view_.add.find(p);
      if (ait != view_.add.end() && ait->second > 0) {
        if (--ait->second == 0) view_.add.erase(ait);
        --view_.num_add;
        changed = true;
        continue;
      }
      auto bit = base_count_.find(p);
      const std::size_t in_base = bit == base_count_.end() ? 0 : bit->second;
      auto dit = view_.del.find(p);
      const std::size_t already = dit == view_.del.end() ? 0 : dit->second;
      if (in_base > already) {
        ++view_.del[p];
        ++view_.num_del;
        changed = true;
      }
    }
    // A batch that matched nothing changed nothing: the epoch (and any
    // snapshot-lag accounting built on it) must not move.
    if (!changed) return;
    bump_epoch();
    maybe_rebuild();
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return view_.batch_knn(queries, k);
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    return view_.batch_range(boxes);
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    return view_.batch_ball(centers, radii);
  }

  std::vector<point<D>> gather() const override { return view_.materialize(); }

 private:
  void bump_epoch() { epoch_.fetch_add(1, std::memory_order_release); }

  void maybe_rebuild() {
    const std::size_t pending = view_.num_add + view_.num_del;
    if (pending == 0) return;  // e.g. an erase batch that matched nothing
    // Queries pay O(pending) for the buffer merge, so an absolute cap
    // bounds per-query cost even when the fractional threshold would let
    // the buffer grow with the tree.
    if (rebuild_threshold_ > 0 && pending <= kMaxPending &&
        static_cast<double>(pending) <=
            rebuild_threshold_ * static_cast<double>(view_.base->size())) {
      return;
    }
    retire_ptr(view_.base);
    view_.base =
        std::make_shared<const std::vector<point<D>>>(view_.materialize());
    clear_pending();
    rebuild();
  }

  void clear_pending() {
    view_.add.clear();
    view_.del.clear();
    view_.num_add = view_.num_del = 0;
  }

  // Builds a fresh immutable tree over the current base and publishes it by
  // shared_ptr swap — live snapshots keep the tree they captured; the
  // superseded tree goes to the reclaimer's limbo list when one is attached.
  void rebuild() {
    retire_ptr(view_.tree);
    view_.tree = std::make_shared<const kdtree::tree<D>>(*view_.base, policy_,
                                                         leaf_size_);
    base_count_.clear();
    for (const auto& p : *view_.base) ++base_count_[p];
    ++rebuilds_;
  }

  void retire_ptr(std::shared_ptr<const void> p) {
    if (reclaim_ && p) reclaim_->retire(std::move(p));
  }

  kdtree::split_policy policy_;
  std::size_t leaf_size_;
  double rebuild_threshold_;
  detail::kdtree_view<D> view_;
  std::map<point<D>, std::size_t> base_count_;
  std::size_t rebuilds_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
  epoch_reclaimer* reclaim_ = nullptr;
};

namespace detail {

// Shared query wrappers over an immutable zd_tree, used by the live adapter
// and its snapshots alike.
template <int D>
std::vector<std::vector<point<D>>> zd_batch_range(
    const zdtree::zd_tree<D>& tree, const std::vector<aabb<D>>& boxes) {
  std::vector<std::vector<point<D>>> out(boxes.size());
  par::parallel_for(
      0, boxes.size(),
      [&](std::size_t i) { tree.range_box(boxes[i], out[i]); }, 16);
  return out;
}

template <int D>
std::vector<std::vector<point<D>>> zd_batch_ball(
    const zdtree::zd_tree<D>& tree, const std::vector<point<D>>& centers,
    const std::vector<double>& radii) {
  std::vector<std::vector<point<D>>> out(centers.size());
  par::parallel_for(
      0, centers.size(),
      [&](std::size_t i) { tree.range_ball(centers[i], radii[i], out[i]); },
      16);
  return out;
}

}  // namespace detail

/// Isolated Zd-tree snapshot: shares one immutable Morton-array version
/// with the (copy-on-write) live adapter.
template <int D>
class zdtree_snapshot final : public index_snapshot<D> {
 public:
  zdtree_snapshot(std::shared_ptr<const zdtree::zd_tree<D>> tree,
                  std::uint64_t epoch)
      : tree_(std::move(tree)), epoch_(epoch) {}

  std::uint64_t epoch() const override { return epoch_; }
  std::size_t size() const override { return tree_->size(); }
  bool isolated() const override { return true; }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return tree_->knn(queries, k);
  }
  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    return detail::zd_batch_range(*tree_, boxes);
  }
  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    return detail::zd_batch_ball(*tree_, centers, radii);
  }

 private:
  std::shared_ptr<const zdtree::zd_tree<D>> tree_;
  std::uint64_t epoch_;
};

/// Morton-array backend (2D/3D only, like the original Zd-tree): updates
/// are sorted merges/filters, queries run over the implicit segment
/// hierarchy. The adapter is copy-on-write: each write batch derives a new
/// array version and publishes it by shared_ptr swap, which makes snapshots
/// O(1) and fully isolated (the array merge already rewrites O(n + B)
/// elements, so the extra copy only changes the constant).
template <int D>
class zdtree_index final : public spatial_index<D> {
  static_assert(D == 2 || D == 3, "zd_tree supports 2D and 3D only");

 public:
  zdtree_index() : tree_(std::make_shared<const zdtree::zd_tree<D>>()) {}

  backend kind() const override { return backend::zdtree; }
  std::size_t size() const override { return tree_->size(); }
  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  std::shared_ptr<const index_snapshot<D>> snapshot() const override {
    return std::make_shared<zdtree_snapshot<D>>(tree_, epoch());
  }

  void set_reclaimer(epoch_reclaimer* r) override { reclaim_ = r; }

  void build(const std::vector<point<D>>& pts) override {
    publish(std::make_shared<const zdtree::zd_tree<D>>(pts));
    epoch_.fetch_add(1, std::memory_order_release);
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    if (pts.empty()) return;
    auto next = std::make_shared<zdtree::zd_tree<D>>(*tree_);
    next->insert(pts);
    publish(std::move(next));
    epoch_.fetch_add(1, std::memory_order_release);
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    if (pts.empty()) return;
    auto next = std::make_shared<zdtree::zd_tree<D>>(*tree_);
    next->erase(pts);
    // Erase only removes: an unchanged size means nothing matched — keep
    // the current version and leave the epoch alone.
    if (next->size() == tree_->size()) return;
    publish(std::move(next));
    epoch_.fetch_add(1, std::memory_order_release);
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return tree_->knn(queries, k);
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    return detail::zd_batch_range(*tree_, boxes);
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    return detail::zd_batch_ball(*tree_, centers, radii);
  }

  std::vector<point<D>> gather() const override { return tree_->gather(); }

 private:
  // Swap in a new Morton-array version; the superseded version is retired
  // (or refcount-freed when no reclaimer is attached).
  void publish(std::shared_ptr<const zdtree::zd_tree<D>> next) {
    auto old = std::move(tree_);
    tree_ = std::move(next);
    if (reclaim_ && old) reclaim_->retire(std::move(old));
  }

  std::shared_ptr<const zdtree::zd_tree<D>> tree_;
  std::atomic<std::uint64_t> epoch_{0};
  epoch_reclaimer* reclaim_ = nullptr;
};

/// Isolated BDL-tree snapshot: an owned copy of the (bounded) staging
/// buffer plus shared references to the forest's static vEB trees. Writes
/// to the live forest never mutate a shared tree (inserts replace whole
/// trees; erases copy-on-write, see bdl_tree.h), so the snapshot stays
/// exact and may outlive the owning index.
template <int D>
class bdltree_snapshot final : public index_snapshot<D> {
 public:
  bdltree_snapshot(bdltree::bdl_forest_view<D> view, std::uint64_t epoch)
      : view_(std::move(view)), epoch_(epoch), size_(view_.size()) {}

  std::uint64_t epoch() const override { return epoch_; }
  std::size_t size() const override { return size_; }
  bool isolated() const override { return true; }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return view_.knn(queries, k);
  }
  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    return view_.range_box(boxes);
  }
  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    return view_.range_ball(centers, radii);
  }

 private:
  bdltree::bdl_forest_view<D> view_;
  std::uint64_t epoch_;
  std::size_t size_;
};

/// Batch-dynamic BDL-tree backend (paper §5): the structure the subsystem
/// exists to serve — updates are absorbed by the logarithmic forest without
/// full rebuilds.
template <int D>
class bdltree_index final : public spatial_index<D> {
 public:
  explicit bdltree_index(
      bdltree::split_policy policy = bdltree::split_policy::object_median,
      std::size_t buffer_size = bdltree::bdl_tree<D>::kDefaultBufferSize)
      : policy_(policy), buffer_size_(buffer_size), tree_(policy, buffer_size) {}

  backend kind() const override { return backend::bdltree; }
  std::size_t size() const override { return tree_.size(); }
  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  std::shared_ptr<const index_snapshot<D>> snapshot() const override {
    return std::make_shared<bdltree_snapshot<D>>(tree_.view(), epoch());
  }

  void set_reclaimer(epoch_reclaimer* r) override {
    reclaim_ = r;
    attach_hook();
  }

  void build(const std::vector<point<D>>& pts) override {
    tree_ = bdltree::bdl_tree<D>(policy_, buffer_size_);
    attach_hook();
    tree_.insert(pts);
    epoch_.fetch_add(1, std::memory_order_release);
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    if (pts.empty()) return;
    tree_.insert(pts);
    epoch_.fetch_add(1, std::memory_order_release);
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    if (pts.empty()) return;
    const std::size_t before = tree_.size();
    tree_.erase(pts);
    // Contents unchanged (nothing matched) -> epoch unchanged, even if the
    // forest restructured internally.
    if (tree_.size() == before) return;
    epoch_.fetch_add(1, std::memory_order_release);
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return tree_.knn(queries, k);
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    return tree_.range_box(boxes);
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    return tree_.range_ball(centers, radii);
  }

  std::vector<point<D>> gather() const override { return tree_.gather(); }

 private:
  void attach_hook() {
    if (reclaim_ != nullptr) {
      epoch_reclaimer* r = reclaim_;
      tree_.set_retire_hook(
          [r](std::shared_ptr<const void> p) { r->retire(std::move(p)); });
    } else {
      tree_.set_retire_hook(nullptr);
    }
  }

  bdltree::split_policy policy_;
  std::size_t buffer_size_;
  bdltree::bdl_tree<D> tree_;
  std::atomic<std::uint64_t> epoch_{0};
  epoch_reclaimer* reclaim_ = nullptr;
};

// The common dimensions are instantiated once in query.cpp.
extern template class kdtree_index<2>;
extern template class kdtree_index<3>;
extern template class zdtree_index<2>;
extern template class zdtree_index<3>;
extern template class bdltree_index<2>;
extern template class bdltree_index<3>;

/// Per-backend tuning knobs forwarded by make_index (and by query_service
/// to every shard it owns). Only the kd-tree backend has knobs today.
struct index_options {
  kdtree::split_policy kdtree_split = kdtree::split_policy::object_median;
  std::size_t kdtree_leaf_size = 16;
  /// Rebuild when buffered writes exceed this fraction of the indexed set;
  /// <= 0 rebuilds on every write batch (the pure static baseline).
  double kdtree_rebuild_threshold = 0.25;
};

/// Factory keyed by the runtime backend tag. The Zd-tree backend exists only
/// in 2D/3D; requesting it at other dimensions throws.
template <int D>
std::unique_ptr<spatial_index<D>> make_index(backend b,
                                             const index_options& opt = {}) {
  switch (b) {
    case backend::kdtree:
      return std::make_unique<kdtree_index<D>>(opt.kdtree_split,
                                               opt.kdtree_leaf_size,
                                               opt.kdtree_rebuild_threshold);
    case backend::zdtree:
      if constexpr (D == 2 || D == 3) {
        return std::make_unique<zdtree_index<D>>();
      } else {
        throw std::invalid_argument("zdtree backend supports 2D/3D only");
      }
    case backend::bdltree:
      return std::make_unique<bdltree_index<D>>();
  }
  throw std::invalid_argument("unknown backend tag");
}

}  // namespace pargeo::query
