// Uniform adapter layer over the library's spatial trees (query subsystem,
// layer 1 of 3 — see query_engine.h and workload.h).
//
// The paper's structures expose three unrelated APIs: the static kd-tree
// (Module 1) has no updates, the Zd-tree stand-in has batch updates but no
// ids, and the BDL-tree has batch updates plus multi-tree k-NN. This header
// wraps all three behind one `spatial_index<D>` interface — `build`,
// `batch_insert`, `batch_erase`, `batch_knn`, `batch_range`, `batch_ball` —
// so a mixed read/write workload can run against any backend unchanged.
//
// Semantics shared by every backend: points form a multiset (duplicates
// allowed); erase removes at most one stored copy per batch entry for
// distinct batch points (backends differ only on erasing a point stored
// multiple times — see bdl_tree's class comment); k-NN rows are sorted by
// distance and have min(k, size()) entries; range results are unordered.
//
// The kd-tree backend serves updates by rebuilding from scratch — it is the
// static baseline the paper compares batch-dynamic structures against, and
// keeping it behind the same interface lets the benchmarks quantify exactly
// that trade-off.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bdltree/bdl_tree.h"
#include "core/aabb.h"
#include "core/point.h"
#include "kdtree/kdtree.h"
#include "parallel/parallel.h"
#include "zdtree/zdtree.h"

namespace pargeo::query {

enum class backend { kdtree, zdtree, bdltree };

inline const char* backend_name(backend b) {
  switch (b) {
    case backend::kdtree: return "kdtree";
    case backend::zdtree: return "zdtree";
    case backend::bdltree: return "bdltree";
  }
  return "?";
}

inline backend backend_from_string(const std::string& s) {
  if (s == "kdtree") return backend::kdtree;
  if (s == "zdtree") return backend::zdtree;
  if (s == "bdltree") return backend::bdltree;
  throw std::invalid_argument("unknown backend '" + s +
                              "' (want kdtree|zdtree|bdltree)");
}

/// Abstract batched spatial index. All batch entry points are internally
/// data-parallel; callers hand over whole batches and get per-query rows
/// back in input order.
template <int D>
class spatial_index {
 public:
  virtual ~spatial_index() = default;

  virtual backend kind() const = 0;
  virtual std::size_t size() const = 0;

  /// Replaces the stored set with `pts`.
  virtual void build(const std::vector<point<D>>& pts) = 0;
  virtual void batch_insert(const std::vector<point<D>>& pts) = 0;
  virtual void batch_erase(const std::vector<point<D>>& pts) = 0;

  /// Row i: the min(k, size()) nearest stored points to queries[i], sorted
  /// by distance (query point included at distance 0 if stored).
  virtual std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const = 0;

  /// Row i: all stored points inside boxes[i] (unordered).
  virtual std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const = 0;

  /// Row i: all stored points within radii[i] of centers[i] (unordered).
  virtual std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const = 0;

  /// All stored points (unordered; duplicates preserved).
  virtual std::vector<point<D>> gather() const = 0;
};

/// Static kd-tree backend: queries hit kdtree::tree directly; every update
/// rebuilds the tree over the new point set (the paper's static baseline).
template <int D>
class kdtree_index final : public spatial_index<D> {
 public:
  explicit kdtree_index(
      kdtree::split_policy policy = kdtree::split_policy::object_median,
      std::size_t leaf_size = kdtree::tree<D>::kDefaultLeafSize)
      : policy_(policy), leaf_size_(leaf_size) {
    rebuild();
  }

  backend kind() const override { return backend::kdtree; }
  std::size_t size() const override { return pts_.size(); }

  void build(const std::vector<point<D>>& pts) override {
    pts_ = pts;
    rebuild();
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    if (pts.empty()) return;
    pts_.insert(pts_.end(), pts.begin(), pts.end());
    rebuild();
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    if (pts.empty() || pts_.empty()) return;
    // Multiset removal: each batch entry consumes at most one stored copy.
    std::map<point<D>, std::size_t> pending;
    for (const auto& p : pts) ++pending[p];
    std::vector<point<D>> kept;
    kept.reserve(pts_.size());
    for (const auto& p : pts_) {
      auto it = pending.find(p);
      if (it != pending.end() && it->second > 0) {
        --it->second;
        continue;
      }
      kept.push_back(p);
    }
    if (kept.size() == pts_.size()) return;  // nothing matched
    pts_ = std::move(kept);
    rebuild();
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    std::vector<std::vector<point<D>>> out(queries.size());
    par::parallel_for(
        0, queries.size(),
        [&](std::size_t i) {
          auto entries = tree_->knn(queries[i], k);
          out[i].reserve(entries.size());
          for (const auto& e : entries) out[i].push_back(pts_[e.id]);
        },
        16);
    return out;
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    std::vector<std::vector<point<D>>> out(boxes.size());
    par::parallel_for(
        0, boxes.size(),
        [&](std::size_t i) {
          for (std::size_t id : tree_->range_box(boxes[i])) {
            out[i].push_back(pts_[id]);
          }
        },
        16);
    return out;
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    std::vector<std::vector<point<D>>> out(centers.size());
    par::parallel_for(
        0, centers.size(),
        [&](std::size_t i) {
          for (std::size_t id : tree_->range_ball(centers[i], radii[i])) {
            out[i].push_back(pts_[id]);
          }
        },
        16);
    return out;
  }

  std::vector<point<D>> gather() const override { return pts_; }

 private:
  void rebuild() {
    tree_ = std::make_unique<kdtree::tree<D>>(pts_, policy_, leaf_size_);
  }

  kdtree::split_policy policy_;
  std::size_t leaf_size_;
  std::vector<point<D>> pts_;
  std::unique_ptr<kdtree::tree<D>> tree_;
};

/// Morton-array backend (2D/3D only, like the original Zd-tree): updates are
/// sorted merges/filters, queries run over the implicit segment hierarchy.
template <int D>
class zdtree_index final : public spatial_index<D> {
  static_assert(D == 2 || D == 3, "zd_tree supports 2D and 3D only");

 public:
  backend kind() const override { return backend::zdtree; }
  std::size_t size() const override { return tree_.size(); }

  void build(const std::vector<point<D>>& pts) override {
    tree_ = zdtree::zd_tree<D>(pts);
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    tree_.insert(pts);
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    tree_.erase(pts);
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return tree_.knn(queries, k);
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    std::vector<std::vector<point<D>>> out(boxes.size());
    par::parallel_for(
        0, boxes.size(),
        [&](std::size_t i) { tree_.range_box(boxes[i], out[i]); }, 16);
    return out;
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    std::vector<std::vector<point<D>>> out(centers.size());
    par::parallel_for(
        0, centers.size(),
        [&](std::size_t i) { tree_.range_ball(centers[i], radii[i], out[i]); },
        16);
    return out;
  }

  std::vector<point<D>> gather() const override { return tree_.gather(); }

 private:
  zdtree::zd_tree<D> tree_;
};

/// Batch-dynamic BDL-tree backend (paper §5): the structure the subsystem
/// exists to serve — updates are absorbed by the logarithmic forest without
/// full rebuilds.
template <int D>
class bdltree_index final : public spatial_index<D> {
 public:
  explicit bdltree_index(
      bdltree::split_policy policy = bdltree::split_policy::object_median,
      std::size_t buffer_size = bdltree::bdl_tree<D>::kDefaultBufferSize)
      : policy_(policy), buffer_size_(buffer_size), tree_(policy, buffer_size) {}

  backend kind() const override { return backend::bdltree; }
  std::size_t size() const override { return tree_.size(); }

  void build(const std::vector<point<D>>& pts) override {
    tree_ = bdltree::bdl_tree<D>(policy_, buffer_size_);
    tree_.insert(pts);
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    tree_.insert(pts);
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    tree_.erase(pts);
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return tree_.knn(queries, k);
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    return tree_.range_box(boxes);
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    return tree_.range_ball(centers, radii);
  }

  std::vector<point<D>> gather() const override { return tree_.gather(); }

 private:
  bdltree::split_policy policy_;
  std::size_t buffer_size_;
  bdltree::bdl_tree<D> tree_;
};

// The common dimensions are instantiated once in query.cpp.
extern template class kdtree_index<2>;
extern template class kdtree_index<3>;
extern template class zdtree_index<2>;
extern template class zdtree_index<3>;
extern template class bdltree_index<2>;
extern template class bdltree_index<3>;

/// Factory keyed by the runtime backend tag. The Zd-tree backend exists only
/// in 2D/3D; requesting it at other dimensions throws.
template <int D>
std::unique_ptr<spatial_index<D>> make_index(backend b) {
  switch (b) {
    case backend::kdtree:
      return std::make_unique<kdtree_index<D>>();
    case backend::zdtree:
      if constexpr (D == 2 || D == 3) {
        return std::make_unique<zdtree_index<D>>();
      } else {
        throw std::invalid_argument("zdtree backend supports 2D/3D only");
      }
    case backend::bdltree:
      return std::make_unique<bdltree_index<D>>();
  }
  throw std::invalid_argument("unknown backend tag");
}

}  // namespace pargeo::query
