// Uniform adapter layer over the library's spatial trees (query subsystem,
// layer 1 of 3 — see query_engine.h and workload.h).
//
// The paper's structures expose three unrelated APIs: the static kd-tree
// (Module 1) has no updates, the Zd-tree stand-in has batch updates but no
// ids, and the BDL-tree has batch updates plus multi-tree k-NN. This header
// wraps all three behind one `spatial_index<D>` interface — `build`,
// `batch_insert`, `batch_erase`, `batch_knn`, `batch_range`, `batch_ball` —
// so a mixed read/write workload can run against any backend unchanged.
//
// Semantics shared by every backend: points form a multiset (duplicates
// allowed); erase removes at most one stored copy per batch entry for
// distinct batch points (backends differ only on erasing a point stored
// multiple times — see bdl_tree's class comment); k-NN rows are sorted by
// distance and have min(k, size()) entries; range results are unordered.
//
// The kd-tree backend is the static baseline the paper compares
// batch-dynamic structures against: updates are served by rebuilding. A
// rebuild-threshold policy softens the pathology — writes are buffered in a
// side multiset and the tree is only rebuilt once the pending volume
// exceeds a configurable fraction of the indexed set; queries merge the
// tree's answer with the buffer so results stay exact between rebuilds.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bdltree/bdl_tree.h"
#include "core/aabb.h"
#include "core/point.h"
#include "kdtree/kdtree.h"
#include "parallel/parallel.h"
#include "zdtree/zdtree.h"

namespace pargeo::query {

enum class backend { kdtree, zdtree, bdltree };

inline const char* backend_name(backend b) {
  switch (b) {
    case backend::kdtree: return "kdtree";
    case backend::zdtree: return "zdtree";
    case backend::bdltree: return "bdltree";
  }
  return "?";
}

inline backend backend_from_string(const std::string& s) {
  if (s == "kdtree") return backend::kdtree;
  if (s == "zdtree") return backend::zdtree;
  if (s == "bdltree") return backend::bdltree;
  throw std::invalid_argument("unknown backend '" + s +
                              "' (want kdtree|zdtree|bdltree)");
}

/// Abstract batched spatial index. All batch entry points are internally
/// data-parallel; callers hand over whole batches and get per-query rows
/// back in input order.
template <int D>
class spatial_index {
 public:
  virtual ~spatial_index() = default;

  virtual backend kind() const = 0;
  virtual std::size_t size() const = 0;

  /// Replaces the stored set with `pts`.
  virtual void build(const std::vector<point<D>>& pts) = 0;
  virtual void batch_insert(const std::vector<point<D>>& pts) = 0;
  virtual void batch_erase(const std::vector<point<D>>& pts) = 0;

  /// Row i: the min(k, size()) nearest stored points to queries[i], sorted
  /// by distance (query point included at distance 0 if stored).
  virtual std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const = 0;

  /// Row i: all stored points inside boxes[i] (unordered).
  virtual std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const = 0;

  /// Row i: all stored points within radii[i] of centers[i] (unordered).
  virtual std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const = 0;

  /// All stored points (unordered; duplicates preserved).
  virtual std::vector<point<D>> gather() const = 0;
};

/// Static kd-tree backend with a rebuild-threshold policy: writes accumulate
/// in a pending buffer (insert counts plus erase counts against the indexed
/// base) and the tree is only rebuilt when the pending volume exceeds
/// `rebuild_threshold` times the base size (threshold <= 0: rebuild on every
/// write batch, the paper's pure static baseline). Queries merge the tree's
/// answer over the base set with the buffer, so results are exact at every
/// point in time.
template <int D>
class kdtree_index final : public spatial_index<D> {
 public:
  static constexpr double kDefaultRebuildThreshold = 0.25;
  /// Absolute cap on buffered writes (queries merge the buffer, so their
  /// cost grows with it); rebuilds trigger past this regardless of the
  /// fractional threshold.
  static constexpr std::size_t kMaxPending = 8192;

  explicit kdtree_index(
      kdtree::split_policy policy = kdtree::split_policy::object_median,
      std::size_t leaf_size = kdtree::tree<D>::kDefaultLeafSize,
      double rebuild_threshold = kDefaultRebuildThreshold)
      : policy_(policy), leaf_size_(leaf_size),
        rebuild_threshold_(rebuild_threshold) {
    rebuild();
  }

  backend kind() const override { return backend::kdtree; }
  std::size_t size() const override {
    return base_.size() + num_add_ - num_del_;
  }

  /// Observability for the rebuild policy: trees built so far and writes
  /// currently buffered.
  std::size_t rebuild_count() const { return rebuilds_; }
  std::size_t pending_writes() const { return num_add_ + num_del_; }

  void build(const std::vector<point<D>>& pts) override {
    base_ = pts;
    clear_pending();
    rebuild();
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    if (pts.empty()) return;
    for (const auto& p : pts) {
      ++add_[p];
      ++num_add_;
    }
    maybe_rebuild();
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    if (pts.empty() || size() == 0) return;
    // Multiset removal: each batch entry consumes at most one stored copy —
    // a buffered insert if one exists, else a live base copy.
    for (const auto& p : pts) {
      auto ait = add_.find(p);
      if (ait != add_.end() && ait->second > 0) {
        if (--ait->second == 0) add_.erase(ait);
        --num_add_;
        continue;
      }
      auto bit = base_count_.find(p);
      const std::size_t in_base = bit == base_count_.end() ? 0 : bit->second;
      auto dit = del_.find(p);
      const std::size_t already = dit == del_.end() ? 0 : dit->second;
      if (in_base > already) {
        ++del_[p];
        ++num_del_;
      }
    }
    maybe_rebuild();
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    std::vector<std::vector<point<D>>> out(queries.size());
    par::parallel_for(
        0, queries.size(),
        [&](std::size_t i) { out[i] = knn_one(queries[i], k); }, 16);
    return out;
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    std::vector<std::vector<point<D>>> out(boxes.size());
    par::parallel_for(
        0, boxes.size(),
        [&](std::size_t i) {
          out[i] = filter_base(tree_->range_box(boxes[i]));
          for (const auto& [p, c] : add_) {
            if (boxes[i].contains(p)) out[i].insert(out[i].end(), c, p);
          }
        },
        16);
    return out;
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    std::vector<std::vector<point<D>>> out(centers.size());
    par::parallel_for(
        0, centers.size(),
        [&](std::size_t i) {
          out[i] = filter_base(tree_->range_ball(centers[i], radii[i]));
          for (const auto& [p, c] : add_) {
            if (p.dist_sq(centers[i]) <= radii[i] * radii[i]) {
              out[i].insert(out[i].end(), c, p);
            }
          }
        },
        16);
    return out;
  }

  std::vector<point<D>> gather() const override { return materialize(); }

 private:
  // Base copies surviving the erase buffer, plus all buffered inserts —
  // the index's current logical contents.
  std::vector<point<D>> materialize() const {
    std::vector<point<D>> out;
    out.reserve(size());
    auto del = del_;
    for (const auto& p : base_) {
      auto it = del.find(p);
      if (it != del.end() && it->second > 0) {
        --it->second;
        continue;
      }
      out.push_back(p);
    }
    for (const auto& [p, c] : add_) out.insert(out.end(), c, p);
    return out;
  }

  // Drops erased copies from a tree result (ids into base_). Which of the
  // identical copies of a value gets dropped is immaterial.
  std::vector<point<D>> filter_base(const std::vector<std::size_t>& ids) const {
    std::vector<point<D>> out;
    out.reserve(ids.size());
    if (del_.empty()) {
      for (std::size_t id : ids) out.push_back(base_[id]);
      return out;
    }
    std::map<point<D>, std::size_t> skipped;
    for (std::size_t id : ids) {
      const auto& p = base_[id];
      auto dit = del_.find(p);
      if (dit != del_.end()) {
        auto& s = skipped[p];
        if (s < dit->second) {
          ++s;
          continue;
        }
      }
      out.push_back(p);
    }
    return out;
  }

  std::vector<point<D>> knn_one(const point<D>& q, std::size_t k) const {
    if (k == 0 || size() == 0) return {};
    // Over-fetch by the erase-buffer size: of the k + num_del_ nearest base
    // points at most num_del_ are erased, so >= min(k, live) survive.
    auto entries = tree_->knn(q, k + num_del_);
    std::vector<std::pair<double, point<D>>> cand;
    cand.reserve(entries.size() + num_add_);
    std::map<point<D>, std::size_t> skipped;
    for (const auto& e : entries) {
      const auto& p = base_[e.id];
      auto dit = del_.find(p);
      if (dit != del_.end()) {
        auto& s = skipped[p];
        if (s < dit->second) {
          ++s;
          continue;
        }
      }
      cand.emplace_back(e.dist_sq, p);
    }
    for (const auto& [p, c] : add_) {
      cand.insert(cand.end(), c, std::make_pair(p.dist_sq(q), p));
    }
    std::stable_sort(cand.begin(), cand.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<point<D>> out;
    out.reserve(std::min(k, cand.size()));
    for (std::size_t i = 0; i < cand.size() && i < k; ++i) {
      out.push_back(cand[i].second);
    }
    return out;
  }

  void maybe_rebuild() {
    const std::size_t pending = num_add_ + num_del_;
    if (pending == 0) return;  // e.g. an erase batch that matched nothing
    // Queries pay O(pending) for the buffer merge, so an absolute cap
    // bounds per-query cost even when the fractional threshold would let
    // the buffer grow with the tree.
    if (rebuild_threshold_ > 0 && pending <= kMaxPending &&
        static_cast<double>(pending) <=
            rebuild_threshold_ * static_cast<double>(base_.size())) {
      return;
    }
    base_ = materialize();
    clear_pending();
    rebuild();
  }

  void clear_pending() {
    add_.clear();
    del_.clear();
    num_add_ = num_del_ = 0;
  }

  void rebuild() {
    tree_ = std::make_unique<kdtree::tree<D>>(base_, policy_, leaf_size_);
    base_count_.clear();
    for (const auto& p : base_) ++base_count_[p];
    ++rebuilds_;
  }

  kdtree::split_policy policy_;
  std::size_t leaf_size_;
  double rebuild_threshold_;
  std::vector<point<D>> base_;               // points indexed by tree_
  std::map<point<D>, std::size_t> base_count_;
  std::map<point<D>, std::size_t> add_;      // buffered inserts (with counts)
  std::map<point<D>, std::size_t> del_;      // buffered erases against base_
  std::size_t num_add_ = 0;
  std::size_t num_del_ = 0;
  std::size_t rebuilds_ = 0;
  std::unique_ptr<kdtree::tree<D>> tree_;
};

/// Morton-array backend (2D/3D only, like the original Zd-tree): updates are
/// sorted merges/filters, queries run over the implicit segment hierarchy.
template <int D>
class zdtree_index final : public spatial_index<D> {
  static_assert(D == 2 || D == 3, "zd_tree supports 2D and 3D only");

 public:
  backend kind() const override { return backend::zdtree; }
  std::size_t size() const override { return tree_.size(); }

  void build(const std::vector<point<D>>& pts) override {
    tree_ = zdtree::zd_tree<D>(pts);
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    tree_.insert(pts);
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    tree_.erase(pts);
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return tree_.knn(queries, k);
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    std::vector<std::vector<point<D>>> out(boxes.size());
    par::parallel_for(
        0, boxes.size(),
        [&](std::size_t i) { tree_.range_box(boxes[i], out[i]); }, 16);
    return out;
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    std::vector<std::vector<point<D>>> out(centers.size());
    par::parallel_for(
        0, centers.size(),
        [&](std::size_t i) { tree_.range_ball(centers[i], radii[i], out[i]); },
        16);
    return out;
  }

  std::vector<point<D>> gather() const override { return tree_.gather(); }

 private:
  zdtree::zd_tree<D> tree_;
};

/// Batch-dynamic BDL-tree backend (paper §5): the structure the subsystem
/// exists to serve — updates are absorbed by the logarithmic forest without
/// full rebuilds.
template <int D>
class bdltree_index final : public spatial_index<D> {
 public:
  explicit bdltree_index(
      bdltree::split_policy policy = bdltree::split_policy::object_median,
      std::size_t buffer_size = bdltree::bdl_tree<D>::kDefaultBufferSize)
      : policy_(policy), buffer_size_(buffer_size), tree_(policy, buffer_size) {}

  backend kind() const override { return backend::bdltree; }
  std::size_t size() const override { return tree_.size(); }

  void build(const std::vector<point<D>>& pts) override {
    tree_ = bdltree::bdl_tree<D>(policy_, buffer_size_);
    tree_.insert(pts);
  }

  void batch_insert(const std::vector<point<D>>& pts) override {
    tree_.insert(pts);
  }

  void batch_erase(const std::vector<point<D>>& pts) override {
    tree_.erase(pts);
  }

  std::vector<std::vector<point<D>>> batch_knn(
      const std::vector<point<D>>& queries, std::size_t k) const override {
    return tree_.knn(queries, k);
  }

  std::vector<std::vector<point<D>>> batch_range(
      const std::vector<aabb<D>>& boxes) const override {
    return tree_.range_box(boxes);
  }

  std::vector<std::vector<point<D>>> batch_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const override {
    return tree_.range_ball(centers, radii);
  }

  std::vector<point<D>> gather() const override { return tree_.gather(); }

 private:
  bdltree::split_policy policy_;
  std::size_t buffer_size_;
  bdltree::bdl_tree<D> tree_;
};

// The common dimensions are instantiated once in query.cpp.
extern template class kdtree_index<2>;
extern template class kdtree_index<3>;
extern template class zdtree_index<2>;
extern template class zdtree_index<3>;
extern template class bdltree_index<2>;
extern template class bdltree_index<3>;

/// Per-backend tuning knobs forwarded by make_index (and by query_service
/// to every shard it owns). Only the kd-tree backend has knobs today.
struct index_options {
  kdtree::split_policy kdtree_split = kdtree::split_policy::object_median;
  std::size_t kdtree_leaf_size = 16;
  /// Rebuild when buffered writes exceed this fraction of the indexed set;
  /// <= 0 rebuilds on every write batch (the pure static baseline).
  double kdtree_rebuild_threshold = 0.25;
};

/// Factory keyed by the runtime backend tag. The Zd-tree backend exists only
/// in 2D/3D; requesting it at other dimensions throws.
template <int D>
std::unique_ptr<spatial_index<D>> make_index(backend b,
                                             const index_options& opt = {}) {
  switch (b) {
    case backend::kdtree:
      return std::make_unique<kdtree_index<D>>(opt.kdtree_split,
                                               opt.kdtree_leaf_size,
                                               opt.kdtree_rebuild_threshold);
    case backend::zdtree:
      if constexpr (D == 2 || D == 3) {
        return std::make_unique<zdtree_index<D>>();
      } else {
        throw std::invalid_argument("zdtree backend supports 2D/3D only");
      }
    case backend::bdltree:
      return std::make_unique<bdltree_index<D>>();
  }
  throw std::invalid_argument("unknown backend tag");
}

}  // namespace pargeo::query
