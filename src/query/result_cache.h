// Epoch-keyed result cache for the query service (query subsystem).
//
// Zipf-skewed read traffic (src/query/workload.h models it) re-executes the
// same few query keys over and over; between writes the index contents are
// frozen, so those answers are pure functions of (query shape, contents).
// `result_cache<D>` memoizes them: an LRU map keyed by the exact bit
// pattern of the query — k-NN (point, k), box range (lo, hi), or ball
// range (center, radius) — plus the owning shard's *write epoch*
// (spatial_index::epoch(), bumped by every content-changing write batch).
//
// Keying by epoch is the invalidation scheme: a write bumps the epoch, so
// every earlier entry becomes unreachable and ages out through the LRU —
// no flush, no locking against the write path, and a snapshot read at an
// older epoch still hits the entries computed for that epoch. Because the
// key captures everything the answer depends on, a hit is byte-identical
// to re-running the query (the correctness oracle in
// tests/test_result_cache.cpp enforces this on every backend).
//
// The query_service shards the cache alongside the index: one instance per
// index shard (the shard id is part of the logical key by construction),
// each with its own mutex, so shard executors and snapshot readers probing
// different shards never contend. Sharded keying is also what makes
// invalidation *stripe-aware*: a write routed to shard 3 bumps only shard
// 3's epoch, so shard 1's cached range rows stay hot — which is exactly
// what keeps continuous-query re-evaluation (subscription.h) cheap on the
// shards a drain did not touch. Capacity 0 disables an instance entirely
// (probes fall through with no counter traffic).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/aabb.h"
#include "core/point.h"
#include "query/telemetry.h"

namespace pargeo::query {

namespace detail {

/// Canonical bit pattern of one point coordinate: -0.0 maps to 0.0 so
/// equal points (point::operator==) always share bits. This is THE
/// definition — shard routing (query_service::hash_point) and cache keys
/// both build on it; a point-canonicalization change must happen here so
/// routing and caching cannot disagree.
inline std::uint64_t canonical_coord_bits(double c) {
  const double coord = c == 0.0 ? 0.0 : c;
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &coord, sizeof(bits));
  return bits;
}

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

/// FNV-1a over a point's canonical coordinate bits.
template <int D>
std::uint64_t point_fnv1a(const point<D>& p) {
  std::uint64_t h = kFnvOffset;
  for (int d = 0; d < D; ++d) h = fnv1a_mix(h, canonical_coord_bits(p[d]));
  return h;
}

/// Query shape a cache key describes. Values are part of the key's bit
/// pattern, never serialized — renumbering is safe.
enum class result_kind : std::uint8_t { knn, box, ball };

/// Exact memoization key for any read shape: canonical coordinate bits of
/// the query geometry (a = point / center / box-lo, b = box-hi), the
/// shape scalar (k for k-NN, radius bits for balls), and the write epoch.
/// Shared by the per-shard caches and the read path's same-run dedup map.
template <int D>
struct result_key {
  result_kind kind = result_kind::knn;
  std::uint64_t a[D];
  std::uint64_t b[D];
  std::uint64_t scalar = 0;
  std::uint64_t epoch = 0;

  result_key() {
    for (int d = 0; d < D; ++d) a[d] = b[d] = 0;
  }

  static result_key knn(const point<D>& q, std::size_t k, std::uint64_t e) {
    result_key key;
    key.kind = result_kind::knn;
    for (int d = 0; d < D; ++d) key.a[d] = canonical_coord_bits(q[d]);
    key.scalar = k;
    key.epoch = e;
    return key;
  }

  static result_key box(const aabb<D>& qb, std::uint64_t e) {
    result_key key;
    key.kind = result_kind::box;
    for (int d = 0; d < D; ++d) {
      key.a[d] = canonical_coord_bits(qb.lo[d]);
      key.b[d] = canonical_coord_bits(qb.hi[d]);
    }
    key.epoch = e;
    return key;
  }

  static result_key ball(const point<D>& center, double radius,
                         std::uint64_t e) {
    result_key key;
    key.kind = result_kind::ball;
    for (int d = 0; d < D; ++d) key.a[d] = canonical_coord_bits(center[d]);
    key.scalar = canonical_coord_bits(radius);
    key.epoch = e;
    return key;
  }

  bool operator==(const result_key& o) const {
    return kind == o.kind && scalar == o.scalar && epoch == o.epoch &&
           std::memcmp(a, o.a, sizeof(a)) == 0 &&
           std::memcmp(b, o.b, sizeof(b)) == 0;
  }
};

template <int D>
struct result_key_hash {
  std::size_t operator()(const result_key<D>& key) const {
    std::uint64_t h = kFnvOffset;
    h = fnv1a_mix(h, static_cast<std::uint64_t>(key.kind));
    for (int d = 0; d < D; ++d) h = fnv1a_mix(h, key.a[d]);
    for (int d = 0; d < D; ++d) h = fnv1a_mix(h, key.b[d]);
    h = fnv1a_mix(h, key.scalar);
    h = fnv1a_mix(h, key.epoch);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace detail

/// Counters for one cache instance (or, summed, for a sharded set).
struct cache_stats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;  // entries dropped by the LRU capacity bound
  std::size_t entries = 0;    // currently resident
  /// Hit/miss latency split (populated only on `timed` instances — the
  /// service enables timing alongside telemetry): `hit_ns` is wall time
  /// spent serving hits from the map, `miss_ns` the tree-execution time
  /// the misses went on to pay. The gap between avg_hit/avg_miss is the
  /// per-probe win the cache buys.
  std::uint64_t hit_ns = 0;
  std::uint64_t miss_ns = 0;

  double hit_rate() const {
    const std::size_t probes = hits + misses;
    return probes > 0 ? static_cast<double>(hits) / probes : 0.0;
  }
  double avg_hit_ns() const {
    return hits > 0 ? static_cast<double>(hit_ns) / hits : 0.0;
  }
  double avg_miss_ns() const {
    return misses > 0 ? static_cast<double>(miss_ns) / misses : 0.0;
  }
  void accumulate(const cache_stats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    entries += o.entries;
    hit_ns += o.hit_ns;
    miss_ns += o.miss_ns;
  }
};

/// Epoch-invalidated LRU cache of read-result rows (k-NN / box / ball)
/// for one index shard. Thread-safe; every operation is O(1) expected
/// under one internal lock.
template <int D>
class result_cache {
 public:
  using key_t = detail::result_key<D>;

  /// `capacity` bounds resident entries; 0 disables the instance (lookups
  /// miss without counting, stores are dropped). `timed` turns on the
  /// hit/miss latency split (a clock read per probe — the service enables
  /// it together with telemetry).
  explicit result_cache(std::size_t capacity, bool timed = false)
      : capacity_(capacity), timed_(timed) {}

  bool enabled() const { return capacity_ > 0; }
  bool timed() const { return timed_ && enabled(); }
  std::size_t capacity() const { return capacity_; }

  /// On hit, copies the cached row into `out`, refreshes LRU recency, and
  /// returns true. Counts a hit or a miss (disabled instances count
  /// neither).
  bool lookup(const key_t& key, std::vector<point<D>>& out) {
    if (!enabled()) return false;
    const std::uint64_t t0 = timed_ ? monotonic_ns() : 0;
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    out = it->second->row;
    ++hits_;
    if (timed_) hit_ns_ += monotonic_ns() - t0;
    return true;
  }

  /// k-NN convenience probe (the original knn_result_cache signature).
  bool lookup(const point<D>& q, std::size_t k, std::uint64_t epoch,
              std::vector<point<D>>& out) {
    return lookup(key_t::knn(q, k, epoch), out);
  }

  /// Inserts `row` for the key, evicting least-recently-used entries past
  /// capacity. Concurrent stores of the same key keep the first copy (the
  /// rows are identical by construction — same key bits, same epoch).
  void store(const key_t& key, const std::vector<point<D>>& row) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(entry{key, row});
    map_.emplace(key, lru_.begin());
    while (map_.size() > capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  /// k-NN convenience store (the original knn_result_cache signature).
  void store(const point<D>& q, std::size_t k, std::uint64_t epoch,
             const std::vector<point<D>>& row) {
    store(key_t::knn(q, k, epoch), row);
  }

  /// Counts `n` extra hits served outside the map — the read path dedups
  /// identical missed keys within one run (the duplicates reuse the first
  /// execution's row without re-probing), which is a cache-layer win that
  /// would otherwise be invisible in the counters. Disabled instances
  /// count nothing (same contract as lookup/store: capacity 0 must never
  /// report cache activity).
  void add_hits(std::size_t n) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lk(mu_);
    hits_ += n;
  }

  /// Attributes `ns` of tree execution to this shard's cache misses —
  /// the read path measures the miss batch it executed after probing and
  /// reports it here, completing the hit/miss latency split. Only timed
  /// instances count (same gating as the lookup-side timing).
  void add_miss_ns(std::uint64_t ns) {
    if (!timed()) return;
    std::lock_guard<std::mutex> lk(mu_);
    miss_ns_ += ns;
  }

  cache_stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    cache_stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = map_.size();
    s.hit_ns = hit_ns_;
    s.miss_ns = miss_ns_;
    return s;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
    lru_.clear();
  }

 private:
  using key_hash = detail::result_key_hash<D>;

  struct entry {
    key_t key;
    std::vector<point<D>> row;
  };

  const std::size_t capacity_;
  const bool timed_;
  mutable std::mutex mu_;
  std::list<entry> lru_;  // front = most recently used
  std::unordered_map<key_t, typename std::list<entry>::iterator, key_hash>
      map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::uint64_t hit_ns_ = 0;
  std::uint64_t miss_ns_ = 0;
};

/// Historical name from when only k-NN rows were cached; the generalized
/// cache is a strict superset, so the alias keeps old call sites exact.
template <int D>
using knn_result_cache = result_cache<D>;

}  // namespace pargeo::query
