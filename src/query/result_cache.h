// Hot k-NN result cache for the query service (query subsystem).
//
// Zipf-skewed read traffic (src/query/workload.h models it) re-executes the
// same few k-NN keys over and over; between writes the index contents are
// frozen, so those answers are pure functions of (query point, k, contents).
// `knn_result_cache<D>` memoizes them: an LRU map keyed by the exact bit
// pattern of the query point plus k plus the owning shard's *write epoch*
// (spatial_index::epoch(), bumped by every content-changing write batch).
//
// Keying by epoch is the invalidation scheme: a write bumps the epoch, so
// every earlier entry becomes unreachable and ages out through the LRU —
// no flush, no locking against the write path, and a snapshot read at an
// older epoch still hits the entries computed for that epoch. Because the
// key captures everything the answer depends on, a hit is byte-identical
// to re-running the query (the correctness oracle in
// tests/test_result_cache.cpp enforces this on every backend).
//
// The query_service shards the cache alongside the index: one instance per
// index shard (the shard id is part of the logical key by construction),
// each with its own mutex, so shard executors and snapshot readers probing
// different shards never contend. Capacity 0 disables an instance entirely
// (probes fall through with no counter traffic).
#pragma once

#include <cstdint>
#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/point.h"
#include "query/telemetry.h"

namespace pargeo::query {

namespace detail {

/// Canonical bit pattern of one point coordinate: -0.0 maps to 0.0 so
/// equal points (point::operator==) always share bits. This is THE
/// definition — shard routing (query_service::hash_point) and cache keys
/// both build on it; a point-canonicalization change must happen here so
/// routing and caching cannot disagree.
inline std::uint64_t canonical_coord_bits(double c) {
  const double coord = c == 0.0 ? 0.0 : c;
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &coord, sizeof(bits));
  return bits;
}

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

/// FNV-1a over a point's canonical coordinate bits.
template <int D>
std::uint64_t point_fnv1a(const point<D>& p) {
  std::uint64_t h = kFnvOffset;
  for (int d = 0; d < D; ++d) h = fnv1a_mix(h, canonical_coord_bits(p[d]));
  return h;
}

/// Exact k-NN memoization key: canonical point bits + k + write epoch.
/// Shared by the per-shard caches and the read path's same-run dedup map.
template <int D>
struct knn_key {
  std::uint64_t coord_bits[D];
  std::uint64_t k;
  std::uint64_t epoch;

  knn_key() = default;
  knn_key(const point<D>& q, std::size_t kk, std::uint64_t e)
      : k(kk), epoch(e) {
    for (int d = 0; d < D; ++d) coord_bits[d] = canonical_coord_bits(q[d]);
  }

  bool operator==(const knn_key& o) const {
    return k == o.k && epoch == o.epoch &&
           std::memcmp(coord_bits, o.coord_bits, sizeof(coord_bits)) == 0;
  }
};

template <int D>
struct knn_key_hash {
  std::size_t operator()(const knn_key<D>& key) const {
    std::uint64_t h = kFnvOffset;
    for (int d = 0; d < D; ++d) h = fnv1a_mix(h, key.coord_bits[d]);
    h = fnv1a_mix(h, key.k);
    h = fnv1a_mix(h, key.epoch);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace detail

/// Counters for one cache instance (or, summed, for a sharded set).
struct cache_stats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;  // entries dropped by the LRU capacity bound
  std::size_t entries = 0;    // currently resident
  /// Hit/miss latency split (populated only on `timed` instances — the
  /// service enables timing alongside telemetry): `hit_ns` is wall time
  /// spent serving hits from the map, `miss_ns` the tree-execution time
  /// the misses went on to pay. The gap between avg_hit/avg_miss is the
  /// per-probe win the cache buys.
  std::uint64_t hit_ns = 0;
  std::uint64_t miss_ns = 0;

  double hit_rate() const {
    const std::size_t probes = hits + misses;
    return probes > 0 ? static_cast<double>(hits) / probes : 0.0;
  }
  double avg_hit_ns() const {
    return hits > 0 ? static_cast<double>(hit_ns) / hits : 0.0;
  }
  double avg_miss_ns() const {
    return misses > 0 ? static_cast<double>(miss_ns) / misses : 0.0;
  }
  void accumulate(const cache_stats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    entries += o.entries;
    hit_ns += o.hit_ns;
    miss_ns += o.miss_ns;
  }
};

/// Epoch-invalidated LRU cache of k-NN result rows for one index shard.
/// Thread-safe; every operation is O(1) expected under one internal lock.
template <int D>
class knn_result_cache {
 public:
  /// `capacity` bounds resident entries; 0 disables the instance (lookups
  /// miss without counting, stores are dropped). `timed` turns on the
  /// hit/miss latency split (a clock read per probe — the service enables
  /// it together with telemetry).
  explicit knn_result_cache(std::size_t capacity, bool timed = false)
      : capacity_(capacity), timed_(timed) {}

  bool enabled() const { return capacity_ > 0; }
  bool timed() const { return timed_ && enabled(); }
  std::size_t capacity() const { return capacity_; }

  /// On hit, copies the cached row into `out`, refreshes LRU recency, and
  /// returns true. Counts a hit or a miss (disabled instances count
  /// neither).
  bool lookup(const point<D>& q, std::size_t k, std::uint64_t epoch,
              std::vector<point<D>>& out) {
    if (!enabled()) return false;
    const std::uint64_t t0 = timed_ ? monotonic_ns() : 0;
    const key_t key = make_key(q, k, epoch);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    out = it->second->row;
    ++hits_;
    if (timed_) hit_ns_ += monotonic_ns() - t0;
    return true;
  }

  /// Inserts `row` for the key, evicting least-recently-used entries past
  /// capacity. Concurrent stores of the same key keep the first copy (the
  /// rows are identical by construction — same point, k, and epoch).
  void store(const point<D>& q, std::size_t k, std::uint64_t epoch,
             const std::vector<point<D>>& row) {
    if (!enabled()) return;
    const key_t key = make_key(q, k, epoch);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(entry{key, row});
    map_.emplace(key, lru_.begin());
    while (map_.size() > capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  /// Counts `n` extra hits served outside the map — the read path dedups
  /// identical missed keys within one run (the duplicates reuse the first
  /// execution's row without re-probing), which is a cache-layer win that
  /// would otherwise be invisible in the counters. Disabled instances
  /// count nothing (same contract as lookup/store: capacity 0 must never
  /// report cache activity).
  void add_hits(std::size_t n) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lk(mu_);
    hits_ += n;
  }

  /// Attributes `ns` of tree execution to this shard's cache misses —
  /// the read path measures the miss batch it executed after probing and
  /// reports it here, completing the hit/miss latency split. Only timed
  /// instances count (same gating as the lookup-side timing).
  void add_miss_ns(std::uint64_t ns) {
    if (!timed()) return;
    std::lock_guard<std::mutex> lk(mu_);
    miss_ns_ += ns;
  }

  cache_stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    cache_stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = map_.size();
    s.hit_ns = hit_ns_;
    s.miss_ns = miss_ns_;
    return s;
  }

  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
    lru_.clear();
  }

 private:
  using key_t = detail::knn_key<D>;
  using key_hash = detail::knn_key_hash<D>;

  static key_t make_key(const point<D>& q, std::size_t k,
                        std::uint64_t epoch) {
    return key_t(q, k, epoch);
  }

  struct entry {
    key_t key;
    std::vector<point<D>> row;
  };

  const std::size_t capacity_;
  const bool timed_;
  mutable std::mutex mu_;
  std::list<entry> lru_;  // front = most recently used
  std::unordered_map<key_t, typename std::list<entry>::iterator, key_hash>
      map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
  std::uint64_t hit_ns_ = 0;
  std::uint64_t miss_ns_ = 0;
};

}  // namespace pargeo::query
