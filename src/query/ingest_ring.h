// Bounded lock-free MPSC ring — the query_service's lock-free front door
// (ingest_mode::lockfree).
//
// Layout is the classic sequence-numbered slot array (Vyukov's bounded
// queue, restricted to a single consumer): each slot carries an atomic
// sequence counter; a producer claims a position with one CAS on the tail,
// writes the item, and *publishes* it by storing `pos + 1` into the slot's
// sequence with release order. The consumer observes publication with an
// acquire load, moves the item out, and recycles the slot by storing
// `pos + capacity`. Producers never take a lock on the fast path; the only
// producer-producer contention is the tail CAS.
//
// Blocking is futex-style, built from the primitives C++17 gives us: a
// producer that finds the ring full spins a bounded number of times (each
// failed attempt is counted in `spins()` — the service surfaces it as
// `ingest_spins`) and then parks on a mutex/condvar parking lot. The
// consumer wakes the lot only when `waiters()` says somebody is parked, so
// the uncontended path never touches the lot. The consumer parks the same
// way via `consumer_wait`; producers `kick_consumer()` after publishing
// only when the parked flag is up. Both sides bound their waits, so a lost
// wakeup race costs one timeout tick, never a deadlock; the seq_cst fences
// around the parked-flag handshake make that race next to impossible.
//
// close() wakes every parked producer and the consumer; subsequent pushes
// return push_status::closed. Items already published stay poppable — the
// consumer drains the ring to empty before shutting down.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace pargeo::query {

enum class push_status { ok, full, closed };

template <typename T>
class mpsc_ring {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit mpsc_ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.reset(new slot[cap]);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// One lock-free push attempt. Returns `full` without consuming `v`;
  /// `ok` moves `v` into the ring.
  push_status try_push(T& v) {
    if (closed_.load(std::memory_order_acquire)) return push_status::closed;
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      slot& s = slots_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.item = std::move(v);
          s.seq.store(pos + 1, std::memory_order_release);
          std::atomic_thread_fence(std::memory_order_seq_cst);
          if (consumer_parked_.load(std::memory_order_relaxed)) {
            kick_consumer();
          }
          return push_status::ok;
        }
        // CAS refreshed pos; retry at the new position.
      } else if (dif < 0) {
        return push_status::full;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Blocking push: spins while the ring is full (counted in spins()),
  /// then parks until the consumer frees a slot or the ring closes.
  push_status push(T&& v) {
    T local = std::move(v);
    for (;;) {
      for (int i = 0; i < kSpinLimit; ++i) {
        const push_status st = try_push(local);
        if (st != push_status::full) return st;
        spins_.fetch_add(1, std::memory_order_relaxed);
      }
      std::unique_lock<std::mutex> lk(prod_mu_);
      prod_waiters_.fetch_add(1, std::memory_order_seq_cst);
      // Bounded wait: a missed notify costs one tick, not a deadlock.
      prod_cv_.wait_for(lk, std::chrono::milliseconds(1), [&] {
        return closed_.load(std::memory_order_acquire) || !full_hint();
      });
      prod_waiters_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  /// Single-consumer pop. Returns false when no published item is ready.
  bool try_pop(T& out) {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    slot& s = slots_[pos & mask_];
    const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(pos + 1) < 0) {
      return false;
    }
    out = std::move(s.item);
    s.item = T{};  // drop payload-owned resources now, not a lap later
    s.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_release);
    if (prod_waiters_.load(std::memory_order_relaxed) > 0) {
      std::lock_guard<std::mutex> lk(prod_mu_);
      prod_cv_.notify_all();
    }
    return true;
  }

  /// True when every published item has been consumed (consumer's view;
  /// racy but conservative for anyone else).
  bool empty() const {
    const std::uint64_t pos = head_.load(std::memory_order_acquire);
    const std::uint64_t seq =
        slots_[pos & mask_].seq.load(std::memory_order_acquire);
    return static_cast<std::int64_t>(seq) -
               static_cast<std::int64_t>(pos + 1) < 0;
  }

  /// Published-but-unconsumed item count (approximate under concurrency).
  std::size_t approx_size() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

  /// Consumer-side park: blocks until `pred()` holds, a producer kicks,
  /// or `timeout` elapses. `pred` must read only atomics.
  template <typename Pred>
  void consumer_wait(std::chrono::nanoseconds timeout, Pred pred) {
    consumer_parked_.store(true, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!pred()) {
      std::unique_lock<std::mutex> lk(cons_mu_);
      cons_cv_.wait_for(lk, timeout, pred);
    }
    consumer_parked_.store(false, std::memory_order_relaxed);
  }

  /// Wake the consumer if it is (or is about to be) parked.
  void kick_consumer() {
    std::lock_guard<std::mutex> lk(cons_mu_);
    cons_cv_.notify_all();
  }

  /// Wakes every parked producer and the consumer; later pushes fail with
  /// push_status::closed. Already-published items remain poppable.
  void close() {
    closed_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lk(prod_mu_);
      prod_cv_.notify_all();
    }
    kick_consumer();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Failed full-ring push attempts (producer spin iterations).
  std::uint64_t spins() const {
    return spins_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kSpinLimit = 64;

  struct slot {
    std::atomic<std::uint64_t> seq{0};
    T item{};
  };

  // Producer-visible fullness hint for the parking-lot predicate: the next
  // tail slot has not been recycled yet.
  bool full_hint() const {
    const std::uint64_t pos = tail_.load(std::memory_order_acquire);
    const std::uint64_t seq =
        slots_[pos & mask_].seq.load(std::memory_order_acquire);
    return static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos) < 0;
  }

  std::unique_ptr<slot[]> slots_;
  std::size_t mask_ = 1;
  alignas(64) std::atomic<std::uint64_t> tail_{0};   // producers CAS
  alignas(64) std::atomic<std::uint64_t> head_{0};   // consumer only
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> spins_{0};

  std::mutex prod_mu_;
  std::condition_variable prod_cv_;
  std::atomic<int> prod_waiters_{0};  // modified under prod_mu_

  std::mutex cons_mu_;
  std::condition_variable cons_cv_;
  std::atomic<bool> consumer_parked_{false};
};

}  // namespace pargeo::query
