// Checkpoints: per-shard resident state at an epoch (query subsystem).
//
// A checkpoint is everything needed to rebuild a `query_service<D>`
// without replaying the log from epoch 1: the epoch it was taken at,
// the spatial stripe geometry (split dim + cuts, when set), and each
// shard's resident points in gather order. Recovery bootstraps the
// engines from the checkpoint and replays only the log tail with
// epoch > checkpoint.epoch; compaction then truncates the log below
// that epoch so cold replicas stop replaying from genesis.
//
//   *Atomicity*. write_checkpoint() serializes to `ck-<epoch>.pgck.tmp`,
//   fsyncs, renames into place, and only then rewrites the CURRENT
//   manifest (also tmp + rename). A crash at any point leaves the
//   previous checkpoint live: the fault point "checkpoint.serialize"
//   fires before any byte is written, and a torn tmp file never gets
//   the rename.
//
//   *Manifest*. CURRENT lists checkpoint filenames newest-first, one
//   per line, at most kKeep entries; files that fall off the list are
//   unlinked. This is the LevelDB discipline: no directory listing at
//   recovery, just follow the manifest and fall back one entry if the
//   newest file fails its checksum.
//
//   *Format*. "PGCK" | u32 version | u32 dim | payload | trailing
//   u64 FNV-1a over everything before it. Unlike the op log there is
//   no per-frame salvage: a checkpoint is all-or-nothing (rename is
//   the commit point), so any corruption rejects the file and recovery
//   falls back to the previous manifest entry.
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "core/point.h"
#include "query/fault.h"

namespace pargeo::query {

template <int D>
struct checkpoint_data {
  std::uint64_t epoch = 0;  // log epoch this state is consistent with
  bool bounds_set = false;
  std::int32_t split_dim = 0;
  std::vector<double> cuts;  // stripe upper cuts, size == shards - 1
  std::vector<std::vector<point<D>>> shard_points;  // resident, per shard

  std::size_t num_points() const {
    std::size_t n = 0;
    for (const auto& s : shard_points) n += s.size();
    return n;
  }
};

namespace detail_ck {

inline constexpr char kMagic[5] = "PGCK";
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kKeep = 2;  // manifest depth (current + fallback)

inline std::uint64_t fnv1a(const unsigned char* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline void put_bytes(std::vector<unsigned char>& b, const void* p,
                      std::size_t n) {
  const auto* c = static_cast<const unsigned char*>(p);
  b.insert(b.end(), c, c + n);
}
inline void put_u8(std::vector<unsigned char>& b, std::uint8_t v) {
  b.push_back(v);
}
inline void put_u32(std::vector<unsigned char>& b, std::uint32_t v) {
  put_bytes(b, &v, 4);
}
inline void put_u64(std::vector<unsigned char>& b, std::uint64_t v) {
  put_bytes(b, &v, 8);
}
inline void put_f64(std::vector<unsigned char>& b, double v) {
  put_bytes(b, &v, 8);
}

struct reader {
  const unsigned char* data;
  std::size_t len;
  std::size_t off;
  const std::string& path;

  void need(std::size_t n) const {
    if (off + n > len) {
      throw std::runtime_error("checkpoint: '" + path + "' truncated");
    }
  }
  void bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data + off, n);
    off += n;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    bytes(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    bytes(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    bytes(&v, 8);
    return v;
  }
  double f64() {
    double v;
    bytes(&v, 8);
    return v;
  }
  std::size_t checked_count(std::size_t min_elem_bytes) {
    const std::uint64_t n = u64();
    if (min_elem_bytes > 0 && n > (len - off) / min_elem_bytes) {
      throw std::runtime_error("checkpoint: '" + path +
                               "' truncated (element count exceeds file)");
    }
    return static_cast<std::size_t>(n);
  }
};

inline void ensure_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    throw std::runtime_error("checkpoint: cannot create directory '" + dir +
                             "'");
  }
}

inline bool read_file(const std::string& path,
                      std::vector<unsigned char>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  out.clear();
  unsigned char chunk[1 << 16];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out.insert(out.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return true;
}

/// tmp + fsync + rename. `torn_cap` (from a fault) truncates the write
/// and throws after the partial tmp lands — the rename never happens.
inline void write_file_atomic(const std::string& path,
                              const std::vector<unsigned char>& buf,
                              std::uint64_t torn_cap, bool torn) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    throw std::runtime_error("checkpoint: cannot open '" + tmp +
                             "' for writing");
  }
  const std::size_t cap =
      torn ? std::min<std::size_t>(buf.size(),
                                   static_cast<std::size_t>(torn_cap))
           : buf.size();
  const std::size_t wrote = std::fwrite(buf.data(), 1, cap, f);
  std::fflush(f);
  ::fsync(::fileno(f));
  const bool ok = std::fclose(f) == 0 && wrote == buf.size() && !torn;
  if (!ok) {
    throw std::runtime_error("checkpoint: torn/short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("checkpoint: cannot rename '" + tmp + "'");
  }
}

/// CURRENT manifest: newest-first filenames, one per line.
inline std::vector<std::string> read_manifest(const std::string& dir) {
  std::vector<unsigned char> buf;
  std::vector<std::string> names;
  if (!read_file(dir + "/CURRENT", buf)) return names;
  std::string line;
  for (unsigned char c : buf) {
    if (c == '\n') {
      if (!line.empty()) names.push_back(line);
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  if (!line.empty()) names.push_back(line);
  return names;
}

inline void write_manifest(const std::string& dir,
                           const std::vector<std::string>& names) {
  std::vector<unsigned char> buf;
  for (const auto& n : names) {
    put_bytes(buf, n.data(), n.size());
    put_u8(buf, '\n');
  }
  write_file_atomic(dir + "/CURRENT", buf, 0, false);
}

}  // namespace detail_ck

/// Serializes `ck` into `dir` as the new live checkpoint (atomic),
/// updates the CURRENT manifest, and unlinks checkpoints that fell off
/// the retained list. Throws std::runtime_error on I/O failure or an
/// injected "checkpoint.serialize" fault; in both cases the previous
/// checkpoint remains live.
template <int D>
void write_checkpoint(const std::string& dir, const checkpoint_data<D>& ck) {
  using namespace detail_ck;
  ensure_dir(dir);

  std::vector<unsigned char> buf;
  put_bytes(buf, kMagic, 4);
  put_u32(buf, kVersion);
  put_u32(buf, static_cast<std::uint32_t>(D));
  put_u64(buf, ck.epoch);
  put_u8(buf, ck.bounds_set ? 1 : 0);
  put_u32(buf, static_cast<std::uint32_t>(ck.split_dim));
  put_u64(buf, ck.cuts.size());
  for (double c : ck.cuts) put_f64(buf, c);
  put_u64(buf, ck.shard_points.size());
  for (const auto& shard : ck.shard_points) {
    put_u64(buf, shard.size());
    for (const auto& p : shard) {
      for (int d = 0; d < D; ++d) put_f64(buf, p[d]);
    }
  }
  put_u64(buf, fnv1a(buf.data(), buf.size()));

  // The fault fires before any byte lands; a torn-write cap truncates
  // the tmp file, which never gets renamed. Either way the previous
  // checkpoint stays the live one.
  bool torn = false;
  std::uint64_t torn_cap = 0;
  if (auto keep = fault::fire(fault::kCheckpointSerialize)) {
    torn = true;
    torn_cap = *keep;
  }

  const std::string name = "ck-" + std::to_string(ck.epoch) + ".pgck";
  write_file_atomic(dir + "/" + name, buf, torn_cap, torn);

  auto names = read_manifest(dir);
  names.insert(names.begin(), name);
  // Dedup (re-checkpointing the same epoch rewrites in place).
  for (std::size_t i = 1; i < names.size();) {
    if (names[i] == name) {
      names.erase(names.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  std::vector<std::string> evicted;
  while (names.size() > kKeep) {
    evicted.push_back(names.back());
    names.pop_back();
  }
  write_manifest(dir, names);
  for (const auto& old : evicted) {
    std::remove((dir + "/" + old).c_str());
  }
}

/// Loads the newest valid checkpoint named by the CURRENT manifest,
/// falling back one entry if the newest file is missing or corrupt.
/// Returns false when the directory holds no usable checkpoint (no
/// manifest, or every listed file failed) — recovery then relies on
/// the log alone.
template <int D>
bool read_latest_checkpoint(const std::string& dir, checkpoint_data<D>& out) {
  using namespace detail_ck;
  for (const auto& name : read_manifest(dir)) {
    const std::string path = dir + "/" + name;
    std::vector<unsigned char> buf;
    if (!read_file(path, buf)) continue;
    if (buf.size() < 4 + 4 + 4 + 8) continue;
    const std::size_t payload = buf.size() - 8;
    std::uint64_t want = 0;
    std::memcpy(&want, buf.data() + payload, 8);
    if (fnv1a(buf.data(), payload) != want) continue;
    if (std::memcmp(buf.data(), kMagic, 4) != 0) continue;
    try {
      reader rd{buf.data(), payload, 4, path};
      const std::uint32_t ver = rd.u32();
      const std::uint32_t dim = rd.u32();
      if (ver != kVersion || dim != static_cast<std::uint32_t>(D)) continue;
      checkpoint_data<D> ck;
      ck.epoch = rd.u64();
      ck.bounds_set = rd.u8() != 0;
      ck.split_dim = static_cast<std::int32_t>(rd.u32());
      ck.cuts.resize(rd.checked_count(sizeof(double)));
      for (auto& c : ck.cuts) c = rd.f64();
      ck.shard_points.resize(rd.checked_count(8));
      for (auto& shard : ck.shard_points) {
        shard.resize(rd.checked_count(sizeof(double) * D));
        for (auto& p : shard) {
          for (int d = 0; d < D; ++d) p[d] = rd.f64();
        }
      }
      if (rd.off != payload) continue;
      out = std::move(ck);
      return true;
    } catch (const std::exception&) {
      continue;  // corrupt entry: fall back to the next manifest line
    }
  }
  return false;
}

}  // namespace pargeo::query
