// Sharded, multi-producer front door for the query subsystem (the public
// serving API; query_engine is the internal per-shard executor).
//
// A `query_service<D>` owns N `query_engine<D>` shards behind one logical
// index, built from a `service_config` (backend, shard count, shard policy,
// ingest-batch window):
//
//   *Sharding*. Every stored point is owned by exactly one shard —
//   `shard_policy::hash` routes by a hash of the coordinates,
//   `shard_policy::spatial` by quantile stripes along the widest dimension
//   of the first point set seen (bootstrap, or the first write phase).
//   Writes are routed to their owning shard and applied there as batched
//   updates. Reads scatter data-parallel across shards and gather-merge:
//   k-NN rows are re-merged by distance and truncated to k, range rows are
//   concatenated. Under the spatial policy, box and ball ranges prune
//   shards whose stripe cannot intersect the query.
//
//   *Multi-producer ingest*. `submit(batch)` enqueues under a mutex and
//   returns a `ticket`; batches from any number of threads accumulate in
//   the ingest queue. `wait(ticket)` blocks until the ticket's responses
//   are ready, cooperatively draining the queue: one waiter at a time
//   becomes the drainer, groups pending batches FIFO up to the configured
//   `ingest_window` of requests, executes the combined stream through the
//   sharded path (so the engine-level write batching spans ticket
//   boundaries), and fulfils every ticket in the group. Tickets complete
//   in global submission order; each caller's responses come back in its
//   own submission order, with per-ticket latency recorded from submit to
//   completion.
//
// `execute(batch)` is the single-caller convenience: submit + wait.
#pragma once

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/timer.h"
#include "query/query_engine.h"
#include "query/spatial_index.h"

namespace pargeo::query {

enum class shard_policy { spatial, hash };

inline const char* shard_policy_name(shard_policy p) {
  switch (p) {
    case shard_policy::spatial: return "spatial";
    case shard_policy::hash: return "hash";
  }
  return "?";
}

inline shard_policy shard_policy_from_string(const std::string& s) {
  if (s == "spatial") return shard_policy::spatial;
  if (s == "hash") return shard_policy::hash;
  throw std::invalid_argument("unknown shard policy '" + s +
                              "' (want spatial|hash)");
}

struct service_config {
  query::backend backend = query::backend::bdltree;
  std::size_t shards = 1;
  shard_policy policy = shard_policy::hash;
  /// Max requests grouped into one drain (a single over-sized batch still
  /// drains alone).
  std::size_t ingest_window = std::size_t{1} << 16;
  index_options index;  // forwarded to every shard's backend
};

/// Handle for a submitted batch; redeem exactly once with wait().
struct ticket {
  std::uint64_t id = 0;
};

/// Completed batch as seen by one submitter. `stats` describes the whole
/// drain group the ticket executed in (tickets grouped into one drain share
/// phases, and `response::phase` indexes `stats.phases`).
template <int D>
struct ticket_result {
  std::vector<response<D>> responses;  // responses[i] answers batch[i]
  engine_stats stats;
  double latency_seconds = 0;  // submit() -> responses ready
};

struct service_stats {
  std::size_t num_tickets = 0;
  std::size_t num_drains = 0;
  std::size_t num_requests = 0;
  double execute_seconds = 0;  // total wall-clock spent executing drains
};

template <int D>
class query_service {
 public:
  explicit query_service(service_config cfg) : cfg_(std::move(cfg)) {
    if (cfg_.shards == 0) {
      throw std::invalid_argument("service_config.shards must be >= 1");
    }
    if (cfg_.ingest_window == 0) {
      throw std::invalid_argument("service_config.ingest_window must be >= 1");
    }
    engines_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      engines_.push_back(std::make_unique<query_engine<D>>(
          make_index<D>(cfg_.backend, cfg_.index)));
    }
  }

  const service_config& config() const { return cfg_; }
  std::size_t num_shards() const { return cfg_.shards; }

  /// Per-shard executor, for tests and diagnostics. Quiescent callers only.
  const query_engine<D>& shard(std::size_t s) const { return *engines_[s]; }

  /// Loads the initial point set, partitioned across shards (replacing any
  /// current contents). Not thread-safe; call before serving traffic.
  void bootstrap(const std::vector<point<D>>& pts) {
    bounds_set_ = false;
    if (cfg_.policy == shard_policy::spatial) set_spatial_bounds(pts);
    auto parts = partition_points(pts);
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) { engines_[s]->bootstrap(parts[s]); }, 1);
  }

  /// Multi-producer entry point: enqueues `batch` and returns immediately.
  /// Safe to call from any number of threads.
  ticket submit(std::vector<request<D>> batch) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t id = next_ticket_++;
    pending_.push_back(pending_entry{id, std::move(batch), timer{}});
    ++stats_.num_tickets;
    return ticket{id};
  }

  /// Blocks until ticket `t`'s batch has executed and returns its responses
  /// in submission order. The calling thread may be drafted to drain the
  /// ingest queue. Each ticket must be waited on exactly once.
  ticket_result<D> wait(ticket t) {
    std::unique_lock<std::mutex> lk(mu_);
    if (t.id == 0 || t.id >= next_ticket_) {
      throw std::invalid_argument("wait() on a ticket never submitted");
    }
    for (;;) {
      auto it = done_.find(t.id);
      if (it != done_.end()) {
        done_entry de = std::move(it->second);
        done_.erase(it);
        if (de.error) std::rethrow_exception(de.error);
        return std::move(de.result);
      }
      // Drains are FIFO over monotonically assigned ids, so any id at or
      // below the completion watermark that is not in done_ was redeemed.
      if (t.id <= completed_upto_) {
        throw std::invalid_argument("wait() on a ticket already redeemed");
      }
      if (!draining_ && !pending_.empty()) {
        drain(lk);
        continue;
      }
      cv_.wait(lk);
    }
  }

  /// Single-caller convenience: submit + wait.
  batch_result<D> execute(std::vector<request<D>> batch) {
    auto r = wait(submit(std::move(batch)));
    return batch_result<D>{std::move(r.responses), std::move(r.stats)};
  }

  /// Ingest/drain counters. Safe to call concurrently with submitters.
  service_stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  /// Total points across shards. Quiescent callers only.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->index().size();
    return n;
  }

  /// All stored points across shards (unordered). Quiescent callers only.
  std::vector<point<D>> gather() const {
    std::vector<point<D>> out;
    for (const auto& e : engines_) {
      auto part = e->index().gather();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

 private:
  struct pending_entry {
    std::uint64_t id;
    std::vector<request<D>> batch;
    timer clock;  // started at submit; read when the ticket completes
  };

  struct done_entry {
    ticket_result<D> result;
    std::exception_ptr error;  // set if the ticket's drain group threw
  };

  // ---- ingest queue -------------------------------------------------------

  // Takes a FIFO group of pending batches (bounded by ingest_window
  // requests), executes it unlocked, then fulfils every ticket in the
  // group. If execution throws, the group's tickets complete with the
  // captured exception (rethrown by their wait()) instead of leaving
  // draining_ stuck and every waiter parked forever. Called with `lk`
  // held; returns with it held.
  void drain(std::unique_lock<std::mutex>& lk) {
    draining_ = true;
    std::vector<pending_entry> group;
    std::size_t total = 0;
    while (!pending_.empty() &&
           (group.empty() ||
            total + pending_.front().batch.size() <= cfg_.ingest_window)) {
      total += pending_.front().batch.size();
      group.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lk.unlock();

    batch_result<D> result;
    std::exception_ptr error;
    try {
      std::vector<request<D>> combined;
      combined.reserve(total);
      for (const auto& e : group) {
        combined.insert(combined.end(), e.batch.begin(), e.batch.end());
      }
      result = run_group(combined);
    } catch (...) {
      error = std::current_exception();
    }

    lk.lock();
    std::size_t off = 0;
    for (auto& e : group) {
      done_entry de;
      de.error = error;
      if (!error) {
        de.result.responses.assign(
            std::make_move_iterator(result.responses.begin() + off),
            std::make_move_iterator(result.responses.begin() + off +
                                    e.batch.size()));
        de.result.stats = result.stats;
      }
      de.result.latency_seconds = e.clock.elapsed();
      off += e.batch.size();
      done_.emplace(e.id, std::move(de));
    }
    completed_upto_ = group.back().id;
    ++stats_.num_drains;
    stats_.num_requests += total;
    stats_.execute_seconds += result.stats.seconds;
    draining_ = false;
    cv_.notify_all();
  }

  // ---- sharded execution --------------------------------------------------

  // Executes one combined stream with the engine's phase discipline
  // (execute_phases): writes routed to owning shards, reads scattered and
  // merged. Only ever called by the active drainer.
  batch_result<D> run_group(const std::vector<request<D>>& batch) {
    // One shard: the engine IS the logical index — skip the scatter/gather
    // bookkeeping and the redundant k-NN re-sort entirely.
    if (cfg_.shards == 1) return engines_[0]->execute(batch);
    batch_result<D> result;
    execute_phases<D>(batch, result.responses, result.stats,
                      [&](std::size_t begin, std::size_t end, bool read) {
                        if (read) {
                          run_read_phase(batch, begin, end, result.responses);
                        } else {
                          run_write_phase(batch, begin, end);
                        }
                      });
    return result;
  }

  void run_write_phase(const std::vector<request<D>>& batch, std::size_t begin,
                       std::size_t end) {
    if (cfg_.policy == shard_policy::spatial && !bounds_set_) {
      // No bootstrap data carved the space yet: derive the stripes from
      // this first write phase. Bounds are fixed from then on, so routing
      // and read pruning stay mutually consistent.
      std::vector<point<D>> pts;
      pts.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) pts.push_back(batch[i].p);
      set_spatial_bounds(pts);
    }
    std::vector<std::vector<request<D>>> sub(cfg_.shards);
    for (std::size_t i = begin; i < end; ++i) {
      sub[owner_of(batch[i].p)].push_back(batch[i]);
    }
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) {
          if (!sub[s].empty()) engines_[s]->execute(sub[s]);
        },
        1);
  }

  void run_read_phase(const std::vector<request<D>>& batch, std::size_t begin,
                      std::size_t end, std::vector<response<D>>& responses) {
    std::vector<std::vector<request<D>>> sub(cfg_.shards);
    std::vector<std::vector<std::size_t>> sub_idx(cfg_.shards);
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        if (!shard_serves(s, batch[i])) continue;
        sub[s].push_back(batch[i]);
        sub_idx[s].push_back(i);
      }
    }

    std::vector<batch_result<D>> shard_res(cfg_.shards);
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) {
          if (!sub[s].empty()) shard_res[s] = engines_[s]->execute(sub[s]);
        },
        1);

    // Gather-merge: range rows concatenate; k-NN rows collect candidates
    // from every shard, then re-sort by distance and truncate to k.
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      for (std::size_t j = 0; j < sub_idx[s].size(); ++j) {
        auto& dst = responses[sub_idx[s][j]].points;
        auto& src = shard_res[s].responses[j].points;
        if (dst.empty()) {
          dst = std::move(src);
        } else {
          dst.insert(dst.end(), src.begin(), src.end());
        }
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      if (batch[i].kind != op::knn) continue;
      auto& row = responses[i].points;
      const point<D>& q = batch[i].p;
      std::stable_sort(row.begin(), row.end(),
                       [&](const point<D>& a, const point<D>& b) {
                         return a.dist_sq(q) < b.dist_sq(q);
                       });
      if (row.size() > batch[i].k) row.resize(batch[i].k);
    }
  }

  // ---- routing ------------------------------------------------------------

  // Quantile stripes along the widest dimension of `pts`: bounds_[s-1] is
  // the left edge of shard s, so shard s owns [bounds_[s-1], bounds_[s]).
  void set_spatial_bounds(const std::vector<point<D>>& pts) {
    if (pts.empty() || cfg_.shards == 1) return;
    aabb<D> box;
    for (const auto& p : pts) box.extend(p);
    split_dim_ = box.widest_dim();
    std::vector<double> coords(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      coords[i] = pts[i][split_dim_];
    }
    std::sort(coords.begin(), coords.end());
    bounds_.assign(cfg_.shards - 1, 0);
    for (std::size_t s = 0; s + 1 < cfg_.shards; ++s) {
      bounds_[s] = coords[(s + 1) * coords.size() / cfg_.shards];
    }
    bounds_set_ = true;
  }

  std::size_t owner_of(const point<D>& p) const {
    if (cfg_.shards == 1) return 0;
    if (cfg_.policy == shard_policy::spatial) {
      if (!bounds_set_) return 0;
      return static_cast<std::size_t>(
          std::upper_bound(bounds_.begin(), bounds_.end(), p[split_dim_]) -
          bounds_.begin());
    }
    return hash_point(p) % cfg_.shards;
  }

  // True if shard s can hold points relevant to read request `r`. Hash
  // placement scatters reads everywhere; spatial stripes prune ranges whose
  // interval along split_dim_ misses the stripe.
  bool shard_serves(std::size_t s, const request<D>& r) const {
    if (cfg_.shards == 1) return s == 0;
    if (r.kind == op::knn) return true;
    if (cfg_.policy != shard_policy::spatial || !bounds_set_) return true;
    double lo, hi;
    if (r.kind == op::range_box) {
      lo = r.box.lo[split_dim_];
      hi = r.box.hi[split_dim_];
    } else {
      // Backends compare dist_sq <= radius^2, so a negative radius behaves
      // like its magnitude — prune with |radius| or the interval inverts.
      const double radius = std::abs(r.radius);
      lo = r.p[split_dim_] - radius;
      hi = r.p[split_dim_] + radius;
    }
    const bool left_ok = s == 0 || bounds_[s - 1] <= hi;
    const bool right_ok = s + 1 == cfg_.shards || bounds_[s] > lo;
    return left_ok && right_ok;
  }

  static std::size_t hash_point(const point<D>& p) {
    // FNV-1a over the coordinate bit patterns: equal points (the routing
    // key) always hash alike.
    std::uint64_t h = 1469598103934665603ull;
    for (int d = 0; d < D; ++d) {
      // -0.0 == 0.0 as a point coordinate, so they must share a bit
      // pattern here or equal points could land on different shards.
      const double coord = p[d] == 0.0 ? 0.0 : p[d];
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      std::memcpy(&bits, &coord, sizeof(bits));
      h = (h ^ bits) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }

  std::vector<std::vector<point<D>>> partition_points(
      const std::vector<point<D>>& pts) const {
    std::vector<std::vector<point<D>>> parts(cfg_.shards);
    for (const auto& p : pts) parts[owner_of(p)].push_back(p);
    return parts;
  }

  service_config cfg_;
  std::vector<std::unique_ptr<query_engine<D>>> engines_;

  // Spatial stripes; fixed once set (no rebalancing), so write routing and
  // read pruning agree forever. Only touched by bootstrap or the drainer.
  int split_dim_ = 0;
  std::vector<double> bounds_;
  bool bounds_set_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<pending_entry> pending_;
  std::map<std::uint64_t, done_entry> done_;
  bool draining_ = false;  // at most one waiter executes at a time
  std::uint64_t next_ticket_ = 1;
  std::uint64_t completed_upto_ = 0;  // highest fulfilled ticket id
  service_stats stats_;
};

// The common dimensions are instantiated once in query_service.cpp.
extern template class query_service<2>;
extern template class query_service<3>;

}  // namespace pargeo::query
