// Sharded, multi-producer, asynchronous front door for the query subsystem
// (the public serving API; query_engine is the internal per-shard executor).
//
// A `query_service<D>` owns N `query_engine<D>` shards behind one logical
// index, built from a `service_config` (backend, shard count, shard policy,
// ingest-batch window, read concurrency, retention cap):
//
//   *Sharding*. Every stored point is owned by exactly one shard —
//   `shard_policy::hash` routes by a hash of the coordinates,
//   `shard_policy::spatial` by quantile stripes along the widest dimension
//   of the first point set seen (bootstrap, or the first write phase).
//   Writes are routed to their owning shard and applied there as batched
//   updates. Reads scatter data-parallel across shards and gather-merge:
//   k-NN rows are re-merged by distance and truncated to k, range rows are
//   concatenated. Under the spatial policy, box and ball ranges prune
//   shards whose stripe cannot intersect the query.
//
//   *Completion pipeline*. `submit(batch)` enqueues from any thread and
//   returns a `completion<D>` handle immediately. A dedicated drain thread
//   owned by the service pulls the ingest queue continuously — tickets make
//   progress with zero waiters. The drainer groups pending batches FIFO up
//   to the configured `ingest_window` of requests (so engine-level write
//   batching spans ticket boundaries) and fulfils every ticket in the
//   group; each caller's responses come back in its own submission order,
//   with per-ticket latency recorded from submit to completion. Redeem a
//   handle exactly once, by blocking (`get()`), polling (`ready()`), or
//   registering an `on_complete` callback (fired exactly once, from a
//   service thread — keep callbacks light and never block on another
//   completion inside one).
//
//   *Epoch-snapshot reads*. A group of read-only tickets does not execute
//   on the drain thread: the drainer stamps it with per-shard epoch
//   snapshots (`spatial_index::snapshot()`) and hands it to a snapshot-read
//   executor pool (`read_threads`), then moves straight on to the next
//   group. Isolated snapshots (kdtree: shared tree + copied write buffers;
//   zdtree: copy-on-write Morton array) let those reads run fully
//   concurrently with the next write drain — the read observes its
//   snapshot epoch while the live index advances. Pinned snapshots
//   (bdltree) hold the write drain at the gate until the read retires.
//   FIFO program order is preserved either way: a read group snapshots
//   after every earlier write applied, and never observes later writes.
//
//   *Bounded retention*. Completed-but-unredeemed results are retained in
//   a bounded buffer: redemption (get / callback / handle destruction)
//   evicts immediately, and past `max_retained` results the oldest are
//   dropped (their `get()` then throws). Handles stay valid after
//   `close()` and even after the service is destroyed.
//
// `close()` (also run by the destructor) stops intake, flushes every
// in-flight ticket through the pipeline deterministically, and joins the
// service threads. `execute(batch)` is the single-caller synchronous
// convenience: submit + get.
#pragma once

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/timer.h"
#include "query/query_engine.h"
#include "query/spatial_index.h"

namespace pargeo::query {

enum class shard_policy { spatial, hash };

inline const char* shard_policy_name(shard_policy p) {
  switch (p) {
    case shard_policy::spatial: return "spatial";
    case shard_policy::hash: return "hash";
  }
  return "?";
}

inline shard_policy shard_policy_from_string(const std::string& s) {
  if (s == "spatial") return shard_policy::spatial;
  if (s == "hash") return shard_policy::hash;
  throw std::invalid_argument("unknown shard policy '" + s +
                              "' (want spatial|hash)");
}

struct service_config {
  query::backend backend = query::backend::bdltree;
  std::size_t shards = 1;
  shard_policy policy = shard_policy::hash;
  /// Max requests grouped into one drain (a single over-sized batch still
  /// drains alone).
  std::size_t ingest_window = std::size_t{1} << 16;
  /// Snapshot-read executors. Read-only ticket groups execute on this pool
  /// against epoch snapshots, concurrently with the drain thread's write
  /// groups. 0 serializes reads behind the write drain (no extra threads).
  std::size_t read_threads = 2;
  /// Completed-but-unredeemed results kept before the oldest are evicted
  /// (an evicted handle's get() throws). Must be >= 1.
  std::size_t max_retained = 1024;
  index_options index;  // forwarded to every shard's backend
};

/// Completed batch as seen by one submitter. `stats` describes the whole
/// drain group the ticket executed in (tickets grouped into one drain share
/// phases, and `response::phase` indexes `stats.phases`).
template <int D>
struct ticket_result {
  std::vector<response<D>> responses;  // responses[i] answers batch[i]
  engine_stats stats;
  double latency_seconds = 0;  // submit() -> responses ready
  /// For snapshot-path read groups: the largest shard epoch the reads
  /// observed (0 for write/mixed groups — those read the live index).
  std::uint64_t snapshot_epoch = 0;
};

struct service_stats {
  std::size_t num_tickets = 0;
  std::size_t num_drains = 0;
  std::size_t num_requests = 0;
  std::size_t num_read_groups = 0;   // drains executed on the snapshot path
  std::size_t num_write_groups = 0;  // drains executed on the write path
  /// Snapshot-path read drains that retired while the live write epoch had
  /// already moved past their snapshot — i.e. reads that demonstrably
  /// overlapped a write drain.
  std::size_t snapshot_lag_drains = 0;
  std::size_t results_retained = 0;  // completed, not yet redeemed
  std::size_t results_evicted = 0;   // dropped by the retention cap
  double execute_seconds = 0;  // total wall-clock spent executing drains
};

template <int D>
class query_service;

namespace detail {

/// Completion state shared between a query_service and its handles: ticket
/// records keyed by id, plus the bounded retention buffer bookkeeping. The
/// hub (a shared_ptr) outlives the service, so handles stay redeemable
/// after shutdown. `mu` also guards the owning service's ingest queue and
/// stats.
template <int D>
struct completion_hub {
  struct record {
    enum class state_t : std::uint8_t { pending, done, evicted };
    state_t state = state_t::pending;
    ticket_result<D> result;   // valid when state == done and !error
    std::exception_ptr error;  // the drain group's failure, if any
    std::function<void(ticket_result<D>&&, std::exception_ptr)> callback;
  };

  std::mutex mu;
  std::condition_variable done_cv;  // signaled on every fulfilment
  std::map<std::uint64_t, record> tickets;
  std::deque<std::uint64_t> done_order;  // eviction candidates, oldest first
  std::size_t retained = 0;              // records in state done
  std::size_t evicted_total = 0;
  std::size_t max_retained = 1;
  bool closed = false;  // service stopped accepting submissions

  // Called with mu held after results are stored: drops the oldest
  // completed-but-unredeemed results until the cap holds again, then
  // compacts the candidate deque (redemption leaves stale ids behind; a
  // promptly-redeeming steady state would otherwise grow it forever).
  void evict_over_cap() {
    while (retained > max_retained && !done_order.empty()) {
      const std::uint64_t id = done_order.front();
      done_order.pop_front();
      auto it = tickets.find(id);
      if (it == tickets.end() || it->second.state != record::state_t::done) {
        continue;  // already redeemed; stale eviction candidate
      }
      it->second.state = record::state_t::evicted;
      it->second.result = ticket_result<D>{};
      it->second.error = nullptr;
      --retained;
      ++evicted_total;
    }
    // Live done records number <= max_retained, so past 2x (+ slack) the
    // deque is mostly stale ids; one O(size) filter re-bounds it.
    if (done_order.size() > std::max<std::size_t>(64, 2 * max_retained)) {
      std::deque<std::uint64_t> live;
      for (const std::uint64_t id : done_order) {
        auto it = tickets.find(id);
        if (it != tickets.end() &&
            it->second.state == record::state_t::done) {
          live.push_back(id);
        }
      }
      done_order.swap(live);
    }
  }
};

}  // namespace detail

/// Move-only handle for one submitted batch. Redeem exactly once: `get()`
/// blocks and returns the result (rethrowing the drain's failure, if any),
/// `on_complete(fn)` consumes the result through a callback fired exactly
/// once, `ready()` polls. A handle dropped unredeemed releases its result
/// immediately. Handles outlive the service safely.
template <int D>
class completion {
  using hub_t = detail::completion_hub<D>;
  using record_t = typename hub_t::record;

 public:
  completion() = default;
  completion(completion&& o) noexcept
      : hub_(std::move(o.hub_)), id_(o.id_), redeemed_(o.redeemed_) {
    o.id_ = 0;
    o.redeemed_ = false;
  }
  completion& operator=(completion&& o) noexcept {
    if (this != &o) {
      release();
      hub_ = std::move(o.hub_);
      id_ = o.id_;
      redeemed_ = o.redeemed_;
      o.id_ = 0;
      o.redeemed_ = false;
    }
    return *this;
  }
  completion(const completion&) = delete;
  completion& operator=(const completion&) = delete;
  ~completion() { release(); }

  /// True if this handle came from a submit() (and was not moved from).
  bool valid() const { return hub_ != nullptr; }
  std::uint64_t id() const { return id_; }

  /// True once the result is available (get() would not block).
  bool ready() const {
    if (!hub_) return false;
    if (redeemed_) return true;
    std::lock_guard<std::mutex> lk(hub_->mu);
    auto it = hub_->tickets.find(id_);
    return it == hub_->tickets.end() ||
           it->second.state != record_t::state_t::pending;
  }

  /// Blocks until the ticket's drain completes and returns its result;
  /// rethrows the drain group's exception if execution failed. Throws
  /// std::logic_error on an empty handle or a second redemption, and
  /// std::runtime_error if the result was evicted by the retention cap.
  ticket_result<D> get() {
    if (!hub_) {
      throw std::logic_error("completion::get() on an empty handle "
                             "(nothing was submitted)");
    }
    if (redeemed_) {
      throw std::logic_error("completion::get() after the result was "
                             "already consumed");
    }
    std::unique_lock<std::mutex> lk(hub_->mu);
    auto it = hub_->tickets.find(id_);
    while (it != hub_->tickets.end() &&
           it->second.state == record_t::state_t::pending) {
      hub_->done_cv.wait(lk);
      it = hub_->tickets.find(id_);
    }
    redeemed_ = true;
    if (it == hub_->tickets.end()) {
      throw std::logic_error("completion::get(): ticket record missing");
    }
    if (it->second.state == record_t::state_t::evicted) {
      hub_->tickets.erase(it);
      throw std::runtime_error(
          "completion::get(): result evicted by the retention cap "
          "(service_config.max_retained)");
    }
    std::exception_ptr err = it->second.error;
    ticket_result<D> r = std::move(it->second.result);
    hub_->tickets.erase(it);
    --hub_->retained;
    lk.unlock();
    if (err) std::rethrow_exception(err);
    return r;
  }

  /// Registers `fn` to consume the result: fired exactly once with
  /// (result, nullptr) on success or ({}, error) on failure/eviction —
  /// immediately on this thread if the result is already in, otherwise
  /// from the service thread that fulfils the ticket (where anything the
  /// callback throws is swallowed). Counts as the handle's one redemption.
  void on_complete(std::function<void(ticket_result<D>&&, std::exception_ptr)> fn) {
    if (!fn) throw std::invalid_argument("on_complete: empty callback");
    if (!hub_) {
      throw std::logic_error("completion::on_complete() on an empty handle");
    }
    if (redeemed_) {
      throw std::logic_error("completion::on_complete() after the result "
                             "was already consumed");
    }
    std::unique_lock<std::mutex> lk(hub_->mu);
    auto it = hub_->tickets.find(id_);
    redeemed_ = true;
    if (it == hub_->tickets.end()) {
      throw std::logic_error("completion::on_complete(): ticket record "
                             "missing");
    }
    if (it->second.state == record_t::state_t::pending) {
      it->second.callback = std::move(fn);
      return;
    }
    ticket_result<D> r;
    std::exception_ptr err;
    if (it->second.state == record_t::state_t::evicted) {
      err = std::make_exception_ptr(std::runtime_error(
          "completion::on_complete(): result evicted by the retention cap"));
    } else {
      err = it->second.error;
      r = std::move(it->second.result);
      --hub_->retained;
    }
    hub_->tickets.erase(it);
    lk.unlock();
    fn(std::move(r), err);
  }

 private:
  friend class query_service<D>;
  completion(std::shared_ptr<hub_t> hub, std::uint64_t id)
      : hub_(std::move(hub)), id_(id) {}

  // Dropping an unredeemed handle evicts its (current or future) result;
  // a registered callback still fires, so its record stays.
  void release() {
    if (!hub_) return;
    {
      std::lock_guard<std::mutex> lk(hub_->mu);
      auto it = hub_->tickets.find(id_);
      if (it != hub_->tickets.end() &&
          !(it->second.state == record_t::state_t::pending &&
            it->second.callback)) {
        if (it->second.state == record_t::state_t::done) --hub_->retained;
        hub_->tickets.erase(it);
      }
    }
    hub_.reset();
  }

  std::shared_ptr<hub_t> hub_;
  std::uint64_t id_ = 0;
  bool redeemed_ = false;
};

template <int D>
class query_service {
 public:
  explicit query_service(service_config cfg) : cfg_(std::move(cfg)) {
    if (cfg_.shards == 0) {
      throw std::invalid_argument("service_config.shards must be >= 1");
    }
    if (cfg_.ingest_window == 0) {
      throw std::invalid_argument("service_config.ingest_window must be >= 1");
    }
    if (cfg_.max_retained == 0) {
      throw std::invalid_argument("service_config.max_retained must be >= 1");
    }
    engines_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      engines_.push_back(std::make_unique<query_engine<D>>(
          make_index<D>(cfg_.backend, cfg_.index)));
    }
    hub_ = std::make_shared<detail::completion_hub<D>>();
    hub_->max_retained = cfg_.max_retained;
    drainer_ = std::thread([this] { drain_loop(); });
    try {
      readers_.reserve(cfg_.read_threads);
      for (std::size_t i = 0; i < cfg_.read_threads; ++i) {
        readers_.emplace_back([this] { read_loop(); });
      }
    } catch (...) {
      close();  // join whatever started before rethrowing
      throw;
    }
  }

  ~query_service() { close(); }
  query_service(const query_service&) = delete;
  query_service& operator=(const query_service&) = delete;

  const service_config& config() const { return cfg_; }
  std::size_t num_shards() const { return cfg_.shards; }

  /// Per-shard executor, for tests and diagnostics. Quiescent callers only.
  const query_engine<D>& shard(std::size_t s) const { return *engines_[s]; }

  /// Loads the initial point set, partitioned across shards (replacing any
  /// current contents). Not thread-safe; call before serving traffic.
  void bootstrap(const std::vector<point<D>>& pts) {
    bounds_set_ = false;
    if (cfg_.policy == shard_policy::spatial) set_spatial_bounds(pts);
    auto parts = partition_points(pts);
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) { engines_[s]->bootstrap(parts[s]); }, 1);
  }

  /// Multi-producer entry point: enqueues `batch` for the drain thread and
  /// returns a completion handle immediately. Safe to call from any number
  /// of threads. Throws once the service is closed.
  completion<D> submit(std::vector<request<D>> batch) {
    std::lock_guard<std::mutex> lk(hub_->mu);
    if (hub_->closed) {
      throw std::runtime_error("query_service::submit() after close()");
    }
    const std::uint64_t id = next_ticket_++;
    hub_->tickets.emplace(id, typename detail::completion_hub<D>::record{});
    pending_.push_back(pending_entry{id, std::move(batch), timer{}});
    ++stats_.num_tickets;
    work_cv_.notify_one();
    return completion<D>(hub_, id);
  }

  /// Single-caller convenience: submit + get.
  batch_result<D> execute(std::vector<request<D>> batch) {
    auto r = submit(std::move(batch)).get();
    return batch_result<D>{std::move(r.responses), std::move(r.stats)};
  }

  /// Orderly shutdown: stops intake, flushes every in-flight ticket
  /// through the drain pipeline (results stay redeemable from their
  /// handles), and joins the service threads. Idempotent; also run by the
  /// destructor. Submissions racing close() either enter before the cut
  /// (and are flushed) or throw.
  void close() {
    {
      std::lock_guard<std::mutex> lk(hub_->mu);
      hub_->closed = true;
      work_cv_.notify_all();
    }
    std::lock_guard<std::mutex> cg(close_mu_);
    if (threads_joined_) return;
    if (drainer_.joinable()) drainer_.join();
    {
      std::lock_guard<std::mutex> lk(read_mu_);
      read_shutdown_ = true;
      read_cv_.notify_all();
    }
    for (auto& t : readers_) {
      if (t.joinable()) t.join();
    }
    threads_joined_ = true;
  }

  /// Ingest/drain/retention counters. Safe to call concurrently with
  /// submitters and the drain pipeline.
  service_stats stats() const {
    std::lock_guard<std::mutex> lk(hub_->mu);
    service_stats s = stats_;
    s.results_retained = hub_->retained;
    s.results_evicted = hub_->evicted_total;
    return s;
  }

  /// Total points across shards. Quiescent callers only.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->index().size();
    return n;
  }

  /// All stored points across shards (unordered). Quiescent callers only.
  std::vector<point<D>> gather() const {
    std::vector<point<D>> out;
    for (const auto& e : engines_) {
      auto part = e->index().gather();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

 private:
  struct pending_entry {
    std::uint64_t id;
    std::vector<request<D>> batch;
    timer clock;  // started at submit; read when the ticket completes
  };

  /// A read-only drain group, fully routed and epoch-stamped by the drain
  /// thread, executed by a snapshot-read executor.
  struct read_task {
    std::vector<pending_entry> group;
    std::vector<request<D>> combined;               // group batches, FIFO
    std::vector<std::vector<request<D>>> sub;       // per-shard requests
    std::vector<std::vector<std::size_t>> sub_idx;  // -> combined index
    std::vector<std::shared_ptr<const index_snapshot<D>>> snaps;
    std::size_t total = 0;
    bool pinned = false;  // holds the write gate (non-isolated snapshot)
  };

  static bool batch_is_read_only(const std::vector<request<D>>& batch) {
    for (const auto& r : batch) {
      if (!is_read(r.kind)) return false;
    }
    return true;
  }

  // ---- drain pipeline -----------------------------------------------------

  // The dedicated drainer: pops FIFO groups of same-kind tickets (read-only
  // vs writing, bounded by ingest_window requests), executes write groups
  // in place, and hands read groups — routed and snapshot-stamped — to the
  // read pool. Exits once closed and the queue is flushed.
  void drain_loop() {
    for (;;) {
      std::unique_lock<std::mutex> lk(hub_->mu);
      work_cv_.wait(lk, [&] { return hub_->closed || !pending_.empty(); });
      if (pending_.empty()) {
        if (hub_->closed) return;
        continue;
      }
      const bool read_group =
          cfg_.read_threads > 0 && batch_is_read_only(pending_.front().batch);
      std::vector<pending_entry> group;
      group.push_back(std::move(pending_.front()));
      pending_.pop_front();
      std::size_t total = group.front().batch.size();
      while (!pending_.empty()) {
        const auto& next = pending_.front();
        if (total + next.batch.size() > cfg_.ingest_window) break;
        if (cfg_.read_threads > 0 &&
            batch_is_read_only(next.batch) != read_group) {
          break;
        }
        total += next.batch.size();
        group.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      lk.unlock();
      if (read_group) {
        dispatch_read_group(std::move(group), total);
      } else {
        run_sync_group(std::move(group), total);
      }
    }
  }

  // Executes a writing (or pool-disabled) group on the drain thread with
  // the engine's phase discipline, after waiting out pinned readers.
  void run_sync_group(std::vector<pending_entry> group, std::size_t total) {
    std::vector<request<D>> combined;
    combined.reserve(total);
    for (const auto& e : group) {
      combined.insert(combined.end(), e.batch.begin(), e.batch.end());
    }
    wait_for_pinned_readers();
    batch_result<D> result;
    std::exception_ptr error;
    try {
      result = run_group(combined);
    } catch (...) {
      error = std::current_exception();
    }
    const double secs = result.stats.seconds;
    fulfill_group(std::move(group), total, std::move(result), error,
                  /*snapshot_epoch=*/0, /*read_group=*/false,
                  /*lagged=*/false, secs);
  }

  // Routes and epoch-stamps a read-only group on the drain thread (so its
  // snapshots observe exactly the writes that preceded it in FIFO order),
  // then enqueues it for the read pool and returns immediately.
  void dispatch_read_group(std::vector<pending_entry> group,
                           std::size_t total) {
    read_task task;
    task.group = std::move(group);
    task.total = total;
    task.combined.reserve(total);
    for (const auto& e : task.group) {
      task.combined.insert(task.combined.end(), e.batch.begin(),
                           e.batch.end());
    }
    task.sub.resize(cfg_.shards);
    task.sub_idx.resize(cfg_.shards);
    for (std::size_t i = 0; i < task.combined.size(); ++i) {
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        if (!shard_serves(s, task.combined[i])) continue;
        task.sub[s].push_back(task.combined[i]);
        task.sub_idx[s].push_back(i);
      }
    }
    task.snaps.resize(cfg_.shards);
    bool need_pin = false;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      task.snaps[s] = engines_[s]->index().snapshot();
      if (!task.snaps[s]->isolated()) need_pin = true;
    }
    if (need_pin) {
      std::lock_guard<std::mutex> g(gate_mu_);
      ++pins_;
      task.pinned = true;
    }
    {
      std::lock_guard<std::mutex> lk(read_mu_);
      read_q_.push_back(std::move(task));
    }
    read_cv_.notify_one();
  }

  // Snapshot-read executors: drain the read queue until shutdown.
  void read_loop() {
    for (;;) {
      read_task task;
      {
        std::unique_lock<std::mutex> lk(read_mu_);
        read_cv_.wait(lk, [&] { return read_shutdown_ || !read_q_.empty(); });
        if (read_q_.empty()) return;  // shutdown, queue flushed
        task = std::move(read_q_.front());
        read_q_.pop_front();
      }
      run_read_task(std::move(task));
    }
  }

  // Executes one read group against its epoch snapshots and fulfils it.
  void run_read_task(read_task task) {
    timer clock;
    batch_result<D> result;
    std::exception_ptr error;
    std::uint64_t snap_epoch = 0;
    try {
      result.responses.resize(task.combined.size());
      std::vector<batch_result<D>> shard_res(cfg_.shards);
      par::parallel_for(
          0, cfg_.shards,
          [&](std::size_t s) {
            if (!task.sub[s].empty()) {
              shard_res[s] =
                  query_engine<D>::execute_reads(task.sub[s], *task.snaps[s]);
            }
          },
          1);
      merge_shard_reads(task.combined, 0, task.combined.size(), task.sub_idx,
                        shard_res, result.responses);
      for (std::size_t i = 0; i < task.combined.size(); ++i) {
        result.responses[i].kind = task.combined[i].kind;
        result.responses[i].phase = 0;
      }
      for (const auto& snap : task.snaps) {
        snap_epoch = std::max(snap_epoch, snap->epoch());
      }
    } catch (...) {
      error = std::current_exception();
    }
    const double secs = clock.elapsed();
    result.stats.num_requests = task.total;
    result.stats.num_reads = task.total;
    result.stats.seconds = secs;
    result.stats.phases = {
        {task.combined.empty() ? op::knn : task.combined.front().kind,
         task.total, secs}};
    // Lag is judged before unpinning: any divergence here means a write
    // drain advanced the live index while this read was executing.
    bool lagged = false;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (task.snaps[s] &&
          task.snaps[s]->epoch() != engines_[s]->index().epoch()) {
        lagged = true;
      }
    }
    if (task.pinned) {
      std::lock_guard<std::mutex> g(gate_mu_);
      --pins_;
      gate_cv_.notify_all();
    }
    fulfill_group(std::move(task.group), task.total, std::move(result), error,
                  snap_epoch, /*read_group=*/true, lagged, secs);
  }

  // Slices a drain group's combined result back into per-ticket results,
  // stores (or callback-delivers) each, enforces the retention cap, and
  // updates stats. Callbacks fire outside the lock, in ticket order.
  void fulfill_group(std::vector<pending_entry> group, std::size_t total,
                     batch_result<D> result, std::exception_ptr error,
                     std::uint64_t snap_epoch, bool read_group, bool lagged,
                     double exec_seconds) {
    using record_t = typename detail::completion_hub<D>::record;
    std::vector<std::pair<
        std::function<void(ticket_result<D>&&, std::exception_ptr)>,
        ticket_result<D>>>
        callbacks;
    {
      std::lock_guard<std::mutex> lk(hub_->mu);
      std::size_t off = 0;
      for (auto& e : group) {
        ticket_result<D> tr;
        if (!error) {
          tr.responses.assign(
              std::make_move_iterator(result.responses.begin() + off),
              std::make_move_iterator(result.responses.begin() + off +
                                      e.batch.size()));
          tr.stats = result.stats;
        }
        tr.latency_seconds = e.clock.elapsed();
        tr.snapshot_epoch = snap_epoch;
        off += e.batch.size();
        auto it = hub_->tickets.find(e.id);
        if (it == hub_->tickets.end()) continue;  // handle dropped: evict now
        if (it->second.callback) {
          callbacks.emplace_back(std::move(it->second.callback),
                                 std::move(tr));
          hub_->tickets.erase(it);
        } else {
          it->second.state = record_t::state_t::done;
          it->second.result = std::move(tr);
          it->second.error = error;
          hub_->done_order.push_back(e.id);
          ++hub_->retained;
        }
      }
      hub_->evict_over_cap();
      ++stats_.num_drains;
      if (read_group) {
        ++stats_.num_read_groups;
        if (lagged) ++stats_.snapshot_lag_drains;
      } else {
        ++stats_.num_write_groups;
      }
      stats_.num_requests += total;
      stats_.execute_seconds += exec_seconds;
      hub_->done_cv.notify_all();
    }
    for (auto& [fn, tr] : callbacks) {
      try {
        fn(std::move(tr), error);
      } catch (...) {
        // A throwing callback must not unwind a service thread (that would
        // std::terminate the process). Swallow; the ticket was delivered.
      }
    }
  }

  // Writes may not run while a pinned (non-isolated) snapshot read is in
  // flight. Only the drain thread pins, so no new pins can appear while it
  // waits here.
  void wait_for_pinned_readers() {
    std::unique_lock<std::mutex> lk(gate_mu_);
    gate_cv_.wait(lk, [&] { return pins_ == 0; });
  }

  // ---- sharded execution --------------------------------------------------

  // Executes one combined stream with the engine's phase discipline
  // (execute_phases): writes routed to owning shards, reads scattered and
  // merged. Only ever called by the drain thread.
  batch_result<D> run_group(const std::vector<request<D>>& batch) {
    // One shard: the engine IS the logical index — skip the scatter/gather
    // bookkeeping and the redundant k-NN re-sort entirely.
    if (cfg_.shards == 1) return engines_[0]->execute(batch);
    batch_result<D> result;
    execute_phases<D>(batch, result.responses, result.stats,
                      [&](std::size_t begin, std::size_t end, bool read) {
                        if (read) {
                          run_read_phase(batch, begin, end, result.responses);
                        } else {
                          run_write_phase(batch, begin, end);
                        }
                      });
    return result;
  }

  void run_write_phase(const std::vector<request<D>>& batch, std::size_t begin,
                       std::size_t end) {
    if (cfg_.policy == shard_policy::spatial && !bounds_set_) {
      // No bootstrap data carved the space yet: derive the stripes from
      // this first write phase. Bounds are fixed from then on, so routing
      // and read pruning stay mutually consistent.
      std::vector<point<D>> pts;
      pts.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) pts.push_back(batch[i].p);
      set_spatial_bounds(pts);
    }
    std::vector<std::vector<request<D>>> sub(cfg_.shards);
    for (std::size_t i = begin; i < end; ++i) {
      sub[owner_of(batch[i].p)].push_back(batch[i]);
    }
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) {
          if (!sub[s].empty()) engines_[s]->execute(sub[s]);
        },
        1);
  }

  void run_read_phase(const std::vector<request<D>>& batch, std::size_t begin,
                      std::size_t end, std::vector<response<D>>& responses) {
    std::vector<std::vector<request<D>>> sub(cfg_.shards);
    std::vector<std::vector<std::size_t>> sub_idx(cfg_.shards);
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        if (!shard_serves(s, batch[i])) continue;
        sub[s].push_back(batch[i]);
        sub_idx[s].push_back(i);
      }
    }

    std::vector<batch_result<D>> shard_res(cfg_.shards);
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) {
          if (!sub[s].empty()) shard_res[s] = engines_[s]->execute(sub[s]);
        },
        1);
    merge_shard_reads(batch, begin, end, sub_idx, shard_res, responses);
  }

  // Gather-merge for scattered reads: range rows concatenate; k-NN rows
  // collect candidates from every shard, then re-sort by distance and
  // truncate to k. `sub_idx` indexes `batch` absolutely; rows land in
  // `responses[begin..end)`.
  void merge_shard_reads(const std::vector<request<D>>& batch,
                         std::size_t begin, std::size_t end,
                         const std::vector<std::vector<std::size_t>>& sub_idx,
                         std::vector<batch_result<D>>& shard_res,
                         std::vector<response<D>>& responses) const {
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      for (std::size_t j = 0; j < sub_idx[s].size(); ++j) {
        auto& dst = responses[sub_idx[s][j]].points;
        auto& src = shard_res[s].responses[j].points;
        if (dst.empty()) {
          dst = std::move(src);
        } else {
          dst.insert(dst.end(), src.begin(), src.end());
        }
      }
    }
    if (cfg_.shards == 1) return;  // single source: rows are already exact
    for (std::size_t i = begin; i < end; ++i) {
      if (batch[i].kind != op::knn) continue;
      auto& row = responses[i].points;
      const point<D>& q = batch[i].p;
      std::stable_sort(row.begin(), row.end(),
                       [&](const point<D>& a, const point<D>& b) {
                         return a.dist_sq(q) < b.dist_sq(q);
                       });
      if (row.size() > batch[i].k) row.resize(batch[i].k);
    }
  }

  // ---- routing ------------------------------------------------------------

  // Quantile stripes along the widest dimension of `pts`: bounds_[s-1] is
  // the left edge of shard s, so shard s owns [bounds_[s-1], bounds_[s]).
  void set_spatial_bounds(const std::vector<point<D>>& pts) {
    if (pts.empty() || cfg_.shards == 1) return;
    aabb<D> box;
    for (const auto& p : pts) box.extend(p);
    split_dim_ = box.widest_dim();
    std::vector<double> coords(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      coords[i] = pts[i][split_dim_];
    }
    std::sort(coords.begin(), coords.end());
    bounds_.assign(cfg_.shards - 1, 0);
    for (std::size_t s = 0; s + 1 < cfg_.shards; ++s) {
      bounds_[s] = coords[(s + 1) * coords.size() / cfg_.shards];
    }
    bounds_set_ = true;
  }

  std::size_t owner_of(const point<D>& p) const {
    if (cfg_.shards == 1) return 0;
    if (cfg_.policy == shard_policy::spatial) {
      if (!bounds_set_) return 0;
      return static_cast<std::size_t>(
          std::upper_bound(bounds_.begin(), bounds_.end(), p[split_dim_]) -
          bounds_.begin());
    }
    return hash_point(p) % cfg_.shards;
  }

  // True if shard s can hold points relevant to read request `r`. Hash
  // placement scatters reads everywhere; spatial stripes prune ranges whose
  // interval along split_dim_ misses the stripe.
  bool shard_serves(std::size_t s, const request<D>& r) const {
    if (cfg_.shards == 1) return s == 0;
    if (r.kind == op::knn) return true;
    if (cfg_.policy != shard_policy::spatial || !bounds_set_) return true;
    double lo, hi;
    if (r.kind == op::range_box) {
      lo = r.box.lo[split_dim_];
      hi = r.box.hi[split_dim_];
    } else {
      // Backends compare dist_sq <= radius^2, so a negative radius behaves
      // like its magnitude — prune with |radius| or the interval inverts.
      const double radius = std::abs(r.radius);
      lo = r.p[split_dim_] - radius;
      hi = r.p[split_dim_] + radius;
    }
    const bool left_ok = s == 0 || bounds_[s - 1] <= hi;
    const bool right_ok = s + 1 == cfg_.shards || bounds_[s] > lo;
    return left_ok && right_ok;
  }

  static std::size_t hash_point(const point<D>& p) {
    // FNV-1a over the coordinate bit patterns: equal points (the routing
    // key) always hash alike.
    std::uint64_t h = 1469598103934665603ull;
    for (int d = 0; d < D; ++d) {
      // -0.0 == 0.0 as a point coordinate, so they must share a bit
      // pattern here or equal points could land on different shards.
      const double coord = p[d] == 0.0 ? 0.0 : p[d];
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      std::memcpy(&bits, &coord, sizeof(bits));
      h = (h ^ bits) * 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }

  std::vector<std::vector<point<D>>> partition_points(
      const std::vector<point<D>>& pts) const {
    std::vector<std::vector<point<D>>> parts(cfg_.shards);
    for (const auto& p : pts) parts[owner_of(p)].push_back(p);
    return parts;
  }

  service_config cfg_;
  std::vector<std::unique_ptr<query_engine<D>>> engines_;

  // Spatial stripes; fixed once set (no rebalancing), so write routing and
  // read pruning agree forever. Only touched by bootstrap or the drain
  // thread (read tasks receive routed sub-batches, never raw bounds).
  int split_dim_ = 0;
  std::vector<double> bounds_;
  bool bounds_set_ = false;

  // Ingest queue + completion state. hub_->mu guards pending_, next_ticket_
  // and stats_ as well; the hub outlives the service for late redemptions.
  std::shared_ptr<detail::completion_hub<D>> hub_;
  std::condition_variable work_cv_;  // drain thread wakeup (hub_->mu)
  std::deque<pending_entry> pending_;
  std::uint64_t next_ticket_ = 1;
  service_stats stats_;

  // Write gate: pinned (non-isolated) snapshot reads in flight. Only the
  // drain thread pins; only read executors unpin.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  std::size_t pins_ = 0;

  // Snapshot-read executor pool.
  std::mutex read_mu_;
  std::condition_variable read_cv_;
  std::deque<read_task> read_q_;
  bool read_shutdown_ = false;

  std::mutex close_mu_;
  bool threads_joined_ = false;
  std::thread drainer_;
  std::vector<std::thread> readers_;
};

// The common dimensions are instantiated once in query_service.cpp.
extern template class query_service<2>;
extern template class query_service<3>;

}  // namespace pargeo::query
