// Sharded, multi-producer, asynchronous front door for the query subsystem
// (the public serving API; query_engine is the internal per-shard executor).
//
// A `query_service<D>` owns N `query_engine<D>` shards behind one logical
// index, built from a `service_config` (backend, shard count, shard policy,
// drain mode, ingest-batch window, read concurrency, backpressure bound,
// cache capacity, retention cap):
//
//   *Sharding*. Every stored point is owned by exactly one shard —
//   `shard_policy::hash` routes by a hash of the coordinates,
//   `shard_policy::spatial` by quantile stripes along the widest dimension
//   of the first point set seen (bootstrap, or the first write group).
//   Writes are routed to their owning shard and applied there as batched
//   updates. Reads scatter data-parallel across shards and gather-merge:
//   k-NN rows are re-merged by distance and truncated to k, range rows are
//   concatenated. Under the spatial policy, box and ball ranges prune
//   shards whose stripe cannot intersect the query.
//
//   *Completion pipeline*. `submit(batch)` enqueues from any thread and
//   returns a `completion<D>` handle immediately. A dedicated drain thread
//   owned by the service pulls the ingest queue continuously — tickets make
//   progress with zero waiters. The drainer groups pending batches FIFO up
//   to the configured `ingest_window` of requests (so engine-level write
//   batching spans ticket boundaries) and fulfils every ticket in the
//   group; each caller's responses come back in its own submission order,
//   with per-ticket latency recorded from submit to completion. Redeem a
//   handle exactly once, by blocking (`get()`), polling (`ready()`), or
//   registering an `on_complete` callback (fired exactly once, from a
//   service thread — keep callbacks light and never block on another
//   completion inside one).
//
//   *Per-shard drain pipelines* (`drain_mode::per_shard`, the default).
//   The drain thread routes each group exactly once into per-shard
//   sub-batches, then hands them to a pool of shard executors — one lane
//   (FIFO queue + worker thread) per shard — and immediately moves on to
//   the next group. Lanes apply writes and run reads concurrently across
//   shards AND across groups: shard 1 can already execute group G+1 while
//   shard 0 is still on G. Correctness holds because a sub-batch preserves
//   the combined stream's relative order restricted to its shard, and
//   every request that can affect a shard's answers is in that shard's
//   sub-batch (writes go to their owner, reads to every serving shard) —
//   so per-shard FIFO is exactly the ordering the answers depend on. The
//   last lane to finish a group gather-merges and fulfils it.
//   `drain_mode::single` keeps the PR 3 behavior (the drain thread
//   executes each group to completion before the next) as the measurable
//   baseline. Per-lane counters (sub-batch drains, execute seconds, queue
//   depths) are surfaced through `service_stats::per_shard`.
//
//   *Work-stealing lanes* (`drain_mode::stealing`). Same pipeline, but an
//   idle lane worker drains the deepest sibling queue instead of
//   blocking: each lane carries an execution token, tasks are popped from
//   the front only while holding it, and the token is held until the
//   task retires — so a shard's tasks still run one at a time in queue
//   order (per-shard FIFO and the single-writer discipline are
//   untouched; only the executing thread changes). A zipf/clustered
//   write stream that routes every sub-batch to one shard no longer
//   collapses the service to one busy worker. `steals`/`steal_scans`
//   counters land in `service_stats::per_shard`; `per_shard` stays the
//   no-stealing comparable baseline.
//
//   *Online stripe rebalancing* (`rebalance_threshold`, spatial policy).
//   The drain thread tracks per-shard resident sizes as it routes writes;
//   when max/mean imbalance crosses the threshold at a drain boundary it
//   quiesces the lanes, re-derives the quantile stripe bounds from a
//   sample of the live points, and migrates misplaced points to their new
//   owners as an internal write group (batch_erase/batch_insert, so
//   epochs bump on affected shards and cached k-NN rows invalidate
//   through the normal epoch keys). Earlier groups execute fully under
//   the old bounds and later groups route under the new ones, so write
//   routing and read pruning never disagree.
//
//   *Epoch-snapshot reads*. A group of read-only tickets does not execute
//   on the drain pipeline: it is routed once, then each involved lane
//   stamps its shard's epoch snapshot (`spatial_index::snapshot()`) after
//   the shard's earlier writes — per-shard FIFO again — and the fully
//   stamped group executes on a snapshot-read executor pool
//   (`read_threads`). Every backend's snapshots are isolated (kdtree:
//   shared tree + copied write buffers; zdtree: copy-on-write Morton
//   array; bdltree: chunk-level COW forest view), so those reads run
//   fully concurrently with the next write drains on every shard — the
//   per-shard write gate that used to pin bdltree snapshots is gone.
//   Reader threads hold an epoch-reclaimer guard (query/epoch_reclaim.h)
//   while executing; structure versions superseded by writes are retired
//   onto a limbo list and destroyed at drain-boundary reclaim points once
//   every reader epoch has advanced past them, so big trees never die on
//   a reader's tail latency.
//
//   *Lock-free ingest* (`ingest_mode::lockfree`, the default). submit()
//   validates, acquires backpressure budget with a CAS on the in-flight
//   counter, stamps a ticket id from an atomic, and publishes the batch
//   onto a bounded MPSC ring (query/ingest_ring.h) — no lock anywhere on
//   the fast path; `ready()` polls are a single atomic load. Producers
//   park futex-style only when the pipeline is saturated (backpressure) or
//   the ring is full (`ingest_spins` counts the spins burned first).
//   `ingest_mode::mutex` keeps the historical mutex/condvar queue as the
//   comparable baseline; admission semantics are identical.
//
//   *Hot result cache*. Each shard carries an epoch-invalidated LRU
//   cache of read-result rows (query/result_cache.h) keyed by the exact
//   query shape — k-NN (point, k), box range, or ball range — plus the
//   shard write epoch; `cache_capacity` entries are split across shards
//   (0 disables). Both read paths — live reads inside mixed groups and
//   snapshot reads — probe it, so zipf-hot keys and re-evaluated watches
//   answer without touching the tree; hits are byte-identical to
//   re-execution because the key pins the exact contents. Hit/miss/evict
//   counters aggregate into `service_stats::cache`.
//
//   *Continuous queries* (query/subscription.h). `watch_knn(q, k, cb)` /
//   `watch_range(box, cb)` register standing queries; after every
//   committed write drain the drainer marks the shards the group routed
//   writes into and re-evaluates exactly the watches those shards serve
//   (stripe/box overlap — the same pruning reads use) on the post-drain
//   snapshots via the reader pool. Results are canonicalized and
//   delta-suppressed: a re-evaluation whose result set is byte-identical
//   to the last fire counts as `watch_suppressed` and does not invoke
//   the callback. Fire latency (commit boundary -> results delivered)
//   lands in the `watch_eval` stage histogram.
//
//   *TTL expiry* (`point_ttl_ns`). With a TTL set, every bootstrapped or
//   inserted point is retired by an internal batch_erase group once its
//   sliding window elapses — swept at write-drain boundaries and on an
//   idle-drainer timer, so the resident set stays bounded even without
//   traffic. Expiries are ordinary write groups: epochs bump, cached
//   rows invalidate, and affected watches re-fire through the same
//   machinery (`expire` stage histogram, `expired_points` counter).
//
//   *Replication seam* (query/oplog.h, query/replica.h). With an op log
//   attached (`attach_log`, before bootstrap/traffic), the drain thread
//   appends every committed write drain — client groups, TTL sweeps,
//   stripe rebalances, and the bootstrap build — as the exact ordered
//   per-shard backend calls it executed (the `replicate` stage times the
//   append). Completions carry the group's log epoch
//   (`ticket_result::commit_epoch`) as the read-your-writes floor.
//   Replica-side, `apply_replayed(group)` feeds log groups through the
//   SAME drain thread and per-shard lanes (the `replay` stage), so
//   replayed writes serialize with snapshot stamping exactly like native
//   writes, and `applied_epoch()` — advanced at dispatch — is the
//   position routers gate reads on. Replaying identical backend-call
//   sequences is what makes a replica's answers byte-identical to the
//   primary's at every epoch boundary (tree structure, and hence k-NN
//   tie order, is a deterministic function of the call sequence).
//
//   *Ingest backpressure*. `max_pending_requests` bounds admitted-but-
//   unfulfilled requests across the whole pipeline (0 = unbounded, the
//   PR 3 behavior). Past the bound `submit()` blocks the producer until
//   drains fulfil enough in-flight work (an over-sized batch is admitted
//   alone rather than deadlocking); `try_submit()` returns std::nullopt
//   instead of blocking. close() wakes blocked producers, which then
//   throw like any post-close submit.
//
//   *Bounded retention*. Completed-but-unredeemed results are retained in
//   a bounded buffer: redemption (get / callback / handle destruction)
//   evicts immediately, and past `max_retained` results the oldest are
//   dropped (their `get()` then throws). Handles stay valid after
//   `close()` and even after the service is destroyed.
//
// `close()` (also run by the destructor) stops intake, flushes every
// in-flight ticket through the pipeline deterministically (drain thread,
// then shard lanes, then snapshot readers), and joins the service threads.
// `execute(batch)` is the single-caller synchronous convenience: submit +
// get.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/checkpoint.h"
#include "query/epoch_reclaim.h"
#include "query/fault.h"
#include "query/ingest_ring.h"
#include "query/oplog.h"
#include "query/query_engine.h"
#include "query/result_cache.h"
#include "query/spatial_index.h"
#include "query/subscription.h"
#include "query/telemetry.h"

namespace pargeo::query {

enum class shard_policy { spatial, hash };

inline const char* shard_policy_name(shard_policy p) {
  switch (p) {
    case shard_policy::spatial: return "spatial";
    case shard_policy::hash: return "hash";
  }
  return "?";
}

inline shard_policy shard_policy_from_string(const std::string& s) {
  if (s == "spatial") return shard_policy::spatial;
  if (s == "hash") return shard_policy::hash;
  throw std::invalid_argument("unknown shard policy '" + s +
                              "' (want spatial|hash)");
}

/// How drain groups execute: `per_shard` pipelines sub-batches through one
/// executor lane per shard (groups overlap across shards); `stealing` is
/// per_shard plus work stealing — an idle lane worker drains the deepest
/// sibling queue, so a skewed stream that routes everything to one shard
/// still keeps every worker busy; `single` runs each group to completion
/// on the drain thread (the serialized baseline).
enum class drain_mode { single, per_shard, stealing };

inline const char* drain_mode_name(drain_mode m) {
  switch (m) {
    case drain_mode::single: return "single";
    case drain_mode::per_shard: return "per_shard";
    case drain_mode::stealing: return "stealing";
  }
  return "?";
}

inline drain_mode drain_mode_from_string(const std::string& s) {
  if (s == "single") return drain_mode::single;
  if (s == "per_shard") return drain_mode::per_shard;
  if (s == "stealing") return drain_mode::stealing;
  throw std::invalid_argument("unknown drain mode '" + s +
                              "' (want single|per_shard|stealing)");
}

/// How submit() hands batches to the drain thread: `lockfree` (the
/// default) pushes onto a bounded MPSC ring (src/query/ingest_ring.h) —
/// producers contend only on one CAS, backpressure budget is acquired with
/// atomics, and blocked producers park futex-style; `mutex` is the
/// historical mutex/condvar queue, kept switchable as the comparable
/// baseline. Admission semantics (FIFO order per producer, ticket-id
/// assignment, `max_pending_requests` blocking/rejection, close() waking
/// blocked producers) are identical in both modes.
enum class ingest_mode { mutex, lockfree };

inline const char* ingest_mode_name(ingest_mode m) {
  switch (m) {
    case ingest_mode::mutex: return "mutex";
    case ingest_mode::lockfree: return "lockfree";
  }
  return "?";
}

inline ingest_mode ingest_mode_from_string(const std::string& s) {
  if (s == "mutex") return ingest_mode::mutex;
  if (s == "lockfree") return ingest_mode::lockfree;
  throw std::invalid_argument("unknown ingest mode '" + s +
                              "' (want mutex|lockfree)");
}

struct service_config {
  query::backend backend = query::backend::bdltree;
  std::size_t shards = 1;
  shard_policy policy = shard_policy::hash;
  /// Drain-group execution: per-shard executor lanes (default) or the
  /// single-drainer baseline.
  drain_mode drain = drain_mode::per_shard;
  /// Ingest path: lock-free MPSC ring (default) or the mutex/condvar
  /// queue baseline. See ingest_mode.
  ingest_mode ingest = ingest_mode::lockfree;
  /// Slot count of the lock-free ingest ring (rounded up to a power of
  /// two). A full ring blocks producers exactly like backpressure does;
  /// `ingest_spins` counts the spin iterations they burn first.
  std::size_t ingest_ring_capacity = 1024;
  /// Max requests grouped into one drain (a single over-sized batch still
  /// drains alone).
  std::size_t ingest_window = std::size_t{1} << 16;
  /// Snapshot-read executors. Read-only ticket groups execute on this pool
  /// against epoch snapshots, concurrently with the drain pipeline's write
  /// groups. 0 serializes reads behind the write drain (no extra threads).
  std::size_t read_threads = 2;
  /// Backpressure: max admitted-but-unfulfilled requests across the whole
  /// pipeline. 0 = unbounded. Past the bound submit() blocks and
  /// try_submit() rejects; a batch larger than the bound is admitted alone
  /// once the pipeline is empty.
  std::size_t max_pending_requests = 0;
  /// Total hot k-NN cache entries, split evenly across shards (see
  /// query/result_cache.h). 0 disables the cache.
  std::size_t cache_capacity = 4096;
  /// Completed-but-unredeemed results kept before the oldest are evicted
  /// (an evicted handle's get() throws). Must be >= 1.
  std::size_t max_retained = 1024;
  /// Online stripe rebalancing (spatial policy only): when the largest
  /// shard's resident size exceeds `rebalance_threshold` x the mean at a
  /// drain boundary, the quantile stripe bounds are re-derived from a
  /// sample of live points and misplaced points migrate to their new
  /// owners as an internal write group (epochs bump on every affected
  /// shard, so cached k-NN rows and pinned snapshots invalidate through
  /// the normal channels). <= 1 disables (the PR 4 behavior: stripes are
  /// fixed once set). Meaningful values start around 1.2-2.0.
  double rebalance_threshold = 0;
  /// Ignore imbalance below this many total resident points (tiny sets
  /// would re-stripe constantly for no win).
  std::size_t rebalance_min_points = 256;
  /// Sample size for re-deriving the quantile stripe bounds.
  std::size_t rebalance_sample = 4096;
  /// Sliding-window TTL for stored points, in nanoseconds: every
  /// bootstrapped or inserted point is retired by an internal
  /// batch_erase group once its TTL elapses. Sweeps run after every
  /// write drain and on an idle-drainer timer, so points expire even
  /// without traffic. 0 disables expiry.
  std::uint64_t point_ttl_ns = 0;
  /// TTL clock override, nanoseconds on any monotone (never-backwards)
  /// scale. Defaults to the process steady clock; tests inject a fake
  /// clock to drive expiry deterministically.
  std::function<std::uint64_t()> ttl_now;
  /// Request-lifecycle telemetry (query/telemetry.h). `stats` (the
  /// default) keeps per-stage and per-shard latency histograms — a few
  /// steady_clock reads and relaxed atomic adds per drain group, cheap
  /// enough to leave on; `trace` additionally samples full span chains
  /// into the trace ring (dump_trace() writes them as Chrome/Perfetto
  /// JSON); `off` disables all measurement (the overhead baseline).
  telemetry_level telemetry = telemetry_level::stats;
  /// Trace sampling rate at `trace` level: every 1-in-N ticket gets a
  /// full span chain (deterministic on the ticket id).
  std::size_t trace_sample = 64;
  /// Span ring capacity at `trace` level; the oldest spans are
  /// overwritten past it.
  std::size_t trace_capacity = 8192;
  /// Idle poll tick for stealing lane workers, in nanoseconds: how long a
  /// worker with an empty own queue sleeps between scans of sibling
  /// queues. Smaller = steals picked up faster at the cost of idle CPU;
  /// only meaningful under drain_mode::stealing.
  std::uint64_t steal_poll_ns = 1'000'000;
  /// Durability (query/oplog.h, query/checkpoint.h). Non-empty: the
  /// constructor creates the directory, attaches an op log, and opens
  /// `<log_dir>/oplog.pgol` for incremental durable appends — every
  /// committed write group lands on disk as one self-checksummed frame
  /// before its tickets fulfil. Rebuild a crashed service from the
  /// directory with query_service::recover().
  std::string log_dir;
  /// fsync cadence for the durable log: `none` flushes to the page
  /// cache only (survives process death), `interval` fsyncs every
  /// `sync_interval_groups` appends, `every_commit` fsyncs each append
  /// (survives power loss, at a per-commit cost the durability bench
  /// quantifies).
  sync_policy sync = sync_policy::interval;
  std::uint32_t sync_interval_groups = 32;
  /// Checkpoint + compact every N committed write groups (0 disables):
  /// the drain thread quiesces the lanes, serializes per-shard resident
  /// state into log_dir, and truncates the log below the checkpoint
  /// epoch — recovery and cold replicas then start from the checkpoint
  /// instead of replaying from epoch 1. Requires log_dir.
  std::size_t checkpoint_every = 0;
  /// Default per-batch deadline, nanoseconds from submit (0 = none).
  /// The drain sheds a still-queued batch whose deadline passed instead
  /// of executing it: the ticket completes with `timed_out = true`,
  /// empty responses, and a `deadline_expired` counter bump.
  /// Per-batch override: submit_with_deadline().
  std::uint64_t deadline_ns = 0;
  index_options index;  // forwarded to every shard's backend
};

/// Completed batch as seen by one submitter. `stats` describes the whole
/// drain group the ticket executed in (tickets grouped into one drain share
/// phases, and `response::phase` indexes `stats.phases`). Under
/// `drain_mode::per_shard` phases pipeline across shards, so per-phase
/// seconds are the group's wall-clock apportioned by request count rather
/// than directly measured.
template <int D>
struct ticket_result {
  std::vector<response<D>> responses;  // responses[i] answers batch[i]
  engine_stats stats;
  double latency_seconds = 0;  // submit() -> responses ready
  /// For snapshot-path read groups: the largest shard epoch the reads
  /// observed (0 for write/mixed groups — those read the live index).
  std::uint64_t snapshot_epoch = 0;
  /// With an op log attached: the log epoch this batch's writes committed
  /// as (0 for read-only batches and logless services). Carry it as the
  /// `min_epoch` floor on subsequent replica_router reads for
  /// read-your-writes.
  std::uint64_t commit_epoch = 0;
  /// The batch was shed by the drain because its deadline passed while
  /// it was still queued: `responses` is empty and nothing executed.
  /// Deadline expiry is a completion, not an error — get() returns
  /// normally and callers branch on this flag.
  bool timed_out = false;
};

/// Per-lane drain counters (populated under `drain_mode::per_shard` and
/// `::stealing`). `num_drains`/`num_requests`/`execute_seconds` describe
/// work executed ON this shard (whichever worker ran it); `steals` and
/// `steal_scans` describe work this lane's WORKER took from siblings.
struct shard_drain_stats {
  std::size_t num_drains = 0;    // sub-batches executed on this shard
  std::size_t num_requests = 0;  // requests across those sub-batches
  double execute_seconds = 0;    // wall-clock spent executing this shard
  std::size_t queue_depth = 0;   // tasks waiting in the lane right now
  std::size_t max_queue_depth = 0;  // high-water mark of queue_depth
  /// Work stealing (drain_mode::stealing): tasks this lane's worker stole
  /// from sibling queues, and the idle scans that went looking for one.
  std::size_t steals = 0;
  std::size_t steal_scans = 0;
};

struct service_stats {
  std::size_t num_tickets = 0;
  std::size_t num_drains = 0;
  std::size_t num_requests = 0;
  std::size_t num_read_groups = 0;   // drains executed on the snapshot path
  std::size_t num_write_groups = 0;  // drains executed on the write path
  /// Snapshot-path read drains that retired while the live write epoch had
  /// already moved past their snapshot — i.e. reads that demonstrably
  /// overlapped a write drain.
  std::size_t snapshot_lag_drains = 0;
  std::size_t results_retained = 0;  // completed, not yet redeemed
  std::size_t results_evicted = 0;   // dropped by the retention cap
  double execute_seconds = 0;  // total wall-clock spent executing drains
  /// Backpressure: admitted-but-unfulfilled requests right now, and how
  /// often producers hit the bound.
  std::size_t pending_requests = 0;
  std::size_t submit_waits = 0;        // submit() calls that had to block
  std::size_t try_submit_rejects = 0;  // try_submit() nullopt returns
  /// Routing scratch recycling: sub-batch buffers reused from the pool vs
  /// freshly allocated (reuse dominating == allocation churn is gone).
  std::size_t scratch_reuses = 0;
  std::size_t scratch_allocs = 0;
  /// Online stripe rebalancing (spatial policy): bound re-derivations
  /// performed, and points migrated between shards by them.
  std::size_t rebalances = 0;
  std::size_t rebalance_moved = 0;
  /// Continuous queries (query/subscription.h): standing watches alive
  /// now, callback fires delivered, re-fires skipped (stripe-pruned at
  /// the boundary or delta-suppressed on identical results), and points
  /// retired by TTL expiry.
  std::size_t active_watches = 0;
  std::size_t watch_fires = 0;
  std::size_t watch_suppressed = 0;
  std::size_t expired_points = 0;
  /// Watch re-evaluation rows answered from the result cache instead of a
  /// fresh tree traversal (the watch path probes the same epoch-keyed
  /// cache the ticket read path does).
  std::size_t watch_cache_hits = 0;
  /// Replication (query/oplog.h). Primary side: `log_epoch` is the head
  /// of the attached op log (0 when none). Replica side: `applied_epoch`
  /// is the last log epoch replayed, `replayed_groups`/`replayed_records`
  /// count log groups applied and backend calls re-issued, and
  /// `replay_errors` counts groups whose application threw.
  std::uint64_t log_epoch = 0;
  std::uint64_t applied_epoch = 0;
  std::size_t replayed_groups = 0;
  std::size_t replayed_records = 0;
  std::size_t replay_errors = 0;
  /// Durability & robustness (query/oplog.h, query/checkpoint.h).
  /// `deadline_expired` counts requests shed past their deadline;
  /// `truncated_groups` the torn trailing log frames dropped when the
  /// attached log was salvaged from disk; `recovered_epochs` the log
  /// head this service was rebuilt to by recover() (0: not recovered);
  /// `checkpoints`/`checkpoint_errors` the checkpoint+compaction
  /// attempts; `log_append_errors` write groups failed by a durable
  /// append fault; `log_syncs`/`log_bytes` the durable file's fsync and
  /// byte traffic (the sync-policy cost the bench measures).
  std::size_t deadline_expired = 0;
  std::uint64_t truncated_groups = 0;
  std::uint64_t recovered_epochs = 0;
  std::size_t checkpoints = 0;
  std::size_t checkpoint_errors = 0;
  std::size_t log_append_errors = 0;
  std::uint64_t log_syncs = 0;
  std::uint64_t log_bytes = 0;
  /// Lock-free ingest (ingest_mode::lockfree, query/ingest_ring.h):
  /// producer spin iterations burned on a full ring before parking.
  std::uint64_t ingest_spins = 0;
  /// Epoch-based snapshot reclamation (query/epoch_reclaim.h):
  /// `retired_snapshots` structure versions handed to the limbo list,
  /// `reclaimed_snapshots` of them destroyed at reclaim points,
  /// `reclaim_stalls` reclaim passes blocked by a still-active older
  /// reader, `epoch_lag` the global-epoch distance to the slowest active
  /// reader at the last pass, `limbo_snapshots` versions awaiting
  /// reclamation right now.
  std::uint64_t retired_snapshots = 0;
  std::uint64_t reclaimed_snapshots = 0;
  std::uint64_t reclaim_stalls = 0;
  std::uint64_t epoch_lag = 0;
  std::uint64_t limbo_snapshots = 0;
  std::vector<shard_drain_stats> per_shard;  // one entry per lane
  cache_stats cache;  // hot k-NN cache, aggregated across shards
  /// Per-stage / per-shard latency histograms (query/telemetry.h).
  /// Empty (level `off`, zero counts) when telemetry is disabled.
  telemetry_report telemetry;
};

/// Prometheus text exposition of a service_stats snapshot: counter and
/// gauge families for the ingest/drain/cache/steal/rebalance counters,
/// plus one cumulative `pargeo_stage_latency_seconds` histogram per
/// lifecycle stage (merged across shards, `le` in seconds). Scrape-ready
/// — serve it from an HTTP handler or drop it in a node_exporter
/// textfile collector directory.
inline std::string metrics_text(const service_stats& s) {
  std::string out;
  out.reserve(std::size_t{1} << 15);
  char line[192];
  const auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  const auto family = [&](const char* name, const char* type,
                          const char* help) {
    emit("# HELP %s %s\n# TYPE %s %s\n", name, help, name, type);
  };
  const auto counter = [&](const char* name, const char* help,
                           std::uint64_t v) {
    family(name, "counter", help);
    emit("%s %llu\n", name, static_cast<unsigned long long>(v));
  };
  const auto gauge = [&](const char* name, const char* help,
                         std::uint64_t v) {
    family(name, "gauge", help);
    emit("%s %llu\n", name, static_cast<unsigned long long>(v));
  };

  counter("pargeo_tickets_total", "Batches submitted", s.num_tickets);
  counter("pargeo_requests_total", "Requests fulfilled", s.num_requests);
  family("pargeo_drains_total", "counter",
         "Drain groups executed, by pipeline path");
  emit("pargeo_drains_total{path=\"write\"} %llu\n",
       static_cast<unsigned long long>(s.num_write_groups));
  emit("pargeo_drains_total{path=\"read\"} %llu\n",
       static_cast<unsigned long long>(s.num_read_groups));
  counter("pargeo_snapshot_lag_drains_total",
          "Snapshot reads that retired behind the live epoch",
          s.snapshot_lag_drains);
  counter("pargeo_submit_waits_total",
          "submit() calls blocked on backpressure", s.submit_waits);
  counter("pargeo_try_submit_rejects_total",
          "try_submit() backpressure rejections", s.try_submit_rejects);
  counter("pargeo_results_evicted_total",
          "Completed results dropped by the retention cap",
          s.results_evicted);
  gauge("pargeo_results_retained", "Completed, not yet redeemed results",
        s.results_retained);
  gauge("pargeo_pending_requests", "Admitted, not yet fulfilled requests",
        s.pending_requests);
  counter("pargeo_cache_hits_total", "Hot k-NN cache hits", s.cache.hits);
  counter("pargeo_cache_misses_total", "Hot k-NN cache misses",
          s.cache.misses);
  counter("pargeo_cache_evictions_total", "Hot k-NN cache LRU evictions",
          s.cache.evictions);
  gauge("pargeo_cache_entries", "Hot k-NN cache resident entries",
        s.cache.entries);
  family("pargeo_cache_seconds_total", "counter",
         "Cache-path wall time: hit = map service, miss = tree execution");
  emit("pargeo_cache_seconds_total{path=\"hit\"} %.9f\n",
       static_cast<double>(s.cache.hit_ns) * 1e-9);
  emit("pargeo_cache_seconds_total{path=\"miss\"} %.9f\n",
       static_cast<double>(s.cache.miss_ns) * 1e-9);
  std::uint64_t steals = 0, steal_scans = 0;
  for (const auto& ps : s.per_shard) {
    steals += ps.steals;
    steal_scans += ps.steal_scans;
  }
  counter("pargeo_steals_total", "Lane tasks drained by sibling workers",
          steals);
  counter("pargeo_steal_scans_total", "Idle steal scans", steal_scans);
  counter("pargeo_rebalances_total", "Stripe bound re-derivations",
          s.rebalances);
  counter("pargeo_rebalance_moved_total", "Points migrated by rebalancing",
          s.rebalance_moved);
  gauge("pargeo_active_watches", "Standing continuous queries registered",
        s.active_watches);
  counter("pargeo_watch_fires_total", "Continuous-query callback fires",
          s.watch_fires);
  counter("pargeo_watch_suppressed_total",
          "Continuous-query re-fires suppressed (pruned or identical)",
          s.watch_suppressed);
  counter("pargeo_expired_points_total", "Points retired by TTL expiry",
          s.expired_points);
  counter("pargeo_watch_cache_hits_total",
          "Watch re-evaluation rows served from the result cache",
          s.watch_cache_hits);
  gauge("pargeo_log_epoch", "Op-log head epoch (primary with log attached)",
        s.log_epoch);
  gauge("pargeo_applied_epoch", "Last op-log epoch replayed (replica)",
        s.applied_epoch);
  counter("pargeo_replayed_groups_total", "Op-log groups replayed",
          s.replayed_groups);
  counter("pargeo_replayed_records_total",
          "Backend calls re-issued by log replay", s.replayed_records);
  counter("pargeo_replay_errors_total",
          "Log groups whose replay application threw", s.replay_errors);
  counter("pargeo_deadline_expired_total",
          "Requests shed past their deadline", s.deadline_expired);
  counter("pargeo_truncated_groups_total",
          "Torn log frames dropped at recovery", s.truncated_groups);
  gauge("pargeo_recovered_epochs",
        "Log head this service was rebuilt to by recover()",
        s.recovered_epochs);
  counter("pargeo_checkpoints_total", "Checkpoints written (with compaction)",
          s.checkpoints);
  counter("pargeo_checkpoint_errors_total",
          "Checkpoint attempts that failed (previous stays live)",
          s.checkpoint_errors);
  counter("pargeo_log_append_errors_total",
          "Write groups failed by a durable log append fault",
          s.log_append_errors);
  counter("pargeo_log_syncs_total", "Durable log fsync calls", s.log_syncs);
  counter("pargeo_log_bytes_total", "Bytes appended to the durable log",
          s.log_bytes);
  counter("pargeo_ingest_spins_total",
          "Producer spin iterations on a full ingest ring", s.ingest_spins);
  counter("pargeo_retired_snapshots_total",
          "Snapshot structure versions retired to the limbo list",
          s.retired_snapshots);
  counter("pargeo_reclaimed_snapshots_total",
          "Retired versions destroyed at epoch reclaim points",
          s.reclaimed_snapshots);
  counter("pargeo_reclaim_stalls_total",
          "Reclaim passes blocked by an active older reader epoch",
          s.reclaim_stalls);
  gauge("pargeo_epoch_lag",
        "Global epoch distance to the slowest active reader",
        s.epoch_lag);
  gauge("pargeo_limbo_snapshots", "Retired versions awaiting reclamation",
        s.limbo_snapshots);
  counter("pargeo_execute_seconds_total",
          "Wall-clock seconds spent executing drains",
          static_cast<std::uint64_t>(s.execute_seconds));

  family("pargeo_stage_latency_seconds", "histogram",
         "Request-lifecycle stage latency (merged across shards)");
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const auto& h = s.telemetry.stages[i];
    const char* st = stage_name(static_cast<stage>(i));
    std::uint64_t cum = 0;
    for (int b = 0; b + 1 < latency_histogram::kBuckets; ++b) {
      cum += h.bucket_count(b);
      emit("pargeo_stage_latency_seconds_bucket{stage=\"%s\",le=\"%.9g\"} "
           "%llu\n",
           st, static_cast<double>(latency_histogram::bucket_upper(b)) * 1e-9,
           static_cast<unsigned long long>(cum));
    }
    cum += h.bucket_count(latency_histogram::kBuckets - 1);
    emit("pargeo_stage_latency_seconds_bucket{stage=\"%s\",le=\"+Inf\"} "
         "%llu\n",
         st, static_cast<unsigned long long>(cum));
    emit("pargeo_stage_latency_seconds_sum{stage=\"%s\"} %.9f\n", st,
         static_cast<double>(h.sum_ns()) * 1e-9);
    emit("pargeo_stage_latency_seconds_count{stage=\"%s\"} %llu\n", st,
         static_cast<unsigned long long>(cum));
  }
  return out;
}

template <int D>
class query_service;

namespace detail {

/// Completion state shared between a query_service and its handles. Each
/// ticket gets a heap `record` co-owned by the submitter's handle and (until
/// fulfilment) the service's pending entry — no id-keyed map, so neither
/// submit nor fulfil walks shared lookup structure. The record's `state` is
/// an atomic: `completion::ready()` is one acquire load, never a lock. The
/// hub (a shared_ptr) outlives the service, so handles stay redeemable
/// after shutdown. `mu` guards the retention/eviction bookkeeping, result
/// payloads, callbacks, and `done_cv`; in ingest_mode::mutex it also
/// guards the owning service's ingest queue.
template <int D>
struct completion_hub {
  struct record {
    enum class state_t : std::uint8_t { pending, done, evicted, consumed };
    /// Lock-free readiness signal: transitions away from `pending` are
    /// stored with release order (under mu) after the payload is written;
    /// ready() reads it with acquire and no lock.
    std::atomic<state_t> state{state_t::pending};
    std::uint64_t id = 0;
    ticket_result<D> result;   // guarded by mu; valid when state == done
    std::exception_ptr error;  // guarded by mu
    std::function<void(ticket_result<D>&&, std::exception_ptr)> callback;
    /// The submitter dropped its handle unredeemed: fulfil discards the
    /// result instead of retaining it (guarded by mu).
    bool handle_dropped = false;
  };
  using record_ptr = std::shared_ptr<record>;

  std::mutex mu;
  std::condition_variable done_cv;  // signaled on every fulfilment
  std::deque<record_ptr> done_order;  // eviction candidates, oldest first
  /// Records in state done / dropped by the cap. Atomics (written under
  /// mu) so stats() reads them without contending the hub.
  std::atomic<std::size_t> retained{0};
  std::atomic<std::size_t> evicted_total{0};
  std::size_t max_retained = 1;
  /// Service stopped accepting submissions. Atomic so the lock-free
  /// submit path reads it without the hub lock.
  std::atomic<bool> closed{false};

  // Called with mu held after results are stored: drops the oldest
  // completed-but-unredeemed results until the cap holds again, then
  // compacts the candidate deque (redemption leaves consumed records
  // behind; a promptly-redeeming steady state would otherwise grow it
  // forever).
  void evict_over_cap() {
    while (retained.load(std::memory_order_relaxed) > max_retained &&
           !done_order.empty()) {
      record_ptr r = std::move(done_order.front());
      done_order.pop_front();
      if (r->state.load(std::memory_order_relaxed) !=
          record::state_t::done) {
        continue;  // already redeemed; stale eviction candidate
      }
      r->result = ticket_result<D>{};
      r->error = nullptr;
      r->state.store(record::state_t::evicted, std::memory_order_release);
      retained.fetch_sub(1, std::memory_order_relaxed);
      evicted_total.fetch_add(1, std::memory_order_relaxed);
    }
    // Live done records number <= max_retained, so past 2x (+ slack) the
    // deque is mostly stale records; one O(size) filter re-bounds it.
    if (done_order.size() > std::max<std::size_t>(64, 2 * max_retained)) {
      std::deque<record_ptr> live;
      for (auto& r : done_order) {
        if (r->state.load(std::memory_order_relaxed) ==
            record::state_t::done) {
          live.push_back(std::move(r));
        }
      }
      done_order.swap(live);
    }
  }
};

}  // namespace detail

/// Move-only handle for one submitted batch. Redeem exactly once: `get()`
/// blocks and returns the result (rethrowing the drain's failure, if any),
/// `on_complete(fn)` consumes the result through a callback fired exactly
/// once, `ready()` polls — one atomic load, no lock, so a poll storm never
/// contends with ingest or fulfilment. A handle dropped unredeemed
/// releases its result immediately. Handles outlive the service safely.
template <int D>
class completion {
  using hub_t = detail::completion_hub<D>;
  using record_t = typename hub_t::record;

 public:
  completion() = default;
  completion(completion&& o) noexcept
      : hub_(std::move(o.hub_)), rec_(std::move(o.rec_)),
        redeemed_(o.redeemed_) {
    o.redeemed_ = false;
  }
  completion& operator=(completion&& o) noexcept {
    if (this != &o) {
      release();
      hub_ = std::move(o.hub_);
      rec_ = std::move(o.rec_);
      redeemed_ = o.redeemed_;
      o.redeemed_ = false;
    }
    return *this;
  }
  completion(const completion&) = delete;
  completion& operator=(const completion&) = delete;
  ~completion() { release(); }

  /// True if this handle came from a submit() (and was not moved from).
  bool valid() const { return rec_ != nullptr; }
  std::uint64_t id() const { return rec_ ? rec_->id : 0; }

  /// True once the result is available (get() would not block). Lock-free:
  /// a single acquire load of the record's state.
  bool ready() const {
    if (!rec_) return false;
    if (redeemed_) return true;
    return rec_->state.load(std::memory_order_acquire) !=
           record_t::state_t::pending;
  }

  /// Blocks until the ticket's drain completes and returns its result;
  /// rethrows the drain group's exception if execution failed. Throws
  /// std::logic_error on an empty handle or a second redemption, and
  /// std::runtime_error if the result was evicted by the retention cap.
  ticket_result<D> get() {
    if (!rec_) {
      throw std::logic_error("completion::get() on an empty handle "
                             "(nothing was submitted)");
    }
    if (redeemed_) {
      throw std::logic_error("completion::get() after the result was "
                             "already consumed");
    }
    std::unique_lock<std::mutex> lk(hub_->mu);
    hub_->done_cv.wait(lk, [&] {
      return rec_->state.load(std::memory_order_relaxed) !=
             record_t::state_t::pending;
    });
    redeemed_ = true;
    if (rec_->state.load(std::memory_order_relaxed) ==
        record_t::state_t::evicted) {
      throw std::runtime_error(
          "completion::get(): result evicted by the retention cap "
          "(service_config.max_retained)");
    }
    std::exception_ptr err = rec_->error;
    ticket_result<D> r = std::move(rec_->result);
    rec_->result = ticket_result<D>{};
    rec_->error = nullptr;
    rec_->state.store(record_t::state_t::consumed, std::memory_order_release);
    hub_->retained.fetch_sub(1, std::memory_order_relaxed);
    lk.unlock();
    if (err) std::rethrow_exception(err);
    return r;
  }

  /// Registers `fn` to consume the result: fired exactly once with
  /// (result, nullptr) on success or ({}, error) on failure/eviction —
  /// immediately on this thread if the result is already in, otherwise
  /// from the service thread that fulfils the ticket (where anything the
  /// callback throws is swallowed). Counts as the handle's one redemption.
  void on_complete(std::function<void(ticket_result<D>&&, std::exception_ptr)> fn) {
    if (!fn) throw std::invalid_argument("on_complete: empty callback");
    if (!rec_) {
      throw std::logic_error("completion::on_complete() on an empty handle");
    }
    if (redeemed_) {
      throw std::logic_error("completion::on_complete() after the result "
                             "was already consumed");
    }
    std::unique_lock<std::mutex> lk(hub_->mu);
    redeemed_ = true;
    const auto st = rec_->state.load(std::memory_order_relaxed);
    if (st == record_t::state_t::pending) {
      rec_->callback = std::move(fn);
      return;
    }
    ticket_result<D> r;
    std::exception_ptr err;
    if (st == record_t::state_t::evicted) {
      err = std::make_exception_ptr(std::runtime_error(
          "completion::on_complete(): result evicted by the retention cap"));
    } else {
      err = rec_->error;
      r = std::move(rec_->result);
      rec_->result = ticket_result<D>{};
      rec_->error = nullptr;
      hub_->retained.fetch_sub(1, std::memory_order_relaxed);
    }
    rec_->state.store(record_t::state_t::consumed, std::memory_order_release);
    lk.unlock();
    fn(std::move(r), err);
  }

 private:
  friend class query_service<D>;
  completion(std::shared_ptr<hub_t> hub, typename hub_t::record_ptr rec)
      : hub_(std::move(hub)), rec_(std::move(rec)) {}

  // Dropping an unredeemed handle evicts its (current or future) result;
  // a registered callback still fires, so fulfilment proceeds normally.
  void release() {
    if (!rec_) return;
    {
      std::lock_guard<std::mutex> lk(hub_->mu);
      const auto st = rec_->state.load(std::memory_order_relaxed);
      if (st == record_t::state_t::pending) {
        // Fulfilment discards the result unless a callback is armed.
        rec_->handle_dropped = true;
      } else if (st == record_t::state_t::done) {
        rec_->result = ticket_result<D>{};
        rec_->error = nullptr;
        rec_->state.store(record_t::state_t::consumed,
                          std::memory_order_release);
        hub_->retained.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    hub_.reset();
    rec_.reset();
  }

  std::shared_ptr<hub_t> hub_;
  typename hub_t::record_ptr rec_;
  bool redeemed_ = false;
};

template <int D>
class query_service {
 public:
  explicit query_service(service_config cfg)
      : cfg_(std::move(cfg)),
        tel_(cfg_.telemetry, cfg_.shards, cfg_.trace_sample,
             cfg_.trace_capacity) {
    if (cfg_.shards == 0) {
      throw std::invalid_argument("service_config.shards must be >= 1");
    }
    if (cfg_.ingest_window == 0) {
      throw std::invalid_argument("service_config.ingest_window must be >= 1");
    }
    if (cfg_.max_retained == 0) {
      throw std::invalid_argument("service_config.max_retained must be >= 1");
    }
    engines_.reserve(cfg_.shards);
    caches_.reserve(cfg_.shards);
    lanes_.reserve(cfg_.shards);
    const std::size_t per_shard_cache =
        cfg_.cache_capacity == 0
            ? 0
            : (cfg_.cache_capacity + cfg_.shards - 1) / cfg_.shards;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      engines_.push_back(std::make_unique<query_engine<D>>(
          make_index<D>(cfg_.backend, cfg_.index)));
      caches_.push_back(std::make_unique<result_cache<D>>(
          per_shard_cache, /*timed=*/tel_.enabled()));
      lanes_.push_back(std::make_unique<shard_lane>());
    }
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      engines_[s]->index().set_reclaimer(&reclaim_);
    }
    resident_est_.assign(cfg_.shards, 0);
    write_touched_.assign(cfg_.shards, 0);
    watches_ = std::make_shared<watch_registry<D>>();
    ttl_now_ = cfg_.ttl_now ? cfg_.ttl_now : [] { return monotonic_ns(); };
    hub_ = std::make_shared<detail::completion_hub<D>>();
    hub_->max_retained = cfg_.max_retained;
    if (!cfg_.log_dir.empty()) {
      // Durable primary: create the directory and open the segmented log
      // for incremental appends before any thread can commit a group.
      detail_ck::ensure_dir(cfg_.log_dir);
      log_ = std::make_shared<op_log<D>>();
      log_->open_durable(cfg_.log_dir + "/oplog.pgol", cfg_.sync,
                         cfg_.sync_interval_groups);
    }
    if (cfg_.ingest == ingest_mode::lockfree) {
      ring_ = std::make_unique<mpsc_ring<pending_entry>>(
          cfg_.ingest_ring_capacity);
    }
    drainer_ = std::thread([this] { drain_loop(); });
    try {
      if (cfg_.drain != drain_mode::single) {
        for (std::size_t s = 0; s < cfg_.shards; ++s) {
          lanes_[s]->worker = std::thread([this, s] { shard_loop(s); });
        }
      }
      readers_.reserve(cfg_.read_threads);
      for (std::size_t i = 0; i < cfg_.read_threads; ++i) {
        readers_.emplace_back([this] { read_loop(); });
      }
    } catch (...) {
      close();  // join whatever started before rethrowing
      throw;
    }
  }

  ~query_service() { close(); }
  query_service(const query_service&) = delete;
  query_service& operator=(const query_service&) = delete;

  const service_config& config() const { return cfg_; }
  std::size_t num_shards() const { return cfg_.shards; }

  /// Per-shard executor, for tests and diagnostics. Quiescent callers only.
  const query_engine<D>& shard(std::size_t s) const { return *engines_[s]; }

  /// Loads the initial point set, partitioned across shards (replacing any
  /// current contents). Not thread-safe; call before serving traffic.
  /// Throws std::invalid_argument on non-finite coordinates (they would
  /// corrupt stripe derivation and route arbitrarily, like at submit()).
  void bootstrap(const std::vector<point<D>>& pts) {
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (int d = 0; d < D; ++d) {
        if (!std::isfinite(pts[i][d])) {
          throw std::invalid_argument(
              "query_service::bootstrap: point " + std::to_string(i) +
              " has a non-finite coordinate");
        }
      }
    }
    bounds_set_ = false;
    if (cfg_.policy == shard_policy::spatial) set_spatial_bounds(pts);
    auto parts = partition_points(pts);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      resident_est_[s] = parts[s].size();
    }
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) { engines_[s]->bootstrap(parts[s]); }, 1);
    if (log_) {
      // The bootstrap build is the log's genesis group: per-shard build
      // records (empty shards included — build replaces contents) plus
      // the stripe bounds, so a fresh replica converges from epoch 1.
      const std::uint64_t r0 = tel_.now_ns();
      log_group<D> lg;
      lg.origin = log_origin::bootstrap;
      if (cfg_.policy == shard_policy::spatial && bounds_set_) {
        lg.has_bounds = true;
        lg.split_dim = split_dim_;
        lg.cuts = bounds_;
      }
      lg.records.reserve(cfg_.shards);
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        log_record<D> rec;
        rec.shard = static_cast<std::uint32_t>(s);
        rec.kind = log_op::build;
        rec.pts = parts[s];
        lg.records.push_back(std::move(rec));
      }
      log_->append(std::move(lg));
      if (tel_.enabled()) tel_.record(stage::replicate, tel_.now_ns() - r0);
    }
    if (cfg_.point_ttl_ns > 0) {
      // Bootstrapped points start one full TTL window from now.
      std::lock_guard<std::mutex> lk(ttl_mu_);
      ttl_q_.clear();
      const std::uint64_t deadline = ttl_now_() + cfg_.point_ttl_ns;
      for (const auto& p : pts) ttl_q_.emplace_back(deadline, p);
    }
  }

  /// Multi-producer entry point: enqueues `batch` for the drain pipeline
  /// and returns a completion handle immediately. Safe to call from any
  /// number of threads. With `max_pending_requests` set, blocks while the
  /// pipeline is at the bound. Throws once the service is closed (also
  /// when close() arrives while blocked), and std::invalid_argument on a
  /// request with non-finite coordinates (no ticket is created).
  ///
  /// ingest_mode::lockfree (the default): admission is a CAS on the
  /// budget counter and a Vyukov-ring push — producers touch no mutex
  /// unless the bound or the ring is actually full. ingest_mode::mutex
  /// keeps the original hub-lock path as the comparable baseline.
  completion<D> submit(std::vector<request<D>> batch) {
    validate_batch(batch);
    if (ring_) {
      return *submit_lockfree(std::move(batch), cfg_.deadline_ns,
                              /*blocking=*/true, "submit");
    }
    std::unique_lock<std::mutex> lk(hub_->mu);
    if (cfg_.max_pending_requests > 0 && !admits(batch.size())) {
      ctr_.submit_waits.fetch_add(1, std::memory_order_relaxed);
      space_cv_.wait(lk, [&] {
        return hub_->closed.load(std::memory_order_relaxed) ||
               admits(batch.size());
      });
    }
    if (hub_->closed.load(std::memory_order_relaxed)) {
      throw std::runtime_error("query_service::submit() after close()");
    }
    return enqueue_locked(std::move(batch), cfg_.deadline_ns);
  }

  /// Non-blocking submit: std::nullopt when admission would block on the
  /// backpressure bound (or, under ingest_mode::lockfree, on a full
  /// ingest ring) — never waits. Throws once the service is closed, and
  /// std::invalid_argument on non-finite coordinates.
  std::optional<completion<D>> try_submit(std::vector<request<D>> batch) {
    validate_batch(batch);
    if (ring_) {
      return submit_lockfree(std::move(batch), cfg_.deadline_ns,
                             /*blocking=*/false, "try_submit");
    }
    std::lock_guard<std::mutex> lk(hub_->mu);
    if (hub_->closed.load(std::memory_order_relaxed)) {
      throw std::runtime_error("query_service::try_submit() after close()");
    }
    if (cfg_.max_pending_requests > 0 && !admits(batch.size())) {
      ctr_.try_submit_rejects.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    return enqueue_locked(std::move(batch), cfg_.deadline_ns);
  }

  /// submit() with an explicit per-batch deadline, `deadline_ns`
  /// nanoseconds from now (overriding service_config::deadline_ns;
  /// 0 = no deadline for this batch). A batch still queued when its
  /// deadline passes is shed by the drain without executing: the ticket
  /// completes with `ticket_result::timed_out = true` and empty
  /// responses, and `service_stats::deadline_expired` counts its
  /// requests. A batch that reaches the execution pipeline in time runs
  /// to completion normally — the deadline bounds queueing, not
  /// execution.
  completion<D> submit_with_deadline(std::vector<request<D>> batch,
                                     std::uint64_t deadline_ns) {
    validate_batch(batch);
    if (ring_) {
      return *submit_lockfree(std::move(batch), deadline_ns,
                              /*blocking=*/true, "submit_with_deadline");
    }
    std::unique_lock<std::mutex> lk(hub_->mu);
    if (cfg_.max_pending_requests > 0 && !admits(batch.size())) {
      ctr_.submit_waits.fetch_add(1, std::memory_order_relaxed);
      space_cv_.wait(lk, [&] {
        return hub_->closed.load(std::memory_order_relaxed) ||
               admits(batch.size());
      });
    }
    if (hub_->closed.load(std::memory_order_relaxed)) {
      throw std::runtime_error(
          "query_service::submit_with_deadline() after close()");
    }
    return enqueue_locked(std::move(batch), deadline_ns);
  }

  /// Single-caller convenience: submit + get.
  batch_result<D> execute(std::vector<request<D>> batch) {
    auto r = submit(std::move(batch)).get();
    return batch_result<D>{std::move(r.responses), std::move(r.stats)};
  }

  /// Registers a standing k-NN query: `cb` re-fires with the fresh k
  /// nearest neighbours of `q` after every committed write drain that
  /// could have affected them — including TTL expiries — with
  /// byte-identical results suppressed (see query/subscription.h for
  /// the full delivery contract). There is no fire at registration; the
  /// first affecting drain boundary delivers the initial result.
  /// Returns the move-only handle owning the registration; dropping or
  /// cancelling it guarantees the callback never runs again. Callable
  /// from any thread. Callbacks run on service threads: keep them light
  /// and never block on a completion or another watch inside one.
  /// Throws std::invalid_argument on non-finite coordinates or an empty
  /// callback.
  watch_handle<D> watch_knn(const point<D>& q, std::size_t k,
                            typename watch_registry<D>::callback_t cb) {
    return add_watch(request<D>::make_knn(q, k), std::move(cb));
  }

  /// Registers a standing box-range query (same contract as watch_knn).
  watch_handle<D> watch_range(const aabb<D>& box,
                              typename watch_registry<D>::callback_t cb) {
    return add_watch(request<D>::make_range(box), std::move(cb));
  }

  /// Orderly shutdown: stops intake, flushes every in-flight ticket
  /// through the drain pipeline (results stay redeemable from their
  /// handles), and joins the service threads — drainer first (it finishes
  /// routing), then the shard lanes (they finish executing and stamping),
  /// then the snapshot readers. Idempotent; also run by the destructor.
  /// Submissions racing close() either enter before the cut (and are
  /// flushed) or throw; producers blocked on backpressure wake and throw.
  void close() {
    {
      std::lock_guard<std::mutex> lk(hub_->mu);
      hub_->closed.store(true, std::memory_order_seq_cst);
      work_cv_.notify_all();
      space_cv_.notify_all();
    }
    // Lock-free mode: fail producers blocked in a full-ring push and wake
    // the parked drain consumer. Items already in the ring stay poppable
    // — the drain flushes them before exiting.
    if (ring_) ring_->close();
    std::lock_guard<std::mutex> cg(close_mu_);
    if (threads_joined_) return;
    if (drainer_.joinable()) drainer_.join();
    for (auto& lane : lanes_) {
      {
        std::lock_guard<std::mutex> lk(lane->mu);
        lane->shutdown = true;
        lane->cv.notify_all();
      }
      if (lane->worker.joinable()) lane->worker.join();
    }
    {
      std::lock_guard<std::mutex> lk(read_mu_);
      read_shutdown_ = true;
      read_cv_.notify_all();
    }
    for (auto& t : readers_) {
      if (t.joinable()) t.join();
    }
    threads_joined_ = true;
  }

  /// Ingest/drain/retention/cache counters. Safe to call concurrently with
  /// submitters and the drain pipeline. Never takes the hub lock: the hot
  /// counters are relaxed atomics, so a stats poll storm cannot contend
  /// with ingest or fulfilment.
  service_stats stats() const {
    service_stats s;
    s.num_tickets = ctr_.num_tickets.load(std::memory_order_relaxed);
    s.num_drains = ctr_.num_drains.load(std::memory_order_relaxed);
    s.num_requests = ctr_.num_requests.load(std::memory_order_relaxed);
    s.num_read_groups = ctr_.num_read_groups.load(std::memory_order_relaxed);
    s.num_write_groups =
        ctr_.num_write_groups.load(std::memory_order_relaxed);
    s.snapshot_lag_drains =
        ctr_.snapshot_lag_drains.load(std::memory_order_relaxed);
    s.execute_seconds =
        static_cast<double>(ctr_.execute_ns.load(std::memory_order_relaxed)) *
        1e-9;
    s.submit_waits = ctr_.submit_waits.load(std::memory_order_relaxed);
    s.try_submit_rejects =
        ctr_.try_submit_rejects.load(std::memory_order_relaxed);
    s.rebalances = ctr_.rebalances.load(std::memory_order_relaxed);
    s.rebalance_moved = ctr_.rebalance_moved.load(std::memory_order_relaxed);
    s.expired_points = ctr_.expired_points.load(std::memory_order_relaxed);
    s.replayed_groups = ctr_.replayed_groups.load(std::memory_order_relaxed);
    s.replayed_records =
        ctr_.replayed_records.load(std::memory_order_relaxed);
    s.replay_errors = ctr_.replay_errors.load(std::memory_order_relaxed);
    s.deadline_expired =
        ctr_.deadline_expired.load(std::memory_order_relaxed);
    s.recovered_epochs =
        ctr_.recovered_epochs.load(std::memory_order_relaxed);
    s.checkpoints = ctr_.checkpoints.load(std::memory_order_relaxed);
    s.checkpoint_errors =
        ctr_.checkpoint_errors.load(std::memory_order_relaxed);
    s.log_append_errors =
        ctr_.log_append_errors.load(std::memory_order_relaxed);
    s.results_retained = hub_->retained.load(std::memory_order_relaxed);
    s.results_evicted = hub_->evicted_total.load(std::memory_order_relaxed);
    s.pending_requests =
        in_flight_requests_.load(std::memory_order_relaxed);
    if (ring_) s.ingest_spins = ring_->spins();
    {
      const reclaim_counters rc = reclaim_.counters();
      s.retired_snapshots = rc.retired;
      s.reclaimed_snapshots = rc.reclaimed;
      s.reclaim_stalls = rc.reclaim_stalls;
      s.epoch_lag = rc.epoch_lag;
      s.limbo_snapshots = rc.limbo;
    }
    s.per_shard.reserve(cfg_.shards);
    for (const auto& lane : lanes_) {
      std::lock_guard<std::mutex> lk(lane->mu);
      shard_drain_stats ls = lane->stats;
      ls.queue_depth = lane->q.size();
      s.per_shard.push_back(ls);
    }
    for (const auto& c : caches_) s.cache.accumulate(c->stats());
    {
      const watch_stats ws = watches_->stats();
      s.active_watches = ws.active;
      s.watch_fires = ws.fires;
      s.watch_suppressed = ws.suppressed;
    }
    {
      std::lock_guard<std::mutex> lk(scratch_mu_);
      s.scratch_reuses = scratch_reuses_;
      s.scratch_allocs = scratch_allocs_;
    }
    s.watch_cache_hits = watch_cache_hits_.load(std::memory_order_relaxed);
    s.applied_epoch = applied_epoch_.load(std::memory_order_acquire);
    if (log_) {
      s.log_epoch = log_->head();
      const log_durable_stats ds = log_->durable_stats();
      s.log_syncs = ds.syncs;
      s.log_bytes = ds.bytes;
      s.truncated_groups = log_->recovery_stats().truncated_groups;
    }
    s.telemetry = tel_.report();
    return s;
  }

  /// Merged per-stage / per-shard latency histograms (the same report
  /// that rides in stats().telemetry, without the counter snapshot).
  telemetry_report telemetry_snapshot() const { return tel_.report(); }

  /// Spans currently resident in the trace ring, oldest first (empty
  /// unless the service runs at telemetry_level::trace).
  std::vector<trace_span> trace_events() const { return tel_.spans(); }

  /// Writes the sampled span ring as Chrome `chrome://tracing` /
  /// Perfetto-loadable trace JSON. Returns false (writing nothing) when
  /// the service is not at trace level; throws std::runtime_error when
  /// `path` cannot be opened. Call after the spans of interest retired
  /// (e.g. post-close()) — recording continues concurrently otherwise.
  bool dump_trace(const std::string& path) const {
    return tel_.write_trace_file(path);
  }

  /// Prometheus text exposition of this service's counters and stage
  /// histograms (see metrics_text(const service_stats&)).
  std::string metrics_text() const {
    return pargeo::query::metrics_text(stats());
  }

  /// Total points across shards. Quiescent callers only.
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->index().size();
    return n;
  }

  /// All stored points across shards (unordered). Quiescent callers only.
  std::vector<point<D>> gather() const {
    std::vector<point<D>> out;
    for (const auto& e : engines_) {
      auto part = e->index().gather();
      out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  // ---- replication (query/oplog.h) ----------------------------------------

  /// Primary side: attach the op log every committed write drain appends
  /// to. Call before bootstrap()/traffic (not thread-safe with serving);
  /// attach before bootstrap so replicas get the genesis build group.
  void attach_log(std::shared_ptr<op_log<D>> log) { log_ = std::move(log); }

  /// The attached op log (nullptr when none).
  const std::shared_ptr<op_log<D>>& log() const { return log_; }

  /// Replica side: enqueue one log group for replay. Groups must arrive
  /// in epoch order (a replica_set tail guarantees this); they flow
  /// through the drain thread and the per-shard lanes like native writes,
  /// so replayed state serializes with concurrent snapshot reads. Returns
  /// immediately; poll applied_epoch() for progress. Safe from any
  /// thread. Throws after close(), and std::invalid_argument when a
  /// record's shard does not exist here (log from a different topology).
  void apply_replayed(log_group<D> g) {
    for (const auto& rec : g.records) {
      if (rec.shard >= cfg_.shards) {
        throw std::invalid_argument(
            "apply_replayed: record routed to shard " +
            std::to_string(rec.shard) + " but this service has " +
            std::to_string(cfg_.shards));
      }
    }
    {
      std::lock_guard<std::mutex> lk(hub_->mu);
      if (hub_->closed.load(std::memory_order_relaxed)) {
        throw std::runtime_error(
            "query_service::apply_replayed after close()");
      }
      replay_q_.push_back(std::move(g));
      replay_pending_.fetch_add(1, std::memory_order_release);
      replay_enqueued_.fetch_add(1, std::memory_order_acq_rel);
      work_cv_.notify_one();
    }
    if (ring_) ring_->kick_consumer();  // lockfree drain parks on the ring
  }

  /// Blocks until every group handed to apply_replayed() so far has been
  /// fully applied (drain thread processed it, lane records retired).
  /// The barrier replicas need around a checkpoint resync, where
  /// applied_epoch() cannot serve: a rebuild group legitimately moves
  /// the epoch BACKWARDS, so an epoch-target wait can pass before the
  /// queue even drains. Safe from any thread; close() flushes the
  /// replay queue, so this never wedges on shutdown.
  void wait_replay_drained() {
    const std::uint64_t target =
        replay_enqueued_.load(std::memory_order_acquire);
    while (replay_done_.load(std::memory_order_acquire) < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    wait_lanes_idle();
  }

  /// Replica side: the last log epoch whose replay has been dispatched to
  /// the shard lanes (reads submitted after observing an epoch here are
  /// guaranteed to see its writes — per-shard FIFO puts their snapshot
  /// stamps behind the replay tasks). 0 until the first group applies.
  std::uint64_t applied_epoch() const {
    return applied_epoch_.load(std::memory_order_acquire);
  }

  /// Blocks until every lane task dispatched so far (native or replayed)
  /// has retired. applied_epoch() advances at *dispatch* — enough for
  /// routed reads, which stamp behind the replay tasks in lane order, but
  /// NOT for direct backend inspection (size()/gather()): those need this
  /// barrier first. Pure wait; safe from any thread. No-op for
  /// drain_mode::single, where groups apply synchronously.
  void wait_lanes_idle() {
    if (cfg_.drain != drain_mode::single) quiesce_lanes();
  }

  /// Replica side: log groups whose replay application threw (the
  /// replay_errors counter without the full stats() snapshot — cheap
  /// enough for a health poll).
  std::size_t replay_error_count() const {
    return ctr_.replay_errors.load(std::memory_order_relaxed);
  }

  // ---- durability (query/checkpoint.h) ------------------------------------

  /// Forces a checkpoint + log compaction now (the same operation the
  /// `checkpoint_every` cadence runs at drain boundaries). Requires
  /// log_dir; returns false when checkpointing is not configured or the
  /// write failed (`checkpoint_errors` counts it; the previous
  /// checkpoint stays live). Quiescent callers only — no tickets in
  /// flight (tests and the CLI call it between traffic phases; the
  /// drain thread calls the same path at boundaries).
  bool checkpoint_now() { return do_checkpoint(); }

  /// Rebuilds a service from a crashed primary's `log_dir`: loads the
  /// newest valid checkpoint (manifest fallback included), salvages the
  /// longest valid prefix of the durable log, bootstraps the shards
  /// from the checkpoint, replays the log tail above the checkpoint
  /// epoch through the normal replay pipeline, and re-opens the
  /// directory for durable appends — the returned service is a serving
  /// primary, byte-identically continuing the committed history.
  /// `cfg` must describe the same topology (backend, shards, policy)
  /// as the crashed service. `service_stats::recovered_epochs` and
  /// `::truncated_groups` record what was rebuilt and what the torn
  /// tail cost. Throws std::runtime_error when the directory holds
  /// neither a usable checkpoint nor a log that reaches back to the
  /// needed epoch (an unrecoverable gap), and on I/O failure.
  static std::unique_ptr<query_service> recover(const std::string& dir,
                                                service_config cfg) {
    const sync_policy sync = cfg.sync;
    const std::uint32_t sync_interval = cfg.sync_interval_groups;
    cfg.log_dir.clear();  // rebuild first; durable appends re-attach below
    auto svc = std::make_unique<query_service>(std::move(cfg));

    checkpoint_data<D> ck;
    const bool have_ck = read_latest_checkpoint<D>(dir, ck);

    log_recovery_stats rs{};
    std::shared_ptr<op_log<D>> log;
    try {
      log = op_log<D>::read_log(dir + "/oplog.pgol",
                                std::size_t{1} << 20, &rs);
    } catch (const std::exception&) {
      // Missing or header-damaged log: recover from the checkpoint
      // alone (a fresh directory recovers to an empty service).
      log = std::make_shared<op_log<D>>();
      log->reset_base(have_ck ? ck.epoch : 0);
    }

    if (have_ck) svc->bootstrap_from_checkpoint(ck);
    const std::uint64_t base = have_ck ? ck.epoch : 0;
    const std::uint64_t target = std::max(log->head(), base);
    if (log->head() > base) {
      // Throws on a replay gap (log starts past the checkpoint): that
      // directory cannot reproduce the committed history.
      for (auto& g : log->read_from(base)) {
        svc->apply_replayed(std::move(g));
      }
      while (svc->applied_epoch() < target) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    svc->wait_lanes_idle();

    // Re-attach durability: the salvaged log becomes the service's log
    // and the file is atomically rewritten (dropping any torn tail on
    // disk), ready for incremental appends. The service is externally
    // quiescent here — same contract as attach_log before traffic.
    log->open_durable(dir + "/oplog.pgol", sync, sync_interval);
    svc->log_ = std::move(log);
    svc->cfg_.log_dir = dir;
    svc->cfg_.sync = sync;
    svc->cfg_.sync_interval_groups = sync_interval;
    svc->ctr_.recovered_epochs.store(target, std::memory_order_relaxed);
    return svc;
  }

 private:
  struct pending_entry {
    std::uint64_t id;
    std::vector<request<D>> batch;
    /// Telemetry-clock stamp taken at submit (tel_.now_ns()): the time
    /// base for queue_wait and the ticket's end-to-end completion
    /// latency. One monotonic clock for every stamp in the pipeline —
    /// stage spans are ordered by construction.
    std::uint64_t submit_ns = 0;
    /// Absolute telemetry-clock deadline (0 = none): the drain sheds the
    /// entry instead of executing it once now_ns() passes this.
    std::uint64_t deadline_ns = 0;
    /// The ticket's completion record, co-owned with the submitter's
    /// handle (null for the synthetic TTL-expiry ticket, id 0).
    typename detail::completion_hub<D>::record_ptr rec;
  };

  /// A write/mixed drain group in flight on the shard lanes: routed once
  /// by the drain thread, executed per shard, merged and fulfilled by the
  /// last lane to finish.
  struct shard_group {
    std::vector<pending_entry> tickets;
    std::vector<request<D>> combined;               // group batches, FIFO
    std::vector<std::vector<std::size_t>> sub_idx;  // per shard -> combined
    std::vector<batch_result<D>> shard_res;         // per shard
    batch_result<D> result;  // responses/phases pre-stamped by the router
    std::atomic<std::size_t> remaining{0};          // lanes still executing
    std::size_t total = 0;
    std::uint64_t exec_start_ns = 0;  // routing done -> last lane finished
    /// Log epoch this group committed as (0: no log attached / no writes
    /// logged). Threaded through to ticket_result::commit_epoch.
    std::uint64_t commit_epoch = 0;
    /// Representative sampled ticket id (0 = group untraced): lanes gate
    /// their span appends on it, so the ring mutex stays off the
    /// unsampled path entirely.
    std::uint64_t trace_ticket = 0;
    std::mutex err_mu;
    std::exception_ptr error;  // first lane failure wins
  };

  /// A read-only drain group: routed by the drain thread, epoch-stamped by
  /// each involved lane (after that shard's earlier writes), executed by a
  /// snapshot-read executor.
  struct read_group {
    std::vector<pending_entry> tickets;
    std::vector<request<D>> combined;               // group batches, FIFO
    std::vector<std::vector<request<D>>> sub;       // per-shard requests
    std::vector<std::vector<std::size_t>> sub_idx;  // -> combined index
    std::vector<std::shared_ptr<const index_snapshot<D>>> snaps;
    std::atomic<std::size_t> stamps_remaining{0};
    std::size_t total = 0;
    std::uint64_t trace_ticket = 0;  // as in shard_group
    /// Continuous-query evaluation groups ride the read_group machinery
    /// (watch_seq != 0): no tickets, one combined request per affected
    /// watch (watch_ids is parallel to combined), results canonicalized
    /// and handed to the watch registry instead of a hub record.
    /// watch_start_ns is the commit boundary — the fire-latency base.
    std::uint64_t watch_seq = 0;
    std::uint64_t watch_start_ns = 0;
    std::vector<std::uint64_t> watch_ids;
    std::mutex err_mu;
    std::exception_ptr error;  // first stamping failure wins
  };

  /// A replayed log group in flight on the shard lanes (replica side):
  /// dispatched once by the drain thread, each involved lane re-issues its
  /// records in order, the last lane to finish closes the replay stage.
  struct replay_group {
    log_group<D> g;
    std::uint64_t epoch = 0;
    std::uint64_t start_ns = 0;  // drain-thread pickup -> last lane done
    std::atomic<std::size_t> remaining{0};
  };

  /// One unit of lane work: execute a sub-batch of a shard_group, stamp
  /// this shard's snapshot for a read_group, or re-issue this shard's
  /// records of a replayed log group.
  struct shard_task {
    std::shared_ptr<shard_group> exec;      // set for execute tasks
    std::shared_ptr<read_group> stamp;      // set for stamp tasks
    std::shared_ptr<replay_group> replay;   // set for replay tasks
    std::vector<request<D>> sub;            // execute: this lane's requests
    std::vector<std::size_t> replay_idx;    // replay: record indices, in order
    std::uint64_t enqueue_ns = 0;           // lane_wait stamp (telemetry on)
  };

  /// Per-shard executor lane: FIFO task queue + worker thread. `mu`
  /// guards q, busy, stats, shutdown; `cv` signals new work AND token
  /// releases. `busy` is the lane's execution token: a task may only be
  /// popped (front, under `mu`) by a thread that takes the token, and the
  /// token is held until the task retires — so this shard's tasks run one
  /// at a time, in queue order, whichever worker runs them. Under
  /// drain_mode::stealing that worker can be a sibling lane's. (The write
  /// gate that used to live here is gone: every backend's snapshots are
  /// isolated now, so readers never block this shard's writes.)
  struct shard_lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<shard_task> q;
    bool shutdown = false;
    bool busy = false;  // execution token (see above)
    shard_drain_stats stats;
    std::thread worker;
  };

  static bool batch_is_read_only(const std::vector<request<D>>& batch) {
    for (const auto& r : batch) {
      if (!is_read(r.kind)) return false;
    }
    return true;
  }

  // ---- scratch recycling --------------------------------------------------

  // Routing buffers (per-shard request/index vectors, combined streams)
  // cycle through a small pool instead of being reallocated every group:
  // the drain thread takes them, the lane/reader that consumed them gives
  // them back with capacity intact.
  std::vector<request<D>> take_req_vec() {
    std::lock_guard<std::mutex> lk(scratch_mu_);
    if (!spare_req_.empty()) {
      auto v = std::move(spare_req_.back());
      spare_req_.pop_back();
      ++scratch_reuses_;
      return v;
    }
    ++scratch_allocs_;
    return {};
  }
  void give_req_vec(std::vector<request<D>>&& v) {
    v.clear();
    std::lock_guard<std::mutex> lk(scratch_mu_);
    if (spare_req_.size() < scratch_pool_cap()) {
      spare_req_.push_back(std::move(v));
    }
  }
  std::vector<std::size_t> take_idx_vec() {
    std::lock_guard<std::mutex> lk(scratch_mu_);
    if (!spare_idx_.empty()) {
      auto v = std::move(spare_idx_.back());
      spare_idx_.pop_back();
      ++scratch_reuses_;
      return v;
    }
    ++scratch_allocs_;
    return {};
  }
  void give_idx_vec(std::vector<std::size_t>&& v) {
    v.clear();
    std::lock_guard<std::mutex> lk(scratch_mu_);
    if (spare_idx_.size() < scratch_pool_cap()) {
      spare_idx_.push_back(std::move(v));
    }
  }
  std::size_t scratch_pool_cap() const {
    // Enough for the groups that can be in flight at once (one routing +
    // one per lane + the read queue) without hoarding memory.
    return 4 * cfg_.shards + 8;
  }

  // ---- drain pipeline -----------------------------------------------------

  // The dedicated drainer: pops FIFO groups of same-kind tickets (read-only
  // vs writing, bounded by ingest_window requests), routes each group once,
  // and dispatches it — write/mixed groups to the shard lanes (per_shard)
  // or executed in place (single), read-only groups toward the snapshot
  // readers. Exits once closed and the queue is flushed. The two ingest
  // modes differ only in how tickets reach pending_: through the hub lock
  // (mutex) or through the MPSC ring into a drain-thread-local pending_
  // (lockfree); group formation and dispatch are shared.
  void drain_loop() {
    if (ring_) {
      drain_loop_lockfree();
    } else {
      drain_loop_mutex();
    }
  }

  void drain_loop_mutex() {
    for (;;) {
      formed_group f;
      {
        std::unique_lock<std::mutex> lk(hub_->mu);
        const auto work = [&] {
          return hub_->closed.load(std::memory_order_relaxed) ||
                 !pending_.empty() || !replay_q_.empty();
        };
        if (cfg_.point_ttl_ns > 0) {
          // TTL set: bounded wait, so expiry sweeps run without traffic.
          work_cv_.wait_for(lk, std::chrono::milliseconds(20), work);
        } else {
          work_cv_.wait(lk, work);
        }
        if (!replay_q_.empty()) {
          // Replica side: replayed log groups take priority over local
          // tickets (replicas serve reads; staying fresh is the product).
          // One per iteration so close() and TTL still interleave.
          log_group<D> rg = std::move(replay_q_.front());
          replay_q_.pop_front();
          replay_pending_.fetch_sub(1, std::memory_order_acq_rel);
          lk.unlock();
          process_replay(std::move(rg));
          continue;
        }
        if (pending_.empty()) {
          if (hub_->closed.load(std::memory_order_relaxed)) {
            advance_reclaim();  // final sweep before the thread exits
            return;
          }
          lk.unlock();
          maybe_expire();
          advance_reclaim();  // idle tick: drain the limbo list
          continue;
        }
        f = form_group();
      }
      dispatch_formed(std::move(f));
    }
  }

  // Lock-free mode: tickets arrive through ring_; pending_ is
  // drain-thread-local here, so group formation needs no lock at all.
  // Exit requires closed AND no producer mid-push (submit_entrants_) AND
  // the ring, pending_, and replay queue all flushed.
  void drain_loop_lockfree() {
    const auto park = std::chrono::nanoseconds(
        cfg_.point_ttl_ns > 0 ? std::chrono::milliseconds(20)
                              : std::chrono::milliseconds(50));
    for (;;) {
      pending_entry e;
      while (ring_->try_pop(e)) pending_.push_back(std::move(e));
      if (replay_pending_.load(std::memory_order_acquire) > 0) {
        log_group<D> rg;
        {
          std::lock_guard<std::mutex> lk(hub_->mu);
          if (replay_q_.empty()) continue;
          rg = std::move(replay_q_.front());
          replay_q_.pop_front();
        }
        replay_pending_.fetch_sub(1, std::memory_order_acq_rel);
        process_replay(std::move(rg));
        continue;
      }
      if (pending_.empty()) {
        if (hub_->closed.load(std::memory_order_seq_cst) &&
            submit_entrants_.load(std::memory_order_seq_cst) == 0 &&
            ring_->empty() &&
            replay_pending_.load(std::memory_order_acquire) == 0) {
          advance_reclaim();  // final sweep before the thread exits
          return;
        }
        maybe_expire();
        advance_reclaim();  // idle tick: drain the limbo list
        ring_->consumer_wait(park, [&] {
          return !ring_->empty() ||
                 replay_pending_.load(std::memory_order_acquire) > 0 ||
                 (hub_->closed.load(std::memory_order_seq_cst) &&
                  submit_entrants_.load(std::memory_order_seq_cst) == 0);
        });
        continue;
      }
      dispatch_formed(form_group());
    }
  }

  /// One drain group pulled off pending_, plus the deadline-expired
  /// entries set aside while forming it.
  struct formed_group {
    std::vector<pending_entry> group;
    std::vector<pending_entry> expired;
    std::size_t total = 0;
    bool read_kind = false;
  };

  // Forms one same-kind group (read-only vs writing, bounded by
  // ingest_window requests) from the front of pending_. Deadline shedding
  // happens here: an entry whose deadline already passed is pulled aside
  // instead of joining the group (it neither breaks same-kind grouping
  // nor counts against the window). Caller owns pending_ exclusively —
  // under hub_->mu in mutex mode, by thread-locality in lockfree mode.
  formed_group form_group() {
    formed_group f;
    const std::uint64_t shed_now_ns = tel_.now_ns();
    const auto entry_expired = [&](const pending_entry& e) {
      return e.deadline_ns != 0 && e.deadline_ns <= shed_now_ns;
    };
    while (!pending_.empty() && entry_expired(pending_.front())) {
      f.expired.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    if (pending_.empty()) return f;
    f.read_kind =
        cfg_.read_threads > 0 && batch_is_read_only(pending_.front().batch);
    f.group.push_back(std::move(pending_.front()));
    pending_.pop_front();
    f.total = f.group.front().batch.size();
    while (!pending_.empty()) {
      const auto& next = pending_.front();
      if (entry_expired(next)) {
        f.expired.push_back(std::move(pending_.front()));
        pending_.pop_front();
        continue;
      }
      if (f.total + next.batch.size() > cfg_.ingest_window) break;
      if (cfg_.read_threads > 0 &&
          batch_is_read_only(next.batch) != f.read_kind) {
        break;
      }
      f.total += next.batch.size();
      f.group.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    return f;
  }

  // Dispatches one formed group (no locks held): fulfil the shed entries,
  // stamp queue_wait, route, and run the write-boundary hooks.
  void dispatch_formed(formed_group f) {
    shed_expired(std::move(f.expired));
    if (f.group.empty()) {
      maybe_expire();  // the whole window had expired
      return;
    }
    if (tel_.enabled()) {
      // One dequeue stamp covers the whole group: every ticket left the
      // ingest queue at this instant, so queue_wait = dequeue - submit
      // per ticket (both stamps on the telemetry clock).
      const std::uint64_t dq = tel_.now_ns();
      for (const auto& e : f.group) {
        const std::uint64_t wait_ns = dq - e.submit_ns;
        tel_.record(stage::queue_wait, wait_ns);
        if (tel_.sampled(e.id)) {
          tel_.add_span("queue_wait", tel_.drain_track(), e.submit_ns,
                        wait_ns, e.id);
        }
      }
    }
    if (f.read_kind) {
      route_read_group(std::move(f.group), f.total);
      // Reads are not write boundaries, but a read-heavy stream must
      // not starve expiry: the idle-timeout sweep only runs when the
      // queue stays empty for a whole bounded wait, which steady read
      // traffic prevents indefinitely.
      maybe_expire();
    } else {
      begin_write_group();
      if (cfg_.drain != drain_mode::single) {
        dispatch_shard_group(std::move(f.group), f.total);
      } else {
        run_sync_group(std::move(f.group), f.total);
      }
      // A committed write group is a watch boundary: re-evaluate the
      // standing queries the touched shards serve, then retire points
      // whose TTL elapsed (itself another boundary). Write groups also
      // move mass between shards' resident sets, and a drain boundary
      // is the only point where stripes may be re-derived (routing and
      // pruning stay mutually consistent group to group). It is also a
      // reclaim point: the structure versions this group superseded go
      // through one epoch advance + limbo sweep.
      schedule_watch_eval();
      maybe_expire();
      maybe_rebalance();
      maybe_checkpoint();
      advance_reclaim();
    }
  }

  // One epoch advance + limbo sweep (query/epoch_reclaim.h), timed as the
  // reclaim stage. Drain thread only: deferred destruction of superseded
  // index structure lands here, off the reader tail-latency path.
  void advance_reclaim() {
    const std::uint64_t t0 = tel_.enabled() ? tel_.now_ns() : 0;
    reclaim_.advance_and_reclaim();
    if (tel_.enabled()) tel_.record(stage::reclaim, tel_.now_ns() - t0);
  }

  // ---- per-shard drain pipelines ------------------------------------------

  // Routes a write/mixed group once and fans its per-shard sub-batches out
  // to the lanes, then returns immediately — the drain thread never
  // executes. Phase structure (response kinds/ids, read/write counts) is
  // pre-stamped here so lanes only produce rows.
  void dispatch_shard_group(std::vector<pending_entry> tickets,
                            std::size_t total) {
    const std::uint64_t route_start = tel_.enabled() ? tel_.now_ns() : 0;
    auto g = std::make_shared<shard_group>();
    g->tickets = std::move(tickets);
    g->total = total;
    g->trace_ticket = pick_trace_ticket(g->tickets);
    g->exec_start_ns = route_start;  // re-stamped before the lane fan-out
    g->combined = take_req_vec();
    g->combined.reserve(total);
    for (const auto& e : g->tickets) {
      g->combined.insert(g->combined.end(), e.batch.begin(), e.batch.end());
    }
    const bool had_bounds = bounds_set_;
    if (cfg_.policy == shard_policy::spatial && !bounds_set_) {
      derive_bounds_from_writes(g->combined);
    }
    stamp_phases(g->combined, g->result);

    g->sub_idx.resize(cfg_.shards);
    g->shard_res.resize(cfg_.shards);
    std::vector<std::vector<request<D>>> sub(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      sub[s] = take_req_vec();
      g->sub_idx[s] = take_idx_vec();
    }
    for (std::size_t i = 0; i < g->combined.size(); ++i) {
      const auto& r = g->combined[i];
      if (is_read(r.kind)) {
        for (std::size_t s = 0; s < cfg_.shards; ++s) {
          if (!shard_serves(s, r)) continue;
          sub[s].push_back(r);
          g->sub_idx[s].push_back(i);
        }
      } else {
        const std::size_t s = owner_of(r.p);
        sub[s].push_back(r);
        g->sub_idx[s].push_back(i);
        note_routed_write(s, r);
      }
    }

    if (tel_.enabled()) {
      const std::uint64_t route_end = tel_.now_ns();
      tel_.record(stage::route, route_end - route_start);
      if (g->trace_ticket) {
        tel_.add_span("route", tel_.drain_track(), route_start,
                      route_end - route_start, g->trace_ticket);
      }
    }

    if (log_) {
      // Log the run structure each lane will actually execute: phase-cut
      // every routed sub-batch into its same-kind write runs (reads break
      // runs but are not logged). Appending before the fan-out keeps the
      // log in commit order (this thread is the only appender) and gives
      // the group its epoch for completion floors.
      // A failed append must not unwind the drain thread: the group's
      // tickets fail (their writes never committed — nothing was
      // applied yet), the failure latches, and every later write group
      // fails fast. For writes this service now behaves like a dead
      // process; reads keep serving what was committed.
      if (log_failed_) {
        for (auto& v : sub) give_req_vec(std::move(v));
        g->error = std::make_exception_ptr(std::runtime_error(
            "query_service: durable log failed — writes cannot commit"));
        finalize_shard_group(g);
        return;
      }
      try {
        g->commit_epoch = append_log_group(
            [&](log_group<D>& lg) {
              for (std::size_t s = 0; s < cfg_.shards; ++s) {
                append_write_runs(lg, s, sub[s], 0, sub[s].size());
              }
            },
            !had_bounds && bounds_set_);
      } catch (...) {
        note_log_failure();
        for (auto& v : sub) give_req_vec(std::move(v));
        g->error = std::current_exception();
        finalize_shard_group(g);
        return;
      }
    }

    std::size_t active = 0;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (!sub[s].empty()) ++active;
    }
    if (active == 0) {  // every ticket in the group had an empty batch
      for (auto& v : sub) give_req_vec(std::move(v));
      finalize_shard_group(g);
      return;
    }
    g->remaining.store(active, std::memory_order_relaxed);
    g->exec_start_ns = tel_.now_ns();
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (sub[s].empty()) {
        give_req_vec(std::move(sub[s]));
        continue;
      }
      shard_task task;
      task.exec = g;
      task.sub = std::move(sub[s]);
      enqueue_lane_task(s, std::move(task));
    }
  }

  void enqueue_lane_task(std::size_t s, shard_task task) {
    if (tel_.enabled()) task.enqueue_ns = tel_.now_ns();
    auto& lane = *lanes_[s];
    {
      std::lock_guard<std::mutex> lk(lane.mu);
      lane.q.push_back(std::move(task));
      lane.stats.max_queue_depth =
          std::max(lane.stats.max_queue_depth, lane.q.size());
    }
    lane.cv.notify_one();
  }

  // Lane worker: executes this shard's sub-batches and snapshot stamps in
  // FIFO order until shutdown (own queue flushed first; a task in flight
  // on a thief completes on the thief's thread). Under drain_mode::stealing
  // an idle worker periodically rescans the sibling queues and drains the
  // deepest one instead of blocking.
  void shard_loop(std::size_t s) {
    auto& lane = *lanes_[s];
    const bool stealing = cfg_.drain == drain_mode::stealing;
    bool just_stole = false;  // successful thief: rescan without sleeping
    for (;;) {
      shard_task task;
      bool have = false;
      {
        std::unique_lock<std::mutex> lk(lane.mu);
        const auto can_pop = [&] { return !lane.q.empty() && !lane.busy; };
        const auto can_exit = [&] {
          return lane.shutdown && lane.q.empty() && !lane.busy;
        };
        if (stealing) {
          // Bounded wait so an idle thief keeps rescanning siblings (a
          // thief holding our token notifies cv when it releases); after
          // a successful steal, go straight back for the next task.
          if (!can_pop() && !can_exit() && !just_stole) {
            lane.cv.wait_for(lk, std::chrono::nanoseconds(cfg_.steal_poll_ns),
                             [&] { return can_pop() || can_exit(); });
          }
        } else {
          lane.cv.wait(lk, [&] { return can_pop() || can_exit(); });
        }
        if (can_pop()) {
          lane.busy = true;
          task = std::move(lane.q.front());
          lane.q.pop_front();
          have = true;
        } else if (can_exit()) {
          return;
        }
      }
      if (have) {
        execute_lane_task(s, std::move(task));
        just_stole = false;
      } else {
        just_stole = stealing && try_steal(s);
      }
    }
  }

  // Executes one task popped from shard s's queue (by its own worker or a
  // thief holding the lane's token) and releases the token. Token release
  // is what wakes the owner worker, blocked writers waiting out pins, and
  // quiesce_lanes().
  void execute_lane_task(std::size_t s, shard_task task) {
    if (tel_.enabled() && task.enqueue_ns != 0) {
      const std::uint64_t wait_ns = tel_.now_ns() - task.enqueue_ns;
      tel_.record_shard(s, stage::lane_wait, wait_ns);
      const std::uint64_t tt = task.exec    ? task.exec->trace_ticket
                               : task.stamp ? task.stamp->trace_ticket
                                            : 0;
      if (tt) {
        tel_.add_span("lane_wait", tel_.lane_track(s), task.enqueue_ns,
                      wait_ns, tt, static_cast<std::int32_t>(s));
      }
    }
    if (task.exec) {
      run_lane_subbatch(s, std::move(task));
    } else if (task.stamp) {
      run_lane_stamp(s, std::move(task));
    } else {
      run_lane_replay(s, std::move(task));
    }
    auto& lane = *lanes_[s];
    {
      std::lock_guard<std::mutex> lk(lane.mu);
      lane.busy = false;
    }
    lane.cv.notify_all();
  }

  // Work stealing (drain_mode::stealing): an idle lane worker scans its
  // siblings and drains one task from the deepest un-held queue. The task
  // stays a shard-`victim` task — it executes against engines_[victim]
  // under the victim lane's execution token, so per-shard FIFO and the
  // single-writer discipline are exactly what they were; only the
  // executing thread changes. Returns true if a task was stolen and run.
  bool try_steal(std::size_t thief) {
    std::size_t victim = thief;
    std::size_t depth = 0;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (s == thief) continue;
      auto& lane = *lanes_[s];
      std::lock_guard<std::mutex> lk(lane.mu);
      if (!lane.busy && lane.q.size() > depth) {
        depth = lane.q.size();
        victim = s;
      }
    }
    {
      auto& me = *lanes_[thief];
      std::lock_guard<std::mutex> lk(me.mu);
      ++me.stats.steal_scans;
    }
    if (victim == thief) return false;
    shard_task task;
    {
      auto& lane = *lanes_[victim];
      std::lock_guard<std::mutex> lk(lane.mu);
      if (lane.busy || lane.q.empty()) return false;  // raced; rescan later
      lane.busy = true;
      task = std::move(lane.q.front());
      lane.q.pop_front();
    }
    {
      auto& me = *lanes_[thief];
      std::lock_guard<std::mutex> lk(me.mu);
      ++me.stats.steals;
    }
    execute_lane_task(victim, std::move(task));
    return true;
  }

  // Executes one lane's sub-batch of a shard_group, records the lane's
  // counters, and — if this lane finishes the group — merges and fulfils
  // it. Writes never wait on readers: every backend's snapshots are
  // isolated, and superseded structure goes through the epoch reclaimer.
  void run_lane_subbatch(std::size_t s, shard_task task) {
    auto g = std::move(task.exec);
    // One ns delta feeds both the execute_write histogram and the legacy
    // execute_seconds counter — they cannot disagree.
    const std::uint64_t t0 = tel_.now_ns();
    batch_result<D> res;
    try {
      res = execute_shard_batch(s, task.sub);
    } catch (...) {
      std::lock_guard<std::mutex> lk(g->err_mu);
      if (!g->error) g->error = std::current_exception();
    }
    const std::uint64_t dur_ns = tel_.now_ns() - t0;
    const double secs = static_cast<double>(dur_ns) * 1e-9;
    if (tel_.enabled()) {
      tel_.record_shard(s, stage::execute_write, dur_ns);
      if (g->trace_ticket) {
        tel_.add_span("execute", tel_.lane_track(s), t0, dur_ns,
                      g->trace_ticket, static_cast<std::int32_t>(s));
      }
    }
    {
      auto& lane = *lanes_[s];
      std::lock_guard<std::mutex> lk(lane.mu);
      ++lane.stats.num_drains;
      lane.stats.num_requests += task.sub.size();
      lane.stats.execute_seconds += secs;
    }
    g->shard_res[s] = std::move(res);
    give_req_vec(std::move(task.sub));
    if (g->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finalize_shard_group(g);
    }
  }

  // Stamps this shard's epoch snapshot for a read group; the lane that
  // stamps last hands the group to the snapshot readers. A failed
  // snapshot (allocation) fails the group instead of unwinding the lane
  // thread.
  void run_lane_stamp(std::size_t s, shard_task task) {
    auto g = std::move(task.stamp);
    const std::uint64_t t0 = g->trace_ticket ? tel_.now_ns() : 0;
    try {
      stamp_shard_snapshot(*g, s);
    } catch (...) {
      std::lock_guard<std::mutex> lk(g->err_mu);
      if (!g->error) g->error = std::current_exception();
    }
    if (g->trace_ticket) {
      tel_.add_span("stamp", tel_.lane_track(s), t0, tel_.now_ns() - t0,
                    g->trace_ticket, static_cast<std::int32_t>(s));
    }
    if (g->stamps_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      hand_off_read_group(std::move(g));
    }
  }

  // ---- op-log emission (primary) and replay (replica) ---------------------

  // Phase-cuts sub[begin, end) into its same-kind maximal write runs (the
  // exact cut rule execute_phases applies: a run extends while the kind
  // repeats; ANY read breaks it) and appends one log record per run.
  static void append_write_runs(log_group<D>& lg, std::size_t s,
                                const std::vector<request<D>>& sub,
                                std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    while (i < end) {
      if (is_read(sub[i].kind)) {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < end && sub[j].kind == sub[i].kind) ++j;
      log_record<D> rec;
      rec.shard = static_cast<std::uint32_t>(s);
      rec.kind = sub[i].kind == op::insert ? log_op::insert : log_op::erase;
      rec.pts.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) rec.pts.push_back(sub[k].p);
      lg.records.push_back(std::move(rec));
      i = j;
    }
  }

  // Assembles (via `fill`) and appends one log group, with the current
  // stripe bounds attached when `with_bounds`; origin comes from the
  // drain-thread scratch next_group_origin_. Returns the epoch for
  // completion floors: the new group's epoch, or the current head when
  // nothing needed logging (a writeless group observes everything up to
  // head). The append is timed as the `replicate` stage. Drain thread
  // only (single appender == log order is commit order).
  template <class Fill>
  std::uint64_t append_log_group(Fill&& fill, bool with_bounds) {
    const std::uint64_t r0 = tel_.now_ns();
    log_group<D> lg;
    lg.origin = next_group_origin_;
    if (with_bounds) {
      lg.has_bounds = true;
      lg.split_dim = split_dim_;
      lg.cuts = bounds_;
    }
    fill(lg);
    if (lg.records.empty() && !lg.has_bounds) return log_->head();
    const std::uint64_t epoch = log_->append(std::move(lg));
    if (tel_.enabled()) tel_.record(stage::replicate, tel_.now_ns() - r0);
    return epoch;
  }

  // ---- durability: checkpoint + recovery helpers ---------------------------

  // Latches log_failed_ (drain-thread flag: later write groups fail fast
  // without touching the dead log) and counts the error. The group whose
  // append failed was already failed by the caller.
  void note_log_failure() {
    log_failed_ = true;
    ctr_.log_append_errors.fetch_add(1, std::memory_order_relaxed);
  }

  // Drain thread, after each write group: checkpoint every
  // cfg_.checkpoint_every write groups.
  void maybe_checkpoint() {
    if (cfg_.checkpoint_every == 0 || cfg_.log_dir.empty() || !log_) return;
    if (++write_groups_since_ck_ < cfg_.checkpoint_every) return;
    write_groups_since_ck_ = 0;
    do_checkpoint();
  }

  // Serializes per-shard resident state at the current log head into an
  // atomic on-disk checkpoint, then compacts the log below that epoch.
  // Quiesces the lanes first so the gather is consistent with head (a
  // single-appender invariant: nothing commits between head() and the
  // gathers). A failed write counts checkpoint_errors and leaves the
  // previous checkpoint and the full log intact.
  bool do_checkpoint() {
    if (!log_ || cfg_.log_dir.empty()) return false;
    if (cfg_.drain != drain_mode::single) quiesce_lanes();
    checkpoint_data<D> ck;
    ck.epoch = log_->head();
    ck.bounds_set = bounds_set_;
    ck.split_dim = split_dim_;
    ck.cuts = bounds_;
    ck.shard_points.resize(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      ck.shard_points[s] = engines_[s]->index().gather();
    }
    try {
      write_checkpoint<D>(cfg_.log_dir, ck);
    } catch (...) {
      ctr_.checkpoint_errors.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    log_->compact(ck.epoch);
    ctr_.checkpoints.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Recovery bootstrap: rebuilds the engines directly from checkpoint
  // state. Deliberately NOT logged — the checkpoint replaces the log
  // prefix it summarizes (recover() re-attaches the salvaged log after).
  // Externally quiescent callers only (no traffic exists during recovery).
  void bootstrap_from_checkpoint(const checkpoint_data<D>& ck) {
    if (ck.shard_points.size() != cfg_.shards) {
      throw std::invalid_argument(
          "query_service: checkpoint shard count does not match config");
    }
    if (ck.bounds_set) {
      split_dim_ = ck.split_dim;
      bounds_ = ck.cuts;
      bounds_set_ = true;
    }
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      engines_[s]->bootstrap(ck.shard_points[s]);
      resident_est_[s] = ck.shard_points[s].size();
    }
    if (cfg_.point_ttl_ns > 0) {
      // Checkpointed points restart one full TTL window from now (the
      // original deadlines are not serialized; erring long keeps data).
      std::lock_guard<std::mutex> lk(ttl_mu_);
      ttl_q_.clear();
      const std::uint64_t deadline = ttl_now_() + cfg_.point_ttl_ns;
      for (const auto& shard : ck.shard_points) {
        for (const auto& p : shard) ttl_q_.emplace_back(deadline, p);
      }
    }
    // With no log tail to replay, recovery's completion floor is the
    // checkpoint epoch itself.
    applied_epoch_.store(ck.epoch, std::memory_order_release);
  }

  // Replica side, drain thread: applies one replayed log group. Ordinary
  // groups fan out per shard to the lanes (FIFO behind earlier work);
  // bounds-carrying groups (bootstrap, rebalance) mirror the primary's
  // rebalance discipline — quiesce the lanes, apply inline, swap the
  // stripe bounds — because changing routing geometry under in-flight
  // reads would break pruning. applied_epoch_ advances at dispatch: a
  // read routed after that point stamps behind the replay tasks on every
  // shard it touches, which is the read-your-writes guarantee routers
  // build on.
  void process_replay(log_group<D> g) {
    const std::uint64_t t0 = tel_.now_ns();
    const std::uint64_t epoch = g.epoch;
    if (g.has_bounds || cfg_.drain == drain_mode::single) {
      if (g.has_bounds && cfg_.drain != drain_mode::single) quiesce_lanes();
      bool failed = false;
      try {
        for (const auto& rec : g.records) {
          apply_log_record(rec);
        }
      } catch (...) {
        failed = true;  // counted; the replica keeps serving what it has
      }
      if (g.has_bounds) {
        split_dim_ = g.split_dim;
        bounds_ = g.cuts;
        bounds_set_ = true;
      }
      applied_epoch_.store(epoch, std::memory_order_release);
      if (failed) {
        ctr_.replay_errors.fetch_add(1, std::memory_order_relaxed);
      }
      finish_replay_group(g.records.size(), t0);
      replay_done_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    auto rg = std::make_shared<replay_group>();
    rg->epoch = epoch;
    rg->start_ns = t0;
    rg->g = std::move(g);
    std::vector<std::vector<std::size_t>> per(cfg_.shards);
    for (std::size_t i = 0; i < rg->g.records.size(); ++i) {
      per[rg->g.records[i].shard].push_back(i);
    }
    std::size_t active = 0;
    for (const auto& v : per) {
      if (!v.empty()) ++active;
    }
    if (active == 0) {
      applied_epoch_.store(epoch, std::memory_order_release);
      finish_replay_group(0, t0);
      replay_done_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    rg->remaining.store(active, std::memory_order_relaxed);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (per[s].empty()) continue;
      shard_task task;
      task.replay = rg;
      task.replay_idx = std::move(per[s]);
      enqueue_lane_task(s, std::move(task));
    }
    applied_epoch_.store(epoch, std::memory_order_release);
    // Dispatch-complete: wait_replay_drained() pairs this with
    // wait_lanes_idle() to cover the in-lane tail.
    replay_done_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Re-issues this shard's records of a replayed log group in log order,
  // under the lane's execution token (replayed writes serialize with
  // snapshot stamps exactly like native writes). The last lane to finish
  // closes the group's replay stage.
  void run_lane_replay(std::size_t s, shard_task task) {
    auto rg = std::move(task.replay);
    const std::uint64_t t0 = tel_.now_ns();
    bool failed = false;
    std::size_t pts = 0;
    try {
      for (const std::size_t i : task.replay_idx) {
        pts += rg->g.records[i].pts.size();
        apply_log_record(rg->g.records[i]);
      }
    } catch (...) {
      failed = true;  // counted; the replica keeps serving what it has
    }
    const std::uint64_t dur_ns = tel_.now_ns() - t0;
    if (tel_.enabled()) tel_.record_shard(s, stage::execute_write, dur_ns);
    {
      auto& lane = *lanes_[s];
      std::lock_guard<std::mutex> lk(lane.mu);
      ++lane.stats.num_drains;
      lane.stats.num_requests += pts;
      lane.stats.execute_seconds += static_cast<double>(dur_ns) * 1e-9;
    }
    if (failed) {
      ctr_.replay_errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (rg->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finish_replay_group(rg->g.records.size(), rg->start_ns);
    }
  }

  // One recorded backend call, re-issued verbatim. Identical call
  // sequences produce identical tree structure (and so identical k-NN tie
  // order) — the byte-identical convergence guarantee rests here.
  void apply_log_record(const log_record<D>& rec) {
    fault::fire(fault::kReplicaApply);
    auto& engine = *engines_[rec.shard];
    switch (rec.kind) {
      case log_op::build:
        engine.bootstrap(rec.pts);
        break;
      case log_op::insert:
        engine.index().batch_insert(rec.pts);
        break;
      case log_op::erase:
        engine.index().batch_erase(rec.pts);
        break;
    }
  }

  void finish_replay_group(std::size_t records, std::uint64_t start_ns) {
    if (tel_.enabled()) tel_.record(stage::replay, tel_.now_ns() - start_ns);
    ctr_.replayed_groups.fetch_add(1, std::memory_order_relaxed);
    ctr_.replayed_records.fetch_add(records, std::memory_order_relaxed);
  }

  // Fully stamped groups go to the reader pool — except that watch
  // groups can exist with read_threads == 0 (ticket read groups cannot:
  // the drainer only splits them off when the pool exists), and nothing
  // would ever drain read_q_ then, so they evaluate inline on the thread
  // that finished stamping (a lane worker, or the drain thread in single
  // mode — snapshot-only reads are safe on either).
  void hand_off_read_group(std::shared_ptr<read_group> g) {
    if (cfg_.read_threads > 0) {
      enqueue_read_task(std::move(g));
    } else {
      run_read_task(std::move(g));
    }
  }

  void stamp_shard_snapshot(read_group& g, std::size_t s) {
    g.snaps[s] = engines_[s]->index().snapshot();
    // Every backend's snapshot is isolated now (the bdltree write gate is
    // gone); the epoch reclaimer, not a pin count, covers the structure
    // versions the snapshot references.
    assert(g.snaps[s]->isolated());
  }

  // Executes one lane's sub-batch with the engine's phase discipline:
  // write runs go to the backend as batched updates, read runs through the
  // cache-intercepted read path against the live index at its current
  // epoch (stable here — only this lane writes this shard).
  batch_result<D> execute_shard_batch(std::size_t s,
                                      const std::vector<request<D>>& sub) {
    fault::fire(fault::kLaneExecute);
    auto& engine = *engines_[s];
    batch_result<D> res;
    execute_phases<D>(sub, res.responses, res.stats,
                      [&](std::size_t begin, std::size_t end, bool read) {
                        if (read) {
                          run_shard_reads(s, sub, begin, end, engine.index(),
                                          engine.index().epoch(),
                                          res.responses);
                        } else {
                          engine.apply_write_phase(sub, begin, end);
                        }
                      });
    return res;
  }

  // Merges per-shard rows into the pre-stamped group result and fulfils
  // every ticket. Called by the last lane to finish (or the router, for
  // all-empty groups).
  void finalize_shard_group(const std::shared_ptr<shard_group>& g) {
    const double secs =
        static_cast<double>(tel_.now_ns() - g->exec_start_ns) * 1e-9;
    std::exception_ptr error = g->error;  // all lanes are done; no races
    if (!error) {
      const std::uint64_t m0 = tel_.enabled() ? tel_.now_ns() : 0;
      merge_shard_reads(g->combined, 0, g->combined.size(), g->sub_idx,
                        g->shard_res, g->result.responses);
      if (tel_.enabled()) {
        const std::uint64_t m_ns = tel_.now_ns() - m0;
        tel_.record(stage::merge, m_ns);
        if (g->trace_ticket) {
          tel_.add_span("merge", tel_.fulfil_track(), m0, m_ns,
                        g->trace_ticket);
        }
      }
      // Phases pipeline across lanes, so per-phase wall-clock is not
      // individually measurable: apportion the group's clock by request
      // count (sums back to the group total).
      g->result.stats.seconds = secs;
      for (auto& ph : g->result.stats.phases) {
        ph.seconds = g->total > 0
                         ? secs * static_cast<double>(ph.num_requests) /
                               static_cast<double>(g->total)
                         : 0;
      }
    }
    give_req_vec(std::move(g->combined));
    for (auto& idx : g->sub_idx) give_idx_vec(std::move(idx));
    fulfill_group(std::move(g->tickets), g->total, std::move(g->result),
                  error, /*snapshot_epoch=*/0, /*read_group=*/false,
                  /*lagged=*/false, secs, g->commit_epoch, g->trace_ticket);
  }

  // Pre-stamps a group's phase structure (response kinds/phase ids,
  // read/write counts, phase list) without executing anything; lanes fill
  // in the rows and the finalizer fills in the timings.
  static void stamp_phases(const std::vector<request<D>>& combined,
                           batch_result<D>& result) {
    execute_phases<D>(combined, result.responses, result.stats,
                      [](std::size_t, std::size_t, bool) {});
  }

  // Spatial stripes not carved yet: derive them from this group's write
  // payloads (the first mass to ever enter the index). Bounds are fixed
  // from then on, so routing and read pruning stay mutually consistent.
  void derive_bounds_from_writes(const std::vector<request<D>>& combined) {
    std::vector<point<D>> pts;
    for (const auto& r : combined) {
      if (!is_read(r.kind)) pts.push_back(r.p);
    }
    if (!pts.empty()) set_spatial_bounds(pts);
  }

  // ---- online stripe rebalancing ------------------------------------------

  // Routed-write bookkeeping, drain-thread only (like the bounds): cheap
  // per-shard resident estimates for the rebalance trigger (inserts
  // routed in minus erases routed in, clamped at zero — no-op erases
  // drift the estimate, but rebalance_stripes() re-checks against exact
  // sizes before touching anything), the touched-shard mask
  // schedule_watch_eval filters watches through, and the TTL entry every
  // insert leaves behind (deadline stamped once per group by
  // begin_write_group, so the queue stays deadline-ordered).
  void note_routed_write(std::size_t s, const request<D>& r) {
    ++writes_since_rebalance_;
    write_touched_[s] = 1;
    if (r.kind == op::insert) {
      ++resident_est_[s];
      if (cfg_.point_ttl_ns > 0) {
        std::lock_guard<std::mutex> lk(ttl_mu_);
        ttl_q_.emplace_back(ttl_batch_deadline_, r.p);
      }
    } else if (resident_est_[s] > 0) {
      --resident_est_[s];
    }
  }

  // Drain-thread prologue for one write-group dispatch: resets the
  // touched-shard mask schedule_watch_eval reads and stamps the TTL
  // deadline every insert routed in this group will carry.
  void begin_write_group() {
    std::fill(write_touched_.begin(), write_touched_.end(), 0);
    if (cfg_.point_ttl_ns > 0) {
      ttl_batch_deadline_ = ttl_now_() + cfg_.point_ttl_ns;
    }
  }

  static bool skewed_sizes(const std::vector<std::size_t>& sizes,
                           double threshold) {
    std::size_t total = 0, maxv = 0;
    for (std::size_t n : sizes) {
      total += n;
      maxv = std::max(maxv, n);
    }
    if (total == 0) return false;
    const double mean =
        static_cast<double>(total) / static_cast<double>(sizes.size());
    return static_cast<double>(maxv) > threshold * mean;
  }

  // Drain-boundary trigger: estimates crossed the configured max/mean
  // imbalance. The backoff counts writes routed since the last attempt
  // (NOT resident-total drift — a balanced insert/erase stream with a
  // drifting hot region keeps the total flat while the skew rebuilds, and
  // must still be chased): enough new writes to plausibly change the
  // balance, and a much longer leash after a futile attempt, so an
  // un-fixable skew (fewer distinct coordinates than shards, say) cannot
  // quiesce the pipeline on every group.
  void maybe_rebalance() {
    if (cfg_.policy != shard_policy::spatial || cfg_.shards < 2) return;
    if (cfg_.rebalance_threshold <= 1.0 || !bounds_set_) return;
    std::size_t total = 0;
    for (std::size_t n : resident_est_) total += n;
    if (total < cfg_.rebalance_min_points) return;
    if (rebalance_attempted_) {
      const std::size_t leash =
          last_rebalance_futile_ ? std::max<std::size_t>(256, total / 4)
                                 : std::max<std::size_t>(64, total / 16);
      if (writes_since_rebalance_ < leash) return;
    }
    if (!skewed_sizes(resident_est_, cfg_.rebalance_threshold)) return;
    rebalance_stripes();
  }

  // Blocks until every lane queue is empty and no task is executing.
  // Drain-thread only — nothing else enqueues lane work, so quiescence is
  // stable once reached (snapshot readers may still be in flight; their
  // isolated snapshots keep answering at their stamped epochs).
  void quiesce_lanes() {
    for (auto& lane_ptr : lanes_) {
      auto& lane = *lane_ptr;
      std::unique_lock<std::mutex> lk(lane.mu);
      lane.cv.wait(lk, [&] { return lane.q.empty() && !lane.busy; });
    }
  }

  // Re-derives the quantile stripe bounds from a sample of the live
  // points and migrates misplaced points to their new owners as an
  // internal write group. Runs on the drain thread with the lanes
  // quiesced: every earlier group executed fully under the old bounds,
  // every later group is routed (and every later read pruned) under the
  // new ones, so routing and pruning never disagree. Migration goes
  // through batch_erase/batch_insert, so epochs bump on every shard that
  // gains or loses points — stale k-NN cache rows become unreachable and
  // already-stamped snapshot readers keep answering at their epochs.
  void rebalance_stripes() {
    quiesce_lanes();
    std::vector<std::size_t> sizes(cfg_.shards);
    std::size_t total = 0;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      sizes[s] = engines_[s]->index().size();
      total += sizes[s];
      resident_est_[s] = sizes[s];  // re-sync the estimates
    }
    rebalance_attempted_ = true;
    writes_since_rebalance_ = 0;
    if (total == 0 || !skewed_sizes(sizes, cfg_.rebalance_threshold)) {
      last_rebalance_futile_ = false;  // estimate drift, not a failed fix
      return;  // the actual sizes are fine; nothing was materialized
    }
    std::vector<std::vector<point<D>>> held(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      held[s] = engines_[s]->index().gather();
    }
    // Quantile sample, strided across the whole resident multiset so
    // every shard contributes proportionally to the new bounds.
    const std::size_t target = std::max<std::size_t>(
        cfg_.shards, std::min(total, cfg_.rebalance_sample));
    const std::size_t stride = std::max<std::size_t>(1, total / target);
    std::vector<point<D>> sample;
    sample.reserve(total / stride + 1);
    std::size_t seen = 0;
    for (const auto& part : held) {
      for (const auto& p : part) {
        if (seen++ % stride == 0) sample.push_back(p);
      }
    }
    set_spatial_bounds(sample);
    // Classify against the new stripes, then erase-before-insert so no
    // point is counted (or gathered) twice.
    std::vector<std::vector<point<D>>> arrivals(cfg_.shards);
    std::vector<std::vector<point<D>>> leavers(cfg_.shards);
    std::size_t moved = 0;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      for (const auto& p : held[s]) {
        const std::size_t t = owner_of(p);
        if (t == s) continue;
        leavers[s].push_back(p);
        arrivals[t].push_back(p);
        ++moved;
      }
    }
    // Migration replays as erase rounds + inserts under the new bounds,
    // so capture the exact rounds erase_multiset issues.
    std::vector<std::vector<std::vector<point<D>>>> erase_rounds(
        log_ ? cfg_.shards : 0);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (leavers[s].empty()) continue;
      erase_multiset(s, leavers[s], log_ ? &erase_rounds[s] : nullptr);
      resident_est_[s] = sizes[s] - leavers[s].size();
    }
    for (std::size_t t = 0; t < cfg_.shards; ++t) {
      if (arrivals[t].empty()) continue;
      engines_[t]->index().batch_insert(arrivals[t]);
      resident_est_[t] += arrivals[t].size();
    }
    if (log_) {
      try {
        append_log_group(
          [&](log_group<D>& lg) {
            lg.origin = log_origin::rebalance;
            for (std::size_t s = 0; s < cfg_.shards; ++s) {
              for (auto& round : erase_rounds[s]) {
                log_record<D> rec;
                rec.shard = static_cast<std::uint32_t>(s);
                rec.kind = log_op::erase;
                rec.pts = std::move(round);
                lg.records.push_back(std::move(rec));
              }
            }
            for (std::size_t t = 0; t < cfg_.shards; ++t) {
              if (arrivals[t].empty()) continue;
              log_record<D> rec;
              rec.shard = static_cast<std::uint32_t>(t);
              rec.kind = log_op::insert;
              rec.pts = arrivals[t];
              lg.records.push_back(std::move(rec));
            }
          },
          /*with_bounds=*/true);
      } catch (...) {
        // Migration already applied locally; replicas will diverge until
        // they resync from a checkpoint. Latch so no later write claims
        // durability the log cannot back.
        note_log_failure();
      }
    }
    // A re-derivation that moved nothing cannot fix this skew (the mass
    // has fewer distinct coordinates than shards): back off much longer.
    last_rebalance_futile_ = moved == 0;
    ctr_.rebalances.fetch_add(1, std::memory_order_relaxed);
    ctr_.rebalance_moved.fetch_add(moved, std::memory_order_relaxed);
  }

  // Erases every entry of `pts` (a multiset) from shard s, exactly one
  // stored copy per entry. batch_erase only guarantees that for DISTINCT
  // batch points (backends disagree on duplicated entries), so duplicated
  // entries are split across successive rounds of distinct points. With
  // `rounds` set, each issued round is captured verbatim (for op-log
  // emission — replay must re-issue the identical call sequence).
  void erase_multiset(std::size_t s, std::vector<point<D>>& pts,
                      std::vector<std::vector<point<D>>>* rounds = nullptr) {
    std::sort(pts.begin(), pts.end());
    std::vector<point<D>> round, rest;
    while (!pts.empty()) {
      round.clear();
      rest.clear();
      for (const auto& p : pts) {
        if (!round.empty() && round.back() == p) {
          rest.push_back(p);
        } else {
          round.push_back(p);
        }
      }
      engines_[s]->index().batch_erase(round);
      if (rounds) rounds->push_back(round);
      pts.swap(rest);
    }
  }

  // ---- cache-intercepted reads --------------------------------------------

  // Exact cache key for one read request at `epoch` (callers gate on
  // cacheable_read first).
  static detail::result_key<D> make_read_key(const request<D>& r,
                                             std::uint64_t epoch) {
    switch (r.kind) {
      case op::range_box:
        return detail::result_key<D>::box(r.box, epoch);
      case op::range_ball:
        return detail::result_key<D>::ball(r.p, r.radius, epoch);
      default:
        return detail::result_key<D>::knn(r.p, r.k, epoch);
    }
  }

  // Every read shape caches except k == 0 k-NN: its row is trivially
  // empty and the phase runner skips executing it anyway.
  static bool cacheable_read(const request<D>& r) {
    return r.kind != op::knn || r.k > 0;
  }

  // One read run `batch[begin, end)` for shard s against `target` (the
  // live index or an epoch snapshot) whose contents are at `epoch`: rows
  // (k-NN, box, or ball) are served from the shard's result cache when
  // the exact (shape, epoch) key hits; only the misses touch the tree,
  // and their rows are stored back. Identical missed keys within the run
  // execute once — the duplicates (zipf-hot keys repeat inside a batch)
  // copy the first row and count as hits. Rows land in
  // responses[begin..end). Returns how many rows the cache served
  // (lookup hits + same-run duplicates) so callers can attribute hits —
  // the watch path counts its own.
  template <class Target>
  std::size_t run_shard_reads(std::size_t s,
                              const std::vector<request<D>>& batch,
                              std::size_t begin, std::size_t end,
                              const Target& target, std::uint64_t epoch,
                              std::vector<response<D>>& responses) {
    auto& cache = *caches_[s];
    if (!cache.enabled()) {
      detail::execute_read_phase_on<D>(target, batch, begin, end, responses);
      return 0;
    }
    std::size_t lookup_hits = 0;
    std::vector<request<D>> misses;
    std::vector<std::size_t> miss_idx;
    // Same-run dedup, hashed on the shared canonical result key (the
    // epoch is constant within the run) — no ordered-map node churn on
    // the hot read path.
    std::unordered_map<detail::result_key<D>, std::size_t,
                       detail::result_key_hash<D>>
        first_miss;
    std::vector<std::pair<std::size_t, std::size_t>> dups;  // (resp i, miss j)
    for (std::size_t i = begin; i < end; ++i) {
      const auto& r = batch[i];
      if (cacheable_read(r)) {
        const detail::result_key<D> key = make_read_key(r, epoch);
        auto dit = first_miss.find(key);
        if (dit != first_miss.end()) {  // same-run duplicate of a miss
          dups.emplace_back(i, dit->second);
          continue;
        }
        if (cache.lookup(key, responses[i].points)) {
          ++lookup_hits;
          continue;
        }
        first_miss.emplace(key, misses.size());
      }
      misses.push_back(r);
      miss_idx.push_back(i);
    }
    if (!dups.empty()) cache.add_hits(dups.size());
    const std::size_t hits = lookup_hits + dups.size();
    if (misses.empty() && dups.empty()) return hits;
    std::vector<response<D>> rows(misses.size());
    // Miss-side of the cache latency split: the tree execution the
    // missed probes went on to pay (the hit side is timed inside
    // lookup()).
    const std::uint64_t miss_t0 = cache.timed() ? monotonic_ns() : 0;
    detail::execute_read_phase_on<D>(target, misses, 0, misses.size(), rows);
    if (cache.timed()) cache.add_miss_ns(monotonic_ns() - miss_t0);
    for (std::size_t j = 0; j < misses.size(); ++j) {
      responses[miss_idx[j]].points = std::move(rows[j].points);
      if (cacheable_read(misses[j])) {
        cache.store(make_read_key(misses[j], epoch),
                    responses[miss_idx[j]].points);
      }
    }
    for (const auto& [i, j] : dups) {
      responses[i].points = responses[miss_idx[j]].points;
    }
    return hits;
  }

  // ---- snapshot-read path -------------------------------------------------

  // Routes a read-only group once. per_shard: each involved lane stamps
  // its own snapshot in queue order (so it observes exactly that shard's
  // earlier writes) and the last stamp hands the group to the readers.
  // single: the drain thread stamps everything inline, preserving the
  // serialized baseline's timing.
  void route_read_group(std::vector<pending_entry> tickets,
                        std::size_t total) {
    const std::uint64_t route_start = tel_.enabled() ? tel_.now_ns() : 0;
    auto g = std::make_shared<read_group>();
    g->tickets = std::move(tickets);
    g->total = total;
    g->trace_ticket = pick_trace_ticket(g->tickets);
    g->combined = take_req_vec();
    g->combined.reserve(total);
    for (const auto& e : g->tickets) {
      g->combined.insert(g->combined.end(), e.batch.begin(), e.batch.end());
    }
    g->sub.resize(cfg_.shards);
    g->sub_idx.resize(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      g->sub[s] = take_req_vec();
      g->sub_idx[s] = take_idx_vec();
    }
    for (std::size_t i = 0; i < g->combined.size(); ++i) {
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        if (!shard_serves(s, g->combined[i])) continue;
        g->sub[s].push_back(g->combined[i]);
        g->sub_idx[s].push_back(i);
      }
    }
    g->snaps.resize(cfg_.shards);
    if (tel_.enabled()) {
      const std::uint64_t route_end = tel_.now_ns();
      tel_.record(stage::route, route_end - route_start);
      if (g->trace_ticket) {
        tel_.add_span("route", tel_.drain_track(), route_start,
                      route_end - route_start, g->trace_ticket);
      }
    }

    std::size_t active = 0;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (!g->sub[s].empty()) ++active;
    }
    if (active == 0) {  // every ticket in the group had an empty batch
      recycle_read_group(*g);
      fulfill_group(std::move(g->tickets), g->total, batch_result<D>{},
                    nullptr, /*snapshot_epoch=*/0, /*read_group=*/true,
                    /*lagged=*/false, /*exec_seconds=*/0, /*commit_epoch=*/0,
                    g->trace_ticket);
      return;
    }
    if (cfg_.drain != drain_mode::single) {
      g->stamps_remaining.store(active, std::memory_order_relaxed);
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        if (g->sub[s].empty()) continue;
        shard_task task;
        task.stamp = g;
        enqueue_lane_task(s, std::move(task));
      }
    } else {
      try {
        for (std::size_t s = 0; s < cfg_.shards; ++s) {
          if (!g->sub[s].empty()) stamp_shard_snapshot(*g, s);
        }
      } catch (...) {
        g->error = std::current_exception();  // fails the group, not the thread
      }
      enqueue_read_task(std::move(g));
    }
  }

  void enqueue_read_task(std::shared_ptr<read_group> g) {
    {
      std::lock_guard<std::mutex> lk(read_mu_);
      read_q_.push_back(std::move(g));
    }
    read_cv_.notify_one();
  }

  // Snapshot-read executors: drain the read queue until shutdown.
  void read_loop() {
    for (;;) {
      std::shared_ptr<read_group> g;
      {
        std::unique_lock<std::mutex> lk(read_mu_);
        read_cv_.wait(lk, [&] { return read_shutdown_ || !read_q_.empty(); });
        if (read_q_.empty()) return;  // shutdown, queue flushed
        g = std::move(read_q_.front());
        read_q_.pop_front();
      }
      run_read_task(std::move(g));
    }
  }

  // Executes one read group against its epoch snapshots (through the
  // result cache) and fulfils it; watch groups peel off to their own
  // finisher (registry delivery instead of ticket fulfilment). The whole
  // execution runs inside an epoch-reclaimer guard: structure versions
  // retired while this read is in flight stay on the limbo list until the
  // guard releases (query/epoch_reclaim.h).
  void run_read_task(std::shared_ptr<read_group> g) {
    if (g->watch_seq != 0) {
      run_watch_task(std::move(g));
      return;
    }
    epoch_reclaimer::guard eg = reclaim_.enter();
    const std::uint64_t t_start = tel_.now_ns();
    batch_result<D> result;
    std::exception_ptr error = g->error;  // all stamps retired; no race
    std::uint64_t snap_epoch = 0;
    if (!error) {
      try {
        result.responses.resize(g->combined.size());
        std::vector<batch_result<D>> shard_res(cfg_.shards);
        par::parallel_for(
            0, cfg_.shards,
            [&](std::size_t s) {
              if (g->sub[s].empty()) return;
              shard_res[s].responses.resize(g->sub[s].size());
              const std::uint64_t s0 = tel_.enabled() ? tel_.now_ns() : 0;
              run_shard_reads(s, g->sub[s], 0, g->sub[s].size(), *g->snaps[s],
                              g->snaps[s]->epoch(), shard_res[s].responses);
              if (tel_.enabled()) {
                const std::uint64_t s_ns = tel_.now_ns() - s0;
                tel_.record_shard(s, stage::execute_read, s_ns);
                if (g->trace_ticket) {
                  tel_.add_span("execute_read", tel_.reader_track(), s0, s_ns,
                                g->trace_ticket,
                                static_cast<std::int32_t>(s));
                }
              }
            },
            1);
        const std::uint64_t m0 = tel_.enabled() ? tel_.now_ns() : 0;
        merge_shard_reads(g->combined, 0, g->combined.size(), g->sub_idx,
                          shard_res, result.responses);
        if (tel_.enabled()) {
          const std::uint64_t m_ns = tel_.now_ns() - m0;
          tel_.record(stage::merge, m_ns);
          if (g->trace_ticket) {
            tel_.add_span("merge", tel_.fulfil_track(), m0, m_ns,
                          g->trace_ticket);
          }
        }
        for (std::size_t i = 0; i < g->combined.size(); ++i) {
          result.responses[i].kind = g->combined[i].kind;
          result.responses[i].phase = 0;
        }
        for (const auto& snap : g->snaps) {
          if (snap) snap_epoch = std::max(snap_epoch, snap->epoch());
        }
      } catch (...) {
        error = std::current_exception();
      }
    }
    const double secs = static_cast<double>(tel_.now_ns() - t_start) * 1e-9;
    result.stats.num_requests = g->total;
    result.stats.num_reads = g->total;
    result.stats.seconds = secs;
    result.stats.phases = {
        {g->combined.empty() ? op::knn : g->combined.front().kind, g->total,
         secs}};
    // Any divergence here means a write drain advanced the live index
    // while this read was executing — the overlap the un-pinned pipeline
    // exists to allow (on every backend now, bdltree included).
    bool lagged = false;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (g->snaps[s] &&
          g->snaps[s]->epoch() != engines_[s]->index().epoch()) {
        lagged = true;
      }
    }
    eg.release();  // quiescent: stop holding the reclaim epoch back
    recycle_read_group(*g);
    fulfill_group(std::move(g->tickets), g->total, std::move(result), error,
                  snap_epoch, /*read_group=*/true, lagged, secs,
                  /*commit_epoch=*/0, g->trace_ticket);
  }

  void recycle_read_group(read_group& g) {
    give_req_vec(std::move(g.combined));
    for (auto& v : g.sub) give_req_vec(std::move(v));
    for (auto& v : g.sub_idx) give_idx_vec(std::move(v));
  }

  // ---- continuous queries -------------------------------------------------

  watch_handle<D> add_watch(request<D> q,
                            typename watch_registry<D>::callback_t cb) {
    if (!cb) {
      throw std::invalid_argument("query_service::watch: empty callback");
    }
    const std::vector<request<D>> probe{q};  // front-door validation
    validate_batch(probe);
    const std::uint64_t id = watches_->add(std::move(q), std::move(cb));
    return watch_handle<D>(watches_, id);
  }

  // Drain-boundary hook: collects the standing queries the group just
  // dispatched could affect (shards the group routed writes into,
  // filtered through shard_serves — the same stripe/box pruning reads
  // use; watches no touched shard serves count as suppressed without
  // evaluating anything) and launches their re-evaluation as an internal
  // read group on the post-drain snapshots. Stamp tasks enqueue behind
  // the group's own lane tasks, so per-shard FIFO makes every snapshot
  // observe exactly the writes up to this boundary. Drain-thread only.
  void schedule_watch_eval() {
    if (watches_->active() == 0) return;
    bool any_touched = false;
    for (const unsigned char t : write_touched_) any_touched |= t != 0;
    if (!any_touched) return;
    affected_scratch_.clear();
    const std::uint64_t seq = watches_->collect_affected(
        [&](const request<D>& q) {
          for (std::size_t s = 0; s < cfg_.shards; ++s) {
            if (write_touched_[s] && shard_serves(s, q)) return true;
          }
          return false;
        },
        affected_scratch_);
    if (seq == 0) return;
    auto g = std::make_shared<read_group>();
    g->watch_seq = seq;
    g->watch_start_ns = tel_.now_ns();
    g->combined = take_req_vec();
    g->combined.reserve(affected_scratch_.size());
    g->watch_ids.reserve(affected_scratch_.size());
    for (auto& [id, q] : affected_scratch_) {
      g->watch_ids.push_back(id);
      g->combined.push_back(std::move(q));
    }
    g->sub.resize(cfg_.shards);
    g->sub_idx.resize(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      g->sub[s] = take_req_vec();
      g->sub_idx[s] = take_idx_vec();
    }
    // Full scatter over ALL serving shards (not just the touched ones):
    // a watch's fresh result must be the complete answer, and untouched
    // shards answer from their caches at an unchanged epoch anyway.
    for (std::size_t i = 0; i < g->combined.size(); ++i) {
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        if (!shard_serves(s, g->combined[i])) continue;
        g->sub[s].push_back(g->combined[i]);
        g->sub_idx[s].push_back(i);
      }
    }
    g->snaps.resize(cfg_.shards);
    std::size_t active = 0;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      if (!g->sub[s].empty()) ++active;
    }
    if (active == 0) {  // unreachable (shard_serves keeps >= 1 shard)
      recycle_read_group(*g);
      watches_->deliver(seq, {});
      return;
    }
    if (cfg_.drain != drain_mode::single) {
      g->stamps_remaining.store(active, std::memory_order_relaxed);
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        if (g->sub[s].empty()) continue;
        shard_task task;
        task.stamp = g;
        enqueue_lane_task(s, std::move(task));
      }
    } else {
      try {
        for (std::size_t s = 0; s < cfg_.shards; ++s) {
          if (!g->sub[s].empty()) stamp_shard_snapshot(*g, s);
        }
      } catch (...) {
        g->error = std::current_exception();
      }
      hand_off_read_group(std::move(g));
    }
  }

  // Re-evaluates one watch group against its post-drain snapshots and
  // hands the canonicalized rows to the registry's delivery engine. The
  // watch_eval histogram records commit boundary -> results ready (the
  // fire latency). Delivery happens even on failure — an empty batch —
  // so the registry's boundary sequence never stalls.
  void run_watch_task(std::shared_ptr<read_group> g) {
    epoch_reclaimer::guard eg = reclaim_.enter();
    std::vector<std::pair<std::uint64_t, std::vector<point<D>>>> fired;
    if (!g->error) {
      try {
        std::vector<response<D>> responses(g->combined.size());
        std::vector<batch_result<D>> shard_res(cfg_.shards);
        par::parallel_for(
            0, cfg_.shards,
            [&](std::size_t s) {
              if (g->sub[s].empty()) return;
              shard_res[s].responses.resize(g->sub[s].size());
              const std::uint64_t s0 = tel_.enabled() ? tel_.now_ns() : 0;
              const std::size_t hits = run_shard_reads(
                  s, g->sub[s], 0, g->sub[s].size(), *g->snaps[s],
                  g->snaps[s]->epoch(), shard_res[s].responses);
              if (hits > 0) {
                watch_cache_hits_.fetch_add(hits, std::memory_order_relaxed);
              }
              if (tel_.enabled()) {
                tel_.record_shard(s, stage::execute_read,
                                  tel_.now_ns() - s0);
              }
            },
            1);
        merge_shard_reads(g->combined, 0, g->combined.size(), g->sub_idx,
                          shard_res, responses);
        fired.reserve(g->watch_ids.size());
        for (std::size_t i = 0; i < g->combined.size(); ++i) {
          canonicalize_row(g->combined[i], responses[i].points);
          fired.emplace_back(g->watch_ids[i],
                             std::move(responses[i].points));
        }
      } catch (...) {
        fired.clear();
      }
    }
    if (tel_.enabled()) {
      tel_.record(stage::watch_eval, tel_.now_ns() - g->watch_start_ns);
    }
    eg.release();  // quiescent before delivery (callbacks are user code)
    const std::uint64_t seq = g->watch_seq;
    recycle_read_group(*g);
    g.reset();
    watches_->deliver(seq, std::move(fired));
  }

  // Sorts one result row into its canonical order: k-NN by distance from
  // the query (coordinates lexicographic on ties), ranges lexicographic.
  // Shard merge order, rebalancing, and backend traversal order all churn
  // row order without changing content, and delta suppression must
  // compare content — an order-only difference must not re-fire a watch.
  void canonicalize_row(const request<D>& r,
                        std::vector<point<D>>& row) const {
    if (r.kind == op::knn) {
      const point<D>& q = r.p;
      std::sort(row.begin(), row.end(),
                [&](const point<D>& a, const point<D>& b) {
                  const double da = a.dist_sq(q);
                  const double db = b.dist_sq(q);
                  if (da != db) return da < db;
                  return a < b;
                });
    } else {
      std::sort(row.begin(), row.end());
    }
  }

  // ---- TTL expiry ---------------------------------------------------------

  // Retires points whose TTL elapsed: pops every due entry from the
  // arrival queue (deadline-ordered by construction), routes each under
  // the CURRENT stripes (rebalancing may have moved the point since it
  // arrived — owner_of at sweep time always finds it), and dispatches
  // the erases as an internal write group through the normal drain
  // machinery under a synthetic ticket (id 0, total 0: fulfilment skips
  // the completion bookkeeping, and the erases were never admitted
  // against the backpressure bound). Duplicate coordinates within one
  // sweep are re-queued at the front — still due, they retire on the
  // next sweep — because batch_erase is only exact on distinct points,
  // exactly like erase_multiset. Drain-thread only.
  void maybe_expire() {
    if (cfg_.point_ttl_ns == 0) return;
    const std::uint64_t now = ttl_now_();
    std::vector<std::pair<std::uint64_t, point<D>>> due;
    {
      std::lock_guard<std::mutex> lk(ttl_mu_);
      while (!ttl_q_.empty() && ttl_q_.front().first <= now) {
        due.push_back(std::move(ttl_q_.front()));
        ttl_q_.pop_front();
      }
    }
    if (due.empty()) return;
    const std::uint64_t t0 = tel_.now_ns();
    std::sort(due.begin(), due.end(),
              [](const std::pair<std::uint64_t, point<D>>& a,
                 const std::pair<std::uint64_t, point<D>>& b) {
                return a.second < b.second;
              });
    std::vector<request<D>> erases;
    erases.reserve(due.size());
    std::vector<std::pair<std::uint64_t, point<D>>> leftovers;
    for (auto& e : due) {
      if (!erases.empty() && erases.back().p == e.second) {
        leftovers.push_back(std::move(e));
      } else {
        erases.push_back(request<D>::make_erase(e.second));
      }
    }
    if (!leftovers.empty()) {
      // Already due, so they stay ahead of every queued deadline.
      std::lock_guard<std::mutex> lk(ttl_mu_);
      ttl_q_.insert(ttl_q_.begin(), std::make_move_iterator(leftovers.begin()),
                    std::make_move_iterator(leftovers.end()));
    }
    const std::size_t count = erases.size();
    begin_write_group();
    std::vector<pending_entry> group;
    group.push_back(pending_entry{/*id=*/0, std::move(erases), tel_.now_ns()});
    next_group_origin_ = log_origin::expire;  // tag this group's log record
    if (cfg_.drain != drain_mode::single) {
      dispatch_shard_group(std::move(group), /*total=*/0);
    } else {
      run_sync_group(std::move(group), /*total=*/0);
    }
    next_group_origin_ = log_origin::client;
    ctr_.expired_points.fetch_add(count, std::memory_order_relaxed);
    if (tel_.enabled()) tel_.record(stage::expire, tel_.now_ns() - t0);
    schedule_watch_eval();
  }

  // ---- single-drainer baseline --------------------------------------------

  // Executes a writing (or pool-disabled) group on the drain thread with
  // the engine's phase discipline. In-flight snapshot readers never gate
  // this: every backend's snapshots are isolated.
  void run_sync_group(std::vector<pending_entry> group, std::size_t total) {
    const std::uint64_t trace_ticket = pick_trace_ticket(group);
    std::vector<request<D>> combined;
    combined.reserve(total);
    for (const auto& e : group) {
      combined.insert(combined.end(), e.batch.begin(), e.batch.end());
    }
    const std::uint64_t t0 = tel_.now_ns();
    batch_result<D> result;
    std::exception_ptr error;
    try {
      result = run_group(combined);
    } catch (...) {
      error = std::current_exception();
    }
    if (tel_.enabled()) {
      // Single mode has no lanes: the whole group executes here on the
      // drain thread, so execution lands in the service-wide recorder
      // (execute_read for a pure-read group — only possible with
      // read_threads == 0 — execute_write otherwise).
      const std::uint64_t dur_ns = tel_.now_ns() - t0;
      const stage st = batch_is_read_only(combined) ? stage::execute_read
                                                    : stage::execute_write;
      tel_.record(st, dur_ns);
      if (trace_ticket) {
        tel_.add_span("execute", tel_.drain_track(), t0, dur_ns,
                      trace_ticket);
      }
    }
    std::uint64_t commit_epoch = 0;
    if (log_ && !error && log_failed_) {
      error = std::make_exception_ptr(std::runtime_error(
          "query_service: durable log failed — writes cannot commit"));
    } else if (log_ && !error) {
      // Single mode executed the combined stream in place: reconstruct
      // the run structure it issued — phase-cut the combined stream, then
      // (shards > 1) partition each write phase per shard in shard order,
      // exactly mirroring run_write_phase. Routing here re-uses the
      // CURRENT bounds, which are the bounds every phase routed under
      // (derivation, if any, happened in the first write phase, before
      // anything was routed).
      try {
        commit_epoch = append_log_group(
            [&](log_group<D>& lg) {
              std::size_t i = 0;
              const std::size_t n = combined.size();
            while (i < n) {
              if (is_read(combined[i].kind)) {
                ++i;
                continue;
              }
              std::size_t j = i + 1;
              while (j < n && combined[j].kind == combined[i].kind) ++j;
              if (cfg_.shards == 1) {
                append_write_runs(lg, 0, combined, i, j);
              } else {
                std::vector<std::vector<point<D>>> per(cfg_.shards);
                for (std::size_t k = i; k < j; ++k) {
                  per[owner_of(combined[k].p)].push_back(combined[k].p);
                }
                for (std::size_t s = 0; s < cfg_.shards; ++s) {
                  if (per[s].empty()) continue;
                  log_record<D> rec;
                  rec.shard = static_cast<std::uint32_t>(s);
                  rec.kind = combined[i].kind == op::insert ? log_op::insert
                                                            : log_op::erase;
                  rec.pts = std::move(per[s]);
                  lg.records.push_back(std::move(rec));
                }
              }
              i = j;
            }
            },
            /*with_bounds=*/false);
      } catch (...) {
        // The group already executed, but its commit never became
        // durable: fail the tickets and latch (see dispatch_shard_group).
        note_log_failure();
        error = std::current_exception();
      }
    }
    const double secs = result.stats.seconds;
    fulfill_group(std::move(group), total, std::move(result), error,
                  /*snapshot_epoch=*/0, /*read_group=*/false,
                  /*lagged=*/false, secs, commit_epoch, trace_ticket);
  }

  // Executes one combined stream with the engine's phase discipline
  // (execute_phases): writes routed to owning shards, reads scattered,
  // cache-probed, and merged. Only ever called by the drain thread.
  batch_result<D> run_group(const std::vector<request<D>>& batch) {
    // One shard: the engine IS the logical index — skip the scatter/gather
    // bookkeeping and the redundant k-NN re-sort entirely (the per-shard
    // executor path already runs phases with cache interception).
    if (cfg_.shards == 1) return execute_shard_batch(0, batch);
    batch_result<D> result;
    execute_phases<D>(batch, result.responses, result.stats,
                      [&](std::size_t begin, std::size_t end, bool read) {
                        if (read) {
                          run_read_phase(batch, begin, end, result.responses);
                        } else {
                          run_write_phase(batch, begin, end);
                        }
                      });
    return result;
  }

  void run_write_phase(const std::vector<request<D>>& batch, std::size_t begin,
                       std::size_t end) {
    if (cfg_.policy == shard_policy::spatial && !bounds_set_) {
      // No bootstrap data carved the space yet: derive the stripes from
      // this first write phase. Bounds are fixed from then on, so routing
      // and read pruning stay mutually consistent.
      std::vector<point<D>> pts;
      pts.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) pts.push_back(batch[i].p);
      set_spatial_bounds(pts);
    }
    std::vector<std::vector<request<D>>> sub(cfg_.shards);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t s = owner_of(batch[i].p);
      sub[s].push_back(batch[i]);
      note_routed_write(s, batch[i]);
    }
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) {
          if (!sub[s].empty()) {
            engines_[s]->apply_write_phase(sub[s], 0, sub[s].size());
          }
        },
        1);
  }

  void run_read_phase(const std::vector<request<D>>& batch, std::size_t begin,
                      std::size_t end, std::vector<response<D>>& responses) {
    std::vector<std::vector<request<D>>> sub(cfg_.shards);
    std::vector<std::vector<std::size_t>> sub_idx(cfg_.shards);
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        if (!shard_serves(s, batch[i])) continue;
        sub[s].push_back(batch[i]);
        sub_idx[s].push_back(i);
      }
    }

    std::vector<batch_result<D>> shard_res(cfg_.shards);
    par::parallel_for(
        0, cfg_.shards,
        [&](std::size_t s) {
          if (sub[s].empty()) return;
          shard_res[s].responses.resize(sub[s].size());
          run_shard_reads(s, sub[s], 0, sub[s].size(), engines_[s]->index(),
                          engines_[s]->index().epoch(),
                          shard_res[s].responses);
        },
        1);
    merge_shard_reads(batch, begin, end, sub_idx, shard_res, responses);
  }

  // ---- fulfilment ---------------------------------------------------------

  // Slices a drain group's combined result back into per-ticket results,
  // stores (or callback-delivers) each, enforces the retention cap, frees
  // the group's backpressure budget, and updates stats. Callbacks fire
  // outside the lock, in ticket order.
  void fulfill_group(std::vector<pending_entry> group, std::size_t total,
                     batch_result<D> result, std::exception_ptr error,
                     std::uint64_t snap_epoch, bool read_group, bool lagged,
                     double exec_seconds, std::uint64_t commit_epoch,
                     std::uint64_t trace_ticket) {
    using record_t = typename detail::completion_hub<D>::record;
    // One fulfil stamp serves every ticket in the group: completion
    // latency is fulfil - submit on the telemetry clock (the same delta
    // reported as ticket_result::latency_seconds — folded, not parallel
    // bookkeeping).
    const std::uint64_t f0 = tel_.now_ns();
    std::vector<std::pair<
        std::function<void(ticket_result<D>&&, std::exception_ptr)>,
        ticket_result<D>>>
        callbacks;
    {
      std::lock_guard<std::mutex> lk(hub_->mu);
      std::size_t off = 0;
      for (auto& e : group) {
        ticket_result<D> tr;
        if (!error) {
          tr.responses.assign(
              std::make_move_iterator(result.responses.begin() + off),
              std::make_move_iterator(result.responses.begin() + off +
                                      e.batch.size()));
          tr.stats = result.stats;
        }
        const std::uint64_t comp_ns = f0 - e.submit_ns;
        tr.latency_seconds = static_cast<double>(comp_ns) * 1e-9;
        // id 0 is the synthetic TTL-expiry ticket: no submitter, no
        // completion latency to speak of — keep it out of the histogram.
        if (tel_.enabled() && e.id != 0) {
          tel_.record(stage::completion, comp_ns);
          if (tel_.sampled(e.id)) {
            tel_.add_span("completion", tel_.completion_track(), e.submit_ns,
                          comp_ns, e.id);
          }
        }
        tr.snapshot_epoch = snap_epoch;
        tr.commit_epoch = commit_epoch;
        off += e.batch.size();
        if (!e.rec) continue;  // synthetic TTL ticket: no submitter
        auto& rec = *e.rec;
        if (rec.state.load(std::memory_order_relaxed) !=
            record_t::state_t::pending) {
          continue;
        }
        if (rec.callback) {
          callbacks.emplace_back(std::move(rec.callback), std::move(tr));
          rec.state.store(record_t::state_t::consumed,
                          std::memory_order_release);
        } else if (rec.handle_dropped) {
          rec.state.store(record_t::state_t::consumed,
                          std::memory_order_release);
        } else {
          rec.result = std::move(tr);
          rec.error = error;
          rec.state.store(record_t::state_t::done, std::memory_order_release);
          hub_->done_order.push_back(e.rec);
          hub_->retained.fetch_add(1, std::memory_order_relaxed);
        }
      }
      hub_->evict_over_cap();
      in_flight_requests_.fetch_sub(total, std::memory_order_relaxed);
      space_cv_.notify_all();
      hub_->done_cv.notify_all();
    }
    ctr_.num_drains.fetch_add(1, std::memory_order_relaxed);
    if (read_group) {
      ctr_.num_read_groups.fetch_add(1, std::memory_order_relaxed);
      if (lagged) {
        ctr_.snapshot_lag_drains.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      ctr_.num_write_groups.fetch_add(1, std::memory_order_relaxed);
    }
    ctr_.num_requests.fetch_add(total, std::memory_order_relaxed);
    ctr_.execute_ns.fetch_add(static_cast<std::uint64_t>(exec_seconds * 1e9),
                              std::memory_order_relaxed);
    if (tel_.enabled()) {
      // Result slicing + storage under the hub lock; callback bodies are
      // user code and excluded on purpose.
      const std::uint64_t f_ns = tel_.now_ns() - f0;
      tel_.record(stage::fulfil, f_ns);
      if (trace_ticket) {
        tel_.add_span("fulfil", tel_.fulfil_track(), f0, f_ns, trace_ticket);
      }
    }
    for (auto& [fn, tr] : callbacks) {
      try {
        fn(std::move(tr), error);
      } catch (...) {
        // A throwing callback must not unwind a service thread (that would
        // std::terminate the process). Swallow; the ticket was delivered.
      }
    }
  }

  // Completes deadline-expired tickets without executing them: empty
  // responses, timed_out = true, no error (a shed batch is a completion
  // with a verdict, not a failure — callers inspect timed_out). Cannot
  // reuse fulfill_group, which slices a combined result by offsets this
  // work never produced. Drain thread, hub lock taken here.
  void shed_expired(std::vector<pending_entry> expired) {
    if (expired.empty()) return;
    using record_t = typename detail::completion_hub<D>::record;
    const std::uint64_t f0 = tel_.now_ns();
    std::vector<std::pair<
        std::function<void(ticket_result<D>&&, std::exception_ptr)>,
        ticket_result<D>>>
        callbacks;
    {
      std::lock_guard<std::mutex> lk(hub_->mu);
      std::size_t total = 0;
      for (auto& e : expired) {
        total += e.batch.size();
        ctr_.deadline_expired.fetch_add(e.batch.size(),
                                        std::memory_order_relaxed);
        ticket_result<D> tr;
        tr.timed_out = true;
        tr.latency_seconds = static_cast<double>(f0 - e.submit_ns) * 1e-9;
        if (!e.rec) continue;  // synthetic TTL ticket
        auto& rec = *e.rec;
        if (rec.state.load(std::memory_order_relaxed) !=
            record_t::state_t::pending) {
          continue;
        }
        if (rec.callback) {
          callbacks.emplace_back(std::move(rec.callback), std::move(tr));
          rec.state.store(record_t::state_t::consumed,
                          std::memory_order_release);
        } else if (rec.handle_dropped) {
          rec.state.store(record_t::state_t::consumed,
                          std::memory_order_release);
        } else {
          rec.result = std::move(tr);
          rec.error = nullptr;
          rec.state.store(record_t::state_t::done, std::memory_order_release);
          hub_->done_order.push_back(e.rec);
          hub_->retained.fetch_add(1, std::memory_order_relaxed);
        }
      }
      hub_->evict_over_cap();
      in_flight_requests_.fetch_sub(total, std::memory_order_relaxed);
      space_cv_.notify_all();
      hub_->done_cv.notify_all();
    }
    for (auto& [fn, tr] : callbacks) {
      try {
        fn(std::move(tr), nullptr);
      } catch (...) {
        // see fulfill_group: never unwind a service thread
      }
    }
  }

  // ---- submission (hub_->mu held) -----------------------------------------

  // Backpressure admission: room under the bound, or an over-sized batch
  // alone in an empty pipeline (otherwise it could never be admitted).
  bool admits(std::size_t n) const {
    if (n == 0) return true;  // empty batches carry no payload
    const std::size_t cur = in_flight_requests_.load(std::memory_order_relaxed);
    return cur == 0 || cur + n <= cfg_.max_pending_requests;
  }

  completion<D> enqueue_locked(std::vector<request<D>> batch,
                               std::uint64_t deadline_rel_ns) {
    const std::uint64_t id =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    auto rec = std::make_shared<typename detail::completion_hub<D>::record>();
    rec->id = id;
    in_flight_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
    const std::uint64_t now = tel_.now_ns();
    pending_entry e{id, std::move(batch), now};
    if (deadline_rel_ns > 0) e.deadline_ns = now + deadline_rel_ns;
    e.rec = rec;
    pending_.push_back(std::move(e));
    ctr_.num_tickets.fetch_add(1, std::memory_order_relaxed);
    work_cv_.notify_one();
    return completion<D>(hub_, std::move(rec));
  }

  // ---- lock-free submission (ring mode) -----------------------------------

  // Single-CAS admission against the backpressure bound: admit an empty
  // batch, an unbounded config, or an over-sized batch alone in an empty
  // pipeline (mirrors admits()).
  bool try_acquire_budget(std::size_t n) {
    if (n == 0 || cfg_.max_pending_requests == 0) {
      in_flight_requests_.fetch_add(n, std::memory_order_relaxed);
      return true;
    }
    std::size_t cur = in_flight_requests_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur != 0 && cur + n > cfg_.max_pending_requests) return false;
      if (in_flight_requests_.compare_exchange_weak(
              cur, cur + n, std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  // Blocking admission: spin over try_acquire_budget, parking on space_cv_
  // between attempts. Returns false only when the service closes while
  // waiting. submit_waits counts blocking episodes, not park iterations.
  bool acquire_budget(std::size_t n) {
    if (try_acquire_budget(n)) return true;
    ctr_.submit_waits.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(hub_->mu);
    for (;;) {
      if (hub_->closed.load(std::memory_order_relaxed)) return false;
      if (try_acquire_budget(n)) return true;
      // Bounded wait: fulfill_group notifies space_cv_ under hub_->mu, but
      // the 1ms ceiling makes a lost wakeup a hiccup rather than a hang.
      space_cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
  }

  void release_budget(std::size_t n) {
    in_flight_requests_.fetch_sub(n, std::memory_order_relaxed);
    space_cv_.notify_all();
  }

  // Ring-mode submit seam shared by submit / try_submit /
  // submit_with_deadline. Returns nullopt only for the non-blocking caller
  // when admission or the ring rejects; blocking callers always get a
  // completion or an exception.
  std::optional<completion<D>> submit_lockfree(std::vector<request<D>> batch,
                                               std::uint64_t deadline_rel_ns,
                                               bool blocking,
                                               const char* who) {
    if (blocking) {
      if (!acquire_budget(batch.size())) {
        throw std::runtime_error(std::string(who) +
                                 " on closed query_service");
      }
    } else {
      if (hub_->closed.load(std::memory_order_seq_cst)) {
        throw std::runtime_error(std::string(who) +
                                 " on closed query_service");
      }
      if (!try_acquire_budget(batch.size())) {
        ctr_.try_submit_rejects.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
    }
    const std::size_t n = batch.size();
    // Entrants window: the drain loop must not conclude "closed and ring
    // empty => done" while a producer is between the closed check and its
    // push. fetch_add is seq_cst so it orders against close()'s store.
    submit_entrants_.fetch_add(1, std::memory_order_seq_cst);
    if (hub_->closed.load(std::memory_order_seq_cst)) {
      submit_entrants_.fetch_sub(1, std::memory_order_seq_cst);
      release_budget(n);
      throw std::runtime_error(std::string(who) + " on closed query_service");
    }
    const std::uint64_t id =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    auto rec = std::make_shared<typename detail::completion_hub<D>::record>();
    rec->id = id;
    const std::uint64_t now = tel_.now_ns();
    pending_entry e{id, std::move(batch), now};
    if (deadline_rel_ns > 0) e.deadline_ns = now + deadline_rel_ns;
    e.rec = rec;
    const auto st = blocking ? ring_->push(std::move(e)) : ring_->try_push(e);
    submit_entrants_.fetch_sub(1, std::memory_order_seq_cst);
    if (st == push_status::closed) {
      release_budget(n);
      throw std::runtime_error(std::string(who) + " on closed query_service");
    }
    if (st == push_status::full) {  // non-blocking only
      release_budget(n);
      ctr_.try_submit_rejects.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    ctr_.num_tickets.fetch_add(1, std::memory_order_relaxed);
    return completion<D>(hub_, std::move(rec));
  }

  // ---- sharded gather-merge -----------------------------------------------

  // Gather-merge for scattered reads: range rows concatenate; k-NN rows
  // collect candidates from every shard, then re-sort by distance and
  // truncate to k. `sub_idx` indexes `batch` absolutely; rows land in
  // `responses[begin..end)`.
  void merge_shard_reads(const std::vector<request<D>>& batch,
                         std::size_t begin, std::size_t end,
                         const std::vector<std::vector<std::size_t>>& sub_idx,
                         std::vector<batch_result<D>>& shard_res,
                         std::vector<response<D>>& responses) const {
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      for (std::size_t j = 0; j < sub_idx[s].size(); ++j) {
        auto& dst = responses[sub_idx[s][j]].points;
        auto& src = shard_res[s].responses[j].points;
        if (dst.empty()) {
          dst = std::move(src);
        } else {
          dst.insert(dst.end(), src.begin(), src.end());
        }
      }
    }
    if (cfg_.shards == 1) return;  // single source: rows are already exact
    for (std::size_t i = begin; i < end; ++i) {
      if (batch[i].kind != op::knn) continue;
      auto& row = responses[i].points;
      const point<D>& q = batch[i].p;
      std::stable_sort(row.begin(), row.end(),
                       [&](const point<D>& a, const point<D>& b) {
                         return a.dist_sq(q) < b.dist_sq(q);
                       });
      if (row.size() > batch[i].k) row.resize(batch[i].k);
    }
  }

  // ---- routing ------------------------------------------------------------

  // Quantile stripes along the widest dimension of `pts`: bounds_[s-1] is
  // the left edge of shard s, so shard s owns [bounds_[s-1], bounds_[s]).
  // Duplicate coordinates would let naive quantile cuts collide into
  // zero-width stripes — shards that can never own a point while every
  // write funnels into one lane — so cuts are forced strictly increasing:
  // a colliding cut advances to the next distinct coordinate value, and
  // when the distinct values run out the remaining cuts are +inf (those
  // shards stay empty and range pruning skips them, rather than one shard
  // silently swallowing the whole stream).
  void set_spatial_bounds(const std::vector<point<D>>& pts) {
    if (pts.empty() || cfg_.shards == 1) return;
    aabb<D> box;
    for (const auto& p : pts) box.extend(p);
    split_dim_ = box.widest_dim();
    std::vector<double> coords(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      coords[i] = pts[i][split_dim_];
    }
    std::sort(coords.begin(), coords.end());
    bounds_.assign(cfg_.shards - 1,
                   std::numeric_limits<double>::infinity());
    double prev = coords.front();  // cuts must also exceed the min value
    for (std::size_t s = 0; s + 1 < cfg_.shards; ++s) {
      double cut = coords[(s + 1) * coords.size() / cfg_.shards];
      if (!(cut > prev)) {
        const auto it =
            std::upper_bound(coords.begin(), coords.end(), prev);
        if (it == coords.end()) break;  // no distinct value left: +inf tail
        cut = *it;
      }
      bounds_[s] = cut;
      prev = cut;
    }
    bounds_set_ = true;
  }

  // Non-finite payload coordinates would break routing silently: every
  // stripe comparison on NaN is false, so owner_of/shard_serves would
  // dump the request into an arbitrary shard, and bit-distinct NaNs
  // defeat the canonicalization that keeps routing and cache keys
  // consistent. Reject at the front door instead.
  static void validate_batch(const std::vector<request<D>>& batch) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& r = batch[i];
      bool ok = true;
      if (r.kind == op::range_box) {
        for (int d = 0; d < D; ++d) {
          ok = ok && std::isfinite(r.box.lo[d]) && std::isfinite(r.box.hi[d]);
        }
      } else {
        for (int d = 0; d < D; ++d) ok = ok && std::isfinite(r.p[d]);
        if (r.kind == op::range_ball) ok = ok && std::isfinite(r.radius);
      }
      if (!ok) {
        throw std::invalid_argument(
            "query_service: request " + std::to_string(i) + " (" +
            op_name(r.kind) + ") has a non-finite coordinate");
      }
    }
  }

  std::size_t owner_of(const point<D>& p) const {
    if (cfg_.shards == 1) return 0;
    if (cfg_.policy == shard_policy::spatial) {
      if (!bounds_set_) return 0;
      return static_cast<std::size_t>(
          std::upper_bound(bounds_.begin(), bounds_.end(), p[split_dim_]) -
          bounds_.begin());
    }
    return hash_point(p) % cfg_.shards;
  }

  // True if shard s can hold points relevant to read request `r`. Hash
  // placement scatters reads everywhere; spatial stripes prune ranges whose
  // interval along split_dim_ misses the stripe.
  bool shard_serves(std::size_t s, const request<D>& r) const {
    if (cfg_.shards == 1) return s == 0;
    if (r.kind == op::knn) return true;
    if (cfg_.policy != shard_policy::spatial || !bounds_set_) return true;
    double lo, hi;
    if (r.kind == op::range_box) {
      lo = r.box.lo[split_dim_];
      hi = r.box.hi[split_dim_];
    } else {
      // Backends compare dist_sq <= radius^2, so a negative radius behaves
      // like its magnitude — prune with |radius| or the interval inverts.
      const double radius = std::abs(r.radius);
      lo = r.p[split_dim_] - radius;
      hi = r.p[split_dim_] + radius;
    }
    const bool left_ok = s == 0 || bounds_[s - 1] <= hi;
    const bool right_ok = s + 1 == cfg_.shards || bounds_[s] > lo;
    return left_ok && right_ok;
  }

  /// First sampled ticket in a drain group (0 = untraced): the group's
  /// spans carry one representative id so a sampled request's whole
  /// chain — queue_wait through fulfil — lands in the ring together.
  std::uint64_t pick_trace_ticket(
      const std::vector<pending_entry>& tickets) const {
    if (!tel_.tracing()) return 0;
    for (const auto& e : tickets) {
      if (tel_.sampled(e.id)) return e.id;
    }
    return 0;
  }

  static std::size_t hash_point(const point<D>& p) {
    // FNV-1a over canonical coordinate bits (result_cache.h holds the one
    // definition): equal points (the routing key) always hash alike, and
    // routing stays bit-for-bit consistent with the cache keys.
    return static_cast<std::size_t>(detail::point_fnv1a(p));
  }

  std::vector<std::vector<point<D>>> partition_points(
      const std::vector<point<D>>& pts) const {
    std::vector<std::vector<point<D>>> parts(cfg_.shards);
    for (const auto& p : pts) parts[owner_of(p)].push_back(p);
    return parts;
  }

  // Scalar service counters, each its own relaxed atomic: every site that
  // used to take hub_->mu just to bump a tally now writes here, and
  // stats() assembles a service_stats from plain loads — observability
  // never contends with ingest. (Cross-field snapshots are not atomic;
  // the old mutex never promised more to concurrent writers either.)
  struct hot_counters {
    std::atomic<std::uint64_t> num_tickets{0};
    std::atomic<std::uint64_t> num_drains{0};
    std::atomic<std::uint64_t> num_requests{0};
    std::atomic<std::uint64_t> num_read_groups{0};
    std::atomic<std::uint64_t> num_write_groups{0};
    std::atomic<std::uint64_t> snapshot_lag_drains{0};
    std::atomic<std::uint64_t> submit_waits{0};
    std::atomic<std::uint64_t> try_submit_rejects{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> expired_points{0};
    std::atomic<std::uint64_t> rebalances{0};
    std::atomic<std::uint64_t> rebalance_moved{0};
    std::atomic<std::uint64_t> replayed_groups{0};
    std::atomic<std::uint64_t> replayed_records{0};
    std::atomic<std::uint64_t> replay_errors{0};
    std::atomic<std::uint64_t> log_append_errors{0};
    std::atomic<std::uint64_t> checkpoints{0};
    std::atomic<std::uint64_t> checkpoint_errors{0};
    std::atomic<std::uint64_t> recovered_epochs{0};
    std::atomic<std::uint64_t> execute_ns{0};
  };

  service_config cfg_;
  /// Request-lifecycle telemetry hub (query/telemetry.h): all stage
  /// stamps, histograms, and the trace ring. Declared right after cfg_ —
  /// it is constructed from it and everything below may record into it.
  class telemetry tel_;
  /// Epoch-based snapshot reclamation (query/epoch_reclaim.h). Declared
  /// before engines_ on purpose: the backends hold a raw pointer to it
  /// (set_reclaimer) and their retire hooks may fire during engine
  /// destruction, so the reclaimer must be destroyed after them.
  epoch_reclaimer reclaim_;
  std::vector<std::unique_ptr<query_engine<D>>> engines_;
  /// Hot result caches (k-NN / box / ball rows), one per shard
  /// (query/result_cache.h).
  std::vector<std::unique_ptr<result_cache<D>>> caches_;
  /// Per-shard executor lanes (workers run only under per_shard; the
  /// queues and counters are used in both modes).
  std::vector<std::unique_ptr<shard_lane>> lanes_;

  // Spatial stripes. Only touched by bootstrap or the drain thread (lanes
  // and read tasks receive routed sub-batches, never raw bounds); with
  // rebalance_threshold set they are re-derived at drain boundaries by
  // rebalance_stripes() — always with the lanes quiesced, so every group
  // routes AND executes under one consistent set of bounds.
  int split_dim_ = 0;
  std::vector<double> bounds_;
  bool bounds_set_ = false;
  // Rebalance trigger state (drain-thread only, like the bounds).
  std::vector<std::size_t> resident_est_;  // per-shard resident estimates
  std::size_t writes_since_rebalance_ = 0;
  bool rebalance_attempted_ = false;
  bool last_rebalance_futile_ = false;

  // Continuous queries (query/subscription.h). The registry is shared
  // with the handles (they stay valid after the service dies);
  // write_touched_ and affected_scratch_ are drain-thread scratch — the
  // per-group mask of shards a write group routed into, and the
  // collect_affected output buffer.
  std::shared_ptr<watch_registry<D>> watches_;
  std::vector<unsigned char> write_touched_;
  std::vector<std::pair<std::uint64_t, request<D>>> affected_scratch_;

  // TTL expiry. ttl_q_ holds (deadline, point) in nondecreasing deadline
  // order — one drain-thread clock stamps appends group by group, and
  // re-queued duplicates are already due — so the sweep only ever pops
  // the front. ttl_mu_ guards it (bootstrap runs off-thread).
  std::function<std::uint64_t()> ttl_now_;
  std::mutex ttl_mu_;
  std::deque<std::pair<std::uint64_t, point<D>>> ttl_q_;
  std::uint64_t ttl_batch_deadline_ = 0;  // drain-thread scratch

  // Ingest queue + completion state. The hub outlives the service for
  // late redemptions. In mutex mode hub_->mu guards pending_; in lockfree
  // mode producers publish through ring_ and pending_ is drain-local
  // (formation scratch, no lock). next_ticket_ / in_flight_requests_ are
  // atomics in both modes — submission never takes hub_->mu to count.
  std::shared_ptr<detail::completion_hub<D>> hub_;
  std::condition_variable work_cv_;   // drain thread wakeup (hub_->mu)
  std::condition_variable space_cv_;  // backpressure wakeup (hub_->mu)
  std::deque<pending_entry> pending_;
  std::atomic<std::uint64_t> next_ticket_{1};
  std::atomic<std::size_t> in_flight_requests_{0};  // admitted, not fulfilled
  hot_counters ctr_;
  // Lock-free ingest (cfg_.ingest == ingest_mode::lockfree): bounded MPSC
  // ring between producers and the drain thread. submit_entrants_ counts
  // producers between their closed-check and push (the drain loop must
  // not conclude "closed and empty => done" across that window);
  // replay_pending_ counts replica log groups parked in replay_q_ so the
  // lockfree drain knows to take hub_->mu and collect them.
  std::unique_ptr<mpsc_ring<pending_entry>> ring_;
  std::atomic<std::uint64_t> submit_entrants_{0};
  std::atomic<std::size_t> replay_pending_{0};

  // Routing scratch recycling pool.
  mutable std::mutex scratch_mu_;
  std::vector<std::vector<request<D>>> spare_req_;
  std::vector<std::vector<std::size_t>> spare_idx_;
  std::size_t scratch_reuses_ = 0;
  std::size_t scratch_allocs_ = 0;

  // Snapshot-read executor pool.
  std::mutex read_mu_;
  std::condition_variable read_cv_;
  std::deque<std::shared_ptr<read_group>> read_q_;
  bool read_shutdown_ = false;

  // Replication (query/oplog.h). log_ is attached before traffic and
  // appended to only by the drain thread (plus bootstrap, pre-traffic) —
  // log order is commit order. Replica side: replay_q_ (hub_->mu) feeds
  // the drain thread log groups in epoch order, applied_epoch_ is the
  // replay position routers gate reads on, next_group_origin_ is
  // drain-thread scratch tagging TTL sweeps. watch_cache_hits_ counts
  // watch-path rows the result cache served (reader threads bump it).
  std::shared_ptr<op_log<D>> log_;
  std::deque<log_group<D>> replay_q_;
  // Drain-thread scratch: latched once a durable append fails (later
  // write groups fail fast; reads keep serving), and the write-group
  // counter that paces maybe_checkpoint().
  bool log_failed_ = false;
  std::size_t write_groups_since_ck_ = 0;
  std::atomic<std::uint64_t> applied_epoch_{0};
  // wait_replay_drained() barrier: groups handed to apply_replayed vs
  // groups the drain thread finished processing (dispatch-complete).
  std::atomic<std::uint64_t> replay_enqueued_{0};
  std::atomic<std::uint64_t> replay_done_{0};
  log_origin next_group_origin_ = log_origin::client;
  std::atomic<std::uint64_t> watch_cache_hits_{0};

  std::mutex close_mu_;
  bool threads_joined_ = false;
  std::thread drainer_;
  std::vector<std::thread> readers_;
};

// The common dimensions are instantiated once in query_service.cpp.
extern template class query_service<2>;
extern template class query_service<3>;

}  // namespace pargeo::query
