// Replayable write-op log (query subsystem) — the scale-out seam.
//
// Every committed write drain on the primary `query_service<D>` appends
// one `log_group<D>` here: the *exact ordered backend calls* the primary
// executed, per shard, not the raw client ops. That distinction is what
// makes replay byte-identical: the batch-dynamic backends are
// deterministic functions of their call sequence (a kdtree rebuild
// threshold, the zdtree's sorted merges, the bdltree cascade all depend
// on how the stream was cut into `batch_insert`/`batch_erase` calls), so
// a replica that re-issues the same per-shard call sequence converges to
// the same structure — and hence the same k-NN tie order — as the
// primary, regardless of which drain mode produced the cuts.
//
//   *Groups and epochs*. `append()` assigns dense epochs (1, 2, ...)
//   under the log mutex; the primary's drain thread is the only
//   appender, so log order == commit order. A group records its origin
//   (`bootstrap` | `client` | `expire` | `rebalance`), the spatial
//   stripe geometry when the group (re)defines it, and the ordered
//   per-shard records `{shard, build|insert|erase, points}`.
//
//   *Ring retention*. The in-memory deque keeps the most recent
//   `capacity` groups (drop-oldest); `first_retained()` names the oldest
//   epoch still present. `read_from(after)` throws when the ring has
//   already dropped groups a tailer still needs — a replay gap is not
//   papered over here; replicas recover from it via checkpoint resync.
//   `compact(below)` drops retained groups at or below an epoch (the
//   checkpoint's) and rewrites the durable file so cold recovery stops
//   replaying from epoch 1.
//
//   *Durable segmented format (v2)*. The file is a self-checksummed
//   header followed by independent frames, one per group:
//
//     header:  "PGOL" | u32 version=2 | u32 dim | u64 start_after
//              | u64 fnv1a(header bytes)
//     frame:   u32 len | group payload (len bytes) | u64 fnv1a(payload)
//
//   `start_after` is the epoch base: the first frame holds epoch
//   start_after + 1 and frames are dense from there. Because every
//   frame carries its own checksum, `open_durable()` can append
//   incrementally (with `sync_policy::{none, interval, every_commit}`
//   controlling fsync cadence) and `read_log()` can *salvage* the
//   longest valid frame prefix of a torn file — a crash mid-append
//   costs only the trailing partial frame, counted in
//   `log_recovery_stats::truncated_groups`, instead of rejecting the
//   whole file. Whole-file rejection remains only for header damage
//   (bad magic / version / dim / header checksum).
//
// Thread-safety: all members are safe from any thread (one mutex; the
// hot path is the drain thread's append vs the tail threads' read_from /
// wait_for_head). Note an fsync under `every_commit` runs inside the
// mutex and briefly blocks concurrent readers.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/point.h"
#include "query/fault.h"

namespace pargeo::query {

/// The backend call a log record replays. `build` replaces the shard's
/// contents (bootstrap); `insert`/`erase` are the batch-dynamic entry
/// points.
enum class log_op : std::uint8_t { build = 0, insert = 1, erase = 2 };

inline const char* log_op_name(log_op o) {
  switch (o) {
    case log_op::build: return "build";
    case log_op::insert: return "insert";
    case log_op::erase: return "erase";
  }
  return "?";
}

/// Why the primary committed this group.
enum class log_origin : std::uint8_t {
  bootstrap = 0,  // initial build (all shards, possibly empty)
  client = 1,     // a drained client write group
  expire = 2,     // a TTL-expiry sweep
  rebalance = 3,  // a stripe-rebalance migration (new bounds + moves)
};

inline const char* log_origin_name(log_origin o) {
  switch (o) {
    case log_origin::bootstrap: return "bootstrap";
    case log_origin::client: return "client";
    case log_origin::expire: return "expire";
    case log_origin::rebalance: return "rebalance";
  }
  return "?";
}

/// When to fsync the durable log file.
enum class sync_policy : std::uint8_t {
  none = 0,          // flush to page cache only (survives process death)
  interval = 1,      // fsync every `sync_interval_groups` appends
  every_commit = 2,  // fsync after every append (survives power loss)
};

inline const char* sync_policy_name(sync_policy s) {
  switch (s) {
    case sync_policy::none: return "none";
    case sync_policy::interval: return "interval";
    case sync_policy::every_commit: return "every_commit";
  }
  return "?";
}

inline sync_policy sync_policy_from_string(const std::string& s) {
  if (s == "none") return sync_policy::none;
  if (s == "interval") return sync_policy::interval;
  if (s == "every_commit") return sync_policy::every_commit;
  throw std::invalid_argument("unknown sync policy '" + s +
                              "' (want none|interval|every_commit)");
}

/// What read_log() salvaged from a durable file.
struct log_recovery_stats {
  std::uint64_t groups = 0;            // frames accepted
  std::uint64_t truncated_groups = 0;  // trailing frames dropped as torn/corrupt
  std::uint64_t start_after = 0;       // epoch base from the file header
};

/// Durable-append counters (bench + metrics export).
struct log_durable_stats {
  std::uint64_t frames = 0;  // frames appended since open_durable()
  std::uint64_t syncs = 0;   // fsync calls issued
  std::uint64_t bytes = 0;   // bytes handed to the OS (incl. torn writes)
  bool failed = false;       // a write fault latched the file off
};

/// One backend call on one shard: replayed verbatim, in record order.
template <int D>
struct log_record {
  std::uint32_t shard = 0;
  log_op kind = log_op::insert;
  std::vector<point<D>> pts;
};

/// One committed write group. `records` hold the primary's per-shard
/// backend calls in the order it issued them (per shard; records of
/// different shards may have executed concurrently and carry no mutual
/// order beyond their position here). Groups that (re)define spatial
/// stripe geometry — bootstrap under spatial sharding, every rebalance —
/// set `has_bounds` and carry the splitting dimension plus the stripe
/// cut positions so replicas route identically afterwards.
template <int D>
struct log_group {
  std::uint64_t epoch = 0;  // dense commit sequence, assigned by append()
  log_origin origin = log_origin::client;
  bool has_bounds = false;
  std::int32_t split_dim = 0;
  std::vector<double> cuts;  // stripe upper cuts, size == shards - 1
  std::vector<log_record<D>> records;

  std::size_t num_points() const {
    std::size_t n = 0;
    for (const auto& r : records) n += r.pts.size();
    return n;
  }
};

template <int D>
class op_log {
 public:
  /// `capacity` bounds retained groups (drop-oldest past it).
  explicit op_log(std::size_t capacity = std::size_t{1} << 20)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  op_log(const op_log&) = delete;
  op_log& operator=(const op_log&) = delete;

  ~op_log() {
    std::lock_guard<std::mutex> lk(mu_);
    close_file_locked();
  }

  /// Appends `g`, assigning the next dense epoch; returns it. Wakes any
  /// wait_for_head() tailers. When a durable file is attached the frame
  /// is written (and fsynced per policy) *before* the group is published
  /// to the ring; a write failure throws without advancing the head and
  /// latches the log into a failed state (every later append throws),
  /// emulating a dead process for writes.
  std::uint64_t append(log_group<D> g) {
    fault::fire(fault::kOplogAppend);  // may throw (injected append failure)
    std::unique_lock<std::mutex> lk(mu_);
    if (durable_.failed) {
      throw std::runtime_error("op_log: durable log '" + path_ +
                               "' is in a failed state");
    }
    const std::uint64_t epoch = head_ + 1;
    g.epoch = epoch;
    if (file_) append_frame_locked(g);  // throws on torn/short write
    head_ = epoch;
    groups_.push_back(std::move(g));
    while (groups_.size() > capacity_) groups_.pop_front();
    lk.unlock();
    cv_.notify_all();
    return epoch;
  }

  /// Epoch of the most recently appended group (0 = empty log).
  std::uint64_t head() const {
    std::lock_guard<std::mutex> lk(mu_);
    return head_;
  }

  /// Oldest epoch still retained in the ring (head()+1 when empty —
  /// i.e. nothing retained, nothing dropped that matters).
  std::uint64_t first_retained() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_retained_locked();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return groups_.size();
  }

  /// Copies up to `max` groups with epoch > `after`, in epoch order.
  /// Throws std::runtime_error when the ring already dropped a group the
  /// caller still needs (replay gap): after + 1 < first_retained().
  std::vector<log_group<D>> read_from(
      std::uint64_t after,
      std::size_t max = std::numeric_limits<std::size_t>::max()) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (after + 1 < first_retained_locked()) {
      throw std::runtime_error(
          "op_log: replay gap — epoch " + std::to_string(after + 1) +
          " already evicted (first retained: " +
          std::to_string(first_retained_locked()) + ")");
    }
    std::vector<log_group<D>> out;
    for (const auto& g : groups_) {
      if (g.epoch <= after) continue;
      if (out.size() >= max) break;
      out.push_back(g);
    }
    return out;
  }

  /// Blocks until head() > after or the timeout expires; true iff new
  /// groups are available.
  bool wait_for_head(std::uint64_t after,
                     std::chrono::nanoseconds timeout) const {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, timeout, [&] { return head_ > after; });
  }

  // ---- durability ----------------------------------------------------------

  /// Attaches a durable file at `path`: atomically rewrites it (tmp +
  /// rename) with the currently retained groups, then keeps it open so
  /// every subsequent append() lands as one self-checksummed frame.
  /// Throws std::runtime_error on I/O failure.
  void open_durable(const std::string& path,
                    sync_policy sync = sync_policy::interval,
                    std::uint32_t sync_interval_groups = 32) {
    std::lock_guard<std::mutex> lk(mu_);
    close_file_locked();
    path_ = path;
    sync_ = sync;
    sync_interval_ = sync_interval_groups == 0 ? 1 : sync_interval_groups;
    since_sync_ = 0;
    durable_ = {};
    rewrite_file_locked();
  }

  /// Detaches the durable file (final flush + close). The in-memory
  /// ring is untouched.
  void close_durable() {
    std::lock_guard<std::mutex> lk(mu_);
    close_file_locked();
  }

  bool durable() const {
    std::lock_guard<std::mutex> lk(mu_);
    return file_ != nullptr;
  }

  sync_policy sync() const {
    std::lock_guard<std::mutex> lk(mu_);
    return sync_;
  }

  log_durable_stats durable_stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return durable_;
  }

  /// What read_log() salvaged when this log was loaded from disk
  /// (all-zero for a log that was never recovered).
  log_recovery_stats recovery_stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return recovered_;
  }

  /// Rebases an empty log so appends continue from `epoch + 1` —
  /// recovery with a checkpoint but no salvageable log file needs the
  /// epoch sequence to resume where the checkpoint left off. Throws
  /// std::logic_error when the log already holds groups.
  void reset_base(std::uint64_t epoch) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!groups_.empty()) {
      throw std::logic_error("op_log::reset_base on a non-empty log");
    }
    head_ = epoch;
    start_after_ = epoch;
  }

  /// Epoch base of the durable file (first frame = start_after + 1).
  std::uint64_t start_after() const {
    std::lock_guard<std::mutex> lk(mu_);
    return start_after_;
  }

  /// Drops retained groups with epoch <= `below` (checkpoint
  /// compaction) and, when durable, atomically rewrites the file so it
  /// starts just past the dropped prefix. Returns how many groups were
  /// dropped from the ring. Tailers whose applied epoch falls below the
  /// new first_retained() will hit a replay gap and must resync from
  /// the checkpoint.
  std::size_t compact(std::uint64_t below) {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t dropped = 0;
    while (!groups_.empty() && groups_.front().epoch <= below) {
      groups_.pop_front();
      ++dropped;
    }
    if (file_ && !durable_.failed) rewrite_file_locked();
    return dropped;
  }

  // ---- serialization -------------------------------------------------------

  /// One-shot dump of the retained groups to `path` in the v2 segmented
  /// format. Throws std::runtime_error on I/O failure.
  void write_log(const std::string& path) const {
    std::vector<unsigned char> buf;
    {
      std::lock_guard<std::mutex> lk(mu_);
      serialize_all_locked(buf);
    }
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
      throw std::runtime_error("op_log: cannot open '" + path +
                               "' for writing");
    }
    const std::size_t wrote = std::fwrite(buf.data(), 1, buf.size(), f);
    const bool ok = wrote == buf.size() && std::fclose(f) == 0;
    if (!ok) {
      throw std::runtime_error("op_log: short write to '" + path + "'");
    }
  }

  /// Loads a durable log file, salvaging the longest valid frame prefix.
  /// The returned log's head continues from the highest salvaged epoch
  /// (or the header's start_after when no frame survived). Trailing
  /// torn/corrupt frames are counted in `log_recovery_stats::
  /// truncated_groups` (also available via recovery_stats() and, when
  /// non-null, `*stats_out`). Throws std::runtime_error only for header
  /// damage: missing file, short header, bad magic, unsupported
  /// version, dimension mismatch, or header checksum failure.
  static std::shared_ptr<op_log> read_log(
      const std::string& path, std::size_t capacity = std::size_t{1} << 20,
      log_recovery_stats* stats_out = nullptr) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
      throw std::runtime_error("op_log: cannot open '" + path + "'");
    }
    std::vector<unsigned char> buf;
    unsigned char chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      buf.insert(buf.end(), chunk, chunk + got);
    }
    std::fclose(f);

    // Header: strict. Anything wrong here rejects the whole file.
    if (buf.size() < kHeaderSize) {
      throw std::runtime_error("op_log: '" + path +
                               "' truncated (shorter than header)");
    }
    if (std::memcmp(buf.data(), kMagic, 4) != 0) {
      throw std::runtime_error("op_log: '" + path + "' bad magic");
    }
    reader hd{buf.data(), kHeaderSize, 4, path};
    const std::uint32_t ver = hd.u32();
    if (ver != kVersion) {
      throw std::runtime_error("op_log: '" + path +
                               "' unsupported format version " +
                               std::to_string(ver));
    }
    const std::uint32_t dim = hd.u32();
    if (dim != static_cast<std::uint32_t>(D)) {
      throw std::runtime_error("op_log: '" + path + "' holds dim-" +
                               std::to_string(dim) + " groups, want dim-" +
                               std::to_string(D));
    }
    const std::uint64_t start_after = hd.u64();
    const std::uint64_t header_sum = hd.u64();
    if (fnv1a(buf.data(), kHeaderSize - 8) != header_sum) {
      throw std::runtime_error("op_log: '" + path + "' header checksum mismatch");
    }

    // Frames: salvage the longest valid dense-epoch prefix.
    auto log = std::make_shared<op_log>(capacity);
    log->start_after_ = start_after;
    log->head_ = start_after;
    std::size_t off = kHeaderSize;
    while (off < buf.size()) {
      std::uint32_t len = 0;
      if (buf.size() - off < 4) break;
      std::memcpy(&len, buf.data() + off, 4);
      if (len == 0 || len > buf.size() - off - 4 ||
          buf.size() - off - 4 - len < 8) {
        break;  // torn frame: length field or body runs past EOF
      }
      const unsigned char* payload = buf.data() + off + 4;
      std::uint64_t want = 0;
      std::memcpy(&want, payload + len, 8);
      if (fnv1a(payload, len) != want) break;  // corrupt frame body

      log_group<D> g;
      try {
        reader rd{payload, len, 0, path};
        parse_group_body(rd, g, path);
        if (rd.off != len) break;  // trailing garbage inside the frame
      } catch (const std::exception&) {
        break;  // structurally invalid despite matching checksum
      }
      if (g.epoch != log->head_ + 1) break;  // epoch discontinuity

      log->head_ = g.epoch;
      log->groups_.push_back(std::move(g));
      while (log->groups_.size() > log->capacity_) log->groups_.pop_front();
      ++log->recovered_.groups;
      off += std::size_t{4} + len + 8;
    }

    // Count what was dropped by structurally walking the remainder.
    // Exact when only frame *bodies* were corrupted (framing intact);
    // a genuinely torn tail counts as one truncated group.
    std::size_t scan = off;
    while (scan < buf.size()) {
      ++log->recovered_.truncated_groups;
      if (buf.size() - scan < 4) break;
      std::uint32_t len = 0;
      std::memcpy(&len, buf.data() + scan, 4);
      if (len == 0 || len > buf.size() - scan - 4 ||
          buf.size() - scan - 4 - len < 8) {
        break;
      }
      scan += std::size_t{4} + len + 8;
    }
    log->recovered_.start_after = start_after;
    if (stats_out) *stats_out = log->recovered_;
    return log;
  }

 private:
  static constexpr char kMagic[5] = "PGOL";
  static constexpr std::uint32_t kVersion = 2;
  // magic + version + dim + start_after + header checksum
  static constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 8;

  std::uint64_t first_retained_locked() const {
    return groups_.empty() ? head_ + 1 : groups_.front().epoch;
  }

  // -- little-endian put/get helpers (host is LE on every supported
  //    target; memcpy keeps it alias-safe) ----------------------------------
  static void put_bytes(std::vector<unsigned char>& b, const void* p,
                        std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    b.insert(b.end(), c, c + n);
  }
  static void put_u8(std::vector<unsigned char>& b, std::uint8_t v) {
    b.push_back(v);
  }
  static void put_u32(std::vector<unsigned char>& b, std::uint32_t v) {
    put_bytes(b, &v, 4);
  }
  static void put_u64(std::vector<unsigned char>& b, std::uint64_t v) {
    put_bytes(b, &v, 8);
  }
  static void put_f64(std::vector<unsigned char>& b, double v) {
    put_bytes(b, &v, 8);
  }

  struct reader {
    const unsigned char* data;
    std::size_t len;
    std::size_t off;
    const std::string& path;

    void need(std::size_t n) const {
      if (off + n > len) {
        throw std::runtime_error("op_log: '" + path + "' truncated");
      }
    }
    void bytes(void* out, std::size_t n) {
      need(n);
      std::memcpy(out, data + off, n);
      off += n;
    }
    std::uint8_t u8() {
      std::uint8_t v;
      bytes(&v, 1);
      return v;
    }
    std::uint32_t u32() {
      std::uint32_t v;
      bytes(&v, 4);
      return v;
    }
    std::uint64_t u64() {
      std::uint64_t v;
      bytes(&v, 8);
      return v;
    }
    double f64() {
      double v;
      bytes(&v, 8);
      return v;
    }
    /// Reads an element count and bounds-checks it against the bytes
    /// remaining (each element at least `min_elem_bytes`), so a corrupt
    /// count cannot drive a multi-GB resize before the truncation check.
    std::size_t checked_count(std::size_t min_elem_bytes) {
      const std::uint64_t n = u64();
      if (min_elem_bytes > 0 && n > (len - off) / min_elem_bytes) {
        throw std::runtime_error("op_log: '" + path +
                                 "' truncated (element count exceeds file)");
      }
      return static_cast<std::size_t>(n);
    }
  };

  static log_origin checked_origin(std::uint8_t v, const std::string& path) {
    if (v > static_cast<std::uint8_t>(log_origin::rebalance)) {
      throw std::runtime_error("op_log: '" + path + "' bad origin tag");
    }
    return static_cast<log_origin>(v);
  }
  static log_op checked_op(std::uint8_t v, const std::string& path) {
    if (v > static_cast<std::uint8_t>(log_op::erase)) {
      throw std::runtime_error("op_log: '" + path + "' bad op tag");
    }
    return static_cast<log_op>(v);
  }

  static std::uint64_t fnv1a(const unsigned char* p, std::size_t n) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
    return h;
  }

  // -- group body <-> bytes --------------------------------------------------
  static void put_group_body(std::vector<unsigned char>& buf,
                             const log_group<D>& g) {
    put_u64(buf, g.epoch);
    put_u8(buf, static_cast<std::uint8_t>(g.origin));
    put_u8(buf, g.has_bounds ? 1 : 0);
    put_u32(buf, static_cast<std::uint32_t>(g.split_dim));
    put_u64(buf, g.cuts.size());
    for (double c : g.cuts) put_f64(buf, c);
    put_u64(buf, g.records.size());
    for (const auto& r : g.records) {
      put_u32(buf, r.shard);
      put_u8(buf, static_cast<std::uint8_t>(r.kind));
      put_u64(buf, r.pts.size());
      for (const auto& p : r.pts) {
        for (int d = 0; d < D; ++d) put_f64(buf, p[d]);
      }
    }
  }

  static void parse_group_body(reader& rd, log_group<D>& g,
                               const std::string& path) {
    g.epoch = rd.u64();
    g.origin = checked_origin(rd.u8(), path);
    g.has_bounds = rd.u8() != 0;
    g.split_dim = static_cast<std::int32_t>(rd.u32());
    g.cuts.resize(rd.checked_count(sizeof(double)));
    for (auto& c : g.cuts) c = rd.f64();
    g.records.resize(rd.checked_count(4 + 1 + 8));
    for (auto& r : g.records) {
      r.shard = rd.u32();
      r.kind = checked_op(rd.u8(), path);
      r.pts.resize(rd.checked_count(sizeof(double) * D));
      for (auto& p : r.pts) {
        for (int d = 0; d < D; ++d) p[d] = rd.f64();
      }
    }
  }

  /// frame = u32 len | payload | u64 fnv1a(payload)
  static void put_frame(std::vector<unsigned char>& buf,
                        const log_group<D>& g) {
    std::vector<unsigned char> payload;
    put_group_body(payload, g);
    put_u32(buf, static_cast<std::uint32_t>(payload.size()));
    put_bytes(buf, payload.data(), payload.size());
    put_u64(buf, fnv1a(payload.data(), payload.size()));
  }

  void put_header_locked(std::vector<unsigned char>& buf) const {
    put_bytes(buf, kMagic, 4);
    put_u32(buf, kVersion);
    put_u32(buf, static_cast<std::uint32_t>(D));
    put_u64(buf, start_after_);
    put_u64(buf, fnv1a(buf.data(), buf.size()));
  }

  void serialize_all_locked(std::vector<unsigned char>& buf) const {
    buf.reserve(kHeaderSize + groups_.size() * 64);
    put_header_locked(buf);
    for (const auto& g : groups_) put_frame(buf, g);
  }

  // -- durable file plumbing (all under mu_) ---------------------------------
  void close_file_locked() {
    if (file_) {
      std::fflush(file_);
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  void do_sync_locked() {
    std::fflush(file_);
    ::fsync(::fileno(file_));
    ++durable_.syncs;
    since_sync_ = 0;
  }

  void maybe_sync_locked() {
    switch (sync_) {
      case sync_policy::none:
        break;
      case sync_policy::every_commit:
        do_sync_locked();
        break;
      case sync_policy::interval:
        if (++since_sync_ >= sync_interval_) do_sync_locked();
        break;
    }
  }

  /// Atomically (tmp + rename) rewrites path_ with the retained groups
  /// and reopens it for appending. start_after_ is rebased to just
  /// before the first retained epoch.
  void rewrite_file_locked() {
    close_file_locked();
    start_after_ = groups_.empty() ? head_ : groups_.front().epoch - 1;
    std::vector<unsigned char> buf;
    serialize_all_locked(buf);

    const std::string tmp = path_ + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
      throw std::runtime_error("op_log: cannot open '" + tmp +
                               "' for writing");
    }
    const std::size_t wrote = std::fwrite(buf.data(), 1, buf.size(), f);
    std::fflush(f);
    ::fsync(::fileno(f));
    const bool ok = wrote == buf.size() && std::fclose(f) == 0;
    if (!ok || std::rename(tmp.c_str(), path_.c_str()) != 0) {
      throw std::runtime_error("op_log: failed to rewrite '" + path_ + "'");
    }
    durable_.bytes += wrote;
    ++durable_.syncs;
    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_) {
      throw std::runtime_error("op_log: cannot reopen '" + path_ +
                               "' for appending");
    }
  }

  /// Appends one frame for `g`. A torn-write fault (or genuine short
  /// write) leaves a partial frame on disk, latches the failed state,
  /// and throws — the caller must not publish the group.
  void append_frame_locked(const log_group<D>& g) {
    std::vector<unsigned char> frame;
    put_frame(frame, g);
    std::size_t cap = frame.size();
    bool torn = false;
    if (auto keep = fault::fire(fault::kOplogFileWrite)) {
      cap = std::min<std::size_t>(cap, static_cast<std::size_t>(*keep));
      torn = true;
    }
    const std::size_t wrote = std::fwrite(frame.data(), 1, cap, file_);
    std::fflush(file_);
    durable_.bytes += wrote;
    if (torn || wrote != frame.size()) {
      durable_.failed = true;
      throw std::runtime_error("op_log: torn write to '" + path_ + "' (" +
                               std::to_string(wrote) + "/" +
                               std::to_string(frame.size()) + " bytes)");
    }
    ++durable_.frames;
    maybe_sync_locked();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<log_group<D>> groups_;
  std::uint64_t head_ = 0;

  // durable-file state (under mu_)
  std::FILE* file_ = nullptr;
  std::string path_;
  sync_policy sync_ = sync_policy::none;
  std::uint32_t sync_interval_ = 32;
  std::uint32_t since_sync_ = 0;
  std::uint64_t start_after_ = 0;
  log_durable_stats durable_{};
  log_recovery_stats recovered_{};
};

}  // namespace pargeo::query
