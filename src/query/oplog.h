// Replayable write-op log (query subsystem) — the scale-out seam.
//
// Every committed write drain on the primary `query_service<D>` appends
// one `log_group<D>` here: the *exact ordered backend calls* the primary
// executed, per shard, not the raw client ops. That distinction is what
// makes replay byte-identical: the batch-dynamic backends are
// deterministic functions of their call sequence (a kdtree rebuild
// threshold, the zdtree's sorted merges, the bdltree cascade all depend
// on how the stream was cut into `batch_insert`/`batch_erase` calls), so
// a replica that re-issues the same per-shard call sequence converges to
// the same structure — and hence the same k-NN tie order — as the
// primary, regardless of which drain mode produced the cuts.
//
//   *Groups and epochs*. `append()` assigns dense epochs (1, 2, ...)
//   under the log mutex; the primary's drain thread is the only
//   appender, so log order == commit order. A group records its origin
//   (`bootstrap` | `client` | `expire` | `rebalance`), the spatial
//   stripe geometry when the group (re)defines it, and the ordered
//   per-shard records `{shard, build|insert|erase, points}`.
//
//   *Ring retention*. The in-memory deque keeps the most recent
//   `capacity` groups (drop-oldest); `first_retained()` names the oldest
//   epoch still present. `read_from(after)` throws when the ring has
//   already dropped groups a tailer still needs — a replay gap is
//   unrecoverable and must not be papered over.
//
//   *Serialization*. `write_log(path)` / `read_log(path)` round-trip the
//   retained groups through a versioned little-endian binary format:
//   magic "PGOL", format version, dimension, group count, payload,
//   trailing FNV-1a-64 checksum over everything before it. Truncated or
//   corrupt files (bad magic / version / dim / checksum / short read)
//   are rejected with std::runtime_error — never undefined behaviour.
//
// Thread-safety: all members are safe from any thread (one mutex; the
// hot path is the drain thread's append vs the tail threads' read_from /
// wait_for_head).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/point.h"

namespace pargeo::query {

/// The backend call a log record replays. `build` replaces the shard's
/// contents (bootstrap); `insert`/`erase` are the batch-dynamic entry
/// points.
enum class log_op : std::uint8_t { build = 0, insert = 1, erase = 2 };

inline const char* log_op_name(log_op o) {
  switch (o) {
    case log_op::build: return "build";
    case log_op::insert: return "insert";
    case log_op::erase: return "erase";
  }
  return "?";
}

/// Why the primary committed this group.
enum class log_origin : std::uint8_t {
  bootstrap = 0,  // initial build (all shards, possibly empty)
  client = 1,     // a drained client write group
  expire = 2,     // a TTL-expiry sweep
  rebalance = 3,  // a stripe-rebalance migration (new bounds + moves)
};

inline const char* log_origin_name(log_origin o) {
  switch (o) {
    case log_origin::bootstrap: return "bootstrap";
    case log_origin::client: return "client";
    case log_origin::expire: return "expire";
    case log_origin::rebalance: return "rebalance";
  }
  return "?";
}

/// One backend call on one shard: replayed verbatim, in record order.
template <int D>
struct log_record {
  std::uint32_t shard = 0;
  log_op kind = log_op::insert;
  std::vector<point<D>> pts;
};

/// One committed write group. `records` hold the primary's per-shard
/// backend calls in the order it issued them (per shard; records of
/// different shards may have executed concurrently and carry no mutual
/// order beyond their position here). Groups that (re)define spatial
/// stripe geometry — bootstrap under spatial sharding, every rebalance —
/// set `has_bounds` and carry the splitting dimension plus the stripe
/// cut positions so replicas route identically afterwards.
template <int D>
struct log_group {
  std::uint64_t epoch = 0;  // dense commit sequence, assigned by append()
  log_origin origin = log_origin::client;
  bool has_bounds = false;
  std::int32_t split_dim = 0;
  std::vector<double> cuts;  // stripe upper cuts, size == shards - 1
  std::vector<log_record<D>> records;

  std::size_t num_points() const {
    std::size_t n = 0;
    for (const auto& r : records) n += r.pts.size();
    return n;
  }
};

template <int D>
class op_log {
 public:
  /// `capacity` bounds retained groups (drop-oldest past it).
  explicit op_log(std::size_t capacity = std::size_t{1} << 20)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  op_log(const op_log&) = delete;
  op_log& operator=(const op_log&) = delete;

  /// Appends `g`, assigning the next dense epoch; returns it. Wakes any
  /// wait_for_head() tailers.
  std::uint64_t append(log_group<D> g) {
    std::unique_lock<std::mutex> lk(mu_);
    g.epoch = ++head_;
    groups_.push_back(std::move(g));
    while (groups_.size() > capacity_) groups_.pop_front();
    lk.unlock();
    cv_.notify_all();
    return head_;
  }

  /// Epoch of the most recently appended group (0 = empty log).
  std::uint64_t head() const {
    std::lock_guard<std::mutex> lk(mu_);
    return head_;
  }

  /// Oldest epoch still retained in the ring (head()+1 when empty —
  /// i.e. nothing retained, nothing dropped that matters).
  std::uint64_t first_retained() const {
    std::lock_guard<std::mutex> lk(mu_);
    return first_retained_locked();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return groups_.size();
  }

  /// Copies up to `max` groups with epoch > `after`, in epoch order.
  /// Throws std::runtime_error when the ring already dropped a group the
  /// caller still needs (replay gap): after + 1 < first_retained().
  std::vector<log_group<D>> read_from(
      std::uint64_t after,
      std::size_t max = std::numeric_limits<std::size_t>::max()) const {
    std::lock_guard<std::mutex> lk(mu_);
    if (after + 1 < first_retained_locked()) {
      throw std::runtime_error(
          "op_log: replay gap — epoch " + std::to_string(after + 1) +
          " already evicted (first retained: " +
          std::to_string(first_retained_locked()) + ")");
    }
    std::vector<log_group<D>> out;
    for (const auto& g : groups_) {
      if (g.epoch <= after) continue;
      if (out.size() >= max) break;
      out.push_back(g);
    }
    return out;
  }

  /// Blocks until head() > after or the timeout expires; true iff new
  /// groups are available.
  bool wait_for_head(std::uint64_t after,
                     std::chrono::nanoseconds timeout) const {
    std::unique_lock<std::mutex> lk(mu_);
    return cv_.wait_for(lk, timeout, [&] { return head_ > after; });
  }

  // ---- serialization -------------------------------------------------------

  /// Writes the retained groups to `path` (versioned binary + checksum).
  /// Throws std::runtime_error on I/O failure.
  void write_log(const std::string& path) const {
    std::vector<unsigned char> buf;
    {
      std::lock_guard<std::mutex> lk(mu_);
      buf.reserve(64 + groups_.size() * 64);
      put_bytes(buf, kMagic, 4);
      put_u32(buf, kVersion);
      put_u32(buf, static_cast<std::uint32_t>(D));
      put_u64(buf, groups_.size());
      for (const auto& g : groups_) {
        put_u64(buf, g.epoch);
        put_u8(buf, static_cast<std::uint8_t>(g.origin));
        put_u8(buf, g.has_bounds ? 1 : 0);
        put_u32(buf, static_cast<std::uint32_t>(g.split_dim));
        put_u64(buf, g.cuts.size());
        for (double c : g.cuts) put_f64(buf, c);
        put_u64(buf, g.records.size());
        for (const auto& r : g.records) {
          put_u32(buf, r.shard);
          put_u8(buf, static_cast<std::uint8_t>(r.kind));
          put_u64(buf, r.pts.size());
          for (const auto& p : r.pts) {
            for (int d = 0; d < D; ++d) put_f64(buf, p[d]);
          }
        }
      }
    }
    put_u64(buf, fnv1a(buf.data(), buf.size()));

    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
      throw std::runtime_error("op_log: cannot open '" + path +
                               "' for writing");
    }
    const std::size_t wrote = std::fwrite(buf.data(), 1, buf.size(), f);
    const bool ok = wrote == buf.size() && std::fclose(f) == 0;
    if (!ok) {
      throw std::runtime_error("op_log: short write to '" + path + "'");
    }
  }

  /// Loads a log previously written by write_log(). The returned log's
  /// head continues from the highest loaded epoch. Throws
  /// std::runtime_error on any malformed input (bad magic, wrong
  /// version or dimension, truncation, checksum mismatch).
  static std::shared_ptr<op_log> read_log(
      const std::string& path, std::size_t capacity = std::size_t{1} << 20) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) {
      throw std::runtime_error("op_log: cannot open '" + path + "'");
    }
    std::vector<unsigned char> buf;
    unsigned char chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      buf.insert(buf.end(), chunk, chunk + got);
    }
    std::fclose(f);

    if (buf.size() < 4 + 4 + 4 + 8 + 8) {
      throw std::runtime_error("op_log: '" + path +
                               "' truncated (shorter than header)");
    }
    const std::size_t payload = buf.size() - 8;
    std::uint64_t want = 0;
    std::memcpy(&want, buf.data() + payload, 8);
    if (fnv1a(buf.data(), payload) != want) {
      throw std::runtime_error("op_log: '" + path +
                               "' checksum mismatch (corrupt or truncated)");
    }

    reader rd{buf.data(), payload, 0, path};
    char magic[4];
    rd.bytes(magic, 4);
    if (std::memcmp(magic, kMagic, 4) != 0) {
      throw std::runtime_error("op_log: '" + path + "' bad magic");
    }
    const std::uint32_t ver = rd.u32();
    if (ver != kVersion) {
      throw std::runtime_error("op_log: '" + path +
                               "' unsupported format version " +
                               std::to_string(ver));
    }
    const std::uint32_t dim = rd.u32();
    if (dim != static_cast<std::uint32_t>(D)) {
      throw std::runtime_error("op_log: '" + path + "' holds dim-" +
                               std::to_string(dim) + " groups, want dim-" +
                               std::to_string(D));
    }

    auto log = std::make_shared<op_log>(capacity);
    const std::uint64_t count = rd.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      log_group<D> g;
      g.epoch = rd.u64();
      g.origin = checked_origin(rd.u8(), path);
      g.has_bounds = rd.u8() != 0;
      g.split_dim = static_cast<std::int32_t>(rd.u32());
      g.cuts.resize(rd.checked_count(sizeof(double)));
      for (auto& c : g.cuts) c = rd.f64();
      g.records.resize(rd.checked_count(4 + 1 + 8));
      for (auto& r : g.records) {
        r.shard = rd.u32();
        r.kind = checked_op(rd.u8(), path);
        r.pts.resize(rd.checked_count(sizeof(double) * D));
        for (auto& p : r.pts) {
          for (int d = 0; d < D; ++d) p[d] = rd.f64();
        }
      }
      if (g.epoch <= log->head_ && log->head_ != 0) {
        throw std::runtime_error("op_log: '" + path +
                                 "' epochs out of order");
      }
      log->head_ = g.epoch;
      log->groups_.push_back(std::move(g));
      while (log->groups_.size() > log->capacity_) log->groups_.pop_front();
    }
    if (rd.off != payload) {
      throw std::runtime_error("op_log: '" + path +
                               "' trailing garbage before checksum");
    }
    return log;
  }

 private:
  static constexpr char kMagic[5] = "PGOL";
  static constexpr std::uint32_t kVersion = 1;

  std::uint64_t first_retained_locked() const {
    return groups_.empty() ? head_ + 1 : groups_.front().epoch;
  }

  // -- little-endian put/get helpers (host is LE on every supported
  //    target; memcpy keeps it alias-safe) ----------------------------------
  static void put_bytes(std::vector<unsigned char>& b, const void* p,
                        std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    b.insert(b.end(), c, c + n);
  }
  static void put_u8(std::vector<unsigned char>& b, std::uint8_t v) {
    b.push_back(v);
  }
  static void put_u32(std::vector<unsigned char>& b, std::uint32_t v) {
    put_bytes(b, &v, 4);
  }
  static void put_u64(std::vector<unsigned char>& b, std::uint64_t v) {
    put_bytes(b, &v, 8);
  }
  static void put_f64(std::vector<unsigned char>& b, double v) {
    put_bytes(b, &v, 8);
  }

  struct reader {
    const unsigned char* data;
    std::size_t len;
    std::size_t off;
    const std::string& path;

    void need(std::size_t n) const {
      if (off + n > len) {
        throw std::runtime_error("op_log: '" + path + "' truncated");
      }
    }
    void bytes(void* out, std::size_t n) {
      need(n);
      std::memcpy(out, data + off, n);
      off += n;
    }
    std::uint8_t u8() {
      std::uint8_t v;
      bytes(&v, 1);
      return v;
    }
    std::uint32_t u32() {
      std::uint32_t v;
      bytes(&v, 4);
      return v;
    }
    std::uint64_t u64() {
      std::uint64_t v;
      bytes(&v, 8);
      return v;
    }
    double f64() {
      double v;
      bytes(&v, 8);
      return v;
    }
    /// Reads an element count and bounds-checks it against the bytes
    /// remaining (each element at least `min_elem_bytes`), so a corrupt
    /// count cannot drive a multi-GB resize before the truncation check.
    std::size_t checked_count(std::size_t min_elem_bytes) {
      const std::uint64_t n = u64();
      if (min_elem_bytes > 0 && n > (len - off) / min_elem_bytes) {
        throw std::runtime_error("op_log: '" + path +
                                 "' truncated (element count exceeds file)");
      }
      return static_cast<std::size_t>(n);
    }
  };

  static log_origin checked_origin(std::uint8_t v, const std::string& path) {
    if (v > static_cast<std::uint8_t>(log_origin::rebalance)) {
      throw std::runtime_error("op_log: '" + path + "' bad origin tag");
    }
    return static_cast<log_origin>(v);
  }
  static log_op checked_op(std::uint8_t v, const std::string& path) {
    if (v > static_cast<std::uint8_t>(log_op::erase)) {
      throw std::runtime_error("op_log: '" + path + "' bad op tag");
    }
    return static_cast<log_op>(v);
  }

  static std::uint64_t fnv1a(const unsigned char* p, std::size_t n) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
    return h;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<log_group<D>> groups_;
  std::uint64_t head_ = 0;
};

}  // namespace pargeo::query
