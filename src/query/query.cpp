#include "query/query_engine.h"

#include <algorithm>
#include <cmath>

#include "query/workload.h"

namespace pargeo::query {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  // Out-of-range p clamps to the min/max element; NaN means the caller has
  // no preference, so answer with the median rather than poisoning the cast.
  if (std::isnan(p)) p = 50.0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

// Definitions for the `extern template` declarations in the headers: the
// engine and adapters instantiate here once instead of in every consumer.
template class query_engine<2>;
template class query_engine<3>;
template class kdtree_index<2>;
template class kdtree_index<3>;
template class zdtree_index<2>;
template class zdtree_index<3>;
template class bdltree_index<2>;
template class bdltree_index<3>;

}  // namespace pargeo::query
