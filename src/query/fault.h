// Deterministic fault injection for crash-matrix testing.
//
// A process-wide registry maps named fault points (e.g. "oplog.append")
// to armed specs. Production code calls fault::fire("point") at the
// seam it wants to be killable; when nothing is armed the call is a
// single relaxed atomic load. Triggers are deterministic: nth-hit,
// every-N, or a seeded coin flip — never wall-clock or unseeded
// randomness, so a failing schedule replays exactly.
//
// Actions:
//   throw_error — throw fault_injected (recoverable error path)
//   kill        — throw fault_killed (tests treat as process death)
//   torn_write  — fire() returns a byte cap; the caller truncates its
//                 write to at most that many bytes (simulates a crash
//                 mid-write / torn page)
//   stall       — sleep for stall_ns, then continue
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace pargeo::query::fault {

// Canonical point names used by the serving tier. Arbitrary names are
// allowed; these constants keep tests and call sites in sync.
inline constexpr const char* kOplogAppend = "oplog.append";
inline constexpr const char* kOplogFileWrite = "oplog.file_write";
inline constexpr const char* kCheckpointSerialize = "checkpoint.serialize";
inline constexpr const char* kReplicaApply = "replica.apply";
inline constexpr const char* kLaneExecute = "lane.execute";

class fault_injected : public std::runtime_error {
 public:
  explicit fault_injected(const std::string& what) : std::runtime_error(what) {}
};

// "Process death" flavour: recovery tests arm this, catch it at the
// top of the scenario, drop the service without clean shutdown of the
// faulted operation, and then exercise recover().
class fault_killed : public fault_injected {
 public:
  explicit fault_killed(const std::string& what) : fault_injected(what) {}
};

enum class fault_action : std::uint8_t {
  throw_error = 0,
  kill = 1,
  torn_write = 2,
  stall = 3,
};

struct fault_spec {
  fault_action action = fault_action::throw_error;
  // Trigger selection (first match wins):
  //   nth > 0         — fire exactly once, on the nth hit (1-based)
  //   every > 0       — fire on every every-th hit
  //   probability > 0 — fire with this chance per hit (seeded xorshift)
  // All zero → fire on every hit.
  std::uint64_t nth = 0;
  std::uint64_t every = 0;
  double probability = 0.0;
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  // torn_write: keep at most this many bytes of the attempted write.
  std::uint64_t torn_keep_bytes = 0;
  // stall: how long to block before continuing.
  std::uint64_t stall_ns = 0;
};

struct point_stats {
  std::uint64_t hits = 0;   // times fire() was reached while armed
  std::uint64_t fires = 0;  // times the trigger matched
};

class registry {
 public:
  static registry& instance() {
    static registry r;
    return r;
  }

  bool enabled() const { return armed_.load(std::memory_order_relaxed) > 0; }

  void arm(const std::string& point, fault_spec spec) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& st = points_[point];
    st.spec = spec;
    st.rng = spec.seed ? spec.seed : 0x9e3779b97f4a7c15ull;
    st.hits = 0;
    st.fires = 0;
    st.armed = true;
    rearm_count_locked();
  }

  void disarm(const std::string& point) {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = points_.find(point);
    if (it != points_.end()) it->second.armed = false;
    rearm_count_locked();
  }

  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    points_.clear();
    armed_.store(0, std::memory_order_relaxed);
  }

  point_stats stats(const std::string& point) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return {};
    return {it->second.hits, it->second.fires};
  }

  // Evaluate the point. Returns the torn-write byte cap when a
  // torn_write fault fires; throws for throw_error/kill; sleeps for
  // stall; returns nullopt when nothing fires.
  std::optional<std::uint64_t> fire(const char* point) {
    fault_action action{};
    std::uint64_t torn = 0, stall = 0;
    std::string what;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = points_.find(point);
      if (it == points_.end() || !it->second.armed) return std::nullopt;
      auto& st = it->second;
      ++st.hits;
      if (!matches(st)) return std::nullopt;
      ++st.fires;
      const fault_spec& s = st.spec;
      if (s.nth > 0) st.armed = false;  // one-shot
      action = s.action;
      torn = s.torn_keep_bytes;
      stall = s.stall_ns;
      what = std::string("fault injected at ") + point;
      if (s.nth > 0) rearm_count_locked();
    }
    switch (action) {
      case fault_action::throw_error:
        throw fault_injected(what);
      case fault_action::kill:
        throw fault_killed(what);
      case fault_action::torn_write:
        return torn;
      case fault_action::stall:
        if (stall > 0)
          std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
        return std::nullopt;
    }
    return std::nullopt;
  }

 private:
  struct point_state {
    fault_spec spec;
    std::uint64_t rng = 0;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    bool armed = false;
  };

  static bool matches(point_state& st) {
    const fault_spec& s = st.spec;
    if (s.nth > 0) return st.hits == s.nth;
    if (s.every > 0) return st.hits % s.every == 0;
    if (s.probability > 0.0) {
      // xorshift64*: deterministic per-point stream from spec.seed.
      std::uint64_t x = st.rng;
      x ^= x >> 12;
      x ^= x << 25;
      x ^= x >> 27;
      st.rng = x;
      const double u =
          double((x * 0x2545f4914f6cdd1dull) >> 11) / double(1ull << 53);
      return u < s.probability;
    }
    return true;
  }

  void rearm_count_locked() {
    std::uint64_t n = 0;
    for (const auto& [k, v] : points_)
      if (v.armed) ++n;
    armed_.store(n, std::memory_order_relaxed);
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, point_state> points_;
  std::atomic<std::uint64_t> armed_{0};
};

inline bool enabled() { return registry::instance().enabled(); }

inline void arm(const std::string& point, fault_spec spec) {
  registry::instance().arm(point, spec);
}

inline void disarm(const std::string& point) {
  registry::instance().disarm(point);
}

inline void reset() { registry::instance().reset(); }

inline point_stats stats(const std::string& point) {
  return registry::instance().stats(point);
}

// Hot-path hook: one relaxed load when nothing is armed anywhere.
inline std::optional<std::uint64_t> fire(const char* point) {
  auto& r = registry::instance();
  if (!r.enabled()) return std::nullopt;
  return r.fire(point);
}

// RAII convenience for tests: disarms the point (and by default resets
// the whole registry) on scope exit, so a throwing assertion can't
// leak an armed fault into the next test.
class scoped_fault {
 public:
  scoped_fault(std::string point, fault_spec spec, bool reset_all = true)
      : point_(std::move(point)), reset_all_(reset_all) {
    arm(point_, spec);
  }
  ~scoped_fault() {
    if (reset_all_)
      reset();
    else
      disarm(point_);
  }
  scoped_fault(const scoped_fault&) = delete;
  scoped_fault& operator=(const scoped_fault&) = delete;

 private:
  std::string point_;
  bool reset_all_;
};

}  // namespace pargeo::query::fault
