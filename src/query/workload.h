// Synthetic mixed-workload driver (query subsystem, layer 3 of 3).
//
// Turns a declarative spec into an initial point set plus a deterministic,
// ordered request stream for benchmarking and fuzzing the query engine:
// operation mix by fractions, payload points drawn uniform / clustered
// (datagen::visualvar) / with skewed-Zipf key reuse (hot points are
// re-inserted, re-queried, and re-erased, producing duplicates and
// contended keys like a caching tier would see). Everything is a pure
// function of (spec, index), so two runs — or two backends — replay the
// identical stream.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "datagen/datagen.h"
#include "parallel/random.h"
#include "query/query_engine.h"

namespace pargeo::query {

/// `skewed` and `drifting` are the adversarial modes for spatial
/// sharding: payload points concentrate in a small corner cube of the
/// occupied space (`workload_spec::skew_frac` of each side), so under
/// stripe routing nearly every write lands in one shard. `skewed` pins
/// the hot cube at the origin corner; `drifting` slides it along the
/// main diagonal over the life of the stream, so stripes that were
/// balanced at bootstrap go stale and stay stale.
///
/// `churn` models an arrive/depart population (moving objects, session
/// stores, TTL-expired fleets): payload geometry is uniform, but erases
/// target the OLDEST live point instead of a random pool sample, so
/// every erase removes exactly one resident point (FIFO departure, the
/// order TTL expiry retires them in) and `insert_frac`/`erase_frac` act
/// as arrival/departure rates — equal rates hold the resident set size
/// at steady state instead of letting it grow with the stream.
enum class distribution { uniform, clustered, zipf, skewed, drifting, churn };

inline const char* distribution_name(distribution d) {
  switch (d) {
    case distribution::uniform: return "uniform";
    case distribution::clustered: return "clustered";
    case distribution::zipf: return "zipf";
    case distribution::skewed: return "skewed";
    case distribution::drifting: return "drifting";
    case distribution::churn: return "churn";
  }
  return "?";
}

inline distribution distribution_from_string(const std::string& s) {
  if (s == "uniform") return distribution::uniform;
  if (s == "clustered") return distribution::clustered;
  if (s == "zipf") return distribution::zipf;
  if (s == "skewed") return distribution::skewed;
  if (s == "drifting") return distribution::drifting;
  if (s == "churn") return distribution::churn;
  throw std::invalid_argument(
      "unknown distribution '" + s +
      "' (want uniform|clustered|zipf|skewed|drifting|churn)");
}

struct workload_spec {
  std::size_t initial_points = 10000;
  std::size_t num_ops = 100000;
  std::size_t batch_size = 2048;  // requests per engine batch

  // Operation mix; fractions are normalized by their sum.
  double insert_frac = 0.1;
  double erase_frac = 0.1;
  double knn_frac = 0.6;
  double range_frac = 0.1;
  double ball_frac = 0.1;

  std::size_t k = 8;           // k-NN neighbors
  double range_extent = 4.0;   // box half-width; ball radius scales on it
  distribution dist = distribution::uniform;
  double zipf_s = 1.2;         // Zipf exponent for key reuse (dist == zipf)
  /// Fraction of zipf payload points drawn from the hot-key pool instead
  /// of fresh space (dist == zipf). Higher values model cache-friendlier
  /// traffic: the same keys are re-queried, re-inserted, and re-erased.
  double zipf_hot_frac = 0.8;
  /// Side of the hot payload cube as a fraction of the occupied cube's
  /// side (dist == skewed or drifting). Payload points — inserts, query
  /// centers, box corners — are drawn from that cube, so both the write
  /// mass and the read interest concentrate spatially; erase targets
  /// still sample the whole pool.
  double skew_frac = 0.1;
  uint64_t seed = 1;

  /// Derived coordinate scale for stream payloads, matching the cube the
  /// live point set actually occupies: datagen fills [0, sqrt(initial)]^D,
  /// so queries and new inserts are drawn from that same cube (the stream
  /// densifies it rather than probing empty space beyond it). Workloads
  /// that start empty scale by their expected insert volume instead.
  double side() const {
    if (initial_points > 0) {
      return std::sqrt(static_cast<double>(initial_points));
    }
    const double fsum =
        insert_frac + erase_frac + knn_frac + range_frac + ball_frac;
    const double expected_inserts =
        fsum > 0 ? static_cast<double>(num_ops) * (insert_frac / fsum)
                 : static_cast<double>(num_ops);
    return std::sqrt(std::max(1.0, expected_inserts));
  }
};

/// Spec parameterized by a single read fraction: reads split 70% k-NN /
/// 15% box range / 15% ball range, writes split evenly between inserts and
/// erases — the mix `pargeo_query` and `bench_query_engine` share.
inline workload_spec make_read_write_spec(std::size_t initial_points,
                                          std::size_t num_ops,
                                          double read_frac) {
  workload_spec spec;
  spec.initial_points = initial_points;
  spec.num_ops = num_ops;
  const double write_frac = 1.0 - read_frac;
  spec.insert_frac = write_frac / 2;
  spec.erase_frac = write_frac / 2;
  spec.knn_frac = read_frac * 0.70;
  spec.range_frac = read_frac * 0.15;
  spec.ball_frac = read_frac * 0.15;
  return spec;
}

/// Steady-state churn spec: `arrival_frac` of ops insert fresh points,
/// `departure_frac` erase the oldest live point (FIFO, see
/// distribution::churn), and the rest read (70% k-NN / 15% box / 15%
/// ball, as in make_read_write_spec). With arrival == departure the
/// resident set stays at ~initial_points for the whole stream — the mix
/// the TTL/continuous-query bench needs. Rates are normalized by their
/// sum, so arrival + departure + reads need not total 1.
inline workload_spec make_churn_spec(std::size_t initial_points,
                                     std::size_t num_ops, double arrival_frac,
                                     double departure_frac) {
  workload_spec spec;
  spec.initial_points = initial_points;
  spec.num_ops = num_ops;
  spec.dist = distribution::churn;
  spec.insert_frac = arrival_frac;
  spec.erase_frac = departure_frac;
  const double read_frac =
      std::max(0.0, 1.0 - arrival_frac - departure_frac);
  spec.knn_frac = read_frac * 0.70;
  spec.range_frac = read_frac * 0.15;
  spec.ball_frac = read_frac * 0.15;
  return spec;
}

namespace detail {

/// Bounded-Pareto inverse-CDF Zipf sampler: rank in [0, n) with
/// P(rank) ~ (rank+1)^-s. Deterministic in (u in [0,1)).
inline std::size_t zipf_rank(double u, std::size_t n, double s) {
  if (n <= 1) return 0;
  if (s == 1.0) s = 1.0 + 1e-9;  // avoid the log branch; visually identical
  const double hi = std::pow(static_cast<double>(n) + 1.0, 1.0 - s);
  const double x = std::pow(1.0 + u * (hi - 1.0), 1.0 / (1.0 - s));
  const std::size_t rank = static_cast<std::size_t>(x) - 1;
  return rank < n ? rank : n - 1;
}

}  // namespace detail

/// Initial contents of the index for `spec`.
template <int D>
std::vector<point<D>> make_initial(const workload_spec& spec) {
  switch (spec.dist) {
    case distribution::clustered:
      return datagen::visualvar<D>(spec.initial_points, spec.seed);
    default:
      return datagen::uniform<D>(spec.initial_points, spec.seed);
  }
}

/// The full ordered request stream for `spec`, with the key pool seeded by
/// `initial` (the point set the index was bootstrapped with, so erases hit
/// live points from op 0 on). Sequential by construction (later ops may
/// reference earlier inserts); cost is O(num_ops).
template <int D>
std::vector<request<D>> make_requests(const workload_spec& spec,
                                      std::vector<point<D>> initial) {
  const double fsum = spec.insert_frac + spec.erase_frac + spec.knn_frac +
                      spec.range_frac + spec.ball_frac;
  if (fsum <= 0) throw std::invalid_argument("all op fractions are zero");
  const double c_ins = spec.insert_frac / fsum;
  const double c_era = c_ins + spec.erase_frac / fsum;
  const double c_knn = c_era + spec.knn_frac / fsum;
  const double c_rng = c_knn + spec.range_frac / fsum;

  const double side = spec.side();
  const uint64_t seed = spec.seed * 0x9e3779b97f4a7c15ULL + 0x1234567;

  // Key pool: points eligible for reuse (zipf) and for erase targeting.
  std::vector<point<D>> pool = std::move(initial);
  pool.reserve(pool.size() + spec.num_ops);
  // Churn departure cursor: pool[0, churn_head) has already been erased
  // (exactly once each — FIFO), pool[churn_head, size) is the live set.
  std::size_t churn_head = 0;

  auto fresh_point = [&](std::size_t i) {
    point<D> p;
    if (spec.dist == distribution::skewed ||
        spec.dist == distribution::drifting) {
      // Hot corner cube; under `drifting` it slides along the main
      // diagonal as the stream progresses.
      const double frac = std::min(1.0, std::max(spec.skew_frac, 1e-3));
      const double width = side * frac;
      double lo = 0;
      if (spec.dist == distribution::drifting && spec.num_ops > 1) {
        lo = (side - width) * static_cast<double>(i) /
             static_cast<double>(spec.num_ops - 1);
      }
      for (int d = 0; d < D; ++d) {
        p[d] = lo + width * par::rand_double(seed + 12 + d, i);
      }
      return p;
    }
    if (spec.dist == distribution::clustered && !pool.empty()) {
      // Jitter around a random pool point: keeps new mass near clusters.
      const std::size_t c = par::rand_range(seed + 11, i, pool.size());
      for (int d = 0; d < D; ++d) {
        p[d] = pool[c][d] +
               (par::rand_double(seed + 12 + d, i) - 0.5) * side * 0.02;
      }
    } else {
      for (int d = 0; d < D; ++d) {
        p[d] = side * par::rand_double(seed + 12 + d, i);
      }
    }
    return p;
  };

  // Payload point for op i: fresh, or a reused hot key under zipf.
  auto pick_point = [&](std::size_t i) {
    if (spec.dist == distribution::zipf && !pool.empty() &&
        par::rand_double(seed + 20, i) < spec.zipf_hot_frac) {
      const std::size_t r = detail::zipf_rank(par::rand_double(seed + 21, i),
                                              pool.size(), spec.zipf_s);
      return pool[r];
    }
    return fresh_point(i);
  };

  std::vector<request<D>> reqs;
  reqs.reserve(spec.num_ops);
  for (std::size_t i = 0; i < spec.num_ops; ++i) {
    const double u = par::rand_double(seed + 1, i);
    if (u < c_ins) {
      const auto p = pick_point(i);
      pool.push_back(p);
      reqs.push_back(request<D>::make_insert(p));
    } else if (u < c_era) {
      if (spec.dist == distribution::churn) {
        // FIFO departure: retire the oldest live point, exactly once.
        if (churn_head < pool.size()) {
          reqs.push_back(request<D>::make_erase(pool[churn_head++]));
          continue;
        }
        // Population empty: arrive instead so the stream keeps moving.
        const auto p = fresh_point(i);
        pool.push_back(p);
        reqs.push_back(request<D>::make_insert(p));
        continue;
      }
      if (pool.empty()) {  // nothing to erase yet: emit an insert instead
        const auto p = fresh_point(i);
        pool.push_back(p);
        reqs.push_back(request<D>::make_insert(p));
        continue;
      }
      // Erase a pool point; under zipf the hot ranks get erased (and often
      // re-inserted) repeatedly. Absent points are legal no-ops.
      const std::size_t r =
          spec.dist == distribution::zipf
              ? detail::zipf_rank(par::rand_double(seed + 2, i), pool.size(),
                                  spec.zipf_s)
              : par::rand_range(seed + 2, i, pool.size());
      reqs.push_back(request<D>::make_erase(pool[r]));
    } else if (u < c_knn) {
      reqs.push_back(request<D>::make_knn(pick_point(i), spec.k));
    } else if (u < c_rng) {
      const auto corner = pick_point(i);
      const double w =
          spec.range_extent * (0.5 + par::rand_double(seed + 3, i));
      point<D> ext;
      for (int d = 0; d < D; ++d) ext[d] = w;
      reqs.push_back(request<D>::make_range(aabb<D>(corner, corner + ext)));
    } else {
      const double r =
          spec.range_extent * (0.25 + par::rand_double(seed + 4, i));
      reqs.push_back(request<D>::make_ball(pick_point(i), r));
    }
  }
  return reqs;
}

/// Convenience overload generating the initial set itself.
template <int D>
std::vector<request<D>> make_requests(const workload_spec& spec) {
  return make_requests<D>(spec, make_initial<D>(spec));
}

/// Runs the whole spec against `executor` — a query_engine<D> or a
/// query_service<D> (anything with bootstrap/execute) — in batches of
/// spec.batch_size and returns the accumulated stats (bootstrap time
/// excluded, as in the paper's figures). `responses`, when non-null,
/// collects every response in stream order.
template <int D, class Executor>
engine_stats run_workload(Executor& engine, const workload_spec& spec,
                          std::vector<response<D>>* responses = nullptr) {
  auto initial = make_initial<D>(spec);
  engine.bootstrap(initial);
  const auto reqs = make_requests<D>(spec, std::move(initial));
  engine_stats total;
  const std::size_t bs = std::max<std::size_t>(1, spec.batch_size);
  for (std::size_t off = 0; off < reqs.size(); off += bs) {
    const std::size_t end = std::min(reqs.size(), off + bs);
    std::vector<request<D>> batch(reqs.begin() + off, reqs.begin() + end);
    auto result = engine.execute(std::move(batch));
    if (responses) {
      // Rebase per-batch phase ids so they index the accumulated
      // total.phases, preserving the latency-lookup contract.
      const std::size_t phase_base = total.phases.size();
      for (auto& r : result.responses) {
        r.phase += phase_base;
        responses->push_back(std::move(r));
      }
    }
    total.accumulate(result.stats);
  }
  return total;
}

/// Executor adapter for run_workload that drives a replicated tier
/// (query/replica.h): bootstraps the primary and routes every batch
/// through a replica_router, splitting each mixed batch into its ordered
/// read / write runs first — the router scatters read-only batches, so a
/// client that wants read scaling must not bury its reads inside mixed
/// submissions. The last write run's commit_epoch is threaded back in as
/// the read-your-writes floor of every subsequent read run, which is the
/// pattern a well-behaved client of the replicated tier follows. Generic
/// over the router type so this header stays independent of replica.h.
template <int D, class Primary, class Router>
struct routed_executor {
  Primary& primary;
  Router& router;
  std::uint64_t floor = 0;  // commit_epoch of the latest write run

  template <class Pts>
  void bootstrap(const Pts& pts) {
    primary.bootstrap(pts);
  }
  batch_result<D> execute(std::vector<request<D>> batch) {
    batch_result<D> out;
    std::size_t i = 0;
    while (i < batch.size()) {
      const bool read = is_read(batch[i].kind);
      std::size_t j = i + 1;
      while (j < batch.size() && is_read(batch[j].kind) == read) ++j;
      auto r = router.execute(
          std::vector<request<D>>(batch.begin() + i, batch.begin() + j),
          floor);
      if (r.commit_epoch > floor) floor = r.commit_epoch;
      // Same phase-id rebasing contract as run_workload: ids index the
      // accumulated phase list.
      const std::size_t base = out.stats.phases.size();
      for (auto& resp : r.responses) {
        resp.phase += base;
        out.responses.push_back(std::move(resp));
      }
      out.stats.accumulate(r.stats);
      i = j;
    }
    return out;
  }
};

}  // namespace pargeo::query
