// Euclidean minimum spanning tree via WSPD + Kruskal (paper Module 3).
//
// For separation s >= 2 the EMST is a subset of the BCCP edges of the
// WSPD pairs (Callahan–Kosaraju), so the pipeline is: build kd-tree ->
// WSPD -> one BCCP per pair (in parallel) -> parallel sort by weight ->
// Kruskal with union-find.
#pragma once

#include <cstddef>
#include <vector>

#include "core/point.h"

namespace pargeo::emst {

struct edge {
  std::size_t u, v;
  double weight;  // Euclidean distance
};

/// EMST edges (n-1 of them for n >= 1 distinct-point inputs; duplicate
/// points yield zero-weight edges). Deterministic output order (sorted by
/// weight, ties by endpoints).
template <int D>
std::vector<edge> emst(const std::vector<point<D>>& pts);

/// Sum of EMST edge weights.
double total_weight(const std::vector<edge>& edges);

}  // namespace pargeo::emst
