#include "emst/emst.h"

#include <cmath>
#include <numeric>

#include "closestpair/closestpair.h"
#include "parallel/parallel.h"
#include "wspd/wspd.h"

namespace pargeo::emst {

namespace {

/// Union-find with path halving; sequential (the Kruskal scan is the only
/// sequential stage of the pipeline and is cheap relative to BCCPs).
class union_find {
 public:
  explicit union_find(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

template <int D>
std::vector<edge> emst(const std::vector<point<D>>& pts) {
  const std::size_t n = pts.size();
  if (n < 2) return {};
  // leaf_size = 1: the EMST-subset-of-BCCP-edges guarantee needs a
  // point-level WSPD (multi-point leaves can hide MST edges).
  kdtree::tree<D> t(pts, kdtree::split_policy::object_median, 1);
  auto pairs = wspd::decompose<D>(t, 2.0);

  // One BCCP edge per separated pair; leaf self-pairs contribute their
  // full internal clique (leaves are tiny) so intra-leaf MST edges exist.
  std::vector<std::vector<edge>> per(pairs.size());
  par::parallel_for(
      0, pairs.size(),
      [&](std::size_t i) {
        const auto* a = pairs[i].a;
        const auto* b = pairs[i].b;
        if (a == b) {
          for (std::size_t x = a->lo; x < a->hi; ++x) {
            for (std::size_t y = x + 1; y < a->hi; ++y) {
              per[i].push_back({t.id_of(x), t.id_of(y),
                                t.point_at(x).dist(t.point_at(y))});
            }
          }
        } else {
          auto r = closestpair::bccp_nodes<D>(t, a, b);
          per[i].push_back({r.i, r.j, std::sqrt(r.dist_sq)});
        }
      },
      8);
  auto cand = par::flatten(per);
  par::sort(cand, [](const edge& a, const edge& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  union_find uf(n);
  std::vector<edge> mst;
  mst.reserve(n - 1);
  for (const edge& e : cand) {
    if (uf.unite(e.u, e.v)) {
      mst.push_back(e);
      if (mst.size() == n - 1) break;
    }
  }
  return mst;
}

double total_weight(const std::vector<edge>& edges) {
  double s = 0;
  for (const auto& e : edges) s += e.weight;
  return s;
}

template std::vector<edge> emst<2>(const std::vector<point<2>>&);
template std::vector<edge> emst<3>(const std::vector<point<3>>&);
template std::vector<edge> emst<5>(const std::vector<point<5>>&);
template std::vector<edge> emst<7>(const std::vector<point<7>>&);

}  // namespace pargeo::emst
