// Morton (Z-order) sorting of point sets (paper Module 2).
//
// Coordinates are quantized onto a 2^b grid over the bounding box with
// b = 64/D bits per dimension, interleaved into a 64-bit key, and sorted
// with the parallel sort. Morton order is also used by the Delaunay
// module (insertion locality) and the Zd-tree.
#pragma once

#include <cstdint>
#include <vector>

#include "core/point.h"

namespace pargeo::mortonsort {

/// Morton code of p within bounding box [lo, hi] (per-dimension).
template <int D>
uint64_t morton_code(const point<D>& p, const point<D>& lo,
                     const point<D>& hi);

/// Morton codes of all points over their common bounding box (parallel).
template <int D>
std::vector<uint64_t> morton_codes(const std::vector<point<D>>& pts);

/// Indices of pts in Morton order (stable for equal codes).
template <int D>
std::vector<std::size_t> morton_order(const std::vector<point<D>>& pts);

/// Points reordered into Morton order.
template <int D>
std::vector<point<D>> morton_sort(const std::vector<point<D>>& pts);

}  // namespace pargeo::mortonsort
