#include "mortonsort/mortonsort.h"

#include <algorithm>

#include "core/aabb.h"
#include "parallel/parallel.h"

namespace pargeo::mortonsort {

namespace {

template <int D>
constexpr int bits_per_dim() {
  return 64 / D;
}

/// Interleaves the low `bits` bits of each quantized coordinate.
template <int D>
uint64_t interleave(const std::array<uint64_t, D>& q) {
  constexpr int bits = bits_per_dim<D>();
  uint64_t code = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int d = 0; d < D; ++d) {
      code = (code << 1) | ((q[d] >> b) & 1u);
    }
  }
  return code;
}

template <int D>
aabb<D> bounding_box(const std::vector<point<D>>& pts) {
  aabb<D> box;
  for (const auto& p : pts) box.extend(p);
  return box;
}

}  // namespace

template <int D>
uint64_t morton_code(const point<D>& p, const point<D>& lo,
                     const point<D>& hi) {
  constexpr int bits = bits_per_dim<D>();
  constexpr uint64_t maxCell = (uint64_t{1} << bits) - 1;
  std::array<uint64_t, D> q{};
  for (int d = 0; d < D; ++d) {
    const double w = hi[d] - lo[d];
    double f = w > 0 ? (p[d] - lo[d]) / w : 0.0;
    f = std::clamp(f, 0.0, 1.0);
    q[d] = std::min(maxCell,
                    static_cast<uint64_t>(f * static_cast<double>(maxCell)));
  }
  return interleave<D>(q);
}

template <int D>
std::vector<uint64_t> morton_codes(const std::vector<point<D>>& pts) {
  const auto box = bounding_box(pts);
  std::vector<uint64_t> codes(pts.size());
  par::parallel_for(0, pts.size(), [&](std::size_t i) {
    codes[i] = morton_code<D>(pts[i], box.lo, box.hi);
  });
  return codes;
}

template <int D>
std::vector<std::size_t> morton_order(const std::vector<point<D>>& pts) {
  auto codes = morton_codes<D>(pts);
  std::vector<std::size_t> idx(pts.size());
  par::parallel_for(0, idx.size(), [&](std::size_t i) { idx[i] = i; });
  par::sort(idx, [&](std::size_t a, std::size_t b) {
    return codes[a] < codes[b] || (codes[a] == codes[b] && a < b);
  });
  return idx;
}

template <int D>
std::vector<point<D>> morton_sort(const std::vector<point<D>>& pts) {
  auto order = morton_order<D>(pts);
  std::vector<point<D>> out(pts.size());
  par::parallel_for(0, pts.size(),
                    [&](std::size_t i) { out[i] = pts[order[i]]; });
  return out;
}

#define PARGEO_MORTON_INSTANTIATE(D)                                       \
  template uint64_t morton_code<D>(const point<D>&, const point<D>&,       \
                                   const point<D>&);                       \
  template std::vector<uint64_t> morton_codes<D>(                          \
      const std::vector<point<D>>&);                                       \
  template std::vector<std::size_t> morton_order<D>(                       \
      const std::vector<point<D>>&);                                       \
  template std::vector<point<D>> morton_sort<D>(                           \
      const std::vector<point<D>>&);

PARGEO_MORTON_INSTANTIATE(2)
PARGEO_MORTON_INSTANTIATE(3)
PARGEO_MORTON_INSTANTIATE(5)
PARGEO_MORTON_INSTANTIATE(7)

}  // namespace pargeo::mortonsort
