#include "hull/hull2d.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/predicates.h"
#include "parallel/parallel.h"

namespace pargeo::hull2d {

namespace {

using pt = point<2>;

// A point is outside (visible from) the directed CCW hull edge (u, w) iff
// it lies strictly to the right of u->w.
inline bool visible(const pt& u, const pt& w, const pt& p) {
  return orient2d(u, w, p) < 0;
}

// Squared-ish distance proxy of p from line (u,w): |cross| is proportional
// to the true distance for a fixed edge, which is all furthest-point
// selection needs.
inline double line_dist(const pt& u, const pt& w, const pt& p) {
  return -orient2d(u, w, p);
}

/// Rotates hull indices so they start at the lexicographically smallest
/// vertex; all public functions return this canonical form.
std::vector<std::size_t> canonicalize(const std::vector<pt>& pts,
                                      std::vector<std::size_t> hull) {
  if (hull.size() < 2) return hull;
  std::size_t pos = 0;
  for (std::size_t i = 1; i < hull.size(); ++i) {
    if (pts[hull[i]] < pts[hull[pos]]) pos = i;
  }
  std::rotate(hull.begin(), hull.begin() + pos, hull.end());
  return hull;
}

// ---------------------------------------------------------------------
// Sequential quickhull
// ---------------------------------------------------------------------

// Appends to `out` the chain of hull vertices strictly between u and v on
// the right side of u->v. `cand` holds candidate indices (all right of
// u->v).
void qh_chain_seq(const std::vector<pt>& pts, std::size_t u, std::size_t v,
                  std::vector<std::size_t>& cand,
                  std::vector<std::size_t>& out) {
  if (cand.empty()) return;
  std::size_t c = cand[0];
  double best = line_dist(pts[u], pts[v], pts[c]);
  for (std::size_t i : cand) {
    const double d = line_dist(pts[u], pts[v], pts[i]);
    if (d > best || (d == best && i < c)) {
      best = d;
      c = i;
    }
  }
  std::vector<std::size_t> s1, s2;
  for (std::size_t i : cand) {
    if (i == c) continue;
    if (visible(pts[u], pts[c], pts[i])) {
      s1.push_back(i);
    } else if (visible(pts[c], pts[v], pts[i])) {
      s2.push_back(i);
    }
  }
  cand.clear();
  cand.shrink_to_fit();
  qh_chain_seq(pts, u, c, s1, out);
  out.push_back(c);
  qh_chain_seq(pts, c, v, s2, out);
}

// ---------------------------------------------------------------------
// Parallel recursive quickhull (PBBS-style)
// ---------------------------------------------------------------------

void qh_chain_par(const std::vector<pt>& pts, std::size_t u, std::size_t v,
                  std::vector<std::size_t> cand,
                  std::vector<std::size_t>& out) {
  constexpr std::size_t kSeqCutoff = 4096;
  if (cand.size() <= kSeqCutoff) {
    qh_chain_seq(pts, u, v, cand, out);
    return;
  }
  const std::size_t ci = par::min_element_index(
      cand, [&](std::size_t a, std::size_t b) {
        const double da = line_dist(pts[u], pts[v], pts[a]);
        const double db = line_dist(pts[u], pts[v], pts[b]);
        return da > db || (da == db && a < b);
      });
  const std::size_t c = cand[ci];
  std::vector<std::size_t> s1, s2;
  par::par_do(
      [&] {
        s1 = par::filter(cand, [&](std::size_t i) {
          return i != c && visible(pts[u], pts[c], pts[i]);
        });
      },
      [&] {
        s2 = par::filter(cand, [&](std::size_t i) {
          return i != c && visible(pts[c], pts[v], pts[i]);
        });
      });
  cand.clear();
  cand.shrink_to_fit();
  std::vector<std::size_t> left, right;
  par::par_do([&] { qh_chain_par(pts, u, c, std::move(s1), left); },
              [&] { qh_chain_par(pts, c, v, std::move(s2), right); });
  out.reserve(out.size() + left.size() + right.size() + 1);
  out.insert(out.end(), left.begin(), left.end());
  out.push_back(c);
  out.insert(out.end(), right.begin(), right.end());
}

std::vector<std::size_t> hull_from_extremes(
    const std::vector<pt>& pts,
    const std::function<void(std::size_t, std::size_t,
                             std::vector<std::size_t>,
                             std::vector<std::size_t>&)>& chain) {
  const std::size_t n = pts.size();
  std::size_t a = 0, b = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (pts[i] < pts[a]) a = i;
    if (pts[b] < pts[i]) b = i;
  }
  if (pts[a] == pts[b]) return {a};  // all points identical
  std::vector<std::size_t> below, above;
  for (std::size_t i = 0; i < n; ++i) {
    if (visible(pts[a], pts[b], pts[i])) {
      below.push_back(i);
    } else if (visible(pts[b], pts[a], pts[i])) {
      above.push_back(i);
    }
  }
  std::vector<std::size_t> hull;
  hull.push_back(a);
  chain(a, b, std::move(below), hull);
  hull.push_back(b);
  chain(b, a, std::move(above), hull);
  return hull;
}

// ---------------------------------------------------------------------
// Reservation-based incremental algorithms (randinc / quickhull batches)
// ---------------------------------------------------------------------

constexpr uint32_t kNoReservation = std::numeric_limits<uint32_t>::max();

struct edge {
  std::size_t u = 0, w = 0;  // directed CCW: interior is to the left
  edge* prev = nullptr;
  edge* next = nullptr;
  edge* replacement = nullptr;  // set when this edge dies
  std::atomic<uint32_t> rsv{kNoReservation};
  std::atomic<uint64_t> best{0};  // quickhull furthest-point encoding
  bool dead = false;
};

inline uint64_t encode_best(double dist, uint32_t rank) {
  // Positive doubles cast to float keep order under bit reinterpretation;
  // invert rank so larger encoded value == smaller rank on distance ties.
  const float f = static_cast<float>(dist);
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(f));
  __builtin_memcpy(&bits, &f, sizeof(bits));
  return (static_cast<uint64_t>(bits) << 32) |
         static_cast<uint64_t>(~rank);
}
inline uint32_t decode_best_rank(uint64_t enc) {
  return ~static_cast<uint32_t>(enc & 0xffffffffu);
}

// Shared machinery for the two reservation-based variants. Works on a pool
// of candidate points, each holding a reference to one visible edge.
class reservation_hull {
 public:
  enum class mode { randinc, quickhull };

  reservation_hull(const std::vector<pt>& pts, mode m,
                   std::size_t batch_factor, uint64_t seed)
      : pts_(pts), mode_(m) {
    batch_ = std::max<std::size_t>(1, batch_factor * par::num_workers());
    const std::size_t n = pts.size();
    arena_ = std::make_unique<edge[]>(2 * n + 8);

    // Point processing order: random permutation for the randomized
    // incremental variant, input order for quickhull (selection is by
    // furthest-distance there).
    std::vector<std::size_t> order(n);
    if (mode_ == mode::randinc) {
      auto perm = par::random_permutation(n, seed);
      for (std::size_t i = 0; i < n; ++i) order[i] = perm[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) order[i] = i;
    }

    init_hull(order);
  }

  std::vector<std::size_t> run() {
    while (!pool_.empty()) round();
    // Walk the final edge ring to emit the hull CCW.
    std::vector<std::size_t> hull;
    edge* e = head_;
    while (e->dead) e = e->replacement;
    edge* start = e;
    do {
      hull.push_back(e->u);
      e = e->next;
    } while (e != start);
    return hull;
  }

 private:
  struct pool_entry {
    std::size_t pid;   // index into pts_
    uint32_t rank;     // fixed priority (processing order position)
    edge* ref;         // one edge this point is visible from
  };

  void init_hull(const std::vector<std::size_t>& order) {
    const std::size_t n = order.size();
    // First two distinct points plus a non-collinear third.
    std::size_t a = order[0], b = n, c = n;
    for (std::size_t i = 1; i < n; ++i) {
      if (pts_[order[i]] != pts_[a]) {
        b = order[i];
        break;
      }
    }
    if (b == n) {  // all identical
      trivial_ = {a};
      return;
    }
    for (std::size_t i = 1; i < n; ++i) {
      if (orient2d(pts_[a], pts_[b], pts_[order[i]]) != 0) {
        c = order[i];
        break;
      }
    }
    if (c == n) {  // all collinear: hull = extreme pair
      std::size_t lo = a, hi = a;
      for (std::size_t i = 0; i < n; ++i) {
        if (pts_[order[i]] < pts_[lo]) lo = order[i];
        if (pts_[hi] < pts_[order[i]]) hi = order[i];
      }
      trivial_ = {lo, hi};
      return;
    }
    if (orient2d(pts_[a], pts_[b], pts_[c]) < 0) std::swap(b, c);
    edge* e0 = alloc();
    edge* e1 = alloc();
    edge* e2 = alloc();
    e0->u = a; e0->w = b;
    e1->u = b; e1->w = c;
    e2->u = c; e2->w = a;
    e0->next = e1; e1->next = e2; e2->next = e0;
    e0->prev = e2; e1->prev = e0; e2->prev = e1;
    head_ = e0;

    // Initial assignment: each point picks one visible edge or is dropped.
    std::vector<pool_entry> pool(order.size());
    std::vector<uint8_t> keep(order.size());
    par::parallel_for(0, order.size(), [&](std::size_t i) {
      const std::size_t pid = order[i];
      edge* ref = nullptr;
      if (pid != a && pid != b && pid != c) {
        for (edge* e : {e0, e1, e2}) {
          if (visible(pts_[e->u], pts_[e->w], pts_[pid])) {
            ref = e;
            break;
          }
        }
      }
      pool[i] = {pid, static_cast<uint32_t>(i), ref};
      keep[i] = ref != nullptr;
    });
    pool_ = par::pack(pool, keep);
  }

  edge* alloc() { return &arena_[next_edge_.fetch_add(1)]; }

  // The contiguous visible arc of a candidate, materialized at find time:
  // later phases must not chase next/prev pointers because winners rewire
  // the ring while losers' arcs still reference replaced edges.
  struct arc {
    std::vector<edge*> edges;  // visible edges, in CCW order
    edge* ringL = nullptr;     // alive edge before the arc
    edge* ringR = nullptr;     // alive edge after the arc
  };
  arc find_arc(const pt& q, edge* ref) const {
    edge* first = ref;
    while (true) {
      edge* p = first->prev;
      if (p == ref || !visible(pts_[p->u], pts_[p->w], q)) break;
      first = p;
    }
    arc a;
    for (edge* e = first;; e = e->next) {
      a.edges.push_back(e);
      edge* nx = e->next;
      if (nx == first || !visible(pts_[nx->u], pts_[nx->w], q)) break;
    }
    a.ringL = first->prev;
    a.ringR = a.edges.back()->next;
    return a;
  }

  void round() {
    // --- Select batch Q ------------------------------------------------
    std::vector<std::size_t> q_idx;  // indices into pool_
    if (mode_ == mode::randinc) {
      const std::size_t take = std::min(batch_, pool_.size());
      q_idx.resize(take);
      for (std::size_t i = 0; i < take; ++i) q_idx[i] = i;
    } else {
      // Furthest point per edge: champions via atomic write_max.
      par::parallel_for(0, pool_.size(), [&](std::size_t i) {
        pool_[i].ref->best.store(0, std::memory_order_relaxed);
      });
      par::parallel_for(0, pool_.size(), [&](std::size_t i) {
        const auto& pe = pool_[i];
        const double d =
            line_dist(pts_[pe.ref->u], pts_[pe.ref->w], pts_[pe.pid]);
        par::write_max(&pe.ref->best, encode_best(d, pe.rank));
      });
      std::vector<uint8_t> champ(pool_.size());
      par::parallel_for(0, pool_.size(), [&](std::size_t i) {
        champ[i] = decode_best_rank(
                       pool_[i].ref->best.load(std::memory_order_relaxed)) ==
                   pool_[i].rank;
      });
      q_idx = par::pack_index(champ);
      if (q_idx.size() > batch_) q_idx.resize(batch_);
    }

    // --- Reserve: visible arc + bounding ring edges --------------------
    std::vector<arc> arcs(q_idx.size());
    par::parallel_for(
        0, q_idx.size(),
        [&](std::size_t i) {
          const auto& pe = pool_[q_idx[i]];
          arcs[i] = find_arc(pts_[pe.pid], pe.ref);
          for (edge* e : arcs[i].edges) par::write_min(&e->rsv, pe.rank);
          par::write_min(&arcs[i].ringL->rsv, pe.rank);
          par::write_min(&arcs[i].ringR->rsv, pe.rank);
        },
        1);

    // --- Check reservations --------------------------------------------
    std::vector<uint8_t> success(q_idx.size());
    par::parallel_for(
        0, q_idx.size(),
        [&](std::size_t i) {
          const auto& pe = pool_[q_idx[i]];
          bool ok =
              arcs[i].ringL->rsv.load(std::memory_order_relaxed) ==
                  pe.rank &&
              arcs[i].ringR->rsv.load(std::memory_order_relaxed) == pe.rank;
          for (edge* e : arcs[i].edges) {
            ok = ok && e->rsv.load(std::memory_order_relaxed) == pe.rank;
          }
          success[i] = ok;
        },
        1);

    // --- Process winners -------------------------------------------------
    par::parallel_for(
        0, q_idx.size(),
        [&](std::size_t i) {
          if (!success[i]) return;
          const auto& pe = pool_[q_idx[i]];
          edge* ringL = arcs[i].ringL;
          edge* ringR = arcs[i].ringR;
          edge* n1 = alloc();
          edge* n2 = alloc();
          n1->u = arcs[i].edges.front()->u;
          n1->w = pe.pid;
          n2->u = pe.pid;
          n2->w = arcs[i].edges.back()->w;
          n1->prev = ringL;
          n1->next = n2;
          n2->prev = n1;
          n2->next = ringR;
          ringL->next = n1;
          ringR->prev = n2;
          for (edge* e : arcs[i].edges) {
            e->dead = true;
            e->replacement = n1;
          }
        },
        1);
    // head_ may have died; fixed lazily in run() via replacement chain.

    // --- Reset reservations (winners' edges are dead; losers' need it) --
    par::parallel_for(
        0, q_idx.size(),
        [&](std::size_t i) {
          arcs[i].ringL->rsv.store(kNoReservation,
                                   std::memory_order_relaxed);
          arcs[i].ringR->rsv.store(kNoReservation,
                                   std::memory_order_relaxed);
          for (edge* e : arcs[i].edges) {
            e->rsv.store(kNoReservation, std::memory_order_relaxed);
          }
        },
        1);

    // --- Update pool: re-home points whose edge died; pack survivors ----
    std::vector<uint8_t> alive(pool_.size());
    std::vector<uint8_t> consumed(pool_.size(), 0);
    par::parallel_for(0, q_idx.size(), [&](std::size_t i) {
      if (success[i]) consumed[q_idx[i]] = 1;
    });
    par::parallel_for(0, pool_.size(), [&](std::size_t i) {
      if (consumed[i]) {
        alive[i] = 0;
        return;
      }
      auto& pe = pool_[i];
      if (!pe.ref->dead) {
        alive[i] = 1;  // edge unchanged => still visible from it
        return;
      }
      edge* r1 = pe.ref->replacement;
      edge* found = rehome(pts_[pe.pid], r1);
      if (found != nullptr) {
        pe.ref = found;
        alive[i] = 1;
      } else {
        alive[i] = 0;  // now inside the hull
      }
    });
    pool_ = par::pack(pool_, alive);
  }

  // Find a visible edge for p near the replacement edge r1 (the winner's
  // first new edge). Local walk first; rare global fallback guarantees
  // correctness when adjacent regions were replaced in the same round.
  edge* rehome(const pt& p, edge* r1) const {
    edge* r2 = r1->next;
    if (visible(pts_[r1->u], pts_[r1->w], p)) return r1;
    if (visible(pts_[r2->u], pts_[r2->w], p)) return r2;
    constexpr int kLocalSteps = 8;
    edge* e = r1->prev;
    for (int s = 0; s < kLocalSteps; ++s, e = e->prev) {
      if (visible(pts_[e->u], pts_[e->w], p)) return e;
    }
    e = r2->next;
    for (int s = 0; s < kLocalSteps; ++s, e = e->next) {
      if (visible(pts_[e->u], pts_[e->w], p)) return e;
    }
    // Global scan (rare): walk the whole ring once.
    edge* start = r1;
    for (e = start->next; e != start; e = e->next) {
      if (visible(pts_[e->u], pts_[e->w], p)) return e;
    }
    return nullptr;
  }

  const std::vector<pt>& pts_;
  mode mode_;
  std::size_t batch_;
  std::unique_ptr<edge[]> arena_;
  std::atomic<std::size_t> next_edge_{0};
  edge* head_ = nullptr;
  std::vector<pool_entry> pool_;
  std::vector<std::size_t> trivial_;

 public:
  bool is_trivial() const { return head_ == nullptr; }
  const std::vector<std::size_t>& trivial_hull() const { return trivial_; }
};

}  // namespace

std::vector<std::size_t> sequential_quickhull(
    const std::vector<pt>& pts) {
  if (pts.empty()) return {};
  auto hull = hull_from_extremes(
      pts, [&](std::size_t u, std::size_t v, std::vector<std::size_t> cand,
               std::vector<std::size_t>& out) {
        qh_chain_seq(pts, u, v, cand, out);
      });
  return canonicalize(pts, std::move(hull));
}

std::vector<std::size_t> quickhull(const std::vector<pt>& pts) {
  if (pts.empty()) return {};
  auto hull = hull_from_extremes(
      pts, [&](std::size_t u, std::size_t v, std::vector<std::size_t> cand,
               std::vector<std::size_t>& out) {
        qh_chain_par(pts, u, v, std::move(cand), out);
      });
  return canonicalize(pts, std::move(hull));
}

namespace {
std::vector<std::size_t> run_reservation(const std::vector<pt>& pts,
                                         reservation_hull::mode m,
                                         std::size_t batch_factor,
                                         uint64_t seed) {
  if (pts.empty()) return {};
  if (pts.size() == 1) return {0};
  reservation_hull rh(pts, m, batch_factor, seed);
  if (rh.is_trivial()) {
    return canonicalize(pts, rh.trivial_hull());
  }
  return canonicalize(pts, rh.run());
}
}  // namespace

std::vector<std::size_t> randinc(const std::vector<pt>& pts,
                                 std::size_t batch_factor, uint64_t seed) {
  return run_reservation(pts, reservation_hull::mode::randinc, batch_factor,
                         seed);
}

std::vector<std::size_t> reservation_quickhull(
    const std::vector<pt>& pts, std::size_t batch_factor) {
  return run_reservation(pts, reservation_hull::mode::quickhull,
                         batch_factor, 1);
}

std::vector<std::size_t> divide_conquer(const std::vector<pt>& pts,
                                        std::size_t block_factor) {
  const std::size_t n = pts.size();
  if (n == 0) return {};
  const std::size_t blocks = std::max<std::size_t>(
      1, std::min(n / 4 + 1, block_factor * par::num_workers()));
  const std::size_t per = (n + blocks - 1) / blocks;
  std::vector<std::vector<std::size_t>> partial(blocks);
  par::parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * per;
        const std::size_t hi = std::min(n, lo + per);
        if (lo >= hi) return;
        std::vector<pt> chunk(pts.begin() + lo, pts.begin() + hi);
        auto h = sequential_quickhull(chunk);
        for (auto& v : h) v += lo;  // back to global indices
        partial[b] = std::move(h);
      },
      1);
  auto candidates = par::flatten(partial);
  std::vector<pt> sub(candidates.size());
  par::parallel_for(0, candidates.size(),
                    [&](std::size_t i) { sub[i] = pts[candidates[i]]; });
  auto subHull = quickhull(sub);
  std::vector<std::size_t> hull(subHull.size());
  par::parallel_for(0, subHull.size(),
                    [&](std::size_t i) { hull[i] = candidates[subHull[i]]; });
  return canonicalize(pts, std::move(hull));
}

}  // namespace pargeo::hull2d
