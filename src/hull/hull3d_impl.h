// Shared internal facet machinery for the 3D hull algorithms.
//
// Orientation convention (matches Shewchuk's orient3d): facets are stored
// counter-clockwise as seen from outside, so for a facet (a, b, c) and any
// interior point q, orient3d(a, b, c, q) > 0, and a point p is *visible*
// from the facet (outside its plane) iff orient3d(a, b, c, p) < 0.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/point.h"
#include "core/predicates.h"

namespace pargeo::hull3d::detail {

using pt = point<3>;

inline constexpr uint32_t kNoReservation =
    std::numeric_limits<uint32_t>::max();

struct facet {
  std::array<std::size_t, 3> v{};
  // nbr[i] is the facet across directed edge (v[i], v[(i+1)%3]).
  std::array<facet*, 3> nbr{};
  facet* replacement = nullptr;  // one of the facets that replaced this one
  pt normal{};                   // unnormalized outward normal
  double offset = 0;             // plane: normal . x == offset
  std::atomic<uint32_t> rsv{kNoReservation};
  std::atomic<uint64_t> best{0};
  bool dead = false;
  std::vector<std::size_t> conflicts;  // sequential algorithm only

  /// Positive outside the facet plane; used for furthest-point selection.
  double plane_dist(const pt& p) const { return normal.dot(p) - offset; }
};

/// Pointer-stable chunked facet allocator, safe for concurrent alloc().
class facet_arena {
 public:
  static constexpr std::size_t kBlockBits = 14;
  static constexpr std::size_t kBlock = std::size_t{1} << kBlockBits;
  static constexpr std::size_t kMaxBlocks = 1 << 14;  // ~268M facets cap

  facet* alloc() {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    while (i >= cap_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> g(grow_);
      const std::size_t cap = cap_.load(std::memory_order_relaxed);
      if (i >= cap) {
        const std::size_t b = cap >> kBlockBits;
        if (b >= kMaxBlocks) throw std::bad_alloc();
        blocks_[b] = std::make_unique<facet[]>(kBlock);
        cap_.store(cap + kBlock, std::memory_order_release);
      }
    }
    return get(i);
  }

  std::size_t size() const { return next_.load(std::memory_order_relaxed); }
  facet* get(std::size_t i) {
    return &blocks_[i >> kBlockBits][i & (kBlock - 1)];
  }

 private:
  std::array<std::unique_ptr<facet[]>, kMaxBlocks> blocks_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> cap_{0};
  std::mutex grow_;
};

/// Strict visibility predicate (filtered, escalates to long double).
inline bool visible(const std::vector<pt>& pts, const facet* f,
                    const pt& p) {
  return orient3d(pts[f->v[0]], pts[f->v[1]], pts[f->v[2]], p) < 0;
}

inline void set_plane(const std::vector<pt>& pts, facet* f) {
  const pt& a = pts[f->v[0]];
  f->normal = cross(pts[f->v[1]] - a, pts[f->v[2]] - a);
  f->offset = f->normal.dot(a);
}

/// Picks four affinely independent points, preferring spread-out extremes.
/// Throws std::invalid_argument if the input is degenerate (flat in 3D).
inline std::array<std::size_t, 4> initial_simplex(
    const std::vector<pt>& pts) {
  const std::size_t n = pts.size();
  if (n < 4) throw std::invalid_argument("3D hull needs >= 4 points");
  std::size_t a = 0, b = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (pts[i] < pts[a]) a = i;
    if (pts[b] < pts[i]) b = i;
  }
  if (pts[a] == pts[b]) {
    throw std::invalid_argument("3D hull of identical points");
  }
  const pt ab = pts[b] - pts[a];
  std::size_t c = n;
  double bestC = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = cross(ab, pts[i] - pts[a]).length_sq();
    if (d > bestC) {
      bestC = d;
      c = i;
    }
  }
  if (c == n) throw std::invalid_argument("3D hull of collinear points");
  std::size_t d = n;
  double bestD = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double vol = std::abs(orient3d(pts[a], pts[b], pts[c], pts[i]));
    if (vol > bestD) {
      bestD = vol;
      d = i;
    }
  }
  if (d == n || orient3d(pts[a], pts[b], pts[c], pts[d]) == 0) {
    throw std::invalid_argument("3D hull of coplanar points");
  }
  return {a, b, c, d};
}

/// Builds the four outward-oriented facets of the initial tetrahedron and
/// wires their adjacency. Returns the facet pointers.
inline std::array<facet*, 4> make_tetrahedron(
    const std::vector<pt>& pts, facet_arena& arena,
    const std::array<std::size_t, 4>& s) {
  static constexpr int tri[4][3] = {
      {0, 1, 2}, {0, 2, 3}, {0, 3, 1}, {1, 3, 2}};
  std::array<facet*, 4> fs{};
  for (int t = 0; t < 4; ++t) {
    facet* f = arena.alloc();
    f->v = {s[tri[t][0]], s[tri[t][1]], s[tri[t][2]]};
    const std::size_t other = s[0] + s[1] + s[2] + s[3] - f->v[0] -
                              f->v[1] - f->v[2];
    // Orient so the opposite tetrahedron vertex is inside (positive side).
    if (orient3d(pts[f->v[0]], pts[f->v[1]], pts[f->v[2]], pts[other]) < 0) {
      std::swap(f->v[1], f->v[2]);
    }
    set_plane(pts, f);
    fs[t] = f;
  }
  // Adjacency by matching reversed directed edges.
  for (int i = 0; i < 4; ++i) {
    for (int e = 0; e < 3; ++e) {
      const std::size_t u = fs[i]->v[e];
      const std::size_t w = fs[i]->v[(e + 1) % 3];
      for (int j = 0; j < 4; ++j) {
        if (j == i) continue;
        for (int e2 = 0; e2 < 3; ++e2) {
          if (fs[j]->v[e2] == w && fs[j]->v[(e2 + 1) % 3] == u) {
            fs[i]->nbr[e] = fs[j];
          }
        }
      }
    }
  }
  return fs;
}

/// The visible region of a point: facets it can see, the horizon (directed
/// edges of visible facets whose neighbor is not visible), and the distinct
/// alive facets just outside the horizon ("ring").
struct region {
  std::vector<facet*> visible;
  std::vector<std::pair<facet*, int>> horizon;  // (visible facet, edge idx)
  std::vector<facet*> ring;
};

/// Depth-first collection of the visible region starting from `f0`, which
/// must be visible from p. Read-only with local visited set, so safe to run
/// concurrently for many points.
inline void find_region(const std::vector<pt>& pts, const pt& p, facet* f0,
                        region& out) {
  out.visible.clear();
  out.horizon.clear();
  out.ring.clear();
  std::unordered_set<facet*> vis;
  vis.reserve(16);
  std::vector<facet*> stack{f0};
  vis.insert(f0);
  std::unordered_set<facet*> ringSet;
  while (!stack.empty()) {
    facet* f = stack.back();
    stack.pop_back();
    out.visible.push_back(f);
    for (int e = 0; e < 3; ++e) {
      facet* g = f->nbr[e];
      if (vis.count(g)) continue;
      if (visible(pts, g, p)) {
        vis.insert(g);
        stack.push_back(g);
      } else {
        out.horizon.emplace_back(f, e);
        if (ringSet.insert(g).second) out.ring.push_back(g);
      }
    }
  }
}

/// Replaces the visible region of apex point `p` (index into pts) with a
/// fan of new facets over the horizon. Marks old facets dead and records a
/// replacement pointer. Returns the new facets. The caller must own every
/// facet in `r.visible` and `r.ring` (reservation winners / sequential).
inline std::vector<facet*> replace_region(const std::vector<pt>& pts,
                                          facet_arena& arena, std::size_t p,
                                          const region& r) {
  const std::size_t h = r.horizon.size();
  std::vector<facet*> nf(h);
  std::unordered_map<std::size_t, facet*> byStart, byEnd;
  byStart.reserve(h);
  byEnd.reserve(h);
  for (std::size_t i = 0; i < h; ++i) {
    auto [f, e] = r.horizon[i];
    const std::size_t u = f->v[e];
    const std::size_t w = f->v[(e + 1) % 3];
    facet* g = f->nbr[e];
    facet* x = arena.alloc();
    x->v = {u, w, p};
    set_plane(pts, x);
    x->nbr[0] = g;
    // Rewire g's edge (w, u) to the new facet.
    for (int e2 = 0; e2 < 3; ++e2) {
      if (g->v[e2] == w && g->v[(e2 + 1) % 3] == u) {
        g->nbr[e2] = x;
        break;
      }
    }
    nf[i] = x;
    byStart[u] = x;
    byEnd[w] = x;
  }
  // Fan adjacency: edge (w, p) borders the facet starting at w; edge (p, u)
  // borders the facet ending at u.
  for (facet* x : nf) {
    x->nbr[1] = byStart.at(x->v[1]);
    x->nbr[2] = byEnd.at(x->v[0]);
  }
  for (facet* f : r.visible) {
    f->dead = true;
    f->replacement = nf[0];
  }
  return nf;
}

}  // namespace pargeo::hull3d::detail
