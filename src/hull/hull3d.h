// 3D convex hull algorithms (paper §3).
//
// Methods benchmarked in Figure 9:
//   * sequential_quickhull   — optimized sequential quickhull with conflict
//     lists; stands in for the CGAL / Qhull baselines.
//   * randinc                — parallel reservation-based randomized
//     incremental algorithm (paper's first parallel implementation).
//   * reservation_quickhull  — parallel quickhull via the same reservation
//     machinery (furthest-point batches).
//   * divide_conquer         — block divide-and-conquer.
//   * pseudohull             — Tang et al.'s point-culling heuristic with a
//     recursion threshold, finished by reservation_quickhull (paper §3).
//
// Facets are returned with outward orientation: for every facet (a, b, c),
// all input points p satisfy orient3d(a, b, c, p) <= 0.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/point.h"

namespace pargeo::hull3d {

/// Triangle mesh output: each facet is a triple of input-point indices.
struct mesh {
  std::vector<std::array<std::size_t, 3>> facets;
};

/// Instrumentation counters for the Figure 12 reservation-overhead study.
struct stats {
  std::size_t points_touched = 0;  // conflict points (re)distributed
  std::size_t facets_touched = 0;  // visible facets scanned/reserved
};

mesh sequential_quickhull(const std::vector<point<3>>& pts,
                          stats* st = nullptr);

mesh randinc(const std::vector<point<3>>& pts, std::size_t batch_factor = 8,
             uint64_t seed = 1, stats* st = nullptr);

mesh reservation_quickhull(const std::vector<point<3>>& pts,
                           std::size_t batch_factor = 8,
                           stats* st = nullptr);

mesh divide_conquer(const std::vector<point<3>>& pts,
                    std::size_t block_factor = 4);

/// Pseudohull point culling; `threshold` is the facet point-count below
/// which recursion stops (prevents stack overflow on skewed data, paper §3).
mesh pseudohull(const std::vector<point<3>>& pts,
                std::size_t threshold = 64);

/// Sorted unique vertex indices of a hull mesh.
std::vector<std::size_t> hull_vertices(const mesh& m);

/// Number of points remaining after pseudohull culling (exposed for the
/// Figure 9 discussion of output-size effects); runs culling only.
std::size_t pseudohull_survivors(const std::vector<point<3>>& pts,
                                 std::size_t threshold = 64);

}  // namespace pargeo::hull3d
