#include "hull/hull3d.h"

#include <algorithm>
#include <deque>

#include "hull/hull3d_impl.h"
#include "parallel/parallel.h"

namespace pargeo::hull3d {

using namespace detail;

namespace {

mesh emit_mesh(facet_arena& arena) {
  mesh m;
  const std::size_t total = arena.size();
  m.facets.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    const facet* f = arena.get(i);
    if (!f->dead) m.facets.push_back(f->v);
  }
  return m;
}

// Selects the conflict point of f furthest from its plane (ties by index).
std::size_t furthest_conflict(const std::vector<pt>& pts, const facet* f) {
  std::size_t best = f->conflicts[0];
  double bd = f->plane_dist(pts[best]);
  for (const std::size_t q : f->conflicts) {
    const double d = f->plane_dist(pts[q]);
    if (d > bd || (d == bd && q < best)) {
      bd = d;
      best = q;
    }
  }
  return best;
}

}  // namespace

std::vector<std::size_t> hull_vertices(const mesh& m) {
  std::vector<std::size_t> vs;
  vs.reserve(3 * m.facets.size());
  for (const auto& f : m.facets) {
    vs.insert(vs.end(), f.begin(), f.end());
  }
  std::sort(vs.begin(), vs.end());
  vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
  return vs;
}

// ---------------------------------------------------------------------
// Sequential quickhull with conflict lists (the CGAL/Qhull stand-in)
// ---------------------------------------------------------------------

mesh sequential_quickhull(const std::vector<pt>& pts, stats* st) {
  facet_arena arena;
  const auto simplex = initial_simplex(pts);
  auto tetra = make_tetrahedron(pts, arena, simplex);

  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == simplex[0] || i == simplex[1] || i == simplex[2] ||
        i == simplex[3]) {
      continue;
    }
    for (facet* f : tetra) {
      if (visible(pts, f, pts[i])) {
        f->conflicts.push_back(i);
        break;
      }
    }
  }

  std::deque<facet*> work(tetra.begin(), tetra.end());
  region r;
  while (!work.empty()) {
    facet* f = work.front();
    work.pop_front();
    if (f->dead || f->conflicts.empty()) continue;
    const std::size_t p = furthest_conflict(pts, f);
    find_region(pts, pts[p], f, r);
    if (st != nullptr) st->facets_touched += r.visible.size();
    auto nf = replace_region(pts, arena, p, r);
    // Redistribute conflict points of the dead region to the new facets,
    // falling back to the ring (see DESIGN.md for why this is complete).
    for (facet* df : r.visible) {
      for (const std::size_t q : df->conflicts) {
        if (q == p) continue;
        if (st != nullptr) ++st->points_touched;
        facet* home = nullptr;
        for (facet* cand : nf) {
          if (visible(pts, cand, pts[q])) {
            home = cand;
            break;
          }
        }
        if (home == nullptr) {
          for (facet* cand : r.ring) {
            if (!cand->dead && visible(pts, cand, pts[q])) {
              home = cand;
              break;
            }
          }
        }
        if (home != nullptr) {
          const bool was_empty = home->conflicts.empty();
          home->conflicts.push_back(q);
          // Ring facets may have been popped while empty; requeue them.
          if (was_empty) work.push_back(home);
        }
      }
      df->conflicts.clear();
      df->conflicts.shrink_to_fit();
    }
    for (facet* x : nf) {
      if (!x->conflicts.empty()) work.push_back(x);
    }
  }
  return emit_mesh(arena);
}

// ---------------------------------------------------------------------
// Parallel reservation-based incremental hull (randinc + quickhull)
// ---------------------------------------------------------------------

namespace {

inline uint64_t encode_best(double dist, uint32_t rank) {
  const float f = static_cast<float>(dist);
  uint32_t bits;
  __builtin_memcpy(&bits, &f, sizeof(bits));
  return (static_cast<uint64_t>(bits) << 32) | static_cast<uint64_t>(~rank);
}
inline uint32_t decode_best_rank(uint64_t enc) {
  return ~static_cast<uint32_t>(enc & 0xffffffffu);
}

class reservation_hull {
 public:
  enum class mode { randinc, quickhull };

  reservation_hull(const std::vector<pt>& pts, mode m,
                   std::size_t batch_factor, uint64_t seed, stats* st)
      : pts_(pts), mode_(m), st_(st) {
    batch_ = std::max<std::size_t>(1, batch_factor * par::num_workers());
    const std::size_t n = pts.size();
    std::vector<std::size_t> order(n);
    if (mode_ == mode::randinc) {
      auto perm = par::random_permutation(n, seed);
      for (std::size_t i = 0; i < n; ++i) order[i] = perm[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) order[i] = i;
    }
    const auto simplex = initial_simplex(pts);
    auto tetra = make_tetrahedron(pts, arena_, simplex);

    std::vector<pool_entry> pool(n);
    std::vector<uint8_t> keep(n);
    par::parallel_for(0, n, [&](std::size_t i) {
      const std::size_t pid = order[i];
      facet* ref = nullptr;
      if (pid != simplex[0] && pid != simplex[1] && pid != simplex[2] &&
          pid != simplex[3]) {
        for (facet* f : tetra) {
          if (visible(pts_, f, pts_[pid])) {
            ref = f;
            break;
          }
        }
      }
      pool[i] = {pid, static_cast<uint32_t>(i), ref};
      keep[i] = ref != nullptr;
    });
    pool_ = par::pack(pool, keep);
  }

  mesh run() {
    while (!pool_.empty()) round();
    return emit_mesh(arena_);
  }

 private:
  struct pool_entry {
    std::size_t pid;
    uint32_t rank;
    facet* ref;
  };

  void round() {
    // --- Batch selection -------------------------------------------------
    std::vector<std::size_t> q_idx;
    if (mode_ == mode::randinc) {
      const std::size_t take = std::min(batch_, pool_.size());
      q_idx.resize(take);
      for (std::size_t i = 0; i < take; ++i) q_idx[i] = i;
    } else {
      par::parallel_for(0, pool_.size(), [&](std::size_t i) {
        pool_[i].ref->best.store(0, std::memory_order_relaxed);
      });
      par::parallel_for(0, pool_.size(), [&](std::size_t i) {
        const auto& pe = pool_[i];
        par::write_max(
            &pe.ref->best,
            encode_best(pe.ref->plane_dist(pts_[pe.pid]), pe.rank));
      });
      std::vector<uint8_t> champ(pool_.size());
      par::parallel_for(0, pool_.size(), [&](std::size_t i) {
        champ[i] = decode_best_rank(pool_[i].ref->best.load(
                       std::memory_order_relaxed)) == pool_[i].rank;
      });
      q_idx = par::pack_index(champ);
      if (q_idx.size() > batch_) q_idx.resize(batch_);
    }

    // --- Find visible regions and reserve (visible + ring) ---------------
    std::vector<region> regions(q_idx.size());
    par::parallel_for(
        0, q_idx.size(),
        [&](std::size_t i) {
          const auto& pe = pool_[q_idx[i]];
          find_region(pts_, pts_[pe.pid], pe.ref, regions[i]);
          for (facet* f : regions[i].visible) {
            par::write_min(&f->rsv, pe.rank);
          }
          for (facet* f : regions[i].ring) {
            par::write_min(&f->rsv, pe.rank);
          }
        },
        1);
    if (st_ != nullptr) {
      for (const auto& r : regions) st_->facets_touched += r.visible.size();
    }

    // --- Check reservations ----------------------------------------------
    std::vector<uint8_t> success(q_idx.size());
    par::parallel_for(
        0, q_idx.size(),
        [&](std::size_t i) {
          const uint32_t rank = pool_[q_idx[i]].rank;
          bool ok = true;
          for (facet* f : regions[i].visible) {
            ok = ok && f->rsv.load(std::memory_order_relaxed) == rank;
          }
          for (facet* f : regions[i].ring) {
            ok = ok && f->rsv.load(std::memory_order_relaxed) == rank;
          }
          success[i] = ok;
        },
        1);

    // --- Process winners --------------------------------------------------
    par::parallel_for(
        0, q_idx.size(),
        [&](std::size_t i) {
          if (!success[i]) return;
          replace_region(pts_, arena_, pool_[q_idx[i]].pid, regions[i]);
        },
        1);

    // --- Reset reservations -----------------------------------------------
    par::parallel_for(
        0, q_idx.size(),
        [&](std::size_t i) {
          for (facet* f : regions[i].visible) {
            f->rsv.store(kNoReservation, std::memory_order_relaxed);
          }
          for (facet* f : regions[i].ring) {
            f->rsv.store(kNoReservation, std::memory_order_relaxed);
          }
        },
        1);

    // --- Pool update: drop winners, re-home points with dead refs ---------
    std::vector<uint8_t> alive(pool_.size());
    std::vector<uint8_t> consumed(pool_.size(), 0);
    par::parallel_for(0, q_idx.size(), [&](std::size_t i) {
      if (success[i]) consumed[q_idx[i]] = 1;
    });
    std::atomic<std::size_t> rehomed{0};
    par::parallel_for(0, pool_.size(), [&](std::size_t i) {
      if (consumed[i]) {
        alive[i] = 0;
        return;
      }
      auto& pe = pool_[i];
      if (!pe.ref->dead) {
        alive[i] = 1;  // facet plane unchanged => still visible
        return;
      }
      rehomed.fetch_add(1, std::memory_order_relaxed);
      facet* found = rehome(pts_[pe.pid], pe.ref);
      if (found != nullptr) {
        pe.ref = found;
        alive[i] = 1;
      } else {
        alive[i] = 0;
      }
    });
    if (st_ != nullptr) st_->points_touched += rehomed.load();
    pool_ = par::pack(pool_, alive);
  }

  // Find a visible facet for p after its reference facet died: bounded
  // search over the replacement fan and its neighborhood, with a global
  // scan fallback that guarantees completeness.
  facet* rehome(const pt& p, facet* deadRef) {
    std::vector<facet*> visited;
    std::vector<facet*> stack{deadRef->replacement};
    constexpr std::size_t kCap = 64;
    while (!stack.empty() && visited.size() < kCap) {
      facet* f = stack.back();
      stack.pop_back();
      if (std::find(visited.begin(), visited.end(), f) != visited.end()) {
        continue;
      }
      visited.push_back(f);
      if (f->dead) {
        stack.push_back(f->replacement);
        continue;
      }
      if (visible(pts_, f, p)) return f;
      for (facet* g : f->nbr) stack.push_back(g);
    }
    if (stack.empty()) return nullptr;  // local search exhausted: inside
    // Fallback: scan all alive facets (rare; only when many adjacent
    // regions were replaced in one round).
    const std::size_t total = arena_.size();
    for (std::size_t i = 0; i < total; ++i) {
      facet* f = arena_.get(i);
      if (!f->dead && visible(pts_, f, p)) return f;
    }
    return nullptr;
  }

  const std::vector<pt>& pts_;
  mode mode_;
  stats* st_;
  std::size_t batch_;
  facet_arena arena_;
  std::vector<pool_entry> pool_;
};

}  // namespace

mesh randinc(const std::vector<pt>& pts, std::size_t batch_factor,
             uint64_t seed, stats* st) {
  reservation_hull rh(pts, reservation_hull::mode::randinc, batch_factor,
                      seed, st);
  return rh.run();
}

mesh reservation_quickhull(const std::vector<pt>& pts,
                           std::size_t batch_factor, stats* st) {
  reservation_hull rh(pts, reservation_hull::mode::quickhull, batch_factor,
                      1, st);
  return rh.run();
}

// ---------------------------------------------------------------------
// Divide and conquer
// ---------------------------------------------------------------------

mesh divide_conquer(const std::vector<pt>& pts, std::size_t block_factor) {
  const std::size_t n = pts.size();
  const std::size_t blocks = std::max<std::size_t>(
      1, std::min(n / 8 + 1, block_factor * par::num_workers()));
  if (blocks == 1) return sequential_quickhull(pts);
  const std::size_t per = (n + blocks - 1) / blocks;
  std::vector<std::vector<std::size_t>> partial(blocks);
  par::parallel_for(
      0, blocks,
      [&](std::size_t b) {
        const std::size_t lo = b * per;
        const std::size_t hi = std::min(n, lo + per);
        if (lo >= hi) return;
        std::vector<pt> chunk(pts.begin() + lo, pts.begin() + hi);
        std::vector<std::size_t> vs;
        try {
          auto m = sequential_quickhull(chunk);
          vs = hull_vertices(m);
        } catch (const std::invalid_argument&) {
          // Degenerate chunk (e.g. coplanar): keep all of its points.
          vs.resize(hi - lo);
          for (std::size_t i = 0; i < vs.size(); ++i) vs[i] = i;
        }
        for (auto& v : vs) v += lo;
        partial[b] = std::move(vs);
      },
      1);
  auto candidates = par::flatten(partial);
  std::vector<pt> sub(candidates.size());
  par::parallel_for(0, candidates.size(),
                    [&](std::size_t i) { sub[i] = pts[candidates[i]]; });
  auto subMesh = reservation_quickhull(sub);
  par::parallel_for(0, subMesh.facets.size(), [&](std::size_t i) {
    for (auto& v : subMesh.facets[i]) v = candidates[v];
  });
  return subMesh;
}

}  // namespace pargeo::hull3d
