// Pseudohull point culling (Tang et al., adapted for multicore — paper §3).
//
// Starting from the initial tetrahedron, each facet is recursively grown
// toward the furthest point among the points above it, splitting its point
// set across three child facets. Points below all children are interior to
// the growing pseudohull and are discarded. Recursion stops when a facet
// owns at most `threshold` points (stack-depth safeguard from the paper);
// the survivors plus all pseudohull vertices feed the final parallel
// reservation-based quickhull.
#include <algorithm>
#include <atomic>
#include <mutex>

#include "hull/hull3d.h"
#include "hull/hull3d_impl.h"
#include "parallel/parallel.h"

namespace pargeo::hull3d {

using namespace detail;

namespace {

struct cull_context {
  const std::vector<pt>& pts;
  std::size_t threshold;
  std::mutex out_mutex;
  std::vector<std::size_t> survivors;

  void emit(const std::vector<std::size_t>& ids, std::size_t a,
            std::size_t b, std::size_t c) {
    std::lock_guard<std::mutex> g(out_mutex);
    survivors.insert(survivors.end(), ids.begin(), ids.end());
    survivors.push_back(a);
    survivors.push_back(b);
    survivors.push_back(c);
  }
};

// A point q is above the oriented plane (a, b, c) iff orient3d < 0 (our
// outward-facet convention from hull3d_impl.h).
inline bool above(const std::vector<pt>& pts, std::size_t a, std::size_t b,
                  std::size_t c, std::size_t q) {
  return orient3d(pts[a], pts[b], pts[c], pts[q]) < 0;
}

void grow(cull_context& ctx, std::size_t a, std::size_t b, std::size_t c,
          std::vector<std::size_t> own) {
  if (own.size() <= ctx.threshold) {
    ctx.emit(own, a, b, c);
    return;
  }
  const auto& pts = ctx.pts;
  // Furthest point from the facet plane (unnormalized distance suffices).
  const pt normal = cross(pts[b] - pts[a], pts[c] - pts[a]);
  const double offset = normal.dot(pts[a]);
  std::size_t p = own[0];
  double bd = normal.dot(pts[p]) - offset;
  for (const std::size_t q : own) {
    const double d = normal.dot(pts[q]) - offset;
    if (d > bd || (d == bd && q < p)) {
      bd = d;
      p = q;
    }
  }
  // Split the points among the three child facets; points below all three
  // are inside tetra(a, b, c, p) and hence interior -> dropped.
  std::vector<std::size_t> s0, s1, s2;
  for (const std::size_t q : own) {
    if (q == p) continue;
    if (above(pts, a, b, p, q)) {
      s0.push_back(q);
    } else if (above(pts, b, c, p, q)) {
      s1.push_back(q);
    } else if (above(pts, c, a, p, q)) {
      s2.push_back(q);
    }
  }
  own.clear();
  own.shrink_to_fit();
  const bool spawn = s0.size() + s1.size() + s2.size() > 4096;
  if (spawn) {
    par::par_do3([&] { grow(ctx, a, b, p, std::move(s0)); },
                 [&] { grow(ctx, b, c, p, std::move(s1)); },
                 [&] { grow(ctx, c, a, p, std::move(s2)); });
  } else {
    grow(ctx, a, b, p, std::move(s0));
    grow(ctx, b, c, p, std::move(s1));
    grow(ctx, c, a, p, std::move(s2));
  }
}

std::vector<std::size_t> cull(const std::vector<pt>& pts,
                              std::size_t threshold) {
  cull_context ctx{pts, threshold, {}, {}};
  const auto simplex = initial_simplex(pts);
  // Build the four outward root facets (reusing the tetrahedron helper via
  // a throwaway arena just for orientation/adjacency bookkeeping).
  facet_arena arena;
  auto tetra = make_tetrahedron(pts, arena, simplex);
  std::array<std::vector<std::size_t>, 4> own;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == simplex[0] || i == simplex[1] || i == simplex[2] ||
        i == simplex[3]) {
      continue;
    }
    for (int t = 0; t < 4; ++t) {
      if (visible(pts, tetra[t], pts[i])) {
        own[t].push_back(i);
        break;
      }
    }
  }
  for (const std::size_t s : simplex) ctx.survivors.push_back(s);
  par::parallel_for(
      0, 4,
      [&](std::size_t t) {
        grow(ctx, tetra[t]->v[0], tetra[t]->v[1], tetra[t]->v[2],
             std::move(own[t]));
      },
      1);
  auto& sv = ctx.survivors;
  std::sort(sv.begin(), sv.end());
  sv.erase(std::unique(sv.begin(), sv.end()), sv.end());
  return sv;
}

}  // namespace

std::size_t pseudohull_survivors(const std::vector<pt>& pts,
                                 std::size_t threshold) {
  return cull(pts, threshold).size();
}

mesh pseudohull(const std::vector<pt>& pts, std::size_t threshold) {
  auto survivors = cull(pts, threshold);
  std::vector<pt> sub(survivors.size());
  par::parallel_for(0, survivors.size(),
                    [&](std::size_t i) { sub[i] = pts[survivors[i]]; });
  auto m = reservation_quickhull(sub);
  par::parallel_for(0, m.facets.size(), [&](std::size_t i) {
    for (auto& v : m.facets[i]) v = survivors[v];
  });
  return m;
}

}  // namespace pargeo::hull3d
