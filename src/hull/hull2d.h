// 2D convex hull algorithms (paper §3).
//
// Provides the methods benchmarked in Figure 8:
//   * sequential_quickhull  — optimized sequential quickhull; stands in for
//     the CGAL / Qhull baselines (see DESIGN.md substitutions).
//   * quickhull             — parallel recursive quickhull (PBBS-style).
//   * randinc               — parallel reservation-based randomized
//     incremental algorithm.
//   * divide_conquer        — block divide-and-conquer calling the
//     reservation algorithm on the union of block hulls.
//
// All functions return the hull as input-point indices in counter-clockwise
// order starting from the lexicographically smallest hull vertex.
#pragma once

#include <cstddef>
#include <vector>

#include "core/point.h"

namespace pargeo::hull2d {

std::vector<std::size_t> sequential_quickhull(
    const std::vector<point<2>>& pts);

std::vector<std::size_t> quickhull(const std::vector<point<2>>& pts);

/// Reservation-based parallel randomized incremental algorithm.
/// `batch_factor` is the paper's constant c: round batch = c * numProc.
std::vector<std::size_t> randinc(const std::vector<point<2>>& pts,
                                 std::size_t batch_factor = 8,
                                 uint64_t seed = 1);

/// Reservation-based parallel quickhull (furthest-point batches).
std::vector<std::size_t> reservation_quickhull(
    const std::vector<point<2>>& pts, std::size_t batch_factor = 8);

/// Divide-and-conquer: c*numProc blocks solved sequentially in parallel,
/// union of block hull vertices solved by the parallel algorithm.
std::vector<std::size_t> divide_conquer(const std::vector<point<2>>& pts,
                                        std::size_t block_factor = 4);

}  // namespace pargeo::hull2d
