// ParGeo reproduction — umbrella public header.
//
// Include this to get the whole library; each subsystem header can also be
// included individually (they are self-contained).
#pragma once

#include "bdltree/baselines.h"        // IWYU pragma: export
#include "bdltree/bdl_tree.h"         // IWYU pragma: export
#include "bdltree/veb_tree.h"         // IWYU pragma: export
#include "closestpair/closestpair.h"  // IWYU pragma: export
#include "clustering/clustering.h"    // IWYU pragma: export
#include "core/aabb.h"                // IWYU pragma: export
#include "core/ball.h"                // IWYU pragma: export
#include "core/point.h"               // IWYU pragma: export
#include "core/predicates.h"          // IWYU pragma: export
#include "core/timer.h"               // IWYU pragma: export
#include "datagen/datagen.h"          // IWYU pragma: export
#include "delaunay/delaunay.h"        // IWYU pragma: export
#include "emst/emst.h"                // IWYU pragma: export
#include "graphgen/graphgen.h"        // IWYU pragma: export
#include "hull/hull2d.h"              // IWYU pragma: export
#include "hull/hull3d.h"              // IWYU pragma: export
#include "io/io.h"                    // IWYU pragma: export
#include "kdtree/kdtree.h"            // IWYU pragma: export
#include "kdtree/knn_buffer.h"        // IWYU pragma: export
#include "mortonsort/mortonsort.h"    // IWYU pragma: export
#include "parallel/parallel.h"        // IWYU pragma: export
#include "query/query_engine.h"       // IWYU pragma: export
#include "query/query_service.h"      // IWYU pragma: export
#include "query/spatial_index.h"      // IWYU pragma: export
#include "query/workload.h"           // IWYU pragma: export
#include "seb/seb.h"                  // IWYU pragma: export
#include "wspd/wspd.h"                // IWYU pragma: export
#include "zdtree/zdtree.h"            // IWYU pragma: export
