#include "io/io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pargeo::io {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("io: " + path + ": " + why);
}

}  // namespace

template <int D>
void write_csv(const std::string& path, const std::vector<point<D>>& pts) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out.precision(17);
  for (const auto& p : pts) {
    for (int d = 0; d < D; ++d) {
      if (d) out << ',';
      out << p[d];
    }
    out << '\n';
  }
  if (!out) fail(path, "write error");
}

template <int D>
std::vector<point<D>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  std::vector<point<D>> pts;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::stringstream ss(line);
    point<D> p;
    std::string cell;
    for (int d = 0; d < D; ++d) {
      if (!std::getline(ss, cell, ',')) {
        fail(path, "line " + std::to_string(lineno) + ": expected " +
                       std::to_string(D) + " coordinates");
      }
      try {
        p[d] = std::stod(cell);
      } catch (const std::exception&) {
        fail(path, "line " + std::to_string(lineno) + ": bad number '" +
                       cell + "'");
      }
    }
    if (std::getline(ss, cell, ',')) {
      fail(path, "line " + std::to_string(lineno) + ": too many columns");
    }
    pts.push_back(p);
  }
  return pts;
}

template <int D>
void write_binary(const std::string& path,
                  const std::vector<point<D>>& pts) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  const int64_t dim = D;
  const int64_t count = static_cast<int64_t>(pts.size());
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : pts) {
    out.write(reinterpret_cast<const char*>(p.x.data()),
              D * sizeof(double));
  }
  if (!out) fail(path, "write error");
}

template <int D>
std::vector<point<D>> read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  int64_t dim = 0, count = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || dim != D) {
    fail(path, "dimension mismatch (file " + std::to_string(dim) +
                   ", expected " + std::to_string(D) + ")");
  }
  if (count < 0) fail(path, "negative count");
  std::vector<point<D>> pts(static_cast<std::size_t>(count));
  for (auto& p : pts) {
    in.read(reinterpret_cast<char*>(p.x.data()), D * sizeof(double));
  }
  if (!in) fail(path, "truncated payload");
  return pts;
}

void write_edges(
    const std::string& path,
    const std::vector<std::pair<std::size_t, std::size_t>>& es) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  for (const auto& [u, v] : es) out << u << ',' << v << '\n';
  if (!out) fail(path, "write error");
}

#define PARGEO_IO_INSTANTIATE(D)                                       \
  template void write_csv<D>(const std::string&,                       \
                             const std::vector<point<D>>&);            \
  template std::vector<point<D>> read_csv<D>(const std::string&);      \
  template void write_binary<D>(const std::string&,                    \
                                const std::vector<point<D>>&);         \
  template std::vector<point<D>> read_binary<D>(const std::string&);

PARGEO_IO_INSTANTIATE(2)
PARGEO_IO_INSTANTIATE(3)
PARGEO_IO_INSTANTIATE(5)
PARGEO_IO_INSTANTIATE(7)

}  // namespace pargeo::io
