// Point-set and graph I/O: a CSV format interoperable with the original
// ParGeo's benchmark files (one point per line, comma-separated
// coordinates) and a fast binary format (header: dim, count; payload:
// row-major doubles).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/point.h"

namespace pargeo::io {

/// Writes one point per line: "x0,x1,...,xD-1\n".
template <int D>
void write_csv(const std::string& path, const std::vector<point<D>>& pts);

/// Reads the CSV format above. Throws std::runtime_error on malformed
/// input or dimension mismatch.
template <int D>
std::vector<point<D>> read_csv(const std::string& path);

/// Binary: int64 dim, int64 count, then count*dim little-endian doubles.
template <int D>
void write_binary(const std::string& path,
                  const std::vector<point<D>>& pts);

template <int D>
std::vector<point<D>> read_binary(const std::string& path);

/// Writes an edge list as "u,v\n" rows.
void write_edges(const std::string& path,
                 const std::vector<std::pair<std::size_t, std::size_t>>& es);

}  // namespace pargeo::io
