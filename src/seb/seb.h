// Smallest enclosing ball algorithms (paper §4).
//
// Methods benchmarked in Figure 10:
//   * welzl_seq          — sequential Welzl with move-to-front + pivoting;
//     stands in for the CGAL baseline.
//   * welzl / welzl_mtf / welzl_mtf_pivot — parallel Welzl variants
//     (Blelloch et al.'s prefix-doubling scheme with the paper's
//     optimizations: sequential small prefixes, move-to-front, parallel
//     pivot selection).
//   * orthant_scan       — Larsson et al.'s iterative orthant scan,
//     parallelized over input blocks.
//   * sampling           — the paper's new two-phase sampling algorithm:
//     constant-size orthant scans over a random permutation until a sample
//     produces no outlier, then full orthant scans to finish.
//
// All functions return a ball containing every input point, within a 1e-9
// relative tolerance (floating-point support solves).
#pragma once

#include <cstdint>
#include <vector>

#include "core/ball.h"
#include "core/point.h"

namespace pargeo::seb {

template <int D>
ball<D> welzl_seq(const std::vector<point<D>>& pts, uint64_t seed = 1);

template <int D>
ball<D> welzl(const std::vector<point<D>>& pts, uint64_t seed = 1);

template <int D>
ball<D> welzl_mtf(const std::vector<point<D>>& pts, uint64_t seed = 1);

template <int D>
ball<D> welzl_mtf_pivot(const std::vector<point<D>>& pts,
                        uint64_t seed = 1);

template <int D>
ball<D> orthant_scan(const std::vector<point<D>>& pts);

/// `sample_size` is the paper's constant-size sample block c.
template <int D>
ball<D> sampling(const std::vector<point<D>>& pts, uint64_t seed = 1,
                 std::size_t sample_size = 1000);

/// Fraction of the input scanned during the sampling phase of the last
/// `sampling` call on this thread (instrumentation for §6.2's "~5%" claim).
double last_sampling_scan_fraction();

}  // namespace pargeo::seb
