#include "seb/seb.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "parallel/parallel.h"

namespace pargeo::seb {

namespace {

constexpr double kSlack = 1e-9;  // relative containment tolerance

/// Support ("basis") set: at most D+1 points on the ball boundary.
template <int D>
struct basis {
  std::array<point<D>, D + 1> pts{};
  int size = 0;

  void push(const point<D>& p) { pts[size++] = p; }
};

template <int D>
ball<D> ball_of(const basis<D>& b) {
  ball<D> B = circumball<D>(b.pts.data(), b.size);
  if (B.is_empty() && b.size > 0) {
    // Degenerate (affinely dependent) support — only reachable through
    // floating-point edge cases. Fall back to a sane enclosing ball of the
    // support points themselves.
    point<D> c{};
    for (int i = 0; i < b.size; ++i) c = c + b.pts[i];
    c = c / static_cast<double>(b.size);
    double r2 = 0;
    for (int i = 0; i < b.size; ++i) r2 = std::max(r2, c.dist_sq(b.pts[i]));
    B = {c, std::sqrt(r2)};
  }
  return B;
}

// ---------------------------------------------------------------------
// Small sequential Welzl with move-to-front (used on tiny candidate sets
// and as the recursion leaf); L is reordered in place.
// ---------------------------------------------------------------------

// `out_basis`, when non-null, receives the exact support set that
// generated the returned ball (every returned ball originates from a
// circumball of some basis; the last one computed is the final support).
template <int D>
ball<D> welzl_small(std::vector<point<D>>& L, std::size_t n, basis<D> R,
                    basis<D>* out_basis = nullptr) {
  ball<D> B = ball_of(R);
  if (out_basis != nullptr) *out_basis = R;
  if (R.size == D + 1) return B;
  for (std::size_t i = 0; i < n; ++i) {
    if (!B.contains(L[i], kSlack)) {
      basis<D> R2 = R;
      R2.push(L[i]);
      B = welzl_small(L, i, R2, out_basis);
      // Move-to-front: L[i] will be met early in future passes.
      const point<D> p = L[i];
      for (std::size_t j = i; j > 0; --j) L[j] = L[j - 1];
      L[0] = p;
    }
  }
  return B;
}

/// SEB of a small point set plus the exact support set that defines it.
template <int D>
std::pair<ball<D>, basis<D>> miniball_small(std::vector<point<D>> L) {
  basis<D> sup;
  ball<D> B = welzl_small(L, L.size(), basis<D>{}, &sup);
  return {B, sup};
}

// ---------------------------------------------------------------------
// Parallel reductions over the input
// ---------------------------------------------------------------------

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// First index in [lo, hi) outside B, or kNone.
template <int D>
std::size_t first_violator(const std::vector<point<D>>& pts, std::size_t lo,
                           std::size_t hi, const ball<D>& B) {
  const std::size_t n = hi - lo;
  constexpr std::size_t kBlock = 4096;
  if (n <= 2 * kBlock || par::num_workers() == 1) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (!B.contains(pts[i], kSlack)) return i;
    }
    return kNone;
  }
  const std::size_t nb = (n + kBlock - 1) / kBlock;
  std::vector<std::size_t> partial(nb, kNone);
  par::parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t s = lo + b * kBlock;
        const std::size_t e = std::min(hi, s + kBlock);
        for (std::size_t i = s; i < e; ++i) {
          if (!B.contains(pts[i], kSlack)) {
            partial[b] = i;
            return;
          }
        }
      },
      1);
  for (const std::size_t v : partial) {
    if (v != kNone) return v;
  }
  return kNone;
}

/// Index in [0, n) of the point furthest from `c` (parallel max reduce).
template <int D>
std::size_t furthest_from(const std::vector<point<D>>& pts,
                          const point<D>& c,
                          std::size_t n = std::size_t(-1)) {
  n = std::min(n, pts.size());
  constexpr std::size_t kBlock = 8192;
  const std::size_t nb = (n + kBlock - 1) / kBlock;
  if (nb <= 1 || par::num_workers() == 1) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (pts[i].dist_sq(c) > pts[best].dist_sq(c)) best = i;
    }
    return best;
  }
  std::vector<std::size_t> partial(nb);
  par::parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t s = b * kBlock;
        const std::size_t e = std::min(n, s + kBlock);
        std::size_t m = s;
        for (std::size_t i = s + 1; i < e; ++i) {
          if (pts[i].dist_sq(c) > pts[m].dist_sq(c)) m = i;
        }
        partial[b] = m;
      },
      1);
  std::size_t best = partial[0];
  for (std::size_t b = 1; b < nb; ++b) {
    if (pts[partial[b]].dist_sq(c) > pts[best].dist_sq(c)) {
      best = partial[b];
    }
  }
  return best;
}

// ---------------------------------------------------------------------
// Parallel Welzl engine (prefix scanning, Blelloch et al. style) with the
// paper's optional move-to-front and pivoting heuristics.
// ---------------------------------------------------------------------

template <int D>
class welzl_engine {
 public:
  welzl_engine(std::vector<point<D>> pts, bool mtf, bool pivot)
      : pts_(std::move(pts)), mtf_(mtf), pivot_(pivot) {}

  ball<D> run() {
    if (!pivot_) return solve(pts_.size(), basis<D>{});
    // Gärtner-style pivoting: repeatedly find the globally furthest
    // outlier (parallel max), force it onto the boundary, and re-solve
    // the prefix before it. Each round strictly grows the radius (the
    // pivot is outside the current ball) so the loop terminates quickly,
    // and move-to-front gathers the support candidates at the head of
    // the array. The pivoted fixed point can be slightly non-minimal
    // (the last pivot need not belong to the true support), so a final
    // plain Welzl pass over the now well-conditioned order produces the
    // exact ball — it only scans past the front until the first
    // non-violator chunk, which is cheap after conditioning.
    const std::size_t n = pts_.size();
    ball<D> B = solve(std::min<std::size_t>(n, D + 2), basis<D>{});
    constexpr int kMaxPivots = 256;
    for (int it = 0; it < kMaxPivots; ++it) {
      const std::size_t k = furthest_from(pts_, B.center, n);
      if (B.contains(pts_[k], kSlack)) break;
      basis<D> R;
      R.push(pts_[k]);
      ball<D> nb = solve(k, R);
      const point<D> pk = pts_[k];
      for (std::size_t t = k; t > 0; --t) pts_[t] = pts_[t - 1];
      pts_[0] = pk;
      if (nb.radius <= B.radius) break;  // fp stall: finish exactly below
      B = nb;
    }
    return solve(n, basis<D>{});
  }

 private:
  // Sequential prefixes below this size (paper §4: limited parallelism and
  // many violators early on make parallel primitives counterproductive).
  static constexpr std::size_t kSeqPrefix = 500000;

  ball<D> solve(std::size_t n, basis<D> R) {
    ball<D> B = ball_of(R);
    if (R.size == D + 1) return B;
    std::size_t i = 0;
    std::size_t chunk = 1024;
    while (i < n) {
      const std::size_t hi = std::min(n, i + chunk);
      std::size_t j;
      if (n < kSeqPrefix) {
        j = kNone;
        for (std::size_t t = i; t < hi; ++t) {
          if (!B.contains(pts_[t], kSlack)) {
            j = t;
            break;
          }
        }
      } else {
        j = first_violator(pts_, i, hi, B);
      }
      if (j == kNone) {
        i = hi;
        chunk *= 2;  // exponentially growing prefixes
        continue;
      }
      const point<D> pj = pts_[j];
      basis<D> R2 = R;
      R2.push(pj);
      B = solve(j, R2);
      if (mtf_) {
        for (std::size_t t = j; t > 0; --t) pts_[t] = pts_[t - 1];
        pts_[0] = pj;
      }
      i = j + 1;
    }
    return B;
  }

  std::vector<point<D>> pts_;
  bool mtf_, pivot_;
};

// ---------------------------------------------------------------------
// Orthant scan (Larsson et al.) and the paper's sampling algorithm
// ---------------------------------------------------------------------

template <int D>
int orthant_of(const point<D>& p, const point<D>& c) {
  int o = 0;
  for (int d = 0; d < D; ++d) {
    o |= (p[d] > c[d]) ? (1 << d) : 0;
  }
  return o;
}

template <int D>
struct orthant_extrema {
  static constexpr int kOrthants = 1 << D;
  // Furthest outlier per orthant; dist < 0 means none.
  std::array<double, kOrthants> dist;
  std::array<point<D>, kOrthants> pt;

  orthant_extrema() { dist.fill(-1.0); }

  void offer(const point<D>& p, const point<D>& center, double r_sq) {
    const double d2 = center.dist_sq(p);
    if (d2 <= r_sq) return;
    const int o = orthant_of(p, center);
    if (d2 > dist[o]) {
      dist[o] = d2;
      pt[o] = p;
    }
  }

  void merge(const orthant_extrema& o) {
    for (int i = 0; i < kOrthants; ++i) {
      if (o.dist[i] > dist[i]) {
        dist[i] = o.dist[i];
        pt[i] = o.pt[i];
      }
    }
  }

  bool has_outlier() const {
    for (const double d : dist) {
      if (d >= 0) return true;
    }
    return false;
  }
};

/// One parallel scan pass over pts[lo, hi): furthest outlier per orthant.
template <int D>
orthant_extrema<D> scan_pass(const std::vector<point<D>>& pts,
                             std::size_t lo, std::size_t hi,
                             const ball<D>& B) {
  const double r = B.radius * (1 + kSlack) + kSlack;
  const double r_sq = r * r;
  const std::size_t n = hi - lo;
  constexpr std::size_t kBlock = 8192;
  const std::size_t nb = (n + kBlock - 1) / kBlock;
  if (nb <= 1 || par::num_workers() == 1) {
    orthant_extrema<D> ex;
    for (std::size_t i = lo; i < hi; ++i) ex.offer(pts[i], B.center, r_sq);
    return ex;
  }
  std::vector<orthant_extrema<D>> partial(nb);
  par::parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t s = lo + b * kBlock;
        const std::size_t e = std::min(hi, s + kBlock);
        for (std::size_t i = s; i < e; ++i) {
          partial[b].offer(pts[i], B.center, r_sq);
        }
      },
      1);
  orthant_extrema<D> ex;
  for (const auto& p : partial) ex.merge(p);
  return ex;
}

/// Recompute the ball from its current support plus the scan extrema.
template <int D>
std::pair<ball<D>, basis<D>> update_ball(const basis<D>& support,
                                         const orthant_extrema<D>& ex) {
  std::vector<point<D>> cand;
  cand.reserve(support.size + orthant_extrema<D>::kOrthants);
  for (int i = 0; i < orthant_extrema<D>::kOrthants; ++i) {
    if (ex.dist[i] >= 0) cand.push_back(ex.pt[i]);
  }
  for (int i = 0; i < support.size; ++i) cand.push_back(support.pts[i]);
  return miniball_small<D>(std::move(cand));
}

template <int D>
ball<D> orthant_scan_from(const std::vector<point<D>>& pts, ball<D> B,
                          basis<D> support) {
  constexpr int kMaxIters = 1000;
  for (int it = 0; it < kMaxIters; ++it) {
    auto ex = scan_pass(pts, 0, pts.size(), B);
    if (!ex.has_outlier()) return B;
    auto [nb, ns] = update_ball(support, ex);
    // The radius cannot shrink in exact arithmetic; nudging it monotone
    // guards against floating-point cycling.
    if (nb.radius <= B.radius) {
      nb.radius = B.radius * (1 + 1e-12) + 1e-300;
    }
    B = nb;
    support = ns;
  }
  // Safety net: force enclosure (unreachable in practice).
  const std::size_t far = furthest_from(pts, B.center);
  B.radius = std::max(B.radius, B.center.dist(pts[far]));
  return B;
}

thread_local double g_sampling_fraction = 0.0;

}  // namespace

double last_sampling_scan_fraction() { return g_sampling_fraction; }

template <int D>
ball<D> welzl_seq(const std::vector<point<D>>& pts, uint64_t seed) {
  // Sequential Welzl with move-to-front (the classic practical variant);
  // random shuffle first for the expected-linear-time guarantee.
  auto L = par::random_shuffle(pts, seed);
  return welzl_small(L, L.size(), basis<D>{});
}

template <int D>
ball<D> welzl(const std::vector<point<D>>& pts, uint64_t seed) {
  welzl_engine<D> e(par::random_shuffle(pts, seed), false, false);
  return e.run();
}

template <int D>
ball<D> welzl_mtf(const std::vector<point<D>>& pts, uint64_t seed) {
  welzl_engine<D> e(par::random_shuffle(pts, seed), true, false);
  return e.run();
}

template <int D>
ball<D> welzl_mtf_pivot(const std::vector<point<D>>& pts, uint64_t seed) {
  welzl_engine<D> e(par::random_shuffle(pts, seed), true, true);
  return e.run();
}

template <int D>
ball<D> orthant_scan(const std::vector<point<D>>& pts) {
  if (pts.empty()) return {};
  basis<D> support;
  support.push(pts[0]);
  ball<D> B = ball_of(support);
  return orthant_scan_from(pts, B, support);
}

template <int D>
ball<D> sampling(const std::vector<point<D>>& pts, uint64_t seed,
                 std::size_t sample_size) {
  if (pts.empty()) return {};
  basis<D> support;
  support.push(pts[0]);
  ball<D> B = ball_of(support);
  // Sampling phase: constant-size random samples drawn through a
  // counter-based index stream — the whole point of the algorithm is to
  // touch only a small fraction of the input, so no permutation is
  // materialized. Stop as soon as one sample has no outlier.
  std::size_t scanned = 0;
  const std::size_t n = pts.size();
  std::vector<point<D>> block;
  block.reserve(sample_size);
  while (scanned < n) {
    const std::size_t take = std::min(sample_size, n - scanned);
    block.clear();
    for (std::size_t i = 0; i < take; ++i) {
      block.push_back(pts[par::rand_range(seed, scanned + i, n)]);
    }
    scanned += take;
    auto ex = scan_pass(block, 0, block.size(), B);
    if (!ex.has_outlier()) break;
    auto [nb, ns] = update_ball(support, ex);
    if (nb.radius > B.radius) {
      B = nb;
      support = ns;
    }
  }
  g_sampling_fraction = static_cast<double>(scanned) / n;
  // Final phase: full orthant scans from the (near-optimal) sampled ball.
  return orthant_scan_from(pts, B, support);
}

#define PARGEO_SEB_INSTANTIATE(D)                                         \
  template ball<D> welzl_seq<D>(const std::vector<point<D>>&, uint64_t);  \
  template ball<D> welzl<D>(const std::vector<point<D>>&, uint64_t);      \
  template ball<D> welzl_mtf<D>(const std::vector<point<D>>&, uint64_t);  \
  template ball<D> welzl_mtf_pivot<D>(const std::vector<point<D>>&,       \
                                      uint64_t);                          \
  template ball<D> orthant_scan<D>(const std::vector<point<D>>&);         \
  template ball<D> sampling<D>(const std::vector<point<D>>&, uint64_t,    \
                               std::size_t);

PARGEO_SEB_INSTANTIATE(2)
PARGEO_SEB_INSTANTIATE(3)
PARGEO_SEB_INSTANTIATE(5)
PARGEO_SEB_INSTANTIATE(7)

}  // namespace pargeo::seb
