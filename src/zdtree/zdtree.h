// Zd-tree stand-in for the paper's §6.3 comparison (Blelloch & Dobson's
// Morton-order batch-dynamic tree; see DESIGN.md substitutions).
//
// Points are kept Morton-sorted in one flat array; updates are sorted
// merges / filters (O(n + B) with tiny constants — the property that makes
// the real Zd-tree's updates much faster than the BDL-tree's rebuild
// cascades); k-NN runs over an implicit midpoint-split hierarchy with
// precomputed per-segment bounding boxes. Supports 2D and 3D like the
// original.
#pragma once

#include <cstdint>
#include <vector>

#include "core/aabb.h"
#include "core/point.h"
#include "kdtree/knn_buffer.h"

namespace pargeo::zdtree {

template <int D>
class zd_tree {
 public:
  explicit zd_tree(const std::vector<point<D>>& pts = {});

  std::size_t size() const { return items_.size(); }

  void insert(const std::vector<point<D>>& batch);
  void erase(const std::vector<point<D>>& batch);

  /// Row i: the k nearest stored points to queries[i], sorted by distance.
  std::vector<std::vector<point<D>>> knn(const std::vector<point<D>>& queries,
                                         std::size_t k) const;

  /// Appends all stored points inside `box` to `out` (unordered).
  void range_box(const aabb<D>& box, std::vector<point<D>>& out) const;

  /// Appends all stored points within `radius` of `center` to `out`.
  void range_ball(const point<D>& center, double radius,
                  std::vector<point<D>>& out) const;

  std::vector<point<D>> gather() const;

 private:
  struct item {
    uint64_t code;
    point<D> p;
    bool operator<(const item& o) const {
      return code < o.code || (code == o.code && p < o.p);
    }
    bool operator==(const item& o) const {
      return code == o.code && p == o.p;
    }
  };

  void rebuild_boxes();
  void knn_rec(std::size_t node, std::size_t lo, std::size_t hi,
               const point<D>& q, kdtree::knn_buffer& buf) const;
  template <class Keep>
  void range_rec(std::size_t node, std::size_t lo, std::size_t hi,
                 const aabb<D>& query_box, const Keep& keep,
                 std::vector<point<D>>& out) const;
  item make_item(const point<D>& p) const;

  static constexpr std::size_t kLeaf = 16;
  std::vector<item> items_;     // Morton-sorted
  std::vector<aabb<D>> boxes_;  // heap-ordered segment boxes
  std::size_t num_leaf_segments_ = 0;
};

}  // namespace pargeo::zdtree
