#include "zdtree/zdtree.h"

#include <algorithm>

#include "mortonsort/mortonsort.h"
#include "parallel/parallel.h"

namespace pargeo::zdtree {

namespace {

// Fixed quantization universe: Morton codes must stay comparable across
// batches, so the grid cannot follow the data's bounding box. All library
// generators emit coordinates well inside this range.
constexpr double kUniverse = 1 << 21;

template <int D>
point<D> universe_lo() {
  point<D> p;
  for (int d = 0; d < D; ++d) p[d] = -kUniverse;
  return p;
}
template <int D>
point<D> universe_hi() {
  point<D> p;
  for (int d = 0; d < D; ++d) p[d] = kUniverse;
  return p;
}

}  // namespace

template <int D>
typename zd_tree<D>::item zd_tree<D>::make_item(const point<D>& p) const {
  return {mortonsort::morton_code<D>(p, universe_lo<D>(), universe_hi<D>()),
          p};
}

template <int D>
zd_tree<D>::zd_tree(const std::vector<point<D>>& pts) {
  items_.resize(pts.size());
  par::parallel_for(0, pts.size(),
                    [&](std::size_t i) { items_[i] = make_item(pts[i]); });
  par::sort(items_, [](const item& a, const item& b) { return a < b; });
  rebuild_boxes();
}

template <int D>
void zd_tree<D>::rebuild_boxes() {
  const std::size_t n = items_.size();
  std::size_t segs = (n + kLeaf - 1) / kLeaf;
  std::size_t p = 1;
  while (p < std::max<std::size_t>(segs, 1)) p <<= 1;
  num_leaf_segments_ = p;
  boxes_.assign(2 * p, aabb<D>{});
  par::parallel_for(
      0, segs,
      [&](std::size_t s) {
        aabb<D> b;
        const std::size_t lo = s * kLeaf;
        const std::size_t hi = std::min(n, lo + kLeaf);
        for (std::size_t i = lo; i < hi; ++i) b.extend(items_[i].p);
        boxes_[p + s] = b;
      },
      4);
  for (std::size_t i = p - 1; i >= 1; --i) {
    boxes_[i] = boxes_[2 * i];
    boxes_[i].extend(boxes_[2 * i + 1]);
  }
}

template <int D>
void zd_tree<D>::insert(const std::vector<point<D>>& batch) {
  if (batch.empty()) return;
  std::vector<item> add(batch.size());
  par::parallel_for(0, batch.size(),
                    [&](std::size_t i) { add[i] = make_item(batch[i]); });
  par::sort(add, [](const item& a, const item& b) { return a < b; });
  std::vector<item> merged(items_.size() + add.size());
  std::merge(items_.begin(), items_.end(), add.begin(), add.end(),
             merged.begin(),
             [](const item& a, const item& b) { return a < b; });
  items_ = std::move(merged);
  rebuild_boxes();
}

template <int D>
void zd_tree<D>::erase(const std::vector<point<D>>& batch) {
  if (batch.empty() || items_.empty()) return;
  std::vector<item> del(batch.size());
  par::parallel_for(0, batch.size(),
                    [&](std::size_t i) { del[i] = make_item(batch[i]); });
  par::sort(del, [](const item& a, const item& b) { return a < b; });
  // One linear co-scan removing one stored copy per batch entry.
  std::vector<item> kept;
  kept.reserve(items_.size());
  std::size_t di = 0;
  for (const auto& it : items_) {
    while (di < del.size() && del[di] < it) ++di;
    if (di < del.size() && del[di] == it) {
      ++di;  // consume this deletion
      continue;
    }
    kept.push_back(it);
  }
  items_ = std::move(kept);
  rebuild_boxes();
}

template <int D>
void zd_tree<D>::knn_rec(std::size_t node, std::size_t lo, std::size_t hi,
                         const point<D>& q, kdtree::knn_buffer& buf) const {
  if (boxes_[node].empty() || boxes_[node].dist_sq(q) >= buf.bound()) {
    return;
  }
  if (hi - lo == 1) {
    const std::size_t s = lo * kLeaf;
    const std::size_t e = std::min(items_.size(), s + kLeaf);
    for (std::size_t i = s; i < e; ++i) {
      const double d = items_[i].p.dist_sq(q);
      if (d < buf.bound()) {
        buf.insert(d, reinterpret_cast<std::size_t>(&items_[i].p));
      }
    }
    return;
  }
  const std::size_t mid = (lo + hi) / 2;
  const std::size_t l = 2 * node, r = 2 * node + 1;
  const double dl = boxes_[l].empty() ? -1 : boxes_[l].dist_sq(q);
  const double dr = boxes_[r].empty() ? -1 : boxes_[r].dist_sq(q);
  if (dr >= 0 && (dl < 0 || dr < dl)) {
    knn_rec(r, mid, hi, q, buf);
    knn_rec(l, lo, mid, q, buf);
  } else {
    knn_rec(l, lo, mid, q, buf);
    knn_rec(r, mid, hi, q, buf);
  }
}

template <int D>
std::vector<std::vector<point<D>>> zd_tree<D>::knn(
    const std::vector<point<D>>& queries, std::size_t k) const {
  std::vector<std::vector<point<D>>> out(queries.size());
  if (items_.empty() || k == 0) return out;
  const std::size_t kk = std::min(k, items_.size());
  par::parallel_for(
      0, queries.size(),
      [&](std::size_t qi) {
        kdtree::knn_buffer buf(kk);
        knn_rec(1, 0, num_leaf_segments_, queries[qi], buf);
        auto entries = buf.finish();
        out[qi].reserve(entries.size());
        for (const auto& e : entries) {
          out[qi].push_back(*reinterpret_cast<const point<D>*>(e.id));
        }
      },
      16);
  return out;
}

template <int D>
template <class Keep>
void zd_tree<D>::range_rec(std::size_t node, std::size_t lo, std::size_t hi,
                           const aabb<D>& query_box, const Keep& keep,
                           std::vector<point<D>>& out) const {
  if (boxes_[node].empty() || !boxes_[node].intersects(query_box)) return;
  if (hi - lo == 1) {
    const std::size_t s = lo * kLeaf;
    const std::size_t e = std::min(items_.size(), s + kLeaf);
    for (std::size_t i = s; i < e; ++i) {
      if (keep(items_[i].p)) out.push_back(items_[i].p);
    }
    return;
  }
  const std::size_t mid = (lo + hi) / 2;
  range_rec(2 * node, lo, mid, query_box, keep, out);
  range_rec(2 * node + 1, mid, hi, query_box, keep, out);
}

template <int D>
void zd_tree<D>::range_box(const aabb<D>& box,
                           std::vector<point<D>>& out) const {
  if (items_.empty()) return;
  range_rec(1, 0, num_leaf_segments_, box,
            [&](const point<D>& p) { return box.contains(p); }, out);
}

template <int D>
void zd_tree<D>::range_ball(const point<D>& center, double radius,
                            std::vector<point<D>>& out) const {
  if (items_.empty()) return;
  // Prune segments by the ball's bounding box; the leaf test is exact.
  aabb<D> bb;
  point<D> r;
  for (int d = 0; d < D; ++d) r[d] = radius;
  bb.extend(center - r);
  bb.extend(center + r);
  const double r_sq = radius * radius;
  range_rec(1, 0, num_leaf_segments_, bb,
            [&](const point<D>& p) { return p.dist_sq(center) <= r_sq; },
            out);
}

template <int D>
std::vector<point<D>> zd_tree<D>::gather() const {
  std::vector<point<D>> out(items_.size());
  par::parallel_for(0, items_.size(),
                    [&](std::size_t i) { out[i] = items_[i].p; });
  return out;
}

template class zd_tree<2>;
template class zd_tree<3>;

}  // namespace pargeo::zdtree
