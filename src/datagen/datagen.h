// Synthetic point-set generators (paper Module 4), plus proxies for the
// real-world scan datasets used in the evaluation.
//
// Naming follows the paper: Uniform (U) in a hypercube of side sqrt(n);
// InSphere (IS) uniform in a ball; OnSphere (OS) / OnCube (OC) on a shell
// of thickness 0.1x the diameter / side; VisualVar (V) random-walk clusters
// of varying density; seed spreader clustered data (Gan & Tao style).
// All generators are deterministic functions of (n, seed) and parallel.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/point.h"
#include "parallel/parallel.h"

namespace pargeo::datagen {

/// Uniform points in a hypercube [0, sqrt(n)]^D (paper's "U").
template <int D>
std::vector<point<D>> uniform(std::size_t n, uint64_t seed = 1) {
  const double side = std::sqrt(static_cast<double>(n));
  std::vector<point<D>> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    for (int d = 0; d < D; ++d) {
      pts[i][d] = side * par::rand_double(seed + d, i);
    }
  });
  return pts;
}

namespace detail {

/// Standard-normal via Box–Muller on counter-based uniforms.
inline double normal(uint64_t seed, uint64_t i) {
  const double u1 = par::rand_double(seed, 2 * i) + 1e-300;
  const double u2 = par::rand_double(seed, 2 * i + 1);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// Uniform direction on the unit (D-1)-sphere.
template <int D>
point<D> unit_direction(uint64_t seed, uint64_t i) {
  point<D> v;
  double len2 = 0;
  for (int d = 0; d < D; ++d) {
    v[d] = normal(seed + 101 * d, i);
    len2 += v[d] * v[d];
  }
  const double len = std::sqrt(len2);
  if (len < 1e-12) {
    point<D> e{};
    e[0] = 1;
    return e;
  }
  return v / len;
}

}  // namespace detail

/// Uniform points inside a ball of radius sqrt(n)/2 (paper's "IS").
template <int D>
std::vector<point<D>> in_sphere(std::size_t n, uint64_t seed = 1) {
  const double radius = std::sqrt(static_cast<double>(n)) / 2.0;
  std::vector<point<D>> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    const auto dir = detail::unit_direction<D>(seed, i);
    // r ~ radius * U^(1/D) gives uniform density in the ball.
    const double u = par::rand_double(seed + 7770, i);
    const double r = radius * std::pow(u, 1.0 / D);
    pts[i] = dir * r;
  });
  return pts;
}

/// Points on a spherical shell of thickness `0.1 * diameter` (paper's "OS").
template <int D>
std::vector<point<D>> on_sphere(std::size_t n, uint64_t seed = 1) {
  const double radius = std::sqrt(static_cast<double>(n)) / 2.0;
  const double thickness = 0.1 * (2.0 * radius);
  std::vector<point<D>> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    const auto dir = detail::unit_direction<D>(seed, i);
    const double r =
        radius - thickness * par::rand_double(seed + 7771, i);
    pts[i] = dir * r;
  });
  return pts;
}

/// Points on the shell of a hypercube of side sqrt(n), thickness 0.1*side
/// (paper's "OC"). Each point picks a face, lands uniformly on it, then is
/// perturbed inward by up to the shell thickness.
template <int D>
std::vector<point<D>> on_cube(std::size_t n, uint64_t seed = 1) {
  const double side = std::sqrt(static_cast<double>(n));
  const double thickness = 0.1 * side;
  std::vector<point<D>> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    const uint64_t face = par::rand_range(seed + 5550, i, 2 * D);
    const int axis = static_cast<int>(face / 2);
    const bool high = (face % 2) == 1;
    point<D> p;
    for (int d = 0; d < D; ++d) {
      p[d] = side * par::rand_double(seed + d, i);
    }
    const double inward = thickness * par::rand_double(seed + 5551, i);
    p[axis] = high ? side - inward : inward;
    pts[i] = p;
  });
  return pts;
}

/// Uniform points inside a hypercube centered at the origin ("IC" in the
/// paper's Fig. 12); equals `uniform` up to translation.
template <int D>
std::vector<point<D>> in_cube(std::size_t n, uint64_t seed = 1) {
  const double side = std::sqrt(static_cast<double>(n));
  std::vector<point<D>> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    for (int d = 0; d < D; ++d) {
      pts[i][d] = side * (par::rand_double(seed + d, i) - 0.5);
    }
  });
  return pts;
}

/// VisualVar ("V"): clusters produced by random walks with varying step
/// sizes, giving regions of varying density (PBBS-style).
template <int D>
std::vector<point<D>> visualvar(std::size_t n, uint64_t seed = 1,
                                std::size_t num_walks = 10) {
  const double side = std::sqrt(static_cast<double>(n));
  std::vector<point<D>> pts(n);
  const std::size_t per = (n + num_walks - 1) / num_walks;
  par::parallel_for(
      0, num_walks,
      [&](std::size_t w) {
        const std::size_t lo = w * per;
        const std::size_t hi = std::min(n, lo + per);
        if (lo >= hi) return;
        point<D> cur;
        for (int d = 0; d < D; ++d) {
          cur[d] = side * par::rand_double(seed + 31 * d, w);
        }
        // Walk step shrinks with the walk index -> varying density.
        const double step = side / (10.0 * (1.0 + static_cast<double>(w)));
        for (std::size_t i = lo; i < hi; ++i) {
          const auto dir = detail::unit_direction<D>(seed + 909, i);
          cur = cur + dir * (step * par::rand_double(seed + 910, i));
          pts[i] = cur;
        }
      },
      1);
  return pts;
}

/// Seed spreader (Gan & Tao style): a spreader walks and drops clustered
/// points, teleporting occasionally; `restart_prob` controls cluster count.
template <int D>
std::vector<point<D>> seed_spreader(std::size_t n, uint64_t seed = 1,
                                    double restart_prob = 0.0005,
                                    double local_radius = 10.0) {
  const double side = std::sqrt(static_cast<double>(n)) * 2;
  std::vector<point<D>> centers(n);
  // Phase 1 (sequential): spreader trajectory — inherently a chain.
  point<D> cur;
  for (int d = 0; d < D; ++d) cur[d] = side * par::rand_double(seed + d, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (par::rand_double(seed + 42, i) < restart_prob) {
      for (int d = 0; d < D; ++d) {
        cur[d] = side * par::rand_double(seed + 100 + d, i);
      }
    } else {
      const auto dir = detail::unit_direction<D>(seed + 43, i);
      cur = cur + dir * (local_radius * 0.05);
    }
    centers[i] = cur;
  }
  // Phase 2 (parallel): jitter each dropped point around its center.
  std::vector<point<D>> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    const auto dir = detail::unit_direction<D>(seed + 44, i);
    pts[i] = centers[i] +
             dir * (local_radius * par::rand_double(seed + 45, i));
  });
  return pts;
}

/// Proxy for the Stanford Thai-statue / Dragon scans: points sampled on a
/// closed "bumpy sphere" surface (radius modulated by multi-frequency
/// sinusoids). Like a scan, nearly all points are extreme in some local
/// patch, the hull output is a small fraction of n, and the data is far
/// from both the U and OS regimes. 3D only.
inline std::vector<point<3>> synthetic_statue(std::size_t n,
                                              uint64_t seed = 1) {
  const double base = std::sqrt(static_cast<double>(n)) / 2.0;
  std::vector<point<3>> pts(n);
  par::parallel_for(0, n, [&](std::size_t i) {
    const auto dir = detail::unit_direction<3>(seed, i);
    const double theta = std::atan2(dir[1], dir[0]);
    const double phi = std::acos(std::clamp(dir[2], -1.0, 1.0));
    // Bumps at several angular frequencies; amplitudes < base/4 keep the
    // surface closed and star-shaped.
    const double bump = 0.15 * std::sin(5 * theta) * std::sin(4 * phi) +
                        0.08 * std::cos(11 * theta + 2 * phi) +
                        0.05 * std::sin(23 * phi);
    const double r = base * (1.0 + bump);
    pts[i] = dir * r;
  });
  return pts;
}

}  // namespace pargeo::datagen
