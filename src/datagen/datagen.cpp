// Anchor translation unit for the pargeo_datagen static library.
#include "datagen/datagen.h"
