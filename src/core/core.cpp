// Anchor translation unit for the pargeo_core static library.
#include "core/aabb.h"
#include "core/ball.h"
#include "core/point.h"
#include "core/predicates.h"
#include "core/timer.h"
