// Geometric orientation predicates with static floating-point filters.
//
// Each predicate is evaluated in double precision together with an error
// bound on the computed determinant; if the magnitude of the result is
// below the bound, the computation is redone in 80-bit long double. This
// is not Shewchuk-exact, but matches the engineering level of ParGeo and
// is robust for the well-conditioned inputs the generators produce.
#pragma once

#include <cmath>

#include "core/point.h"

namespace pargeo {

namespace detail {
inline constexpr double kEps = 2.220446049250313e-16;  // 2^-52

template <class T>
T orient2d_det(T ax, T ay, T bx, T by, T cx, T cy) {
  return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
}

template <class T>
T orient3d_det(const point<3>& a, const point<3>& b, const point<3>& c,
               const point<3>& d) {
  const T adx = T(a[0]) - T(d[0]), ady = T(a[1]) - T(d[1]),
          adz = T(a[2]) - T(d[2]);
  const T bdx = T(b[0]) - T(d[0]), bdy = T(b[1]) - T(d[1]),
          bdz = T(b[2]) - T(d[2]);
  const T cdx = T(c[0]) - T(d[0]), cdy = T(c[1]) - T(d[1]),
          cdz = T(c[2]) - T(d[2]);
  return adx * (bdy * cdz - bdz * cdy) - ady * (bdx * cdz - bdz * cdx) +
         adz * (bdx * cdy - bdy * cdx);
}
}  // namespace detail

/// Signed double area of triangle (a,b,c): > 0 iff counter-clockwise.
inline double orient2d(const point<2>& a, const point<2>& b,
                       const point<2>& c) {
  const double det =
      detail::orient2d_det(a[0], a[1], b[0], b[1], c[0], c[1]);
  const double errBound =
      8 * detail::kEps *
      (std::abs((b[0] - a[0]) * (c[1] - a[1])) +
       std::abs((b[1] - a[1]) * (c[0] - a[0])));
  if (std::abs(det) > errBound) return det;
  return static_cast<double>(detail::orient2d_det<long double>(
      a[0], a[1], b[0], b[1], c[0], c[1]));
}

/// Signed volume (×6) of tetrahedron (a,b,c,d): > 0 iff d is below the
/// plane through (a,b,c) oriented counter-clockwise seen from above.
inline double orient3d(const point<3>& a, const point<3>& b,
                       const point<3>& c, const point<3>& d) {
  const double det = detail::orient3d_det<double>(a, b, c, d);
  // Conservative bound on the rounding error of the 3x3 determinant.
  const double adx = std::abs(a[0] - d[0]), ady = std::abs(a[1] - d[1]),
               adz = std::abs(a[2] - d[2]);
  const double bdx = std::abs(b[0] - d[0]), bdy = std::abs(b[1] - d[1]),
               bdz = std::abs(b[2] - d[2]);
  const double cdx = std::abs(c[0] - d[0]), cdy = std::abs(c[1] - d[1]),
               cdz = std::abs(c[2] - d[2]);
  const double permanent = adx * (bdy * cdz + bdz * cdy) +
                           ady * (bdx * cdz + bdz * cdx) +
                           adz * (bdx * cdy + bdy * cdx);
  const double errBound = 16 * detail::kEps * permanent;
  if (std::abs(det) > errBound) return det;
  return static_cast<double>(detail::orient3d_det<long double>(a, b, c, d));
}

/// In-circle test: > 0 iff d is strictly inside the circumcircle of the
/// counter-clockwise triangle (a,b,c).
inline double incircle(const point<2>& a, const point<2>& b,
                       const point<2>& c, const point<2>& d) {
  auto det = [&](auto adx, auto ady, auto bdx, auto bdy, auto cdx, auto cdy) {
    const auto alift = adx * adx + ady * ady;
    const auto blift = bdx * bdx + bdy * bdy;
    const auto clift = cdx * cdx + cdy * cdy;
    return alift * (bdx * cdy - bdy * cdx) - blift * (adx * cdy - ady * cdx) +
           clift * (adx * bdy - ady * bdx);
  };
  const double adx = a[0] - d[0], ady = a[1] - d[1];
  const double bdx = b[0] - d[0], bdy = b[1] - d[1];
  const double cdx = c[0] - d[0], cdy = c[1] - d[1];
  const double r = det(adx, ady, bdx, bdy, cdx, cdy);
  const double alift = adx * adx + ady * ady;
  const double blift = bdx * bdx + bdy * bdy;
  const double clift = cdx * cdx + cdy * cdy;
  const double permanent =
      alift * (std::abs(bdx * cdy) + std::abs(bdy * cdx)) +
      blift * (std::abs(adx * cdy) + std::abs(ady * cdx)) +
      clift * (std::abs(adx * bdy) + std::abs(ady * bdx));
  const double errBound = 32 * detail::kEps * permanent;
  if (std::abs(r) > errBound) return r;
  const long double ADX = (long double)a[0] - d[0],
                    ADY = (long double)a[1] - d[1];
  const long double BDX = (long double)b[0] - d[0],
                    BDY = (long double)b[1] - d[1];
  const long double CDX = (long double)c[0] - d[0],
                    CDY = (long double)c[1] - d[1];
  return static_cast<double>(det(ADX, ADY, BDX, BDY, CDX, CDY));
}

}  // namespace pargeo
