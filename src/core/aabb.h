// Axis-aligned bounding boxes.
#pragma once

#include <algorithm>
#include <limits>

#include "core/point.h"

namespace pargeo {

/// Axis-aligned box in R^D. Empty() boxes have +inf/-inf corners so that
/// extend() works without special-casing.
template <int D>
struct aabb {
  point<D> lo, hi;

  aabb() {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::numeric_limits<double>::infinity();
      hi[i] = -std::numeric_limits<double>::infinity();
    }
  }
  aabb(const point<D>& l, const point<D>& h) : lo(l), hi(h) {}

  bool empty() const { return lo[0] > hi[0]; }

  void extend(const point<D>& p) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  void extend(const aabb& o) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], o.lo[i]);
      hi[i] = std::max(hi[i], o.hi[i]);
    }
  }

  bool contains(const point<D>& p) const {
    for (int i = 0; i < D; ++i) {
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    }
    return true;
  }

  bool intersects(const aabb& o) const {
    for (int i = 0; i < D; ++i) {
      if (o.hi[i] < lo[i] || o.lo[i] > hi[i]) return false;
    }
    return true;
  }

  /// True iff this box lies entirely inside `o`.
  bool inside(const aabb& o) const {
    for (int i = 0; i < D; ++i) {
      if (lo[i] < o.lo[i] || hi[i] > o.hi[i]) return false;
    }
    return true;
  }

  point<D> center() const { return (lo + hi) / 2.0; }

  /// Index of the widest dimension.
  int widest_dim() const {
    int d = 0;
    double w = hi[0] - lo[0];
    for (int i = 1; i < D; ++i) {
      if (hi[i] - lo[i] > w) {
        w = hi[i] - lo[i];
        d = i;
      }
    }
    return d;
  }

  double width(int i) const { return hi[i] - lo[i]; }

  double diameter_sq() const { return hi.dist_sq(lo); }
  double diameter() const { return hi.dist(lo); }

  /// Squared distance from p to the box (0 if inside).
  double dist_sq(const point<D>& p) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      const double d = std::max({lo[i] - p[i], 0.0, p[i] - hi[i]});
      s += d * d;
    }
    return s;
  }

  /// Squared minimum distance between two boxes (0 if they intersect).
  double dist_sq(const aabb& o) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      const double d = std::max({lo[i] - o.hi[i], 0.0, o.lo[i] - hi[i]});
      s += d * d;
    }
    return s;
  }

  /// Squared maximum distance from p to any point of the box.
  double max_dist_sq(const point<D>& p) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      const double d = std::max(std::abs(p[i] - lo[i]), std::abs(p[i] - hi[i]));
      s += d * d;
    }
    return s;
  }
};

}  // namespace pargeo
