// Lightweight wall-clock timer used by benches and examples.
#pragma once

#include <chrono>

namespace pargeo {

class timer {
 public:
  timer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pargeo
