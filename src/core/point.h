// Fixed-dimension point type used throughout the library.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace pargeo {

/// A point (equivalently, a vector) in D-dimensional Euclidean space.
/// Aggregate-like value type; coordinates are doubles as in ParGeo.
template <int D>
struct point {
  static_assert(D >= 1);
  static constexpr int dim = D;
  using coord_t = double;

  std::array<double, D> x{};

  point() = default;
  explicit point(const std::array<double, D>& coords) : x(coords) {}

  double& operator[](int i) { return x[i]; }
  double operator[](int i) const { return x[i]; }

  point operator+(const point& o) const {
    point r;
    for (int i = 0; i < D; ++i) r.x[i] = x[i] + o.x[i];
    return r;
  }
  point operator-(const point& o) const {
    point r;
    for (int i = 0; i < D; ++i) r.x[i] = x[i] - o.x[i];
    return r;
  }
  point operator*(double s) const {
    point r;
    for (int i = 0; i < D; ++i) r.x[i] = x[i] * s;
    return r;
  }
  point operator/(double s) const { return *this * (1.0 / s); }

  bool operator==(const point& o) const { return x == o.x; }
  bool operator!=(const point& o) const { return !(*this == o); }

  double dot(const point& o) const {
    double s = 0;
    for (int i = 0; i < D; ++i) s += x[i] * o.x[i];
    return s;
  }

  double length_sq() const { return dot(*this); }
  double length() const { return std::sqrt(length_sq()); }

  double dist_sq(const point& o) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      const double d = x[i] - o.x[i];
      s += d * d;
    }
    return s;
  }
  double dist(const point& o) const { return std::sqrt(dist_sq(o)); }

  /// Lexicographic order; used for deterministic tie-breaking.
  bool operator<(const point& o) const { return x < o.x; }
};

/// Cross product in R^3.
inline point<3> cross(const point<3>& a, const point<3>& b) {
  point<3> r;
  r[0] = a[1] * b[2] - a[2] * b[1];
  r[1] = a[2] * b[0] - a[0] * b[2];
  r[2] = a[0] * b[1] - a[1] * b[0];
  return r;
}

/// z-component of the 2D cross product (a × b).
inline double cross2(const point<2>& a, const point<2>& b) {
  return a[0] * b[1] - a[1] * b[0];
}

template <int D>
std::ostream& operator<<(std::ostream& os, const point<D>& p) {
  os << '(';
  for (int i = 0; i < D; ++i) os << (i ? "," : "") << p[i];
  return os << ')';
}

using point2 = point<2>;
using point3 = point<3>;

}  // namespace pargeo
