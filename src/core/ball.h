// Balls and circumball construction from boundary (support) point sets.
//
// The smallest-enclosing-ball algorithms (Welzl, orthant scan, sampling)
// all reduce to: given a set S of at most D+1 affinely independent points,
// find the smallest ball with S on its boundary. That ball's center lies in
// the affine hull of S and is found by solving a small linear system.
#pragma once

#include <array>
#include <cmath>

#include "core/point.h"

namespace pargeo {

template <int D>
struct ball {
  point<D> center{};
  double radius = -1.0;  // negative radius == empty ball

  ball() = default;
  ball(const point<D>& c, double r) : center(c), radius(r) {}

  bool is_empty() const { return radius < 0; }

  bool contains(const point<D>& p, double slack = 1e-9) const {
    if (is_empty()) return false;
    const double r = radius * (1.0 + slack) + slack;
    return center.dist_sq(p) <= r * r;
  }
};

namespace detail {

/// Solve the m-by-m linear system A·x = b in place (partial pivoting).
/// Returns false if the system is (numerically) singular.
template <int M>
bool solve_linear(std::array<std::array<double, M>, M>& A,
                  std::array<double, M>& b, int m) {
  for (int col = 0; col < m; ++col) {
    int piv = col;
    for (int r = col + 1; r < m; ++r) {
      if (std::abs(A[r][col]) > std::abs(A[piv][col])) piv = r;
    }
    if (std::abs(A[piv][col]) < 1e-30) return false;
    std::swap(A[piv], A[col]);
    std::swap(b[piv], b[col]);
    for (int r = col + 1; r < m; ++r) {
      const double f = A[r][col] / A[col][col];
      for (int c = col; c < m; ++c) A[r][c] -= f * A[col][c];
      b[r] -= f * b[col];
    }
  }
  for (int col = m - 1; col >= 0; --col) {
    double s = b[col];
    for (int c = col + 1; c < m; ++c) s -= A[col][c] * b[c];
    b[col] = s / A[col][col];
  }
  return true;
}

}  // namespace detail

/// Smallest ball whose boundary passes through the k points in `support`
/// (1 <= k <= D+1). For k=1 this is a zero-radius ball. Returns an empty
/// ball if the support points are affinely degenerate.
template <int D>
ball<D> circumball(const point<D>* support, int k) {
  if (k <= 0) return {};
  if (k == 1) return {support[0], 0.0};
  // Center = q0 + sum_i lambda_i (q_i - q0); equidistance to q0 and q_i
  // gives (q_i - q0)·(center - q0) = |q_i - q0|^2 / 2.
  const int m = k - 1;
  std::array<std::array<double, D>, D> A{};
  std::array<double, D> b{};
  std::array<point<D>, D> v{};
  for (int i = 0; i < m; ++i) {
    v[i] = support[i + 1] - support[0];
    b[i] = 0.5 * v[i].length_sq();
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) A[i][j] = v[i].dot(v[j]);
  }
  if (!detail::solve_linear<D>(A, b, m)) return {};
  point<D> c = support[0];
  for (int i = 0; i < m; ++i) c = c + v[i] * b[i];
  return {c, c.dist(support[0])};
}

/// Convenience overload for a small array-backed support set.
template <int D>
ball<D> circumball(const std::array<point<D>, D + 1>& support, int k) {
  return circumball<D>(support.data(), k);
}

}  // namespace pargeo
