// Data-parallel sequence primitives: reduce, scan, pack, filter, flatten.
//
// These mirror the ParlayLib operations the ParGeo paper's pseudocode uses
// (e.g. ParallelPack on line 17 of the hull algorithm). All primitives are
// deterministic regardless of worker count.
#pragma once

#include <cstddef>
#include <functional>
#include <numeric>
#include <vector>

#include "parallel/scheduler.h"

namespace pargeo::par {

namespace detail {
inline std::size_t num_blocks(std::size_t n, std::size_t block) {
  return (n + block - 1) / block;
}
inline constexpr std::size_t kBlock = 4096;
}  // namespace detail

/// reduce(seq, id, op): op must be associative with identity `id`.
template <class Seq, class T, class Op>
T reduce(const Seq& s, T id, Op op) {
  const std::size_t n = s.size();
  if (n == 0) return id;
  const std::size_t block = detail::kBlock;
  const std::size_t nb = detail::num_blocks(n, block);
  if (nb <= 1) {
    T acc = id;
    for (std::size_t i = 0; i < n; ++i) acc = op(acc, s[i]);
    return acc;
  }
  std::vector<T> partial(nb, id);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        T acc = id;
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        for (std::size_t i = lo; i < hi; ++i) acc = op(acc, s[i]);
        partial[b] = acc;
      },
      1);
  T acc = id;
  for (std::size_t b = 0; b < nb; ++b) acc = op(acc, partial[b]);
  return acc;
}

/// Sum of a sequence.
template <class Seq>
auto sum(const Seq& s) {
  using T = std::decay_t<decltype(s[0])>;
  return reduce(s, T{}, std::plus<T>{});
}

/// Index of the "best" element under strict-weak comparator `less`
/// (returns the first such index; n must be > 0).
template <class Seq, class Less>
std::size_t min_element_index(const Seq& s, Less less) {
  const std::size_t n = s.size();
  const std::size_t block = detail::kBlock;
  const std::size_t nb = detail::num_blocks(n, block);
  std::vector<std::size_t> best(nb);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        std::size_t m = lo;
        for (std::size_t i = lo + 1; i < hi; ++i) {
          if (less(s[i], s[m])) m = i;
        }
        best[b] = m;
      },
      1);
  std::size_t m = best[0];
  for (std::size_t b = 1; b < nb; ++b) {
    if (less(s[best[b]], s[m])) m = best[b];
  }
  return m;
}

/// Exclusive prefix sum in place; returns the total.
template <class T>
T scan_exclusive(std::vector<T>& s) {
  const std::size_t n = s.size();
  if (n == 0) return T{};
  const std::size_t block = detail::kBlock;
  const std::size_t nb = detail::num_blocks(n, block);
  if (nb <= 1) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = s[i];
      s[i] = acc;
      acc += v;
    }
    return acc;
  }
  std::vector<T> sums(nb);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        T acc{};
        for (std::size_t i = lo; i < hi; ++i) acc += s[i];
        sums[b] = acc;
      },
      1);
  T total{};
  for (std::size_t b = 0; b < nb; ++b) {
    T v = sums[b];
    sums[b] = total;
    total += v;
  }
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        T acc = sums[b];
        for (std::size_t i = lo; i < hi; ++i) {
          T v = s[i];
          s[i] = acc;
          acc += v;
        }
      },
      1);
  return total;
}

/// pack(seq, flags): elements with flags[i] != 0, in order.
template <class Seq, class Flags>
auto pack(const Seq& s, const Flags& flags) {
  using T = std::decay_t<decltype(s[0])>;
  const std::size_t n = s.size();
  std::vector<std::size_t> offs(n);
  parallel_for(0, n, [&](std::size_t i) { offs[i] = flags[i] ? 1 : 0; });
  const std::size_t total = scan_exclusive(offs);
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offs[i]] = s[i];
  });
  return out;
}

/// Indices i where flags[i] != 0, in order.
template <class Flags>
std::vector<std::size_t> pack_index(const Flags& flags) {
  const std::size_t n = flags.size();
  std::vector<std::size_t> offs(n);
  parallel_for(0, n, [&](std::size_t i) { offs[i] = flags[i] ? 1 : 0; });
  const std::size_t total = scan_exclusive(offs);
  std::vector<std::size_t> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offs[i]] = i;
  });
  return out;
}

/// filter(seq, pred): elements satisfying pred, in order.
template <class Seq, class Pred>
auto filter(const Seq& s, Pred pred) {
  using T = std::decay_t<decltype(s[0])>;
  const std::size_t n = s.size();
  std::vector<std::size_t> offs(n);
  parallel_for(0, n, [&](std::size_t i) { offs[i] = pred(s[i]) ? 1 : 0; });
  const std::size_t total = scan_exclusive(offs);
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (pred(s[i])) out[offs[i]] = s[i];
  });
  return out;
}

/// Count elements satisfying pred.
template <class Seq, class Pred>
std::size_t count_if(const Seq& s, Pred pred) {
  const std::size_t n = s.size();
  const std::size_t block = detail::kBlock;
  const std::size_t nb = detail::num_blocks(n, block);
  if (nb == 0) return 0;
  std::vector<std::size_t> partial(nb, 0);
  parallel_for(
      0, nb,
      [&](std::size_t b) {
        const std::size_t lo = b * block;
        const std::size_t hi = std::min(n, lo + block);
        std::size_t c = 0;
        for (std::size_t i = lo; i < hi; ++i) c += pred(s[i]) ? 1 : 0;
        partial[b] = c;
      },
      1);
  return std::accumulate(partial.begin(), partial.end(), std::size_t{0});
}

/// flatten(vector<vector<T>>): concatenation, preserving order.
template <class T>
std::vector<T> flatten(const std::vector<std::vector<T>>& nested) {
  const std::size_t m = nested.size();
  std::vector<std::size_t> offs(m);
  parallel_for(0, m, [&](std::size_t i) { offs[i] = nested[i].size(); });
  const std::size_t total = scan_exclusive(offs);
  std::vector<T> out(total);
  parallel_for(
      0, m,
      [&](std::size_t i) {
        std::copy(nested[i].begin(), nested[i].end(), out.begin() + offs[i]);
      },
      1);
  return out;
}

/// tabulate(n, f): vector {f(0), ..., f(n-1)} built in parallel.
template <class F>
auto tabulate(std::size_t n, F f) {
  using T = std::decay_t<decltype(f(std::size_t{0}))>;
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

}  // namespace pargeo::par
