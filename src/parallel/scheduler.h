// Fork-join scheduling substrate over OpenMP.
//
// ParGeo's algorithms are written against ParlayLib-style primitives:
// a flat `parallel_for`, binary fork `par_do`, and a worker count. This
// header provides those on top of OpenMP, handling nesting with tasks so
// recursive divide-and-conquer (kd-tree build, merge sort, hull D&C)
// composes with data-parallel loops.
#pragma once

#include <omp.h>

#include <cstddef>
#include <utility>

namespace pargeo::par {

/// Number of workers the runtime will use for parallel regions.
inline int num_workers() { return omp_get_max_threads(); }

/// True if called from inside an active parallel region.
inline bool in_parallel() { return omp_in_parallel() != 0; }

/// Default grain size for parallel loops; chosen so per-task overhead is
/// amortized over a few microseconds of work.
inline constexpr std::size_t kDefaultGrain = 2048;

/// Run `f(i)` for i in [lo, hi). Parallel when profitable; safe to call
/// from inside other parallel constructs (falls back to tasks).
template <class F>
void parallel_for(std::size_t lo, std::size_t hi, F f,
                  std::size_t grain = kDefaultGrain) {
  if (hi <= lo) return;
  const std::size_t n = hi - lo;
  if (n <= grain || num_workers() == 1) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  if (in_parallel()) {
#pragma omp taskloop grainsize(grain) default(shared) untied
    for (std::size_t i = lo; i < hi; ++i) f(i);
  } else {
#pragma omp parallel for schedule(static)
    for (std::size_t i = lo; i < hi; ++i) f(i);
  }
}

namespace detail {
template <class A, class B>
void par_do_task(A& a, B& b) {
#pragma omp task default(shared) untied
  a();
  b();
#pragma omp taskwait
}
}  // namespace detail

/// Run `a()` and `b()` potentially in parallel; returns when both finish.
template <class A, class B>
void par_do(A a, B b) {
  if (num_workers() == 1) {
    a();
    b();
    return;
  }
  if (in_parallel()) {
    detail::par_do_task(a, b);
  } else {
#pragma omp parallel
#pragma omp single nowait
    detail::par_do_task(a, b);
  }
}

/// Three-way fork.
template <class A, class B, class C>
void par_do3(A a, B b, C c) {
  par_do([&] { a(); }, [&] { par_do(b, c); });
}

}  // namespace pargeo::par
