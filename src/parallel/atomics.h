// Priority-update primitives (Shun et al., "Reducing contention through
// priority updates"). The reservation-based hull algorithm relies on
// write_min: concurrent writers race to leave the minimum value behind.
#pragma once

#include <atomic>

namespace pargeo::par {

/// Atomically set `*a = min(*a, v)`. Returns true iff `v` was written
/// (i.e., v was strictly smaller than the previous value at some point).
template <class T>
bool write_min(std::atomic<T>* a, T v) {
  T cur = a->load(std::memory_order_relaxed);
  while (v < cur) {
    if (a->compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

/// Atomically set `*a = max(*a, v)`. Returns true iff `v` was written.
template <class T>
bool write_max(std::atomic<T>* a, T v) {
  T cur = a->load(std::memory_order_relaxed);
  while (cur < v) {
    if (a->compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

/// Fetch-and-add convenience wrapper.
template <class T>
T fetch_add(std::atomic<T>* a, T v) {
  return a->fetch_add(v, std::memory_order_relaxed);
}

}  // namespace pargeo::par
