// Umbrella header for the parallel substrate.
#pragma once

#include "parallel/atomics.h"     // IWYU pragma: export
#include "parallel/primitives.h"  // IWYU pragma: export
#include "parallel/random.h"      // IWYU pragma: export
#include "parallel/scheduler.h"   // IWYU pragma: export
#include "parallel/sort.h"        // IWYU pragma: export
