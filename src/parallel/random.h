// Counter-based deterministic randomness.
//
// Every randomized component in the library (data generators, randomized
// incremental algorithms, random permutations) draws from splitmix64 hashes
// of (seed, index), so results are reproducible at any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/primitives.h"
#include "parallel/sort.h"

namespace pargeo::par {

/// splitmix64 finalizer: high-quality 64-bit mix.
inline uint64_t hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Stateless RNG stream: value i of stream `seed`.
inline uint64_t rand_at(uint64_t seed, uint64_t i) {
  return hash64(seed * 0x9e3779b97f4a7c15ull + i + 1);
}

/// Uniform double in [0, 1).
inline double rand_double(uint64_t seed, uint64_t i) {
  return static_cast<double>(rand_at(seed, i) >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, bound).
inline uint64_t rand_range(uint64_t seed, uint64_t i, uint64_t bound) {
  return rand_at(seed, i) % bound;
}

/// Deterministic random permutation of [0, n): sorts indices by hashed key.
inline std::vector<std::size_t> random_permutation(std::size_t n,
                                                   uint64_t seed) {
  struct KeyIdx {
    uint64_t key;
    std::size_t idx;
  };
  std::vector<KeyIdx> ki(n);
  parallel_for(0, n, [&](std::size_t i) {
    ki[i] = {rand_at(seed, i), i};
  });
  sort(ki, [](const KeyIdx& a, const KeyIdx& b) {
    return a.key < b.key || (a.key == b.key && a.idx < b.idx);
  });
  std::vector<std::size_t> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = ki[i].idx; });
  return out;
}

/// Deterministic parallel shuffle of a sequence.
template <class T>
std::vector<T> random_shuffle(const std::vector<T>& v, uint64_t seed) {
  auto perm = random_permutation(v.size(), seed);
  std::vector<T> out(v.size());
  parallel_for(0, v.size(), [&](std::size_t i) { out[i] = v[perm[i]]; });
  return out;
}

}  // namespace pargeo::par
