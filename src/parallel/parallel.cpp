// Anchor translation unit for the pargeo_parallel static library.
#include "parallel/parallel.h"

namespace pargeo::par {
// Everything in the substrate is header-only; this TU exists so the
// subsystem builds as a normal static library like its siblings.
}  // namespace pargeo::par
