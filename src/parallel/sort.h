// Parallel comparison sort: recursive merge sort with out-of-place merges,
// falling back to std::sort below the grain. Stable.
#pragma once

#include <algorithm>
#include <iterator>
#include <vector>

#include "parallel/scheduler.h"

namespace pargeo::par {

namespace detail {

inline constexpr std::size_t kSortGrain = 1 << 13;

// Stable merge of [l1,h1) and [l2,h2) into out: always splits the first
// sequence at its median (never swaps the sequences, which would flip tie
// order) and the second at the corresponding lower_bound.
template <class It, class OutIt, class Cmp>
void par_merge(It l1, It h1, It l2, It h2, OutIt out, Cmp cmp) {
  const std::size_t n1 = h1 - l1, n2 = h2 - l2;
  if (n1 + n2 <= kSortGrain) {
    std::merge(l1, h1, l2, h2, out, cmp);
    return;
  }
  if (n1 == 0) {
    std::move(l2, h2, out);
    return;
  }
  It m1 = l1 + n1 / 2;
  It m2 = std::lower_bound(l2, h2, *m1, cmp);
  OutIt outMid = out + (m1 - l1) + (m2 - l2);
  par_do([&] { par_merge(l1, m1, l2, m2, out, cmp); },
         [&] { par_merge(m1, h1, m2, h2, outMid, cmp); });
}

// Sorts [lo,hi); result lands in [lo,hi) when inplace, else in buf.
template <class It, class BufIt, class Cmp>
void merge_sort_rec(It lo, It hi, BufIt buf, bool toBuf, Cmp cmp) {
  const std::size_t n = hi - lo;
  if (n <= kSortGrain) {
    std::stable_sort(lo, hi, cmp);
    if (toBuf) std::move(lo, hi, buf);
    return;
  }
  It mid = lo + n / 2;
  BufIt bufMid = buf + n / 2;
  par_do([&] { merge_sort_rec(lo, mid, buf, !toBuf, cmp); },
         [&] { merge_sort_rec(mid, hi, bufMid, !toBuf, cmp); });
  if (toBuf) {
    par_merge(lo, mid, mid, hi, buf, cmp);
  } else {
    par_merge(buf, bufMid, bufMid, buf + n, lo, cmp);
  }
}

}  // namespace detail

/// Parallel stable sort of [lo, hi) with comparator cmp.
template <class It, class Cmp>
void sort(It lo, It hi, Cmp cmp) {
  using T = typename std::iterator_traits<It>::value_type;
  const std::size_t n = hi - lo;
  if (n <= detail::kSortGrain || num_workers() == 1) {
    std::stable_sort(lo, hi, cmp);
    return;
  }
  std::vector<T> buf(n);
  detail::merge_sort_rec(lo, hi, buf.begin(), false, cmp);
}

template <class It>
void sort(It lo, It hi) {
  pargeo::par::sort(
      lo, hi, std::less<typename std::iterator_traits<It>::value_type>{});
}

template <class T, class Cmp>
void sort(std::vector<T>& v, Cmp cmp) {
  pargeo::par::sort(v.begin(), v.end(), cmp);
}

template <class T>
void sort(std::vector<T>& v) {
  pargeo::par::sort(v.begin(), v.end());
}

}  // namespace pargeo::par
