// BDL-tree: parallel batch-dynamic kd-tree via the logarithmic method
// (paper §5). A buffer holding up to X points plus a forest of static
// vEB-layout kd-trees with capacities X*2^i.
//
// Batch insertion follows the bitmask cascade of Figure 7 / Algorithm 3:
// F_new = F + floor(|P|/X); trees set in F but not F_new are destroyed and
// their points, together with the batch, build the trees set in F_new but
// not F. Batch deletion (Algorithm 4) erases from every tree and rebuilds
// any tree that drops below half of its build size by reinserting its
// points. k-NN queries share one k-NN buffer per query point across all
// trees and the buffer (Appendix C.4).
//
// *Snapshots (chunk-level COW).* The forest's unit of immutability is the
// static vEB tree: insertion never mutates an existing tree (the cascade
// destroys whole trees and builds fresh ones), and deletion — the one
// historically in-place operation — now copies any tree that is shared
// with a snapshot before erasing from the copy (`use_count() == 1` keeps
// the un-shared fast path in place). Trees therefore live behind
// shared_ptr, and `view()` publishes an isolated `bdl_forest_view`: a copy
// of the (bounded, <= X points) staging buffer plus shared references to
// every live tree. The view answers queries exactly as of its creation no
// matter what the live forest does afterwards.
//
// Superseded trees are handed to an optional *retire hook*
// (`set_retire_hook`) instead of being destroyed inline — the query
// service points this at its epoch reclaimer (src/query/epoch_reclaim.h)
// so old chunks die at drain-boundary reclaim points, not under a reader.
// Without a hook the shared_ptr refcount frees them as usual.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "bdltree/veb_tree.h"

namespace pargeo::bdltree {

namespace detail {

// Shared query kernels over (staging buffer, tree list) — used by the live
// bdl_tree and by isolated bdl_forest_view snapshots alike. TreeList is any
// range of shared_ptr-like handles to (possibly const) veb_tree<D>.
template <int D, typename TreeList>
std::vector<std::vector<point<D>>> forest_knn(
    const std::vector<point<D>>& buffer, const TreeList& trees,
    std::size_t total, const std::vector<point<D>>& queries, std::size_t k) {
  std::vector<std::vector<point<D>>> out(queries.size());
  const std::size_t kk = std::min(k, total);
  if (kk == 0) return out;  // knn_buffer does not support k = 0
  par::parallel_for(
      0, queries.size(),
      [&](std::size_t qi) {
        kdtree::knn_buffer buf(kk);
        for (const auto& t : trees) {
          if (t) t->knn(queries[qi], buf);
        }
        for (const auto& p : buffer) {
          buf.insert(p.dist_sq(queries[qi]),
                     reinterpret_cast<std::size_t>(&p));
        }
        auto entries = buf.finish();
        out[qi].reserve(entries.size());
        for (const auto& e : entries) {
          out[qi].push_back(veb_tree<D>::decode_id(e.id));
        }
      },
      16);
  return out;
}

template <int D, typename TreeList>
std::vector<std::vector<point<D>>> forest_range_ball(
    const std::vector<point<D>>& buffer, const TreeList& trees,
    const std::vector<point<D>>& centers, const std::vector<double>& radii) {
  std::vector<std::vector<point<D>>> out(centers.size());
  par::parallel_for(
      0, centers.size(),
      [&](std::size_t qi) {
        const double r_sq = radii[qi] * radii[qi];
        for (const auto& t : trees) {
          if (t) t->range_ball(centers[qi], radii[qi], out[qi]);
        }
        for (const auto& p : buffer) {
          if (p.dist_sq(centers[qi]) <= r_sq) out[qi].push_back(p);
        }
      },
      16);
  return out;
}

template <int D, typename TreeList>
std::vector<std::vector<point<D>>> forest_range_box(
    const std::vector<point<D>>& buffer, const TreeList& trees,
    const std::vector<aabb<D>>& queries) {
  std::vector<std::vector<point<D>>> out(queries.size());
  par::parallel_for(
      0, queries.size(),
      [&](std::size_t qi) {
        for (const auto& t : trees) {
          if (t) t->range_box(queries[qi], out[qi]);
        }
        for (const auto& p : buffer) {
          if (queries[qi].contains(p)) out[qi].push_back(p);
        }
      },
      16);
  return out;
}

}  // namespace detail

/// Isolated snapshot of a bdl_tree: an owned copy of the staging buffer
/// plus shared, immutable-by-contract references to the forest's trees.
/// Exact as of creation regardless of later writes to the live tree.
template <int D>
struct bdl_forest_view {
  std::vector<point<D>> buffer;
  std::vector<std::shared_ptr<const veb_tree<D>>> trees;

  std::size_t size() const {
    std::size_t s = buffer.size();
    for (const auto& t : trees) {
      if (t) s += t->size();
    }
    return s;
  }

  std::vector<std::vector<point<D>>> knn(const std::vector<point<D>>& queries,
                                         std::size_t k) const {
    return detail::forest_knn<D>(buffer, trees, size(), queries, k);
  }

  std::vector<std::vector<point<D>>> range_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const {
    return detail::forest_range_ball<D>(buffer, trees, centers, radii);
  }

  std::vector<std::vector<point<D>>> range_box(
      const std::vector<aabb<D>>& queries) const {
    return detail::forest_range_box<D>(buffer, trees, queries);
  }
};

template <int D>
class bdl_tree {
 public:
  static constexpr std::size_t kDefaultBufferSize = 1024;

  /// Receives every superseded tree (destroyed by the insert cascade,
  /// replaced by a COW erase, or gathered below half capacity). Must be
  /// thread-safe: the erase loop retires from parallel workers.
  using retire_fn = std::function<void(std::shared_ptr<const void>)>;

  explicit bdl_tree(split_policy policy = split_policy::object_median,
                    std::size_t buffer_size = kDefaultBufferSize)
      : policy_(policy), x_(std::max<std::size_t>(1, buffer_size)) {}

  void set_retire_hook(retire_fn f) { retire_ = std::move(f); }

  std::size_t size() const {
    std::size_t s = buffer_.size();
    for (const auto& t : trees_) {
      if (t) s += t->size();
    }
    return s;
  }

  std::size_t num_static_trees() const {
    std::size_t c = 0;
    for (const auto& t : trees_) {
      if (t && !t->empty()) ++c;
    }
    return c;
  }

  /// Publishes an isolated snapshot: O(X) buffer copy + one shared_ptr
  /// per live tree. Must not run concurrently with insert/erase (the
  /// query_service serializes both on the shard's lane).
  bdl_forest_view<D> view() const {
    bdl_forest_view<D> v;
    v.buffer = buffer_;
    v.trees.assign(trees_.begin(), trees_.end());
    return v;
  }

  /// Batch insertion (paper Algorithm 3). Never mutates an existing tree:
  /// the cascade retires whole trees and builds fresh ones, so snapshots
  /// holding the old trees stay exact.
  void insert(const std::vector<point<D>>& batch) {
    if (batch.empty()) return;
    // Stage |P| mod X points into the buffer first; overflow promotes the
    // whole buffer into the rebuild pool.
    std::vector<point<D>> pool;
    pool.reserve(batch.size() + buffer_.size());
    pool.insert(pool.end(), batch.begin(), batch.end());
    pool.insert(pool.end(), buffer_.begin(), buffer_.end());
    buffer_.clear();
    const std::size_t keep = pool.size() % x_;
    buffer_.assign(pool.end() - keep, pool.end());
    pool.resize(pool.size() - keep);
    if (pool.empty()) return;

    const uint64_t add = pool.size() / x_;
    const uint64_t f = full_mask();
    const uint64_t fnew = f + add;
    const uint64_t destroy = f & ~fnew;
    const uint64_t create = fnew & ~f;

    // Gather points of destroyed trees into the pool, retiring the trees.
    for (int i = 0; i < 64; ++i) {
      if ((destroy >> i) & 1) {
        auto pts = trees_[i]->gather();
        pool.insert(pool.end(), pts.begin(), pts.end());
        retire_tree(std::move(trees_[i]));
      }
    }
    // Build the new trees in parallel over contiguous pool slices, largest
    // first so slice sizes match capacities X*2^i as closely as possible.
    std::vector<int> slots;
    for (int i = 63; i >= 0; --i) {
      if ((create >> i) & 1) slots.push_back(i);
    }
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    std::size_t off = 0;
    for (const int slot : slots) {
      const std::size_t cap = x_ << slot;
      const std::size_t take = std::min(cap, pool.size() - off);
      ranges.emplace_back(off, off + take);
      off += take;
    }
    // Any residue (possible when destroyed trees were not full) goes into
    // the last created tree.
    if (off < pool.size() && !ranges.empty()) {
      ranges.back().second = pool.size();
    }
    if (static_cast<std::size_t>(trees_.size()) < 64) trees_.resize(64);
    par::parallel_for(
        0, slots.size(),
        [&](std::size_t i) {
          std::vector<point<D>> slice(pool.begin() + ranges[i].first,
                                      pool.begin() + ranges[i].second);
          trees_[slots[i]] =
              std::make_shared<veb_tree<D>>(std::move(slice), policy_);
        },
        1);
  }

  /// Batch deletion (paper Algorithm 4). Points not present are ignored.
  /// A tree shared with a snapshot is copied before the erase touches it
  /// (chunk-level COW); an exclusively-owned tree erases in place.
  void erase(const std::vector<point<D>>& batch) {
    if (batch.empty()) return;
    // Erase from the buffer.
    for (const auto& q : batch) {
      for (std::size_t i = 0; i < buffer_.size(); ++i) {
        if (buffer_[i] == q) {
          buffer_[i] = buffer_.back();
          buffer_.pop_back();
          break;
        }
      }
    }
    // Erase from every non-empty tree in parallel.
    std::vector<int> occupied;
    for (int i = 0; i < static_cast<int>(trees_.size()); ++i) {
      if (trees_[i] && !trees_[i]->empty()) occupied.push_back(i);
    }
    par::parallel_for(
        0, occupied.size(),
        [&](std::size_t i) {
          auto& slot = trees_[occupied[i]];
          // use_count == 1: only the live forest holds this tree — no
          // snapshot can appear mid-erase (view() and writes are
          // serialized by the caller), so mutate in place.
          if (slot.use_count() == 1) {
            slot->erase(batch);
            return;
          }
          auto copy = std::make_shared<veb_tree<D>>(*slot);
          if (copy->erase(batch) == 0) return;  // untouched: keep original
          auto old = std::move(slot);
          slot = std::move(copy);
          retire_tree(std::move(old));
        },
        1);
    // Gather trees that fell below half their build capacity; reinsert.
    std::vector<point<D>> reinsert;
    for (const int i : occupied) {
      const std::size_t cap = x_ << i;
      if (trees_[i]->size() < (cap + 1) / 2) {
        auto pts = trees_[i]->gather();
        reinsert.insert(reinsert.end(), pts.begin(), pts.end());
        retire_tree(std::move(trees_[i]));
      }
    }
    if (!reinsert.empty()) insert(reinsert);
  }

  /// Data-parallel k-NN: row i holds the k nearest stored points to
  /// queries[i], sorted by distance.
  std::vector<std::vector<point<D>>> knn(
      const std::vector<point<D>>& queries, std::size_t k) const {
    return detail::forest_knn<D>(buffer_, trees_, size(), queries, k);
  }

  /// Data-parallel range search: row i holds every stored point within
  /// `radius` of queries[i] (unordered).
  std::vector<std::vector<point<D>>> range_ball(
      const std::vector<point<D>>& queries, double radius) const {
    std::vector<double> radii(queries.size(), radius);
    return detail::forest_range_ball<D>(buffer_, trees_, queries, radii);
  }

  /// Per-query-radius variant: row i holds every stored point within
  /// radii[i] of centers[i] (unordered).
  std::vector<std::vector<point<D>>> range_ball(
      const std::vector<point<D>>& centers,
      const std::vector<double>& radii) const {
    return detail::forest_range_ball<D>(buffer_, trees_, centers, radii);
  }

  /// Data-parallel orthogonal range search: row i holds every stored point
  /// inside queries[i] (unordered).
  std::vector<std::vector<point<D>>> range_box(
      const std::vector<aabb<D>>& queries) const {
    return detail::forest_range_box<D>(buffer_, trees_, queries);
  }

  /// All stored points (buffer + every tree).
  std::vector<point<D>> gather() const {
    std::vector<point<D>> out(buffer_);
    for (const auto& t : trees_) {
      if (t) {
        auto pts = t->gather();
        out.insert(out.end(), pts.begin(), pts.end());
      }
    }
    return out;
  }

  std::size_t buffer_capacity() const { return x_; }

 private:
  uint64_t full_mask() const {
    uint64_t f = 0;
    for (std::size_t i = 0; i < trees_.size(); ++i) {
      if (trees_[i] && !trees_[i]->empty()) f |= uint64_t{1} << i;
    }
    return f;
  }

  // Superseded tree: hand to the retire hook (epoch reclaimer) when one is
  // attached, else let the refcount free it.
  void retire_tree(std::shared_ptr<veb_tree<D>> t) {
    if (!t) return;
    if (retire_) {
      retire_(std::shared_ptr<const void>(std::move(t)));
    }
  }

  split_policy policy_;
  std::size_t x_;
  std::vector<point<D>> buffer_;
  std::vector<std::shared_ptr<veb_tree<D>>> trees_;
  retire_fn retire_;
};

}  // namespace pargeo::bdltree
