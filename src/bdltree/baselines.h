// The two baseline dynamic trees of the paper's §6.3 BDL evaluation.
//
//   B1 — rebuild-on-update: one perfectly balanced vEB kd-tree, fully
//        rebuilt on every batch insertion or deletion. Best queries,
//        worst updates.
//   B2 — in-place updates: a pointer-based kd-tree whose leaves carry
//        growable buffers. Inserts descend the existing splits and append
//        (splitting only overfull leaves locally, never recalculating
//        upper splits); deletes tombstone. Fastest updates, but the tree
//        skews when built incrementally, degrading k-NN (paper Fig. 14).
#pragma once

#include <memory>
#include <vector>

#include "bdltree/veb_tree.h"

namespace pargeo::bdltree {

template <int D>
class b1_tree {
 public:
  explicit b1_tree(split_policy policy = split_policy::object_median)
      : policy_(policy) {}

  std::size_t size() const { return points_.size(); }

  void insert(const std::vector<point<D>>& batch) {
    points_.insert(points_.end(), batch.begin(), batch.end());
    rebuild();
  }

  void erase(const std::vector<point<D>>& batch) {
    for (const auto& q : batch) {
      for (std::size_t i = 0; i < points_.size(); ++i) {
        if (points_[i] == q) {
          points_[i] = points_.back();
          points_.pop_back();
          break;
        }
      }
    }
    rebuild();
  }

  std::vector<std::vector<point<D>>> knn(
      const std::vector<point<D>>& queries, std::size_t k) const {
    std::vector<std::vector<point<D>>> out(queries.size());
    if (!tree_) return out;
    const std::size_t kk = std::min(k, size());
    par::parallel_for(
        0, queries.size(),
        [&](std::size_t qi) {
          kdtree::knn_buffer buf(kk);
          tree_->knn(queries[qi], buf);
          auto entries = buf.finish();
          out[qi].reserve(entries.size());
          for (const auto& e : entries) {
            out[qi].push_back(veb_tree<D>::decode_id(e.id));
          }
        },
        16);
    return out;
  }

  std::vector<point<D>> gather() const { return points_; }

 private:
  void rebuild() {
    tree_ = points_.empty()
                ? nullptr
                : std::make_unique<veb_tree<D>>(points_, policy_);
  }

  split_policy policy_;
  std::vector<point<D>> points_;
  std::unique_ptr<veb_tree<D>> tree_;
};

template <int D>
class b2_tree {
 public:
  static constexpr std::size_t kLeafCapacity = 32;

  explicit b2_tree(split_policy policy = split_policy::object_median)
      : policy_(policy) {}

  std::size_t size() const { return size_; }

  void insert(const std::vector<point<D>>& batch) {
    if (batch.empty()) return;
    size_ += batch.size();
    if (!root_) {
      root_ = build(batch, 0);
      return;
    }
    insert_rec(root_.get(), batch);
  }

  void erase(const std::vector<point<D>>& batch) {
    for (const auto& q : batch) {
      if (erase_one(root_.get(), q)) --size_;
    }
  }

  std::vector<std::vector<point<D>>> knn(
      const std::vector<point<D>>& queries, std::size_t k) const {
    std::vector<std::vector<point<D>>> out(queries.size());
    if (!root_) return out;
    const std::size_t kk = std::min(k, size_);
    par::parallel_for(
        0, queries.size(),
        [&](std::size_t qi) {
          kdtree::knn_buffer buf(kk);
          knn_rec(root_.get(), queries[qi], buf);
          auto entries = buf.finish();
          out[qi].reserve(entries.size());
          for (const auto& e : entries) {
            out[qi].push_back(
                *reinterpret_cast<const point<D>*>(e.id));
          }
        },
        16);
    return out;
  }

  std::vector<point<D>> gather() const {
    std::vector<point<D>> out;
    gather_rec(root_.get(), out);
    return out;
  }

 private:
  struct node {
    aabb<D> box;
    int split_dim = -1;
    double split_val = 0;
    std::unique_ptr<node> left, right;
    // Leaf storage: a growable buffer (the paper's per-leaf memory
    // buffer); `alive` flags implement tombstoning.
    std::vector<point<D>> pts;
    std::vector<uint8_t> alive;
    std::size_t live = 0;
  };

  std::unique_ptr<node> build(const std::vector<point<D>>& pts, int dim) {
    auto nd = std::make_unique<node>();
    for (const auto& p : pts) nd->box.extend(p);
    if (pts.size() <= kLeafCapacity) {
      nd->pts = pts;
      nd->alive.assign(pts.size(), 1);
      nd->live = pts.size();
      return nd;
    }
    std::vector<point<D>> sorted(pts);
    auto midIt = sorted.begin() + sorted.size() / 2;
    std::nth_element(sorted.begin(), midIt, sorted.end(),
                     [dim](const point<D>& a, const point<D>& b) {
                       return a[dim] < b[dim];
                     });
    nd->split_dim = dim;
    nd->split_val = (*midIt)[dim];
    std::vector<point<D>> l(sorted.begin(), midIt);
    std::vector<point<D>> r(midIt, sorted.end());
    nd->split_dim = dim;
    nd->left = build(l, (dim + 1) % D);
    nd->right = build(r, (dim + 1) % D);
    nd->live = nd->left->live + nd->right->live;
    return nd;
  }

  void insert_rec(node* nd, const std::vector<point<D>>& batch) {
    for (const auto& p : batch) nd->box.extend(p);
    nd->live += batch.size();
    if (nd->split_dim < 0) {
      for (const auto& p : batch) {
        nd->pts.push_back(p);
        nd->alive.push_back(1);
      }
      // Local split when the leaf buffer overflows; upper splits are never
      // recalculated, so the tree may skew.
      if (nd->pts.size() > 4 * kLeafCapacity) split_leaf(nd);
      return;
    }
    std::vector<point<D>> l, r;
    for (const auto& p : batch) {
      (p[nd->split_dim] < nd->split_val ? l : r).push_back(p);
    }
    if (!l.empty()) insert_rec(nd->left.get(), l);
    if (!r.empty()) insert_rec(nd->right.get(), r);
  }

  void split_leaf(node* nd) {
    std::vector<point<D>> livePts;
    livePts.reserve(nd->pts.size());
    for (std::size_t i = 0; i < nd->pts.size(); ++i) {
      if (nd->alive[i]) livePts.push_back(nd->pts[i]);
    }
    const int dim = nd->box.widest_dim();
    auto midIt = livePts.begin() + livePts.size() / 2;
    std::nth_element(livePts.begin(), midIt, livePts.end(),
                     [dim](const point<D>& a, const point<D>& b) {
                       return a[dim] < b[dim];
                     });
    const double sv = (*midIt)[dim];
    std::vector<point<D>> l(livePts.begin(), midIt);
    std::vector<point<D>> r(midIt, livePts.end());
    // Degenerate split (e.g. all points identical): keep an oversized leaf.
    if (l.empty() || r.empty()) return;
    nd->split_dim = dim;
    nd->split_val = sv;
    nd->left = build(l, (dim + 1) % D);
    nd->right = build(r, (dim + 1) % D);
    nd->pts.clear();
    nd->alive.clear();
    nd->live = nd->left->live + nd->right->live;
  }

  bool erase_one(node* nd, const point<D>& q) {
    if (nd == nullptr || nd->live == 0 || !nd->box.contains(q)) {
      return false;
    }
    if (nd->split_dim < 0) {
      for (std::size_t i = 0; i < nd->pts.size(); ++i) {
        if (nd->alive[i] && nd->pts[i] == q) {
          nd->alive[i] = 0;
          --nd->live;
          return true;
        }
      }
      return false;
    }
    // Split-value duplicates may sit on either side: try both.
    node* first = q[nd->split_dim] < nd->split_val ? nd->left.get()
                                                   : nd->right.get();
    node* second = first == nd->left.get() ? nd->right.get()
                                           : nd->left.get();
    if (erase_one(first, q) || erase_one(second, q)) {
      --nd->live;
      return true;
    }
    return false;
  }

  void knn_rec(const node* nd, const point<D>& q,
               kdtree::knn_buffer& buf) const {
    if (nd == nullptr || nd->live == 0) return;
    if (nd->split_dim < 0) {
      for (std::size_t i = 0; i < nd->pts.size(); ++i) {
        if (!nd->alive[i]) continue;
        const double d = nd->pts[i].dist_sq(q);
        if (d < buf.bound()) {
          buf.insert(d, reinterpret_cast<std::size_t>(&nd->pts[i]));
        }
      }
      return;
    }
    const node* near = nd->left.get();
    const node* far = nd->right.get();
    if (q[nd->split_dim] >= nd->split_val) std::swap(near, far);
    if (near->box.dist_sq(q) < buf.bound()) knn_rec(near, q, buf);
    if (far->box.dist_sq(q) < buf.bound()) knn_rec(far, q, buf);
  }

  void gather_rec(const node* nd, std::vector<point<D>>& out) const {
    if (nd == nullptr) return;
    if (nd->split_dim < 0) {
      for (std::size_t i = 0; i < nd->pts.size(); ++i) {
        if (nd->alive[i]) out.push_back(nd->pts[i]);
      }
      return;
    }
    gather_rec(nd->left.get(), out);
    gather_rec(nd->right.get(), out);
  }

  split_policy policy_;
  std::unique_ptr<node> root_;
  std::size_t size_ = 0;
};

}  // namespace pargeo::bdltree
