// Anchor translation unit; pins common instantiations of the BDL-tree and
// its baselines.
#include "bdltree/baselines.h"
#include "bdltree/bdl_tree.h"
#include "bdltree/veb_tree.h"

namespace pargeo::bdltree {
template class veb_tree<2>;
template class veb_tree<5>;
template class veb_tree<7>;
template class bdl_tree<2>;
template class bdl_tree<5>;
template class bdl_tree<7>;
template class b1_tree<7>;
template class b2_tree<7>;
}  // namespace pargeo::bdltree
