// Static kd-tree in van Emde Boas (cache-oblivious) layout — the building
// block of the BDL-tree (paper §5, Appendix C.1, Algorithm 1).
//
// Nodes live in one contiguous array ordered by the vEB recursion: the top
// half of the levels is laid out first, followed by the bottom subtrees
// left to right, recursively. Points are owned by the tree in a permuted
// buffer; leaves reference contiguous ranges. Deletion tombstones points
// and maintains live counts so empty subtrees are skipped (the array
// analogue of Algorithm 2's NULL-collapse).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/aabb.h"
#include "core/point.h"
#include "kdtree/knn_buffer.h"
#include "parallel/parallel.h"

namespace pargeo::bdltree {

enum class split_policy { object_median, spatial_median };

template <int D>
class veb_tree {
 public:
  static constexpr std::size_t kLeafSize = 16;

  struct node {
    aabb<D> box;
    std::size_t lo = 0, hi = 0;  // point range
    std::size_t live = 0;        // non-tombstoned points below
    double split_val = 0;
    int split_dim = -1;          // -1 for leaves
    std::size_t mid = 0;         // first index of the right child's range
  };

  veb_tree(std::vector<point<D>> pts, split_policy policy)
      : points_(std::move(pts)), policy_(policy) {
    const std::size_t n = points_.size();
    alive_.assign(n, 1);
    live_ = n;
    if (n == 0) return;
    const std::size_t nLeaves =
        std::max<std::size_t>(1, (n + kLeafSize - 1) / kLeafSize);
    levels_ = 1 + static_cast<int>(std::ceil(std::log2(
                      static_cast<double>(nLeaves))));
    nodes_.assign((std::size_t{1} << levels_) - 1, node{});
    build_rec(0, 0, n, 0, levels_, /*top=*/false);
    recompute_boxes(0, levels_);
  }

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  int levels() const { return levels_; }
  const node& node_at(std::size_t i) const { return nodes_[i]; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// All live points, in storage order.
  std::vector<point<D>> gather() const {
    std::vector<point<D>> out;
    out.reserve(live_);
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (alive_[i]) out.push_back(points_[i]);
    }
    return out;
  }

  /// Tombstones every stored point equal to a member of `batch` (each
  /// batch entry deletes at most one copy). Returns #deleted.
  std::size_t erase(const std::vector<point<D>>& batch) {
    if (points_.empty() || batch.empty()) return 0;
    std::vector<point<D>> q(batch);
    const std::size_t removed = erase_rec(0, levels_, q, 0, q.size());
    live_ -= removed;
    return removed;
  }

  /// Accumulates the k nearest live points to `q` into `buf`. Entry ids
  /// are the point addresses reinterpreted as size_t (stable for the
  /// tree's lifetime), so one buffer can be shared across trees and
  /// decoded with decode_id.
  void knn(const point<D>& q, kdtree::knn_buffer& buf) const {
    if (live_ == 0) return;
    knn_rec(0, q, buf);
  }

  static const point<D>& decode_id(std::size_t id) {
    return *reinterpret_cast<const point<D>*>(id);
  }

  /// Appends all live points within `radius` of `center` to `out`.
  void range_ball(const point<D>& center, double radius,
                  std::vector<point<D>>& out) const {
    if (live_ == 0) return;
    range_rec(0, center, radius * radius, out);
  }

  /// Appends all live points inside `query_box` to `out`.
  void range_box(const aabb<D>& query_box, std::vector<point<D>>& out) const {
    if (live_ == 0) return;
    range_box_rec(0, query_box, out);
  }

  /// The point stored at slot i (used with knn buffer ids).
  const point<D>& point_at(std::size_t i) const { return points_[i]; }

 private:
  // --- construction (paper Algorithm 1) --------------------------------

  static int hyperceil(int x) {
    int p = 1;
    while (p < x) p <<= 1;
    return p;
  }

  // Builds an l-level subtree rooted at node index `idx` over points
  // [lo, hi). In top mode every level is internal (leaf level partitions
  // its range for the bottom subtrees); in bottom mode the last level
  // stores leaves. Returns the frontier child ranges in left-to-right
  // order (top mode), empty otherwise.
  std::vector<std::pair<std::size_t, std::size_t>> build_rec(
      std::size_t idx, std::size_t lo, std::size_t hi, int dim, int l,
      bool top) {
    if (l == 1) {
      node& nd = nodes_[idx];
      nd.lo = lo;
      nd.hi = hi;
      nd.live = hi - lo;
      if (!top) {
        nd.split_dim = -1;  // leaf (holds its whole range)
        return {};
      }
      const std::size_t mid = partition_median(lo, hi, dim, &nd.split_val);
      nd.split_dim = dim;
      nd.mid = mid;
      return {{lo, mid}, {mid, hi}};
    }
    const int lb = hyperceil((l + 1) / 2);
    const int lt = l - lb;
    auto ranges = build_rec(idx, lo, hi, dim, lt, /*top=*/true);
    const std::size_t nSub = std::size_t{1} << lt;
    const std::size_t subSize = (std::size_t{1} << lb) - 1;
    const std::size_t base = idx + nSub - 1;
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> sub(nSub);
    par::parallel_for(
        0, nSub,
        [&](std::size_t i) {
          sub[i] = build_rec(base + i * subSize, ranges[i].first,
                             ranges[i].second, (dim + lt) % D, lb, top);
        },
        1);
    if (!top) return {};
    std::vector<std::pair<std::size_t, std::size_t>> frontier;
    frontier.reserve(nSub * 2);
    for (auto& s : sub) {
      frontier.insert(frontier.end(), s.begin(), s.end());
    }
    return frontier;
  }

  // Splits [lo, hi) along `dim` (object median or spatial median with an
  // object-median fallback) and returns the split position.
  std::size_t partition_median(std::size_t lo, std::size_t hi, int dim,
                               double* split_val) {
    const std::size_t n = hi - lo;
    if (n <= 1) {
      *split_val = n == 1 ? points_[lo][dim] : 0.0;
      return hi;
    }
    auto cmp = [dim](const point<D>& a, const point<D>& b) {
      return a[dim] < b[dim];
    };
    if (policy_ == split_policy::spatial_median) {
      double mn = points_[lo][dim], mx = mn;
      for (std::size_t i = lo; i < hi; ++i) {
        mn = std::min(mn, points_[i][dim]);
        mx = std::max(mx, points_[i][dim]);
      }
      const double pivot = 0.5 * (mn + mx);
      auto it = std::partition(
          points_.begin() + lo, points_.begin() + hi,
          [&](const point<D>& p) { return p[dim] < pivot; });
      const std::size_t mid = it - points_.begin();
      if (mid != lo && mid != hi) {
        *split_val = pivot;
        return mid;
      }
      // Degenerate cut: fall through to the object median.
    }
    auto midIt = points_.begin() + lo + n / 2;
    std::nth_element(points_.begin() + lo, midIt, points_.begin() + hi, cmp);
    *split_val = (*midIt)[dim];
    return lo + n / 2;
  }

  // Post-build pass computing exact bounding boxes bottom-up (vEB index
  // order is not level order, so recurse structurally).
  aabb<D> recompute_boxes(std::size_t idx, int l) {
    node& nd = nodes_[idx];
    if (nd.split_dim < 0) {
      aabb<D> b;
      for (std::size_t i = nd.lo; i < nd.hi; ++i) b.extend(points_[i]);
      nd.box = b;
      return b;
    }
    auto [li, ll] = left_child(idx);
    auto [ri, rl] = right_child(idx);
    aabb<D> b = recompute_boxes(li, ll);
    b.extend(recompute_boxes(ri, rl));
    nd.box = b;
    return b;
  }

  // --- vEB child index arithmetic --------------------------------------
  //
  // Child lookup must replay the layout recursion. We precompute nothing:
  // the recursion depth is O(log log n) per step, cheap relative to the
  // geometry work at each node. `l` is the number of levels in the
  // subtree rooted at the queried node's *position* in the recursion; the
  // public entry is (idx=0, l=levels_).
  //
  // Within a subtree of l levels laid out at base index b, the top half
  // has lt levels; a node at depth < lt of the top half keeps its
  // relative position; crossing into the bottom half selects subtree
  // rank r, at base b + (2^lt - 1) + r * (2^lb - 1).

  std::pair<std::size_t, int> left_child(std::size_t idx) const {
    return child_in(0, idx, levels_, false);
  }
  std::pair<std::size_t, int> right_child(std::size_t idx) const {
    return child_in(0, idx, levels_, true);
  }

  // Computes the array index of the left/right child of the node at
  // relative index `rel` within a subtree of `l` levels at array base
  // `base`. Returns {absolute child index, levels of the child subtree}.
  std::pair<std::size_t, int> child_in(std::size_t base, std::size_t rel,
                                       int l, bool right) const {
    if (l == 1) {
      // Child lives outside this subtree — handled by caller recursion.
      return {SIZE_MAX, 0};
    }
    const int lb = hyperceil((l + 1) / 2);
    const int lt = l - lb;
    const std::size_t topSize = (std::size_t{1} << lt) - 1;
    const std::size_t subSize = (std::size_t{1} << lb) - 1;
    if (rel < topSize) {
      // Node is in the top half (a subtree of lt levels at the same base).
      if (lt == 1) {
        // Node is the root of the top half and its children are bottom
        // subtree roots 0 (left) and 1 (right).
        return {base + topSize + (right ? subSize : 0),
                lb};
      }
      auto r = child_in(base, rel, lt, right);
      if (r.first != SIZE_MAX) return r;
      // Child crosses from the top half into the bottom half: the node is
      // a leaf of the top half; its leaf rank determines the subtree.
      const std::size_t leafRank = leaf_rank(base, rel, lt);
      const std::size_t subtree = leafRank * 2 + (right ? 1 : 0);
      return {base + topSize + subtree * subSize, lb};
    }
    // Node is in the bottom half: find its subtree and recurse.
    const std::size_t off = rel - topSize;
    const std::size_t subtree = off / subSize;
    const std::size_t subRel = off % subSize;
    auto r = child_in(base + topSize + subtree * subSize, subRel, lb, right);
    return r;
  }

  // Rank (left-to-right) of a node among the leaves of the subtree of `l`
  // levels at `base`, given its relative index; the node must be at the
  // subtree's last level.
  std::size_t leaf_rank(std::size_t base, std::size_t rel, int l) const {
    if (l == 1) return 0;
    const int lb = hyperceil((l + 1) / 2);
    const int lt = l - lb;
    const std::size_t topSize = (std::size_t{1} << lt) - 1;
    const std::size_t subSize = (std::size_t{1} << lb) - 1;
    const std::size_t leavesPerSub = std::size_t{1} << (lb - 1);
    // Last-level nodes are always in the bottom half.
    const std::size_t off = rel - topSize;
    const std::size_t subtree = off / subSize;
    const std::size_t subRel = off % subSize;
    return subtree * leavesPerSub +
           leaf_rank(base + topSize + subtree * subSize, subRel, lb);
  }

  // --- queries ----------------------------------------------------------

  void knn_rec(std::size_t idx, const point<D>& q,
               kdtree::knn_buffer& buf) const {
    const node& nd = nodes_[idx];
    if (nd.live == 0) return;
    if (nd.split_dim < 0) {
      for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (!alive_[i]) continue;
        const double d = points_[i].dist_sq(q);
        if (d < buf.bound()) {
          buf.insert(d, reinterpret_cast<std::size_t>(&points_[i]));
        }
      }
      return;
    }
    auto [li, ll] = left_child(idx);
    auto [ri, rl] = right_child(idx);
    (void)ll;
    (void)rl;
    std::size_t nearIdx = li, farIdx = ri;
    if (q[nd.split_dim] >= nd.split_val) std::swap(nearIdx, farIdx);
    if (nodes_[nearIdx].box.dist_sq(q) < buf.bound()) {
      knn_rec(nearIdx, q, buf);
    }
    if (nodes_[farIdx].box.dist_sq(q) < buf.bound()) {
      knn_rec(farIdx, q, buf);
    }
  }

  void range_rec(std::size_t idx, const point<D>& c, double r_sq,
                 std::vector<point<D>>& out) const {
    const node& nd = nodes_[idx];
    if (nd.live == 0 || nd.box.dist_sq(c) > r_sq) return;
    if (nd.split_dim < 0) {
      for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (alive_[i] && points_[i].dist_sq(c) <= r_sq) {
          out.push_back(points_[i]);
        }
      }
      return;
    }
    auto [li, ll] = left_child(idx);
    auto [ri, rl] = right_child(idx);
    (void)ll;
    (void)rl;
    range_rec(li, c, r_sq, out);
    range_rec(ri, c, r_sq, out);
  }

  void range_box_rec(std::size_t idx, const aabb<D>& qb,
                     std::vector<point<D>>& out) const {
    const node& nd = nodes_[idx];
    if (nd.live == 0 || !nd.box.intersects(qb)) return;
    if (nd.split_dim < 0) {
      for (std::size_t i = nd.lo; i < nd.hi; ++i) {
        if (alive_[i] && qb.contains(points_[i])) out.push_back(points_[i]);
      }
      return;
    }
    auto [li, ll] = left_child(idx);
    auto [ri, rl] = right_child(idx);
    (void)ll;
    (void)rl;
    range_box_rec(li, qb, out);
    range_box_rec(ri, qb, out);
  }

  // Batch erase per paper Algorithm 2: partition the query set around the
  // split and recurse; leaves do linear matching. Returns #deleted.
  std::size_t erase_rec(std::size_t idx, int l, std::vector<point<D>>& q,
                        std::size_t qlo, std::size_t qhi) {
    if (qlo >= qhi) return 0;
    node& nd = nodes_[idx];
    if (nd.live == 0) return 0;
    if (nd.split_dim < 0) {
      std::size_t removed = 0;
      for (std::size_t t = qlo; t < qhi; ++t) {
        for (std::size_t i = nd.lo; i < nd.hi; ++i) {
          if (alive_[i] && points_[i] == q[t]) {
            alive_[i] = 0;
            ++removed;
            break;
          }
        }
      }
      nd.live -= removed;
      return removed;
    }
    const int dim = nd.split_dim;
    const double sv = nd.split_val;
    // Median partitions may place split-value duplicates on either side,
    // so queries equal to the split descend both ways. (With duplicate
    // stored points this can remove more than one copy per query; see the
    // class comment.)
    std::vector<point<D>> ql, qr;
    ql.reserve(qhi - qlo);
    qr.reserve(qhi - qlo);
    for (std::size_t t = qlo; t < qhi; ++t) {
      if (q[t][dim] < sv) {
        ql.push_back(q[t]);
      } else if (q[t][dim] > sv) {
        qr.push_back(q[t]);
      } else {
        ql.push_back(q[t]);
        qr.push_back(q[t]);
      }
    }
    auto [li, ll] = left_child(idx);
    auto [ri, rl] = right_child(idx);
    const bool spawn = (qhi - qlo) > 4096;
    std::size_t remL = 0, remR = 0;
    auto doL = [&] { remL = erase_rec(li, ll, ql, 0, ql.size()); };
    auto doR = [&] { remR = erase_rec(ri, rl, qr, 0, qr.size()); };
    if (spawn) {
      par::par_do(doL, doR);
    } else {
      doL();
      doR();
    }
    const std::size_t removed = remL + remR;
    nd.live -= removed;
    return removed;
  }

  std::vector<point<D>> points_;
  std::vector<uint8_t> alive_;
  std::vector<node> nodes_;
  split_policy policy_;
  std::size_t live_ = 0;
  int levels_ = 0;
};

}  // namespace pargeo::bdltree
