// google-benchmark micro suite for kd-tree construction and queries.
#include <benchmark/benchmark.h>

#include "datagen/datagen.h"
#include "kdtree/kdtree.h"

using namespace pargeo;

static void BM_KdBuildObject2d(benchmark::State& state) {
  auto pts = datagen::uniform<2>(state.range(0), 1);
  for (auto _ : state) {
    kdtree::tree<2> t(pts, kdtree::split_policy::object_median);
    benchmark::DoNotOptimize(t.root());
  }
  state.SetItemsProcessed(state.iterations() * pts.size());
}
BENCHMARK(BM_KdBuildObject2d)->Arg(1 << 14)->Arg(1 << 17);

static void BM_KdBuildSpatial2d(benchmark::State& state) {
  auto pts = datagen::uniform<2>(state.range(0), 1);
  for (auto _ : state) {
    kdtree::tree<2> t(pts, kdtree::split_policy::spatial_median);
    benchmark::DoNotOptimize(t.root());
  }
  state.SetItemsProcessed(state.iterations() * pts.size());
}
BENCHMARK(BM_KdBuildSpatial2d)->Arg(1 << 14)->Arg(1 << 17);

static void BM_KdKnn(benchmark::State& state) {
  auto pts = datagen::uniform<2>(1 << 16, 1);
  kdtree::tree<2> t(pts);
  const std::size_t k = state.range(0);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.knn(pts[q++ % pts.size()], k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdKnn)->Arg(1)->Arg(5)->Arg(20);

static void BM_KdRangeBall(benchmark::State& state) {
  auto pts = datagen::uniform<2>(1 << 16, 1);
  kdtree::tree<2> t(pts);
  const double r = std::sqrt(static_cast<double>(pts.size())) *
                   (state.range(0) / 1000.0);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.range_ball(pts[q++ % pts.size()], r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdRangeBall)->Arg(10)->Arg(50)->Arg(200);

static void BM_KdKnn5d(benchmark::State& state) {
  auto pts = datagen::uniform<5>(1 << 15, 1);
  kdtree::tree<5> t(pts);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.knn(pts[q++ % pts.size()], 5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdKnn5d);

BENCHMARK_MAIN();
