// Reproduces paper Figure 10: smallest enclosing ball running times across
// the six methods and twelve datasets. `SeqBaseline` (sequential Welzl
// with move-to-front) stands in for CGAL. Also prints the sampling phase's
// scan fraction (paper §6.2 reports ~5% on average).
#include "bench_common.h"
#include "datagen/datagen.h"
#include "seb/seb.h"

using namespace pargeo;
using namespace pargeo::bench;

namespace {

template <int D>
void run_dataset(const std::string& name, const std::vector<point<D>>& pts) {
  print_row(name, "SeqBaseline",
            1e3 * time_op([&] { seb::welzl_seq<D>(pts); }));
  print_row(name, "Welzl", 1e3 * time_op([&] { seb::welzl<D>(pts); }));
  print_row(name, "WelzlMtf",
            1e3 * time_op([&] { seb::welzl_mtf<D>(pts); }));
  print_row(name, "WelzlMtfPivot",
            1e3 * time_op([&] { seb::welzl_mtf_pivot<D>(pts); }));
  print_row(name, "Scan",
            1e3 * time_op([&] { seb::orthant_scan<D>(pts); }));
  print_row(name, "Sampling",
            1e3 * time_op([&] { seb::sampling<D>(pts); }));
  std::printf("%-18s sampling phase scanned %.1f%% of the input\n",
              name.c_str(), 100.0 * seb::last_sampling_scan_fraction());
}

}  // namespace

int main() {
  const std::size_t n = base_n();
  const std::size_t big = large_n();
  print_header("Figure 10: smallest enclosing ball running times",
               "dataset            method                   time");
  run_dataset<2>("2D-IS-" + std::to_string(n), datagen::in_sphere<2>(n, 1));
  run_dataset<2>("2D-OS-" + std::to_string(n), datagen::on_sphere<2>(n, 2));
  run_dataset<3>("3D-IS-" + std::to_string(n), datagen::in_sphere<3>(n, 3));
  run_dataset<3>("3D-OS-" + std::to_string(n), datagen::on_sphere<3>(n, 4));
  run_dataset<2>("2D-U-" + std::to_string(n), datagen::uniform<2>(n, 5));
  run_dataset<2>("2D-OC-" + std::to_string(n), datagen::on_cube<2>(n, 6));
  run_dataset<3>("3D-U-" + std::to_string(n), datagen::uniform<3>(n, 7));
  run_dataset<3>("3D-OC-" + std::to_string(n), datagen::on_cube<3>(n, 8));
  run_dataset<3>("3D-Thai-proxy", datagen::synthetic_statue(n / 2, 9));
  run_dataset<3>("3D-Dragon-proxy", datagen::synthetic_statue(n / 3, 10));
  run_dataset<2>("2D-OS-" + std::to_string(big),
                 datagen::on_sphere<2>(big, 11));
  run_dataset<3>("3D-OS-" + std::to_string(big),
                 datagen::on_sphere<3>(big, 12));
  return 0;
}
