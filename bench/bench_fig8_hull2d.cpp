// Reproduces paper Figure 8: 2D convex hull running times across methods
// and datasets (2D-IS/OS/U/OC at the base size; OS/OC at the large size).
//
// `SeqBaseline` is our optimized sequential quickhull standing in for the
// paper's CGAL and Qhull bars (DESIGN.md substitutions).
#include "bench_common.h"
#include "datagen/datagen.h"
#include "hull/hull2d.h"

using namespace pargeo;
using namespace pargeo::bench;

namespace {

void run_dataset(const std::string& name, const std::vector<point<2>>& pts) {
  print_row(name, "SeqBaseline",
            1e3 * time_op([&] { hull2d::sequential_quickhull(pts); }));
  print_row(name, "RandInc", 1e3 * time_op([&] { hull2d::randinc(pts); }));
  print_row(name, "QuickHull",
            1e3 * time_op([&] { hull2d::quickhull(pts); }));
  print_row(name, "ResQuickHull",
            1e3 * time_op([&] { hull2d::reservation_quickhull(pts); }));
  print_row(name, "DivideConquer",
            1e3 * time_op([&] { hull2d::divide_conquer(pts); }));
}

}  // namespace

int main() {
  const std::size_t n = base_n();
  const std::size_t big = large_n();
  print_header("Figure 8: 2D convex hull running times",
               "dataset            method                   time");
  run_dataset("2D-IS-" + std::to_string(n), datagen::in_sphere<2>(n, 1));
  run_dataset("2D-OS-" + std::to_string(n), datagen::on_sphere<2>(n, 2));
  run_dataset("2D-U-" + std::to_string(n), datagen::uniform<2>(n, 3));
  run_dataset("2D-OC-" + std::to_string(n), datagen::on_cube<2>(n, 4));
  run_dataset("2D-OS-" + std::to_string(big),
              datagen::on_sphere<2>(big, 5));
  run_dataset("2D-OC-" + std::to_string(big), datagen::on_cube<2>(big, 6));
  return 0;
}
