// Reproduces paper Figure 12 / Appendix B: overhead of the reservation
// technique versus the sequential (no-reservation) quickhull, on one
// thread, for 3D-IS and 3D-IC data:
//   (a) number of conflict points touched
//   (b) number of visible facets touched
//   (c) single-thread running time
#include "bench_common.h"
#include "datagen/datagen.h"
#include "hull/hull3d.h"

using namespace pargeo;
using namespace pargeo::bench;

namespace {

void run_dataset(const std::string& name, const std::vector<point<3>>& pts) {
  scoped_threads st(1);  // the paper measures work, not parallel time
  hull3d::stats noRes, res;
  const double tNoRes =
      time_op([&] { hull3d::sequential_quickhull(pts, &noRes); });
  const double tRes =
      time_op([&] { hull3d::reservation_quickhull(pts, 8, &res); });
  std::printf("%-14s %-16s points=%10zu facets=%10zu time=%8.1f ms\n",
              name.c_str(), "no-reservation", noRes.points_touched,
              noRes.facets_touched, 1e3 * tNoRes);
  std::printf("%-14s %-16s points=%10zu facets=%10zu time=%8.1f ms\n",
              name.c_str(), "reservation", res.points_touched,
              res.facets_touched, 1e3 * tRes);
}

}  // namespace

int main() {
  const std::size_t n = base_n();
  print_header("Figure 12: reservation overhead (single thread)",
               "dataset / method / touched counts / time");
  run_dataset("3D-IS-" + std::to_string(n), datagen::in_sphere<3>(n, 1));
  run_dataset("3D-IC-" + std::to_string(n), datagen::in_cube<3>(n, 2));
  return 0;
}
