// Reproduces paper Figure 14 (Appendix D): k-NN throughput versus k
// (2..11) when the trees were built by a sequence of batch insertions
// (batches of 5%) instead of one bulk construction. B2's lack of
// rebalancing shows up as a large k-NN throughput loss; B1 is best; BDL
// is close behind.
#include "bdltree/baselines.h"
#include "bdltree/bdl_tree.h"
#include "bench_common.h"
#include "datagen/datagen.h"

using namespace pargeo;
using namespace pargeo::bench;
using namespace pargeo::bdltree;

namespace {

template <int D, class Tree>
void run_impl(const char* name, const std::vector<point<D>>& pts) {
  Tree t(split_policy::object_median);
  const std::size_t batch = std::max<std::size_t>(1, pts.size() / 20);
  for (std::size_t off = 0; off < pts.size(); off += batch) {
    std::vector<point<D>> chunk(
        pts.begin() + off,
        pts.begin() + std::min(pts.size(), off + batch));
    t.insert(chunk);
  }
  for (std::size_t k = 2; k <= 11; ++k) {
    const double s = time_op([&] { t.knn(pts, k); });
    std::printf("%-12s k=%-3zu %14.0f ops/s\n", name, k,
                static_cast<double>(pts.size()) / s);
  }
}

}  // namespace

int main() {
  const std::size_t n = base_n();
  print_header("Figure 14(a): k-NN vs k on 2D-V (incremental build)",
               "impl / k / throughput");
  auto v2 = datagen::visualvar<2>(n, 1);
  run_impl<2, b1_tree<2>>("B1-object", v2);
  run_impl<2, b2_tree<2>>("B2-object", v2);
  run_impl<2, bdl_tree<2>>("BDL-object", v2);

  print_header("Figure 14(b): k-NN vs k on 7D-U (incremental build)",
               "impl / k / throughput");
  auto u7 = datagen::uniform<7>(n, 2);
  run_impl<7, b1_tree<7>>("B1-object", u7);
  run_impl<7, b2_tree<7>>("B2-object", u7);
  run_impl<7, bdl_tree<7>>("BDL-object", u7);
  return 0;
}
