// Ablation benches for the hull design choices DESIGN.md calls out:
//   * divide-and-conquer block constant c (blocks = c * numProc)
//   * pseudohull recursion stop threshold
//   * reservation batch constant c (batch = c * numProc)
#include "bench_common.h"
#include "datagen/datagen.h"
#include "hull/hull2d.h"
#include "hull/hull3d.h"

using namespace pargeo;
using namespace pargeo::bench;

int main() {
  const std::size_t n = base_n();

  print_header("Ablation: 2D divide-and-conquer block factor",
               "dataset / c / time");
  auto u2 = datagen::uniform<2>(n, 1);
  for (const std::size_t c : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::printf("2D-U  c=%-4zu %10.2f ms\n", c,
                1e3 * time_op([&] { hull2d::divide_conquer(u2, c); }));
  }

  print_header("Ablation: 3D divide-and-conquer block factor",
               "dataset / c / time");
  auto u3 = datagen::uniform<3>(n, 2);
  for (const std::size_t c : {1u, 2u, 4u, 8u, 16u}) {
    std::printf("3D-U  c=%-4zu %10.2f ms\n", c,
                1e3 * time_op([&] { hull3d::divide_conquer(u3, c); }));
  }

  print_header("Ablation: pseudohull stop threshold", "threshold / time");
  auto is3 = datagen::in_sphere<3>(n, 3);
  for (const std::size_t thr : {8u, 32u, 64u, 256u, 1024u}) {
    std::printf("3D-IS thr=%-5zu %10.2f ms (survivors %zu)\n", thr,
                1e3 * time_op([&] { hull3d::pseudohull(is3, thr); }),
                hull3d::pseudohull_survivors(is3, thr));
  }

  print_header("Ablation: reservation batch factor (3D quickhull)",
               "c / time");
  for (const std::size_t c : {1u, 4u, 8u, 32u, 128u}) {
    std::printf("3D-IS c=%-4zu %10.2f ms\n", c,
                1e3 * time_op([&] { hull3d::reservation_quickhull(is3, c); }));
  }
  return 0;
}
