// google-benchmark micro suite for the parallel substrate.
#include <benchmark/benchmark.h>

#include "parallel/parallel.h"

namespace par = pargeo::par;

static void BM_ParallelFor(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<double> v(n, 1.0);
  for (auto _ : state) {
    par::parallel_for(0, n, [&](std::size_t i) { v[i] = v[i] * 1.0001; });
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

static void BM_Reduce(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<double> v(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::sum(v));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Reduce)->Arg(1 << 16)->Arg(1 << 20);

static void BM_Scan(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    std::vector<std::size_t> v(n, 1);
    benchmark::DoNotOptimize(par::scan_exclusive(v));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Scan)->Arg(1 << 16)->Arg(1 << 20);

static void BM_Filter(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        par::filter(v, [](int x) { return (x & 7) == 0; }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Filter)->Arg(1 << 16)->Arg(1 << 20);

static void BM_Sort(benchmark::State& state) {
  const std::size_t n = state.range(0);
  std::vector<uint64_t> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = par::hash64(i);
  for (auto _ : state) {
    auto v = base;
    par::sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sort)->Arg(1 << 14)->Arg(1 << 18);

static void BM_RandomPermutation(benchmark::State& state) {
  const std::size_t n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(par::random_permutation(n, 1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomPermutation)->Arg(1 << 14)->Arg(1 << 18);

BENCHMARK_MAIN();
