// Reproduces paper Figure 9: 3D convex hull running times across methods
// and datasets, including the Thai-statue / Dragon proxies (DESIGN.md).
// Also prints pseudohull survivor counts, which drive the paper's
// discussion of why Pseudo loses on large-output datasets.
#include "bench_common.h"
#include "datagen/datagen.h"
#include "hull/hull3d.h"

using namespace pargeo;
using namespace pargeo::bench;

namespace {

void run_dataset(const std::string& name, const std::vector<point<3>>& pts) {
  print_row(name, "SeqBaseline",
            1e3 * time_op([&] { hull3d::sequential_quickhull(pts); }));
  print_row(name, "RandInc", 1e3 * time_op([&] { hull3d::randinc(pts); }));
  print_row(name, "QuickHull",
            1e3 * time_op([&] { hull3d::reservation_quickhull(pts); }));
  print_row(name, "DivideConquer",
            1e3 * time_op([&] { hull3d::divide_conquer(pts); }));
  print_row(name, "Pseudo",
            1e3 * time_op([&] { hull3d::pseudohull(pts); }));
  const auto out = hull3d::hull_vertices(hull3d::sequential_quickhull(pts));
  std::printf("%-18s output hull size %zu, pseudohull survivors %zu\n",
              name.c_str(), out.size(), hull3d::pseudohull_survivors(pts));
}

}  // namespace

int main() {
  const std::size_t n = base_n();
  const std::size_t big = large_n();
  print_header("Figure 9: 3D convex hull running times",
               "dataset            method                   time");
  run_dataset("3D-IS-" + std::to_string(n), datagen::in_sphere<3>(n, 1));
  run_dataset("3D-OS-" + std::to_string(n), datagen::on_sphere<3>(n, 2));
  run_dataset("3D-U-" + std::to_string(n), datagen::uniform<3>(n, 3));
  run_dataset("3D-OC-" + std::to_string(n), datagen::on_cube<3>(n, 4));
  run_dataset("3D-Thai-proxy", datagen::synthetic_statue(n / 2, 5));
  run_dataset("3D-Dragon-proxy", datagen::synthetic_statue(n / 3, 6));
  run_dataset("3D-OS-" + std::to_string(big),
              datagen::on_sphere<3>(big, 7));
  run_dataset("3D-OC-" + std::to_string(big), datagen::on_cube<3>(big, 8));
  return 0;
}
