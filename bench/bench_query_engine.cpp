// Benchmark: query-service throughput vs read/write ratio, backend, and
// shard count (paper Fig. 12/14 style, applied to the unified front end).
//
// Part 1 sweeps read fraction {0.50, 0.90, 0.99} x backend x shard count
// {1, 4} on the same uniform stream: the static kd-tree amortizes rebuilds
// via its threshold policy, the Zd-tree pays a sorted merge, the BDL-tree a
// logarithmic cascade — the spread between rows is the paper's headline
// trade-off, and the shard column shows what scatter/gather adds on top.
// Part 2 sweeps threads at the 90%-read point for batch-internal scaling.
// Part 3 drives the asynchronous completion pipeline with 4 concurrent
// producers at >= 90% reads: read-only ticket groups execute on the
// snapshot-read pool while the dedicated drain thread applies write groups,
// and the `lag` column counts read drains that retired after the live write
// epoch had already moved past their snapshot — the epoch-snapshot
// concurrency the service exists for.
//
// `--json` emits one JSON object per row instead of the aligned table, so
// EXPERIMENTS.md can be regenerated mechanically.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "query/query_service.h"
#include "query/workload.h"

using namespace pargeo;

namespace {

constexpr int kDim = 2;

query::workload_spec make_spec(std::size_t initial_n, std::size_t num_ops,
                               double read_frac) {
  auto spec = query::make_read_write_spec(initial_n, num_ops, read_frac);
  spec.batch_size = 2048;
  return spec;
}

double run_ops_per_sec(query::backend b, std::size_t shards,
                       query::shard_policy policy,
                       const query::workload_spec& spec) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = policy;
  query::query_service<kDim> service(cfg);
  const auto stats = query::run_workload<kDim>(service, spec);
  return stats.ops_per_sec();
}

struct async_row {
  double ops_per_sec = 0;
  query::service_stats stats;
};

// 4 producer threads submit their own deterministic 90%-read streams
// through the completion API and redeem at the end — nobody blocks
// mid-stream, so the drain thread and the snapshot-read pool run the whole
// time. Tickets are cut at read/write boundaries (the realistic client
// pattern: reads batch together, writes ship alone), which is what lets
// read-only groups take the snapshot path while write groups drain.
async_row run_async_producers(query::backend b, std::size_t shards,
                              std::size_t initial_n, std::size_t num_ops) {
  constexpr int kProducers = 4;
  constexpr std::size_t kBatch = 512;

  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = query::shard_policy::hash;
  query::query_service<kDim> service(cfg);

  auto spec = make_spec(initial_n, num_ops / kProducers, 0.90);
  service.bootstrap(query::make_initial<kDim>(spec));

  timer clock;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      auto my_spec = spec;
      my_spec.seed = spec.seed + 100 + t;
      const auto reqs = query::make_requests<kDim>(my_spec);
      std::vector<query::completion<kDim>> pending;
      std::size_t off = 0;
      while (off < reqs.size()) {
        const bool read_run = query::is_read(reqs[off].kind);
        std::size_t end = off + 1;
        while (end < reqs.size() && end - off < kBatch &&
               query::is_read(reqs[end].kind) == read_run) {
          ++end;
        }
        pending.push_back(service.submit(
            {reqs.begin() + off, reqs.begin() + end}));
        off = end;
      }
      for (auto& c : pending) c.get();
    });
  }
  for (auto& p : producers) p.join();
  const double secs = clock.elapsed();
  service.close();

  async_row row;
  row.stats = service.stats();
  row.ops_per_sec =
      secs > 0 ? static_cast<double>(row.stats.num_requests) / secs : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const std::size_t initial_n = bench::base_n();
  const std::size_t num_ops = bench::base_n();
  const auto policy = query::shard_policy::hash;

  if (!json) {
    bench::print_header(
        "query service: throughput vs read fraction (uniform, dim=2)",
        "backend            read%  shards              ops/s");
  }
  for (const double rf : {0.50, 0.90, 0.99}) {
    const auto spec = make_spec(initial_n, num_ops, rf);
    for (auto b : {query::backend::kdtree, query::backend::zdtree,
                   query::backend::bdltree}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        const double ops = run_ops_per_sec(b, shards, policy, spec);
        if (json) {
          std::printf(
              "{\"section\":\"read_sweep\",\"backend\":\"%s\","
              "\"read_frac\":%.2f,\"shards\":%zu,\"policy\":\"%s\","
              "\"initial_n\":%zu,\"num_ops\":%zu,\"ops_per_sec\":%.0f}\n",
              query::backend_name(b), rf, shards,
              query::shard_policy_name(policy), initial_n, num_ops, ops);
        } else {
          std::printf("%-18s %5.0f%% %7zu %18.0f\n", query::backend_name(b),
                      rf * 100, shards, ops);
        }
      }
    }
  }

  if (!json) {
    bench::print_header(
        "query service: thread scaling (90% reads, bdltree, 4 shards)",
        "impl           threads              ops/s");
  }
  const auto spec = make_spec(initial_n, num_ops, 0.90);
  for (const int t : bench::thread_sweep()) {
    bench::scoped_threads guard(t);
    const double ops =
        run_ops_per_sec(query::backend::bdltree, 4, policy, spec);
    if (json) {
      std::printf(
          "{\"section\":\"thread_sweep\",\"backend\":\"bdltree\","
          "\"shards\":4,\"threads\":%d,\"initial_n\":%zu,\"num_ops\":%zu,"
          "\"ops_per_sec\":%.0f}\n",
          t, initial_n, num_ops, ops);
    } else {
      bench::print_throughput_row("bdltree", t, ops);
    }
  }

  if (!json) {
    bench::print_header(
        "async completion pipeline: 4 producers, 90% reads, 2 shards",
        "backend             ops/s   drains  read-grp write-grp  "
        "snapshot-lag");
  }
  for (auto b : {query::backend::kdtree, query::backend::zdtree,
                 query::backend::bdltree}) {
    const auto row = run_async_producers(b, 2, initial_n, num_ops);
    if (json) {
      std::printf(
          "{\"section\":\"async_producers\",\"backend\":\"%s\","
          "\"producers\":4,\"read_frac\":0.90,\"shards\":2,"
          "\"initial_n\":%zu,\"num_ops\":%zu,\"ops_per_sec\":%.0f,"
          "\"drains\":%zu,\"read_groups\":%zu,\"write_groups\":%zu,"
          "\"snapshot_lag_drains\":%zu}\n",
          query::backend_name(b), initial_n, num_ops, row.ops_per_sec,
          row.stats.num_drains, row.stats.num_read_groups,
          row.stats.num_write_groups, row.stats.snapshot_lag_drains);
    } else {
      std::printf("%-14s %12.0f %8zu %9zu %9zu %13zu\n",
                  query::backend_name(b), row.ops_per_sec,
                  row.stats.num_drains, row.stats.num_read_groups,
                  row.stats.num_write_groups, row.stats.snapshot_lag_drains);
    }
  }
  return 0;
}
