// Benchmark: query-engine throughput vs read/write ratio and backend
// (paper Fig. 12/14 style, applied to the unified front end).
//
// Part 1 sweeps the read fraction {0.50, 0.90, 0.99} for each backend on
// the same uniform stream: the static kd-tree pays a full rebuild per write
// phase, the Zd-tree a sorted merge, the BDL-tree a logarithmic cascade —
// the spread between rows is the paper's headline trade-off. Part 2 sweeps
// threads at the 90%-read point to show batch-internal scaling.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "query/query_engine.h"
#include "query/spatial_index.h"
#include "query/workload.h"

using namespace pargeo;

namespace {

constexpr int kDim = 2;

query::workload_spec make_spec(std::size_t initial_n, std::size_t num_ops,
                               double read_frac) {
  auto spec = query::make_read_write_spec(initial_n, num_ops, read_frac);
  spec.batch_size = 2048;
  return spec;
}

double run_ops_per_sec(query::backend b, const query::workload_spec& spec) {
  query::query_engine<kDim> engine(query::make_index<kDim>(b));
  const auto stats = query::run_workload<kDim>(engine, spec);
  return stats.ops_per_sec();
}

}  // namespace

int main() {
  const std::size_t initial_n = bench::base_n();
  const std::size_t num_ops = bench::base_n();

  bench::print_header(
      "query engine: throughput vs read fraction (uniform, dim=2)",
      "backend            read%                  ops/s");
  for (const double rf : {0.50, 0.90, 0.99}) {
    const auto spec = make_spec(initial_n, num_ops, rf);
    for (auto b : {query::backend::kdtree, query::backend::zdtree,
                   query::backend::bdltree}) {
      const double ops = run_ops_per_sec(b, spec);
      std::printf("%-18s %5.0f%% %22.0f\n", query::backend_name(b), rf * 100,
                  ops);
    }
  }

  bench::print_header("query engine: thread scaling (90% reads, bdltree)",
                      "impl           threads              ops/s");
  const auto spec = make_spec(initial_n, num_ops, 0.90);
  for (const int t : bench::thread_sweep()) {
    bench::scoped_threads guard(t);
    bench::print_throughput_row(
        "bdltree", t, run_ops_per_sec(query::backend::bdltree, spec));
  }
  return 0;
}
