// Benchmark: query-service throughput vs read/write ratio, backend, and
// shard count (paper Fig. 12/14 style, applied to the unified front end).
//
// Part 1 sweeps read fraction {0.50, 0.90, 0.99} x backend x shard count
// {1, 4} on the same uniform stream: the static kd-tree amortizes rebuilds
// via its threshold policy, the Zd-tree pays a sorted merge, the BDL-tree a
// logarithmic cascade — the spread between rows is the paper's headline
// trade-off, and the shard column shows what scatter/gather adds on top.
// Part 2 sweeps threads at the 90%-read point for batch-internal scaling.
//
// `--json` emits one JSON object per row instead of the aligned table, so
// EXPERIMENTS.md can be regenerated mechanically.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "query/query_service.h"
#include "query/workload.h"

using namespace pargeo;

namespace {

constexpr int kDim = 2;

query::workload_spec make_spec(std::size_t initial_n, std::size_t num_ops,
                               double read_frac) {
  auto spec = query::make_read_write_spec(initial_n, num_ops, read_frac);
  spec.batch_size = 2048;
  return spec;
}

double run_ops_per_sec(query::backend b, std::size_t shards,
                       query::shard_policy policy,
                       const query::workload_spec& spec) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = policy;
  query::query_service<kDim> service(cfg);
  const auto stats = query::run_workload<kDim>(service, spec);
  return stats.ops_per_sec();
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const std::size_t initial_n = bench::base_n();
  const std::size_t num_ops = bench::base_n();
  const auto policy = query::shard_policy::hash;

  if (!json) {
    bench::print_header(
        "query service: throughput vs read fraction (uniform, dim=2)",
        "backend            read%  shards              ops/s");
  }
  for (const double rf : {0.50, 0.90, 0.99}) {
    const auto spec = make_spec(initial_n, num_ops, rf);
    for (auto b : {query::backend::kdtree, query::backend::zdtree,
                   query::backend::bdltree}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        const double ops = run_ops_per_sec(b, shards, policy, spec);
        if (json) {
          std::printf(
              "{\"section\":\"read_sweep\",\"backend\":\"%s\","
              "\"read_frac\":%.2f,\"shards\":%zu,\"policy\":\"%s\","
              "\"initial_n\":%zu,\"num_ops\":%zu,\"ops_per_sec\":%.0f}\n",
              query::backend_name(b), rf, shards,
              query::shard_policy_name(policy), initial_n, num_ops, ops);
        } else {
          std::printf("%-18s %5.0f%% %7zu %18.0f\n", query::backend_name(b),
                      rf * 100, shards, ops);
        }
      }
    }
  }

  if (!json) {
    bench::print_header(
        "query service: thread scaling (90% reads, bdltree, 4 shards)",
        "impl           threads              ops/s");
  }
  const auto spec = make_spec(initial_n, num_ops, 0.90);
  for (const int t : bench::thread_sweep()) {
    bench::scoped_threads guard(t);
    const double ops =
        run_ops_per_sec(query::backend::bdltree, 4, policy, spec);
    if (json) {
      std::printf(
          "{\"section\":\"thread_sweep\",\"backend\":\"bdltree\","
          "\"shards\":4,\"threads\":%d,\"initial_n\":%zu,\"num_ops\":%zu,"
          "\"ops_per_sec\":%.0f}\n",
          t, initial_n, num_ops, ops);
    } else {
      bench::print_throughput_row("bdltree", t, ops);
    }
  }
  return 0;
}
