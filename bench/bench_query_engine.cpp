// Benchmark: query-service throughput vs read/write ratio, backend, and
// shard count (paper Fig. 12/14 style, applied to the unified front end).
//
// Part 1 sweeps read fraction {0.50, 0.90, 0.99} x backend x shard count
// {1, 4} on the same uniform stream: the static kd-tree amortizes rebuilds
// via its threshold policy, the Zd-tree pays a sorted merge, the BDL-tree a
// logarithmic cascade — the spread between rows is the paper's headline
// trade-off, and the shard column shows what scatter/gather adds on top.
// Part 2 sweeps threads at the 90%-read point for batch-internal scaling.
// Part 3 drives the asynchronous completion pipeline with 4 concurrent
// producers at >= 90% reads: read-only ticket groups execute on the
// snapshot-read pool while the drain pipeline applies write groups, and
// the `lag` column counts read drains that retired after the live write
// epoch had already moved past their snapshot — the epoch-snapshot
// concurrency the service exists for.
// Part 4 (`parallel_drain`) pits the per-shard drain pipelines against the
// single-drainer baseline on the 50%-write sweep: one producer streams
// asynchronously (no mid-stream waits), so groups can pipeline across
// shard lanes; the row also carries the routing-scratch recycling
// counters (reuses dominating allocs == the per-drain allocation churn is
// gone).
// Part 5 (`cache_zipf`) measures the hot k-NN result cache on zipf 90%-read
// traffic (hot-key serving: most payloads re-probe a few keys), cache off
// vs on, with hit/miss/evict counters and the hit rate.
// Part 6 (`skew_drain`) is the adversarial-skew section: payload points
// concentrate in one corner stripe (dist=skewed) under spatial sharding,
// so per-shard routing funnels nearly every write into one lane. It pits
// drain_mode::per_shard against ::stealing, with stripe rebalancing off
// vs on; the steal/rebalance counters prove the mechanisms engaged.
// Part 7 (`continuous_queries`) serves standing k-NN/box watches
// (query/subscription.h) over a write-only churn stream with a 25 ms
// sliding-window TTL: watch count x backend, with fire/suppression
// counters, the suppression ratio (stripe pruning + delta suppression),
// expired-point totals, and watch-eval latency percentiles from the
// `watch_eval` stage histogram.
//
// Part 8 (`telemetry_overhead`) re-runs the zipf 90%-read serving bench at
// telemetry off / stats / trace and reports the throughput delta — the
// "<3% with stats on" acceptance number in EXPERIMENTS.md comes from here.
// Part 9 (`replication`) measures read scaling on the replicated tier
// (query/replica.h): 4 concurrent staleness-tolerant readers plus one
// writer against 0 / 1 / 2 live-tailing replicas under a bounded
// staleness router — read ops/s per replica count, with replay counters
// and end-of-run replica lag.
//
// Part 10 (`durability`) prices the fault-tolerance layer (query/oplog.h,
// query/checkpoint.h): 50%-read serving with the durable op log attached
// under each sync policy (none / interval / every_commit) against the
// no-log baseline — ops/s plus fsync and byte counts — then crash
// recovery time vs checkpoint cadence: the same write history is laid
// down at checkpoint_every 0 / 4 / 16 and `query_service::recover()`
// is timed rebuilding from the newest checkpoint + salvaged log tail,
// reporting recovered epochs and residual log replay.
//
// `--json` emits one JSON object per row instead of the aligned table, so
// EXPERIMENTS.md can be regenerated mechanically. The first JSON line is a
// `meta` row stamping `hardware_concurrency` plus build provenance
// (compiler, build type, sanitizer, git SHA), so consumers can tell a
// 1-core container run (lanes cannot add compute) from real hardware and
// a sanitizer build from a clean one. Every throughput row also carries
// end-to-end completion-latency percentiles (`lat_p50_us`/`p99`/`p999`),
// and each section is followed by `latency` rows: per-stage
// p50/p95/p99/p999/max merged across the section's runs.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>

#include "bench_common.h"
#include "query/query_service.h"
#include "query/replica.h"
#include "query/workload.h"

using namespace pargeo;

namespace {

constexpr int kDim = 2;

query::workload_spec make_spec(std::size_t initial_n, std::size_t num_ops,
                               double read_frac) {
  auto spec = query::make_read_write_spec(initial_n, num_ops, read_frac);
  spec.batch_size = 2048;
  return spec;
}

struct sweep_row {
  double ops_per_sec = 0;
  query::service_stats stats;
};

sweep_row run_ops_per_sec(query::backend b, std::size_t shards,
                          query::shard_policy policy,
                          const query::workload_spec& spec) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = policy;
  query::query_service<kDim> service(cfg);
  const auto stats = query::run_workload<kDim>(service, spec);
  service.close();  // flush the pipeline so stage counters are final
  sweep_row row;
  row.ops_per_sec = stats.ops_per_sec();
  row.stats = service.stats();
  return row;
}

// ---- stage-latency reporting ----------------------------------------------

/// End-to-end completion-latency fields appended to every throughput JSON
/// row: `,"lat_p50_us":..,"lat_p99_us":..,"lat_p999_us":..` (empty string
/// when the run recorded nothing, e.g. telemetry off).
std::string completion_fields(const query::service_stats& st) {
  const auto c =
      st.telemetry.stage_hist(query::stage::completion).summary();
  if (c.count == 0) return "";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ",\"lat_p50_us\":%.1f,\"lat_p99_us\":%.1f,"
                "\"lat_p999_us\":%.1f",
                c.p50 / 1e3, c.p99 / 1e3, c.p999 / 1e3);
  return buf;
}

/// Flushes one section's merged telemetry as per-stage percentile rows:
/// `{"section":"latency","of":"<section>","stage":...}` under --json, an
/// aligned table otherwise. Stages with no samples are skipped.
void emit_latency(bool json, const char* of,
                  const query::telemetry_report& rep) {
  bool header = false;
  for (std::size_t i = 0; i < query::kNumStages; ++i) {
    const auto s = rep.stages[i].summary();
    if (s.count == 0) continue;
    const char* st = query::stage_name(static_cast<query::stage>(i));
    if (json) {
      std::printf(
          "{\"section\":\"latency\",\"of\":\"%s\",\"stage\":\"%s\","
          "\"count\":%llu,\"p50_us\":%.1f,\"p95_us\":%.1f,"
          "\"p99_us\":%.1f,\"p999_us\":%.1f,\"max_us\":%.1f}\n",
          of, st, static_cast<unsigned long long>(s.count), s.p50 / 1e3,
          s.p95 / 1e3, s.p99 / 1e3, s.p999 / 1e3, s.max / 1e3);
    } else {
      if (!header) {
        bench::print_header(
            std::string("stage latency: ") + of + " (us, merged over "
            "section runs)",
            "stage               count        p50        p95        p99"
            "       p999        max");
        header = true;
      }
      std::printf("%-15s %10llu %10.1f %10.1f %10.1f %10.1f %10.1f\n", st,
                  static_cast<unsigned long long>(s.count), s.p50 / 1e3,
                  s.p95 / 1e3, s.p99 / 1e3, s.p999 / 1e3, s.max / 1e3);
    }
  }
}

// ---- durability ------------------------------------------------------------

std::string fresh_bench_dir() {
  std::string tmpl = "/tmp/pargeo_benchXXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr) return std::string();
  return tmpl;
}

void remove_bench_dir(const std::string& dir) {
  if (dir.empty()) return;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

// One serving run with the durable op log attached (or detached, for the
// no-log baseline): what commit durability costs at each fsync cadence.
sweep_row run_durable(bool log_on, query::sync_policy sync,
                      std::size_t checkpoint_every,
                      const query::workload_spec& spec,
                      const std::string& dir) {
  query::service_config cfg;
  cfg.backend = query::backend::bdltree;
  cfg.shards = 2;
  cfg.policy = query::shard_policy::hash;
  if (log_on) {
    cfg.log_dir = dir;
    cfg.sync = sync;
    cfg.checkpoint_every = checkpoint_every;
  }
  query::query_service<kDim> service(cfg);
  const auto stats = query::run_workload<kDim>(service, spec);
  service.close();
  sweep_row row;
  row.ops_per_sec = stats.ops_per_sec();
  row.stats = service.stats();
  return row;
}

struct recovery_row {
  double recover_ms = 0;
  query::service_stats stats;
  std::size_t resident = 0;
};

// Times query_service::recover() over the directory a run_durable call
// left behind: checkpoint load + salvaged-tail replay, end to end.
recovery_row time_recovery(const std::string& dir,
                           std::size_t checkpoint_every) {
  query::service_config cfg;  // must match the writer's topology
  cfg.backend = query::backend::bdltree;
  cfg.shards = 2;
  cfg.policy = query::shard_policy::hash;
  cfg.checkpoint_every = checkpoint_every;
  timer clock;
  auto svc = query::query_service<kDim>::recover(dir, cfg);
  recovery_row row;
  row.recover_ms = clock.elapsed() * 1e3;
  row.resident = svc->size();
  svc->close();
  row.stats = svc->stats();
  return row;
}

struct async_row {
  double ops_per_sec = 0;
  query::service_stats stats;
};

// 4 producer threads submit their own deterministic 90%-read streams
// through the completion API and redeem at the end — nobody blocks
// mid-stream, so the drain thread and the snapshot-read pool run the whole
// time. Tickets are cut at read/write boundaries (the realistic client
// pattern: reads batch together, writes ship alone), which is what lets
// read-only groups take the snapshot path while write groups drain.
async_row run_async_producers(query::backend b, std::size_t shards,
                              std::size_t initial_n, std::size_t num_ops) {
  constexpr int kProducers = 4;
  constexpr std::size_t kBatch = 512;

  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = query::shard_policy::hash;
  // Producers redeem only after submitting everything, so completed
  // tickets can pile up far past the serving default; the retention cap
  // must cover the whole stream or the tail gets evicted mid-bench.
  cfg.max_retained = std::size_t{1} << 20;
  query::query_service<kDim> service(cfg);

  auto spec = make_spec(initial_n, num_ops / kProducers, 0.90);
  service.bootstrap(query::make_initial<kDim>(spec));

  timer clock;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      auto my_spec = spec;
      my_spec.seed = spec.seed + 100 + t;
      const auto reqs = query::make_requests<kDim>(my_spec);
      std::vector<query::completion<kDim>> pending;
      std::size_t off = 0;
      while (off < reqs.size()) {
        const bool read_run = query::is_read(reqs[off].kind);
        std::size_t end = off + 1;
        while (end < reqs.size() && end - off < kBatch &&
               query::is_read(reqs[end].kind) == read_run) {
          ++end;
        }
        pending.push_back(service.submit(
            {reqs.begin() + off, reqs.begin() + end}));
        off = end;
      }
      for (auto& c : pending) c.get();
    });
  }
  for (auto& p : producers) p.join();
  const double secs = clock.elapsed();
  service.close();

  async_row row;
  row.stats = service.stats();
  row.ops_per_sec =
      secs > 0 ? static_cast<double>(row.stats.num_requests) / secs : 0;
  return row;
}

struct ingest_row {
  double ops_per_sec = 0;
  query::service_stats stats;
};

// The submission seam under producer contention: N producers stream
// read/write-cut tickets through ingest_mode::mutex (every submit takes
// the hub lock) vs ingest_mode::lockfree (bounded MPSC ring, producers
// CAS slots). bdltree + 50% writes keeps the BDL forest churning so
// superseded vEB trees flow through the epoch reclaimer (the
// retired/reclaimed columns), and read-cut tickets give the un-pinned
// snapshot path write drains to overlap with (snapshot_lag_drains).
ingest_row run_ingest_scaling(query::ingest_mode mode, int producers,
                              std::size_t initial_n, std::size_t num_ops) {
  constexpr std::size_t kBatch = 256;
  query::service_config cfg;
  cfg.backend = query::backend::bdltree;
  cfg.shards = 2;
  cfg.policy = query::shard_policy::hash;
  cfg.ingest = mode;
  cfg.max_retained = std::size_t{1} << 20;  // producers redeem at the end
  query::query_service<kDim> service(cfg);

  auto spec = make_spec(initial_n, num_ops / producers, 0.50);
  service.bootstrap(query::make_initial<kDim>(spec));

  timer clock;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&, t] {
      auto my_spec = spec;
      my_spec.seed = spec.seed + 300 + t;
      const auto reqs = query::make_requests<kDim>(my_spec);
      std::vector<query::completion<kDim>> pending;
      std::size_t off = 0;
      while (off < reqs.size()) {
        const bool read_run = query::is_read(reqs[off].kind);
        std::size_t end = off + 1;
        while (end < reqs.size() && end - off < kBatch &&
               query::is_read(reqs[end].kind) == read_run) {
          ++end;
        }
        pending.push_back(
            service.submit({reqs.begin() + off, reqs.begin() + end}));
        off = end;
      }
      for (auto& c : pending) c.get();
    });
  }
  for (auto& p : threads) p.join();
  const double secs = clock.elapsed();
  service.close();

  ingest_row row;
  row.stats = service.stats();
  row.ops_per_sec =
      secs > 0 ? static_cast<double>(row.stats.num_requests) / secs : 0;
  return row;
}

struct drain_row {
  double ops_per_sec = 0;
  query::service_stats stats;
};

// One producer streams the whole spec through the completion API without
// waiting mid-stream (redeems everything at the end), so the drain
// pipeline — not the producer — is the bottleneck and groups can overlap
// across shard lanes under drain_mode::per_shard. The cache is off here to
// isolate drain parallelism.
drain_row run_drain_throughput(query::backend b, std::size_t shards,
                               query::drain_mode mode,
                               const query::workload_spec& spec) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = query::shard_policy::hash;
  cfg.drain = mode;
  cfg.cache_capacity = 0;
  // One drain group per submitted batch: with the default window the whole
  // backlog collapses into one giant group and nothing can pipeline.
  cfg.ingest_window = std::max<std::size_t>(1, spec.batch_size);
  // Bounded producer (the backpressure satellite in action): a few groups
  // in flight keeps lanes busy while routing stays paced to execution —
  // which is also what lets the scratch pool actually recycle.
  cfg.max_pending_requests = 4 * cfg.ingest_window;
  cfg.max_retained = std::size_t{1} << 20;  // nothing redeems mid-stream
  query::query_service<kDim> service(cfg);

  auto initial = query::make_initial<kDim>(spec);
  service.bootstrap(initial);
  const auto reqs = query::make_requests<kDim>(spec, std::move(initial));

  timer clock;
  std::vector<query::completion<kDim>> pending;
  const std::size_t bs = std::max<std::size_t>(1, spec.batch_size);
  for (std::size_t off = 0; off < reqs.size(); off += bs) {
    const std::size_t end = std::min(reqs.size(), off + bs);
    pending.push_back(
        service.submit({reqs.begin() + off, reqs.begin() + end}));
  }
  for (auto& c : pending) c.get();
  const double secs = clock.elapsed();
  service.close();

  drain_row row;
  row.stats = service.stats();
  row.ops_per_sec =
      secs > 0 ? static_cast<double>(reqs.size()) / secs : 0;
  return row;
}

struct cache_row {
  double ops_per_sec = 0;
  query::service_stats stats;
};

// Zipf hot-key serving traffic (90% reads, skewed key reuse) with the
// k-NN result cache off vs on: identical streams, so the ops/s delta and
// the hit rate are directly attributable to the cache.
cache_row run_cache_zipf(
    query::backend b, std::size_t cache_capacity, std::size_t initial_n,
    std::size_t num_ops,
    query::telemetry_level tl = query::telemetry_level::stats) {
  auto spec = make_spec(initial_n, num_ops, 0.90);
  spec.dist = query::distribution::zipf;
  spec.zipf_s = 1.8;        // steep skew: a handful of keys dominate
  spec.zipf_hot_frac = 0.95;  // payloads nearly always re-probe hot keys
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = 2;
  cfg.policy = query::shard_policy::hash;
  cfg.cache_capacity = cache_capacity;
  cfg.telemetry = tl;
  query::query_service<kDim> service(cfg);
  const auto stats = query::run_workload<kDim>(service, spec);
  service.close();
  cache_row row;
  row.ops_per_sec = stats.ops_per_sec();
  row.stats = service.stats();
  return row;
}

struct skew_row {
  double ops_per_sec = 0;
  query::service_stats stats;
  std::size_t steals = 0;
  std::size_t steal_scans = 0;
};

// Adversarially skewed stream under spatial stripes: one async producer
// (no mid-stream waits, bounded by backpressure) so lane queues actually
// build up and idle lanes have something to steal. Cache off to isolate
// the drain path.
skew_row run_skew_drain(query::backend b, query::drain_mode mode,
                        double rebalance_threshold,
                        const query::workload_spec& spec) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = 4;
  cfg.policy = query::shard_policy::spatial;
  cfg.drain = mode;
  cfg.cache_capacity = 0;
  cfg.rebalance_threshold = rebalance_threshold;
  cfg.ingest_window = std::max<std::size_t>(1, spec.batch_size);
  // Deeper in-flight backlog than the uniform drain bench: under skew the
  // hot lane's queue depth is what idle lanes can steal from.
  cfg.max_pending_requests = 8 * cfg.ingest_window;
  cfg.max_retained = std::size_t{1} << 20;  // nothing redeems mid-stream
  query::query_service<kDim> service(cfg);

  auto initial = query::make_initial<kDim>(spec);
  service.bootstrap(initial);
  const auto reqs = query::make_requests<kDim>(spec, std::move(initial));

  timer clock;
  std::vector<query::completion<kDim>> pending;
  const std::size_t bs = std::max<std::size_t>(1, spec.batch_size);
  for (std::size_t off = 0; off < reqs.size(); off += bs) {
    const std::size_t end = std::min(reqs.size(), off + bs);
    pending.push_back(
        service.submit({reqs.begin() + off, reqs.begin() + end}));
  }
  for (auto& c : pending) c.get();
  const double secs = clock.elapsed();
  service.close();

  skew_row row;
  row.stats = service.stats();
  row.ops_per_sec = secs > 0 ? static_cast<double>(reqs.size()) / secs : 0;
  for (const auto& lane : row.stats.per_shard) {
    row.steals += lane.steals;
    row.steal_scans += lane.steal_scans;
  }
  return row;
}

struct watch_row {
  double ops_per_sec = 0;
  query::service_stats stats;
};

// Continuous-query serving: N standing watches (alternating k-NN and box,
// spread diagonally over the bbox) over a write-only churn stream with a
// sliding-window TTL, streamed async so write groups and watch
// re-evaluations overlap. The fire/suppression split shows how much work
// stripe pruning and delta suppression save; watch-eval latency lands in
// the section's `watch_eval` stage histogram.
watch_row run_continuous_queries(query::backend b, std::size_t num_watches,
                                 std::size_t initial_n,
                                 std::size_t num_ops) {
  auto spec = query::make_churn_spec(initial_n, num_ops, 0.5, 0.5);
  spec.batch_size = std::max<std::size_t>(64, num_ops / 64);
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = 4;
  cfg.policy = query::shard_policy::spatial;
  cfg.point_ttl_ns = 25'000'000;  // 25 ms window: expiry races the stream
  cfg.cache_capacity = 0;         // isolate the watch path
  cfg.ingest_window = std::max<std::size_t>(1, spec.batch_size);
  cfg.max_pending_requests = 4 * cfg.ingest_window;
  cfg.max_retained = std::size_t{1} << 20;
  query::query_service<kDim> service(cfg);

  auto initial = query::make_initial<kDim>(spec);
  service.bootstrap(initial);
  const auto reqs = query::make_requests<kDim>(spec, std::move(initial));

  std::vector<query::watch_handle<kDim>> handles;
  handles.reserve(num_watches);
  const double side = spec.side();
  for (std::size_t w = 0; w < num_watches; ++w) {
    const double t = num_watches > 1
                         ? static_cast<double>(w) / (num_watches - 1)
                         : 0.5;
    point<kDim> at;
    for (int d = 0; d < kDim; ++d) at[d] = t * side;
    if (w % 2 == 0) {
      handles.push_back(service.watch_knn(
          at, spec.k, [](const query::watch_event<kDim>&) {}));
    } else {
      point<kDim> hi;
      for (int d = 0; d < kDim; ++d) hi[d] = at[d] + side * 0.1;
      handles.push_back(service.watch_range(
          aabb<kDim>(at, hi), [](const query::watch_event<kDim>&) {}));
    }
  }

  timer clock;
  std::vector<query::completion<kDim>> pending;
  const std::size_t bs = std::max<std::size_t>(1, spec.batch_size);
  for (std::size_t off = 0; off < reqs.size(); off += bs) {
    const std::size_t end = std::min(reqs.size(), off + bs);
    pending.push_back(
        service.submit({reqs.begin() + off, reqs.begin() + end}));
  }
  for (auto& c : pending) c.get();
  const double secs = clock.elapsed();
  service.close();

  watch_row row;
  row.stats = service.stats();
  row.ops_per_sec = secs > 0 ? static_cast<double>(reqs.size()) / secs : 0;
  return row;
}

struct replication_row {
  double read_ops_per_sec = 0;   // measured phase: concurrent readers only
  std::size_t read_requests = 0;
  std::uint64_t replica_lag = 0;  // max lag when the readers finished
  std::size_t replayed_groups = 0;
  std::size_t replayed_records = 0;
  query::router_stats router;
  query::service_stats stats;  // primary
  query::telemetry_report replica_tel;  // merged replica telemetry (replay)
};

// Read-scaling on the replicated tier: a primary with an attached op log,
// N live-tailing replicas, and a router with a staleness bound. A seed
// phase churns the index through the router (building the log and letting
// the tails trail it); the measured phase runs 4 concurrent reader
// threads issuing staleness-tolerant read batches (min_epoch 0, bound
// max_lag) while one writer keeps committing — the 90%-read serving shape.
// With 0 replicas every read lands on the primary's reader pool; each
// added replica brings its own pool, which is where the scaling comes
// from.
replication_row run_replication(query::backend b, std::size_t replicas,
                                std::uint64_t max_lag, std::size_t initial_n,
                                std::size_t num_ops) {
  constexpr int kReaders = 4;
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = 4;
  cfg.policy = query::shard_policy::hash;
  query::query_service<kDim> service(cfg);
  auto log = std::make_shared<query::op_log<kDim>>();
  service.attach_log(log);

  query::replica_set<kDim> reps(log, cfg, replicas);
  query::replica_router<kDim> router(service, reps, log, max_lag);
  query::routed_executor<kDim, query::query_service<kDim>,
                         query::replica_router<kDim>>
      exec{service, router};

  // Seed phase: run the mixed stream through the router (not timed here)
  // so the measured phase reads a churned index with a populated log.
  auto seed_spec = make_spec(initial_n, num_ops / 4, 0.90);
  query::run_workload<kDim>(exec, seed_spec, nullptr);
  const auto seed_rs = router.stats();  // measured phase reports its own

  // Measured phase: concurrent staleness-tolerant readers + one writer.
  std::atomic<bool> stop_writer{false};
  std::thread writer([&] {
    auto wspec = make_spec(initial_n, std::max<std::size_t>(64, num_ops / 10),
                           /*read_frac=*/0.0);
    wspec.seed = seed_spec.seed + 7;
    const auto writes = query::make_requests<kDim>(wspec);
    std::size_t off = 0;
    while (!stop_writer.load(std::memory_order_acquire) &&
           off < writes.size()) {
      const std::size_t end = std::min(writes.size(), off + 64);
      router.execute({writes.begin() + off, writes.begin() + end});
      off = end;
    }
  });

  std::atomic<std::size_t> read_requests{0};
  timer clock;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      auto rspec = make_spec(initial_n, num_ops / kReaders,
                             /*read_frac=*/1.0);
      rspec.seed = seed_spec.seed + 100 + t;
      const auto reads = query::make_requests<kDim>(rspec);
      constexpr std::size_t kBatch = 256;
      for (std::size_t off = 0; off < reads.size(); off += kBatch) {
        const std::size_t end = std::min(reads.size(), off + kBatch);
        router.execute({reads.begin() + off, reads.begin() + end},
                       /*min_epoch=*/0);
        read_requests.fetch_add(end - off, std::memory_order_relaxed);
      }
    });
  }
  for (auto& r : readers) r.join();
  const double read_secs = clock.elapsed();
  stop_writer.store(true, std::memory_order_release);
  writer.join();

  replication_row row;
  row.read_requests = read_requests.load();
  row.read_ops_per_sec =
      read_secs > 0 ? static_cast<double>(row.read_requests) / read_secs : 0;
  const std::uint64_t head = log->head();
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const std::uint64_t a = reps.applied_epoch(i);
    row.replica_lag = std::max(row.replica_lag, head > a ? head - a : 0);
  }
  service.close();
  reps.close();
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto rs = reps.replica(i).stats();
    row.replayed_groups += rs.replayed_groups;
    row.replayed_records += rs.replayed_records;
    row.replica_tel.merge(rs.telemetry);
  }
  row.router = router.stats();
  row.router.writes -= seed_rs.writes;
  row.router.reads_to_replicas -= seed_rs.reads_to_replicas;
  row.router.reads_to_primary -= seed_rs.reads_to_primary;
  row.router.fallbacks -= seed_rs.fallbacks;
  row.stats = service.stats();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  const std::size_t initial_n = bench::base_n();
  const std::size_t num_ops = bench::base_n();
  const auto policy = query::shard_policy::hash;

  if (json) {
    // Machine-readable hardware + build context: a 1-core container
    // measures lane parallelism at parity by construction, and a
    // sanitizer build's numbers are not comparable to a clean one.
    std::printf("{\"section\":\"meta\",\"hardware_concurrency\":%u,"
                "\"base_n\":%zu,\"compiler\":\"%s\",\"build_type\":\"%s\","
                "\"sanitize\":\"%s\",\"git_sha\":\"%s\"}\n",
                std::thread::hardware_concurrency(), initial_n,
                bench::compiler_id().c_str(), bench::build_type(),
                bench::sanitize_flags(), bench::git_sha());
  } else {
    std::printf("# hardware_concurrency=%u compiler=\"%s\" build=%s "
                "sanitize=%s sha=%s\n",
                std::thread::hardware_concurrency(),
                bench::compiler_id().c_str(), bench::build_type(),
                bench::sanitize_flags(), bench::git_sha());
  }

  // Merged per-stage telemetry of the section currently running; flushed
  // (and reset) by emit_latency at each section boundary.
  query::telemetry_report section_tel;

  if (!json) {
    bench::print_header(
        "query service: throughput vs read fraction (uniform, dim=2)",
        "backend            read%  shards              ops/s");
  }
  for (const double rf : {0.50, 0.90, 0.99}) {
    const auto spec = make_spec(initial_n, num_ops, rf);
    for (auto b : {query::backend::kdtree, query::backend::zdtree,
                   query::backend::bdltree}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        const auto row = run_ops_per_sec(b, shards, policy, spec);
        section_tel.merge(row.stats.telemetry);
        if (json) {
          std::printf(
              "{\"section\":\"read_sweep\",\"backend\":\"%s\","
              "\"read_frac\":%.2f,\"shards\":%zu,\"policy\":\"%s\","
              "\"initial_n\":%zu,\"num_ops\":%zu,\"ops_per_sec\":%.0f%s}\n",
              query::backend_name(b), rf, shards,
              query::shard_policy_name(policy), initial_n, num_ops,
              row.ops_per_sec, completion_fields(row.stats).c_str());
        } else {
          std::printf("%-18s %5.0f%% %7zu %18.0f\n", query::backend_name(b),
                      rf * 100, shards, row.ops_per_sec);
        }
      }
    }
  }
  emit_latency(json, "read_sweep", section_tel);
  section_tel = query::telemetry_report{};

  if (!json) {
    bench::print_header(
        "query service: thread scaling (90% reads, bdltree, 4 shards)",
        "impl           threads              ops/s");
  }
  const auto spec = make_spec(initial_n, num_ops, 0.90);
  for (const int t : bench::thread_sweep()) {
    bench::scoped_threads guard(t);
    const auto row =
        run_ops_per_sec(query::backend::bdltree, 4, policy, spec);
    section_tel.merge(row.stats.telemetry);
    if (json) {
      std::printf(
          "{\"section\":\"thread_sweep\",\"backend\":\"bdltree\","
          "\"shards\":4,\"threads\":%d,\"initial_n\":%zu,\"num_ops\":%zu,"
          "\"ops_per_sec\":%.0f%s}\n",
          t, initial_n, num_ops, row.ops_per_sec,
          completion_fields(row.stats).c_str());
    } else {
      bench::print_throughput_row("bdltree", t, row.ops_per_sec);
    }
  }
  emit_latency(json, "thread_sweep", section_tel);
  section_tel = query::telemetry_report{};

  if (!json) {
    bench::print_header(
        "async completion pipeline: 4 producers, 90% reads, 2 shards",
        "backend             ops/s   drains  read-grp write-grp  "
        "snapshot-lag");
  }
  for (auto b : {query::backend::kdtree, query::backend::zdtree,
                 query::backend::bdltree}) {
    const auto row = run_async_producers(b, 2, initial_n, num_ops);
    section_tel.merge(row.stats.telemetry);
    if (json) {
      std::printf(
          "{\"section\":\"async_producers\",\"backend\":\"%s\","
          "\"producers\":4,\"read_frac\":0.90,\"shards\":2,"
          "\"initial_n\":%zu,\"num_ops\":%zu,\"ops_per_sec\":%.0f,"
          "\"drains\":%zu,\"read_groups\":%zu,\"write_groups\":%zu,"
          "\"snapshot_lag_drains\":%zu%s}\n",
          query::backend_name(b), initial_n, num_ops, row.ops_per_sec,
          row.stats.num_drains, row.stats.num_read_groups,
          row.stats.num_write_groups, row.stats.snapshot_lag_drains,
          completion_fields(row.stats).c_str());
    } else {
      std::printf("%-14s %12.0f %8zu %9zu %9zu %13zu\n",
                  query::backend_name(b), row.ops_per_sec,
                  row.stats.num_drains, row.stats.num_read_groups,
                  row.stats.num_write_groups, row.stats.snapshot_lag_drains);
    }
  }
  emit_latency(json, "async_producers", section_tel);
  section_tel = query::telemetry_report{};

  if (!json) {
    bench::print_header(
        "ingest scaling: mutex vs lock-free ring (bdltree, 50% reads, "
        "2 shards)",
        "ingest     producers            ops/s    spins  retired/freed  "
        "lag-drains");
  }
  // Heavier stream than the other sections on purpose: the BDL staging
  // buffer absorbs ~1024 points per shard before any vEB tree exists, and
  // the reclaimer only sees traffic once trees churn.
  const std::size_t ingest_ops = 4 * num_ops;
  for (auto mode :
       {query::ingest_mode::mutex, query::ingest_mode::lockfree}) {
    for (const int producers : {1, 2, 4}) {
      const auto row = run_ingest_scaling(mode, producers, initial_n,
                                          ingest_ops);
      section_tel.merge(row.stats.telemetry);
      if (json) {
        std::printf(
            "{\"section\":\"ingest_scaling\",\"backend\":\"bdltree\","
            "\"ingest\":\"%s\",\"producers\":%d,\"read_frac\":0.50,"
            "\"shards\":2,\"initial_n\":%zu,\"num_ops\":%zu,"
            "\"ops_per_sec\":%.0f,\"ingest_spins\":%llu,"
            "\"retired_snapshots\":%llu,\"reclaimed_snapshots\":%llu,"
            "\"reclaim_stalls\":%llu,\"epoch_lag\":%llu,"
            "\"limbo_snapshots\":%llu,\"snapshot_lag_drains\":%zu,"
            "\"read_groups\":%zu,\"write_groups\":%zu%s}\n",
            query::ingest_mode_name(mode), producers, initial_n, ingest_ops,
            row.ops_per_sec,
            static_cast<unsigned long long>(row.stats.ingest_spins),
            static_cast<unsigned long long>(row.stats.retired_snapshots),
            static_cast<unsigned long long>(row.stats.reclaimed_snapshots),
            static_cast<unsigned long long>(row.stats.reclaim_stalls),
            static_cast<unsigned long long>(row.stats.epoch_lag),
            static_cast<unsigned long long>(row.stats.limbo_snapshots),
            row.stats.snapshot_lag_drains, row.stats.num_read_groups,
            row.stats.num_write_groups,
            completion_fields(row.stats).c_str());
      } else {
        std::printf("%-10s %9d %16.0f %8llu %10llu/%-6llu %6zu\n",
                    query::ingest_mode_name(mode), producers,
                    row.ops_per_sec,
                    static_cast<unsigned long long>(row.stats.ingest_spins),
                    static_cast<unsigned long long>(
                        row.stats.retired_snapshots),
                    static_cast<unsigned long long>(
                        row.stats.reclaimed_snapshots),
                    row.stats.snapshot_lag_drains);
      }
    }
  }
  emit_latency(json, "ingest_scaling", section_tel);
  section_tel = query::telemetry_report{};

  if (!json) {
    bench::print_header(
        "parallel drain: per-shard lanes vs single drainer (50% reads, "
        "async producer)",
        "backend            shards  drain            ops/s  scratch "
        "reuse/alloc");
  }
  auto drain_spec = make_spec(initial_n, num_ops, 0.50);
  drain_spec.batch_size = 512;  // enough groups to pipeline across lanes
  for (auto b : {query::backend::kdtree, query::backend::zdtree,
                 query::backend::bdltree}) {
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      for (auto mode :
           {query::drain_mode::single, query::drain_mode::per_shard}) {
        const auto row = run_drain_throughput(b, shards, mode, drain_spec);
        section_tel.merge(row.stats.telemetry);
        if (json) {
          std::printf(
              "{\"section\":\"parallel_drain\",\"backend\":\"%s\","
              "\"shards\":%zu,\"drain\":\"%s\",\"read_frac\":0.50,"
              "\"initial_n\":%zu,\"num_ops\":%zu,\"ops_per_sec\":%.0f,"
              "\"drains\":%zu,\"scratch_reuses\":%zu,"
              "\"scratch_allocs\":%zu%s}\n",
              query::backend_name(b), shards, query::drain_mode_name(mode),
              initial_n, num_ops, row.ops_per_sec, row.stats.num_drains,
              row.stats.scratch_reuses, row.stats.scratch_allocs,
              completion_fields(row.stats).c_str());
        } else {
          std::printf("%-18s %6zu  %-9s %12.0f  %8zu/%zu\n",
                      query::backend_name(b), shards,
                      query::drain_mode_name(mode), row.ops_per_sec,
                      row.stats.scratch_reuses, row.stats.scratch_allocs);
        }
      }
    }
  }
  emit_latency(json, "parallel_drain", section_tel);
  section_tel = query::telemetry_report{};

  if (!json) {
    bench::print_header(
        "hot k-NN cache: zipf 90% reads, 2 shards, cache off vs on",
        "backend            cache            ops/s       hits     misses  "
        "hit%   evict");
  }
  for (auto b : {query::backend::kdtree, query::backend::zdtree,
                 query::backend::bdltree}) {
    for (const std::size_t cap : {std::size_t{0}, std::size_t{4096}}) {
      const auto row = run_cache_zipf(b, cap, initial_n, num_ops);
      section_tel.merge(row.stats.telemetry);
      const auto& cs = row.stats.cache;
      if (json) {
        std::printf(
            "{\"section\":\"cache_zipf\",\"backend\":\"%s\","
            "\"cache\":\"%s\",\"cache_capacity\":%zu,\"read_frac\":0.90,"
            "\"shards\":2,\"initial_n\":%zu,\"num_ops\":%zu,"
            "\"ops_per_sec\":%.0f,\"cache_hits\":%zu,\"cache_misses\":%zu,"
            "\"hit_rate\":%.3f,\"cache_evictions\":%zu,"
            "\"avg_hit_us\":%.2f,\"avg_miss_us\":%.2f%s}\n",
            query::backend_name(b), cap > 0 ? "on" : "off", cap, initial_n,
            num_ops, row.ops_per_sec, cs.hits, cs.misses, cs.hit_rate(),
            cs.evictions, cs.avg_hit_ns() / 1e3, cs.avg_miss_ns() / 1e3,
            completion_fields(row.stats).c_str());
      } else {
        std::printf("%-18s %-6s %14.0f %10zu %10zu %5.0f%% %7zu\n",
                    query::backend_name(b), cap > 0 ? "on" : "off",
                    row.ops_per_sec, cs.hits, cs.misses,
                    cs.hit_rate() * 100, cs.evictions);
      }
    }
  }
  emit_latency(json, "cache_zipf", section_tel);
  section_tel = query::telemetry_report{};

  if (!json) {
    bench::print_header(
        "skew drain: skewed writes, spatial stripes, 4 shards — per_shard "
        "vs stealing, rebalance off/on",
        "backend            drain     rebal            ops/s    steals/"
        "scans  rebal/moved");
  }
  auto skew_spec = make_spec(initial_n, num_ops, 0.50);
  skew_spec.dist = query::distribution::skewed;
  skew_spec.skew_frac = 0.1;  // hot cube well inside one stripe of four
  // ~64 drain groups at any PARGEO_N: queue depth on the hot lane (what
  // thieves steal from) comes from group count, not group size.
  skew_spec.batch_size = std::max<std::size_t>(64, num_ops / 64);
  for (auto b : {query::backend::kdtree, query::backend::zdtree,
                 query::backend::bdltree}) {
    for (auto mode :
         {query::drain_mode::per_shard, query::drain_mode::stealing}) {
      for (const double rebal : {0.0, 1.3}) {
        const auto row = run_skew_drain(b, mode, rebal, skew_spec);
        section_tel.merge(row.stats.telemetry);
        if (json) {
          std::printf(
              "{\"section\":\"skew_drain\",\"backend\":\"%s\","
              "\"shards\":4,\"policy\":\"spatial\",\"drain\":\"%s\","
              "\"dist\":\"skewed\",\"read_frac\":0.50,"
              "\"rebalance_threshold\":%.2f,\"initial_n\":%zu,"
              "\"num_ops\":%zu,\"ops_per_sec\":%.0f,\"steals\":%zu,"
              "\"steal_scans\":%zu,\"rebalances\":%zu,"
              "\"rebalance_moved\":%zu,\"drains\":%zu%s}\n",
              query::backend_name(b), query::drain_mode_name(mode), rebal,
              initial_n, num_ops, row.ops_per_sec, row.steals,
              row.steal_scans, row.stats.rebalances,
              row.stats.rebalance_moved, row.stats.num_drains,
              completion_fields(row.stats).c_str());
        } else {
          std::printf("%-18s %-9s %5.2f %16.0f %9zu/%-7zu %5zu/%zu\n",
                      query::backend_name(b), query::drain_mode_name(mode),
                      rebal, row.ops_per_sec, row.steals, row.steal_scans,
                      row.stats.rebalances, row.stats.rebalance_moved);
        }
      }
    }
  }
  emit_latency(json, "skew_drain", section_tel);
  section_tel = query::telemetry_report{};

  if (!json) {
    bench::print_header(
        "continuous queries: standing watches over a churn stream with "
        "25ms TTL, spatial stripes, 4 shards",
        "backend            watches            ops/s      fires  "
        "suppressed  sup%  expired  fire_p50us  fire_p99us");
  }
  for (auto b : {query::backend::kdtree, query::backend::zdtree,
                 query::backend::bdltree}) {
    for (const std::size_t nwatch : {std::size_t{8}, std::size_t{64}}) {
      const auto row =
          run_continuous_queries(b, nwatch, initial_n, num_ops);
      section_tel.merge(row.stats.telemetry);
      const auto fire =
          row.stats.telemetry.stage_hist(query::stage::watch_eval).summary();
      const std::size_t decisions =
          row.stats.watch_fires + row.stats.watch_suppressed;
      const double sup_ratio =
          decisions > 0
              ? static_cast<double>(row.stats.watch_suppressed) / decisions
              : 0;
      if (json) {
        std::printf(
            "{\"section\":\"continuous_queries\",\"backend\":\"%s\","
            "\"watches\":%zu,\"dist\":\"churn\",\"shards\":4,"
            "\"policy\":\"spatial\",\"ttl_ns\":25000000,"
            "\"initial_n\":%zu,\"num_ops\":%zu,\"ops_per_sec\":%.0f,"
            "\"watch_fires\":%zu,\"watch_suppressed\":%zu,"
            "\"suppression_ratio\":%.3f,\"expired_points\":%zu,"
            "\"fire_p50_us\":%.1f,\"fire_p99_us\":%.1f%s}\n",
            query::backend_name(b), nwatch, initial_n, num_ops,
            row.ops_per_sec, row.stats.watch_fires,
            row.stats.watch_suppressed, sup_ratio, row.stats.expired_points,
            fire.p50 / 1e3, fire.p99 / 1e3,
            completion_fields(row.stats).c_str());
      } else {
        std::printf(
            "%-18s %7zu %16.0f %10zu %11zu %4.0f%% %8zu %11.1f %11.1f\n",
            query::backend_name(b), nwatch, row.ops_per_sec,
            row.stats.watch_fires, row.stats.watch_suppressed,
            sup_ratio * 100, row.stats.expired_points, fire.p50 / 1e3,
            fire.p99 / 1e3);
      }
    }
  }
  emit_latency(json, "continuous_queries", section_tel);
  section_tel = query::telemetry_report{};

  // Part 8: telemetry overhead. Same zipf 90%-read serving workload at
  // telemetry off / stats / trace, best-of-3 to shave scheduler noise —
  // the stats row's delta vs off is the acceptance number recorded in
  // EXPERIMENTS.md (<3%).
  if (!json) {
    bench::print_header(
        "telemetry overhead: zipf 90% reads, bdltree, 2 shards — "
        "off vs stats vs trace (best of 3)",
        "telemetry             ops/s   vs off");
  }
  double off_ops = 0;
  for (auto tl : {query::telemetry_level::off, query::telemetry_level::stats,
                  query::telemetry_level::trace}) {
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto row =
          run_cache_zipf(query::backend::bdltree, 4096, initial_n, num_ops,
                         tl);
      best = std::max(best, row.ops_per_sec);
      if (tl != query::telemetry_level::off) {
        section_tel.merge(row.stats.telemetry);
      }
    }
    if (tl == query::telemetry_level::off) off_ops = best;
    const double delta_pct =
        off_ops > 0 ? (off_ops - best) / off_ops * 100 : 0;
    if (json) {
      std::printf(
          "{\"section\":\"telemetry_overhead\",\"backend\":\"bdltree\","
          "\"read_frac\":0.90,\"dist\":\"zipf\",\"shards\":2,"
          "\"initial_n\":%zu,\"num_ops\":%zu,\"telemetry\":\"%s\","
          "\"ops_per_sec\":%.0f,\"overhead_pct_vs_off\":%.2f}\n",
          initial_n, num_ops, query::telemetry_level_name(tl), best,
          delta_pct);
    } else {
      std::printf("%-12s %14.0f %7.2f%%\n", query::telemetry_level_name(tl),
                  best, delta_pct);
    }
  }
  emit_latency(json, "telemetry_overhead", section_tel);
  section_tel = query::telemetry_report{};

  // Part 9: read scaling on the replicated tier. The replicate/replay
  // stage histograms land in this section's latency rows.
  if (!json) {
    bench::print_header(
        "replication: 4 readers + 1 writer through the router, bdltree, "
        "4 shards, max_epoch_lag=2 — read ops/s vs replica count",
        "replicas        read_ops/s  reads(replica/primary/fallback)  "
        "replayed  lag");
  }
  for (const std::size_t nreps :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    const auto row = run_replication(query::backend::bdltree, nreps,
                                     /*max_lag=*/2, initial_n, num_ops);
    section_tel.merge(row.stats.telemetry);
    section_tel.merge(row.replica_tel);
    if (json) {
      std::printf(
          "{\"section\":\"replication\",\"backend\":\"bdltree\","
          "\"shards\":4,\"policy\":\"hash\",\"read_frac\":0.90,"
          "\"replicas\":%zu,\"max_epoch_lag\":2,\"initial_n\":%zu,"
          "\"num_ops\":%zu,\"read_ops_per_sec\":%.0f,"
          "\"read_requests\":%zu,\"reads_to_replicas\":%zu,"
          "\"reads_to_primary\":%zu,\"fallbacks\":%zu,"
          "\"replayed_groups\":%zu,\"replayed_records\":%zu,"
          "\"replica_lag\":%llu,\"log_epoch\":%llu%s}\n",
          nreps, initial_n, num_ops, row.read_ops_per_sec,
          row.read_requests, row.router.reads_to_replicas,
          row.router.reads_to_primary, row.router.fallbacks,
          row.replayed_groups, row.replayed_records,
          static_cast<unsigned long long>(row.replica_lag),
          static_cast<unsigned long long>(row.stats.log_epoch),
          completion_fields(row.stats).c_str());
    } else {
      std::printf("%8zu %17.0f %12zu/%zu/%-13zu %9zu %4llu\n", nreps,
                  row.read_ops_per_sec, row.router.reads_to_replicas,
                  row.router.reads_to_primary, row.router.fallbacks,
                  row.replayed_groups,
                  static_cast<unsigned long long>(row.replica_lag));
    }
  }
  emit_latency(json, "replication", section_tel);
  section_tel = query::telemetry_report{};

  // Part 10: durability. First the append+sync price per policy on a
  // write-heavy serving run, then recovery time vs checkpoint cadence
  // over the same write history.
  if (!json) {
    bench::print_header(
        "durability: 50%-read serving with durable op log, bdltree, "
        "2 shards — append+sync cost per policy",
        "sync_policy              ops/s      syncs      bytes");
  }
  // Smaller batches than the serving sections: the durability story is
  // per-commit (frame + fsync per write group), so the sweep needs enough
  // write groups for the cadences below to actually fire.
  auto dur_spec = make_spec(initial_n, num_ops, 0.50);
  dur_spec.batch_size = 256;
  struct sync_mode {
    const char* name;
    bool log_on;
    query::sync_policy sync;
  };
  const sync_mode modes[] = {
      {"off(no log)", false, query::sync_policy::none},
      {"none", true, query::sync_policy::none},
      {"interval", true, query::sync_policy::interval},
      {"every_commit", true, query::sync_policy::every_commit},
  };
  for (const auto& m : modes) {
    const std::string dir = m.log_on ? fresh_bench_dir() : std::string();
    const auto row = run_durable(m.log_on, m.sync, /*checkpoint_every=*/0,
                                 dur_spec, dir);
    section_tel.merge(row.stats.telemetry);
    if (json) {
      std::printf(
          "{\"section\":\"durability\",\"mode\":\"append\","
          "\"backend\":\"bdltree\",\"shards\":2,\"read_frac\":0.50,"
          "\"sync\":\"%s\",\"initial_n\":%zu,\"num_ops\":%zu,"
          "\"ops_per_sec\":%.0f,\"log_syncs\":%llu,\"log_bytes\":%llu%s}\n",
          m.name, initial_n, num_ops, row.ops_per_sec,
          static_cast<unsigned long long>(row.stats.log_syncs),
          static_cast<unsigned long long>(row.stats.log_bytes),
          completion_fields(row.stats).c_str());
    } else {
      std::printf("%-18s %10.0f %10llu %10llu\n", m.name, row.ops_per_sec,
                  static_cast<unsigned long long>(row.stats.log_syncs),
                  static_cast<unsigned long long>(row.stats.log_bytes));
    }
    remove_bench_dir(dir);
  }

  if (!json) {
    bench::print_header(
        "durability: recovery time vs checkpoint cadence (same write "
        "history, sync=interval) — recover() = newest checkpoint + "
        "salvaged log tail",
        "ck_every   recover_ms  recovered_epochs  checkpoints  resident");
  }
  for (const std::size_t ck_every :
       {std::size_t{0}, std::size_t{4}, std::size_t{16}}) {
    const std::string dir = fresh_bench_dir();
    const auto wrote = run_durable(true, query::sync_policy::interval,
                                   ck_every, dur_spec, dir);
    section_tel.merge(wrote.stats.telemetry);
    const auto rec = time_recovery(dir, ck_every);
    if (json) {
      std::printf(
          "{\"section\":\"durability\",\"mode\":\"recover\","
          "\"backend\":\"bdltree\",\"shards\":2,\"read_frac\":0.50,"
          "\"checkpoint_every\":%zu,\"initial_n\":%zu,\"num_ops\":%zu,"
          "\"recover_ms\":%.1f,\"recovered_epochs\":%llu,"
          "\"truncated_groups\":%llu,\"checkpoints\":%zu,"
          "\"resident\":%zu}\n",
          ck_every, initial_n, num_ops, rec.recover_ms,
          static_cast<unsigned long long>(rec.stats.recovered_epochs),
          static_cast<unsigned long long>(rec.stats.truncated_groups),
          wrote.stats.checkpoints, rec.resident);
    } else {
      std::printf("%8zu %12.1f %17llu %12zu %9zu\n", ck_every,
                  rec.recover_ms,
                  static_cast<unsigned long long>(rec.stats.recovered_epochs),
                  wrote.stats.checkpoints, rec.resident);
    }
    remove_bench_dir(dir);
  }
  emit_latency(json, "durability", section_tel);
  return 0;
}
