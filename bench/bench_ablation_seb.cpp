// Ablation bench for the SEB sampling block size (paper §4's constant c):
// too small wastes rounds, too large degenerates into full orthant scans.
#include "bench_common.h"
#include "datagen/datagen.h"
#include "seb/seb.h"

using namespace pargeo;
using namespace pargeo::bench;

int main() {
  const std::size_t n = base_n();
  print_header("Ablation: SEB sampling block size",
               "dataset / block / time / scanned");
  auto is3 = datagen::in_sphere<3>(n, 1);
  auto u2 = datagen::uniform<2>(n, 2);
  for (const std::size_t c : {100u, 500u, 1000u, 5000u, 20000u}) {
    const double t1 = time_op([&] { seb::sampling<3>(is3, 1, c); });
    std::printf("3D-IS block=%-6zu %10.2f ms scanned=%.1f%%\n", c, 1e3 * t1,
                100.0 * seb::last_sampling_scan_fraction());
    const double t2 = time_op([&] { seb::sampling<2>(u2, 1, c); });
    std::printf("2D-U  block=%-6zu %10.2f ms scanned=%.1f%%\n", c, 1e3 * t2,
                100.0 * seb::last_sampling_scan_fraction());
  }
  return 0;
}
