// Reproduces paper Figure 11: throughput (operations per second) versus
// thread count on 7D uniform data for B1 / B2 / BDL with object and
// spatial median splits:
//   (a) construction        (b) batch insertion (10 batches of 10%)
//   (c) batch deletion      (d) full k-NN, k = 5
//
// On a single-core host the sweep is {1}; the cross-implementation shape
// (BDL construction fastest, B2 updates fastest, B1/B2 k-NN fastest) is
// still measured.
#include "bdltree/baselines.h"
#include "bdltree/bdl_tree.h"
#include "bench_common.h"
#include "datagen/datagen.h"

using namespace pargeo;
using namespace pargeo::bench;
using namespace pargeo::bdltree;

namespace {

constexpr int D = 7;

template <class Tree>
double construction_throughput(const std::vector<point<D>>& pts,
                               split_policy pol) {
  const double s = time_op([&] {
    Tree t(pol);
    t.insert(pts);
  });
  return static_cast<double>(pts.size()) / s;
}

template <class Tree>
double insert_throughput(const std::vector<point<D>>& pts,
                         split_policy pol) {
  const std::size_t batch = pts.size() / 10;
  const double s = time_op([&] {
    Tree t(pol);
    for (std::size_t b = 0; b < 10; ++b) {
      std::vector<point<D>> chunk(
          pts.begin() + b * batch,
          pts.begin() + std::min(pts.size(), (b + 1) * batch));
      t.insert(chunk);
    }
  });
  return static_cast<double>(pts.size()) / s;
}

template <class Tree>
double delete_throughput(const std::vector<point<D>>& pts,
                         split_policy pol) {
  Tree t(pol);
  t.insert(pts);
  const std::size_t batch = pts.size() / 10;
  const double s = time_op([&] {
    for (std::size_t b = 0; b < 10; ++b) {
      std::vector<point<D>> chunk(
          pts.begin() + b * batch,
          pts.begin() + std::min(pts.size(), (b + 1) * batch));
      t.erase(chunk);
    }
  });
  return static_cast<double>(pts.size()) / s;
}

template <class Tree>
double knn_throughput(const std::vector<point<D>>& pts, split_policy pol) {
  Tree t(pol);
  t.insert(pts);  // single batch: balanced trees for B1/B2
  const double s = time_op([&] { t.knn(pts, 5); });
  return static_cast<double>(pts.size()) / s;
}

template <class Tree>
void sweep(const char* impl, const std::vector<point<D>>& pts,
           double (*op)(const std::vector<point<D>>&, split_policy)) {
  for (const auto [pol, polName] :
       {std::pair{split_policy::object_median, "object"},
        std::pair{split_policy::spatial_median, "spatial"}}) {
    for (const int threads : thread_sweep()) {
      scoped_threads st(threads);
      print_throughput_row(std::string(impl) + "-" + polName, threads,
                           op(pts, pol));
    }
  }
}

}  // namespace

int main() {
  const std::size_t n = base_n();
  auto pts = datagen::uniform<D>(n, 1);
  std::printf("Figure 11 reproduction (7D-U-%zu; paper used 10M)\n", n);

  print_header("(a) Construction scalability", "impl / threads / ops/s");
  sweep<b1_tree<D>>("B1", pts, construction_throughput<b1_tree<D>>);
  sweep<b2_tree<D>>("B2", pts, construction_throughput<b2_tree<D>>);
  sweep<bdl_tree<D>>("BDL", pts, construction_throughput<bdl_tree<D>>);

  print_header("(b) Insert scalability (10 batches of 10%)",
               "impl / threads / ops/s");
  sweep<b1_tree<D>>("B1", pts, insert_throughput<b1_tree<D>>);
  sweep<b2_tree<D>>("B2", pts, insert_throughput<b2_tree<D>>);
  sweep<bdl_tree<D>>("BDL", pts, insert_throughput<bdl_tree<D>>);

  print_header("(c) Delete scalability (10 batches of 10%)",
               "impl / threads / ops/s");
  sweep<b1_tree<D>>("B1", pts, delete_throughput<b1_tree<D>>);
  sweep<b2_tree<D>>("B2", pts, delete_throughput<b2_tree<D>>);
  sweep<bdl_tree<D>>("BDL", pts, delete_throughput<bdl_tree<D>>);

  print_header("(d) Data-parallel k-NN (k=5) scalability",
               "impl / threads / ops/s");
  sweep<b1_tree<D>>("B1", pts, knn_throughput<b1_tree<D>>);
  sweep<b2_tree<D>>("B2", pts, knn_throughput<b2_tree<D>>);
  sweep<bdl_tree<D>>("BDL", pts, knn_throughput<bdl_tree<D>>);
  return 0;
}
