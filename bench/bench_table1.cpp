// Reproduces paper Table 1: single-threaded time (T1), all-threads time
// (TP), and self-relative speedup for every ParGeo operation on uniform
// hypercube data. Batch-dynamic updates use batches of 10% of the input.
//
// Paper sizes: 10M points. Default here: PARGEO_N (see bench_common.h).
#include <functional>

#include "bench_common.h"
#include "pargeo.h"

using namespace pargeo;
using namespace pargeo::bench;

namespace {

void report(const char* name, const std::function<void()>& op) {
  double t1, tp;
  {
    scoped_threads st(1);
    t1 = time_op(op);
  }
  tp = time_op(op);  // all available threads
  std::printf("%-38s %10.3fs %10.3fs %8.2fx\n", name, t1, tp, t1 / tp);
}

}  // namespace

int main() {
  const std::size_t n = base_n();
  std::printf("Table 1 reproduction (n=%zu; paper used 10M on 36 cores)\n",
              n);
  std::printf("%-38s %11s %11s %9s\n", "Implementation", "T1", "TP",
              "Speedup");

  const auto u2 = datagen::uniform<2>(n, 1);
  const auto u3 = datagen::uniform<3>(n, 1);
  const auto u5 = datagen::uniform<5>(n, 1);
  const auto u7 = datagen::uniform<7>(n, 1);

  report("kd-tree Build (2d)", [&] { kdtree::tree<2> t(u2); });
  report("kd-tree Build (5d)", [&] { kdtree::tree<5> t(u5); });
  {
    kdtree::tree<2> t2(u2);
    report("kd-tree k-NN (2d, k=5)", [&] { t2.knn_batch(u2, 5); });
    const double r = std::sqrt(static_cast<double>(n)) * 0.02;
    report("kd-tree Range Search (2d)", [&] {
      par::parallel_for(
          0, u2.size(), [&](std::size_t i) { t2.range_ball(u2[i], r); },
          64);
    });
  }
  {
    const std::size_t batch = n / 10;
    report("Batch-dynamic kd-tree Construct (5d)", [&] {
      bdltree::bdl_tree<5> t;
      t.insert(u5);
    });
    bdltree::bdl_tree<5> t;
    t.insert(u5);
    std::vector<point<5>> b(u5.begin(), u5.begin() + batch);
    report("Batch-dynamic kd-tree Insert (5d)", [&] { t.insert(b); });
    report("Batch-dynamic kd-tree Delete (5d)", [&] { t.erase(b); });
  }
  {
    kdtree::tree<2> t2(u2);
    report("WSPD (2d)", [&] { wspd::decompose<2>(t2, 2.0); });
  }
  report("EMST (2d)", [&] { emst::emst<2>(u2); });
  report("Convex Hull (2d)", [&] { hull2d::divide_conquer(u2); });
  report("Convex Hull (3d)", [&] { hull3d::divide_conquer(u3); });
  report("Smallest Enclosing Ball (2d)", [&] { seb::sampling<2>(u2); });
  report("Smallest Enclosing Ball (5d)", [&] { seb::sampling<5>(u5); });
  report("Closest Pair (2d)", [&] { closestpair::closest_pair<2>(u2); });
  report("Closest Pair (3d)", [&] { closestpair::closest_pair<3>(u3); });
  report("k-NN Graph (2d, k=5)", [&] { graphgen::knn_graph(u2, 5); });
  report("Delaunay Graph (2d)", [&] { graphgen::delaunay_graph(u2); });
  report("Gabriel Graph (2d)", [&] { graphgen::gabriel_graph(u2); });
  report("beta-skeleton Graph (2d, beta=2)",
         [&] { graphgen::beta_skeleton(u2, 2.0); });
  report("Spanner (2d, t=2)", [&] { graphgen::spanner(u2, 2.0); });
  report("Morton Sort (7d)", [&] { mortonsort::morton_sort<7>(u7); });
  return 0;
}
