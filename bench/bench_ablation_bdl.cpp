// Ablation bench for the BDL-tree buffer size X (paper §5: "a constant
// that is tuned for performance"): sweeps X and reports insert and k-NN
// throughput.
#include "bdltree/bdl_tree.h"
#include "bench_common.h"
#include "datagen/datagen.h"

using namespace pargeo;
using namespace pargeo::bench;
using namespace pargeo::bdltree;

int main() {
  const std::size_t n = base_n();
  auto pts = datagen::uniform<5>(n, 1);
  const std::size_t batch = std::max<std::size_t>(1, n / 10);
  print_header("Ablation: BDL buffer size X (5D-U)",
               "X / insert time / k-NN time");
  for (const std::size_t x : {256u, 1024u, 4096u, 16384u}) {
    bdl_tree<5> t(split_policy::object_median, x);
    const double ti = time_op([&] {
      for (std::size_t off = 0; off < n; off += batch) {
        std::vector<point<5>> chunk(
            pts.begin() + off, pts.begin() + std::min(n, off + batch));
        t.insert(chunk);
      }
    });
    std::vector<point<5>> queries(pts.begin(),
                                  pts.begin() + std::min<std::size_t>(
                                                    n, 10000));
    const double tq = time_op([&] { t.knn(queries, 5); });
    std::printf("X=%-6zu insert=%8.1f ms  knn(10k)=%8.1f ms  trees=%zu\n",
                x, 1e3 * ti, 1e3 * tq, t.num_static_trees());
  }
  return 0;
}
