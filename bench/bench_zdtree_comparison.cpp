// Reproduces the paper's §6.3 Zd-tree comparison (prose, 3D-U-10M):
// construction, 10% batch insertion/deletion, and full k-NN for the
// BDL-tree versus the Morton-ordered Zd-tree. The paper reports the
// Zd-tree much faster for updates and comparable for k-NN.
#include "bdltree/bdl_tree.h"
#include "bench_common.h"
#include "datagen/datagen.h"
#include "zdtree/zdtree.h"

using namespace pargeo;
using namespace pargeo::bench;

int main() {
  const std::size_t n = base_n();
  auto pts = datagen::uniform<3>(n, 1);
  const std::size_t batch = n / 10;
  std::vector<point<3>> chunk(pts.begin(), pts.begin() + batch);

  print_header("Section 6.3: BDL-tree vs Zd-tree on 3D-U",
               "structure / operation / time");

  {
    bdltree::bdl_tree<3> t;
    print_row("BDL", "construct", 1e3 * time_op([&] {
                bdltree::bdl_tree<3> b;
                b.insert(pts);
              }));
    t.insert(pts);
    print_row("BDL", "insert 10%", 1e3 * time_op([&] { t.insert(chunk); }));
    print_row("BDL", "delete 10%", 1e3 * time_op([&] { t.erase(chunk); }));
    print_row("BDL", "k-NN (k=5)", 1e3 * time_op([&] { t.knn(pts, 5); }));
  }
  {
    zdtree::zd_tree<3> t(pts);
    print_row("Zd", "construct",
              1e3 * time_op([&] { zdtree::zd_tree<3> z(pts); }));
    print_row("Zd", "insert 10%", 1e3 * time_op([&] { t.insert(chunk); }));
    print_row("Zd", "delete 10%", 1e3 * time_op([&] { t.erase(chunk); }));
    print_row("Zd", "k-NN (k=5)", 1e3 * time_op([&] { t.knn(pts, 5); }));
  }
  return 0;
}
