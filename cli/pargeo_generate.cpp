// CLI: synthesize benchmark datasets to CSV.
//
//   pargeo_generate <kind> <dim> <n> <out.csv> [seed]
//
// kinds: uniform | insphere | onsphere | oncube | incube | visualvar |
//        seedspreader | statue (3D only)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/datagen.h"
#include "io/io.h"

using namespace pargeo;

namespace {

template <int D>
int generate(const std::string& kind, std::size_t n,
             const std::string& out, uint64_t seed) {
  std::vector<point<D>> pts;
  if (kind == "uniform") {
    pts = datagen::uniform<D>(n, seed);
  } else if (kind == "insphere") {
    pts = datagen::in_sphere<D>(n, seed);
  } else if (kind == "onsphere") {
    pts = datagen::on_sphere<D>(n, seed);
  } else if (kind == "oncube") {
    pts = datagen::on_cube<D>(n, seed);
  } else if (kind == "incube") {
    pts = datagen::in_cube<D>(n, seed);
  } else if (kind == "visualvar") {
    pts = datagen::visualvar<D>(n, seed);
  } else if (kind == "seedspreader") {
    pts = datagen::seed_spreader<D>(n, seed);
  } else if (kind == "statue") {
    if constexpr (D == 3) {
      pts = datagen::synthetic_statue(n, seed);
    } else {
      std::fprintf(stderr, "statue is 3D only\n");
      return 1;
    }
  } else {
    std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
    return 1;
  }
  io::write_csv<D>(out, pts);
  std::printf("wrote %zu %dD '%s' points to %s\n", pts.size(), D,
              kind.c_str(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <kind> <dim 2|3|5|7> <n> <out.csv> [seed]\n",
                 argv[0]);
    return 2;
  }
  const std::string kind = argv[1];
  const int dim = std::atoi(argv[2]);
  const std::size_t n = std::atoll(argv[3]);
  const std::string out = argv[4];
  const uint64_t seed = argc > 5 ? std::atoll(argv[5]) : 1;
  switch (dim) {
    case 2: return generate<2>(kind, n, out, seed);
    case 3: return generate<3>(kind, n, out, seed);
    case 5: return generate<5>(kind, n, out, seed);
    case 7: return generate<7>(kind, n, out, seed);
    default:
      std::fprintf(stderr, "unsupported dim %d\n", dim);
      return 2;
  }
}
