// CLI: run a synthetic mixed read/write workload through the query service.
//
//   pargeo_query <backend> <dim 2|3> <initial_n> <num_ops>
//                [read_frac=0.9]
//                [dist uniform|clustered|zipf|skewed|drifting|churn]
//                [batch_size=2048] [seed=1] [shards=1] [policy hash|spatial]
//                [drain single|per_shard|stealing] [cache_capacity=4096]
//                [rebalance_threshold=0]
//                [--verbose] [--telemetry off|stats|trace]
//                [--trace-out <path>] [--metrics-out <path>]
//                [--ttl <ns>] [--watches <n>]
//                [--replicas <n>] [--max-lag <epochs>]
//                [--steal-poll-ns <ns>]
//                [--log-dir <dir>] [--sync none|interval|every_commit]
//                [--checkpoint-every <groups>] [--deadline-us <us>]
//
// Flags (anywhere on the command line, stripped before positional
// parsing):
//   --verbose             print the per-shard lane table (drains, queue
//                         high-water, steals, per-shard execute
//                         percentiles) after each backend row
//   --telemetry LEVEL     off | stats (default) | trace
//   --trace-out PATH      write sampled trace spans as Chrome
//                         chrome://tracing / Perfetto JSON; implies
//                         --telemetry trace (sample 1-in-8). With
//                         backend=all the file is rewritten per backend —
//                         the last backend's trace survives.
//   --metrics-out PATH    write Prometheus text exposition of the final
//                         service counters (same overwrite rule)
//   --ttl NS              sliding-window TTL: every bootstrapped or
//                         inserted point is retired NS nanoseconds after
//                         it arrived (query/subscription docs in
//                         query_service.h). 0 (default) disables expiry.
//   --watches N           register N standing queries (alternating k-NN
//                         and box watches spread over the workload bbox)
//                         before the stream runs; their re-fire /
//                         suppression counters print after each backend
//                         row. Pair with dist=churn or --ttl to watch a
//                         moving population.
//   --replicas N          attach an op log to the primary and host N
//                         epoch-trailing read replicas (query/replica.h),
//                         routing the stream through a replica_router:
//                         writes to the primary, reads scattered across
//                         replicas under the staleness bound, with
//                         read-your-writes floors threaded batch to
//                         batch. A replication summary line (per-replica
//                         applied epoch / lag, routed-read split,
//                         fallbacks, replayed groups) prints after each
//                         backend row; --metrics-out additionally gets
//                         the replication gauges appended.
//   --max-lag EPOCHS      staleness bound for --replicas: a replica may
//                         serve reads while trailing the log head by at
//                         most this many committed write groups
//                         (default 1; 0 = fully caught-up replicas only)
//   --steal-poll-ns NS    idle-lane poll tick for drain=stealing: how
//                         long a lane waits before scanning sibling
//                         queues for work to steal (default 1000000 =
//                         1ms)
//   --log-dir DIR         durable op log: every committed write group is
//                         framed+checksummed into DIR/oplog.pgol before
//                         its tickets complete; `pargeo_query` can be
//                         killed and the directory recovered with
//                         query_service::recover (query/oplog.h,
//                         query/checkpoint.h). With backend=all each
//                         backend rewrites the directory — the last
//                         backend's state survives (same overwrite rule
//                         as --metrics-out). A durability summary line
//                         (checkpoints, syncs, bytes, shed requests)
//                         prints after each backend row.
//   --sync POLICY         fsync cadence for --log-dir: none (page cache
//                         only), interval (default; every 32 groups), or
//                         every_commit (power-loss safe, priced in
//                         EXPERIMENTS.md)
//   --checkpoint-every N  with --log-dir: write a checkpoint every N
//                         committed write groups and compact the log
//                         below it (0 = never, default). Bounds both
//                         recovery time and log size.
//   --deadline-us US      admission deadline: batches still queued US
//                         microseconds after submit are shed with
//                         timed-out completions instead of executing
//                         (0 = off). Counted in the durability summary
//                         and pargeo_deadline_expired_total.
//   --ingest MODE         submission seam: lockfree (default; bounded
//                         MPSC ring, producers CAS slots and never take
//                         the hub mutex) or mutex (the pre-ring baseline
//                         for comparison). An ingest/reclaim summary line
//                         (producer spins, snapshot versions retired /
//                         freed / in limbo, reclaim stalls, epoch lag)
//                         prints after each backend row.
//
// backend: kdtree | zdtree | bdltree | all (run every backend on the same
// stream and print one row each). The service shards the logical index
// across `shards` engines by `policy`; reads scatter/gather-merge, writes
// route to owning shards. `drain` picks the execution strategy: per-shard
// executor lanes (default; groups pipeline across shards), `stealing`
// (lanes additionally drain the deepest sibling queue when idle — the
// skew-resilient variant), or the single-drainer baseline.
// `cache_capacity` sizes the epoch-keyed hot k-NN result cache (0
// disables it). `rebalance_threshold` (> 1, spatial policy only) enables
// online stripe rebalancing when max/mean shard imbalance crosses it.
// `skewed`/`drifting` concentrate payload points in a (moving) corner
// cube — the adversarial stream for spatial stripes. Reads split 70%
// k-NN / 15% box range / 15% ball range; writes split evenly between
// inserts and erases. Prints throughput, batch-latency percentiles (a
// request's latency is its phase's wall-clock; phases complete
// together), the drain pipeline's counters (total drain groups,
// read/snapshot-path vs write groups, `lag` — read drains that retired
// after the live write epoch had already advanced past their snapshot),
// per-lane drain/steal counts, rebalance counters, and the cache's
// hit/miss/evict line. With telemetry on (the default) each backend row
// is followed by the request-lifecycle stage-latency table
// (p50/p95/p99/p999/max per stage, from query/telemetry.h).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/query_service.h"
#include "query/replica.h"
#include "query/workload.h"

using namespace pargeo;

namespace {

/// Flag options, stripped from argv before positional parsing.
struct cli_opts {
  bool verbose = false;        // per-shard lane table
  std::string trace_out;       // Chrome/Perfetto trace JSON path
  std::string metrics_out;     // Prometheus text exposition path
  std::uint64_t ttl_ns = 0;    // sliding-window point TTL, 0 = off
  std::size_t watches = 0;     // standing queries registered up front
  std::size_t replicas = 0;    // epoch-trailing read replicas, 0 = off
  std::uint64_t max_lag = 1;   // replica staleness bound (epochs)
  std::uint64_t steal_poll_ns = 0;  // stealing-lane poll tick, 0 = default
  std::string log_dir;              // durable op log directory, "" = off
  query::sync_policy sync = query::sync_policy::interval;
  std::size_t checkpoint_every = 0;  // write groups per checkpoint, 0 = never
  std::uint64_t deadline_us = 0;     // admission deadline, 0 = off
  query::ingest_mode ingest = query::ingest_mode::lockfree;
};

query::workload_spec make_spec(std::size_t initial_n, std::size_t num_ops,
                               double read_frac, query::distribution dist,
                               std::size_t batch_size, uint64_t seed) {
  auto spec = query::make_read_write_spec(initial_n, num_ops, read_frac);
  spec.batch_size = batch_size;
  spec.dist = dist;
  spec.seed = seed;
  return spec;
}

/// Indented per-stage latency table for one finished run (values us).
void print_stage_table(const query::telemetry_report& rep) {
  std::printf("  %-15s %10s %10s %10s %10s %10s %10s\n", "stage", "count",
              "p50us", "p95us", "p99us", "p999us", "maxus");
  for (std::size_t i = 0; i < query::kNumStages; ++i) {
    const auto s = rep.stages[i].summary();
    if (s.count == 0) continue;
    std::printf("  %-15s %10llu %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                query::stage_name(static_cast<query::stage>(i)),
                static_cast<unsigned long long>(s.count), s.p50 / 1e3,
                s.p95 / 1e3, s.p99 / 1e3, s.p999 / 1e3, s.max / 1e3);
  }
}

template <int D>
int run_backend(query::backend b, const query::workload_spec& spec,
                const query::service_config& base_cfg,
                const cli_opts& opts) {
  query::service_config cfg = base_cfg;
  cfg.backend = b;
  if (!opts.trace_out.empty() && cfg.telemetry != query::telemetry_level::trace) {
    cfg.telemetry = query::telemetry_level::trace;
    cfg.trace_sample = 8;  // denser than the service default for a CLI run
  }
  if (opts.steal_poll_ns > 0) cfg.steal_poll_ns = opts.steal_poll_ns;
  query::query_service<D> service(cfg);

  // Replicated read tier: attach the op log before bootstrap (the build
  // must be epoch 1), then host the trailing replicas and the router the
  // workload will flow through.
  std::shared_ptr<query::op_log<D>> log;
  std::unique_ptr<query::replica_set<D>> replicas;
  std::unique_ptr<query::replica_router<D>> router;
  if (opts.replicas > 0) {
    if (!opts.log_dir.empty()) {
      // --log-dir already attached a durable log in the ctor; the
      // replicas tail that one (attaching a second would orphan the
      // durable file).
      log = service.log();
    } else {
      log = std::make_shared<query::op_log<D>>();
      service.attach_log(log);
    }
    replicas = std::make_unique<query::replica_set<D>>(log, cfg, opts.replicas);
    router = std::make_unique<query::replica_router<D>>(service, *replicas,
                                                        log, opts.max_lag);
  }

  // Standing queries: alternate k-NN and box watches spread diagonally
  // across the workload bbox, registered before the stream so every write
  // boundary exercises the re-fire path. No-op callbacks — the service
  // counters tell the story.
  std::vector<query::watch_handle<D>> watch_handles;
  watch_handles.reserve(opts.watches);
  const double side = spec.side();
  for (std::size_t w = 0; w < opts.watches; ++w) {
    const double t = opts.watches > 1
                         ? static_cast<double>(w) / (opts.watches - 1)
                         : 0.5;
    point<D> at;
    for (int d = 0; d < D; ++d) at[d] = t * side;
    if (w % 2 == 0) {
      watch_handles.push_back(service.watch_knn(
          at, spec.k, [](const query::watch_event<D>&) {}));
    } else {
      point<D> hi;
      for (int d = 0; d < D; ++d) hi[d] = at[d] + side * 0.1;
      watch_handles.push_back(service.watch_range(
          aabb<D>(at, hi), [](const query::watch_event<D>&) {}));
    }
  }

  std::vector<query::response<D>> responses;
  query::engine_stats stats;
  if (router) {
    query::routed_executor<D, query::query_service<D>,
                           query::replica_router<D>>
        exec{service, *router};
    stats = query::run_workload<D>(exec, spec, &responses);
  } else {
    stats = query::run_workload<D>(service, spec, &responses);
  }

  // Result checksum: total hits returned, comparable across backends,
  // shard counts, drain modes, and cache settings (identical streams
  // yield identical hits).
  std::size_t hits = 0;
  for (const auto& r : responses) hits += r.points.size();

  std::vector<double> phase_ms;
  phase_ms.reserve(stats.phases.size());
  for (const auto& ph : stats.phases) phase_ms.push_back(ph.seconds * 1e3);

  service.close();
  const auto svc = service.stats();
  std::size_t lane_drains = 0, steals = 0;
  for (const auto& lane : svc.per_shard) {
    lane_drains += lane.num_drains;
    steals += lane.steals;
  }
  std::printf(
      "%-8s ops=%zu reads=%zu writes=%zu phases=%zu  %10.0f ops/s  "
      "lat p50=%.3fms p90=%.3fms p99=%.3fms  hits=%zu size=%zu  "
      "drains=%zu (r=%zu w=%zu lag=%zu lane=%zu steal=%zu)  "
      "rebal=%zu moved=%zu  cache h=%zu m=%zu (%.0f%%) ev=%zu\n",
      query::backend_name(b), stats.num_requests, stats.num_reads,
      stats.num_writes, stats.num_phases(), stats.ops_per_sec(),
      query::percentile(phase_ms, 50), query::percentile(phase_ms, 90),
      query::percentile(phase_ms, 99), hits, service.size(),
      svc.num_drains, svc.num_read_groups, svc.num_write_groups,
      svc.snapshot_lag_drains, lane_drains, steals, svc.rebalances,
      svc.rebalance_moved, svc.cache.hits, svc.cache.misses,
      svc.cache.hit_rate() * 100, svc.cache.evictions);
  std::printf(
      "  ingest=%s spins=%llu  reclaim: retired=%llu freed=%llu limbo=%llu "
      "stalls=%llu lag=%llu\n",
      query::ingest_mode_name(cfg.ingest),
      static_cast<unsigned long long>(svc.ingest_spins),
      static_cast<unsigned long long>(svc.retired_snapshots),
      static_cast<unsigned long long>(svc.reclaimed_snapshots),
      static_cast<unsigned long long>(svc.limbo_snapshots),
      static_cast<unsigned long long>(svc.reclaim_stalls),
      static_cast<unsigned long long>(svc.epoch_lag));

  if (opts.watches > 0 || cfg.point_ttl_ns > 0) {
    std::printf("  watches=%zu fires=%zu suppressed=%zu expired=%zu\n",
                svc.active_watches, svc.watch_fires, svc.watch_suppressed,
                svc.expired_points);
  }
  if (!opts.log_dir.empty() || opts.deadline_us > 0) {
    std::printf(
        "  durability: sync=%s syncs=%llu bytes=%llu checkpoints=%zu "
        "(errors=%zu) append_errors=%zu shed=%zu\n",
        query::sync_policy_name(cfg.sync),
        static_cast<unsigned long long>(svc.log_syncs),
        static_cast<unsigned long long>(svc.log_bytes), svc.checkpoints,
        svc.checkpoint_errors, svc.log_append_errors, svc.deadline_expired);
  }
  if (replicas) {
    // Let the tails drain the last committed groups so the printed lag is
    // the steady state, not a race with the final batch.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (replicas->min_applied_epoch() < log->head() &&
           !replicas->tail_failed() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto rs = router->stats();
    std::size_t replayed_groups = 0;
    for (std::size_t i = 0; i < replicas->size(); ++i) {
      replayed_groups += replicas->replica(i).stats().replayed_groups;
    }
    std::printf(
        "  replication: replicas=%zu max_lag=%llu log_epoch=%llu "
        "reads(replica=%zu primary=%zu fallbacks=%zu) writes=%zu "
        "replayed_groups=%zu\n",
        replicas->size(), static_cast<unsigned long long>(opts.max_lag),
        static_cast<unsigned long long>(log->head()), rs.reads_to_replicas,
        rs.reads_to_primary, rs.fallbacks, rs.writes, replayed_groups);
    for (std::size_t i = 0; i < replicas->size(); ++i) {
      const std::uint64_t applied = replicas->applied_epoch(i);
      const std::uint64_t head = log->head();
      std::printf("    replica %zu: applied=%llu lag=%llu\n", i,
                  static_cast<unsigned long long>(applied),
                  static_cast<unsigned long long>(head > applied
                                                      ? head - applied
                                                      : 0));
    }
    if (replicas->tail_failed()) {
      std::fprintf(stderr, "  replication: tail failed: %s\n",
                   replicas->tail_error().c_str());
    }
  }
  if (svc.telemetry.level != query::telemetry_level::off) {
    print_stage_table(svc.telemetry);
  }
  if (opts.verbose) {
    // Per-shard lane table (behind --verbose: at high shard counts this
    // is a screenful per backend).
    std::printf("  %-6s %8s %9s %8s %7s %7s %8s %10s %10s\n", "shard",
                "drains", "requests", "exec_s", "maxq", "steals", "scans",
                "exec_p50us", "exec_p99us");
    for (std::size_t s = 0; s < svc.per_shard.size(); ++s) {
      const auto& lane = svc.per_shard[s];
      query::latency_histogram exec;  // write + read execution, merged
      if (s < svc.telemetry.shards.size()) {
        exec.merge(svc.telemetry.shards[s][query::stage_index(
            query::stage::execute_write)]);
        exec.merge(svc.telemetry.shards[s][query::stage_index(
            query::stage::execute_read)]);
      }
      const auto es = exec.summary();
      std::printf("  %-6zu %8zu %9zu %8.3f %7zu %7zu %8zu %10.1f %10.1f\n",
                  s, lane.num_drains, lane.num_requests,
                  lane.execute_seconds, lane.max_queue_depth, lane.steals,
                  lane.steal_scans, es.p50 / 1e3, es.p99 / 1e3);
    }
  }
  if (!opts.trace_out.empty()) {
    if (service.dump_trace(opts.trace_out)) {
      std::printf("  trace: wrote %s\n", opts.trace_out.c_str());
    } else {
      std::fprintf(stderr, "  trace: tracing disabled, nothing written\n");
    }
  }
  if (!opts.metrics_out.empty()) {
    std::string text = query::metrics_text(svc);
    if (replicas) {
      const auto rs = router->stats();
      text += query::replication_metrics_text<D>(*replicas, *log, &rs);
    }
    if (std::FILE* f = std::fopen(opts.metrics_out.c_str(), "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("  metrics: wrote %s\n", opts.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "  metrics: cannot open %s\n",
                   opts.metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}

template <int D>
int run(const std::string& backend_arg, const query::workload_spec& spec,
        const query::service_config& cfg, const cli_opts& opts) {
  std::vector<query::backend> backends;
  if (backend_arg == "all") {
    backends = {query::backend::kdtree, query::backend::zdtree,
                query::backend::bdltree};
  } else {
    try {
      backends = {query::backend_from_string(backend_arg)};
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  std::printf(
      "workload: dim=%d initial=%zu ops=%zu dist=%s batch=%zu seed=%llu "
      "shards=%zu policy=%s drain=%s ingest=%s cache=%zu rebalance=%.2f\n",
      D, spec.initial_points, spec.num_ops,
      query::distribution_name(spec.dist), spec.batch_size,
      static_cast<unsigned long long>(spec.seed), cfg.shards,
      query::shard_policy_name(cfg.policy), query::drain_mode_name(cfg.drain),
      query::ingest_mode_name(cfg.ingest), cfg.cache_capacity,
      cfg.rebalance_threshold);
  for (auto b : backends) {
    if (const int rc = run_backend<D>(b, spec, cfg, opts)) return rc;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip flags first so they can appear anywhere; what remains is the
  // positional grammar documented in the usage string.
  cli_opts opts;
  query::telemetry_level telemetry = query::telemetry_level::stats;
  std::vector<char*> pos;
  pos.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const char* a = argv[i];
    auto value_of = [&](const char* flag) -> const char* {
      // --flag VALUE or --flag=VALUE
      const std::size_t n = std::strlen(flag);
      if (std::strncmp(a, flag, n) != 0) return nullptr;
      if (a[n] == '=') return a + n + 1;
      if (a[n] == '\0' && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (std::strcmp(a, "--verbose") == 0) {
      opts.verbose = true;
    } else if (const char* v = value_of("--trace-out")) {
      opts.trace_out = v;
    } else if (const char* v = value_of("--metrics-out")) {
      opts.metrics_out = v;
    } else if (const char* v = value_of("--telemetry")) {
      try {
        telemetry = query::telemetry_level_from_string(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (const char* v = value_of("--ttl")) {
      char* end = nullptr;
      const long long ns = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || ns < 0) {
        std::fprintf(stderr, "--ttl wants nanoseconds >= 0 (got '%s')\n", v);
        return 2;
      }
      opts.ttl_ns = static_cast<std::uint64_t>(ns);
    } else if (const char* v = value_of("--watches")) {
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n < 0) {
        std::fprintf(stderr, "--watches wants a count >= 0 (got '%s')\n", v);
        return 2;
      }
      opts.watches = static_cast<std::size_t>(n);
    } else if (const char* v = value_of("--replicas")) {
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n < 0) {
        std::fprintf(stderr, "--replicas wants a count >= 0 (got '%s')\n", v);
        return 2;
      }
      opts.replicas = static_cast<std::size_t>(n);
    } else if (const char* v = value_of("--max-lag")) {
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n < 0) {
        std::fprintf(stderr, "--max-lag wants epochs >= 0 (got '%s')\n", v);
        return 2;
      }
      opts.max_lag = static_cast<std::uint64_t>(n);
    } else if (const char* v = value_of("--steal-poll-ns")) {
      char* end = nullptr;
      const long long ns = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || ns <= 0) {
        std::fprintf(stderr, "--steal-poll-ns wants nanoseconds > 0 (got '%s')\n",
                     v);
        return 2;
      }
      opts.steal_poll_ns = static_cast<std::uint64_t>(ns);
    } else if (const char* v = value_of("--log-dir")) {
      opts.log_dir = v;
    } else if (const char* v = value_of("--sync")) {
      try {
        opts.sync = query::sync_policy_from_string(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (const char* v = value_of("--checkpoint-every")) {
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n < 0) {
        std::fprintf(stderr,
                     "--checkpoint-every wants write groups >= 0 (got '%s')\n",
                     v);
        return 2;
      }
      opts.checkpoint_every = static_cast<std::size_t>(n);
    } else if (const char* v = value_of("--ingest")) {
      try {
        opts.ingest = query::ingest_mode_from_string(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (const char* v = value_of("--deadline-us")) {
      char* end = nullptr;
      const long long us = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || us < 0) {
        std::fprintf(stderr,
                     "--deadline-us wants microseconds >= 0 (got '%s')\n", v);
        return 2;
      }
      opts.deadline_us = static_cast<std::uint64_t>(us);
    } else if (std::strncmp(a, "--", 2) == 0 && a[2] != '\0') {
      std::fprintf(stderr, "unknown flag '%s'\n", a);
      return 2;
    } else {
      pos.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(pos.size());
  argv = pos.data();

  if (argc < 5) {
    std::fprintf(
        stderr,
        "usage: %s <backend kdtree|zdtree|bdltree|all> <dim 2|3> "
        "<initial_n> <num_ops> [read_frac=0.9] "
        "[dist uniform|clustered|zipf|skewed|drifting|churn] "
        "[batch_size=2048] "
        "[seed=1] [shards=1] [policy hash|spatial] "
        "[drain single|per_shard|stealing] [cache_capacity=4096] "
        "[rebalance_threshold=0] [--verbose] "
        "[--telemetry off|stats|trace] [--trace-out path] "
        "[--metrics-out path] [--ttl ns] [--watches n] [--replicas n] "
        "[--max-lag epochs] [--steal-poll-ns ns] [--log-dir dir] "
        "[--sync none|interval|every_commit] [--checkpoint-every n] "
        "[--deadline-us us] [--ingest mutex|lockfree]\n",
        argv[0]);
    return 2;
  }
  const std::string backend_arg = argv[1];
  const int dim = std::atoi(argv[2]);
  const std::size_t initial_n = std::atoll(argv[3]);
  const std::size_t num_ops = std::atoll(argv[4]);
  const double read_frac = argc > 5 ? std::atof(argv[5]) : 0.9;
  if (read_frac < 0 || read_frac > 1) {
    std::fprintf(stderr, "read_frac must be in [0, 1]\n");
    return 2;
  }
  query::distribution dist = query::distribution::uniform;
  if (argc > 6) {
    try {
      dist = query::distribution_from_string(argv[6]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  const std::size_t batch_size = argc > 7 ? std::atoll(argv[7]) : 2048;
  const uint64_t seed = argc > 8 ? std::atoll(argv[8]) : 1;
  const long long shards_arg = argc > 9 ? std::atoll(argv[9]) : 1;
  if (shards_arg < 1) {
    std::fprintf(stderr, "shards must be >= 1\n");
    return 2;
  }
  query::service_config cfg;
  cfg.telemetry = telemetry;
  cfg.point_ttl_ns = opts.ttl_ns;
  cfg.shards = static_cast<std::size_t>(shards_arg);
  cfg.log_dir = opts.log_dir;
  cfg.sync = opts.sync;
  cfg.checkpoint_every = opts.checkpoint_every;
  cfg.deadline_ns = opts.deadline_us * 1000;
  cfg.ingest = opts.ingest;
  if (argc > 10) {
    try {
      cfg.policy = query::shard_policy_from_string(argv[10]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (argc > 11) {
    try {
      cfg.drain = query::drain_mode_from_string(argv[11]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  if (argc > 12) {
    // Strict parse: atoll would turn a typo into 0 and silently disable
    // the cache a benchmark meant to measure.
    char* end = nullptr;
    const long long cap = std::strtoll(argv[12], &end, 10);
    if (end == argv[12] || *end != '\0' || cap < 0) {
      std::fprintf(stderr,
                   "cache_capacity must be a non-negative integer (got "
                   "'%s')\n",
                   argv[12]);
      return 2;
    }
    cfg.cache_capacity = static_cast<std::size_t>(cap);
  }
  if (argc > 13) {
    char* end = nullptr;
    const double thr = std::strtod(argv[13], &end);
    if (end == argv[13] || *end != '\0' || thr < 0) {
      std::fprintf(stderr,
                   "rebalance_threshold must be a non-negative number "
                   "(got '%s'; > 1 enables, spatial policy only)\n",
                   argv[13]);
      return 2;
    }
    cfg.rebalance_threshold = thr;
  }

  const auto spec =
      make_spec(initial_n, num_ops, read_frac, dist, batch_size, seed);
  switch (dim) {
    case 2: return run<2>(backend_arg, spec, cfg, opts);
    case 3: return run<3>(backend_arg, spec, cfg, opts);
    default:
      std::fprintf(stderr, "unsupported dim %d (want 2 or 3)\n", dim);
      return 2;
  }
}
