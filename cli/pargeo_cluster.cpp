// CLI: clustering of a 2D CSV point set.
//
//   pargeo_cluster <in.csv> dbscan <eps> <minpts> [labels.csv]
//   pargeo_cluster <in.csv> singlelink <cut-height> [labels.csv]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

#include "clustering/clustering.h"
#include "core/timer.h"
#include "io/io.h"

using namespace pargeo;

namespace {

void write_labels(const std::string& path,
                  const std::vector<std::size_t>& labels) {
  std::ofstream out(path);
  for (const std::size_t l : labels) {
    if (l == clustering::kNoise) {
      out << "noise\n";
    } else {
      out << l << '\n';
    }
  }
}

void summarize(const std::vector<std::size_t>& labels) {
  std::map<std::size_t, std::size_t> sizes;
  std::size_t noise = 0;
  for (const std::size_t l : labels) {
    if (l == clustering::kNoise) {
      ++noise;
    } else {
      sizes[l]++;
    }
  }
  std::printf("%zu clusters, %zu noise points\n", sizes.size(), noise);
  std::size_t shown = 0;
  for (const auto& [id, sz] : sizes) {
    if (++shown > 5) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  cluster %zu: %zu points\n", id, sz);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <in.csv> dbscan <eps> <minpts> [labels.csv]\n"
                 "       %s <in.csv> singlelink <cut-height> [labels.csv]\n",
                 argv[0], argv[0]);
    return 2;
  }
  try {
    const auto pts = io::read_csv<2>(argv[1]);
    const std::string mode = argv[2];
    timer t;
    std::vector<std::size_t> labels;
    std::string out;
    if (mode == "dbscan") {
      if (argc < 5) {
        std::fprintf(stderr, "dbscan needs <eps> <minpts>\n");
        return 2;
      }
      labels = clustering::dbscan<2>(pts, std::atof(argv[3]),
                                     std::atoll(argv[4]));
      out = argc > 5 ? argv[5] : "";
    } else if (mode == "singlelink") {
      auto dendro = clustering::single_linkage<2>(pts);
      labels = clustering::cut_dendrogram(pts.size(), dendro,
                                          std::atof(argv[3]));
      out = argc > 4 ? argv[4] : "";
    } else {
      std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
      return 1;
    }
    std::printf("clustered %zu points in %.1f ms\n", pts.size(),
                1e3 * t.elapsed());
    summarize(labels);
    if (!out.empty()) write_labels(out, labels);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
