// CLI: spatial graph generation from a 2D CSV point set.
//
//   pargeo_graph <in.csv> <knn K | delaunay | gabriel | beta B |
//                 spanner T | emst> [out.csv]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/timer.h"
#include "emst/emst.h"
#include "graphgen/graphgen.h"
#include "io/io.h"

using namespace pargeo;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <in.csv> <knn K|delaunay|gabriel|beta B|"
                 "spanner T|emst> [out.csv]\n",
                 argv[0]);
    return 2;
  }
  try {
    const auto pts = io::read_csv<2>(argv[1]);
    const std::string kind = argv[2];
    timer t;
    graphgen::edge_list edges;
    if (kind == "knn") {
      const std::size_t k = argc > 3 ? std::atoll(argv[3]) : 5;
      auto g = graphgen::knn_graph(pts, k);
      for (std::size_t i = 0; i < g.size(); ++i) {
        for (const std::size_t j : g[i]) edges.push_back({i, j});
      }
    } else if (kind == "delaunay") {
      edges = graphgen::delaunay_graph(pts);
    } else if (kind == "gabriel") {
      edges = graphgen::gabriel_graph(pts);
    } else if (kind == "beta") {
      edges = graphgen::beta_skeleton(
          pts, argc > 3 ? std::atof(argv[3]) : 2.0);
    } else if (kind == "spanner") {
      edges = graphgen::spanner(pts, argc > 3 ? std::atof(argv[3]) : 2.0);
    } else if (kind == "emst") {
      for (const auto& e : emst::emst<2>(pts)) {
        edges.push_back({e.u, e.v});
      }
    } else {
      std::fprintf(stderr, "unknown graph kind '%s'\n", kind.c_str());
      return 1;
    }
    std::printf("%zu points -> %zu edges in %.1f ms\n", pts.size(),
                edges.size(), 1e3 * t.elapsed());
    const std::string out =
        (kind == "knn" || kind == "beta" || kind == "spanner")
            ? (argc > 4 ? argv[4] : "")
            : (argc > 3 ? argv[3] : "");
    if (!out.empty()) io::write_edges(out, edges);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
