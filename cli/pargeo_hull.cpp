// CLI: convex hull of a CSV point set.
//
//   pargeo_hull <2|3> <in.csv> [method] [out.csv]
//
// methods (2D): seq | quickhull | randinc | resquickhull | dc (default)
// methods (3D): seq | randinc | quickhull | dc (default) | pseudo
// Writes hull vertex indices (2D: CCW order; 3D: one facet per line).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/timer.h"
#include "hull/hull2d.h"
#include "hull/hull3d.h"
#include "io/io.h"

using namespace pargeo;

namespace {

int run2d(const std::string& in, const std::string& method,
          const std::string& out) {
  auto pts = io::read_csv<2>(in);
  timer t;
  std::vector<std::size_t> hull;
  if (method == "seq") {
    hull = hull2d::sequential_quickhull(pts);
  } else if (method == "quickhull") {
    hull = hull2d::quickhull(pts);
  } else if (method == "randinc") {
    hull = hull2d::randinc(pts);
  } else if (method == "resquickhull") {
    hull = hull2d::reservation_quickhull(pts);
  } else if (method == "dc") {
    hull = hull2d::divide_conquer(pts);
  } else {
    std::fprintf(stderr, "unknown 2D method '%s'\n", method.c_str());
    return 1;
  }
  std::printf("%zu points -> %zu hull vertices in %.1f ms\n", pts.size(),
              hull.size(), 1e3 * t.elapsed());
  if (!out.empty()) {
    std::ofstream o(out);
    for (const std::size_t v : hull) o << v << '\n';
  }
  return 0;
}

int run3d(const std::string& in, const std::string& method,
          const std::string& out) {
  auto pts = io::read_csv<3>(in);
  timer t;
  hull3d::mesh m;
  if (method == "seq") {
    m = hull3d::sequential_quickhull(pts);
  } else if (method == "randinc") {
    m = hull3d::randinc(pts);
  } else if (method == "quickhull") {
    m = hull3d::reservation_quickhull(pts);
  } else if (method == "dc") {
    m = hull3d::divide_conquer(pts);
  } else if (method == "pseudo") {
    m = hull3d::pseudohull(pts);
  } else {
    std::fprintf(stderr, "unknown 3D method '%s'\n", method.c_str());
    return 1;
  }
  std::printf("%zu points -> %zu facets (%zu vertices) in %.1f ms\n",
              pts.size(), m.facets.size(), hull3d::hull_vertices(m).size(),
              1e3 * t.elapsed());
  if (!out.empty()) {
    std::ofstream o(out);
    for (const auto& f : m.facets) {
      o << f[0] << ',' << f[1] << ',' << f[2] << '\n';
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <2|3> <in.csv> [method] [out.csv]\n",
                 argv[0]);
    return 2;
  }
  const int dim = std::atoi(argv[1]);
  const std::string in = argv[2];
  const std::string method = argc > 3 ? argv[3] : "dc";
  const std::string out = argc > 4 ? argv[4] : "";
  try {
    return dim == 2   ? run2d(in, method, out)
           : dim == 3 ? run3d(in, method, out)
                      : (std::fprintf(stderr, "dim must be 2 or 3\n"), 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
