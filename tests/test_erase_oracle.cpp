// Erase-path oracle (satellite of the continuous-query PR): TTL expiry
// retires points through batch_erase groups racing the regular drain
// pipeline, so the erase path needs its own adversarial coverage. An
// erase-heavy churn stream — plus deliberately nasty shapes: duplicate
// points inside one batch, erases of points that were never inserted,
// erase-then-reinsert of the same coordinate — runs through the sharded
// service with pipelined concurrent drains on every backend and drain
// mode, and every response plus the final resident set must match an
// unsharded reference engine executing the same stream sequentially.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

#include "query/query_service.h"
#include "query/workload.h"
#include "test_query_util.h"

using namespace pargeo;
using query::backend;
using query::drain_mode;
using query::shard_policy;
using testutil::expect_same_responses;

namespace {

point<2> pt(double x, double y) {
  point<2> p;
  p[0] = x;
  p[1] = y;
  return p;
}

// Runs `reqs` through a sharded service (async pipelined submits, so write
// groups drain concurrently across lanes) and through an unsharded
// reference engine sequentially, then compares every response and the
// final resident multiset.
void run_against_reference(backend b, drain_mode mode, shard_policy policy,
                           const std::vector<point<2>>& initial,
                           const std::vector<query::request<2>>& reqs) {
  query::query_engine<2> reference(query::make_index<2>(backend::kdtree));
  reference.bootstrap(initial);
  const auto want = reference.execute(reqs);

  query::service_config cfg;
  cfg.backend = b;
  cfg.drain = mode;
  cfg.shards = 4;
  cfg.policy = policy;
  query::query_service<2> service(cfg);
  service.bootstrap(initial);

  // Pipelined submission: keep many batches in flight at once so erase
  // groups execute concurrently across shard lanes, but from one thread
  // so the global submission order (and therefore the oracle comparison)
  // stays well defined.
  const std::size_t batch = 64;
  std::vector<query::completion<2>> inflight;
  for (std::size_t off = 0; off < reqs.size(); off += batch) {
    const std::size_t end = std::min(reqs.size(), off + batch);
    inflight.push_back(service.submit(
        std::vector<query::request<2>>(reqs.begin() + off,
                                       reqs.begin() + end)));
  }
  std::vector<query::response<2>> got;
  for (auto& c : inflight) {
    auto r = c.get();
    got.insert(got.end(), std::make_move_iterator(r.responses.begin()),
               std::make_move_iterator(r.responses.end()));
  }
  expect_same_responses<2>(reqs, got, want.responses);

  auto have = service.gather();
  auto expect = reference.index().gather();
  std::sort(have.begin(), have.end());
  std::sort(expect.begin(), expect.end());
  ASSERT_EQ(have.size(), expect.size());
  ASSERT_EQ(have, expect);
}

class EraseOracle
    : public ::testing::TestWithParam<std::tuple<backend, drain_mode>> {};

// Erase-heavy churn: departures outnumber arrivals, so the stream keeps
// erasing points that recently existed (the FIFO-churn order TTL expiry
// retires them in), interleaved with enough reads to catch a stale or
// double-freed slot immediately.
TEST_P(EraseOracle, EraseHeavyChurnMatchesReference) {
  auto spec = query::make_churn_spec(600, 2000, 0.20, 0.30);
  spec.seed = 11;
  auto initial = query::make_initial<2>(spec);
  const auto reqs = query::make_requests<2>(spec, initial);
  run_against_reference(std::get<0>(GetParam()), std::get<1>(GetParam()),
                        shard_policy::hash, initial, reqs);
}

// Same stream under spatial striping: erases must route to the owner
// stripe, and a mis-route would strand the point (caught by the final
// gather comparison).
TEST_P(EraseOracle, EraseHeavyChurnSpatialPolicy) {
  auto spec = query::make_churn_spec(600, 1500, 0.25, 0.35);
  spec.seed = 13;
  auto initial = query::make_initial<2>(spec);
  const auto reqs = query::make_requests<2>(spec, initial);
  run_against_reference(std::get<0>(GetParam()), std::get<1>(GetParam()),
                        shard_policy::spatial, initial, reqs);
}

// Duplicate coordinates inside one batch — inserted twice, erased once,
// erased again, re-inserted — plus erases of points that never existed.
// The service must agree with the reference on every intermediate read
// and on what survives.
TEST_P(EraseOracle, DuplicateAndMissingPointEdgeCases) {
  std::vector<point<2>> initial;
  for (int i = 0; i < 64; ++i) initial.push_back(pt(i % 8, i / 8));

  std::vector<query::request<2>> reqs;
  const aabb<2> everything(pt(-100, -100), pt(100, 100));
  const auto probe = [&] {
    reqs.push_back(query::request<2>::make_range(everything));
    reqs.push_back(query::request<2>::make_knn(pt(3.5, 3.5), 12));
  };

  // Duplicate inserts of a coordinate that already exists, then erase it.
  reqs.push_back(query::request<2>::make_insert(pt(3, 3)));
  reqs.push_back(query::request<2>::make_insert(pt(3, 3)));
  probe();
  reqs.push_back(query::request<2>::make_erase(pt(3, 3)));
  probe();
  reqs.push_back(query::request<2>::make_erase(pt(3, 3)));
  probe();

  // Erase points that were never inserted (inside and outside the bbox).
  reqs.push_back(query::request<2>::make_erase(pt(3.25, 3.25)));
  reqs.push_back(query::request<2>::make_erase(pt(-50, 99)));
  probe();

  // Erase-then-reinsert the same coordinate within one batch window.
  reqs.push_back(query::request<2>::make_erase(pt(5, 5)));
  reqs.push_back(query::request<2>::make_insert(pt(5, 5)));
  probe();

  // A batch that erases the same missing point many times over.
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(query::request<2>::make_erase(pt(42, 42)));
  }
  probe();

  run_against_reference(std::get<0>(GetParam()), std::get<1>(GetParam()),
                        shard_policy::hash, initial, reqs);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, EraseOracle,
    ::testing::Combine(::testing::Values(backend::kdtree, backend::zdtree,
                                         backend::bdltree),
                       ::testing::Values(drain_mode::per_shard,
                                         drain_mode::single,
                                         drain_mode::stealing)),
    [](const auto& info) {
      return std::string(query::backend_name(std::get<0>(info.param))) + "_" +
             query::drain_mode_name(std::get<1>(info.param));
    });

}  // namespace
