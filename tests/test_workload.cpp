// Unit tests for the workload driver (layer 3) and the percentile helper:
// stream determinism (same seed => same stream), seed sensitivity, zipf key
// reuse, spec validation, and percentile edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "query/workload.h"

using namespace pargeo;
using query::op;

TEST(Percentile, EmptyInputIsZero) {
  EXPECT_EQ(query::percentile({}, 50), 0.0);
}

TEST(Percentile, SingleElementForAnyP) {
  for (double p : {-50.0, 0.0, 0.001, 50.0, 99.9, 100.0, 250.0}) {
    EXPECT_EQ(query::percentile({7.5}, p), 7.5) << "p=" << p;
  }
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_EQ(query::percentile(v, -10), query::percentile(v, 0));
  EXPECT_EQ(query::percentile(v, 0), 1.0);
  EXPECT_EQ(query::percentile(v, 250), query::percentile(v, 100));
  EXPECT_EQ(query::percentile(v, 100), 4.0);
}

TEST(Percentile, NearestRankOnSortedInput) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  // Nearest-rank: ceil(p/100 * n) with rank 0 mapped to the minimum.
  EXPECT_EQ(query::percentile(v, 25), 1.0);
  EXPECT_EQ(query::percentile(v, 50), 2.0);
  EXPECT_EQ(query::percentile(v, 75), 3.0);
  EXPECT_EQ(query::percentile(v, 90), 4.0);
  EXPECT_EQ(query::percentile(v, 1), 1.0);
}

TEST(Percentile, NanPMeansMedian) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(query::percentile(v, nan), query::percentile(v, 50));
}

TEST(Workload, DeterministicStreams) {
  query::workload_spec spec;
  spec.initial_points = 200;
  spec.num_ops = 500;
  spec.dist = query::distribution::zipf;
  const auto a = query::make_requests<2>(spec);
  const auto b = query::make_requests<2>(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].p, b[i].p);
    EXPECT_EQ(a[i].k, b[i].k);
    EXPECT_EQ(a[i].radius, b[i].radius);
  }
  spec.seed = 99;
  const auto c = query::make_requests<2>(spec);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].kind != c[i].kind || !(a[i].p == c[i].p);
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, DeterministicAcrossDistributions) {
  // Every distribution is a pure function of (spec, seed).
  for (auto dist : {query::distribution::uniform,
                    query::distribution::clustered,
                    query::distribution::zipf}) {
    query::workload_spec spec;
    spec.initial_points = 100;
    spec.num_ops = 300;
    spec.dist = dist;
    const auto a = query::make_requests<3>(spec);
    const auto b = query::make_requests<3>(spec);
    ASSERT_EQ(a.size(), b.size()) << query::distribution_name(dist);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].kind, b[i].kind) << query::distribution_name(dist);
      ASSERT_EQ(a[i].p, b[i].p) << query::distribution_name(dist);
    }
  }
}

TEST(Workload, ZipfReusesHotKeys) {
  query::workload_spec spec;
  spec.initial_points = 100;
  spec.num_ops = 2000;
  spec.dist = query::distribution::zipf;
  const auto reqs = query::make_requests<2>(spec);
  // Skewed key reuse must produce repeated payload points.
  std::map<point<2>, std::size_t> freq;
  for (const auto& r : reqs) ++freq[r.p];
  std::size_t max_freq = 0;
  for (const auto& [p, f] : freq) max_freq = std::max(max_freq, f);
  EXPECT_GT(max_freq, 5u);
  // Mix respects the spec's fractions roughly (knn dominates by default).
  std::size_t knn = 0;
  for (const auto& r : reqs) knn += r.kind == op::knn ? 1 : 0;
  EXPECT_GT(knn, reqs.size() / 3);
}

TEST(Workload, AllZeroFractionsThrow) {
  query::workload_spec spec;
  spec.insert_frac = spec.erase_frac = 0;
  spec.knn_frac = spec.range_frac = spec.ball_frac = 0;
  spec.num_ops = 10;
  EXPECT_THROW(query::make_requests<2>(spec), std::invalid_argument);
}
