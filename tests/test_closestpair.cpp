// Tests for closest pair and bichromatic closest pair vs brute force.
#include <gtest/gtest.h>

#include "closestpair/closestpair.h"
#include "datagen/datagen.h"
#include "test_util.h"

using namespace pargeo;

struct CpParam {
  int dim;
  int dist;
  std::size_t n;
};

class ClosestPairSweep : public ::testing::TestWithParam<CpParam> {};

template <int D>
void run_cp(int dist, std::size_t n) {
  std::vector<point<D>> pts;
  switch (dist) {
    case 0: pts = datagen::uniform<D>(n, 31); break;
    case 1: pts = datagen::in_sphere<D>(n, 32); break;
    default: pts = datagen::visualvar<D>(n, 33); break;
  }
  auto r = closestpair::closest_pair<D>(pts);
  EXPECT_NE(r.i, r.j);
  EXPECT_EQ(r.dist_sq, pts[r.i].dist_sq(pts[r.j]));
  EXPECT_EQ(r.dist_sq, testutil::brute_closest_pair(pts));
}

TEST_P(ClosestPairSweep, MatchesBruteForce) {
  const auto p = GetParam();
  switch (p.dim) {
    case 2: run_cp<2>(p.dist, p.n); break;
    case 3: run_cp<3>(p.dist, p.n); break;
    case 5: run_cp<5>(p.dist, p.n); break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimDistSize, ClosestPairSweep,
    ::testing::Values(CpParam{2, 0, 2000}, CpParam{2, 2, 2000},
                      CpParam{3, 0, 1500}, CpParam{3, 1, 1500},
                      CpParam{5, 0, 800}, CpParam{2, 0, 10},
                      CpParam{3, 2, 50}),
    [](const ::testing::TestParamInfo<CpParam>& info) {
      return "d" + std::to_string(info.param.dim) + "_dist" +
             std::to_string(info.param.dist) + "_n" +
             std::to_string(info.param.n);
    });

TEST(ClosestPair, DuplicatePointsGiveZero) {
  auto pts = datagen::uniform<2>(500, 41);
  pts.push_back(pts[123]);
  auto r = closestpair::closest_pair<2>(pts);
  EXPECT_EQ(r.dist_sq, 0.0);
  EXPECT_EQ(pts[r.i], pts[r.j]);
  EXPECT_NE(r.i, r.j);
}

TEST(ClosestPair, TwoPoints) {
  std::vector<point<2>> pts{point<2>{{0, 0}}, point<2>{{3, 4}}};
  auto r = closestpair::closest_pair<2>(pts);
  EXPECT_DOUBLE_EQ(r.dist_sq, 25.0);
}

TEST(Bccp, MatchesBruteForce) {
  auto red = datagen::uniform<2>(800, 51);
  auto blue = datagen::uniform<2>(700, 52);
  auto r = closestpair::bichromatic_closest_pair<2>(red, blue);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& a : red) {
    for (const auto& b : blue) best = std::min(best, a.dist_sq(b));
  }
  EXPECT_EQ(r.dist_sq, best);
  EXPECT_EQ(r.dist_sq, red[r.i].dist_sq(blue[r.j]));
}

TEST(Bccp, SeparatedClusters) {
  auto red = datagen::uniform<3>(500, 53);
  auto blue = datagen::uniform<3>(500, 54);
  for (auto& p : blue) p[0] += 1e6;  // far apart
  auto r = closestpair::bichromatic_closest_pair<3>(red, blue);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& a : red) {
    for (const auto& b : blue) best = std::min(best, a.dist_sq(b));
  }
  EXPECT_EQ(r.dist_sq, best);
}

TEST(Bccp, NodesPrimitiveOnWspdPair) {
  auto pts = datagen::uniform<2>(1000, 55);
  kdtree::tree<2> t(pts);
  // Two sibling subtrees of the root: their BCCP must match brute force
  // over the two ranges.
  const auto* root = t.root();
  ASSERT_FALSE(root->is_leaf());
  auto r = closestpair::bccp_nodes<2>(t, root->left, root->right);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = root->left->lo; i < root->left->hi; ++i) {
    for (std::size_t j = root->right->lo; j < root->right->hi; ++j) {
      best = std::min(best, t.point_at(i).dist_sq(t.point_at(j)));
    }
  }
  EXPECT_EQ(r.dist_sq, best);
  EXPECT_EQ(pts[r.i].dist_sq(pts[r.j]), best);
}
