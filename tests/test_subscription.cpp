// Continuous-query subsystem tests (query/subscription.h +
// query_service integration): registry-level delivery discipline
// (boundary reordering, delta suppression, exactly-once, self-cancel),
// the end-to-end watch lifecycle on the service (fires carry fresh
// post-drain results, stripe-pruned and delta-suppressed boundaries
// count as suppressed without firing, dropped handles never fire), TTL
// expiry under a fake clock (idle sweeps, expiry-driven re-fires,
// expired_points accounting), and a randomized interleaving oracle on
// every backend: each fire's rows must match a fresh query against an
// unsharded reference mirroring the exact write/expiry sequence, with
// fires + suppressions accounting for exactly one decision per watch
// per committed write boundary. TSan-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "query/query_service.h"
#include "query/subscription.h"
#include "query/workload.h"
#include "test_query_util.h"

using namespace pargeo;
using query::backend;
using query::drain_mode;
using query::op;
using query::shard_policy;

namespace {

// Spins until `done()` holds (watch delivery is asynchronous), failing
// the test after a generous timeout instead of hanging it.
template <class Pred>
void wait_until(const Pred& done, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Thread-safe capture of one watch's event stream.
struct capture {
  std::mutex mu;
  std::size_t fires = 0;
  std::uint64_t last_seq = 0;
  std::vector<point<2>> last;

  query::watch_registry<2>::callback_t cb() {
    return [this](const query::watch_event<2>& ev) {
      std::lock_guard<std::mutex> lk(mu);
      ++fires;
      last_seq = ev.sequence;
      last = ev.points;
    };
  }
  std::size_t fire_count() {
    std::lock_guard<std::mutex> lk(mu);
    return fires;
  }
  std::vector<point<2>> last_rows() {
    std::lock_guard<std::mutex> lk(mu);
    return last;
  }
};

point<2> pt(double x, double y) {
  point<2> p;
  p[0] = x;
  p[1] = y;
  return p;
}

// service.size()/gather() are quiescent-callers-only; while TTL sweeps
// may be draining, the resident set must be read through the service's
// own synchronized read path instead. A full-range box query is ordered
// after every committed boundary the drain pipeline has retired.
std::vector<point<2>> live_rows(query::query_service<2>& service) {
  aabb<2> everything(pt(-1e9, -1e9), pt(1e9, 1e9));
  auto res = service.execute({query::request<2>::make_range(everything)});
  return res.responses.at(0).points;
}

std::size_t live_size(query::query_service<2>& service) {
  return live_rows(service).size();
}

// ---- registry-level tests (no service) ------------------------------------

TEST(WatchRegistry, DeliversBoundariesInSequenceOrder) {
  auto reg = std::make_shared<query::watch_registry<2>>();
  capture cap;
  std::vector<std::uint64_t> seq_order;
  std::mutex order_mu;
  const std::uint64_t id =
      reg->add(query::request<2>::make_knn(pt(0, 0), 2),
               [&](const query::watch_event<2>& ev) {
                 std::lock_guard<std::mutex> lk(order_mu);
                 seq_order.push_back(ev.sequence);
               });

  std::vector<std::pair<std::uint64_t, query::request<2>>> affected;
  const auto always = [](const query::request<2>&) { return true; };
  const std::uint64_t s1 = reg->collect_affected(always, affected);
  const std::uint64_t s2 = reg->collect_affected(always, affected);
  const std::uint64_t s3 = reg->collect_affected(always, affected);
  ASSERT_EQ(s1, 1u);
  ASSERT_EQ(s2, 2u);
  ASSERT_EQ(s3, 3u);

  // Deliver out of order with distinct rows: callbacks must still observe
  // boundary order 1, 2, 3.
  using rows_t = std::vector<std::pair<std::uint64_t, std::vector<point<2>>>>;
  reg->deliver(s3, rows_t{{id, {pt(3, 3)}}});   // buffered
  reg->deliver(s2, rows_t{{id, {pt(2, 2)}}});   // buffered
  reg->deliver(s1, rows_t{{id, {pt(1, 1)}}});   // releases all three
  {
    std::lock_guard<std::mutex> lk(order_mu);
    ASSERT_EQ(seq_order, (std::vector<std::uint64_t>{1, 2, 3}));
  }
  const auto st = reg->stats();
  EXPECT_EQ(st.fires, 3u);
  EXPECT_EQ(st.evals, 3u);
}

TEST(WatchRegistry, DeltaSuppressionSkipsIdenticalRows) {
  auto reg = std::make_shared<query::watch_registry<2>>();
  capture cap;
  const std::uint64_t id =
      reg->add(query::request<2>::make_knn(pt(0, 0), 1), cap.cb());
  std::vector<std::pair<std::uint64_t, query::request<2>>> affected;
  const auto always = [](const query::request<2>&) { return true; };
  using rows_t = std::vector<std::pair<std::uint64_t, std::vector<point<2>>>>;

  reg->deliver(reg->collect_affected(always, affected),
               rows_t{{id, {pt(1, 1)}}});
  EXPECT_EQ(cap.fire_count(), 1u);  // first evaluation always fires
  reg->deliver(reg->collect_affected(always, affected),
               rows_t{{id, {pt(1, 1)}}});
  EXPECT_EQ(cap.fire_count(), 1u);  // identical rows: suppressed
  EXPECT_EQ(reg->stats().suppressed, 1u);
  reg->deliver(reg->collect_affected(always, affected),
               rows_t{{id, {pt(2, 2)}}});
  EXPECT_EQ(cap.fire_count(), 2u);  // changed rows fire again
}

TEST(WatchRegistry, PrunedWatchesCountSuppressed) {
  auto reg = std::make_shared<query::watch_registry<2>>();
  capture cap;
  reg->add(query::request<2>::make_knn(pt(0, 0), 1), cap.cb());
  std::vector<std::pair<std::uint64_t, query::request<2>>> affected;
  const std::uint64_t seq = reg->collect_affected(
      [](const query::request<2>&) { return false; }, affected);
  EXPECT_EQ(seq, 0u);  // nothing to deliver
  EXPECT_TRUE(affected.empty());
  EXPECT_EQ(reg->stats().suppressed, 1u);
  EXPECT_EQ(cap.fire_count(), 0u);
}

TEST(WatchRegistry, CancelFromInsideOwnCallback) {
  auto reg = std::make_shared<query::watch_registry<2>>();
  auto handle = std::make_shared<query::watch_handle<2>>();
  std::atomic<int> fires{0};
  const std::uint64_t id = reg->add(
      query::request<2>::make_knn(pt(0, 0), 1),
      [&](const query::watch_event<2>&) {
        ++fires;
        handle->cancel();  // self-cancel must not deadlock
      });
  *handle = query::watch_handle<2>(reg, id);
  std::vector<std::pair<std::uint64_t, query::request<2>>> affected;
  const auto always = [](const query::request<2>&) { return true; };
  using rows_t = std::vector<std::pair<std::uint64_t, std::vector<point<2>>>>;
  reg->deliver(reg->collect_affected(always, affected),
               rows_t{{id, {pt(1, 1)}}});
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(reg->active(), 0u);
  // A later boundary must not fire the cancelled watch.
  const std::uint64_t seq = reg->collect_affected(always, affected);
  EXPECT_EQ(seq, 0u);  // no alive watches -> no boundary
  EXPECT_EQ(fires.load(), 1);
}

// ---- service integration --------------------------------------------------

TEST(QueryServiceWatch, FireCarriesFreshResultsAndSuppressedElsewise) {
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;
  query::query_service<2> service(cfg);
  service.bootstrap({pt(10, 10), pt(20, 20)});

  capture cap;
  auto handle = service.watch_knn(pt(0, 0), 2, cap.cb());
  EXPECT_EQ(service.stats().active_watches, 1u);

  // First affecting boundary: fires with the initial result.
  service.execute({query::request<2>::make_insert(pt(1, 1))});
  wait_until([&] { return cap.fire_count() == 1; }, "initial fire");
  {
    const auto rows = cap.last_rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], pt(1, 1));  // canonical: nearest first
  }

  // A closer point changes the result: exactly one more fire.
  service.execute({query::request<2>::make_insert(pt(0.5, 0.5))});
  wait_until([&] { return cap.fire_count() == 2; }, "second fire");
  {
    const auto rows = cap.last_rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], pt(0.5, 0.5));
    EXPECT_EQ(rows[1], pt(1, 1));
  }

  // A write that cannot change the top-2: evaluated (hash policy scatters
  // k-NN everywhere) but delta-suppressed — no third fire.
  const std::size_t suppressed_before = service.stats().watch_suppressed;
  service.execute({query::request<2>::make_insert(pt(50, 50))});
  wait_until(
      [&] { return service.stats().watch_suppressed > suppressed_before; },
      "delta suppression");
  EXPECT_EQ(cap.fire_count(), 2u);
}

TEST(QueryServiceWatch, EvaluationProbesResultCache) {
  // Watch re-evaluation goes through the result cache like any other
  // read: two identical standing queries evaluated at the same boundary
  // must share one backend probe per shard, surfaced as watch_cache_hits.
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;  // cache_capacity default: cache on
  query::query_service<2> service(cfg);
  std::vector<point<2>> boot;
  for (int i = 0; i < 16; ++i) boot.push_back(pt(i, i));
  service.bootstrap(boot);

  capture a;
  capture b;
  auto h1 = service.watch_knn(pt(0, 0), 2, a.cb());
  auto h2 = service.watch_knn(pt(0, 0), 2, b.cb());

  service.execute({query::request<2>::make_insert(pt(0.5, 0.5))});
  wait_until([&] { return a.fire_count() >= 1 && b.fire_count() >= 1; },
             "both identical watches fire");
  wait_until([&] { return service.stats().watch_cache_hits >= 1; },
             "duplicate watch rows served from the result cache");
  // Both watches saw the same (fresh) answer.
  EXPECT_EQ(a.last_rows(), b.last_rows());
}

TEST(QueryServiceWatch, DisjointWriteStreamIsPrunedAndNeverFires) {
  // Spatial policy: stripes carved from the bootstrap set; the watch box
  // lives entirely in the left stripes while every write lands far right,
  // so schedule-time stripe pruning suppresses without ever evaluating.
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 4;
  cfg.policy = shard_policy::spatial;
  query::query_service<2> service(cfg);
  std::vector<point<2>> boot;
  for (int i = 0; i < 256; ++i) {
    boot.push_back(pt(i % 16, i / 16));  // [0,16)^2 carves the stripes
  }
  service.bootstrap(boot);

  capture cap;
  aabb<2> box(pt(0, 0), pt(1, 15));  // leftmost stripe only
  auto handle = service.watch_range(box, cap.cb());

  for (int i = 0; i < 8; ++i) {
    service.execute({query::request<2>::make_insert(pt(15.5, i))});
  }
  wait_until([&] { return service.stats().watch_suppressed >= 8; },
             "stripe-pruned suppressions");
  EXPECT_EQ(cap.fire_count(), 0u);
  EXPECT_EQ(service.stats().watch_fires, 0u);
}

TEST(QueryServiceWatch, DroppedHandleNeverFires) {
  query::service_config cfg;
  cfg.backend = backend::zdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;
  query::query_service<2> service(cfg);
  service.bootstrap({pt(5, 5)});

  capture dropped, kept;
  {
    auto h = service.watch_knn(pt(0, 0), 1, dropped.cb());
    h.cancel();
  }
  {
    // Scope exit drops this one without an explicit cancel.
    auto h = service.watch_knn(pt(1, 1), 1, dropped.cb());
  }
  auto h_kept = service.watch_knn(pt(2, 2), 1, kept.cb());
  EXPECT_EQ(service.stats().active_watches, 1u);

  service.execute({query::request<2>::make_insert(pt(0.1, 0.1))});
  wait_until([&] { return kept.fire_count() == 1; }, "kept watch fires");
  EXPECT_EQ(dropped.fire_count(), 0u);
}

TEST(QueryServiceWatch, ExactlyOncePerAffectingBoundary) {
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;
  query::query_service<2> service(cfg);
  service.bootstrap({pt(100, 100)});

  capture cap;
  auto handle = service.watch_knn(pt(0, 0), 8, cap.cb());

  // Each boundary inserts a strictly closer point, so every boundary
  // changes the k-NN result: fires must track boundaries one to one.
  const int boundaries = 10;
  for (int i = 0; i < boundaries; ++i) {
    const double c = 50.0 - i;
    service.execute({query::request<2>::make_insert(pt(c, c))});
    wait_until([&] { return cap.fire_count() == std::size_t(i + 1); },
               "one fire per boundary");
    // Never more than one fire per committed boundary.
    ASSERT_EQ(cap.fire_count(), std::size_t(i + 1));
  }
  const auto st = service.stats();
  EXPECT_EQ(st.watch_fires, std::size_t(boundaries));
  EXPECT_EQ(st.watch_suppressed, 0u);
}

// ---- TTL expiry -----------------------------------------------------------

TEST(QueryServiceTtl, IdleSweepRetiresExpiredPoints) {
  auto clock = std::make_shared<std::atomic<std::uint64_t>>(1);
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;
  cfg.point_ttl_ns = 1000;
  cfg.ttl_now = [clock] { return clock->load(); };
  query::query_service<2> service(cfg);
  std::vector<point<2>> boot;
  for (int i = 0; i < 64; ++i) boot.push_back(pt(i, i));
  service.bootstrap(boot);
  ASSERT_EQ(service.size(), 64u);

  // No traffic at all: the idle drainer timer must run the sweep.
  clock->store(2000);
  wait_until([&] { return service.stats().expired_points >= 64; },
             "idle TTL sweep");
  wait_until([&] { return live_size(service) == 0; }, "points retired");
}

TEST(QueryServiceTtl, InsertsExpireAfterTheirOwnWindow) {
  auto clock = std::make_shared<std::atomic<std::uint64_t>>(1);
  query::service_config cfg;
  cfg.backend = backend::bdltree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;
  cfg.point_ttl_ns = 1000;
  cfg.ttl_now = [clock] { return clock->load(); };
  query::query_service<2> service(cfg);
  service.bootstrap({pt(1, 1)});  // deadline ~1001

  clock->store(500);
  service.execute({query::request<2>::make_insert(pt(2, 2))});  // ~1500
  clock->store(1200);  // bootstrap point due, insert not yet
  wait_until([&] { return service.stats().expired_points >= 1; },
             "first window expires");
  wait_until([&] { return live_size(service) == 1; }, "one point left");
  EXPECT_EQ(live_rows(service), (std::vector<point<2>>{pt(2, 2)}));

  clock->store(2000);
  wait_until([&] { return live_size(service) == 0; },
             "second window expires");
  EXPECT_GE(service.stats().expired_points, 2u);
}

TEST(QueryServiceTtl, ExpiryBoundaryRefiresWatches) {
  auto clock = std::make_shared<std::atomic<std::uint64_t>>(1);
  query::service_config cfg;
  cfg.backend = backend::kdtree;
  cfg.shards = 2;
  cfg.policy = shard_policy::hash;
  cfg.point_ttl_ns = 1000;
  cfg.ttl_now = [clock] { return clock->load(); };
  query::query_service<2> service(cfg);
  service.bootstrap({pt(1, 1), pt(2, 2)});

  capture cap;
  aabb<2> box(pt(0, 0), pt(3, 3));
  auto handle = service.watch_range(box, cap.cb());

  // Advance past the window with no client traffic: the expiry group is
  // itself a write boundary, so the watch fires with the emptied region.
  clock->store(5000);
  wait_until([&] { return live_size(service) == 0; }, "expiry retires all");
  wait_until(
      [&] { return cap.fire_count() >= 1 && cap.last_rows().empty(); },
      "expiry-driven fire with empty region");
}

// ---- randomized interleaving oracle ---------------------------------------

// Randomized interleaving of writes, expiries, and watch registrations on
// a sharded service vs an unsharded reference engine mirroring the exact
// same sequence. After every committed boundary the affected watches'
// fires must match a fresh query against the reference (k-NN compared as
// distance sequences — equidistant ties across shard boundaries — ranges
// as exact sorted multisets), and fires + suppressions must account for
// exactly one decision per alive watch per boundary. The TTL clock stays
// frozen through the write stream (so boundary accounting is exact), then
// one final advance expires the whole population and must re-fire every
// watch with the emptied region.
void run_watch_oracle(backend b, drain_mode mode) {
  auto clock = std::make_shared<std::atomic<std::uint64_t>>(1);
  query::service_config cfg;
  cfg.backend = b;
  cfg.drain = mode;
  cfg.shards = 4;
  cfg.policy = shard_policy::spatial;
  cfg.point_ttl_ns = 1u << 20;  // far future until the final advance
  cfg.ttl_now = [clock] { return clock->load(); };
  query::query_service<2> service(cfg);

  query::query_engine<2> reference(query::make_index<2>(backend::kdtree));

  auto spec = query::make_churn_spec(300, 600, 0.5, 0.5);
  spec.seed = 7;  // write-only churn; the reads are the watches themselves
  auto initial = query::make_initial<2>(spec);
  service.bootstrap(initial);
  reference.bootstrap(initial);
  const auto reqs = query::make_requests<2>(spec, std::move(initial));
  const double side = spec.side();

  // Standing queries: three k-NN watches and two boxes, spread so stripe
  // pruning actually prunes some boundaries.
  struct watched {
    query::request<2> query;
    std::shared_ptr<capture> cap;
    query::watch_handle<2> handle;
  };
  std::vector<watched> watches;
  const auto add_knn = [&](point<2> q, std::size_t k) {
    auto c = std::make_shared<capture>();
    watches.push_back(
        {query::request<2>::make_knn(q, k), c,
         service.watch_knn(q, k, c->cb())});
  };
  const auto add_box = [&](aabb<2> box) {
    auto c = std::make_shared<capture>();
    watches.push_back(
        {query::request<2>::make_range(box), c,
         service.watch_range(box, c->cb())});
  };
  add_knn(pt(side * 0.2, side * 0.2), 5);
  add_knn(pt(side * 0.8, side * 0.8), 3);
  add_box(aabb<2>(pt(0, 0), pt(side * 0.3, side * 0.3)));
  add_box(aabb<2>(pt(side * 0.6, 0), pt(side, side)));
  add_knn(pt(side * 0.5, side * 0.5), 9);
  const std::size_t W = watches.size();

  // Phase A — the write stream, one batch per boundary, clock frozen so
  // no expiry boundary can interleave with the accounting.
  const std::size_t batch = 40;
  std::size_t boundaries = 0;
  for (std::size_t off = 0; off < reqs.size(); off += batch) {
    const std::size_t end = std::min(reqs.size(), off + batch);
    std::vector<query::request<2>> chunk(reqs.begin() + off,
                                         reqs.begin() + end);
    reference.execute(chunk);
    service.execute(std::move(chunk));
    ++boundaries;
    // Every decision is observable: fires + suppressed grows by exactly W
    // per boundary (each alive watch is either stripe-pruned,
    // delta-suppressed, or fired — never skipped, never doubled).
    wait_until(
        [&] {
          const auto st = service.stats();
          return st.watch_fires + st.watch_suppressed >= boundaries * W;
        },
        "boundary decisions settle");
    const auto st = service.stats();
    ASSERT_EQ(st.watch_fires + st.watch_suppressed, boundaries * W);

    // Each watch's latest fire must answer the post-boundary contents.
    // A suppressed boundary asserts the result did not change, so the
    // last fired rows must STILL equal a fresh reference query; a watch
    // that has never fired has no claim to check yet.
    std::vector<query::request<2>> probes;
    for (const auto& w : watches) probes.push_back(w.query);
    auto want = reference.execute(probes);
    for (std::size_t i = 0; i < W; ++i) {
      if (watches[i].cap->fire_count() == 0) continue;
      const auto got = watches[i].cap->last_rows();
      const auto& wrow = want.responses[i].points;
      if (watches[i].query.kind == op::knn) {
        ASSERT_EQ(got.size(), wrow.size()) << "watch " << i;
        for (std::size_t j = 0; j < got.size(); ++j) {
          ASSERT_EQ(got[j].dist_sq(watches[i].query.p),
                    wrow[j].dist_sq(watches[i].query.p))
              << "watch " << i << " row " << j;
        }
      } else {
        auto a = got;
        auto b2 = wrow;
        std::sort(a.begin(), a.end());
        std::sort(b2.begin(), b2.end());
        ASSERT_EQ(a, b2) << "watch " << i;
      }
    }
  }

  // Phase B — expire the whole population in one clock advance. The
  // sweep's erase groups are write boundaries like any other, so every
  // watch must converge to the emptied region: watches that had fired
  // re-fire with empty rows, never-fired watches get their (empty) first
  // fire.
  clock->fetch_add(cfg.point_ttl_ns + 1);
  wait_until([&] { return live_size(service) == 0; },
             "TTL drains everything");
  wait_until(
      [&] {
        for (const auto& w : watches) {
          if (w.cap->fire_count() == 0 || !w.cap->last_rows().empty()) {
            return false;
          }
        }
        return true;
      },
      "expiry re-fires every watch with the emptied region");
  EXPECT_GE(service.stats().expired_points, 300u);

  // Phase C — dropped handles never fire: cancel everything, run more
  // writes, and check the counters stay frozen.
  std::vector<std::size_t> final_fires;
  for (auto& w : watches) {
    final_fires.push_back(w.cap->fire_count());
    w.handle.cancel();
  }
  EXPECT_EQ(service.stats().active_watches, 0u);
  for (int i = 0; i < 4; ++i) {
    service.execute({query::request<2>::make_insert(pt(1 + i, 1))});
  }
  service.close();
  for (std::size_t i = 0; i < W; ++i) {
    EXPECT_EQ(watches[i].cap->fire_count(), final_fires[i])
        << "cancelled watch " << i << " fired";
  }
}

class WatchOracle
    : public ::testing::TestWithParam<std::tuple<backend, drain_mode>> {};

TEST_P(WatchOracle, MatchesUnshardedReference) {
  run_watch_oracle(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, WatchOracle,
    ::testing::Combine(::testing::Values(backend::kdtree, backend::zdtree,
                                         backend::bdltree),
                       ::testing::Values(drain_mode::per_shard,
                                         drain_mode::single,
                                         drain_mode::stealing)),
    [](const auto& info) {
      return std::string(query::backend_name(std::get<0>(info.param))) + "_" +
             query::drain_mode_name(std::get<1>(info.param));
    });

// Handles must stay safe after the service is gone (the registry is held
// shared), and close() must flush in-flight watch evaluations.
TEST(QueryServiceWatch, HandleOutlivesService) {
  query::watch_handle<2> handle;
  capture cap;
  {
    query::service_config cfg;
    cfg.backend = backend::kdtree;
    cfg.shards = 2;
    cfg.policy = shard_policy::hash;
    query::query_service<2> service(cfg);
    service.bootstrap({pt(1, 1)});
    handle = service.watch_knn(pt(0, 0), 1, cap.cb());
    service.execute({query::request<2>::make_insert(pt(0.5, 0.5))});
    // Destructor closes: the pending watch evaluation flushes first.
  }
  EXPECT_EQ(cap.fire_count(), 1u);
  handle.cancel();  // safe post-mortem
  EXPECT_FALSE(handle.valid());
}

TEST(QueryServiceWatch, WorksWithoutReaderPool) {
  // read_threads == 0: watch evaluations run inline on the lane workers
  // (or the drain thread in single mode) instead of a reader pool.
  for (auto mode : {drain_mode::per_shard, drain_mode::single}) {
    query::service_config cfg;
    cfg.backend = backend::bdltree;
    cfg.shards = 2;
    cfg.policy = shard_policy::hash;
    cfg.read_threads = 0;
    cfg.drain = mode;
    query::query_service<2> service(cfg);
    service.bootstrap({pt(3, 3)});
    capture cap;
    auto handle = service.watch_knn(pt(0, 0), 2, cap.cb());
    service.execute({query::request<2>::make_insert(pt(1, 1))});
    wait_until([&] { return cap.fire_count() == 1; }, "inline watch eval");
    const auto rows = cap.last_rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], pt(1, 1));
  }
}

}  // namespace
