// Tests for the spatial graph generators: k-NN graph vs brute force,
// Gabriel/beta-skeleton filtering invariants, and spanner construction.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "datagen/datagen.h"
#include "graphgen/graphgen.h"
#include "test_util.h"

using namespace pargeo;

TEST(KnnGraph, MatchesBruteForce) {
  auto pts = datagen::uniform<2>(1000, 3);
  const std::size_t k = 4;
  auto g = graphgen::knn_graph(pts, k);
  ASSERT_EQ(g.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); i += 37) {
    ASSERT_EQ(g[i].size(), k);
    auto brute = testutil::brute_knn_dists(pts, pts[i], k + 1);
    // brute[0] is the self-distance 0.
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_EQ(pts[g[i][j]].dist_sq(pts[i]), brute[j + 1]);
      EXPECT_NE(g[i][j], i);
    }
  }
}

TEST(KnnGraph, ThreeDimensional) {
  auto pts = datagen::in_sphere<3>(800, 4);
  auto g = graphgen::knn_graph3(pts, 3);
  for (std::size_t i = 0; i < pts.size(); i += 53) {
    auto brute = testutil::brute_knn_dists(pts, pts[i], 4);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(pts[g[i][j]].dist_sq(pts[i]), brute[j + 1]);
    }
  }
}

TEST(KnnGraph, KEqualsNMinusOne) {
  auto pts = datagen::uniform<2>(20, 5);
  auto g = graphgen::knn_graph(pts, 19);
  for (const auto& row : g) EXPECT_EQ(row.size(), 19u);
}

TEST(GraphFilters, SubsetChain) {
  // beta-skeleton(2) ⊆ Gabriel = beta-skeleton(1) ⊆ Delaunay.
  auto pts = datagen::uniform<2>(2000, 6);
  auto del = graphgen::delaunay_graph(pts);
  auto gab = graphgen::gabriel_graph(pts);
  auto b15 = graphgen::beta_skeleton(pts, 1.5);
  auto b20 = graphgen::beta_skeleton(pts, 2.0);
  std::set<std::pair<std::size_t, std::size_t>> dset(del.begin(), del.end());
  std::set<std::pair<std::size_t, std::size_t>> gset(gab.begin(), gab.end());
  std::set<std::pair<std::size_t, std::size_t>> b15set(b15.begin(),
                                                       b15.end());
  for (const auto& e : gab) ASSERT_TRUE(dset.count(e));
  for (const auto& e : b15) ASSERT_TRUE(gset.count(e));
  for (const auto& e : b20) ASSERT_TRUE(b15set.count(e));
  EXPECT_LT(b20.size(), gab.size());
  EXPECT_LT(gab.size(), del.size());
  EXPECT_GT(b20.size(), 0u);
}

TEST(GraphFilters, GabrielBruteForceSmall) {
  // Check the Gabriel emptiness test exactly on a small set: an edge is
  // kept iff no other point lies strictly inside the diametral circle.
  auto pts = datagen::uniform<2>(150, 7);
  auto gab = graphgen::gabriel_graph(pts);
  std::set<std::pair<std::size_t, std::size_t>> gset(gab.begin(), gab.end());
  auto del = graphgen::delaunay_graph(pts);
  for (const auto& [u, v] : del) {
    const point<2> mid = (pts[u] + pts[v]) / 2.0;
    const double r = pts[u].dist(pts[v]) / 2.0;
    bool empty = true;
    for (std::size_t w = 0; w < pts.size(); ++w) {
      if (w == u || w == v) continue;
      if (mid.dist(pts[w]) < r * (1 - 1e-12)) {
        empty = false;
        break;
      }
    }
    EXPECT_EQ(gset.count({u, v}) == 1, empty)
        << "edge " << u << "," << v;
  }
}

TEST(GraphFilters, GabrielContainsEmst) {
  // Classic inclusion: EMST ⊆ Gabriel graph (for distinct points).
  auto pts = datagen::uniform<2>(400, 8);
  auto gab = graphgen::gabriel_graph(pts);
  std::set<std::pair<std::size_t, std::size_t>> gset(gab.begin(), gab.end());
  // Prim-based reference MST edges.
  const std::size_t n = pts.size();
  std::vector<double> dist(n, 1e300);
  std::vector<std::size_t> parent(n, 0);
  std::vector<bool> in(n, false);
  dist[0] = 0;
  for (std::size_t it = 0; it < n; ++it) {
    std::size_t u = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!in[i] && (u == n || dist[i] < dist[u])) u = i;
    }
    in[u] = true;
    if (u != 0) {
      auto e = std::minmax(u, parent[u]);
      EXPECT_TRUE(gset.count({e.first, e.second}))
          << "MST edge missing from Gabriel";
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (!in[v] && pts[u].dist_sq(pts[v]) < dist[v]) {
        dist[v] = pts[u].dist_sq(pts[v]);
        parent[v] = u;
      }
    }
  }
}

TEST(Spanner, EdgesAreValidAndConnected) {
  auto pts = datagen::uniform<2>(500, 9);
  auto edges = graphgen::spanner(pts, 2.0);
  ASSERT_GT(edges.size(), pts.size() / 2);
  // Connectivity via union-find.
  std::vector<std::size_t> p(pts.size());
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (p[x] != x) x = p[x] = p[p[x]];
    return x;
  };
  for (const auto& [u, v] : edges) {
    ASSERT_LT(u, pts.size());
    ASSERT_LT(v, pts.size());
    p[find(u)] = find(v);
  }
  std::set<std::size_t> roots;
  for (std::size_t i = 0; i < p.size(); ++i) roots.insert(find(i));
  EXPECT_EQ(roots.size(), 1u);
}

TEST(Spanner, TighterStretchMeansMoreEdges) {
  auto pts = datagen::uniform<2>(1000, 10);
  const auto loose = graphgen::spanner(pts, 4.0).size();
  const auto tight = graphgen::spanner(pts, 1.2).size();
  EXPECT_GT(tight, loose);
}

TEST(GraphFilters, ClusteredData) {
  auto pts = datagen::seed_spreader<2>(1500, 11);
  auto del = graphgen::delaunay_graph(pts);
  auto gab = graphgen::gabriel_graph(pts);
  EXPECT_GT(del.size(), 0u);
  EXPECT_LE(gab.size(), del.size());
}
