// Tests for the synthetic data generators (paper Module 4).
#include <gtest/gtest.h>

#include <cmath>

#include "core/aabb.h"
#include "datagen/datagen.h"

using namespace pargeo;

TEST(Datagen, UniformDeterministicAndInRange) {
  auto a = datagen::uniform<2>(10000, 5);
  auto b = datagen::uniform<2>(10000, 5);
  auto c = datagen::uniform<2>(10000, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const double side = std::sqrt(10000.0);
  for (const auto& p : a) {
    for (int d = 0; d < 2; ++d) {
      EXPECT_GE(p[d], 0.0);
      EXPECT_LE(p[d], side);
    }
  }
}

TEST(Datagen, InSphereWithinRadius) {
  const std::size_t n = 20000;
  auto pts = datagen::in_sphere<3>(n, 2);
  const double r = std::sqrt(static_cast<double>(n)) / 2.0;
  double maxd = 0;
  for (const auto& p : pts) maxd = std::max(maxd, p.length());
  EXPECT_LE(maxd, r * (1 + 1e-12));
  // Uniform density: about half the points beyond r * (1/2)^(1/3).
  std::size_t outer = 0;
  const double half = r * std::pow(0.5, 1.0 / 3.0);
  for (const auto& p : pts) outer += p.length() > half ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(outer) / n, 0.5, 0.05);
}

TEST(Datagen, OnSphereShellThickness) {
  const std::size_t n = 20000;
  auto pts = datagen::on_sphere<3>(n, 3);
  const double r = std::sqrt(static_cast<double>(n)) / 2.0;
  const double thickness = 0.1 * 2 * r;
  for (const auto& p : pts) {
    EXPECT_LE(p.length(), r * (1 + 1e-12));
    EXPECT_GE(p.length(), r - thickness - 1e-9);
  }
}

TEST(Datagen, OnCubeShellThickness) {
  const std::size_t n = 10000;
  auto pts = datagen::on_cube<3>(n, 4);
  const double side = std::sqrt(static_cast<double>(n));
  const double t = 0.1 * side;
  for (const auto& p : pts) {
    double minFaceDist = side;
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(p[d], -1e-9);
      EXPECT_LE(p[d], side + 1e-9);
      minFaceDist = std::min({minFaceDist, p[d], side - p[d]});
    }
    EXPECT_LE(minFaceDist, t + 1e-9);
  }
}

TEST(Datagen, InCubeCentered) {
  auto pts = datagen::in_cube<3>(5000, 8);
  const double half = std::sqrt(5000.0) / 2;
  for (const auto& p : pts) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(p[d], -half - 1e-9);
      EXPECT_LE(p[d], half + 1e-9);
    }
  }
}

TEST(Datagen, VisualVarProducesVaryingDensity) {
  auto pts = datagen::visualvar<2>(20000, 7);
  EXPECT_EQ(pts.size(), 20000u);
  // Density varies: the last walk's points (small steps) live in a much
  // smaller bounding box than the first walk's.
  aabb<2> first, last;
  for (std::size_t i = 0; i < 2000; ++i) first.extend(pts[i]);
  for (std::size_t i = 18000; i < 20000; ++i) last.extend(pts[i]);
  EXPECT_GT(first.diameter(), last.diameter());
}

TEST(Datagen, SeedSpreaderIsClustered) {
  const std::size_t n = 20000;
  auto clustered = datagen::seed_spreader<2>(n, 9);
  auto uniform = datagen::uniform<2>(n, 9);
  ASSERT_EQ(clustered.size(), n);
  // Clustered data has much smaller average nearest-sample distance than
  // uniform data of the same cardinality: compare mean distance of
  // consecutive (shuffled) samples as a cheap proxy.
  auto meanStep = [](const std::vector<point<2>>& pts) {
    double s = 0;
    for (std::size_t i = 1; i < pts.size(); i += 100) {
      s += pts[i].dist(pts[i - 1]);
    }
    return s;
  };
  EXPECT_LT(meanStep(clustered), meanStep(uniform));
}

TEST(Datagen, SyntheticStatueIsClosedStarShapedSurface) {
  const std::size_t n = 20000;
  auto pts = datagen::synthetic_statue(n, 11);
  const double base = std::sqrt(static_cast<double>(n)) / 2.0;
  for (const auto& p : pts) {
    const double r = p.length();
    EXPECT_GE(r, base * 0.7);
    EXPECT_LE(r, base * 1.3);
  }
  // Surface is bumpy: radius variance is substantial (unlike OnSphere's
  // thin shell which is uniform in radius).
  double mn = 1e300, mx = 0;
  for (const auto& p : pts) {
    mn = std::min(mn, p.length());
    mx = std::max(mx, p.length());
  }
  EXPECT_GT(mx - mn, base * 0.2);
}

class DatagenDims : public ::testing::TestWithParam<int> {};

TEST_P(DatagenDims, GeneratorsProduceRequestedCount) {
  // Compile-time dims via dispatch.
  const int d = GetParam();
  std::size_t got = 0;
  switch (d) {
    case 2: got = datagen::uniform<2>(1234, 1).size(); break;
    case 3: got = datagen::uniform<3>(1234, 1).size(); break;
    case 5: got = datagen::uniform<5>(1234, 1).size(); break;
    case 7: got = datagen::uniform<7>(1234, 1).size(); break;
  }
  EXPECT_EQ(got, 1234u);
}

INSTANTIATE_TEST_SUITE_P(Dims, DatagenDims, ::testing::Values(2, 3, 5, 7));
