// Tests for 2D convex hull: agreement across the five methods, hull
// validity (CCW, containment, vertices from input), and degeneracies.
#include <gtest/gtest.h>

#include <set>

#include "core/predicates.h"
#include "datagen/datagen.h"
#include "hull/hull2d.h"

using namespace pargeo;

namespace {

void check_valid_hull(const std::vector<point<2>>& pts,
                      const std::vector<std::size_t>& hull) {
  ASSERT_GE(hull.size(), 3u);
  // Vertices must be distinct input indices.
  std::set<std::size_t> uniq(hull.begin(), hull.end());
  ASSERT_EQ(uniq.size(), hull.size());
  // Strictly convex CCW polygon: each consecutive triple turns left.
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const auto& a = pts[hull[i]];
    const auto& b = pts[hull[(i + 1) % hull.size()]];
    const auto& c = pts[hull[(i + 2) % hull.size()]];
    ASSERT_GT(orient2d(a, b, c), 0) << "not strictly convex at " << i;
  }
  // Containment: every point on or left of every edge.
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const auto& a = pts[hull[i]];
    const auto& b = pts[hull[(i + 1) % hull.size()]];
    for (const auto& p : pts) {
      ASSERT_GE(orient2d(a, b, p), 0);
    }
  }
}

std::vector<point<2>> dataset(int which, std::size_t n, uint64_t seed) {
  switch (which) {
    case 0: return datagen::uniform<2>(n, seed);
    case 1: return datagen::in_sphere<2>(n, seed);
    case 2: return datagen::on_sphere<2>(n, seed);
    default: return datagen::on_cube<2>(n, seed);
  }
}

}  // namespace

struct Hull2dParam {
  int dist;
  std::size_t n;
  uint64_t seed;
};

class Hull2dSweep : public ::testing::TestWithParam<Hull2dParam> {};

TEST_P(Hull2dSweep, AllMethodsAgreeAndValid) {
  const auto p = GetParam();
  auto pts = dataset(p.dist, p.n, p.seed);
  auto h0 = hull2d::sequential_quickhull(pts);
  check_valid_hull(pts, h0);
  EXPECT_EQ(h0, hull2d::quickhull(pts));
  EXPECT_EQ(h0, hull2d::randinc(pts));
  EXPECT_EQ(h0, hull2d::reservation_quickhull(pts));
  EXPECT_EQ(h0, hull2d::divide_conquer(pts));
}

INSTANTIATE_TEST_SUITE_P(
    DistSizeSeed, Hull2dSweep,
    ::testing::Values(Hull2dParam{0, 1000, 1}, Hull2dParam{0, 30000, 2},
                      Hull2dParam{1, 1000, 3}, Hull2dParam{1, 30000, 4},
                      Hull2dParam{2, 1000, 5}, Hull2dParam{2, 30000, 6},
                      Hull2dParam{3, 30000, 7}, Hull2dParam{0, 17, 8},
                      Hull2dParam{2, 100, 9}),
    [](const ::testing::TestParamInfo<Hull2dParam>& info) {
      return "dist" + std::to_string(info.param.dist) + "_n" +
             std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(Hull2d, RandincSeedsAgree) {
  auto pts = datagen::in_sphere<2>(5000, 31);
  auto h1 = hull2d::randinc(pts, 8, 1);
  auto h2 = hull2d::randinc(pts, 8, 99);
  EXPECT_EQ(h1, h2);  // the hull is unique regardless of insertion order
}

TEST(Hull2d, BatchFactorDoesNotChangeResult) {
  auto pts = datagen::on_sphere<2>(5000, 32);
  auto h1 = hull2d::reservation_quickhull(pts, 1);
  auto h2 = hull2d::reservation_quickhull(pts, 64);
  EXPECT_EQ(h1, h2);
}

TEST(Hull2d, EmptyAndTinyInputs) {
  std::vector<point<2>> empty;
  EXPECT_TRUE(hull2d::sequential_quickhull(empty).empty());
  EXPECT_TRUE(hull2d::randinc(empty).empty());

  std::vector<point<2>> one{point<2>{{1, 1}}};
  EXPECT_EQ(hull2d::sequential_quickhull(one), std::vector<std::size_t>{0});
  EXPECT_EQ(hull2d::randinc(one), std::vector<std::size_t>{0});

  std::vector<point<2>> tri{point<2>{{0, 0}}, point<2>{{1, 0}},
                            point<2>{{0, 1}}};
  auto h = hull2d::sequential_quickhull(tri);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h, hull2d::randinc(tri));
  EXPECT_EQ(h, hull2d::divide_conquer(tri));
}

TEST(Hull2d, AllPointsIdentical) {
  std::vector<point<2>> pts(100, point<2>{{3, 3}});
  auto h = hull2d::sequential_quickhull(pts);
  ASSERT_EQ(h.size(), 1u);
  auto hr = hull2d::randinc(pts);
  ASSERT_EQ(hr.size(), 1u);
  EXPECT_EQ(pts[h[0]], pts[hr[0]]);
}

TEST(Hull2d, CollinearInput) {
  std::vector<point<2>> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back(point<2>{{static_cast<double>(i), 2.0 * i}});
  }
  auto h = hull2d::sequential_quickhull(pts);
  ASSERT_EQ(h.size(), 2u);  // extreme pair only
  EXPECT_EQ(pts[h[0]][0], 0);
  EXPECT_EQ(pts[h[1]][0], 49);
  auto hr = hull2d::randinc(pts);
  ASSERT_EQ(hr.size(), 2u);
}

TEST(Hull2d, DuplicatedExtremes) {
  std::vector<point<2>> pts = datagen::uniform<2>(500, 41);
  // Duplicate every hull vertex once.
  auto h = hull2d::sequential_quickhull(pts);
  const std::size_t orig = pts.size();
  for (const std::size_t v : h) pts.push_back(pts[v]);
  auto h2 = hull2d::sequential_quickhull(pts);
  auto h3 = hull2d::randinc(pts);
  auto h4 = hull2d::reservation_quickhull(pts);
  EXPECT_EQ(h2.size(), h.size());
  EXPECT_EQ(h3.size(), h.size());
  EXPECT_EQ(h4.size(), h.size());
  // Hull geometry identical regardless of which duplicate is picked.
  for (std::size_t i = 0; i < h2.size(); ++i) {
    EXPECT_EQ(pts[h2[i] % orig], pts[h2[i]]);
  }
}

TEST(Hull2d, HullOfHullIsIdentity) {
  auto pts = datagen::in_sphere<2>(10000, 55);
  auto h = hull2d::sequential_quickhull(pts);
  std::vector<point<2>> hullPts;
  for (const std::size_t v : h) hullPts.push_back(pts[v]);
  auto h2 = hull2d::sequential_quickhull(hullPts);
  EXPECT_EQ(h2.size(), hullPts.size());
}

TEST(Hull2d, OutputSizeGrowsWithBoundaryConcentration) {
  // On-sphere data puts nearly all points near the hull: output size must
  // far exceed the uniform case.
  auto uni = datagen::uniform<2>(20000, 61);
  auto osp = datagen::on_sphere<2>(20000, 61);
  EXPECT_GT(hull2d::sequential_quickhull(osp).size(),
            2 * hull2d::sequential_quickhull(uni).size());
}
