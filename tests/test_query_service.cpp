// Oracle tests for the sharded, multi-producer query_service front door:
// sharded (spatial and hash, >= 4 shards) responses must match a 1-shard
// reference on mixed insert/erase/kNN/range streams on every backend;
// concurrent submitters (>= 4 threads) get their responses back in their
// own submission order; plus ingest-window grouping, ticket stats, spatial
// bounds bootstrapping, and config validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "query/query_service.h"
#include "query/workload.h"

using namespace pargeo;
using query::backend;
using query::op;
using query::shard_policy;

namespace {

template <int D>
query::query_service<D> make_service(backend b, std::size_t shards,
                                     shard_policy policy) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = policy;
  return query::query_service<D>(cfg);
}

// Compares a sharded run against the 1-shard reference, response by
// response. k-NN rows compare as distance sequences (ties across shard
// boundaries may pick different equidistant points); range rows compare as
// exact point multisets.
template <int D>
void expect_same_responses(const std::vector<query::request<D>>& reqs,
                           const std::vector<query::response<D>>& got,
                           const std::vector<query::response<D>>& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.size(), reqs.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].kind, want[i].kind) << "response " << i;
    if (reqs[i].kind == op::knn) {
      ASSERT_EQ(got[i].points.size(), want[i].points.size())
          << "knn response " << i;
      for (std::size_t j = 0; j < got[i].points.size(); ++j) {
        EXPECT_EQ(got[i].points[j].dist_sq(reqs[i].p),
                  want[i].points[j].dist_sq(reqs[i].p))
            << "knn response " << i << " row " << j;
      }
    } else if (query::is_read(reqs[i].kind)) {
      auto a = got[i].points;
      auto b = want[i].points;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "range response " << i;
    } else {
      EXPECT_TRUE(got[i].points.empty()) << "write ack " << i;
    }
  }
}

template <int D>
void run_sharded_vs_reference(backend b, shard_policy policy,
                              std::size_t shards) {
  query::workload_spec spec;
  spec.initial_points = 400;
  spec.num_ops = 1000;
  spec.batch_size = 128;
  spec.k = 6;
  // Mixed stream: defaults give 10% insert / 10% erase / 60% kNN /
  // 10% box / 10% ball.
  const auto reqs = query::make_requests<D>(spec);

  auto reference = make_service<D>(b, 1, policy);
  std::vector<query::response<D>> want;
  query::run_workload<D>(reference, spec, &want);

  auto sharded = make_service<D>(b, shards, policy);
  std::vector<query::response<D>> got;
  query::run_workload<D>(sharded, spec, &got);

  expect_same_responses<D>(reqs, got, want);

  EXPECT_EQ(sharded.size(), reference.size());
  auto a = sharded.gather();
  auto e = reference.gather();
  std::sort(a.begin(), a.end());
  std::sort(e.begin(), e.end());
  EXPECT_EQ(a, e);
}

using ServiceParam = std::tuple<backend, shard_policy>;

class QueryServiceOracle : public ::testing::TestWithParam<ServiceParam> {};

}  // namespace

TEST_P(QueryServiceOracle, ShardedMatchesReference2D) {
  run_sharded_vs_reference<2>(std::get<0>(GetParam()),
                              std::get<1>(GetParam()), 4);
}

TEST_P(QueryServiceOracle, ShardedMatchesReference3D) {
  run_sharded_vs_reference<3>(std::get<0>(GetParam()),
                              std::get<1>(GetParam()), 5);
}

TEST_P(QueryServiceOracle, ShardedStartsEmptyMatchesReference) {
  // No bootstrap: spatial stripes must derive from the first write phase.
  const backend b = std::get<0>(GetParam());
  const shard_policy policy = std::get<1>(GetParam());
  query::workload_spec spec;
  spec.initial_points = 0;
  spec.num_ops = 600;
  spec.batch_size = 64;
  spec.k = 4;
  spec.insert_frac = 0.3;  // write-heavy so the index fills up
  const auto reqs = query::make_requests<2>(spec);

  auto reference = make_service<2>(b, 1, policy);
  std::vector<query::response<2>> want;
  query::run_workload<2>(reference, spec, &want);

  auto sharded = make_service<2>(b, 4, policy);
  std::vector<query::response<2>> got;
  query::run_workload<2>(sharded, spec, &got);

  expect_same_responses<2>(reqs, got, want);
  EXPECT_EQ(sharded.size(), reference.size());
}

TEST_P(QueryServiceOracle, BootstrapDistributesAcrossShards) {
  auto service =
      make_service<2>(std::get<0>(GetParam()), 4, std::get<1>(GetParam()));
  service.bootstrap(datagen::uniform<2>(400, 3));
  EXPECT_EQ(service.size(), 400u);
  std::size_t populated = 0;
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    populated += service.shard(s).index().size() > 0 ? 1 : 0;
  }
  // Quantile stripes and coordinate hashing both spread 400 uniform points
  // over every shard.
  EXPECT_EQ(populated, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndPolicies, QueryServiceOracle,
    ::testing::Combine(::testing::Values(backend::kdtree, backend::zdtree,
                                         backend::bdltree),
                       ::testing::Values(shard_policy::spatial,
                                         shard_policy::hash)),
    [](const ::testing::TestParamInfo<ServiceParam>& info) {
      return std::string(query::backend_name(std::get<0>(info.param))) + "_" +
             query::shard_policy_name(std::get<1>(info.param));
    });

namespace {

class QueryServiceConcurrent : public ::testing::TestWithParam<backend> {};

}  // namespace

TEST_P(QueryServiceConcurrent, SubmittersGetOwnOrderBack) {
  // >= 4 truly parallel clients hammer one service. Each thread works in
  // its own coordinate stripe >= 1000 away from the others, so every
  // expected answer is independent of how tickets interleave globally;
  // position-encoded payloads verify that wait(ticket) returns exactly
  // that ticket's responses, in the caller's submission order.
  constexpr int kThreads = 4;
  constexpr int kTicketsPerThread = 6;
  constexpr int kPointsPerTicket = 3;

  auto service = make_service<2>(GetParam(), 4, shard_policy::hash);
  service.bootstrap(datagen::uniform<2>(200, 5));
  const std::size_t initial = service.size();

  auto thread_point = [](int t, int j, int i) {
    return point<2>{{1000.0 * (t + 1) + 10.0 * j + i, 7.0 * (t + 1)}};
  };

  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<query::ticket> tickets;
      tickets.reserve(kTicketsPerThread);
      for (int j = 0; j < kTicketsPerThread; ++j) {
        std::vector<query::request<2>> batch;
        for (int i = 0; i < kPointsPerTicket; ++i) {
          batch.push_back(query::request<2>::make_insert(thread_point(t, j, i)));
        }
        for (int i = 0; i < kPointsPerTicket; ++i) {
          batch.push_back(query::request<2>::make_knn(thread_point(t, j, i), 1));
        }
        batch.push_back(
            query::request<2>::make_ball(thread_point(t, j, 0), 0.5));
        tickets.push_back(service.submit(std::move(batch)));
      }
      // Redeem in submission order; every answer is position-encoded.
      for (int j = 0; j < kTicketsPerThread; ++j) {
        auto r = service.wait(tickets[j]);
        if (r.latency_seconds < 0) {
          errors[t] = "negative latency";
          return;
        }
        if (r.responses.size() !=
            static_cast<std::size_t>(2 * kPointsPerTicket + 1)) {
          errors[t] = "wrong response count for ticket " + std::to_string(j);
          return;
        }
        for (int i = 0; i < kPointsPerTicket; ++i) {
          const auto& row = r.responses[kPointsPerTicket + i];
          if (row.kind != op::knn || row.points.size() != 1 ||
              !(row.points[0] == thread_point(t, j, i))) {
            errors[t] = "ticket " + std::to_string(j) + " knn " +
                        std::to_string(i) + " answered out of order";
            return;
          }
        }
        const auto& ball = r.responses[2 * kPointsPerTicket];
        if (ball.kind != op::range_ball || ball.points.size() != 1 ||
            !(ball.points[0] == thread_point(t, j, 0))) {
          errors[t] = "ticket " + std::to_string(j) + " ball mismatch";
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "") << "thread " << t;

  EXPECT_EQ(service.size(),
            initial + kThreads * kTicketsPerThread * kPointsPerTicket);
  const auto stats = service.stats();
  EXPECT_EQ(stats.num_tickets,
            static_cast<std::size_t>(kThreads * kTicketsPerThread));
  EXPECT_GE(stats.num_drains, 1u);
  EXPECT_EQ(stats.num_requests, static_cast<std::size_t>(
                                    kThreads * kTicketsPerThread *
                                    (2 * kPointsPerTicket + 1)));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, QueryServiceConcurrent,
    ::testing::Values(backend::kdtree, backend::zdtree, backend::bdltree),
    [](const ::testing::TestParamInfo<backend>& info) {
      return query::backend_name(info.param);
    });

TEST(QueryService, IngestWindowGroupsPendingBatches) {
  auto submit3 = [](query::query_service<2>& service) {
    std::vector<query::ticket> ts;
    for (int j = 0; j < 3; ++j) {
      std::vector<query::request<2>> batch;
      for (int i = 0; i < 4; ++i) {
        batch.push_back(query::request<2>::make_insert(
            point<2>{{10.0 * j + i, 1.0}}));
      }
      ts.push_back(service.submit(std::move(batch)));
    }
    return ts;
  };

  {
    // Window larger than everything pending: one drain serves all tickets,
    // even when the last ticket is redeemed first.
    query::service_config cfg;
    cfg.backend = backend::bdltree;
    cfg.shards = 2;
    query::query_service<2> service(cfg);
    auto ts = submit3(service);
    service.wait(ts[2]);
    EXPECT_EQ(service.stats().num_drains, 1u);
    service.wait(ts[0]);
    service.wait(ts[1]);
    EXPECT_EQ(service.stats().num_drains, 1u);
    EXPECT_EQ(service.size(), 12u);
  }
  {
    // Window smaller than one batch: every drain takes exactly one ticket
    // (an over-sized batch still drains alone rather than starving).
    query::service_config cfg;
    cfg.backend = backend::bdltree;
    cfg.shards = 2;
    cfg.ingest_window = 1;
    query::query_service<2> service(cfg);
    auto ts = submit3(service);
    for (const auto& t : ts) service.wait(t);
    EXPECT_EQ(service.stats().num_drains, 3u);
    EXPECT_EQ(service.size(), 12u);
  }
}

TEST(QueryService, TicketResultCarriesGroupStatsAndLatency) {
  auto service = make_service<2>(backend::bdltree, 2, shard_policy::hash);
  std::vector<query::request<2>> batch{
      query::request<2>::make_insert(point<2>{{1, 1}}),
      query::request<2>::make_insert(point<2>{{2, 2}}),
      query::request<2>::make_knn(point<2>{{1, 1}}, 1),
  };
  auto t = service.submit(batch);
  auto r = service.wait(t);
  ASSERT_EQ(r.responses.size(), 3u);
  EXPECT_GE(r.latency_seconds, 0.0);
  // Phases: [insert x2][read x1]; response phase ids index stats.phases.
  ASSERT_EQ(r.stats.num_phases(), 2u);
  EXPECT_EQ(r.stats.num_writes, 2u);
  EXPECT_EQ(r.stats.num_reads, 1u);
  for (const auto& resp : r.responses) {
    EXPECT_LT(resp.phase, r.stats.num_phases());
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.num_tickets, 1u);
  EXPECT_EQ(stats.num_drains, 1u);
  EXPECT_EQ(stats.num_requests, 3u);
}

TEST(QueryService, InvalidConfigAndTicketsThrow) {
  query::service_config cfg;
  cfg.shards = 0;
  EXPECT_THROW(query::query_service<2>{cfg}, std::invalid_argument);
  cfg.shards = 1;
  cfg.ingest_window = 0;
  EXPECT_THROW(query::query_service<2>{cfg}, std::invalid_argument);

  auto service = make_service<2>(backend::bdltree, 1, shard_policy::hash);
  EXPECT_THROW(service.wait(query::ticket{}), std::invalid_argument);
  EXPECT_THROW(service.wait(query::ticket{42}), std::invalid_argument);

  // Redeeming twice throws rather than parking the caller forever.
  auto t = service.submit({query::request<2>::make_insert(point<2>{{1, 1}})});
  service.wait(t);
  EXPECT_THROW(service.wait(t), std::invalid_argument);
}

TEST(QueryService, NegativeBallRadiusMatchesUnshardedAcrossPolicies) {
  // Backends compare dist_sq <= radius^2, so a negative radius acts as its
  // magnitude; spatial pruning must not invert the stripe interval.
  const auto pts = datagen::uniform<2>(300, 13);
  const point<2> center = pts[7];
  std::vector<query::request<2>> batch{
      query::request<2>::make_ball(center, -2.5),
      query::request<2>::make_ball(center, 2.5),
  };
  auto reference = make_service<2>(backend::kdtree, 1, shard_policy::hash);
  reference.bootstrap(pts);
  auto want = reference.execute(batch);
  ASSERT_FALSE(want.responses[0].points.empty());
  for (auto policy : {shard_policy::spatial, shard_policy::hash}) {
    auto sharded = make_service<2>(backend::kdtree, 4, policy);
    sharded.bootstrap(pts);
    auto got = sharded.execute(batch);
    expect_same_responses<2>(batch, got.responses, want.responses);
    EXPECT_EQ(got.responses[0].points.size(), got.responses[1].points.size());
  }
}

TEST(QueryService, NegativeZeroRoutesLikeZero) {
  // -0.0 == 0.0 as a coordinate: an erase of {-0.0, y} must find an
  // insert of {0.0, y} on every shard count and policy.
  for (auto policy : {shard_policy::hash, shard_policy::spatial}) {
    auto service = make_service<2>(backend::bdltree, 4, policy);
    service.bootstrap(datagen::uniform<2>(100, 21));
    const point<2> pos{{0.0, 3.0}};
    point<2> neg{{0.0, 3.0}};
    neg[0] = -0.0;
    ASSERT_TRUE(pos == neg);
    auto r = service.execute({query::request<2>::make_insert(pos),
                              query::request<2>::make_erase(neg),
                              query::request<2>::make_ball(pos, 0.1)});
    EXPECT_TRUE(r.responses[2].points.empty())
        << query::shard_policy_name(policy);
    EXPECT_EQ(service.size(), 100u) << query::shard_policy_name(policy);
  }
}

TEST(QueryService, SpatialPruningStaysExactAcrossStripes) {
  // Boxes/balls confined to one stripe, spanning several, and covering
  // everything must all match the 1-shard reference exactly.
  auto reference = make_service<2>(backend::kdtree, 1, shard_policy::spatial);
  auto sharded = make_service<2>(backend::kdtree, 4, shard_policy::spatial);
  const auto pts = datagen::uniform<2>(500, 9);
  reference.bootstrap(pts);
  sharded.bootstrap(pts);

  const double side = std::sqrt(500.0);
  std::vector<query::request<2>> batch;
  // Narrow boxes marching across the split dimension.
  for (int i = 0; i < 10; ++i) {
    const double x = side * i / 10.0;
    batch.push_back(query::request<2>::make_range(
        aabb<2>(point<2>{{x, 0}}, point<2>{{x + side / 20.0, side}})));
  }
  // Full-extent box and a few balls of growing radius.
  batch.push_back(query::request<2>::make_range(
      aabb<2>(point<2>{{-1, -1}}, point<2>{{side + 1, side + 1}})));
  for (int i = 1; i <= 4; ++i) {
    batch.push_back(query::request<2>::make_ball(
        point<2>{{side / 2, side / 2}}, side * i / 8.0));
  }
  auto want = reference.execute(batch);
  auto got = sharded.execute(batch);
  expect_same_responses<2>(batch, got.responses, want.responses);
}
