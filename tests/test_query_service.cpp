// Oracle + lifecycle tests for the sharded, multi-producer, asynchronous
// query_service front door: sharded (spatial and hash, >= 4 shards)
// responses must match a 1-shard reference on mixed insert/erase/kNN/range
// streams on every backend; concurrent submitters (>= 4 threads) get their
// responses back in their own submission order; plus the completion-handle
// lifecycle (drain-without-waiters, callbacks firing exactly once, orderly
// close/destructor flush, double-get and empty-handle errors, bounded
// result retention), ingest-window grouping, snapshot-path read groups,
// spatial bounds bootstrapping, per-shard drain pipelines (4 producers x
// 4 lanes, single-vs-per_shard equivalence, lane counters, scratch
// recycling), ingest backpressure (blocking submit / try_submit /
// close-while-blocked), config validation, non-finite payload rejection,
// degenerate/duplicate-coordinate stripe derivation, and stealing-mode
// equivalence. (The adversarial-skew oracle and steal/rebalance mechanism
// tests live in tests/test_skew_drain.cpp.) TSan-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "query/query_service.h"
#include "query/workload.h"
#include "test_query_util.h"

using namespace pargeo;
using query::backend;
using query::op;
using query::shard_policy;
using testutil::expect_same_responses;

namespace {

template <int D>
query::service_config make_config(backend b, std::size_t shards,
                                  shard_policy policy) {
  query::service_config cfg;
  cfg.backend = b;
  cfg.shards = shards;
  cfg.policy = policy;
  return cfg;
}

template <int D>
query::query_service<D> make_service(backend b, std::size_t shards,
                                     shard_policy policy) {
  return query::query_service<D>(make_config<D>(b, shards, policy));
}

// Spins until `done()` holds (the drain pipeline is asynchronous), failing
// the test after a generous timeout instead of hanging it.
template <class Pred>
void wait_until(const Pred& done, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!done()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

template <int D>
void run_sharded_vs_reference(backend b, shard_policy policy,
                              std::size_t shards) {
  query::workload_spec spec;
  spec.initial_points = 400;
  spec.num_ops = 1000;
  spec.batch_size = 128;
  spec.k = 6;
  // Mixed stream: defaults give 10% insert / 10% erase / 60% kNN /
  // 10% box / 10% ball.
  const auto reqs = query::make_requests<D>(spec);

  auto reference = make_service<D>(b, 1, policy);
  std::vector<query::response<D>> want;
  query::run_workload<D>(reference, spec, &want);

  auto sharded = make_service<D>(b, shards, policy);
  std::vector<query::response<D>> got;
  query::run_workload<D>(sharded, spec, &got);

  expect_same_responses<D>(reqs, got, want);

  EXPECT_EQ(sharded.size(), reference.size());
  auto a = sharded.gather();
  auto e = reference.gather();
  std::sort(a.begin(), a.end());
  std::sort(e.begin(), e.end());
  EXPECT_EQ(a, e);
}

using ServiceParam = std::tuple<backend, shard_policy>;

class QueryServiceOracle : public ::testing::TestWithParam<ServiceParam> {};

}  // namespace

TEST_P(QueryServiceOracle, ShardedMatchesReference2D) {
  run_sharded_vs_reference<2>(std::get<0>(GetParam()),
                              std::get<1>(GetParam()), 4);
}

TEST_P(QueryServiceOracle, ShardedMatchesReference3D) {
  run_sharded_vs_reference<3>(std::get<0>(GetParam()),
                              std::get<1>(GetParam()), 5);
}

TEST_P(QueryServiceOracle, ShardedStartsEmptyMatchesReference) {
  // No bootstrap: spatial stripes must derive from the first write phase.
  const backend b = std::get<0>(GetParam());
  const shard_policy policy = std::get<1>(GetParam());
  query::workload_spec spec;
  spec.initial_points = 0;
  spec.num_ops = 600;
  spec.batch_size = 64;
  spec.k = 4;
  spec.insert_frac = 0.3;  // write-heavy so the index fills up
  const auto reqs = query::make_requests<2>(spec);

  auto reference = make_service<2>(b, 1, policy);
  std::vector<query::response<2>> want;
  query::run_workload<2>(reference, spec, &want);

  auto sharded = make_service<2>(b, 4, policy);
  std::vector<query::response<2>> got;
  query::run_workload<2>(sharded, spec, &got);

  expect_same_responses<2>(reqs, got, want);
  EXPECT_EQ(sharded.size(), reference.size());
}

TEST_P(QueryServiceOracle, BootstrapDistributesAcrossShards) {
  auto service =
      make_service<2>(std::get<0>(GetParam()), 4, std::get<1>(GetParam()));
  service.bootstrap(datagen::uniform<2>(400, 3));
  EXPECT_EQ(service.size(), 400u);
  std::size_t populated = 0;
  for (std::size_t s = 0; s < service.num_shards(); ++s) {
    populated += service.shard(s).index().size() > 0 ? 1 : 0;
  }
  // Quantile stripes and coordinate hashing both spread 400 uniform points
  // over every shard.
  EXPECT_EQ(populated, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAndPolicies, QueryServiceOracle,
    ::testing::Combine(::testing::Values(backend::kdtree, backend::zdtree,
                                         backend::bdltree),
                       ::testing::Values(shard_policy::spatial,
                                         shard_policy::hash)),
    [](const ::testing::TestParamInfo<ServiceParam>& info) {
      return std::string(query::backend_name(std::get<0>(info.param))) + "_" +
             query::shard_policy_name(std::get<1>(info.param));
    });

namespace {

class QueryServiceConcurrent : public ::testing::TestWithParam<backend> {};

}  // namespace

TEST_P(QueryServiceConcurrent, SubmittersGetOwnOrderBack) {
  // >= 4 truly parallel clients hammer one service. Each thread works in
  // its own coordinate stripe >= 1000 away from the others, so every
  // expected answer is independent of how tickets interleave globally;
  // position-encoded payloads verify that a completion returns exactly
  // that ticket's responses, in the caller's submission order.
  constexpr int kThreads = 4;
  constexpr int kTicketsPerThread = 6;
  constexpr int kPointsPerTicket = 3;

  auto service = make_service<2>(GetParam(), 4, shard_policy::hash);
  service.bootstrap(datagen::uniform<2>(200, 5));
  const std::size_t initial = 200;

  auto thread_point = [](int t, int j, int i) {
    return point<2>{{1000.0 * (t + 1) + 10.0 * j + i, 7.0 * (t + 1)}};
  };

  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<query::completion<2>> tickets;
      tickets.reserve(kTicketsPerThread);
      for (int j = 0; j < kTicketsPerThread; ++j) {
        std::vector<query::request<2>> batch;
        for (int i = 0; i < kPointsPerTicket; ++i) {
          batch.push_back(query::request<2>::make_insert(thread_point(t, j, i)));
        }
        for (int i = 0; i < kPointsPerTicket; ++i) {
          batch.push_back(query::request<2>::make_knn(thread_point(t, j, i), 1));
        }
        batch.push_back(
            query::request<2>::make_ball(thread_point(t, j, 0), 0.5));
        tickets.push_back(service.submit(std::move(batch)));
      }
      // Redeem in submission order; every answer is position-encoded.
      for (int j = 0; j < kTicketsPerThread; ++j) {
        auto r = tickets[j].get();
        if (r.latency_seconds < 0) {
          errors[t] = "negative latency";
          return;
        }
        if (r.responses.size() !=
            static_cast<std::size_t>(2 * kPointsPerTicket + 1)) {
          errors[t] = "wrong response count for ticket " + std::to_string(j);
          return;
        }
        for (int i = 0; i < kPointsPerTicket; ++i) {
          const auto& row = r.responses[kPointsPerTicket + i];
          if (row.kind != op::knn || row.points.size() != 1 ||
              !(row.points[0] == thread_point(t, j, i))) {
            errors[t] = "ticket " + std::to_string(j) + " knn " +
                        std::to_string(i) + " answered out of order";
            return;
          }
        }
        const auto& ball = r.responses[2 * kPointsPerTicket];
        if (ball.kind != op::range_ball || ball.points.size() != 1 ||
            !(ball.points[0] == thread_point(t, j, 0))) {
          errors[t] = "ticket " + std::to_string(j) + " ball mismatch";
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "") << "thread " << t;

  service.close();
  EXPECT_EQ(service.size(),
            initial + kThreads * kTicketsPerThread * kPointsPerTicket);
  const auto stats = service.stats();
  EXPECT_EQ(stats.num_tickets,
            static_cast<std::size_t>(kThreads * kTicketsPerThread));
  EXPECT_GE(stats.num_drains, 1u);
  EXPECT_EQ(stats.num_requests, static_cast<std::size_t>(
                                    kThreads * kTicketsPerThread *
                                    (2 * kPointsPerTicket + 1)));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, QueryServiceConcurrent,
    ::testing::Values(backend::kdtree, backend::zdtree, backend::bdltree),
    [](const ::testing::TestParamInfo<backend>& info) {
      return query::backend_name(info.param);
    });

TEST(QueryService, SubmitWithoutWaiterDrainsAlone) {
  // The acceptance property of the dedicated drain thread: a ticket nobody
  // blocks on still executes. Submit, never call get(), and watch the
  // drain counters advance on their own.
  auto service = make_service<2>(backend::bdltree, 2, shard_policy::hash);
  std::vector<query::request<2>> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(query::request<2>::make_insert(point<2>{{1.0 * i, 2.0}}));
  }
  auto c = service.submit(std::move(batch));
  wait_until([&] { return service.stats().num_requests >= 8; },
             "drain thread never executed the un-waited ticket");
  EXPECT_TRUE(c.ready());
  auto r = c.get();  // instant: the result was already retained
  EXPECT_EQ(r.responses.size(), 8u);
  EXPECT_GE(r.latency_seconds, 0.0);
  service.close();
  EXPECT_EQ(service.size(), 8u);
}

TEST(QueryService, CallbacksFireExactlyOnce) {
  auto service = make_service<2>(backend::bdltree, 2, shard_policy::hash);
  service.bootstrap(datagen::uniform<2>(100, 3));

  constexpr int kTickets = 12;
  std::vector<std::atomic<int>> fired(kTickets);
  for (auto& f : fired) f = 0;
  std::atomic<int> total{0};
  std::atomic<int> errors{0};

  std::vector<query::completion<2>> held;  // keep handles alive past firing
  held.reserve(kTickets);
  for (int j = 0; j < kTickets; ++j) {
    std::vector<query::request<2>> batch{
        query::request<2>::make_insert(point<2>{{100.0 + j, 5.0}}),
        query::request<2>::make_knn(point<2>{{100.0 + j, 5.0}}, 1),
    };
    auto c = service.submit(std::move(batch));
    c.on_complete([&, j](query::ticket_result<2>&& r, std::exception_ptr err) {
      if (err || r.responses.size() != 2) ++errors;
      ++fired[j];
      ++total;
    });
    held.push_back(std::move(c));
  }
  wait_until([&] { return total.load() == kTickets; },
             "callbacks did not all fire");
  service.close();
  EXPECT_EQ(errors.load(), 0);
  for (int j = 0; j < kTickets; ++j) {
    EXPECT_EQ(fired[j].load(), 1) << "callback " << j;
  }
  // A callback consumes the handle's one redemption.
  EXPECT_THROW(held[0].get(), std::logic_error);
  // Callbacks are delivered, never retained.
  EXPECT_EQ(service.stats().results_retained, 0u);
}

TEST(QueryService, CallbackOutlivesDroppedHandle) {
  // Registering on_complete and dropping the handle must still fire the
  // callback exactly once (the record stays alive for delivery).
  auto service = make_service<2>(backend::bdltree, 1, shard_policy::hash);
  std::atomic<int> fired{0};
  {
    auto c = service.submit({query::request<2>::make_insert(point<2>{{1, 1}})});
    c.on_complete([&](query::ticket_result<2>&&, std::exception_ptr) {
      ++fired;
    });
  }  // handle destroyed here, likely before the drain fulfils it
  wait_until([&] { return fired.load() == 1; }, "dropped-handle callback");
  service.close();
  EXPECT_EQ(fired.load(), 1);
}

TEST(QueryService, CloseFlushesInFlightTickets) {
  // close() with submitted-but-unexecuted tickets must neither deadlock
  // nor drop responses: every handle redeems normally afterwards.
  auto service = make_service<2>(backend::bdltree, 2, shard_policy::hash);
  service.bootstrap(datagen::uniform<2>(150, 7));
  std::vector<query::completion<2>> cs;
  for (int j = 0; j < 10; ++j) {
    std::vector<query::request<2>> batch{
        query::request<2>::make_insert(point<2>{{500.0 + j, 1.0}}),
        query::request<2>::make_knn(point<2>{{500.0 + j, 1.0}}, 1),
        query::request<2>::make_ball(point<2>{{500.0 + j, 1.0}}, 0.25),
    };
    cs.push_back(service.submit(std::move(batch)));
  }
  service.close();  // flushes all 10 tickets deterministically
  for (int j = 0; j < 10; ++j) {
    auto r = cs[j].get();
    ASSERT_EQ(r.responses.size(), 3u) << "ticket " << j;
    EXPECT_EQ(r.responses[1].points.size(), 1u);
    EXPECT_TRUE(r.responses[1].points[0] == (point<2>{{500.0 + j, 1.0}}));
  }
  EXPECT_EQ(service.size(), 160u);
  EXPECT_EQ(service.stats().num_requests, 30u);
  // Intake is cut after close.
  EXPECT_THROW(
      service.submit({query::request<2>::make_insert(point<2>{{0, 0}})}),
      std::runtime_error);
  service.close();  // idempotent
}

TEST(QueryService, HandlesOutliveTheService) {
  // The destructor runs close(): handles redeem fine from a dead service.
  std::vector<query::completion<2>> cs;
  {
    auto service =
        std::make_unique<query::query_service<2>>(make_config<2>(
            backend::zdtree, 2, shard_policy::hash));
    service->bootstrap(datagen::uniform<2>(80, 11));
    for (int j = 0; j < 4; ++j) {
      cs.push_back(service->submit(
          {query::request<2>::make_knn(point<2>{{1.0 + j, 1.0}}, 2)}));
    }
  }  // ~query_service flushes and joins here
  for (auto& c : cs) {
    auto r = c.get();
    ASSERT_EQ(r.responses.size(), 1u);
    EXPECT_EQ(r.responses[0].points.size(), 2u);
  }
}

TEST(QueryService, DoubleGetAndEmptyHandlesThrow) {
  auto service = make_service<2>(backend::bdltree, 1, shard_policy::hash);
  auto c = service.submit({query::request<2>::make_insert(point<2>{{1, 1}})});
  c.get();
  EXPECT_THROW(c.get(), std::logic_error);  // second redemption
  EXPECT_THROW(c.on_complete([](query::ticket_result<2>&&,
                                std::exception_ptr) {}),
               std::logic_error);

  query::completion<2> never;  // nothing was ever submitted
  EXPECT_FALSE(never.valid());
  EXPECT_FALSE(never.ready());
  EXPECT_THROW(never.get(), std::logic_error);

  // Moved-from handles behave like empty ones.
  auto c2 = service.submit({query::request<2>::make_insert(point<2>{{2, 2}})});
  query::completion<2> c3 = std::move(c2);
  EXPECT_THROW(c2.get(), std::logic_error);
  c3.get();
}

TEST(QueryService, RetentionCapEvictsOldestUnredeemed) {
  // Satellite: completed-but-unredeemed results are bounded. With a cap of
  // 2, five un-waited tickets leave exactly the two newest redeemable; the
  // three oldest report eviction instead of deadlocking or leaking.
  auto cfg = make_config<2>(backend::bdltree, 1, shard_policy::hash);
  cfg.max_retained = 2;
  query::query_service<2> service(cfg);
  std::vector<query::completion<2>> cs;
  for (int j = 0; j < 5; ++j) {
    cs.push_back(service.submit(
        {query::request<2>::make_insert(point<2>{{1.0 * j, 0.0}})}));
  }
  service.close();  // all five fulfilled; cap enforced along the way
  const auto stats = service.stats();
  EXPECT_EQ(stats.results_retained, 2u);
  EXPECT_EQ(stats.results_evicted, 3u);
  for (int j = 0; j < 3; ++j) {
    EXPECT_THROW(cs[j].get(), std::runtime_error) << "ticket " << j;
  }
  for (int j = 3; j < 5; ++j) {
    EXPECT_EQ(cs[j].get().responses.size(), 1u) << "ticket " << j;
  }
  EXPECT_EQ(service.size(), 5u);  // eviction drops results, not writes
  EXPECT_EQ(service.stats().results_retained, 0u);
}

TEST(QueryService, DroppedHandleReleasesItsResult) {
  // Redemption-by-destruction: dropping an unredeemed handle evicts its
  // retained result immediately (nothing waits for the cap).
  auto service = make_service<2>(backend::bdltree, 1, shard_policy::hash);
  {
    auto c = service.submit(
        {query::request<2>::make_insert(point<2>{{3, 3}})});
    wait_until([&] { return service.stats().num_requests >= 1; },
               "drain never ran");
    EXPECT_EQ(service.stats().results_retained, 1u);
  }  // handle dropped here
  EXPECT_EQ(service.stats().results_retained, 0u);
  service.close();
  EXPECT_EQ(service.size(), 1u);
}

TEST(QueryService, ReadTicketsSeeEarlierWriteTickets) {
  // FIFO program order across tickets survives the snapshot path: a
  // read-only ticket submitted after a write ticket snapshots state that
  // already includes the write, and is stamped with a snapshot epoch.
  auto service = make_service<2>(backend::kdtree, 2, shard_policy::hash);
  service.bootstrap(datagen::uniform<2>(120, 13));
  const point<2> fresh{{900.0, 900.0}};
  auto w = service.submit({query::request<2>::make_insert(fresh)});
  auto r = service.submit({query::request<2>::make_knn(fresh, 1),
                           query::request<2>::make_ball(fresh, 0.1)});
  auto rr = r.get();
  ASSERT_EQ(rr.responses.size(), 2u);
  ASSERT_EQ(rr.responses[0].points.size(), 1u);
  EXPECT_TRUE(rr.responses[0].points[0] == fresh);
  EXPECT_EQ(rr.responses[1].points.size(), 1u);
  // The read executed against published epoch snapshots.
  EXPECT_GE(rr.snapshot_epoch, 1u);
  w.get();
  service.close();
  const auto stats = service.stats();
  EXPECT_GE(stats.num_read_groups, 1u);
  EXPECT_GE(stats.num_write_groups, 1u);
}

TEST(QueryService, ReadOnlyStreamUsesSnapshotPath) {
  // A pure-read stream drains entirely through the snapshot executors.
  auto service = make_service<2>(backend::zdtree, 2, shard_policy::hash);
  service.bootstrap(datagen::uniform<2>(300, 17));
  std::vector<query::completion<2>> cs;
  for (int j = 0; j < 6; ++j) {
    cs.push_back(service.submit(
        {query::request<2>::make_knn(point<2>{{2.0 * j, 3.0}}, 3)}));
  }
  for (auto& c : cs) {
    auto r = c.get();
    ASSERT_EQ(r.responses.size(), 1u);
    EXPECT_EQ(r.responses[0].points.size(), 3u);
    EXPECT_GE(r.snapshot_epoch, 1u);
  }
  service.close();
  const auto stats = service.stats();
  EXPECT_GE(stats.num_read_groups, 1u);
  EXPECT_EQ(stats.num_write_groups, 0u);
  EXPECT_EQ(stats.num_read_groups, stats.num_drains);
}

TEST(QueryService, IngestWindowGroupsPendingBatches) {
  {
    // Window larger than everything pending: the dedicated drain groups
    // whatever has accumulated when it wakes — never more drains than
    // tickets, and the window invariant caps each group.
    query::service_config cfg;
    cfg.backend = backend::bdltree;
    cfg.shards = 2;
    query::query_service<2> service(cfg);
    std::vector<query::completion<2>> cs;
    for (int j = 0; j < 3; ++j) {
      std::vector<query::request<2>> batch;
      for (int i = 0; i < 4; ++i) {
        batch.push_back(query::request<2>::make_insert(
            point<2>{{10.0 * j + i, 1.0}}));
      }
      cs.push_back(service.submit(std::move(batch)));
    }
    for (auto& c : cs) c.get();
    service.close();
    const auto stats = service.stats();
    EXPECT_GE(stats.num_drains, 1u);
    EXPECT_LE(stats.num_drains, 3u);
    EXPECT_EQ(stats.num_requests, 12u);
    EXPECT_EQ(service.size(), 12u);
  }
  {
    // Window smaller than one batch: every drain takes exactly one ticket
    // (an over-sized batch still drains alone rather than starving).
    query::service_config cfg;
    cfg.backend = backend::bdltree;
    cfg.shards = 2;
    cfg.ingest_window = 1;
    query::query_service<2> service(cfg);
    std::vector<query::completion<2>> cs;
    for (int j = 0; j < 3; ++j) {
      std::vector<query::request<2>> batch;
      for (int i = 0; i < 4; ++i) {
        batch.push_back(query::request<2>::make_insert(
            point<2>{{10.0 * j + i, 1.0}}));
      }
      cs.push_back(service.submit(std::move(batch)));
    }
    for (auto& c : cs) c.get();
    service.close();
    EXPECT_EQ(service.stats().num_drains, 3u);
    EXPECT_EQ(service.size(), 12u);
  }
}

TEST(QueryService, TicketResultCarriesGroupStatsAndLatency) {
  auto service = make_service<2>(backend::bdltree, 2, shard_policy::hash);
  std::vector<query::request<2>> batch{
      query::request<2>::make_insert(point<2>{{1, 1}}),
      query::request<2>::make_insert(point<2>{{2, 2}}),
      query::request<2>::make_knn(point<2>{{1, 1}}, 1),
  };
  auto r = service.submit(std::move(batch)).get();
  ASSERT_EQ(r.responses.size(), 3u);
  EXPECT_GE(r.latency_seconds, 0.0);
  // Phases: [insert x2][read x1]; response phase ids index stats.phases.
  ASSERT_EQ(r.stats.num_phases(), 2u);
  EXPECT_EQ(r.stats.num_writes, 2u);
  EXPECT_EQ(r.stats.num_reads, 1u);
  for (const auto& resp : r.responses) {
    EXPECT_LT(resp.phase, r.stats.num_phases());
  }
  service.close();
  const auto stats = service.stats();
  EXPECT_EQ(stats.num_tickets, 1u);
  EXPECT_EQ(stats.num_drains, 1u);
  EXPECT_EQ(stats.num_requests, 3u);
}

TEST(QueryService, InvalidConfigThrows) {
  query::service_config cfg;
  cfg.shards = 0;
  EXPECT_THROW(query::query_service<2>{cfg}, std::invalid_argument);
  cfg.shards = 1;
  cfg.ingest_window = 0;
  EXPECT_THROW(query::query_service<2>{cfg}, std::invalid_argument);
  cfg.ingest_window = 1;
  cfg.max_retained = 0;
  EXPECT_THROW(query::query_service<2>{cfg}, std::invalid_argument);
}

TEST(QueryService, NegativeBallRadiusMatchesUnshardedAcrossPolicies) {
  // Backends compare dist_sq <= radius^2, so a negative radius acts as its
  // magnitude; spatial pruning must not invert the stripe interval.
  const auto pts = datagen::uniform<2>(300, 13);
  const point<2> center = pts[7];
  std::vector<query::request<2>> batch{
      query::request<2>::make_ball(center, -2.5),
      query::request<2>::make_ball(center, 2.5),
  };
  auto reference = make_service<2>(backend::kdtree, 1, shard_policy::hash);
  reference.bootstrap(pts);
  auto want = reference.execute(batch);
  ASSERT_FALSE(want.responses[0].points.empty());
  for (auto policy : {shard_policy::spatial, shard_policy::hash}) {
    auto sharded = make_service<2>(backend::kdtree, 4, policy);
    sharded.bootstrap(pts);
    auto got = sharded.execute(batch);
    expect_same_responses<2>(batch, got.responses, want.responses);
    EXPECT_EQ(got.responses[0].points.size(), got.responses[1].points.size());
  }
}

TEST(QueryService, NegativeZeroRoutesLikeZero) {
  // -0.0 == 0.0 as a coordinate: an erase of {-0.0, y} must find an
  // insert of {0.0, y} on every shard count and policy.
  for (auto policy : {shard_policy::hash, shard_policy::spatial}) {
    auto service = make_service<2>(backend::bdltree, 4, policy);
    service.bootstrap(datagen::uniform<2>(100, 21));
    const point<2> pos{{0.0, 3.0}};
    point<2> neg{{0.0, 3.0}};
    neg[0] = -0.0;
    ASSERT_TRUE(pos == neg);
    auto r = service.execute({query::request<2>::make_insert(pos),
                              query::request<2>::make_erase(neg),
                              query::request<2>::make_ball(pos, 0.1)});
    EXPECT_TRUE(r.responses[2].points.empty())
        << query::shard_policy_name(policy);
    service.close();
    EXPECT_EQ(service.size(), 100u) << query::shard_policy_name(policy);
  }
}

TEST(QueryService, SingleDrainModeMatchesPerShard) {
  // The per-shard pipeline is a pure execution-strategy change: the same
  // stream through drain_mode::single and drain_mode::per_shard must
  // produce byte-identical responses on every backend.
  query::workload_spec spec;
  spec.initial_points = 300;
  spec.num_ops = 800;
  spec.batch_size = 96;
  spec.k = 5;
  const auto reqs = query::make_requests<2>(spec);
  for (auto b : {backend::kdtree, backend::zdtree, backend::bdltree}) {
    auto cfg = make_config<2>(b, 3, shard_policy::hash);
    cfg.drain = query::drain_mode::single;
    query::query_service<2> single(cfg);
    std::vector<query::response<2>> want;
    query::run_workload<2>(single, spec, &want);

    cfg.drain = query::drain_mode::per_shard;
    query::query_service<2> piped(cfg);
    std::vector<query::response<2>> got;
    query::run_workload<2>(piped, spec, &got);

    ASSERT_EQ(got.size(), want.size()) << query::backend_name(b);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].points, want[i].points)
          << query::backend_name(b) << " response " << i;
    }
    EXPECT_EQ(piped.size(), single.size()) << query::backend_name(b);
  }
}

TEST(QueryService, FourProducersDrainAcrossShardLanes) {
  // The tentpole scenario: 4 truly parallel producers feed 4 shard lanes
  // through the per-shard drain pipeline. Stripe-isolated payloads verify
  // every ticket's answers despite lanes executing different groups
  // concurrently; lane counters prove the work actually spread.
  constexpr int kThreads = 4;
  constexpr int kTicketsPerThread = 16;
  auto cfg = make_config<2>(backend::bdltree, 4, shard_policy::hash);
  cfg.drain = query::drain_mode::per_shard;
  query::query_service<2> service(cfg);
  service.bootstrap(datagen::uniform<2>(200, 5));

  auto thread_point = [](int t, int j) {
    return point<2>{{5000.0 * (t + 1) + 11.0 * j, 3.0 * (t + 1)}};
  };
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kTicketsPerThread; ++j) {
        // Mixed ticket: write then read of the same fresh point — the
        // read must observe the write through per-shard FIFO.
        auto c = service.submit(
            {query::request<2>::make_insert(thread_point(t, j)),
             query::request<2>::make_knn(thread_point(t, j), 1),
             query::request<2>::make_ball(thread_point(t, j), 0.25)});
        auto r = c.get();
        if (r.responses.size() != 3 || r.responses[1].points.size() != 1 ||
            !(r.responses[1].points[0] == thread_point(t, j)) ||
            r.responses[2].points.size() != 1) {
          errors[t] = "ticket " + std::to_string(j) + " wrong answer";
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "") << "thread " << t;
  service.close();

  const auto stats = service.stats();
  EXPECT_EQ(service.size(), 200u + kThreads * kTicketsPerThread);
  ASSERT_EQ(stats.per_shard.size(), 4u);
  std::size_t lanes_used = 0, lane_drains = 0;
  for (const auto& lane : stats.per_shard) {
    if (lane.num_drains > 0) ++lanes_used;
    lane_drains += lane.num_drains;
    EXPECT_EQ(lane.queue_depth, 0u);  // closed: queues flushed
    EXPECT_GE(lane.execute_seconds, 0.0);
  }
  // k-NN scatters to every lane, so all four lanes executed sub-batches.
  EXPECT_EQ(lanes_used, 4u);
  EXPECT_GE(lane_drains, stats.num_write_groups);
  // Routing buffers recycle once the pool warms up.
  EXPECT_GT(stats.scratch_reuses, 0u);
}

namespace {

// Parks the (single) shard lane of `service` inside a completion callback
// that waits for `release`: submits sentinel tickets until one's callback
// provably fires on a service thread (a callback registered after
// fulfilment fires on the registering thread instead — that attempt simply
// does not block, and we retry). Returns how many sentinel points were
// inserted; -1 if the race was never won.
int park_lane_until(query::query_service<2>& service,
                    std::shared_future<void> release) {
  const auto main_id = std::this_thread::get_id();
  for (int attempt = 1; attempt <= 100; ++attempt) {
    auto entered = std::make_shared<std::promise<std::thread::id>>();
    auto entered_f = entered->get_future();
    auto c = service.submit({query::request<2>::make_insert(
        point<2>{{90000.0 + attempt, -7.0}})});
    c.on_complete([entered, release, main_id](query::ticket_result<2>&&,
                                              std::exception_ptr) {
      entered->set_value(std::this_thread::get_id());
      if (std::this_thread::get_id() != main_id) release.wait();
    });
    if (entered_f.get() != main_id) return attempt;
  }
  return -1;
}

}  // namespace

TEST(QueryService, BackpressureBoundsInFlightRequests) {
  // Deterministic backpressure: a callback parks the lane worker, so
  // admitted work stays unfulfilled and the in-flight count is fully
  // under test control. Bound = 2 requests.
  auto cfg = make_config<2>(backend::bdltree, 1, shard_policy::hash);
  cfg.drain = query::drain_mode::per_shard;
  cfg.max_pending_requests = 2;
  query::query_service<2> service(cfg);

  std::promise<void> release;
  const int sentinels = park_lane_until(service, release.get_future().share());
  ASSERT_GT(sentinels, 0);  // lane parked; in-flight back to 0

  // B and C admit (1 then 2 in flight); both queue behind the blocked
  // lane and stay unfulfilled.
  auto b = service.submit({query::request<2>::make_insert(point<2>{{2, 2}})});
  auto c = service.submit({query::request<2>::make_insert(point<2>{{3, 3}})});
  EXPECT_EQ(service.stats().pending_requests, 2u);

  // At the bound: try_submit rejects instead of blocking.
  auto rejected =
      service.try_submit({query::request<2>::make_insert(point<2>{{4, 4}})});
  EXPECT_FALSE(rejected.has_value());
  EXPECT_EQ(service.stats().try_submit_rejects, 1u);

  // submit() blocks until the pipeline drains below the bound.
  std::atomic<bool> d_admitted{false};
  std::thread blocked([&] {
    auto d =
        service.submit({query::request<2>::make_insert(point<2>{{5, 5}})});
    d_admitted = true;
    d.get();
  });
  wait_until([&] { return service.stats().submit_waits >= 1; },
             "submit never blocked on the bound");
  EXPECT_FALSE(d_admitted.load());

  release.set_value();  // unpark the lane; everything drains
  blocked.join();
  EXPECT_TRUE(d_admitted.load());
  b.get();
  c.get();
  service.close();
  const auto stats = service.stats();
  EXPECT_EQ(stats.pending_requests, 0u);
  EXPECT_EQ(stats.submit_waits, 1u);
  EXPECT_EQ(service.size(), static_cast<std::size_t>(sentinels) + 3u);
}

TEST(QueryService, CloseWakesBlockedSubmitters) {
  // close() while a producer is blocked on backpressure: the producer
  // wakes and throws (like any post-close submit) instead of deadlocking.
  auto cfg = make_config<2>(backend::bdltree, 1, shard_policy::hash);
  cfg.drain = query::drain_mode::per_shard;
  cfg.max_pending_requests = 1;
  query::query_service<2> service(cfg);

  std::promise<void> release;
  const int sentinels = park_lane_until(service, release.get_future().share());
  ASSERT_GT(sentinels, 0);
  auto b = service.submit({query::request<2>::make_insert(point<2>{{2, 2}})});

  std::thread blocked([&] {
    EXPECT_THROW(
        service.submit({query::request<2>::make_insert(point<2>{{3, 3}})}),
        std::runtime_error);
  });
  wait_until([&] { return service.stats().submit_waits >= 1; },
             "submit never blocked on the bound");
  std::thread closer([&] { service.close(); });  // joins after release
  blocked.join();  // woken by close()'s intake cut, throws
  release.set_value();
  closer.join();
  b.get();  // admitted before close: flushed, still redeemable
  EXPECT_EQ(service.size(), static_cast<std::size_t>(sentinels) + 1u);
}

TEST(QueryService, OversizedBatchAdmitsAloneUnderBackpressure) {
  // A batch larger than the bound must not deadlock: it is admitted when
  // the pipeline is empty.
  auto cfg = make_config<2>(backend::bdltree, 2, shard_policy::hash);
  cfg.max_pending_requests = 2;
  query::query_service<2> service(cfg);
  std::vector<query::request<2>> big;
  for (int i = 0; i < 8; ++i) {
    big.push_back(query::request<2>::make_insert(point<2>{{1.0 * i, 2.0}}));
  }
  auto r = service.submit(std::move(big)).get();
  EXPECT_EQ(r.responses.size(), 8u);
  service.close();
  EXPECT_EQ(service.size(), 8u);
}

TEST(QueryService, NonFiniteCoordinatesRejectedAtSubmit) {
  // NaN/inf payloads would break routing silently (every stripe
  // comparison on NaN is false, so the point lands in an arbitrary shard
  // and bit-distinct NaNs key the cache inconsistently): the front door
  // rejects them before a ticket exists.
  auto service = make_service<2>(backend::bdltree, 2, shard_policy::spatial);
  service.bootstrap(datagen::uniform<2>(100, 3));
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();

  EXPECT_THROW(
      service.submit({query::request<2>::make_insert(point<2>{{nan, 1.0}})}),
      std::invalid_argument);
  EXPECT_THROW(
      service.submit({query::request<2>::make_knn(point<2>{{1.0, inf}}, 2)}),
      std::invalid_argument);
  EXPECT_THROW(
      service.submit({query::request<2>::make_ball(point<2>{{1.0, 1.0}}, nan)}),
      std::invalid_argument);
  EXPECT_THROW(
      service.submit({query::request<2>::make_range(
          aabb<2>(point<2>{{nan, 0.0}}, point<2>{{1.0, 1.0}}))}),
      std::invalid_argument);
  EXPECT_THROW(
      service.try_submit({query::request<2>::make_erase(point<2>{{-inf, 0.0}})}),
      std::invalid_argument);

  // Rejected batches admit nothing: no ticket, no pending request, and
  // the service still serves valid traffic afterwards.
  auto r = service.execute({query::request<2>::make_knn(point<2>{{2.0, 2.0}}, 3)});
  EXPECT_EQ(r.responses[0].points.size(), 3u);
  service.close();
  const auto stats = service.stats();
  EXPECT_EQ(stats.num_tickets, 1u);
  EXPECT_EQ(stats.pending_requests, 0u);
  EXPECT_EQ(service.size(), 100u);
}

TEST(QueryService, DuplicateCoordinateStripesStayNonDegenerate) {
  // Regression: quantile cuts over duplicated coordinates used to
  // collide into zero-width stripes (shards that could never own a
  // point, every write funneling into one lane). With 3 distinct values
  // on the split dimension and 4 shards, 3 shards must end up owning
  // points — and a sharded run must still match the reference.
  std::vector<point<2>> pts;
  for (int i = 0; i < 300; ++i) {
    // x in {0, 1, 2} (widest dim), y packed into [0, 0.5).
    pts.push_back(point<2>{{1.0 * (i % 3), 0.5 * (i % 7) / 7.0}});
  }
  auto sharded = make_service<2>(backend::bdltree, 4, shard_policy::spatial);
  sharded.bootstrap(pts);
  EXPECT_EQ(sharded.size(), 300u);
  std::size_t populated = 0;
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    populated += sharded.shard(s).index().size() > 0 ? 1 : 0;
  }
  EXPECT_EQ(populated, 3u);  // one shard per distinct value; the 4th idle

  std::vector<query::request<2>> batch;
  for (int x = 0; x < 3; ++x) {
    batch.push_back(query::request<2>::make_knn(point<2>{{1.0 * x, 0.2}}, 5));
    batch.push_back(query::request<2>::make_ball(point<2>{{1.0 * x, 0.2}}, 0.3));
  }
  batch.push_back(query::request<2>::make_range(
      aabb<2>(point<2>{{-1.0, -1.0}}, point<2>{{3.0, 1.0}})));
  auto reference = make_service<2>(backend::bdltree, 1, shard_policy::spatial);
  reference.bootstrap(pts);
  auto want = reference.execute(batch);
  auto got = sharded.execute(batch);
  expect_same_responses<2>(batch, got.responses, want.responses);
}

TEST(QueryService, AllIdenticalWritesStillRouteConsistently) {
  // The fully degenerate case — every write is the same point, so there
  // is no coordinate spread to stripe on. All copies must land on ONE
  // owner (insert and erase agree), and answers must match the reference.
  for (auto b : {backend::kdtree, backend::zdtree, backend::bdltree}) {
    auto sharded = make_service<2>(b, 4, shard_policy::spatial);
    auto reference = make_service<2>(b, 1, shard_policy::spatial);
    const point<2> p{{7.0, 7.0}};
    std::vector<query::request<2>> writes(20, query::request<2>::make_insert(p));
    std::vector<query::request<2>> reads{
        query::request<2>::make_knn(p, 4),
        query::request<2>::make_ball(p, 0.5),
        query::request<2>::make_erase(p),
        query::request<2>::make_ball(p, 0.5),
    };
    auto got_w = sharded.execute(writes);
    auto want_w = reference.execute(writes);
    auto got = sharded.execute(reads);
    auto want = reference.execute(reads);
    expect_same_responses<2>(writes, got_w.responses, want_w.responses);
    expect_same_responses<2>(reads, got.responses, want.responses);
    EXPECT_EQ(sharded.size(), reference.size()) << query::backend_name(b);
    EXPECT_EQ(sharded.size(), 19u) << query::backend_name(b);
  }
}

TEST(QueryService, StealingModeMatchesPerShardAndSingle) {
  // Work stealing is a pure execution-strategy change: the same stream
  // through single, per_shard, and stealing must produce byte-identical
  // responses on every backend.
  query::workload_spec spec;
  spec.initial_points = 300;
  spec.num_ops = 800;
  spec.batch_size = 96;
  spec.k = 5;
  for (auto b : {backend::kdtree, backend::zdtree, backend::bdltree}) {
    auto cfg = make_config<2>(b, 3, shard_policy::hash);
    cfg.drain = query::drain_mode::single;
    query::query_service<2> single(cfg);
    std::vector<query::response<2>> want;
    query::run_workload<2>(single, spec, &want);

    cfg.drain = query::drain_mode::stealing;
    query::query_service<2> stealing(cfg);
    std::vector<query::response<2>> got;
    query::run_workload<2>(stealing, spec, &got);

    ASSERT_EQ(got.size(), want.size()) << query::backend_name(b);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].points, want[i].points)
          << query::backend_name(b) << " response " << i;
    }
    EXPECT_EQ(stealing.size(), single.size()) << query::backend_name(b);
  }
}

TEST(QueryService, LockfreeIngestMatchesMutexOnEveryBackendAndDrainMode) {
  // The MPSC ingest ring is a pure submission-seam change: the same
  // stream through ingest_mode::mutex and ingest_mode::lockfree must
  // produce byte-identical responses on every backend x drain mode.
  query::workload_spec spec;
  spec.initial_points = 300;
  spec.num_ops = 600;
  spec.batch_size = 96;
  spec.k = 5;
  for (auto b : {backend::kdtree, backend::zdtree, backend::bdltree}) {
    for (auto d : {query::drain_mode::single, query::drain_mode::per_shard,
                   query::drain_mode::stealing}) {
      auto cfg = make_config<2>(b, 3, shard_policy::hash);
      cfg.drain = d;
      cfg.ingest = query::ingest_mode::mutex;
      query::query_service<2> mutexed(cfg);
      std::vector<query::response<2>> want;
      query::run_workload<2>(mutexed, spec, &want);

      cfg.ingest = query::ingest_mode::lockfree;
      query::query_service<2> lockfree(cfg);
      std::vector<query::response<2>> got;
      query::run_workload<2>(lockfree, spec, &got);

      const std::string tag = std::string(query::backend_name(b)) + "/" +
                              query::drain_mode_name(d);
      ASSERT_EQ(got.size(), want.size()) << tag;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].points, want[i].points)
            << tag << " response " << i;
      }
      EXPECT_EQ(lockfree.size(), mutexed.size()) << tag;
      // The ring actually carried the traffic (ticket accounting intact).
      EXPECT_GT(lockfree.stats().num_tickets, 0u) << tag;
    }
  }
}

TEST(QueryService, LockfreeIngestSurvivesConcurrentProducers) {
  // 4 producers CAS-race into one ring; every ticket must come back with
  // its own answers in its own order (same contract the mutex path gave).
  constexpr int kThreads = 4;
  constexpr int kTicketsPerThread = 24;
  auto cfg = make_config<2>(backend::bdltree, 4, shard_policy::hash);
  cfg.drain = query::drain_mode::per_shard;
  cfg.ingest = query::ingest_mode::lockfree;
  cfg.ingest_ring_capacity = 8;  // tiny ring: force wraparound + blocking
  query::query_service<2> service(cfg);
  service.bootstrap(datagen::uniform<2>(200, 5));

  auto thread_point = [](int t, int j) {
    return point<2>{{7000.0 * (t + 1) + 13.0 * j, 5.0 * (t + 1)}};
  };
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kTicketsPerThread; ++j) {
        auto c = service.submit(
            {query::request<2>::make_insert(thread_point(t, j)),
             query::request<2>::make_knn(thread_point(t, j), 1)});
        auto r = c.get();
        if (r.responses.size() != 2 || r.responses[1].points.size() != 1 ||
            !(r.responses[1].points[0] == thread_point(t, j))) {
          errors[t] = "ticket " + std::to_string(j) + " wrong answer";
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "") << "thread " << t;
  service.close();
  EXPECT_EQ(service.size(), 200u + kThreads * kTicketsPerThread);
  EXPECT_EQ(service.stats().num_tickets,
            static_cast<std::size_t>(kThreads) * kTicketsPerThread);
}

TEST(QueryService, MutexIngestBackpressureStillBoundsAndCloses) {
  // The mutex seam stays the comparable baseline: its backpressure
  // (blocking submit / try_submit reject) and close-wakes-submitters
  // behavior must not rot now that lockfree is the default.
  auto cfg = make_config<2>(backend::bdltree, 1, shard_policy::hash);
  cfg.drain = query::drain_mode::per_shard;
  cfg.ingest = query::ingest_mode::mutex;
  cfg.max_pending_requests = 2;
  query::query_service<2> service(cfg);

  std::promise<void> release;
  const int sentinels = park_lane_until(service, release.get_future().share());
  ASSERT_GT(sentinels, 0);

  auto b = service.submit({query::request<2>::make_insert(point<2>{{2, 2}})});
  auto c = service.submit({query::request<2>::make_insert(point<2>{{3, 3}})});
  auto rejected =
      service.try_submit({query::request<2>::make_insert(point<2>{{4, 4}})});
  EXPECT_FALSE(rejected.has_value());
  EXPECT_EQ(service.stats().try_submit_rejects, 1u);

  std::thread blocked([&] {
    EXPECT_THROW(
        service.submit({query::request<2>::make_insert(point<2>{{5, 5}})}),
        std::runtime_error);
  });
  wait_until([&] { return service.stats().submit_waits >= 1; },
             "submit never blocked on the bound");
  std::thread closer([&] { service.close(); });
  blocked.join();  // woken by close()'s intake cut, throws
  release.set_value();
  closer.join();
  b.get();
  c.get();
  EXPECT_EQ(service.size(), static_cast<std::size_t>(sentinels) + 2u);
}

TEST(QueryService, SpatialPruningStaysExactAcrossStripes) {
  // Boxes/balls confined to one stripe, spanning several, and covering
  // everything must all match the 1-shard reference exactly.
  auto reference = make_service<2>(backend::kdtree, 1, shard_policy::spatial);
  auto sharded = make_service<2>(backend::kdtree, 4, shard_policy::spatial);
  const auto pts = datagen::uniform<2>(500, 9);
  reference.bootstrap(pts);
  sharded.bootstrap(pts);

  const double side = std::sqrt(500.0);
  std::vector<query::request<2>> batch;
  // Narrow boxes marching across the split dimension.
  for (int i = 0; i < 10; ++i) {
    const double x = side * i / 10.0;
    batch.push_back(query::request<2>::make_range(
        aabb<2>(point<2>{{x, 0}}, point<2>{{x + side / 20.0, side}})));
  }
  // Full-extent box and a few balls of growing radius.
  batch.push_back(query::request<2>::make_range(
      aabb<2>(point<2>{{-1, -1}}, point<2>{{side + 1, side + 1}})));
  for (int i = 1; i <= 4; ++i) {
    batch.push_back(query::request<2>::make_ball(
        point<2>{{side / 2, side / 2}}, side * i / 8.0));
  }
  auto want = reference.execute(batch);
  auto got = sharded.execute(batch);
  expect_same_responses<2>(batch, got.responses, want.responses);
}
