// Fault-injection registry unit suite (query/fault.h): trigger
// selection (one-shot nth, every-N, seeded probability), the four
// actions (throw / kill / torn-write cap / stall), hit-vs-fire
// accounting, the zero-cost disabled path, and scoped_fault cleanup —
// the determinism contract the crash-matrix recovery tests
// (test_recovery.cpp) lean on: a failing schedule must replay exactly.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "query/fault.h"

namespace fault = pargeo::query::fault;

namespace {

class FaultRegistry : public ::testing::Test {
 protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override { fault::reset(); }
};

TEST_F(FaultRegistry, DisabledFireIsNoOp) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::fire("nothing.armed").has_value());
  const auto st = fault::stats("nothing.armed");
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.fires, 0u);
}

TEST_F(FaultRegistry, NthIsOneShot) {
  fault::fault_spec spec;
  spec.nth = 3;
  fault::arm("p", spec);
  EXPECT_TRUE(fault::enabled());
  EXPECT_FALSE(fault::fire("p").has_value());  // hit 1
  EXPECT_FALSE(fault::fire("p").has_value());  // hit 2
  EXPECT_THROW(fault::fire("p"), fault::fault_injected);  // hit 3: fires
  // One-shot: the point disarmed itself; the registry is cold again.
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::fire("p").has_value());
  const auto st = fault::stats("p");
  EXPECT_EQ(st.hits, 3u);  // the post-disarm call never reached the point
  EXPECT_EQ(st.fires, 1u);
}

TEST_F(FaultRegistry, EveryNFiresPeriodically) {
  fault::fault_spec spec;
  spec.every = 2;
  fault::arm("p", spec);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      fault::fire("p");
    } catch (const fault::fault_injected&) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(fault::stats("p").fires, 5u);
  EXPECT_TRUE(fault::enabled());  // every-N never self-disarms
}

TEST_F(FaultRegistry, ProbabilityIsSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    fault::reset();
    fault::fault_spec spec;
    spec.probability = 0.3;
    spec.seed = seed;
    fault::arm("p", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        fault::fire("p");
      } catch (const fault::fault_injected&) {
        f = true;
      }
      fired.push_back(f);
    }
    return fired;
  };
  const auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);  // same seed, same schedule
  EXPECT_NE(a, c);  // different seed, different schedule
  int fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 0);  // p=0.3 over 64 trials: both extremes are
  EXPECT_LT(fires, 64);  // astronomically unlikely with a fixed stream
}

TEST_F(FaultRegistry, KillIsDistinguishableFromError) {
  fault::fault_spec spec;
  spec.action = fault::fault_action::kill;
  fault::arm("p", spec);
  // fault_killed derives from fault_injected: generic containment still
  // catches it, while crash tests can match the kill flavour precisely.
  EXPECT_THROW(fault::fire("p"), fault::fault_killed);
  EXPECT_THROW(fault::fire("p"), fault::fault_injected);
}

TEST_F(FaultRegistry, TornWriteReturnsByteCap) {
  fault::fault_spec spec;
  spec.action = fault::fault_action::torn_write;
  spec.torn_keep_bytes = 7;
  spec.nth = 1;
  fault::arm("p", spec);
  const auto cap = fault::fire("p");
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(*cap, 7u);
  EXPECT_FALSE(fault::fire("p").has_value());  // one-shot
}

TEST_F(FaultRegistry, StallDelaysButContinues) {
  fault::fault_spec spec;
  spec.action = fault::fault_action::stall;
  spec.stall_ns = 20 * 1000 * 1000;  // 20 ms
  fault::arm("p", spec);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(fault::fire("p").has_value());
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(dt).count(),
            15);
}

TEST_F(FaultRegistry, DisarmAndResetClear) {
  fault::fault_spec spec;  // all-zero triggers: fire on every hit
  fault::arm("a", spec);
  fault::arm("b", spec);
  fault::disarm("a");
  EXPECT_TRUE(fault::enabled());  // b still armed
  EXPECT_FALSE(fault::fire("a").has_value());
  EXPECT_THROW(fault::fire("b"), fault::fault_injected);
  fault::reset();
  EXPECT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::fire("b").has_value());
}

TEST_F(FaultRegistry, ScopedFaultCleansUpOnScopeExit) {
  {
    fault::fault_spec spec;
    spec.nth = 100;  // armed but never fires in this test
    fault::scoped_fault f(fault::kOplogAppend, spec);
    EXPECT_TRUE(fault::enabled());
  }
  EXPECT_FALSE(fault::enabled());
}

}  // namespace
