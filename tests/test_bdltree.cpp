// Tests for the BDL-tree and its baselines: logarithmic-method structure
// invariants, model-based random batch workloads vs a reference multiset,
// and k-NN correctness under mixed insert/delete histories.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "bdltree/baselines.h"
#include "bdltree/bdl_tree.h"
#include "datagen/datagen.h"
#include "test_util.h"

using namespace pargeo;
using namespace pargeo::bdltree;

namespace {

template <int D>
void expect_same_multiset(std::vector<point<D>> a, std::vector<point<D>> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

template <class Tree, int D>
void check_knn_against_reference(const Tree& t,
                                 const std::vector<point<D>>& reference,
                                 const std::vector<point<D>>& queries,
                                 std::size_t k) {
  auto res = t.knn(queries, k);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    auto brute = testutil::brute_knn_dists(reference, queries[qi], k);
    ASSERT_EQ(res[qi].size(), brute.size());
    for (std::size_t j = 0; j < brute.size(); ++j) {
      EXPECT_EQ(res[qi][j].dist_sq(queries[qi]), brute[j]);
    }
  }
}

}  // namespace

TEST(BdlTree, BufferAbsorbsSmallBatches) {
  bdl_tree<2> t(split_policy::object_median, /*buffer_size=*/100);
  auto pts = datagen::uniform<2>(99, 1);
  t.insert(pts);
  EXPECT_EQ(t.size(), 99u);
  EXPECT_EQ(t.num_static_trees(), 0u);  // everything still in the buffer
  t.insert({pts[0]});
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.num_static_trees(), 1u);  // buffer promoted into tree 0
}

TEST(BdlTree, LogStructureFollowsBitmask) {
  const std::size_t X = 64;
  bdl_tree<2> t(split_policy::object_median, X);
  auto pts = datagen::uniform<2>(X * 7, 2);  // 7 = 0b111 full trees
  t.insert(pts);
  EXPECT_EQ(t.size(), X * 7);
  EXPECT_EQ(t.num_static_trees(), 3u);  // trees 0,1,2
}

TEST(BdlTree, CascadeOnInsert) {
  const std::size_t X = 32;
  bdl_tree<2> t(split_policy::object_median, X);
  // X points -> tree 0; X more -> cascade into tree 1 only.
  t.insert(datagen::uniform<2>(X, 3));
  EXPECT_EQ(t.num_static_trees(), 1u);
  t.insert(datagen::uniform<2>(X, 4));
  EXPECT_EQ(t.num_static_trees(), 1u);
  EXPECT_EQ(t.size(), 2 * X);
  // X more -> tree 0 and tree 1 both occupied.
  t.insert(datagen::uniform<2>(X, 5));
  EXPECT_EQ(t.num_static_trees(), 2u);
}

TEST(BdlTree, GatherRoundTrip) {
  bdl_tree<5> t;
  auto pts = datagen::uniform<5>(5000, 6);
  std::vector<point<5>> a(pts.begin(), pts.begin() + 2500);
  std::vector<point<5>> b(pts.begin() + 2500, pts.end());
  t.insert(a);
  t.insert(b);
  expect_same_multiset<5>(t.gather(), pts);
}

TEST(BdlTree, KnnAfterMixedOperations) {
  bdl_tree<2> t;
  auto pts = datagen::visualvar<2>(8000, 7);
  std::vector<point<2>> first(pts.begin(), pts.begin() + 5000);
  std::vector<point<2>> second(pts.begin() + 5000, pts.end());
  t.insert(first);
  t.insert(second);
  std::vector<point<2>> del(pts.begin(), pts.begin() + 2000);
  t.erase(del);
  ASSERT_EQ(t.size(), 6000u);
  std::vector<point<2>> reference(pts.begin() + 2000, pts.end());
  std::vector<point<2>> queries(reference.begin(), reference.begin() + 25);
  check_knn_against_reference<bdl_tree<2>, 2>(t, reference, queries, 5);
}

TEST(BdlTree, DeleteTriggersHalfCapacityRebuild) {
  const std::size_t X = 128;
  bdl_tree<2> t(split_policy::object_median, X);
  auto pts = datagen::uniform<2>(4 * X, 8);
  t.insert(pts);
  // Deleting 3/4 of the points must leave a consistent structure.
  std::vector<point<2>> del(pts.begin(), pts.begin() + 3 * X);
  t.erase(del);
  EXPECT_EQ(t.size(), X);
  std::vector<point<2>> rest(pts.begin() + 3 * X, pts.end());
  expect_same_multiset<2>(t.gather(), rest);
}

TEST(BdlTree, EraseAll) {
  bdl_tree<2> t;
  auto pts = datagen::uniform<2>(3000, 9);
  t.insert(pts);
  t.erase(pts);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.gather().empty());
}

TEST(BdlTree, ModelBasedRandomWorkload) {
  // Random interleaving of batch inserts and deletes, checked against a
  // plain vector model after each operation.
  bdl_tree<2> t(split_policy::object_median, 64);
  std::vector<point<2>> model;
  auto all = datagen::uniform<2>(6000, 10);
  std::size_t next = 0;
  for (int step = 0; step < 30; ++step) {
    const bool doInsert = model.size() < 500 ||
                          par::rand_double(11, step) < 0.6;
    if (doInsert && next < all.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + par::rand_range(12, step, 400),
                                all.size() - next);
      std::vector<point<2>> batch(all.begin() + next,
                                  all.begin() + next + take);
      next += take;
      t.insert(batch);
      model.insert(model.end(), batch.begin(), batch.end());
    } else if (!model.empty()) {
      const std::size_t take =
          1 + par::rand_range(13, step, model.size() / 2 + 1);
      std::vector<point<2>> batch(model.end() - take, model.end());
      model.resize(model.size() - take);
      t.erase(batch);
    }
    ASSERT_EQ(t.size(), model.size()) << "step " << step;
  }
  expect_same_multiset<2>(t.gather(), model);
  if (!model.empty()) {
    std::vector<point<2>> queries(model.begin(),
                                  model.begin() + std::min<std::size_t>(
                                                      10, model.size()));
    check_knn_against_reference<bdl_tree<2>, 2>(t, model, queries, 3);
  }
}

// ---- baselines ---------------------------------------------------------

template <class Tree>
class BaselineTest : public ::testing::Test {};

using BaselineTypes = ::testing::Types<b1_tree<2>, b2_tree<2>, bdl_tree<2>>;
TYPED_TEST_SUITE(BaselineTest, BaselineTypes);

TYPED_TEST(BaselineTest, InsertEraseKnnAgainstReference) {
  TypeParam t;
  auto pts = datagen::uniform<2>(4000, 20);
  std::vector<point<2>> a(pts.begin(), pts.begin() + 2000);
  std::vector<point<2>> b(pts.begin() + 2000, pts.end());
  t.insert(a);
  t.insert(b);
  ASSERT_EQ(t.size(), pts.size());
  std::vector<point<2>> del(pts.begin(), pts.begin() + 1000);
  t.erase(del);
  ASSERT_EQ(t.size(), 3000u);
  std::vector<point<2>> reference(pts.begin() + 1000, pts.end());
  std::vector<point<2>> queries(reference.begin(), reference.begin() + 15);
  check_knn_against_reference<TypeParam, 2>(t, reference, queries, 4);
}

TYPED_TEST(BaselineTest, IncrementalSmallBatches) {
  TypeParam t;
  auto pts = datagen::visualvar<2>(3000, 21);
  for (std::size_t off = 0; off < pts.size(); off += 150) {
    std::vector<point<2>> batch(
        pts.begin() + off,
        pts.begin() + std::min(pts.size(), off + 150));
    t.insert(batch);
  }
  ASSERT_EQ(t.size(), pts.size());
  std::vector<point<2>> queries(pts.begin(), pts.begin() + 15);
  check_knn_against_reference<TypeParam, 2>(t, pts, queries, 5);
}

TEST(BdlTree, HigherDimensions) {
  bdl_tree<7> t;
  auto pts = datagen::uniform<7>(3000, 22);
  t.insert(pts);
  std::vector<point<7>> queries(pts.begin(), pts.begin() + 10);
  check_knn_against_reference<bdl_tree<7>, 7>(t, pts, queries, 5);
}

TEST(BdlTree, RangeBallMatchesBruteAfterUpdates) {
  bdl_tree<2> t;
  auto pts = datagen::uniform<2>(5000, 30);
  std::vector<point<2>> a(pts.begin(), pts.begin() + 3000);
  std::vector<point<2>> b(pts.begin() + 3000, pts.end());
  t.insert(a);
  t.insert(b);
  std::vector<point<2>> del(pts.begin(), pts.begin() + 1000);
  t.erase(del);
  std::vector<point<2>> live(pts.begin() + 1000, pts.end());
  const double r = 3.0;
  std::vector<point<2>> queries(live.begin(), live.begin() + 20);
  auto res = t.range_ball(queries, r);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    auto got = res[qi];
    std::vector<point<2>> expect;
    for (const auto& p : live) {
      if (p.dist_sq(queries[qi]) <= r * r) expect.push_back(p);
    }
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect);
  }
}

TEST(BdlTree, RangeBallEmptyRadius) {
  bdl_tree<2> t;
  auto pts = datagen::uniform<2>(1000, 31);
  t.insert(pts);
  auto res = t.range_ball({point<2>{{-1e9, -1e9}}}, 1.0);
  EXPECT_TRUE(res[0].empty());
}
