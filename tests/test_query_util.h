// Shared oracle helper for the query-service suites
// (test_query_service.cpp, test_skew_drain.cpp): compares a sharded /
// re-drained run against a reference, response by response. k-NN rows
// compare as distance sequences (equidistant ties across shard boundaries
// may pick different points), range rows as exact point multisets, write
// acks as empty.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "query/query_engine.h"

namespace pargeo::testutil {

template <int D>
void expect_same_responses(const std::vector<query::request<D>>& reqs,
                           const std::vector<query::response<D>>& got,
                           const std::vector<query::response<D>>& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.size(), reqs.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].kind, want[i].kind) << "response " << i;
    if (reqs[i].kind == query::op::knn) {
      ASSERT_EQ(got[i].points.size(), want[i].points.size())
          << "knn response " << i;
      for (std::size_t j = 0; j < got[i].points.size(); ++j) {
        EXPECT_EQ(got[i].points[j].dist_sq(reqs[i].p),
                  want[i].points[j].dist_sq(reqs[i].p))
            << "knn response " << i << " row " << j;
      }
    } else if (query::is_read(reqs[i].kind)) {
      auto a = got[i].points;
      auto b = want[i].points;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "range response " << i;
    } else {
      EXPECT_TRUE(got[i].points.empty()) << "write ack " << i;
    }
  }
}

}  // namespace pargeo::testutil
