// Cross-module integration tests: the multi-stage pipelines a downstream
// user would build out of the library, checked end to end.
#include <gtest/gtest.h>

#include <set>

#include "pargeo.h"
#include "test_util.h"

using namespace pargeo;

TEST(Integration, HullVerticesAreSebSupportCandidates) {
  // The smallest enclosing ball of a point set equals the SEB of its
  // convex hull vertices.
  auto pts = datagen::synthetic_statue(20000, 3);
  auto mesh = hull3d::divide_conquer(pts);
  auto vs = hull3d::hull_vertices(mesh);
  std::vector<point<3>> hullPts;
  hullPts.reserve(vs.size());
  for (const std::size_t v : vs) hullPts.push_back(pts[v]);
  const auto full = seb::sampling<3>(pts);
  const auto onHull = seb::welzl_seq<3>(hullPts);
  EXPECT_NEAR(full.radius, onHull.radius, 1e-6 * full.radius);
}

TEST(Integration, EmstWeightWithinGraphChain) {
  // EMST <= Gabriel <= Delaunay in total weight, and the EMST is a
  // subgraph of the Gabriel graph.
  auto pts = datagen::uniform<2>(3000, 4);
  auto mst = emst::emst<2>(pts);
  auto gab = graphgen::gabriel_graph(pts);
  auto del = graphgen::delaunay_graph(pts);
  auto weightOf = [&](const graphgen::edge_list& es) {
    double w = 0;
    for (const auto& [u, v] : es) w += pts[u].dist(pts[v]);
    return w;
  };
  const double wMst = emst::total_weight(mst);
  const double wGab = weightOf(gab);
  const double wDel = weightOf(del);
  EXPECT_LE(wMst, wGab * (1 + 1e-12));
  EXPECT_LE(wGab, wDel * (1 + 1e-12));
  std::set<std::pair<std::size_t, std::size_t>> gset(gab.begin(),
                                                     gab.end());
  for (const auto& e : mst) {
    EXPECT_TRUE(gset.count({std::min(e.u, e.v), std::max(e.u, e.v)}));
  }
}

TEST(Integration, DbscanRecoversSeparatedClustersLikeDendrogramCut) {
  // On well-separated blobs, DBSCAN (suitable eps) and a single-linkage
  // dendrogram cut give the same partition.
  std::vector<point<2>> pts;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 80; ++i) {
      pts.push_back(point<2>{{c * 500.0 + 3 * par::rand_double(1, c * 80 + i),
                              3 * par::rand_double(2, c * 80 + i)}});
    }
  }
  auto db = clustering::dbscan<2>(pts, 10.0, 3);
  auto dendro = clustering::single_linkage<2>(pts);
  auto sl = clustering::cut_dendrogram(pts.size(), dendro, 10.0);
  std::set<std::size_t> dbIds(db.begin(), db.end());
  std::set<std::size_t> slIds(sl.begin(), sl.end());
  EXPECT_EQ(dbIds.size(), 4u);
  EXPECT_EQ(slIds.size(), 4u);
  // Same partition up to renaming.
  std::map<std::size_t, std::size_t> fwd;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    auto [it, fresh] = fwd.try_emplace(db[i], sl[i]);
    EXPECT_EQ(it->second, sl[i]);
  }
}

TEST(Integration, BdlTreeTracksKdtreeOnStaticData) {
  // For a static point set, BDL k-NN must agree with the plain kd-tree.
  auto pts = datagen::visualvar<2>(5000, 6);
  kdtree::tree<2> st(pts);
  bdltree::bdl_tree<2> dyn;
  dyn.insert(pts);
  for (int q = 0; q < 30; ++q) {
    const auto& qp = pts[(q * 167) % pts.size()];
    auto a = st.knn(qp, 4);
    auto b = dyn.knn({qp}, 4)[0];
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].dist_sq, b[k].dist_sq(qp));
    }
  }
}

TEST(Integration, ZdAndBdlAgreeUnderSameWorkload) {
  auto pts = datagen::uniform<3>(4000, 7);
  std::vector<point<3>> first(pts.begin(), pts.begin() + 3000);
  std::vector<point<3>> more(pts.begin() + 3000, pts.end());
  std::vector<point<3>> del(pts.begin(), pts.begin() + 1000);

  bdltree::bdl_tree<3> bdl;
  bdl.insert(first);
  bdl.insert(more);
  bdl.erase(del);
  zdtree::zd_tree<3> zd(first);
  zd.insert(more);
  zd.erase(del);
  ASSERT_EQ(bdl.size(), zd.size());

  std::vector<point<3>> queries(pts.begin() + 1000, pts.begin() + 1020);
  auto a = bdl.knn(queries, 3);
  auto b = zd.knn(queries, 3);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    ASSERT_EQ(a[qi].size(), b[qi].size());
    for (std::size_t k = 0; k < a[qi].size(); ++k) {
      EXPECT_EQ(a[qi][k].dist_sq(queries[qi]),
                b[qi][k].dist_sq(queries[qi]));
    }
  }
}

TEST(Integration, IoRoundTripFeedsAlgorithms) {
  auto pts = datagen::in_sphere<2>(2000, 8);
  const auto path = testing::TempDir() + "pargeo_integration.csv";
  io::write_csv<2>(path, pts);
  auto back = io::read_csv<2>(path);
  std::remove(path.c_str());
  EXPECT_EQ(hull2d::sequential_quickhull(pts),
            hull2d::sequential_quickhull(back));
  EXPECT_NEAR(seb::welzl_seq<2>(pts).radius,
              seb::welzl_seq<2>(back).radius, 1e-12);
}

TEST(Integration, ClosestPairIsShortestEmstEdge) {
  auto pts = datagen::uniform<2>(2000, 9);
  auto cp = closestpair::closest_pair<2>(pts);
  auto mst = emst::emst<2>(pts);
  // The shortest MST edge realizes the closest pair distance.
  EXPECT_NEAR(mst.front().weight, std::sqrt(cp.dist_sq), 1e-9);
}

TEST(Integration, SpannerPreservesEmstConnectivityCheaply) {
  auto pts = datagen::seed_spreader<2>(1000, 10);
  auto mst = emst::emst<2>(pts);
  auto span = graphgen::spanner(pts, 1.5);
  // A 1.5-spanner must weigh at least the MST but contain a spanning
  // structure: check it has >= n-1 edges and total weight >= MST weight.
  EXPECT_GE(span.size(), pts.size() - 1);
  double w = 0;
  for (const auto& [u, v] : span) w += pts[u].dist(pts[v]);
  EXPECT_GE(w, emst::total_weight(mst) * (1 - 1e-12));
}

TEST(Integration, MortonOrderSpeedsDelaunayLocality) {
  // The Delaunay builder inserts in Morton order internally; verify the
  // result is order-independent by shuffling the input.
  auto pts = datagen::uniform<2>(2000, 11);
  auto shuffled = par::random_shuffle(pts, 99);
  auto t1 = delaunay::triangulate(pts);
  auto t2 = delaunay::triangulate(shuffled);
  EXPECT_EQ(t1.triangles.size(), t2.triangles.size());
  EXPECT_EQ(t1.edges().size(), t2.edges().size());
}
