// Tests for 3D convex hull: method agreement, mesh validity (outward
// facets, containment, Euler characteristic), instrumentation, and
// degenerate inputs.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/predicates.h"
#include "datagen/datagen.h"
#include "hull/hull3d.h"

using namespace pargeo;

namespace {

void check_valid_mesh(const std::vector<point<3>>& pts,
                      const hull3d::mesh& m) {
  ASSERT_GE(m.facets.size(), 4u);
  // Containment + outward orientation: no point strictly outside a facet.
  for (const auto& f : m.facets) {
    for (std::size_t p = 0; p < pts.size(); ++p) {
      ASSERT_GE(orient3d(pts[f[0]], pts[f[1]], pts[f[2]], pts[p]), 0)
          << "point " << p << " outside facet";
    }
  }
  // Topology: closed 2-manifold triangle mesh. Each directed edge appears
  // exactly once; undirected edges exactly twice; Euler V - E + F = 2.
  std::set<std::pair<std::size_t, std::size_t>> directed;
  std::map<std::pair<std::size_t, std::size_t>, int> undirected;
  std::set<std::size_t> verts;
  for (const auto& f : m.facets) {
    for (int e = 0; e < 3; ++e) {
      const std::size_t u = f[e];
      const std::size_t w = f[(e + 1) % 3];
      ASSERT_NE(u, w);
      ASSERT_TRUE(directed.insert({u, w}).second)
          << "duplicate directed edge";
      undirected[{std::min(u, w), std::max(u, w)}]++;
      verts.insert(u);
    }
  }
  for (const auto& [e, c] : undirected) {
    ASSERT_EQ(c, 2) << "edge not shared by exactly two facets";
  }
  const long V = static_cast<long>(verts.size());
  const long E = static_cast<long>(undirected.size());
  const long F = static_cast<long>(m.facets.size());
  EXPECT_EQ(V - E + F, 2);
}

std::vector<point<3>> dataset(int which, std::size_t n, uint64_t seed) {
  switch (which) {
    case 0: return datagen::uniform<3>(n, seed);
    case 1: return datagen::in_sphere<3>(n, seed);
    case 2: return datagen::on_sphere<3>(n, seed);
    case 3: return datagen::on_cube<3>(n, seed);
    default: return datagen::synthetic_statue(n, seed);
  }
}

}  // namespace

struct Hull3dParam {
  int dist;
  std::size_t n;
  uint64_t seed;
};

class Hull3dSweep : public ::testing::TestWithParam<Hull3dParam> {};

TEST_P(Hull3dSweep, AllMethodsAgreeAndValid) {
  const auto p = GetParam();
  auto pts = dataset(p.dist, p.n, p.seed);
  auto m0 = hull3d::sequential_quickhull(pts);
  check_valid_mesh(pts, m0);
  auto v0 = hull3d::hull_vertices(m0);
  EXPECT_EQ(v0, hull3d::hull_vertices(hull3d::randinc(pts)));
  EXPECT_EQ(v0, hull3d::hull_vertices(hull3d::reservation_quickhull(pts)));
  EXPECT_EQ(v0, hull3d::hull_vertices(hull3d::divide_conquer(pts)));
  EXPECT_EQ(v0, hull3d::hull_vertices(hull3d::pseudohull(pts)));
}

INSTANTIATE_TEST_SUITE_P(
    DistSizeSeed, Hull3dSweep,
    ::testing::Values(Hull3dParam{0, 2000, 1}, Hull3dParam{0, 20000, 2},
                      Hull3dParam{1, 20000, 3}, Hull3dParam{2, 2000, 4},
                      Hull3dParam{2, 20000, 5}, Hull3dParam{3, 20000, 6},
                      Hull3dParam{4, 20000, 7}, Hull3dParam{0, 50, 8},
                      Hull3dParam{1, 300, 9}),
    [](const ::testing::TestParamInfo<Hull3dParam>& info) {
      return "dist" + std::to_string(info.param.dist) + "_n" +
             std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(Hull3d, ParallelMeshesAreValidToo) {
  auto pts = datagen::on_sphere<3>(5000, 21);
  check_valid_mesh(pts, hull3d::randinc(pts));
  check_valid_mesh(pts, hull3d::reservation_quickhull(pts));
  check_valid_mesh(pts, hull3d::divide_conquer(pts));
  check_valid_mesh(pts, hull3d::pseudohull(pts));
}

TEST(Hull3d, ThrowsOnDegenerateInputs) {
  std::vector<point<3>> few{point<3>{{0, 0, 0}}, point<3>{{1, 0, 0}},
                            point<3>{{0, 1, 0}}};
  EXPECT_THROW(hull3d::sequential_quickhull(few), std::invalid_argument);

  std::vector<point<3>> identical(100, point<3>{{1, 2, 3}});
  EXPECT_THROW(hull3d::sequential_quickhull(identical),
               std::invalid_argument);

  std::vector<point<3>> collinear;
  for (int i = 0; i < 50; ++i) {
    collinear.push_back(point<3>{{1.0 * i, 2.0 * i, 3.0 * i}});
  }
  EXPECT_THROW(hull3d::sequential_quickhull(collinear),
               std::invalid_argument);

  std::vector<point<3>> coplanar;
  for (int i = 0; i < 50; ++i) {
    coplanar.push_back(point<3>{{par::rand_double(1, i) * 10,
                                 par::rand_double(2, i) * 10, 0.0}});
  }
  EXPECT_THROW(hull3d::sequential_quickhull(coplanar),
               std::invalid_argument);
  EXPECT_THROW(hull3d::randinc(coplanar), std::invalid_argument);
}

TEST(Hull3d, MinimalTetrahedron) {
  std::vector<point<3>> pts{point<3>{{0, 0, 0}}, point<3>{{1, 0, 0}},
                            point<3>{{0, 1, 0}}, point<3>{{0, 0, 1}}};
  auto m = hull3d::sequential_quickhull(pts);
  EXPECT_EQ(m.facets.size(), 4u);
  check_valid_mesh(pts, m);
  EXPECT_EQ(hull3d::hull_vertices(m).size(), 4u);
  auto m2 = hull3d::randinc(pts);
  EXPECT_EQ(m2.facets.size(), 4u);
}

TEST(Hull3d, InteriorPointsNeverOnHull) {
  auto pts = datagen::in_sphere<3>(5000, 33);
  pts.push_back(point<3>{{0, 0, 0}});  // center: strictly interior
  auto vs = hull3d::hull_vertices(hull3d::sequential_quickhull(pts));
  EXPECT_FALSE(std::binary_search(vs.begin(), vs.end(), pts.size() - 1));
}

TEST(Hull3d, StatsCountersPopulated) {
  auto pts = datagen::in_sphere<3>(10000, 34);
  hull3d::stats seq_st, par_st;
  hull3d::sequential_quickhull(pts, &seq_st);
  hull3d::reservation_quickhull(pts, 8, &par_st);
  EXPECT_GT(seq_st.facets_touched, 0u);
  EXPECT_GT(seq_st.points_touched, 0u);
  EXPECT_GT(par_st.facets_touched, 0u);
  // Appendix B: reservation overhead is modest — the reservation run
  // should not touch wildly more facets than the sequential run.
  EXPECT_LT(par_st.facets_touched, 50 * seq_st.facets_touched + 1000);
}

TEST(Hull3d, PseudohullCullsInteriorPoints) {
  auto uni = datagen::uniform<3>(20000, 35);
  const std::size_t survivors = hull3d::pseudohull_survivors(uni);
  EXPECT_LT(survivors, uni.size() / 4);  // most interior points culled
  // On-sphere data culls far less (paper §6.1: large output => slower).
  auto osp = datagen::on_sphere<3>(20000, 35);
  EXPECT_GT(hull3d::pseudohull_survivors(osp), survivors);
}

TEST(Hull3d, RandincSeedInvariance) {
  auto pts = datagen::uniform<3>(5000, 36);
  auto v1 = hull3d::hull_vertices(hull3d::randinc(pts, 8, 1));
  auto v2 = hull3d::hull_vertices(hull3d::randinc(pts, 8, 12345));
  EXPECT_EQ(v1, v2);
}

TEST(Hull3d, BatchFactorInvariance) {
  auto pts = datagen::on_cube<3>(5000, 37);
  auto v1 = hull3d::hull_vertices(hull3d::reservation_quickhull(pts, 1));
  auto v2 = hull3d::hull_vertices(hull3d::reservation_quickhull(pts, 32));
  EXPECT_EQ(v1, v2);
}

TEST(Hull3d, PseudohullThresholdInvariance) {
  auto pts = datagen::uniform<3>(10000, 38);
  auto v1 = hull3d::hull_vertices(hull3d::pseudohull(pts, 16));
  auto v2 = hull3d::hull_vertices(hull3d::pseudohull(pts, 512));
  EXPECT_EQ(v1, v2);
}
