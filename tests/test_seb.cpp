// Tests for smallest enclosing ball: all six methods agree with each other
// and with an exhaustive reference on small inputs, contain every point,
// and behave sanely on degenerate sets.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "datagen/datagen.h"
#include "seb/seb.h"

using namespace pargeo;

namespace {

// Exhaustive reference: the SEB is determined by a support of 2..D+1
// points; try all and keep the smallest valid enclosing ball.
template <int D>
double brute_seb_radius(const std::vector<point<D>>& pts) {
  const std::size_t n = pts.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<int> idx(D + 1);
  // All subsets of size 2..D+1 via simple recursion.
  std::function<void(std::size_t, int, int)> rec = [&](std::size_t start,
                                                       int depth,
                                                       int want) {
    if (depth == want) {
      std::array<point<D>, D + 1> sup;
      for (int i = 0; i < want; ++i) sup[i] = pts[idx[i]];
      auto b = circumball<D>(sup.data(), want);
      if (b.is_empty() || b.radius >= best) return;
      bool ok = true;
      for (const auto& p : pts) ok = ok && b.contains(p, 1e-9);
      if (ok) best = b.radius;
      return;
    }
    for (std::size_t i = start; i < n; ++i) {
      idx[depth] = static_cast<int>(i);
      rec(i + 1, depth + 1, want);
    }
  };
  for (int k = 2; k <= D + 1; ++k) rec(0, 0, k);
  return best;
}

template <int D>
void expect_contains_all(const ball<D>& b,
                         const std::vector<point<D>>& pts) {
  for (const auto& p : pts) {
    ASSERT_TRUE(b.contains(p, 1e-7))
        << "point at distance " << b.center.dist(p) << " radius "
        << b.radius;
  }
}

}  // namespace

TEST(Seb, SmallSetsMatchExhaustiveReference2d) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto pts = datagen::uniform<2>(40, seed);
    const double ref = brute_seb_radius(pts);
    EXPECT_NEAR(seb::welzl_seq<2>(pts).radius, ref, 1e-7 * ref);
    EXPECT_NEAR(seb::welzl<2>(pts).radius, ref, 1e-7 * ref);
    EXPECT_NEAR(seb::welzl_mtf<2>(pts).radius, ref, 1e-7 * ref);
    EXPECT_NEAR(seb::welzl_mtf_pivot<2>(pts).radius, ref, 1e-7 * ref);
    EXPECT_NEAR(seb::orthant_scan<2>(pts).radius, ref, 1e-6 * ref);
    EXPECT_NEAR(seb::sampling<2>(pts).radius, ref, 1e-6 * ref);
  }
}

TEST(Seb, SmallSetsMatchExhaustiveReference3d) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto pts = datagen::in_sphere<3>(30, seed);
    const double ref = brute_seb_radius(pts);
    EXPECT_NEAR(seb::welzl_seq<3>(pts).radius, ref, 1e-7 * ref);
    EXPECT_NEAR(seb::orthant_scan<3>(pts).radius, ref, 1e-6 * ref);
    EXPECT_NEAR(seb::sampling<3>(pts).radius, ref, 1e-6 * ref);
  }
}

struct SebParam {
  int dim;
  int dist;  // 0 uniform, 1 in_sphere, 2 on_sphere
  std::size_t n;
};

class SebSweep : public ::testing::TestWithParam<SebParam> {};

template <int D>
void run_seb_sweep(int dist, std::size_t n) {
  std::vector<point<D>> pts;
  switch (dist) {
    case 0: pts = datagen::uniform<D>(n, 77); break;
    case 1: pts = datagen::in_sphere<D>(n, 78); break;
    default: pts = datagen::on_sphere<D>(n, 79); break;
  }
  const auto ref = seb::welzl_seq<D>(pts);
  expect_contains_all(ref, pts);
  for (const auto& b :
       {seb::welzl<D>(pts), seb::welzl_mtf<D>(pts),
        seb::welzl_mtf_pivot<D>(pts), seb::orthant_scan<D>(pts),
        seb::sampling<D>(pts)}) {
    expect_contains_all(b, pts);
    EXPECT_NEAR(b.radius, ref.radius, 1e-5 * ref.radius);
  }
}

TEST_P(SebSweep, AllMethodsEncloseAndAgree) {
  const auto p = GetParam();
  switch (p.dim) {
    case 2: run_seb_sweep<2>(p.dist, p.n); break;
    case 3: run_seb_sweep<3>(p.dist, p.n); break;
    case 5: run_seb_sweep<5>(p.dist, p.n); break;
    case 7: run_seb_sweep<7>(p.dist, p.n); break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimDistSize, SebSweep,
    ::testing::Values(SebParam{2, 0, 10000}, SebParam{2, 1, 10000},
                      SebParam{2, 2, 10000}, SebParam{3, 0, 10000},
                      SebParam{3, 1, 10000}, SebParam{3, 2, 10000},
                      SebParam{5, 0, 5000}, SebParam{5, 1, 5000},
                      SebParam{7, 0, 3000}),
    [](const ::testing::TestParamInfo<SebParam>& info) {
      return "d" + std::to_string(info.param.dim) + "_dist" +
             std::to_string(info.param.dist) + "_n" +
             std::to_string(info.param.n);
    });

TEST(Seb, SupportLiesOnBoundary) {
  auto pts = datagen::in_sphere<2>(5000, 81);
  auto b = seb::welzl_seq<2>(pts);
  // At least two points must lie (nearly) on the boundary.
  int boundary = 0;
  for (const auto& p : pts) {
    if (std::abs(b.center.dist(p) - b.radius) < 1e-7 * b.radius) {
      ++boundary;
    }
  }
  EXPECT_GE(boundary, 2);
}

TEST(Seb, DegenerateInputs) {
  // Single point: zero-radius ball.
  std::vector<point<2>> one{point<2>{{5, 5}}};
  auto b1 = seb::welzl_seq<2>(one);
  EXPECT_NEAR(b1.radius, 0.0, 1e-12);

  // Two points: diametral ball.
  std::vector<point<2>> two{point<2>{{0, 0}}, point<2>{{2, 0}}};
  auto b2 = seb::welzl_seq<2>(two);
  EXPECT_NEAR(b2.radius, 1.0, 1e-12);
  EXPECT_NEAR(seb::orthant_scan<2>(two).radius, 1.0, 1e-9);

  // All identical points.
  std::vector<point<2>> same(100, point<2>{{1, 1}});
  EXPECT_NEAR(seb::welzl_seq<2>(same).radius, 0.0, 1e-12);
  EXPECT_NEAR(seb::sampling<2>(same).radius, 0.0, 1e-9);

  // Collinear points: ball spans the extremes.
  std::vector<point<2>> line;
  for (int i = 0; i <= 10; ++i) {
    line.push_back(point<2>{{static_cast<double>(i), 0}});
  }
  EXPECT_NEAR(seb::welzl_seq<2>(line).radius, 5.0, 1e-9);
  EXPECT_NEAR(seb::orthant_scan<2>(line).radius, 5.0, 1e-6);
}

TEST(Seb, OnSphereRadiusMatchesGeneratorRadius) {
  const std::size_t n = 20000;
  auto pts = datagen::on_sphere<3>(n, 83);
  const double expected = std::sqrt(static_cast<double>(n)) / 2.0;
  auto b = seb::sampling<3>(pts);
  EXPECT_NEAR(b.radius, expected, 0.02 * expected);
  EXPECT_NEAR(b.center.length(), 0.0, 0.05 * expected);
}

TEST(Seb, SamplingScanFractionReported) {
  auto pts = datagen::uniform<2>(50000, 85);
  seb::sampling<2>(pts);
  const double frac = seb::last_sampling_scan_fraction();
  EXPECT_GT(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(Seb, SeedInvariance) {
  auto pts = datagen::uniform<3>(20000, 87);
  auto a = seb::welzl_mtf_pivot<3>(pts, 1);
  auto b = seb::welzl_mtf_pivot<3>(pts, 999);
  EXPECT_NEAR(a.radius, b.radius, 1e-9 * a.radius);
}
