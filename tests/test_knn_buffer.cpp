// Tests for the amortized-O(1) k-NN candidate buffer.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "kdtree/knn_buffer.h"

using pargeo::kdtree::knn_buffer;

TEST(KnnBuffer, KeepsKSmallest) {
  knn_buffer buf(3);
  for (int i = 10; i >= 1; --i) {
    buf.insert(static_cast<double>(i), static_cast<std::size_t>(i));
  }
  auto out = buf.finish();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].dist_sq, 1.0);
  EXPECT_EQ(out[1].dist_sq, 2.0);
  EXPECT_EQ(out[2].dist_sq, 3.0);
}

TEST(KnnBuffer, BoundIsInfUntilKSeen) {
  knn_buffer buf(4);
  EXPECT_TRUE(std::isinf(buf.bound()));
  buf.insert(1.0, 1);
  buf.insert(2.0, 2);
  buf.insert(3.0, 3);
  EXPECT_TRUE(std::isinf(buf.bound()));
  buf.insert(4.0, 4);
  EXPECT_LE(buf.bound(), 4.0);
}

TEST(KnnBuffer, BoundNeverBelowTrueKth) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0, 1);
  knn_buffer buf(10);
  std::vector<double> all;
  for (int i = 0; i < 5000; ++i) {
    const double d = dist(rng);
    all.push_back(d);
    buf.insert(d, static_cast<std::size_t>(i));
    std::vector<double> sorted(all);
    std::sort(sorted.begin(), sorted.end());
    if (all.size() >= 10) {
      ASSERT_GE(buf.bound(), sorted[9]);
    }
  }
  auto out = buf.finish();
  std::sort(all.begin(), all.end());
  for (int k = 0; k < 10; ++k) EXPECT_EQ(out[k].dist_sq, all[k]);
}

TEST(KnnBuffer, FewerThanKCandidates) {
  knn_buffer buf(5);
  buf.insert(2.0, 0);
  buf.insert(1.0, 1);
  auto out = buf.finish();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
}

TEST(KnnBuffer, TiesBrokenById) {
  knn_buffer buf(2);
  buf.insert(1.0, 9);
  buf.insert(1.0, 3);
  buf.insert(1.0, 5);
  auto out = buf.finish();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 3u);
  EXPECT_EQ(out[1].id, 5u);
}

TEST(KnnBuffer, ResetClearsState) {
  knn_buffer buf(2);
  buf.insert(1.0, 1);
  buf.insert(2.0, 2);
  buf.insert(3.0, 3);
  buf.reset();
  EXPECT_TRUE(std::isinf(buf.bound()));
  buf.insert(7.0, 7);
  auto out = buf.finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 7u);
}

TEST(KnnBuffer, ManyInsertsExerciseCompaction) {
  knn_buffer buf(16);
  // Strictly decreasing distances force every insert through the buffer.
  for (int i = 0; i < 100000; ++i) {
    buf.insert(1e6 - i, static_cast<std::size_t>(i));
  }
  auto out = buf.finish();
  ASSERT_EQ(out.size(), 16u);
  for (int k = 0; k < 16; ++k) {
    EXPECT_EQ(out[k].dist_sq, 1e6 - 99999 + k);
  }
}
