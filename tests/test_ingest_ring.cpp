// Unit tests for the bounded lock-free MPSC ingest ring
// (query/ingest_ring.h): FIFO per producer, wraparound reuse of slots,
// try_push full-ring rejection, blocking push backpressure, close waking
// parked producers, and the contention spin counter. Multi-producer cases
// run under TSan in CI (the tsan job's test regex includes this binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "query/ingest_ring.h"

using pargeo::query::mpsc_ring;
using pargeo::query::push_status;

TEST(IngestRing, CapacityRoundsUpToPowerOfTwo) {
  mpsc_ring<int> r3(3);
  EXPECT_EQ(r3.capacity(), 4u);
  mpsc_ring<int> r8(8);
  EXPECT_EQ(r8.capacity(), 8u);
  mpsc_ring<int> r0(0);
  EXPECT_GE(r0.capacity(), 1u);
}

TEST(IngestRing, SingleProducerFifoAcrossWraparound) {
  mpsc_ring<int> ring(4);  // tiny: forces many slot-sequence recycles
  int expect = 0;
  for (int v = 0; v < 1000;) {
    while (v < 1000) {
      int item = v;
      if (ring.try_push(item) != push_status::ok) break;
      ++v;
    }
    int out = -1;
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, expect);
      ++expect;
    }
  }
  EXPECT_EQ(expect, 1000);
  EXPECT_TRUE(ring.empty());
}

TEST(IngestRing, TryPushReportsFullAndDoesNotConsumeTheItem) {
  mpsc_ring<int> ring(2);
  int a = 1, b = 2, c = 3;
  EXPECT_EQ(ring.try_push(a), push_status::ok);
  EXPECT_EQ(ring.try_push(b), push_status::ok);
  EXPECT_EQ(ring.try_push(c), push_status::full);
  EXPECT_EQ(c, 3);  // full must leave the caller's item intact
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(ring.try_push(c), push_status::ok);  // slot freed -> admitted
}

TEST(IngestRing, BlockingPushWaitsForConsumerSpace) {
  mpsc_ring<int> ring(2);
  int a = 1, b = 2;
  ASSERT_EQ(ring.try_push(a), push_status::ok);
  ASSERT_EQ(ring.try_push(b), push_status::ok);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(ring.push(3), push_status::ok);
    pushed.store(true);
  });
  // The producer must be blocked on the full ring, not spinning through.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
}

TEST(IngestRing, CloseWakesBlockedProducersWithClosedStatus) {
  mpsc_ring<int> ring(2);
  int a = 1, b = 2;
  ASSERT_EQ(ring.try_push(a), push_status::ok);
  ASSERT_EQ(ring.try_push(b), push_status::ok);

  std::vector<std::thread> producers;
  std::atomic<int> closed_seen{0};
  for (int i = 0; i < 3; ++i) {
    producers.emplace_back([&ring, &closed_seen, i] {
      if (ring.push(100 + i) == push_status::closed) {
        closed_seen.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  for (auto& t : producers) t.join();
  EXPECT_EQ(closed_seen.load(), 3);

  // Already-published items stay poppable after close; pushes do not.
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  int late = 99;
  EXPECT_EQ(ring.try_push(late), push_status::closed);
}

TEST(IngestRing, MultiProducerDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  mpsc_ring<std::uint64_t> ring(64);
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> popped;
  popped.reserve(kProducers * kPerProducer);

  std::thread consumer([&] {
    std::uint64_t v = 0;
    for (;;) {
      while (ring.try_pop(v)) popped.push_back(v);
      if (done.load(std::memory_order_acquire) && ring.empty()) {
        while (ring.try_pop(v)) popped.push_back(v);  // closing sweep
        return;
      }
      ring.consumer_wait(std::chrono::milliseconds(1), [&] {
        return !ring.empty() || done.load(std::memory_order_acquire);
      });
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v =
            (static_cast<std::uint64_t>(p) << 32) | static_cast<unsigned>(i);
        ASSERT_EQ(ring.push(std::uint64_t{v}), push_status::ok);
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  ring.kick_consumer();
  consumer.join();

  ASSERT_EQ(popped.size(),
            static_cast<std::size_t>(kProducers) * kPerProducer);
  // Exactly-once: all values distinct, and FIFO per producer.
  std::vector<std::uint64_t> next(kProducers, 0);
  for (const std::uint64_t v : popped) {
    const int p = static_cast<int>(v >> 32);
    const std::uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(seq, next[p]) << "producer " << p << " order broken";
    next[p] = seq + 1;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], static_cast<std::uint64_t>(kPerProducer));
  }
}

TEST(IngestRing, SpinCounterAdvancesUnderFullRingContention) {
  mpsc_ring<int> ring(2);
  int a = 1, b = 2;
  ASSERT_EQ(ring.try_push(a), push_status::ok);
  ASSERT_EQ(ring.try_push(b), push_status::ok);
  EXPECT_EQ(ring.spins(), 0u);

  std::thread producer([&] { EXPECT_EQ(ring.push(3), push_status::ok); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  producer.join();
  // The blocked push burned its spin budget before parking.
  EXPECT_GT(ring.spins(), 0u);
}
