// Tests for geometric clustering: single-linkage dendrogram vs reference,
// dendrogram cuts, and DBSCAN vs a brute-force implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>

#include "clustering/clustering.h"
#include "datagen/datagen.h"

using namespace pargeo;
using clustering::kNoise;

namespace {

// Brute-force DBSCAN for cross-checking (n^2).
template <int D>
std::vector<std::size_t> brute_dbscan(const std::vector<point<D>>& pts,
                                      double eps, std::size_t min_pts) {
  const std::size_t n = pts.size();
  std::vector<std::vector<std::size_t>> nbrs(n);
  std::vector<bool> core(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (pts[i].dist_sq(pts[j]) <= eps * eps) nbrs[i].push_back(j);
    }
    core[i] = nbrs[i].size() >= min_pts;
  }
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    for (const std::size_t j : nbrs[i]) {
      if (core[j]) parent[find(i)] = find(j);
    }
  }
  std::vector<std::size_t> labels(n, kNoise);
  std::map<std::size_t, std::size_t> remap;
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    const std::size_t r = find(i);
    if (!remap.count(r)) remap[r] = remap.size();
    labels[i] = remap[r];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (core[i] || labels[i] != kNoise) continue;
    for (const std::size_t j : nbrs[i]) {
      if (core[j]) {
        labels[i] = labels[j];
        break;
      }
    }
  }
  return labels;
}

// Partition equality up to label renaming (border-point assignment may
// legitimately differ between implementations, so compare core points).
template <int D>
void expect_same_partition(const std::vector<point<D>>& pts,
                           const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::map<std::size_t, std::size_t> fwd;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i] == kNoise, b[i] == kNoise) << "noise mismatch at " << i;
    if (a[i] == kNoise) continue;
    auto [it, fresh] = fwd.try_emplace(a[i], b[i]);
    if (!fresh) EXPECT_EQ(it->second, b[i]) << "partition mismatch at " << i;
  }
}

}  // namespace

TEST(SingleLinkage, DendrogramShapeAndMonotoneHeights) {
  auto pts = datagen::uniform<2>(500, 3);
  auto dendro = clustering::single_linkage<2>(pts);
  ASSERT_EQ(dendro.size(), pts.size() - 1);
  for (std::size_t i = 1; i < dendro.size(); ++i) {
    EXPECT_LE(dendro[i - 1].height, dendro[i].height);
  }
  // Every cluster id is used as a merge input at most once.
  std::vector<int> used(2 * pts.size(), 0);
  for (const auto& m : dendro) {
    ASSERT_LT(m.a, m.b);
    used[m.a]++;
    used[m.b]++;
  }
  for (const int u : used) EXPECT_LE(u, 1);
}

TEST(SingleLinkage, CutRecoversWellSeparatedClusters) {
  // Three clearly separated clusters.
  std::vector<point<2>> pts;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) {
      pts.push_back(point<2>{{c * 1000.0 + par::rand_double(1, c * 100 + i),
                              par::rand_double(2, c * 100 + i)}});
    }
  }
  auto dendro = clustering::single_linkage<2>(pts);
  auto labels = clustering::cut_dendrogram(pts.size(), dendro, 50.0);
  std::set<std::size_t> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 3u);
  // Points in the same spatial cluster share a label.
  for (int c = 0; c < 3; ++c) {
    for (int i = 1; i < 100; ++i) {
      EXPECT_EQ(labels[c * 100], labels[c * 100 + i]);
    }
  }
}

TEST(SingleLinkage, CutAtZeroAndInfinity) {
  auto pts = datagen::uniform<2>(100, 5);
  auto dendro = clustering::single_linkage<2>(pts);
  auto all = clustering::cut_dendrogram(pts.size(), dendro, 1e18);
  std::set<std::size_t> one(all.begin(), all.end());
  EXPECT_EQ(one.size(), 1u);
  auto none = clustering::cut_dendrogram(pts.size(), dendro, -1.0);
  std::set<std::size_t> n(none.begin(), none.end());
  EXPECT_EQ(n.size(), pts.size());
}

TEST(Dbscan, MatchesBruteForceUniform) {
  auto pts = datagen::uniform<2>(800, 7);
  const double eps = 2.0;
  auto fast = clustering::dbscan<2>(pts, eps, 4);
  auto ref = brute_dbscan<2>(pts, eps, 4);
  expect_same_partition<2>(pts, ref, fast);
}

TEST(Dbscan, MatchesBruteForceClustered) {
  auto pts = datagen::seed_spreader<2>(800, 8);
  const double eps = 5.0;
  auto fast = clustering::dbscan<2>(pts, eps, 5);
  auto ref = brute_dbscan<2>(pts, eps, 5);
  expect_same_partition<2>(pts, ref, fast);
}

TEST(Dbscan, AllNoiseWhenEpsTiny) {
  auto pts = datagen::uniform<2>(200, 9);
  auto labels = clustering::dbscan<2>(pts, 1e-9, 3);
  for (const auto l : labels) EXPECT_EQ(l, kNoise);
}

TEST(Dbscan, OneClusterWhenEpsHuge) {
  auto pts = datagen::uniform<2>(200, 10);
  auto labels = clustering::dbscan<2>(pts, 1e9, 3);
  for (const auto l : labels) EXPECT_EQ(l, 0u);
}

TEST(Dbscan, ThreeDimensional) {
  auto pts = datagen::visualvar<3>(600, 11);
  const double eps = 3.0;
  auto fast = clustering::dbscan<3>(pts, eps, 4);
  auto ref = brute_dbscan<3>(pts, eps, 4);
  expect_same_partition<3>(pts, ref, fast);
}

TEST(SingleLinkage, TrivialInputs) {
  std::vector<point<2>> empty;
  EXPECT_TRUE(clustering::single_linkage<2>(empty).empty());
  std::vector<point<2>> one{point<2>{{1, 1}}};
  EXPECT_TRUE(clustering::single_linkage<2>(one).empty());
}
