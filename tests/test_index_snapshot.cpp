// Unit tests for the epoch/snapshot layer of spatial_index (layer 1):
// write epochs advance monotonically on every content change; isolated
// snapshots (kdtree: shared tree + copied write buffers, zdtree:
// copy-on-write Morton array, bdltree: chunk-level COW forest view) keep
// answering exactly as of their epoch while the live index absorbs
// further writes; and query_engine::execute_reads drives a read-only
// batch through a snapshot (and rejects writes).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/datagen.h"
#include "query/query_engine.h"
#include "query/spatial_index.h"
#include "test_util.h"

using namespace pargeo;
using query::backend;

namespace {

class SnapshotEpochs : public ::testing::TestWithParam<backend> {};

}  // namespace

TEST_P(SnapshotEpochs, EpochAdvancesOnEveryContentChange) {
  auto idx = query::make_index<2>(GetParam());
  const auto e0 = idx->epoch();
  idx->build(datagen::uniform<2>(100, 3));
  const auto e1 = idx->epoch();
  EXPECT_GT(e1, e0);
  idx->batch_insert(datagen::uniform<2>(10, 4));
  const auto e2 = idx->epoch();
  EXPECT_GT(e2, e1);
  auto victims = datagen::uniform<2>(100, 3);
  victims.resize(5);
  idx->batch_erase(victims);
  EXPECT_GT(idx->epoch(), e2);
  // Reads never advance the epoch.
  const auto e3 = idx->epoch();
  idx->batch_knn(datagen::uniform<2>(4, 5), 3);
  EXPECT_EQ(idx->epoch(), e3);
  // Neither do no-op writes: an erase that matches nothing leaves the
  // contents — and therefore the epoch — untouched.
  idx->batch_erase({point<2>{{-777, -777}}, point<2>{{-778, -778}}});
  EXPECT_EQ(idx->epoch(), e3);
  idx->batch_insert({});
  EXPECT_EQ(idx->epoch(), e3);
}

TEST_P(SnapshotEpochs, SnapshotCarriesEpochAndContents) {
  auto idx = query::make_index<2>(GetParam());
  idx->build(datagen::uniform<2>(200, 7));
  auto snap = idx->snapshot();
  EXPECT_EQ(snap->epoch(), idx->epoch());
  EXPECT_EQ(snap->size(), idx->size());

  const auto queries = datagen::uniform<2>(8, 9);
  auto live = idx->batch_knn(queries, 5);
  auto snapped = snap->batch_knn(queries, 5);
  ASSERT_EQ(live.size(), snapped.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    ASSERT_EQ(live[i].size(), snapped[i].size()) << "query " << i;
    for (std::size_t j = 0; j < live[i].size(); ++j) {
      EXPECT_EQ(live[i][j].dist_sq(queries[i]),
                snapped[i][j].dist_sq(queries[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SnapshotEpochs,
    ::testing::Values(backend::kdtree, backend::zdtree, backend::bdltree),
    [](const ::testing::TestParamInfo<backend>& info) {
      return query::backend_name(info.param);
    });

namespace {

// Writes applied after the snapshot must be invisible to it: the isolation
// property the query_service's concurrent read drains rely on.
template <int D>
void expect_isolated_from_later_writes(backend b) {
  auto idx = query::make_index<D>(b);
  const auto initial = datagen::uniform<D>(150, 11);
  idx->build(initial);

  auto snap = idx->snapshot();
  ASSERT_TRUE(snap->isolated());
  const auto snap_epoch = snap->epoch();

  // Mutate the live index well past the snapshot: fresh inserts in a far
  // stripe plus erases of initial points.
  point<D> far{};
  for (int d = 0; d < D; ++d) far[d] = 500.0 + d;
  idx->batch_insert({far});
  auto victims = initial;
  victims.resize(40);
  idx->batch_erase(victims);

  EXPECT_GT(idx->epoch(), snap_epoch);
  EXPECT_EQ(snap->epoch(), snap_epoch);
  EXPECT_EQ(snap->size(), initial.size());

  // k-NN through the snapshot matches brute force over the ORIGINAL set.
  const auto queries = datagen::uniform<D>(6, 13);
  auto rows = snap->batch_knn(queries, 4);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = testutil::brute_knn_dists(initial, queries[i], 4);
    ASSERT_EQ(rows[i].size(), expect.size()) << "query " << i;
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(rows[i][j].dist_sq(queries[i]), expect[j])
          << "query " << i << " row " << j;
    }
  }

  // The far insert is invisible to a snapshot ball; erased points remain.
  auto balls = snap->batch_ball({far}, {0.5});
  EXPECT_TRUE(balls[0].empty());
  aabb<D> everything(initial[0], initial[0]);
  for (const auto& p : initial) everything.extend(p);
  auto ranges = snap->batch_range({everything});
  EXPECT_EQ(ranges[0].size(), initial.size());
}

}  // namespace

TEST(SnapshotIsolation, KdtreeSnapshotIgnoresLaterWrites2D) {
  expect_isolated_from_later_writes<2>(backend::kdtree);
}

TEST(SnapshotIsolation, KdtreeSnapshotIgnoresLaterWrites3D) {
  expect_isolated_from_later_writes<3>(backend::kdtree);
}

TEST(SnapshotIsolation, ZdtreeSnapshotIgnoresLaterWrites2D) {
  expect_isolated_from_later_writes<2>(backend::zdtree);
}

TEST(SnapshotIsolation, KdtreeSnapshotSurvivesRebuild) {
  // A rebuild swaps the live tree + base arrays; a snapshot taken before
  // must keep answering from the structures it captured.
  query::kdtree_index<2> idx(kdtree::split_policy::object_median, 16,
                             /*rebuild_threshold=*/0.1);
  const auto initial = datagen::uniform<2>(100, 17);
  idx.build(initial);
  auto snap = idx.snapshot();
  const std::size_t rebuilds_before = idx.rebuild_count();

  idx.batch_insert(datagen::uniform<2>(60, 19));  // > 10% -> rebuild
  EXPECT_GT(idx.rebuild_count(), rebuilds_before);

  const auto queries = datagen::uniform<2>(5, 23);
  auto rows = snap->batch_knn(queries, 3);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = testutil::brute_knn_dists(initial, queries[i], 3);
    ASSERT_EQ(rows[i].size(), expect.size());
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(rows[i][j].dist_sq(queries[i]), expect[j]);
    }
  }
}

TEST(SnapshotIsolation, BdltreeSnapshotIgnoresLaterWrites2D) {
  // The BDL forest used to hand out pinned (non-isolated) views that
  // required the service to gate writes while reads were in flight.
  // Snapshots are now chunk-level COW forest views: fully isolated, and
  // superseded structure versions are retired through the epoch
  // reclaimer instead of blocking writers.
  expect_isolated_from_later_writes<2>(backend::bdltree);
}

TEST(SnapshotIsolation, BdltreeSnapshotIgnoresLaterWrites3D) {
  expect_isolated_from_later_writes<3>(backend::bdltree);
}

TEST(SnapshotIsolation, BdltreeSnapshotSurvivesManyWriteRounds) {
  // Rounds of insert+erase churn rebuild / merge BDL levels repeatedly;
  // a snapshot captured up front must keep answering from its original
  // chunk set no matter how much the live forest restructures.
  auto idx = query::make_index<2>(backend::bdltree);
  const auto initial = datagen::uniform<2>(150, 41);
  idx->build(initial);
  auto snap = idx->snapshot();
  ASSERT_TRUE(snap->isolated());

  for (int round = 0; round < 6; ++round) {
    idx->batch_insert(datagen::uniform<2>(40, 43 + round));
    auto victims = datagen::uniform<2>(40, 43 + round);
    victims.resize(20);
    idx->batch_erase(victims);
  }

  EXPECT_EQ(snap->size(), initial.size());
  const auto queries = datagen::uniform<2>(5, 47);
  auto rows = snap->batch_knn(queries, 3);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto expect = testutil::brute_knn_dists(initial, queries[i], 3);
    ASSERT_EQ(rows[i].size(), expect.size());
    for (std::size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(rows[i][j].dist_sq(queries[i]), expect[j]);
    }
  }
}

TEST(SnapshotReads, ExecuteReadsRunsABatchAgainstASnapshot) {
  auto idx = query::make_index<2>(backend::kdtree);
  const auto initial = datagen::uniform<2>(180, 37);
  idx->build(initial);
  auto snap = idx->snapshot();
  idx->batch_insert({point<2>{{999, 999}}});  // invisible to the snapshot

  std::vector<query::request<2>> batch{
      query::request<2>::make_knn(initial[3], 4),
      query::request<2>::make_ball(point<2>{{999, 999}}, 0.5),
      query::request<2>::make_range(
          aabb<2>(point<2>{{-1, -1}}, point<2>{{1000, 1000}})),
  };
  auto result = query::query_engine<2>::execute_reads(batch, *snap);
  ASSERT_EQ(result.responses.size(), 3u);
  EXPECT_EQ(result.responses[0].points.size(), 4u);
  EXPECT_EQ(result.responses[0].points[0], initial[3]);
  EXPECT_TRUE(result.responses[1].points.empty());
  EXPECT_EQ(result.responses[2].points.size(), initial.size());
  EXPECT_EQ(result.stats.num_reads, 3u);
  EXPECT_EQ(result.stats.num_phases(), 1u);

  // Writes are rejected: snapshots are read-only by construction.
  std::vector<query::request<2>> writes{
      query::request<2>::make_insert(point<2>{{1, 1}})};
  EXPECT_THROW(query::query_engine<2>::execute_reads(writes, *snap),
               std::logic_error);
}
